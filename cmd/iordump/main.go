// Command iordump decodes stringified CORBA object references
// ("IOR:<hex>") and prints their type id and profiles — handy when
// inspecting what a gateway-rewritten or multi-profile IOR actually
// points at.
//
// Usage:
//
//	iordump IOR:0000...          # decode one reference
//	echo IOR:0000... | iordump   # or from stdin, one per line
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"

	"eternalgw/internal/ior"
)

func main() {
	if err := realMain(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "iordump:", err)
		os.Exit(1)
	}
}

func realMain(args []string) error {
	if len(args) > 0 {
		for _, arg := range args {
			if err := dump(arg); err != nil {
				return err
			}
		}
		return nil
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if err := dump(line); err != nil {
			return err
		}
	}
	return sc.Err()
}

func dump(s string) error {
	ref, err := ior.Parse(s)
	if err != nil {
		return err
	}
	fmt.Printf("type id: %s\n", ref.TypeID)
	profiles, err := ref.IIOPProfiles()
	if err != nil {
		fmt.Printf("profiles: %d (none IIOP: %v)\n", len(ref.Profiles), err)
		return nil
	}
	for i, p := range profiles {
		fmt.Printf("profile %d: IIOP %d.%d endpoint=%s object-key=%q\n",
			i, p.Major, p.Minor, p.Addr(), p.ObjectKey)
	}
	if len(profiles) > 1 {
		fmt.Printf("multi-profile reference: %d redundant gateways (failover order as listed)\n", len(profiles))
	}
	if orbType, ok := ref.ORBType(); ok {
		fmt.Printf("orb type: %#x\n", orbType)
	}
	if name, ok := ref.FTDomain(); ok {
		fmt.Printf("fault tolerance domain: %s\n", name)
	}
	return nil
}
