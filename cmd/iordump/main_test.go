package main

import (
	"testing"

	"eternalgw/internal/ior"
)

func TestDumpValidIOR(t *testing.T) {
	ref := ior.NewMulti("IDL:X:1.0",
		ior.IIOPProfile{Host: "gw1", Port: 1, ObjectKey: []byte("k")},
		ior.IIOPProfile{Host: "gw2", Port: 2, ObjectKey: []byte("k")},
	)
	if err := dump(ref.String()); err != nil {
		t.Fatal(err)
	}
}

func TestDumpRejectsGarbage(t *testing.T) {
	if err := dump("IOR:zz"); err == nil {
		t.Fatal("garbage accepted")
	}
	if err := dump("not-an-ior"); err == nil {
		t.Fatal("non-IOR accepted")
	}
}

func TestRealMainArgs(t *testing.T) {
	ref := ior.New("IDL:X:1.0", ior.IIOPProfile{Host: "h", Port: 1, ObjectKey: []byte("k")})
	if err := realMain([]string{ref.String()}); err != nil {
		t.Fatal(err)
	}
	if err := realMain([]string{"IOR:zz"}); err == nil {
		t.Fatal("garbage accepted")
	}
}
