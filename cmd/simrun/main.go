// Command simrun drives the deterministic simulation (internal/sim)
// from the command line: seed sweeps for CI and soak, exact single-seed
// replay for debugging, and artifact dumps (trace + fault schedule) for
// every failing run.
//
// Usage:
//
//	simrun -seeds 1000                          # sweep seeds 0..999, all workloads
//	simrun -seed 188 -workload bank             # replay one seed exactly
//	simrun -seeds 200 -schedule storm           # pin a fault class
//	simrun -seeds 50 -mutate disable-dedup      # checker-teeth mode: violations expected
//	simrun -seeds 1000 -artifacts /tmp/simfail  # dump failing traces there
//
// Exit status is 0 when every run completed with no invariant
// violations (inverted under -mutate: 0 when at least one seed violates,
// proving the checkers still have teeth).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"eternalgw/internal/faultinject"
	"eternalgw/internal/obs"
	"eternalgw/internal/sim"
)

func main() {
	var (
		seeds     = flag.Int("seeds", 0, "sweep seeds 0..N-1 (mutually exclusive with -seed)")
		seed      = flag.Uint64("seed", 0, "replay exactly one seed")
		workload  = flag.String("workload", "", "pin a workload ("+strings.Join(sim.Workloads(), ", ")+"); empty sweeps all")
		schedule  = flag.String("schedule", "", "pin a fault class ("+strings.Join(sim.Schedules(), ", ")+"); empty draws by seed")
		mutate    = flag.String("mutate", "", "disable a safety mechanism (disable-dedup, disable-membership-sync); success inverts")
		artifacts = flag.String("artifacts", "", "directory to dump failing traces and schedules into")
		jobs      = flag.Int("jobs", runtime.GOMAXPROCS(0), "parallel workers for sweeps")
		metrics   = flag.Bool("metrics", false, "print aggregated eternalgw_sim_* counters at the end")
		verbose   = flag.Bool("v", false, "print one line per run, not only failures")
	)
	flag.Parse()

	var mut sim.Mutations
	switch *mutate {
	case "":
	case "disable-dedup":
		mut.DisableDedup = true
	case "disable-membership-sync":
		mut.DisableMembershipSync = true
	default:
		fmt.Fprintf(os.Stderr, "simrun: unknown -mutate %q\n", *mutate)
		os.Exit(2)
	}

	workloads := sim.Workloads()
	if *workload != "" {
		workloads = []string{*workload}
	}

	single := isFlagSet("seed")
	if *seeds <= 0 && !single {
		*seeds = 100
	}

	type job struct {
		seed uint64
		wl   string
	}
	var jobsList []job
	if single {
		for _, wl := range workloads {
			jobsList = append(jobsList, job{*seed, wl})
		}
	} else {
		for s := uint64(0); s < uint64(*seeds); s++ {
			for _, wl := range workloads {
				jobsList = append(jobsList, job{s, wl})
			}
		}
	}

	reg := obs.NewRegistry()
	m := sim.NewMetrics(reg)

	type failure struct {
		res *sim.Result
	}
	var (
		mu       sync.Mutex
		failures []failure
		ran      int
	)
	ch := make(chan job)
	var wg sync.WaitGroup
	if *jobs < 1 {
		*jobs = 1
	}
	for w := 0; w < *jobs; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				res := sim.Run(sim.Config{
					Seed:      j.seed,
					Workload:  j.wl,
					Schedule:  *schedule,
					Mutations: mut,
					Metrics:   m,
				})
				mu.Lock()
				ran++
				bad := res.Reason != "completed" || len(res.Violations) > 0
				if bad {
					failures = append(failures, failure{res})
				}
				if bad || *verbose {
					status := "ok"
					if bad {
						status = fmt.Sprintf("FAIL (%s, %d violations)", res.Reason, len(res.Violations))
					}
					fmt.Printf("seed=%d workload=%s schedule=%s: %s\n", res.Seed, res.Workload, res.Schedule, status)
					for _, v := range res.Violations {
						fmt.Printf("  %s\n", v)
					}
				}
				mu.Unlock()
			}
		}()
	}
	for _, j := range jobsList {
		ch <- j
	}
	close(ch)
	wg.Wait()

	sort.Slice(failures, func(i, j int) bool {
		a, b := failures[i].res, failures[j].res
		if a.Seed != b.Seed {
			return a.Seed < b.Seed
		}
		return a.Workload < b.Workload
	})

	if *artifacts != "" && len(failures) > 0 {
		if err := os.MkdirAll(*artifacts, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "simrun: %v\n", err)
			os.Exit(2)
		}
		for _, f := range failures {
			if err := dumpArtifact(*artifacts, f.res); err != nil {
				fmt.Fprintf(os.Stderr, "simrun: %v\n", err)
			}
		}
	}

	if *metrics {
		fmt.Print(reg.RenderPrometheus())
	}

	fmt.Printf("simrun: %d runs, %d failures\n", ran, len(failures))
	if *mutate != "" {
		// Teeth mode: the harness is broken if NO seed violates.
		if len(failures) == 0 {
			fmt.Fprintf(os.Stderr, "simrun: -mutate %s found no violating seed in %d runs — checkers have lost their teeth\n", *mutate, ran)
			os.Exit(1)
		}
		fmt.Printf("simrun: -mutate %s confirmed detectable (first violating seed %d)\n", *mutate, failures[0].res.Seed)
		return
	}
	if len(failures) > 0 {
		f := failures[0].res
		fmt.Fprintf(os.Stderr, "simrun: replay first failure with: simrun -seed %d -workload %s -schedule %s\n",
			f.Seed, f.Workload, f.Schedule)
		os.Exit(1)
	}
}

// dumpArtifact writes the failing run's canonical trace and its fault
// schedule (planned and fired) so the failure can be re-audited offline
// and replayed by seed.
func dumpArtifact(dir string, res *sim.Result) error {
	base := fmt.Sprintf("seed%d-%s-%s", res.Seed, res.Workload, res.Schedule)
	var b strings.Builder
	fmt.Fprintf(&b, "# simrun failure artifact\n")
	fmt.Fprintf(&b, "# replay: simrun -seed %d -workload %s -schedule %s\n", res.Seed, res.Workload, res.Schedule)
	fmt.Fprintf(&b, "# reason: %s\n", res.Reason)
	for _, v := range res.Violations {
		fmt.Fprintf(&b, "# violation: %s\n", v)
	}
	fmt.Fprintf(&b, "# schedule (planned):\n")
	for _, line := range strings.Split(strings.TrimRight(faultinject.Describe(res.Planned), "\n"), "\n") {
		fmt.Fprintf(&b, "#   %s\n", line)
	}
	fmt.Fprintf(&b, "# schedule (fired):\n")
	for _, line := range strings.Split(strings.TrimRight(faultinject.Describe(res.Fired), "\n"), "\n") {
		fmt.Fprintf(&b, "#   %s\n", line)
	}
	fmt.Fprintf(&b, "# trace (%d events, hash %016x):\n", res.Trace.Len(), res.TraceHash)
	b.WriteString(res.Trace.Dump())
	return os.WriteFile(filepath.Join(dir, base+".trace"), []byte(b.String()), 0o644)
}

func isFlagSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}
