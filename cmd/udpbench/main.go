// Command udpbench drives a multi-process fault tolerance domain (one
// ftdomaind -node per ring member) from the outside, as real IIOP
// clients: a timed multi-client echo throughput phase that reports its
// result as a `go test -bench`-formatted line (so scripts/benchjson.awk
// can aggregate it into BENCH_udp.json next to the in-process rows), and
// an exactly-once audit phase that appends unique markers through the
// gateway and then proves, from the replicated register's own state,
// that every append executed exactly once.
//
// scripts/benchudp.sh and scripts/udpsmoke.sh are the harnesses that
// launch the node processes and run this client against them.
//
// Usage:
//
//	udpbench -freeports 4                      # print free localhost UDP ports
//	udpbench -addr 127.0.0.1:9021 -clients 16 -duration 2s \
//	         -name BenchmarkUDPMultiProcess/batched/r=3/c=16/small
//	udpbench -addr 127.0.0.1:9021 -clients 8 -audit
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"eternalgw/internal/experiments"
	"eternalgw/internal/orb"
)

const (
	demoKey     = "demo/register"
	callTimeout = 15 * time.Second
)

func main() {
	var (
		freePorts = flag.Int("freeports", 0, "print this many free localhost UDP ports and exit (registry construction for the launch scripts)")
		addr      = flag.String("addr", "", "gateway address to drive")
		clients   = flag.Int("clients", 8, "concurrent client connections, each with one request in flight")
		duration  = flag.Duration("duration", 2*time.Second, "timed length of the throughput phase")
		warmup    = flag.Duration("warmup", 250*time.Millisecond, "untimed warmup before the throughput phase")
		payload   = flag.Int("payload", 64, "echo payload bytes in the throughput phase")
		name      = flag.String("name", "", "benchmark row name; when set, run the throughput phase and print a go test -bench formatted line")
		audit     = flag.Bool("audit", false, "run the exactly-once audit phase (append unique markers, then verify count and content)")
		appends   = flag.Int("audit-appends", 50, "audit appends per client")
	)
	flag.Parse()
	if *freePorts > 0 {
		if err := printFreePorts(*freePorts); err != nil {
			fmt.Fprintln(os.Stderr, "udpbench:", err)
			os.Exit(1)
		}
		return
	}
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "udpbench: -addr required (or -freeports)")
		os.Exit(2)
	}
	if err := run(*addr, *clients, *duration, *warmup, *payload, *name, *audit, *appends); err != nil {
		fmt.Fprintln(os.Stderr, "udpbench:", err)
		os.Exit(1)
	}
}

// printFreePorts binds n ephemeral localhost UDP sockets at once (so the
// ports are distinct), prints their port numbers, then releases them.
func printFreePorts(n int) error {
	conns := make([]*net.UDPConn, 0, n)
	defer func() {
		for _, c := range conns {
			_ = c.Close()
		}
	}()
	for i := 0; i < n; i++ {
		c, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
		if err != nil {
			return err
		}
		conns = append(conns, c)
	}
	for _, c := range conns {
		fmt.Println(c.LocalAddr().(*net.UDPAddr).Port)
	}
	return nil
}

func run(addr string, clients int, duration, warmup time.Duration, payload int, name string, audit bool, appends int) error {
	if clients <= 0 {
		return fmt.Errorf("need at least one client")
	}
	conns := make([]*orb.Conn, clients)
	for i := range conns {
		c, err := orb.Dial(addr)
		if err != nil {
			return fmt.Errorf("dial %s: %w", addr, err)
		}
		defer func() { _ = c.Close() }()
		conns[i] = c
	}
	opts := orb.InvokeOptions{Timeout: callTimeout}
	if name != "" {
		if err := throughput(conns, duration, warmup, payload, name); err != nil {
			return err
		}
	}
	if audit {
		if err := auditExactlyOnce(conns, appends, opts); err != nil {
			return err
		}
	}
	return nil
}

// throughput drives every connection with one echo in flight until the
// deadline and prints the aggregate as a benchmark line.
func throughput(conns []*orb.Conn, duration, warmup time.Duration, payload int, name string) error {
	args := experiments.OctetSeqArg(make([]byte, payload))
	opts := orb.InvokeOptions{Timeout: callTimeout}
	phase := func(d time.Duration) (uint64, time.Duration, error) {
		var (
			total    atomic.Uint64
			wg       sync.WaitGroup
			errMu    sync.Mutex
			firstErr error
		)
		deadline := time.Now().Add(d)
		start := time.Now()
		for _, c := range conns {
			wg.Add(1)
			go func(c *orb.Conn) {
				defer wg.Done()
				for time.Now().Before(deadline) {
					if _, err := c.Call([]byte(demoKey), "echo", args, opts); err != nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
						return
					}
					total.Add(1)
				}
			}(c)
		}
		wg.Wait()
		return total.Load(), time.Since(start), firstErr
	}
	if warmup > 0 {
		if _, _, err := phase(warmup); err != nil {
			return fmt.Errorf("warmup: %w", err)
		}
	}
	ops, elapsed, err := phase(duration)
	if err != nil {
		return fmt.Errorf("throughput: %w", err)
	}
	if ops == 0 {
		return fmt.Errorf("throughput: no operations completed in %v", duration)
	}
	nsPerOp := float64(elapsed.Nanoseconds()) / float64(ops)
	mbPerSec := float64(ops) * float64(payload) / elapsed.Seconds() / 1e6
	// The exact shape `go test -bench` prints, so benchjson.awk and
	// benchcompare-style tooling parse it unmodified.
	fmt.Printf("%s-%d \t%8d\t%12.1f ns/op\t%8.2f MB/s\n",
		name, runtime.GOMAXPROCS(0), ops, nsPerOp, mbPerSec)
	return nil
}

// auditExactlyOnce has every client append a unique marker sequence
// through the gateway, then checks against the replicated register's own
// state that the operation count advanced by exactly the number of
// appends and that every marker appears exactly once in the register —
// no lost appends, no duplicated executions, over a real lossy network.
func auditExactlyOnce(conns []*orb.Conn, appends int, opts orb.InvokeOptions) error {
	before, err := opsCount(conns[0], opts)
	if err != nil {
		return fmt.Errorf("audit baseline: %w", err)
	}
	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
	)
	for i, c := range conns {
		wg.Add(1)
		go func(i int, c *orb.Conn) {
			defer wg.Done()
			for j := 0; j < appends; j++ {
				marker := fmt.Sprintf("c%02dx%04d;", i, j)
				if _, err := c.Call([]byte(demoKey), "append", experiments.OctetSeqArg([]byte(marker)), opts); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("append %s: %w", marker, err)
					}
					errMu.Unlock()
					return
				}
			}
		}(i, c)
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	after, err := opsCount(conns[0], opts)
	if err != nil {
		return fmt.Errorf("audit recount: %w", err)
	}
	want := int64(len(conns) * appends)
	if after-before != want {
		return fmt.Errorf("audit: ops advanced by %d, want %d (lost or duplicated executions)", after-before, want)
	}
	r, err := conns[0].Call([]byte(demoKey), "read", nil, opts)
	if err != nil {
		return fmt.Errorf("audit read: %w", err)
	}
	value := string(r.ReadOctetSeq())
	if err := r.Err(); err != nil {
		return err
	}
	for i := range conns {
		for j := 0; j < appends; j++ {
			marker := fmt.Sprintf("c%02dx%04d;", i, j)
			if n := strings.Count(value, marker); n != 1 {
				return fmt.Errorf("audit: marker %s appears %d times, want exactly once", marker, n)
			}
		}
	}
	fmt.Printf("udpbench: audit ok: %d appends executed exactly once (ops %d -> %d)\n", want, before, after)
	return nil
}

// opsCount reads the register's operation counter.
func opsCount(c *orb.Conn, opts orb.InvokeOptions) (int64, error) {
	r, err := c.Call([]byte(demoKey), "ops", nil, opts)
	if err != nil {
		return 0, err
	}
	n := r.ReadLongLong()
	return n, r.Err()
}
