// Command ftdomaind runs a complete fault tolerance domain in one
// process: a Totem ring over the simulated network, the replication
// mechanisms on every processor, a replicated demo object (a register
// supporting set/append/read/ops), and one or more gateways listening on
// real TCP ports.
//
// It prints the multi-profile IOR that external clients (cmd/ftclient,
// or any program speaking GIOP 1.0) use to reach the replicated object
// through the gateways, then serves until interrupted.
//
// Usage:
//
//	ftdomaind -nodes 4 -replicas 3 -gateways 2 -style active
//	ftdomaind -listen 127.0.0.1:9021,127.0.0.1:9022
package main

import (
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"eternalgw/internal/admission"
	"eternalgw/internal/core"
	"eternalgw/internal/domain"
	"eternalgw/internal/experiments"
	"eternalgw/internal/ftmgmt"
	"eternalgw/internal/interceptor"
	"eternalgw/internal/ior"
	"eternalgw/internal/memnet"
	"eternalgw/internal/naming"
	"eternalgw/internal/obs"
	"eternalgw/internal/orb"
	"eternalgw/internal/replication"
	"eternalgw/internal/totem"
	"eternalgw/internal/udpnet"
)

// udpFactory builds a localhost UDP registry for the domain's processors
// and returns a transport factory over it, applying the UDP tuning knobs
// to every endpoint.
func udpFactory(nodes int, ucfg udpnet.Config) (func(memnet.NodeID) (totem.Transport, error), udpnet.Registry, error) {
	registry := make(udpnet.Registry, nodes)
	for i := 0; i < nodes; i++ {
		id := memnet.NodeID(fmt.Sprintf("demo/p%02d", i))
		probe, err := udpnet.Listen(id, udpnet.Registry{id: "127.0.0.1:0"})
		if err != nil {
			return nil, nil, err
		}
		registry[id] = probe.Addr()
		if err := probe.Close(); err != nil {
			return nil, nil, err
		}
	}
	factory := func(id memnet.NodeID) (totem.Transport, error) {
		return udpnet.ListenConfig(id, registry, ucfg)
	}
	return factory, registry, nil
}

// parseRegistry decodes a -registry specification: comma-separated
// "id=host:port" pairs, or "@path" naming a file with one pair per line
// ('#' starts a comment). It returns the registry plus the node ids in
// sorted order — the convention order that decides replica placement in
// node mode.
func parseRegistry(spec string) (udpnet.Registry, []memnet.NodeID, error) {
	if spec == "" {
		return nil, nil, fmt.Errorf("-node requires -registry")
	}
	var pairs []string
	if strings.HasPrefix(spec, "@") {
		data, err := os.ReadFile(spec[1:])
		if err != nil {
			return nil, nil, fmt.Errorf("registry file: %w", err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			if i := strings.IndexByte(line, '#'); i >= 0 {
				line = line[:i]
			}
			if line = strings.TrimSpace(line); line != "" {
				pairs = append(pairs, line)
			}
		}
	} else {
		pairs = strings.Split(spec, ",")
	}
	reg := make(udpnet.Registry, len(pairs))
	for _, p := range pairs {
		p = strings.TrimSpace(p)
		id, addr, ok := strings.Cut(p, "=")
		if !ok || id == "" || addr == "" {
			return nil, nil, fmt.Errorf("bad registry entry %q (want id=host:port)", p)
		}
		if _, dup := reg[memnet.NodeID(id)]; dup {
			return nil, nil, fmt.Errorf("duplicate registry entry for %q", id)
		}
		reg[memnet.NodeID(id)] = addr
	}
	ids := make([]memnet.NodeID, 0, len(reg))
	for id := range reg {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return reg, ids, nil
}

const (
	demoGroup replication.GroupID = 100
	demoKey                       = "demo/register"
	demoType                      = "IDL:eternalgw/Register:1.0"
	demoName                      = "demo/register"
)

// bindDemo registers the demo object's reference in the name service
// through a gateway, like any external administration client would.
func bindDemo(nsRef, demoRef ior.Ref) error {
	p, err := nsRef.PrimaryProfile()
	if err != nil {
		return err
	}
	conn, err := orb.Dial(p.Addr())
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }()
	return naming.ViaConn(conn).Rebind(demoName, demoRef)
}

func main() {
	var (
		nodes    = flag.Int("nodes", 4, "processors in the domain")
		replicas = flag.Int("replicas", 3, "replicas of the demo object")
		gateways = flag.Int("gateways", 2, "gateways on the domain edge")
		styleStr = flag.String("style", "active", "replication style: stateless|cold|warm|active|voting")
		listen   = flag.String("listen", "", "comma-separated gateway listen addresses (default: ephemeral localhost ports)")
		monitor  = flag.Duration("monitor", 250*time.Millisecond, "resource manager reconciliation interval (0 disables)")
		udp      = flag.Bool("udp", false, "run the domain's totem ring over real UDP sockets on localhost instead of the in-process network")
		node     = flag.String("node", "", "run as a single ring member with this identity (multi-process mode; requires -registry)")
		registry = flag.String("registry", "", "ring membership as comma-separated id=host:port pairs, or @file with one pair per line (node mode)")
		udpRcv   = flag.Int("udp-rcvbuf", 0, "UDP socket receive buffer in bytes (0 = OS default)")
		udpSnd   = flag.Int("udp-sndbuf", 0, "UDP socket send buffer in bytes (0 = OS default)")
		udpBatch = flag.Bool("udp-batch", true, "amortize UDP syscalls with sendmmsg/recvmmsg where supported (false = per-datagram ablation path)")
		ordering = flag.String("ordering", "ring", "totem ordering mode: ring (token rotation) or leader (sequencer fast path, see docs/PERFORMANCE.md)")
		quorum   = flag.Bool("quorum", false, "enable majority-partition protection (a minority partition refuses to serve)")
		obsAddr  = flag.String("obs-addr", "", "ops HTTP listen address for /metrics, /healthz, /readyz, /statusz (empty disables)")
		trace    = flag.Bool("trace", false, "record per-invocation traces, shown on /statusz (requires -obs-addr)")
		pprofOn  = flag.Bool("pprof", false, "serve net/http/pprof profiling endpoints under /debug/pprof/ on the ops server (requires -obs-addr)")
		logLevel = flag.String("log-level", "warn", "log verbosity: debug|info|warn|error")

		maxConns     = flag.Int("max-conns", 0, "admission: max concurrent client connections per gateway (0 = unlimited)")
		maxConnsPer  = flag.Int("max-conns-per-client", 0, "admission: max concurrent connections per client address (0 = unlimited)")
		rate         = flag.Float64("rate", 0, "admission: per-client sustained request rate in req/s (0 = unlimited)")
		inflight     = flag.Int("inflight", 0, "admission: max requests concurrently in flight per gateway (0 = unlimited)")
		drainTimeout = flag.Duration("drain-timeout", 5*time.Second, "how long a gateway may bleed in-flight requests on shutdown")
	)
	flag.Parse()
	udpCfg := udpnet.Config{
		ReadBuffer:      *udpRcv,
		WriteBuffer:     *udpSnd,
		DisableBatching: !*udpBatch,
	}
	if *node != "" {
		if err := runNode(nodeOpts{
			node: *node, registry: *registry, replicas: *replicas,
			styleStr: *styleStr, ordering: *ordering, listen: *listen,
			quorum: *quorum, obsAddr: *obsAddr, logLevel: *logLevel,
			drainTimeout: *drainTimeout, udp: udpCfg,
		}); err != nil {
			fmt.Fprintln(os.Stderr, "ftdomaind:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(runOpts{
		nodes: *nodes, replicas: *replicas, gateways: *gateways,
		styleStr: *styleStr, listen: *listen, monitor: *monitor,
		udp: *udp, udpCfg: udpCfg, quorum: *quorum, ordering: *ordering,
		obsAddr: *obsAddr, trace: *trace, pprof: *pprofOn, logLevel: *logLevel,
		maxConns: *maxConns, maxConnsPerClient: *maxConnsPer,
		rate: *rate, inflight: *inflight, drainTimeout: *drainTimeout,
	}); err != nil {
		fmt.Fprintln(os.Stderr, "ftdomaind:", err)
		os.Exit(1)
	}
}

// runOpts carries the parsed command line into run.
type runOpts struct {
	nodes, replicas, gateways int
	styleStr, listen          string
	ordering                  string
	monitor                   time.Duration
	udp, quorum               bool
	udpCfg                    udpnet.Config
	obsAddr                   string
	trace                     bool
	pprof                     bool
	logLevel                  string

	maxConns, maxConnsPerClient int
	rate                        float64
	inflight                    int
	drainTimeout                time.Duration

	// stop, when non-nil, ends the serve loop like a signal would (tests
	// use it to drive a graceful shutdown without raising signals).
	stop <-chan struct{}
	// onReady, when non-nil, is called with the gateway addresses once
	// the domain is serving.
	onReady func(addrs []string)
	// onObs, when non-nil, is called with the ops server's address once
	// it is serving (tests use it to reach the admin endpoints).
	onObs func(addr string)
}

// admissionConfig translates the admission flags into a config template,
// or nil when every knob is at its unlimited default.
func (o *runOpts) admissionConfig() *admission.Config {
	if o.maxConns == 0 && o.maxConnsPerClient == 0 && o.rate == 0 && o.inflight == 0 {
		return nil
	}
	return &admission.Config{
		MaxConns:          o.maxConns,
		MaxConnsPerClient: o.maxConnsPerClient,
		Rate:              o.rate,
		MaxInFlight:       o.inflight,
		AdmitWait:         100 * time.Millisecond,
	}
}

func parseStyle(s string) (replication.Style, error) {
	switch strings.ToLower(s) {
	case "stateless":
		return replication.Stateless, nil
	case "cold":
		return replication.ColdPassive, nil
	case "warm":
		return replication.WarmPassive, nil
	case "active":
		return replication.Active, nil
	case "voting":
		return replication.ActiveWithVoting, nil
	default:
		return 0, fmt.Errorf("unknown replication style %q", s)
	}
}

func parseOrdering(s string) (totem.OrderingMode, error) {
	switch strings.ToLower(s) {
	case "", "ring":
		return totem.OrderingRing, nil
	case "leader":
		return totem.OrderingLeader, nil
	default:
		return 0, fmt.Errorf("unknown ordering mode %q (want ring or leader)", s)
	}
}

func run(o runOpts) error {
	nodes, replicas, gateways := o.nodes, o.replicas, o.gateways
	listen, monitor := o.listen, o.monitor
	style, err := parseStyle(o.styleStr)
	if err != nil {
		return err
	}
	orderingMode, err := parseOrdering(o.ordering)
	if err != nil {
		return err
	}
	if replicas > nodes {
		return fmt.Errorf("cannot place %d replicas on %d nodes", replicas, nodes)
	}
	cfg := domain.Config{
		Name:      "demo",
		Nodes:     nodes,
		Log:       obs.NewLogger(os.Stderr, obs.ParseLevel(o.logLevel)),
		Admission: o.admissionConfig(),
		// Whenever the gateway set changes (admin surface add/remove),
		// print the re-stitched references so operators can hand the new
		// profile list to clients that do not watch the name service.
		OnIORUpdate: func(objectKey []byte, ref ior.Ref) {
			fmt.Printf("republished IOR for %q:\n%s\n", objectKey, ref.String())
		},
	}
	cfg.Totem.Ordering = orderingMode
	if orderingMode == totem.OrderingLeader {
		fmt.Println("totem ordering: leader fast path (sequencer-assigned order, ring fallback on failure)")
	}
	if cfg.Admission != nil {
		fmt.Printf("admission control: max-conns=%d max-conns-per-client=%d rate=%g inflight=%d\n",
			o.maxConns, o.maxConnsPerClient, o.rate, o.inflight)
	}
	var ops *obs.Server
	if o.obsAddr != "" {
		cfg.Metrics = obs.NewRegistry()
		if o.trace {
			cfg.Tracer = obs.NewTracer(256)
			cfg.Tracer.Register(cfg.Metrics)
		}
		ops, err = obs.NewServerOpts(o.obsAddr, cfg.Metrics, cfg.Tracer, obs.ServerOptions{Pprof: o.pprof})
		if err != nil {
			return fmt.Errorf("ops server: %w", err)
		}
		defer func() { _ = ops.Close() }()
		endpoints := "/metrics /healthz /readyz /statusz"
		if o.pprof {
			endpoints += " /debug/pprof/"
		}
		fmt.Printf("ops endpoints on http://%s/ (%s)\n", ops.Addr(), endpoints)
	} else if o.pprof {
		return fmt.Errorf("-pprof requires -obs-addr")
	}
	if o.quorum {
		cfg.Replication = replication.Config{QuorumOf: nodes}
	}
	if o.udp {
		ucfg := o.udpCfg
		ucfg.Metrics = cfg.Metrics
		factory, registry, err := udpFactory(nodes, ucfg)
		if err != nil {
			return err
		}
		cfg.TransportFactory = factory
		fmt.Printf("totem ring over UDP: %d sockets on localhost\n", len(registry))
	}
	d, err := domain.New(cfg)
	if err != nil {
		return err
	}
	defer d.Close()
	if ops != nil {
		ops.AddStatusSection("dedup-cache", func() string {
			var b strings.Builder
			for i := 0; i < d.Nodes(); i++ {
				n := d.Node(i)
				for group, entries := range n.RM.DedupOccupancy() {
					fmt.Fprintf(&b, "node %s group %d: %d entries\n", n.ID, group, entries)
				}
			}
			if b.Len() == 0 {
				return "no local servant replicas\n"
			}
			return b.String()
		})
	}

	demoFactory := func() (replication.Application, error) {
		return &experiments.RegisterApp{}, nil
	}
	err = d.Manager().CreateReplicatedObject(demoGroup, ftmgmt.Properties{
		Style:           style,
		InitialReplicas: replicas,
		MinReplicas:     replicas,
		ObjectKey:       []byte(demoKey),
		TypeID:          demoType,
	}, demoFactory)
	if err != nil {
		return err
	}
	if monitor > 0 {
		d.Manager().Monitor(monitor)
	}

	// A replicated name service, bound under the conventional key, with
	// the demo object registered in it.
	err = d.Manager().CreateReplicatedObject(demoGroup+1, ftmgmt.Properties{
		Style:           replication.Active,
		InitialReplicas: min(2, nodes),
		MinReplicas:     1,
		ObjectKey:       []byte(naming.ObjectKey),
		TypeID:          naming.TypeID,
	}, func() (replication.Application, error) { return naming.NewService(), nil })
	if err != nil {
		return err
	}

	var addrs []string
	if listen != "" {
		addrs = strings.Split(listen, ",")
		gateways = len(addrs)
	}
	var gwAddrs []string
	for i := 0; i < gateways; i++ {
		addr := ""
		if addrs != nil {
			addr = strings.TrimSpace(addrs[i])
		}
		gw, err := d.AddGateway(i%nodes, addr)
		if err != nil {
			return fmt.Errorf("gateway %d: %w", i, err)
		}
		gwAddrs = append(gwAddrs, gw.Addr())
		fmt.Printf("gateway %d listening on %s\n", i, gw.Addr())
	}
	if ops != nil && cfg.Admission != nil {
		ops.AddStatusSection("admission", func() string {
			var b strings.Builder
			for i, gw := range d.Gateways() {
				adm := gw.Admission()
				if adm == nil {
					continue
				}
				s := adm.Stats()
				fmt.Fprintf(&b, "gateway %d (%s): inflight=%d draining=%v breaker=%v clients=%d admitted=%d shed rate=%d window=%d draining=%d conns over-cap=%d breaker=%d trips=%d\n",
					i, gw.Addr(), gw.InFlight(), gw.Draining(), adm.BreakerOpen(), adm.TrackedClients(),
					s.Admitted, s.ShedRate, s.ShedWindow, s.ShedDraining, s.ConnsOverCap, s.ConnsShedBreaker, s.BreakerTrips)
			}
			if b.Len() == 0 {
				return "no admission-controlled gateways\n"
			}
			return b.String()
		})
	}
	ref, err := d.PublishIOR(demoType, []byte(demoKey))
	if err != nil {
		return err
	}
	nsRef, err := d.PublishIOR(naming.TypeID, []byte(naming.ObjectKey))
	if err != nil {
		return err
	}
	if err := bindDemo(nsRef, ref); err != nil {
		return fmt.Errorf("binding demo object in the name service: %w", err)
	}
	fmt.Printf("domain: %d processors, %d %s replicas of %q, %d gateway(s)\n",
		nodes, replicas, style, demoKey, gateways)
	fmt.Printf("object reference:\n%s\n", ref.String())
	fmt.Printf("name service reference (demo object bound as %q):\n%s\n", demoName, nsRef.String())
	drainTimeout := o.drainTimeout
	if drainTimeout <= 0 {
		drainTimeout = 5 * time.Second
	}
	if ops != nil {
		registerAdmin(ops, d, demoFactory, drainTimeout)
		fmt.Printf("reconfiguration admin on http://%s/reconfig/ (views grow shrink replace upgrade gateway/add gateway/remove)\n", ops.Addr())
		ops.SetReady(true)
	}
	fmt.Println("serving; interrupt to stop")
	if o.onReady != nil {
		o.onReady(gwAddrs)
	}
	if o.onObs != nil && ops != nil {
		o.onObs(ops.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case <-sig:
	case <-o.stop:
	}
	// Graceful shutdown: every gateway drains concurrently — stops
	// accepting, bleeds its in-flight invocations under the deadline, and
	// hands remaining clients to whatever redundant gateways survive it
	// (or, on full shutdown, to the clients' retry logic).
	if ops != nil {
		ops.SetReady(false)
	}
	fmt.Println("draining gateways")
	var wg sync.WaitGroup
	for _, gw := range d.Gateways() {
		wg.Add(1)
		go func(gw *core.Gateway) {
			defer wg.Done()
			_ = gw.Drain(drainTimeout)
		}(gw)
	}
	wg.Wait()
	fmt.Println("shutting down")
	return nil
}

// nodeOpts carries the parsed command line into runNode.
type nodeOpts struct {
	node, registry string
	replicas       int
	styleStr       string
	ordering       string
	listen         string
	quorum         bool
	obsAddr        string
	logLevel       string
	drainTimeout   time.Duration
	udp            udpnet.Config

	// stop, onReady, onObs mirror the runOpts test hooks.
	stop    <-chan struct{}
	onReady func(addrs []string)
	onObs   func(addr string)
}

// runNode runs one ring member in this OS process: a UDP endpoint bound
// at the node's registry address, a totem node over the full registry
// membership, and the replication mechanisms. Deployment is by
// convention over the sorted registry ids — the first -replicas ids each
// host a replica of the demo object, and any node given -listen also
// hosts gateways — so the processes need no coordinator beyond the
// shared registry (docs/OPERATIONS.md "Real-network deployment").
func runNode(o nodeOpts) error {
	style, err := parseStyle(o.styleStr)
	if err != nil {
		return err
	}
	orderingMode, err := parseOrdering(o.ordering)
	if err != nil {
		return err
	}
	registry, ids, err := parseRegistry(o.registry)
	if err != nil {
		return err
	}
	id := memnet.NodeID(o.node)
	idx := -1
	for i, n := range ids {
		if n == id {
			idx = i
		}
	}
	if idx < 0 {
		return fmt.Errorf("node %q is not in the registry %v", id, ids)
	}
	if o.replicas <= 0 || o.replicas > len(ids) {
		return fmt.Errorf("cannot place %d replicas on %d registry nodes", o.replicas, len(ids))
	}
	log := obs.NewLogger(os.Stderr, obs.ParseLevel(o.logLevel))
	var metrics *obs.Registry
	var ops *obs.Server
	if o.obsAddr != "" {
		metrics = obs.NewRegistry()
		ops, err = obs.NewServerOpts(o.obsAddr, metrics, nil, obs.ServerOptions{})
		if err != nil {
			return fmt.Errorf("ops server: %w", err)
		}
		defer func() { _ = ops.Close() }()
		fmt.Printf("ops endpoints on http://%s/ (/metrics /healthz /readyz /statusz)\n", ops.Addr())
	}

	ucfg := o.udp
	ucfg.Metrics = metrics
	ep, err := udpnet.ListenConfig(id, registry, ucfg)
	if err != nil {
		return err
	}
	defer func() { _ = ep.Close() }()
	fmt.Printf("node %s: UDP endpoint %s (batched=%v), ring of %d\n", id, ep.Addr(), ep.Batched(), len(ids))
	tn, err := totem.Start(totem.Config{
		ID:       id,
		Endpoint: ep,
		Members:  ids,
		Ordering: orderingMode,
		Metrics:  metrics,
	})
	if err != nil {
		return err
	}
	defer tn.Stop()
	rcfg := replication.Config{Node: tn, NodeID: id, Metrics: metrics}
	if o.quorum {
		rcfg.QuorumOf = len(ids)
	}
	rm, err := replication.New(rcfg)
	if err != nil {
		return err
	}
	defer rm.Stop()

	// Group setup. CreateGroup is a delivered no-op on an existing id, so
	// every process announces both groups and the first delivery wins —
	// no coordinator needed. The waits below then synchronize the fleet.
	const syncTimeout = 60 * time.Second
	if err := rm.CreateGroup(domain.DefaultGatewayGroup, replication.Active, nil); err != nil {
		return err
	}
	if err := rm.CreateGroup(demoGroup, style, []byte(demoKey)); err != nil {
		return err
	}
	if err := rm.WaitForGroup(domain.DefaultGatewayGroup, syncTimeout); err != nil {
		return fmt.Errorf("gateway group: %w", err)
	}
	if idx < o.replicas {
		if err := rm.JoinGroup(demoGroup, &experiments.RegisterApp{}); err != nil {
			return err
		}
	}
	if err := rm.WaitForMembers(demoGroup, o.replicas, syncTimeout); err != nil {
		return fmt.Errorf("demo group never reached %d replicas: %w", o.replicas, err)
	}
	if idx < o.replicas {
		if err := rm.WaitSynced(demoGroup, syncTimeout); err != nil {
			return fmt.Errorf("demo replica sync: %w", err)
		}
		fmt.Printf("node %s: hosting %s replica of %q (%d of %d)\n", id, style, demoKey, idx+1, o.replicas)
	}

	drainTimeout := o.drainTimeout
	if drainTimeout <= 0 {
		drainTimeout = 5 * time.Second
	}
	var gws []*core.Gateway
	var gwAddrs []string
	if o.listen != "" {
		for i, addr := range strings.Split(o.listen, ",") {
			gw, err := core.New(core.Config{
				RM:         rm,
				Group:      domain.DefaultGatewayGroup,
				ListenAddr: strings.TrimSpace(addr),
				Metrics:    metrics,
				Log:        log,
			})
			if err != nil {
				return fmt.Errorf("gateway %d: %w", i, err)
			}
			defer func() { _ = gw.Close() }()
			if err := rm.WaitSynced(domain.DefaultGatewayGroup, syncTimeout); err != nil {
				return fmt.Errorf("gateway group sync: %w", err)
			}
			gws = append(gws, gw)
			gwAddrs = append(gwAddrs, gw.Addr())
			fmt.Printf("gateway %d listening on %s\n", i, gw.Addr())
		}
		addrs := make([]interceptor.GatewayAddr, 0, len(gws))
		for _, gw := range gws {
			host, port := gw.HostPort()
			addrs = append(addrs, interceptor.GatewayAddr{Host: host, Port: port})
		}
		ref := interceptor.StitchIOR(demoType, []byte(demoKey), addrs...)
		fmt.Printf("object reference:\n%s\n", ref.String())
	}
	if ops != nil {
		ops.SetReady(true)
	}
	fmt.Println("serving; interrupt to stop")
	if o.onReady != nil {
		o.onReady(gwAddrs)
	}
	if o.onObs != nil && ops != nil {
		o.onObs(ops.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)
	select {
	case <-sig:
	case <-o.stop:
	}
	if ops != nil {
		ops.SetReady(false)
	}
	if len(gws) > 0 {
		fmt.Println("draining gateways")
		var wg sync.WaitGroup
		for _, gw := range gws {
			wg.Add(1)
			go func(gw *core.Gateway) {
				defer wg.Done()
				_ = gw.Drain(drainTimeout)
			}(gw)
		}
		wg.Wait()
	}
	fmt.Println("shutting down")
	return nil
}

// registerAdmin mounts the online-reconfiguration admin surface on the
// ops server. All mutating endpoints are POST; responses are plain text.
// The upgrade endpoint performs a rolling restart of the group onto
// fresh instances from the demo factory (each replacement catches up by
// checkpoint + log replay), which is the daemon-level stand-in for
// deploying a new application build.
func registerAdmin(ops *obs.Server, d *domain.Domain, factory ftmgmt.Factory, drainTimeout time.Duration) {
	mgr := d.Manager()

	groupOf := func(r *http.Request) (replication.GroupID, error) {
		raw := r.FormValue("group")
		if raw == "" {
			return demoGroup, nil
		}
		id, err := strconv.ParseUint(raw, 10, 32)
		if err != nil {
			return 0, fmt.Errorf("bad group %q: %w", raw, err)
		}
		return replication.GroupID(id), nil
	}
	post := func(fn func(w http.ResponseWriter, r *http.Request)) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodPost {
				http.Error(w, "POST required", http.StatusMethodNotAllowed)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			fn(w, r)
		})
	}
	writeView := func(w http.ResponseWriter, id replication.GroupID, v replication.View) {
		fmt.Fprintf(w, "group %d: view %d at seq %d, %d members %v\n",
			id, v.Number, v.Seq, len(v.Members), v.Members)
	}

	ops.Handle("/reconfig/views", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rm := d.Node(0).RM
		for _, id := range rm.Groups() {
			if v, ok := rm.View(id); ok {
				writeView(w, id, v)
			}
		}
	}))
	ops.Handle("/reconfig/grow", post(func(w http.ResponseWriter, r *http.Request) {
		id, err := groupOf(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		v, err := mgr.Grow(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeView(w, id, v)
	}))
	ops.Handle("/reconfig/shrink", post(func(w http.ResponseWriter, r *http.Request) {
		id, err := groupOf(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		v, err := mgr.Shrink(id)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeView(w, id, v)
	}))
	ops.Handle("/reconfig/replace", post(func(w http.ResponseWriter, r *http.Request) {
		id, err := groupOf(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		node := r.FormValue("node")
		if node == "" {
			http.Error(w, "node parameter required", http.StatusBadRequest)
			return
		}
		v, err := mgr.Replace(id, memnet.NodeID(node))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeView(w, id, v)
	}))
	ops.Handle("/reconfig/upgrade", post(func(w http.ResponseWriter, r *http.Request) {
		id, err := groupOf(r)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		v, err := mgr.RollingUpgrade(id, factory)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		writeView(w, id, v)
	}))
	ops.Handle("/reconfig/gateway/add", post(func(w http.ResponseWriter, r *http.Request) {
		node := 0
		if raw := r.FormValue("node"); raw != "" {
			n, err := strconv.Atoi(raw)
			if err != nil || n < 0 || n >= d.Nodes() {
				http.Error(w, fmt.Sprintf("bad node %q (have %d)", raw, d.Nodes()), http.StatusBadRequest)
				return
			}
			node = n
		}
		gw, err := d.AddGateway(node, r.FormValue("addr"))
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, "gateway listening on %s (node %d); references republished\n", gw.Addr(), node)
	}))
	ops.Handle("/reconfig/gateway/remove", post(func(w http.ResponseWriter, r *http.Request) {
		addr := r.FormValue("addr")
		var target *core.Gateway
		for _, gw := range d.Gateways() {
			if gw.Addr() == addr {
				target = gw
				break
			}
		}
		if target == nil {
			http.Error(w, fmt.Sprintf("no gateway listening on %q", addr), http.StatusNotFound)
			return
		}
		if len(d.Gateways()) == 1 {
			http.Error(w, "refusing to remove the last gateway", http.StatusConflict)
			return
		}
		if err := d.RemoveGateway(target, drainTimeout); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		fmt.Fprintf(w, "gateway %s drained and removed; references republished\n", addr)
	}))
}
