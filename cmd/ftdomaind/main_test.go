package main

import (
	"testing"
	"time"

	"eternalgw/internal/orb"
)

func TestParseStyle(t *testing.T) {
	tests := []struct {
		in      string
		wantErr bool
	}{
		{"stateless", false},
		{"cold", false},
		{"warm", false},
		{"active", false},
		{"voting", false},
		{"ACTIVE", false},
		{"bogus", true},
		{"", true},
	}
	for _, tt := range tests {
		if _, err := parseStyle(tt.in); (err != nil) != tt.wantErr {
			t.Errorf("parseStyle(%q) err = %v", tt.in, err)
		}
	}
}

func TestRunRejectsImpossiblePlacement(t *testing.T) {
	if err := run(runOpts{nodes: 2, replicas: 3, gateways: 1, styleStr: "active"}); err == nil {
		t.Fatal("3 replicas on 2 nodes accepted")
	}
	if err := run(runOpts{nodes: 2, replicas: 1, gateways: 1, styleStr: "sideways"}); err == nil {
		t.Fatal("bad style accepted")
	}
}

func TestGracefulShutdownDrainsGateways(t *testing.T) {
	stop := make(chan struct{})
	ready := make(chan []string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(runOpts{
			nodes: 2, replicas: 1, gateways: 1, styleStr: "active",
			logLevel: "error", drainTimeout: 2 * time.Second,
			inflight: 32,
			stop:     stop,
			onReady:  func(addrs []string) { ready <- addrs },
		})
	}()
	var addrs []string
	select {
	case addrs = <-ready:
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("domain never became ready")
	}
	// A client is connected and served before the shutdown.
	conn, err := orb.Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Call([]byte(demoKey), "ops", nil, orb.InvokeOptions{Timeout: 5 * time.Second}); err != nil {
		t.Fatal(err)
	}
	// The stop signal triggers the drain; run returns cleanly.
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("graceful shutdown did not complete")
	}
	// The gateway's listener is gone.
	if c, err := orb.Dial(addrs[0]); err == nil {
		_ = c.Close()
		t.Fatal("dial succeeded after shutdown")
	}
}
