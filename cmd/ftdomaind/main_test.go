package main

import "testing"

func TestParseStyle(t *testing.T) {
	tests := []struct {
		in      string
		wantErr bool
	}{
		{"stateless", false},
		{"cold", false},
		{"warm", false},
		{"active", false},
		{"voting", false},
		{"ACTIVE", false},
		{"bogus", true},
		{"", true},
	}
	for _, tt := range tests {
		if _, err := parseStyle(tt.in); (err != nil) != tt.wantErr {
			t.Errorf("parseStyle(%q) err = %v", tt.in, err)
		}
	}
}

func TestRunRejectsImpossiblePlacement(t *testing.T) {
	if err := run(2, 3, 1, "active", "", 0, false, false); err == nil {
		t.Fatal("3 replicas on 2 nodes accepted")
	}
	if err := run(2, 1, 1, "sideways", "", 0, false, false); err == nil {
		t.Fatal("bad style accepted")
	}
}
