package main

import (
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"
	"time"

	"eternalgw/internal/orb"
)

func TestParseStyle(t *testing.T) {
	tests := []struct {
		in      string
		wantErr bool
	}{
		{"stateless", false},
		{"cold", false},
		{"warm", false},
		{"active", false},
		{"voting", false},
		{"ACTIVE", false},
		{"bogus", true},
		{"", true},
	}
	for _, tt := range tests {
		if _, err := parseStyle(tt.in); (err != nil) != tt.wantErr {
			t.Errorf("parseStyle(%q) err = %v", tt.in, err)
		}
	}
}

func TestRunRejectsImpossiblePlacement(t *testing.T) {
	if err := run(runOpts{nodes: 2, replicas: 3, gateways: 1, styleStr: "active"}); err == nil {
		t.Fatal("3 replicas on 2 nodes accepted")
	}
	if err := run(runOpts{nodes: 2, replicas: 1, gateways: 1, styleStr: "sideways"}); err == nil {
		t.Fatal("bad style accepted")
	}
}

func TestGracefulShutdownDrainsGateways(t *testing.T) {
	stop := make(chan struct{})
	ready := make(chan []string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(runOpts{
			nodes: 2, replicas: 1, gateways: 1, styleStr: "active",
			logLevel: "error", drainTimeout: 2 * time.Second,
			inflight: 32,
			stop:     stop,
			onReady:  func(addrs []string) { ready <- addrs },
		})
	}()
	var addrs []string
	select {
	case addrs = <-ready:
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("domain never became ready")
	}
	// A client is connected and served before the shutdown.
	conn, err := orb.Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Call([]byte(demoKey), "ops", nil, orb.InvokeOptions{Timeout: 5 * time.Second}); err != nil {
		t.Fatal(err)
	}
	// The stop signal triggers the drain; run returns cleanly.
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("graceful shutdown did not complete")
	}
	// The gateway's listener is gone.
	if c, err := orb.Dial(addrs[0]); err == nil {
		_ = c.Close()
		t.Fatal("dial succeeded after shutdown")
	}
}

func TestAdminReconfigEndpoints(t *testing.T) {
	stop := make(chan struct{})
	ready := make(chan []string, 1)
	obsReady := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(runOpts{
			nodes: 3, replicas: 2, gateways: 2, styleStr: "active",
			logLevel: "error", drainTimeout: 2 * time.Second,
			obsAddr: "127.0.0.1:0",
			stop:    stop,
			onReady: func(addrs []string) { ready <- addrs },
			onObs:   func(addr string) { obsReady <- addr },
		})
	}()
	defer func() {
		close(stop)
		if err := <-done; err != nil {
			t.Errorf("run: %v", err)
		}
	}()
	var admin string
	var gwAddrs []string
	select {
	case admin = <-obsReady:
		gwAddrs = <-ready
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("domain never became ready")
	}

	post := func(path string, wantCode int) string {
		t.Helper()
		resp, err := http.Post("http://"+admin+path, "", nil)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer func() { _ = resp.Body.Close() }()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != wantCode {
			t.Fatalf("POST %s = %d (%s), want %d", path, resp.StatusCode, body, wantCode)
		}
		return string(body)
	}

	// Grow the demo group onto the spare node, then shrink back.
	if out := post("/reconfig/grow?group=100", http.StatusOK); !strings.Contains(out, "3 members") {
		t.Fatalf("grow response: %q", out)
	}
	if out := post("/reconfig/shrink?group=100", http.StatusOK); !strings.Contains(out, "2 members") {
		t.Fatalf("shrink response: %q", out)
	}
	// Below the minimum the shrink is refused.
	post("/reconfig/shrink?group=100", http.StatusInternalServerError)

	// Rolling upgrade keeps the group at its degree.
	if out := post("/reconfig/upgrade?group=100", http.StatusOK); !strings.Contains(out, "2 members") {
		t.Fatalf("upgrade response: %q", out)
	}

	// Views are listed for every group.
	resp, err := http.Get("http://" + admin + "/reconfig/views")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if !strings.Contains(string(body), "group 100") {
		t.Fatalf("views response: %q", body)
	}

	// Gateway churn through the admin surface: add one, then retire one
	// of the originals (its profile is republished away before it drains).
	out := post("/reconfig/gateway/add?node=2", http.StatusOK)
	if !strings.Contains(out, "listening on") {
		t.Fatalf("gateway add response: %q", out)
	}
	out = post("/reconfig/gateway/remove?addr="+url.QueryEscape(gwAddrs[0]), http.StatusOK)
	if !strings.Contains(out, "drained and removed") {
		t.Fatalf("gateway remove response: %q", out)
	}
	post("/reconfig/gateway/remove?addr="+url.QueryEscape(gwAddrs[0]), http.StatusNotFound)
	// Mutating endpoints reject GET.
	if resp, err := http.Get("http://" + admin + "/reconfig/grow"); err == nil {
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET grow = %d, want 405", resp.StatusCode)
		}
		_ = resp.Body.Close()
	}
}
