package main

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
	"time"

	"eternalgw/internal/experiments"
	"eternalgw/internal/memnet"
	"eternalgw/internal/orb"
	"eternalgw/internal/udpnet"
)

func TestParseStyle(t *testing.T) {
	tests := []struct {
		in      string
		wantErr bool
	}{
		{"stateless", false},
		{"cold", false},
		{"warm", false},
		{"active", false},
		{"voting", false},
		{"ACTIVE", false},
		{"bogus", true},
		{"", true},
	}
	for _, tt := range tests {
		if _, err := parseStyle(tt.in); (err != nil) != tt.wantErr {
			t.Errorf("parseStyle(%q) err = %v", tt.in, err)
		}
	}
}

func TestRunRejectsImpossiblePlacement(t *testing.T) {
	if err := run(runOpts{nodes: 2, replicas: 3, gateways: 1, styleStr: "active"}); err == nil {
		t.Fatal("3 replicas on 2 nodes accepted")
	}
	if err := run(runOpts{nodes: 2, replicas: 1, gateways: 1, styleStr: "sideways"}); err == nil {
		t.Fatal("bad style accepted")
	}
}

func TestGracefulShutdownDrainsGateways(t *testing.T) {
	stop := make(chan struct{})
	ready := make(chan []string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(runOpts{
			nodes: 2, replicas: 1, gateways: 1, styleStr: "active",
			logLevel: "error", drainTimeout: 2 * time.Second,
			inflight: 32,
			stop:     stop,
			onReady:  func(addrs []string) { ready <- addrs },
		})
	}()
	var addrs []string
	select {
	case addrs = <-ready:
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("domain never became ready")
	}
	// A client is connected and served before the shutdown.
	conn, err := orb.Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Call([]byte(demoKey), "ops", nil, orb.InvokeOptions{Timeout: 5 * time.Second}); err != nil {
		t.Fatal(err)
	}
	// The stop signal triggers the drain; run returns cleanly.
	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("graceful shutdown did not complete")
	}
	// The gateway's listener is gone.
	if c, err := orb.Dial(addrs[0]); err == nil {
		_ = c.Close()
		t.Fatal("dial succeeded after shutdown")
	}
}

func TestAdminReconfigEndpoints(t *testing.T) {
	stop := make(chan struct{})
	ready := make(chan []string, 1)
	obsReady := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(runOpts{
			nodes: 3, replicas: 2, gateways: 2, styleStr: "active",
			logLevel: "error", drainTimeout: 2 * time.Second,
			obsAddr: "127.0.0.1:0",
			stop:    stop,
			onReady: func(addrs []string) { ready <- addrs },
			onObs:   func(addr string) { obsReady <- addr },
		})
	}()
	defer func() {
		close(stop)
		if err := <-done; err != nil {
			t.Errorf("run: %v", err)
		}
	}()
	var admin string
	var gwAddrs []string
	select {
	case admin = <-obsReady:
		gwAddrs = <-ready
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(30 * time.Second):
		t.Fatal("domain never became ready")
	}

	post := func(path string, wantCode int) string {
		t.Helper()
		resp, err := http.Post("http://"+admin+path, "", nil)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer func() { _ = resp.Body.Close() }()
		body, _ := io.ReadAll(resp.Body)
		if resp.StatusCode != wantCode {
			t.Fatalf("POST %s = %d (%s), want %d", path, resp.StatusCode, body, wantCode)
		}
		return string(body)
	}

	// Grow the demo group onto the spare node, then shrink back.
	if out := post("/reconfig/grow?group=100", http.StatusOK); !strings.Contains(out, "3 members") {
		t.Fatalf("grow response: %q", out)
	}
	if out := post("/reconfig/shrink?group=100", http.StatusOK); !strings.Contains(out, "2 members") {
		t.Fatalf("shrink response: %q", out)
	}
	// Below the minimum the shrink is refused.
	post("/reconfig/shrink?group=100", http.StatusInternalServerError)

	// Rolling upgrade keeps the group at its degree.
	if out := post("/reconfig/upgrade?group=100", http.StatusOK); !strings.Contains(out, "2 members") {
		t.Fatalf("upgrade response: %q", out)
	}

	// Views are listed for every group.
	resp, err := http.Get("http://" + admin + "/reconfig/views")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if !strings.Contains(string(body), "group 100") {
		t.Fatalf("views response: %q", body)
	}

	// Gateway churn through the admin surface: add one, then retire one
	// of the originals (its profile is republished away before it drains).
	out := post("/reconfig/gateway/add?node=2", http.StatusOK)
	if !strings.Contains(out, "listening on") {
		t.Fatalf("gateway add response: %q", out)
	}
	out = post("/reconfig/gateway/remove?addr="+url.QueryEscape(gwAddrs[0]), http.StatusOK)
	if !strings.Contains(out, "drained and removed") {
		t.Fatalf("gateway remove response: %q", out)
	}
	post("/reconfig/gateway/remove?addr="+url.QueryEscape(gwAddrs[0]), http.StatusNotFound)
	// Mutating endpoints reject GET.
	if resp, err := http.Get("http://" + admin + "/reconfig/grow"); err == nil {
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET grow = %d, want 405", resp.StatusCode)
		}
		_ = resp.Body.Close()
	}
}

func TestParseRegistry(t *testing.T) {
	reg, ids, err := parseRegistry("b=127.0.0.1:7002, a=127.0.0.1:7001 ,c=127.0.0.1:7003")
	if err != nil {
		t.Fatal(err)
	}
	if len(reg) != 3 || reg["a"] != "127.0.0.1:7001" {
		t.Fatalf("registry = %v", reg)
	}
	if fmt.Sprint(ids) != "[a b c]" {
		t.Fatalf("ids = %v, want sorted [a b c]", ids)
	}
	for _, bad := range []string{"", "a", "=x", "a=", "a=1,a=2"} {
		if _, _, err := parseRegistry(bad); err == nil {
			t.Fatalf("parseRegistry(%q) accepted", bad)
		}
	}
	f := filepath.Join(t.TempDir(), "reg")
	if err := os.WriteFile(f, []byte("# ring\nn0=127.0.0.1:1 # first\n\nn1=127.0.0.1:2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	reg, ids, err = parseRegistry("@" + f)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || reg["n1"] != "127.0.0.1:2" {
		t.Fatalf("file registry = %v ids %v", reg, ids)
	}
}

// TestRunNodeMultiProcess stands up a three-member ring with one runNode
// per member — the one-ring-member-per-OS-process deployment, exercised
// in-process so the test can drive the runNode lifecycle directly. Two
// members host replicas by the sorted-registry convention; the third
// hosts the gateway. A client invokes through the gateway and the
// register's operations execute exactly once across the replicated
// group.
func TestRunNodeMultiProcess(t *testing.T) {
	reg, err := freeUDPRegistry("mp/a", "mp/b", "mp/c")
	if err != nil {
		t.Fatal(err)
	}
	spec := registrySpec(reg)
	stops := make([]chan struct{}, 3)
	dones := make([]chan error, 3)
	ready := make(chan []string, 1)
	for i, id := range []string{"mp/a", "mp/b", "mp/c"} {
		stops[i] = make(chan struct{})
		dones[i] = make(chan error, 1)
		o := nodeOpts{
			node: id, registry: spec, replicas: 2, styleStr: "active",
			ordering: "ring", logLevel: "error", drainTimeout: 2 * time.Second,
			stop: stops[i],
		}
		if id == "mp/c" {
			o.listen = "127.0.0.1:0"
			o.onReady = func(addrs []string) { ready <- addrs }
		}
		go func(o nodeOpts, done chan error) { done <- runNode(o) }(o, dones[i])
	}
	stopAll := func() {
		for i := range stops {
			close(stops[i])
		}
		for i, done := range dones {
			select {
			case err := <-done:
				if err != nil {
					t.Errorf("node %d: %v", i, err)
				}
			case <-time.After(20 * time.Second):
				t.Errorf("node %d never shut down", i)
			}
		}
	}
	defer stopAll()

	var addrs []string
	select {
	case addrs = <-ready:
	case <-time.After(60 * time.Second):
		t.Fatal("gateway node never became ready")
	}
	for i, done := range dones {
		select {
		case err := <-done:
			t.Fatalf("node %d exited early: %v", i, err)
		default:
		}
	}
	conn, err := orb.Dial(addrs[0])
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	opts := orb.InvokeOptions{Timeout: 10 * time.Second}
	if _, err := conn.Call([]byte(demoKey), "set", experiments.OctetSeqArg([]byte("multi")), opts); err != nil {
		t.Fatal(err)
	}
	r, err := conn.Call([]byte(demoKey), "append", experiments.OctetSeqArg([]byte("-process")), opts)
	if err != nil {
		t.Fatal(err)
	}
	if ops := r.ReadLongLong(); ops != 2 {
		t.Fatalf("ops after set+append = %d, want 2 (duplicated execution?)", ops)
	}
	r, err = conn.Call([]byte(demoKey), "read", nil, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := string(r.ReadOctetSeq()); got != "multi-process" {
		t.Fatalf("register = %q", got)
	}
}

// freeUDPRegistry binds each id once on an ephemeral port to discover a
// free address, then releases it.
func freeUDPRegistry(ids ...string) (udpnet.Registry, error) {
	reg := make(udpnet.Registry, len(ids))
	for _, id := range ids {
		nid := memnet.NodeID(id)
		probe, err := udpnet.Listen(nid, udpnet.Registry{nid: "127.0.0.1:0"})
		if err != nil {
			return nil, err
		}
		reg[nid] = probe.Addr()
		if err := probe.Close(); err != nil {
			return nil, err
		}
	}
	return reg, nil
}

// registrySpec renders a registry back into the -registry flag syntax.
func registrySpec(reg udpnet.Registry) string {
	parts := make([]string, 0, len(reg))
	for id, addr := range reg {
		parts = append(parts, string(id)+"="+addr)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}
