package main

import "testing"

func TestParseStyle(t *testing.T) {
	tests := []struct {
		in      string
		wantErr bool
	}{
		{"stateless", false},
		{"cold", false},
		{"warm", false},
		{"active", false},
		{"voting", false},
		{"ACTIVE", false},
		{"bogus", true},
		{"", true},
	}
	for _, tt := range tests {
		if _, err := parseStyle(tt.in); (err != nil) != tt.wantErr {
			t.Errorf("parseStyle(%q) err = %v", tt.in, err)
		}
	}
}

func TestRunRejectsImpossiblePlacement(t *testing.T) {
	if err := run(runOpts{nodes: 2, replicas: 3, gateways: 1, styleStr: "active"}); err == nil {
		t.Fatal("3 replicas on 2 nodes accepted")
	}
	if err := run(runOpts{nodes: 2, replicas: 1, gateways: 1, styleStr: "sideways"}); err == nil {
		t.Fatal("bad style accepted")
	}
}
