package main

import (
	"strings"
	"testing"
	"time"
)

func TestRunRequiresIORAndOperation(t *testing.T) {
	if err := run("", "", false, 1, time.Second, []string{"read"}); err == nil {
		t.Fatal("missing IOR accepted")
	}
	if err := run("IOR:00", "", false, 1, time.Second, nil); err == nil {
		t.Fatal("missing operation accepted")
	}
}

func TestRunRejectsBadIOR(t *testing.T) {
	err := run("IOR:zz", "", false, 1, time.Second, []string{"read"})
	if err == nil || !strings.Contains(err.Error(), "ior") {
		t.Fatalf("err = %v", err)
	}
}
