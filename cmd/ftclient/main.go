// Command ftclient is an unreplicated IIOP client for objects behind a
// fault tolerance domain gateway. Given an IOR (as printed by
// cmd/ftdomaind), it invokes operations on the replicated object.
//
// By default it behaves like a plain ORB: it connects to the first
// profile only and has no failover (the section 3.4 client). With
// -enhanced it runs the section 3.5 thin client-side interception layer:
// a unique client identifier in every request's service context and
// transparent failover across the IOR's gateway profiles.
//
// Usage:
//
//	ftclient -ior IOR:000... append hello
//	ftclient -ior IOR:000... read
//	ftclient -enhanced -ior IOR:000... -repeat 100 append x
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/experiments"
	"eternalgw/internal/ior"
	"eternalgw/internal/naming"
	"eternalgw/internal/orb"
	"eternalgw/internal/thinclient"
)

func main() {
	var (
		iorStr   = flag.String("ior", "", "stringified object reference (required)")
		resolve  = flag.String("resolve", "", "treat -ior as a name service reference and resolve this name first")
		enhanced = flag.Bool("enhanced", false, "use the enhanced client-side interception layer (gateway failover)")
		repeat   = flag.Int("repeat", 1, "invoke the operation this many times")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-invocation timeout")
	)
	flag.Parse()
	if err := run(*iorStr, *resolve, *enhanced, *repeat, *timeout, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "ftclient:", err)
		os.Exit(1)
	}
}

// caller abstracts the plain and enhanced invocation paths.
type caller func(op string, args []byte) (*cdr.Reader, error)

func run(iorStr, resolve string, enhanced bool, repeat int, timeout time.Duration, argv []string) error {
	if iorStr == "" || len(argv) == 0 {
		return fmt.Errorf("usage: ftclient -ior IOR:... [-resolve name] [-enhanced] <operation> [string-argument]")
	}
	ref, err := ior.Parse(iorStr)
	if err != nil {
		return err
	}
	if resolve != "" {
		ref, err = resolveName(ref, resolve, timeout)
		if err != nil {
			return fmt.Errorf("resolving %q: %w", resolve, err)
		}
	}
	op := argv[0]
	var args []byte
	if len(argv) > 1 {
		args = experiments.OctetSeqArg([]byte(argv[1]))
	}

	var call caller
	if enhanced {
		c, err := thinclient.Dial(ref, thinclient.Config{CallTimeout: timeout})
		if err != nil {
			return err
		}
		defer func() { _ = c.Close() }()
		call = c.Call
	} else {
		p, err := ref.PrimaryProfile()
		if err != nil {
			return err
		}
		conn, err := orb.Dial(p.Addr())
		if err != nil {
			return err
		}
		defer func() { _ = conn.Close() }()
		key := p.ObjectKey
		call = func(op string, args []byte) (*cdr.Reader, error) {
			return conn.Call(key, op, args, orb.InvokeOptions{Timeout: timeout})
		}
	}

	start := time.Now()
	for i := 0; i < repeat; i++ {
		r, err := call(op, args)
		if err != nil {
			return fmt.Errorf("invocation %d: %w", i+1, err)
		}
		if i == repeat-1 {
			printResult(op, r)
		}
	}
	if repeat > 1 {
		elapsed := time.Since(start)
		fmt.Printf("%d invocations in %v (%.0f ops/s)\n",
			repeat, elapsed.Round(time.Millisecond), float64(repeat)/elapsed.Seconds())
	}
	return nil
}

// printResult decodes the known demo operations; unknown result bodies
// are hex-dumped.
func printResult(op string, r *cdr.Reader) {
	switch op {
	case "read":
		fmt.Printf("value: %q\n", r.ReadOctetSeq())
	case "ops", "append", "set":
		fmt.Printf("result: %d\n", r.ReadLongLong())
	default:
		fmt.Printf("raw result: %x\n", r.ReadOctets(r.Remaining()))
	}
	if err := r.Err(); err != nil {
		fmt.Printf("(decode note: %v)\n", err)
	}
}

// resolveName looks a name up in the name service behind nsRef.
func resolveName(nsRef ior.Ref, name string, timeout time.Duration) (ior.Ref, error) {
	p, err := nsRef.PrimaryProfile()
	if err != nil {
		return ior.Ref{}, err
	}
	conn, err := orb.DialTimeout(p.Addr(), timeout)
	if err != nil {
		return ior.Ref{}, err
	}
	defer func() { _ = conn.Close() }()
	return naming.ViaConn(conn).Resolve(name)
}
