package main

import "testing"

func TestRealMainUnknownExperiment(t *testing.T) {
	if err := realMain(true, "E99", false); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRealMainRunsSingleExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped in -short mode")
	}
	// E4 is the cheapest experiment (pure encoding).
	if err := realMain(true, "E4", true); err != nil {
		t.Fatal(err)
	}
}
