// Command experiments runs the paper-reproduction suite and prints one
// table per figure/section, as indexed in DESIGN.md section 4 and
// recorded in EXPERIMENTS.md.
//
// Usage:
//
//	experiments            # run everything at full scale
//	experiments -quick     # reduced workloads (seconds instead of minutes)
//	experiments -run E3,E8 # only the named experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"eternalgw/internal/experiments"
)

func main() {
	quick := flag.Bool("quick", false, "run reduced workloads")
	run := flag.String("run", "", "comma-separated experiment ids (default: all)")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavoured markdown tables")
	flag.Parse()
	if err := realMain(*quick, *run, *markdown); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func realMain(quick bool, run string, markdown bool) error {
	cfg := experiments.Config{Quick: quick}
	var selected []experiments.Runner
	if run == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(run, ",") {
			r, ok := experiments.ByID(strings.TrimSpace(id))
			if !ok {
				return fmt.Errorf("unknown experiment %q", id)
			}
			selected = append(selected, r)
		}
	}
	failures := 0
	for _, r := range selected {
		start := time.Now()
		res, err := r.Run(cfg)
		if err != nil {
			failures++
			fmt.Printf("%s FAILED after %v: %v\n\n", r.ID, time.Since(start).Round(time.Millisecond), err)
			continue
		}
		if markdown {
			fmt.Print(experiments.FormatMarkdown(res))
			fmt.Printf("\n*(completed in %v)*\n\n", time.Since(start).Round(time.Millisecond))
		} else {
			fmt.Print(experiments.Format(res))
			fmt.Printf("(completed in %v)\n\n", time.Since(start).Round(time.Millisecond))
		}
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) failed", failures)
	}
	return nil
}
