// Command gwlint runs the repository's domain analyzers
// (internal/analysis): arenaalias, looplock, completedno, metricname,
// syncextra, simdet, gospawn, lockorder, wiresym. It speaks two
// protocols:
//
//	go vet -vettool=$(pwd)/bin/gwlint ./...
//
// runs it as a vettool — cmd/go invokes it once per build unit with a
// vet.cfg path, caching results like any vet run — and
//
//	gwlint ./packages...
//
// runs the standalone module driver, which additionally performs the
// whole-module checks a single-unit vettool cannot (metric/doc sync,
// module-wide duplicate registration). `make lint` runs both.
package main

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"eternalgw/internal/analysis"
	"eternalgw/internal/analysis/arenaalias"
	"eternalgw/internal/analysis/completedno"
	"eternalgw/internal/analysis/gospawn"
	"eternalgw/internal/analysis/lockorder"
	"eternalgw/internal/analysis/looplock"
	"eternalgw/internal/analysis/metricname"
	"eternalgw/internal/analysis/simdet"
	"eternalgw/internal/analysis/syncextra"
	"eternalgw/internal/analysis/wiresym"
)

var analyzers = []*analysis.Analyzer{
	arenaalias.Analyzer,
	looplock.Analyzer,
	completedno.Analyzer,
	metricname.Analyzer,
	syncextra.Analyzer,
	simdet.Analyzer,
	gospawn.Analyzer,
	lockorder.Analyzer,
	wiresym.Analyzer,
}

var globals = []analysis.GlobalCheck{
	metricname.DocSync,
	lockorder.Global,
}

func main() {
	// cmd/go probes the tool's identity with -V=full before using it and
	// folds the reply into its action cache keys. The content hash of
	// this binary is exactly the right identity: rebuild gwlint and
	// every package re-vets.
	vFlag := flag.String("V", "", "print version and exit (cmd/go protocol)")
	flagsFlag := flag.Bool("flags", false, "print analyzer flags as JSON and exit (cmd/go protocol)")
	jsonFlag := flag.Bool("json", false, "emit diagnostics as a JSON array on stdout (module mode only)")
	flag.Usage = usage
	flag.Parse()
	if *vFlag != "" {
		fmt.Printf("gwlint version devel buildID=%s\n", selfHash())
		return
	}
	if *flagsFlag {
		// go vet asks which per-analyzer flags the tool accepts so it
		// can forward its own; this suite has none.
		fmt.Println("[]")
		return
	}

	args := flag.Args()
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(analysis.RunUnit(args[0], analyzers))
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	// The module-wide checks (doc sync, cross-package duplicates) only
	// mean something against the full registration set; on a package
	// subset every absent package would read as drift.
	globalChecks := globals
	for _, a := range args {
		if a != "./..." {
			globalChecks = nil
		}
	}
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "gwlint:", err)
		os.Exit(1)
	}
	if *jsonFlag {
		os.Exit(analysis.RunModuleWith(os.Stdout, dir, args, analyzers, globalChecks, analysis.PrintJSON))
	}
	os.Exit(analysis.RunModule(os.Stderr, dir, args, analyzers, globalChecks))
}

func selfHash() string {
	exe, err := os.Executable()
	if err != nil {
		return "unknown"
	}
	f, err := os.Open(exe)
	if err != nil {
		return "unknown"
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return "unknown"
	}
	return fmt.Sprintf("%x", h.Sum(nil)[:16])
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  gwlint [packages]          whole-module analysis (plus doc sync checks)
  go vet -vettool=gwlint ./...   per-unit analysis under the go tool

analyzers:
`)
	for _, a := range analyzers {
		fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Fprintf(os.Stderr, "\nsuppress a finding with //lint:allow <analyzer> <reason>\n")
}
