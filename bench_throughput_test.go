// Throughput benchmarks for the gateway datapath: single-client round
// trips, multi-client concurrent load with small and large payloads, a
// multi-group sweep, and a replication-degree sweep. BENCH_pr2.json
// records the first two before and after the datapath (send-side)
// overhaul; BENCH_pr3.json records the multi-client and degree sweeps
// before and after the receive-path overhaul (header-first lazy decode,
// sharded pending table, early duplicate-response discard).
//
// Run with: make bench. A/B against a ref with: make bench-compare
// (which overlays this file onto the ref's tree, so every helper the
// benchmarks need beyond bench_test.go must live here).
package eternalgw_test

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eternalgw/internal/admission"
	"eternalgw/internal/domain"
	"eternalgw/internal/experiments"
	"eternalgw/internal/ftmgmt"
	"eternalgw/internal/memnet"
	"eternalgw/internal/orb"
	"eternalgw/internal/replication"
	"eternalgw/internal/totem"
	"eternalgw/internal/udpnet"
)

// throughputSizes are the request payload sizes the suite sweeps: a
// small control-plane-like payload and a large data-plane one.
var throughputSizes = []struct {
	name string
	n    int
}{
	{"small", 64},
	{"large", 16 << 10},
}

// BenchmarkGatewayRoundTrip measures one full client->gateway->domain
// round trip per iteration (the figure 5 loops), per payload size.
func BenchmarkGatewayRoundTrip(b *testing.B) {
	for _, size := range throughputSizes {
		b.Run(size.name, func(b *testing.B) {
			d := benchDomain(b, 3)
			benchDeploy(b, d, replication.Active, 2)
			gw, err := d.AddGateway(2, "")
			if err != nil {
				b.Fatal(err)
			}
			conn, err := orb.Dial(gw.Addr())
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { _ = conn.Close() })
			args := experiments.OctetSeqArg(make([]byte, size.n))
			b.SetBytes(int64(size.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := conn.Call([]byte(benchKey), "echo", args, orb.InvokeOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchDomainOrdering is benchDomain with the totem ordering mode
// exposed; it lives in this file (not bench_test.go) on purpose: when
// bench-compare overlays this file onto a ref predating the leader fast
// path, the overlay fails to build and the script falls back to the
// ref's own suite, which is the honest baseline.
func benchDomainOrdering(b *testing.B, nodes int, mode totem.OrderingMode) *domain.Domain {
	b.Helper()
	d, err := domain.New(domain.Config{
		Name:  "bench",
		Nodes: nodes,
		Totem: totem.Config{
			IdleHold:        100 * time.Microsecond,
			TokenRetransmit: 10 * time.Millisecond,
			FailTimeout:     80 * time.Millisecond,
			GatherTimeout:   20 * time.Millisecond,
			Ordering:        mode,
		},
		GatewayInvokeTimeout: 10 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(d.Close)
	if mode == totem.OrderingLeader {
		benchWaitFastpath(b, d)
	}
	return d
}

// benchWaitFastpath blocks until every node in the domain agrees on the
// same sequencer. Promotion needs a quiescent ring (stable == seq with
// no retransmissions), so timing must not start before it happens —
// otherwise early iterations measure ring mode.
func benchWaitFastpath(b *testing.B, d *domain.Domain) {
	b.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		agreed := true
		var leader string
		for i := 0; i < d.Nodes(); i++ {
			l, _, ok := d.Node(i).Totem.Fastpath()
			if !ok || (leader != "" && string(l) != leader) {
				agreed = false
				break
			}
			leader = string(l)
		}
		if agreed {
			return
		}
		if time.Now().After(deadline) {
			b.Fatal("fast path never promoted")
		}
		time.Sleep(time.Millisecond)
	}
}

// BenchmarkGatewayRoundTripLeader is BenchmarkGatewayRoundTrip with the
// ring in leader ordering mode: the latency figure the fast path exists
// to improve. Compare against the plain RoundTrip rows (the ring-mode
// ablation), which must stay where they were.
func BenchmarkGatewayRoundTripLeader(b *testing.B) {
	for _, size := range throughputSizes {
		b.Run(size.name, func(b *testing.B) {
			d := benchDomainOrdering(b, 3, totem.OrderingLeader)
			benchDeploy(b, d, replication.Active, 2)
			gw, err := d.AddGateway(2, "")
			if err != nil {
				b.Fatal(err)
			}
			conn, err := orb.Dial(gw.Addr())
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { _ = conn.Close() })
			args := experiments.OctetSeqArg(make([]byte, size.n))
			b.SetBytes(int64(size.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := conn.Call([]byte(benchKey), "echo", args, orb.InvokeOptions{}); err != nil {
					b.Fatal(err)
				}
			}
			if demoted := d.Node(0).Totem.Stats().Demotions; demoted != 0 {
				b.Fatalf("fast path demoted %d times during the run; figures mix modes", demoted)
			}
		})
	}
}

// BenchmarkGatewayMultiClientLeader is the c=16 multi-client shape in
// leader mode, checking the fast path also holds up when many payloads
// land per sequencer visit (the shape packing serves in ring mode).
func BenchmarkGatewayMultiClientLeader(b *testing.B) {
	for _, size := range throughputSizes {
		b.Run(fmt.Sprintf("c=16/%s", size.name), func(b *testing.B) {
			d := benchDomainOrdering(b, 3, totem.OrderingLeader)
			benchDeploy(b, d, replication.Active, 2)
			gw, err := d.AddGateway(2, "")
			if err != nil {
				b.Fatal(err)
			}
			conns := make([]*orb.Conn, 16)
			for i := range conns {
				c, err := orb.Dial(gw.Addr())
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { _ = c.Close() })
				conns[i] = c
			}
			args := experiments.OctetSeqArg(make([]byte, size.n))
			b.SetBytes(int64(size.n))
			b.ResetTimer()
			runClients(b, conns, func(int) []byte { return []byte(benchKey) }, args)
		})
	}
}

// benchDomainUDP is benchDomain over real localhost UDP sockets: every
// processor's totem attachment is a udpnet endpoint with the given
// config instead of the in-process simulated network. It lives in this
// file (not bench_test.go) for the same overlay reason as
// benchDomainOrdering: on a ref predating udpnet.ListenConfig the
// overlay fails to build and bench-compare falls back to the ref's own
// suite.
func benchDomainUDP(b *testing.B, nodes int, ucfg udpnet.Config) *domain.Domain {
	b.Helper()
	registry := make(udpnet.Registry, nodes)
	for i := 0; i < nodes; i++ {
		id := memnet.NodeID(fmt.Sprintf("bench/p%02d", i))
		probe, err := udpnet.Listen(id, udpnet.Registry{id: "127.0.0.1:0"})
		if err != nil {
			b.Fatal(err)
		}
		registry[id] = probe.Addr()
		if err := probe.Close(); err != nil {
			b.Fatal(err)
		}
	}
	d, err := domain.New(domain.Config{
		Name:  "bench",
		Nodes: nodes,
		Totem: totem.Config{
			IdleHold:        100 * time.Microsecond,
			TokenRetransmit: 10 * time.Millisecond,
			FailTimeout:     80 * time.Millisecond,
			GatherTimeout:   20 * time.Millisecond,
		},
		GatewayInvokeTimeout: 10 * time.Second,
		TransportFactory: func(id memnet.NodeID) (totem.Transport, error) {
			return udpnet.ListenConfig(id, registry, ucfg)
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(d.Close)
	return d
}

// benchUDPNetMultiClient drives one endpoint's broadcast datapath with
// `clients` concurrent producer goroutines against a three-member
// registry of real localhost sockets, and measures delivered ordered
// throughput: the run only counts an iteration when every sink endpoint
// has received the datagram. Producers keep the number of broadcasts in
// flight beyond the slowest sink bounded by `window`, so kernel receive
// buffers never overflow and the figure measures the datapath, not
// loss-recovery luck.
func benchUDPNetMultiClient(b *testing.B, nodes, clients, window int, ucfg udpnet.Config, payload int) {
	b.Helper()
	ids := make([]memnet.NodeID, nodes)
	registry := make(udpnet.Registry, nodes)
	for i := range ids {
		id := memnet.NodeID(fmt.Sprintf("bench/p%02d", i))
		ids[i] = id
		probe, err := udpnet.Listen(id, udpnet.Registry{id: "127.0.0.1:0"})
		if err != nil {
			b.Fatal(err)
		}
		registry[id] = probe.Addr()
		if err := probe.Close(); err != nil {
			b.Fatal(err)
		}
	}
	eps := make([]*udpnet.Endpoint, nodes)
	for i, id := range ids {
		ep, err := udpnet.ListenConfig(id, registry, ucfg)
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = ep.Close() })
		eps[i] = ep
	}
	src := eps[0]
	counts := make([]atomic.Int64, nodes)
	var wg sync.WaitGroup
	for i := 1; i < nodes; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			n := 0
			for n < b.N {
				<-eps[i].Recv()
				n++
				counts[i].Store(int64(n))
			}
		}(i)
	}
	// Drain src's own loopback deliveries so its inbox never fills. The
	// goroutine parks on the closed endpoint's inbox at cleanup, which is
	// fine for a benchmark process.
	go func() {
		for range src.Recv() {
		}
	}()
	var sent atomic.Int64
	msg := make([]byte, payload)
	b.SetBytes(int64(payload))
	b.ResetTimer()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := sent.Add(1)
				if s > int64(b.N) {
					return
				}
				for {
					min := counts[1].Load()
					for i := 2; i < len(counts); i++ {
						if v := counts[i].Load(); v < min {
							min = v
						}
					}
					if s-min <= int64(window) {
						break
					}
					time.Sleep(10 * time.Microsecond)
				}
				if err := src.Broadcast(msg); err != nil {
					return
				}
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	s := src.Stats()
	b.ReportMetric(float64(s.TxDatagrams)/float64(s.TxBatches+1), "dg/flush")
}

// BenchmarkUDPNetMultiClient is the transport-level multi-client suite:
// many concurrent broadcasters sharing one UDP endpoint, the shape a
// loaded ring member's socket actually serves. This is where the
// batched/per-datagram A/B isolates the syscall-amortization win itself
// — on the end-to-end gateway rows the UDP datapath is a small slice of
// each operation (Amdahl bounds the visible ratio; see
// docs/PERFORMANCE.md), while here it is the operation. The per-mode
// rows alternate batched/perdatagram so interleaved rounds cancel
// machine drift.
func BenchmarkUDPNetMultiClient(b *testing.B) {
	cfg := udpnet.Config{ReadBuffer: 4 << 20, InboxSize: 4096}
	ablation := cfg
	ablation.DisableBatching = true
	for _, clients := range []int{8, 16} {
		for _, size := range throughputSizes {
			// The in-flight window keeps window×frame bytes under the
			// 4 MiB kernel receive buffer for both payload sizes.
			window := 512
			if size.n > 1024 {
				window = 128
			}
			for _, mode := range []struct {
				name string
				cfg  udpnet.Config
			}{{"batched", cfg}, {"perdatagram", ablation}} {
				b.Run(fmt.Sprintf("c=%d/%s/%s", clients, mode.name, size.name), func(b *testing.B) {
					benchUDPNetMultiClient(b, 3, clients, window, mode.cfg, size.n)
				})
			}
		}
	}
}

// BenchmarkGatewayMultiClientUDP is the multi-client shape with the
// totem ring over real UDP sockets, A/B-ing the batched
// (sendmmsg/recvmmsg, outbound gather queue, vectored framing) datapath
// against the per-datagram ablation path (synchronous one-write-per-peer
// broadcast, one-read-per-syscall receive — the transport's original
// shape). The batched/perdatagram ratio is the syscall-amortization
// speedup BENCH_udp.json records; scripts/benchcompare.sh maps these
// rows onto the memnet BenchmarkGatewayMultiClient baseline to price the
// real network against the simulated one.
func BenchmarkGatewayMultiClientUDP(b *testing.B) {
	for _, mode := range []struct {
		name string
		cfg  udpnet.Config
	}{
		{"batched", udpnet.Config{}},
		{"perdatagram", udpnet.Config{DisableBatching: true}},
	} {
		for _, size := range throughputSizes {
			b.Run(fmt.Sprintf("%s/c=16/%s", mode.name, size.name), func(b *testing.B) {
				d := benchDomainUDP(b, 3, mode.cfg)
				benchDeploy(b, d, replication.Active, 2)
				gw, err := d.AddGateway(2, "")
				if err != nil {
					b.Fatal(err)
				}
				conns := make([]*orb.Conn, 16)
				for i := range conns {
					c, err := orb.Dial(gw.Addr())
					if err != nil {
						b.Fatal(err)
					}
					b.Cleanup(func() { _ = c.Close() })
					conns[i] = c
				}
				args := experiments.OctetSeqArg(make([]byte, size.n))
				b.SetBytes(int64(size.n))
				b.ResetTimer()
				runClients(b, conns, func(int) []byte { return []byte(benchKey) }, args)
			})
		}
	}
}

// BenchmarkGatewayMultiClient measures aggregate throughput with many
// concurrent external clients, each on its own TCP connection with one
// request in flight: the shape a loaded gateway actually serves, where
// the totem ring carries many small messages per token rotation.
func BenchmarkGatewayMultiClient(b *testing.B) {
	for _, clients := range []int{4, 16, 48} {
		for _, size := range throughputSizes {
			b.Run(fmt.Sprintf("c=%d/%s", clients, size.name), func(b *testing.B) {
				benchMultiClient(b, clients, size.n, false)
			})
		}
	}
}

// BenchmarkGatewayPacking runs the heaviest multi-client shape with totem
// message packing on and off, as the ablation control proving how much of
// the throughput comes from packing (one sequence number and one datagram
// carrying many pending payloads per token visit).
func BenchmarkGatewayPacking(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"on", false}, {"off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			benchMultiClient(b, 16, 64, mode.disable)
		})
	}
}

// BenchmarkGatewayReplicationDegree sweeps the replication degree at the
// c=4 multi-client shape, per payload size. Each request draws one
// response per replica, so the receive path handles R responses for one
// useful delivery: the R=2 and R=3 rows measure how cheaply the
// redundant copies are discarded, against the R=1 row where every
// response is useful. The small rows are bounded by token rotation; the
// large rows are where per-copy decode cost is visible.
func BenchmarkGatewayReplicationDegree(b *testing.B) {
	for _, replicas := range []int{1, 2, 3} {
		for _, size := range throughputSizes {
			b.Run(fmt.Sprintf("r=%d/%s", replicas, size.name), func(b *testing.B) {
				benchMultiClientDegree(b, 4, size.n, replicas, false)
			})
		}
	}
}

// BenchmarkGatewayMultiGroup drives one gateway with clients spread
// across several independent server groups. Cross-group traffic shares
// the totem ring and the gateway edge but nothing else; this is the
// shape where receive-path routing between groups shows up.
func BenchmarkGatewayMultiGroup(b *testing.B) {
	const groups = 4
	d := benchDomain(b, 3)
	keys := make([]string, groups)
	for gi := 0; gi < groups; gi++ {
		keys[gi] = fmt.Sprintf("bench/multi%d", gi)
		benchDeployAt(b, d, replication.Active, 2, benchGroup+10+replication.GroupID(gi), keys[gi])
	}
	gw, err := d.AddGateway(2, "")
	if err != nil {
		b.Fatal(err)
	}
	conns := make([]*orb.Conn, 2*groups)
	for i := range conns {
		c, err := orb.Dial(gw.Addr())
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = c.Close() })
		conns[i] = c
	}
	args := experiments.OctetSeqArg(make([]byte, 64))
	b.SetBytes(64)
	b.ResetTimer()
	runClients(b, conns, func(i int) []byte { return []byte(keys[i%groups]) }, args)
}

func benchMultiClient(b *testing.B, clients, payload int, disablePacking bool) {
	benchMultiClientDegree(b, clients, payload, 2, disablePacking)
}

// BenchmarkGatewayAdmission is the admission-control ablation at the
// r=3/c=4 headline shape: "off" is the plain gateway (nil controller, one
// nil check per decision point), "on" is a controller with generous caps
// so every request is admitted and the benchmark prices the mechanism —
// the token bucket, the in-flight window and the breaker sample — not the
// shedding. The acceptance bar for the admission subsystem is "on" within
// 5% of "off".
func BenchmarkGatewayAdmission(b *testing.B) {
	generous := &admission.Config{
		MaxConns:          1024,
		MaxConnsPerClient: 1024,
		Rate:              1e9,
		MaxInFlight:       1024,
		AdmitWait:         time.Second,
	}
	for _, mode := range []struct {
		name string
		ac   *admission.Config
	}{{"off", nil}, {"on", generous}} {
		for _, size := range throughputSizes {
			b.Run(fmt.Sprintf("%s/%s", mode.name, size.name), func(b *testing.B) {
				benchMultiClientAdmission(b, 4, size.n, 3, mode.ac)
			})
		}
	}
}

// benchMultiClientAdmission is benchMultiClientDegree with an admission
// config on the gateway (nil = admission disabled).
func benchMultiClientAdmission(b *testing.B, clients, payload, replicas int, ac *admission.Config) {
	d := benchDomainPacking(b, replicas+1, false)
	benchDeploy(b, d, replication.Active, replicas)
	gw, err := d.AddGatewayAdmission(replicas, "", ac)
	if err != nil {
		b.Fatal(err)
	}
	conns := make([]*orb.Conn, clients)
	for i := range conns {
		c, err := orb.Dial(gw.Addr())
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = c.Close() })
		conns[i] = c
	}
	args := experiments.OctetSeqArg(make([]byte, payload))
	b.SetBytes(int64(payload))
	b.ResetTimer()
	runClients(b, conns, func(int) []byte { return []byte(benchKey) }, args)
	if ac != nil {
		if shed := gw.Stats().RequestsShed; shed != 0 {
			b.Fatalf("generous admission shed %d requests", shed)
		}
	}
}

// benchMultiClientDegree is the shared multi-client body: `replicas`
// server replicas on the first nodes, the gateway on a dedicated last
// node, `clients` connections each with one request in flight.
func benchMultiClientDegree(b *testing.B, clients, payload, replicas int, disablePacking bool) {
	d := benchDomainPacking(b, replicas+1, disablePacking)
	benchDeploy(b, d, replication.Active, replicas)
	gw, err := d.AddGateway(replicas, "")
	if err != nil {
		b.Fatal(err)
	}
	conns := make([]*orb.Conn, clients)
	for i := range conns {
		c, err := orb.Dial(gw.Addr())
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = c.Close() })
		conns[i] = c
	}
	args := experiments.OctetSeqArg(make([]byte, payload))
	b.SetBytes(int64(payload))
	b.ResetTimer()
	runClients(b, conns, func(int) []byte { return []byte(benchKey) }, args)
}

// runClients splits b.N across the connections and drives them
// concurrently; key selects the object key for the i-th connection.
func runClients(b *testing.B, conns []*orb.Conn, key func(i int) []byte, args []byte) {
	var wg sync.WaitGroup
	clients := len(conns)
	per := b.N / clients
	extra := b.N % clients
	var firstErr error
	var errMu sync.Mutex
	for i, c := range conns {
		n := per
		if i < extra {
			n++
		}
		wg.Add(1)
		go func(c *orb.Conn, objKey []byte, n int) {
			defer wg.Done()
			for j := 0; j < n; j++ {
				if _, err := c.Call(objKey, "echo", args, orb.InvokeOptions{}); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}(c, key(i), n)
	}
	wg.Wait()
	if firstErr != nil {
		b.Fatal(firstErr)
	}
}

// benchDeployAt is benchDeploy for an arbitrary group and object key, so
// the multi-group benchmark can stand up several independent server
// groups in one domain.
func benchDeployAt(b *testing.B, d *domain.Domain, style replication.Style, replicas int, group replication.GroupID, key string) {
	b.Helper()
	err := d.Manager().CreateReplicatedObject(group, ftmgmt.Properties{
		Style:           style,
		InitialReplicas: replicas,
		MinReplicas:     replicas,
		ObjectKey:       []byte(key),
		TypeID:          benchType,
	}, func() (replication.Application, error) {
		return &experiments.RegisterApp{}, nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
