// Throughput benchmarks for the gateway datapath: single-client round
// trips and multi-client concurrent load, with small and large payloads.
// BENCH_pr2.json records these before and after the datapath overhaul
// (totem message packing, single-multicast request path, sharded record,
// wire-path allocation trims).
//
// Run with: make bench
package eternalgw_test

import (
	"fmt"
	"sync"
	"testing"

	"eternalgw/internal/experiments"
	"eternalgw/internal/orb"
	"eternalgw/internal/replication"
)

// throughputSizes are the request payload sizes the suite sweeps: a
// small control-plane-like payload and a large data-plane one.
var throughputSizes = []struct {
	name string
	n    int
}{
	{"small", 64},
	{"large", 16 << 10},
}

// BenchmarkGatewayRoundTrip measures one full client->gateway->domain
// round trip per iteration (the figure 5 loops), per payload size.
func BenchmarkGatewayRoundTrip(b *testing.B) {
	for _, size := range throughputSizes {
		b.Run(size.name, func(b *testing.B) {
			d := benchDomain(b, 3)
			benchDeploy(b, d, replication.Active, 2)
			gw, err := d.AddGateway(2, "")
			if err != nil {
				b.Fatal(err)
			}
			conn, err := orb.Dial(gw.Addr())
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { _ = conn.Close() })
			args := experiments.OctetSeqArg(make([]byte, size.n))
			b.SetBytes(int64(size.n))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := conn.Call([]byte(benchKey), "echo", args, orb.InvokeOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGatewayMultiClient measures aggregate throughput with many
// concurrent external clients, each on its own TCP connection with one
// request in flight: the shape a loaded gateway actually serves, where
// the totem ring carries many small messages per token rotation.
func BenchmarkGatewayMultiClient(b *testing.B) {
	for _, clients := range []int{4, 16, 48} {
		for _, size := range throughputSizes {
			b.Run(fmt.Sprintf("c=%d/%s", clients, size.name), func(b *testing.B) {
				benchMultiClient(b, clients, size.n, false)
			})
		}
	}
}

// BenchmarkGatewayPacking runs the heaviest multi-client shape with totem
// message packing on and off, as the ablation control proving how much of
// the throughput comes from packing (one sequence number and one datagram
// carrying many pending payloads per token visit).
func BenchmarkGatewayPacking(b *testing.B) {
	for _, mode := range []struct {
		name    string
		disable bool
	}{{"on", false}, {"off", true}} {
		b.Run(mode.name, func(b *testing.B) {
			benchMultiClient(b, 16, 64, mode.disable)
		})
	}
}

func benchMultiClient(b *testing.B, clients, payload int, disablePacking bool) {
	d := benchDomainPacking(b, 3, disablePacking)
	benchDeploy(b, d, replication.Active, 2)
	gw, err := d.AddGateway(2, "")
	if err != nil {
		b.Fatal(err)
	}
	conns := make([]*orb.Conn, clients)
	for i := range conns {
		c, err := orb.Dial(gw.Addr())
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = c.Close() })
		conns[i] = c
	}
	args := experiments.OctetSeqArg(make([]byte, payload))
	b.SetBytes(int64(payload))
	b.ResetTimer()
	var wg sync.WaitGroup
	per := b.N / clients
	extra := b.N % clients
	var firstErr error
	var errMu sync.Mutex
	for i, c := range conns {
		n := per
		if i < extra {
			n++
		}
		wg.Add(1)
		go func(c *orb.Conn, n int) {
			defer wg.Done()
			for j := 0; j < n; j++ {
				if _, err := c.Call([]byte(benchKey), "echo", args, orb.InvokeOptions{}); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
			}
		}(c, n)
	}
	wg.Wait()
	if firstErr != nil {
		b.Fatal(firstErr)
	}
}
