module eternalgw

go 1.22
