// Overload soak: one gateway slammed well beyond its configured caps
// while the domain is deliberately slowed, run under -race by `make
// soak`. The assertions are the admission subsystem's contract — under
// 4x the configured in-flight load the gateway stays bounded (request
// goroutines never exceed the window, total goroutines and heap stay
// flat), sheds with proper TRANSIENT replies, and retrying enhanced
// clients lose nothing.
package eternalgw_test

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eternalgw/internal/admission"
	"eternalgw/internal/domain"
	"eternalgw/internal/experiments"
	"eternalgw/internal/faultinject"
	"eternalgw/internal/ftmgmt"
	"eternalgw/internal/replication"
	"eternalgw/internal/thinclient"
	"eternalgw/internal/totem"
)

func soakDomain(t *testing.T, nodes int) *domain.Domain {
	t.Helper()
	d, err := domain.New(domain.Config{
		Name:  "soak",
		Nodes: nodes,
		Totem: totem.Config{
			IdleHold:        100 * time.Microsecond,
			TokenRetransmit: 10 * time.Millisecond,
			FailTimeout:     80 * time.Millisecond,
			GatherTimeout:   20 * time.Millisecond,
		},
		GatewayInvokeTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func TestGatewayOverloadSoak(t *testing.T) {
	const (
		window  = 8            // configured in-flight cap
		clients = 4 * window   // 4x overload
	)
	calls := 25
	if testing.Short() {
		calls = 8
	}
	d := soakDomain(t, 2)
	app := &experiments.RegisterApp{}
	err := d.Manager().CreateReplicatedObject(benchGroup, ftmgmt.Properties{
		Style:           replication.Active,
		InitialReplicas: 1,
		MinReplicas:     1,
		ObjectKey:       []byte(benchKey),
		TypeID:          benchType,
	}, func() (replication.Application, error) { return app, nil })
	if err != nil {
		t.Fatal(err)
	}
	gw, err := d.AddGatewayAdmission(1, "", &admission.Config{
		MaxConns:          2 * clients,
		MaxConnsPerClient: 2 * clients, // every soak client shares 127.0.0.1
		MaxInFlight:       window,
		AdmitWait:         2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := d.PublishIOR(benchType, []byte(benchKey))
	if err != nil {
		t.Fatal(err)
	}

	// The fault plan slows the domain mid-soak: between the two
	// thresholds every call runs the "work" op, whose server-side sleep
	// holds invocations inside the domain so the in-flight window fills
	// and the gateway must shed. Thresholds are operation counts, so the
	// schedule is reproducible regardless of machine speed.
	var slow atomic.Bool
	total := clients * calls
	plan := faultinject.NewPlan(
		faultinject.Step{AtOp: uint64(total / 8), Name: "slow-domain", Action: func() { slow.Store(true) }},
		faultinject.Step{AtOp: uint64(total * 3 / 4), Name: "restore-domain", Action: func() { slow.Store(false) }},
	)

	// Monitor: sample the process and gateway while the storm runs. The
	// in-flight maximum is the boundedness claim itself; the goroutine
	// and heap ceilings catch any unbounded-spawn regression (the old
	// gateway spawned one goroutine per request and per departure
	// overflow, unconditionally).
	baseline := runtime.NumGoroutine()
	monStop := make(chan struct{})
	var monWG sync.WaitGroup
	var maxGoroutines, maxInFlight int64
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		for {
			select {
			case <-monStop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			if n := int64(runtime.NumGoroutine()); n > maxGoroutines {
				maxGoroutines = n
			}
			if n := gw.InFlight(); n > maxInFlight {
				maxInFlight = n
			}
		}
	}()

	args := experiments.OctetSeqArg(make([]byte, 64))
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			tc, err := thinclient.Dial(ref, thinclient.Config{
				CallTimeout: 10 * time.Second,
				MaxRounds:   500,
				ShedBackoff: 500 * time.Microsecond,
				ShedFailover: 8,
			})
			if err != nil {
				errCh <- err
				return
			}
			defer func() { _ = tc.Close() }()
			for i := 0; i < calls; i++ {
				op, a := "echo", args
				if slow.Load() {
					op, a = "work", experiments.WorkArg(3, []byte("w"))
				}
				if _, err := tc.Call(op, a); err != nil {
					errCh <- err
					return
				}
				plan.Tick()
			}
		}()
	}
	wg.Wait()
	close(monStop)
	monWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	if !plan.Done() {
		t.Fatalf("fault plan incomplete: fired %v after %d ops", plan.Fired(), plan.Ops())
	}
	// Boundedness: admitted work never exceeded the window, and the
	// process never grew goroutines beyond the per-connection constant.
	if maxInFlight > window {
		t.Fatalf("in-flight peaked at %d, window is %d", maxInFlight, window)
	}
	// Per client: the thinclient connection, the gateway's serveConn,
	// and client-side plumbing. The window bounds request handlers; 64
	// covers the domain's own fixed goroutines.
	if limit := int64(baseline + clients*6 + window + 64); maxGoroutines > limit {
		t.Fatalf("goroutines peaked at %d (baseline %d, limit %d): unbounded spawn", maxGoroutines, baseline, limit)
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > 512<<20 {
		t.Fatalf("heap = %d MiB after soak", ms.HeapAlloc>>20)
	}
	// The overload was real (the gateway shed with TRANSIENT) and the
	// retrying clients survived it: every call executed exactly once.
	st := gw.Stats()
	if st.RequestsShed == 0 {
		t.Fatalf("no requests shed; soak did not overload the gateway (stats %+v)", st)
	}
	deadline := time.Now().Add(5 * time.Second)
	for app.Ops() < int64(total) && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if got := app.Ops(); got != int64(total) {
		t.Fatalf("replica executed %d ops, want exactly %d", got, total)
	}
	if s := gw.Admission().Stats(); s.ShedWindow == 0 {
		t.Fatalf("admission stats %+v, want window sheds", s)
	}
}
