// Ablation benchmarks for the design choices DESIGN.md section 5 calls
// out: the totem token parameters, the replica fan-out, the passive
// synchronization interval, and the gateway-group recording of section
// 3.5. Run with: go test -bench=Ablation -benchmem
package eternalgw_test

import (
	"fmt"
	"testing"
	"time"

	"eternalgw/internal/core"
	"eternalgw/internal/domain"
	"eternalgw/internal/experiments"
	"eternalgw/internal/memnet"
	"eternalgw/internal/orb"
	"eternalgw/internal/replication"
	"eternalgw/internal/totem"
)

// BenchmarkAblationReplicaCount sweeps the active-replication fan-out:
// each added replica costs one more execution and one more (suppressed)
// response per operation.
func BenchmarkAblationReplicaCount(b *testing.B) {
	for _, k := range []int{1, 2, 3, 5} {
		b.Run(fmt.Sprintf("k=%d", k), func(b *testing.B) {
			d := benchDomain(b, k+1)
			benchDeploy(b, d, replication.Active, k)
			rm := clientRM(b, d, k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rmInvoke(rm, uint32(i+1), "ops", nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTotemIdleHold sweeps the idle-token throttle: shorter
// holds cut single-client latency (the token reaches the submitting node
// sooner) at the cost of more rotations per second when idle.
func BenchmarkAblationTotemIdleHold(b *testing.B) {
	for _, hold := range []time.Duration{20 * time.Microsecond, 200 * time.Microsecond, time.Millisecond} {
		b.Run(hold.String(), func(b *testing.B) {
			d, err := domain.New(domain.Config{
				Name:  "abl",
				Nodes: 3,
				Totem: totem.Config{
					IdleHold:        hold,
					TokenRetransmit: 25 * time.Millisecond,
					FailTimeout:     250 * time.Millisecond,
					GatherTimeout:   60 * time.Millisecond,
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(d.Close)
			benchDeploy(b, d, replication.Active, 2)
			rm := clientRM(b, d, 2)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rmInvoke(rm, uint32(i+1), "ops", nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationTotemMaxBurst sweeps the per-token-visit broadcast
// budget under a pipelined (asynchronous) load: small bursts force more
// rotations per message.
func BenchmarkAblationTotemMaxBurst(b *testing.B) {
	for _, burst := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("burst=%d", burst), func(b *testing.B) {
			// Raw totem ring (no replication layer: this ablation owns
			// the event stream).
			net := memnet.New()
			ids := []memnet.NodeID{"a", "b", "c"}
			var nodes []*totem.Node
			for _, id := range ids {
				ep, err := net.Attach(id)
				if err != nil {
					b.Fatal(err)
				}
				n, err := totem.Start(totem.Config{
					ID:              id,
					Endpoint:        ep,
					Members:         ids,
					MaxBurst:        burst,
					IdleHold:        100 * time.Microsecond,
					TokenRetransmit: 25 * time.Millisecond,
					FailTimeout:     250 * time.Millisecond,
					GatherTimeout:   60 * time.Millisecond,
				})
				if err != nil {
					b.Fatal(err)
				}
				nodes = append(nodes, n)
				b.Cleanup(n.Stop)
				if id != "a" {
					// Drain the other members' events.
					go func(n *totem.Node) {
						for range n.Events() {
						}
					}(n)
				}
			}
			node := nodes[0]
			// Wait for the first ring installation.
			for ev := range node.Events() {
				if ev.Type == totem.EventConfig && len(ev.Config.Members) == len(ids) {
					break
				}
			}
			payload := make([]byte, 64)
			b.ResetTimer()
			delivered := 0
			for i := 0; i < b.N; i++ {
				if err := node.Multicast(payload); err != nil {
					b.Fatal(err)
				}
			}
			deadline := time.After(30 * time.Second)
			for delivered < b.N {
				select {
				case ev := <-node.Events():
					if ev.Type == totem.EventDeliver {
						delivered++
					}
				case <-deadline:
					b.Fatalf("delivered %d of %d", delivered, b.N)
				}
			}
		})
	}
}

// BenchmarkAblationWarmSyncInterval sweeps how often a warm-passive
// primary publishes state to its backups: frequent syncs cost fault-free
// throughput but shrink the failover replay.
func BenchmarkAblationWarmSyncInterval(b *testing.B) {
	for _, interval := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("sync=%d", interval), func(b *testing.B) {
			d, err := domain.New(domain.Config{
				Name:  "abl",
				Nodes: 3,
				Totem: totem.Config{
					IdleHold:        100 * time.Microsecond,
					TokenRetransmit: 25 * time.Millisecond,
					FailTimeout:     250 * time.Millisecond,
					GatherTimeout:   60 * time.Millisecond,
				},
				Replication: replication.Config{WarmSyncInterval: interval},
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(d.Close)
			benchDeploy(b, d, replication.WarmPassive, 2)
			rm := clientRM(b, d, 2)
			args := experiments.OctetSeqArg([]byte("x"))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rmInvoke(rm, uint32(i+1), "append", args); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationGatewayGroupRecord toggles the section 3.5 recording:
// with it on, every client request costs one extra multicast (the record
// to the gateway group) but reissues after failover are answerable by
// any gateway; with it off, that cost disappears and failover reissues
// rely on server-side duplicate detection alone.
func BenchmarkAblationGatewayGroupRecord(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		name := "record-on"
		if disabled {
			name = "record-off"
		}
		b.Run(name, func(b *testing.B) {
			d := benchDomain(b, 3)
			benchDeploy(b, d, replication.Active, 2)
			gw, err := core.New(core.Config{
				RM:                 d.Node(2).RM,
				Group:              domain.DefaultGatewayGroup,
				InvokeTimeout:      10 * time.Second,
				DisableGroupRecord: disabled,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { _ = gw.Close() })
			if err := d.Node(2).RM.WaitSynced(domain.DefaultGatewayGroup, 10*time.Second); err != nil {
				b.Fatal(err)
			}
			conn, err := orb.Dial(gw.Addr())
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { _ = conn.Close() })
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := conn.Call([]byte(benchKey), "ops", nil, orb.InvokeOptions{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
