// Package eternalgw's repository-root benchmarks: one testing.B
// benchmark per experiment in DESIGN.md's index (E1-E12), regenerating
// the quantity each figure or section of the paper turns on. Scenario
// benchmarks (failover, recovery, state transfer) run one full scenario
// per iteration; invocation benchmarks amortize setup across b.N calls.
//
// Run with: go test -bench=. -benchmem
package eternalgw_test

import (
	"sync"
	"testing"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/domain"
	"eternalgw/internal/experiments"
	"eternalgw/internal/ftmgmt"
	"eternalgw/internal/giop"
	"eternalgw/internal/obs"
	"eternalgw/internal/orb"
	"eternalgw/internal/replication"
	"eternalgw/internal/thinclient"
	"eternalgw/internal/totem"
)

const (
	benchGroup replication.GroupID = 100
	benchKey                       = "bench/register"
	benchType                      = "IDL:eternalgw/Register:1.0"
)

func benchDomain(b *testing.B, nodes int) *domain.Domain {
	return benchDomainPacking(b, nodes, false)
}

// benchDomainPacking is benchDomain with the totem packing knob exposed,
// so the throughput suite can run packing-off as an ablation control.
func benchDomainPacking(b *testing.B, nodes int, disablePacking bool) *domain.Domain {
	b.Helper()
	d, err := domain.New(domain.Config{
		Name:  "bench",
		Nodes: nodes,
		Totem: totem.Config{
			IdleHold:        100 * time.Microsecond,
			TokenRetransmit: 10 * time.Millisecond,
			FailTimeout:     80 * time.Millisecond,
			GatherTimeout:   20 * time.Millisecond,
			DisablePacking:  disablePacking,
		},
		GatewayInvokeTimeout: 10 * time.Second,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(d.Close)
	return d
}

func benchDeploy(b *testing.B, d *domain.Domain, style replication.Style, replicas int) []*experiments.RegisterApp {
	b.Helper()
	var (
		mu   sync.Mutex
		apps []*experiments.RegisterApp
	)
	err := d.Manager().CreateReplicatedObject(benchGroup, ftmgmt.Properties{
		Style:           style,
		InitialReplicas: replicas,
		MinReplicas:     replicas,
		ObjectKey:       []byte(benchKey),
		TypeID:          benchType,
	}, func() (replication.Application, error) {
		mu.Lock()
		defer mu.Unlock()
		app := &experiments.RegisterApp{}
		apps = append(apps, app)
		return app, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	return apps
}

// clientRM returns a client-only gateway-group member on node i.
func clientRM(b *testing.B, d *domain.Domain, i int) *replication.Mechanisms {
	b.Helper()
	rm := d.Node(i).RM
	if err := rm.JoinGroup(domain.DefaultGatewayGroup, nil); err != nil {
		b.Fatal(err)
	}
	if err := rm.WaitSynced(domain.DefaultGatewayGroup, 10*time.Second); err != nil {
		b.Fatal(err)
	}
	return rm
}

func rmInvoke(rm *replication.Mechanisms, reqID uint32, op string, args []byte) error {
	_, err := rm.Invoke(domain.DefaultGatewayGroup, 1, benchGroup,
		replication.OperationID{ChildSeq: reqID},
		giop.Request{RequestID: reqID, ResponseExpected: true, ObjectKey: []byte(benchKey), Operation: op, Args: args},
		10*time.Second)
	return err
}

// BenchmarkE1MultiDomain measures one invocation crossing two fault
// tolerance domains (figure 1's full path).
func BenchmarkE1MultiDomain(b *testing.B) {
	ny := benchDomain(b, 3)
	benchDeploy(b, ny, replication.Active, 2)
	if _, err := ny.AddGateway(2, ""); err != nil {
		b.Fatal(err)
	}
	nyRef, err := ny.PublishIOR(benchType, []byte(benchKey))
	if err != nil {
		b.Fatal(err)
	}
	la, err := domain.New(domain.Config{Name: "bench-la", Nodes: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(la.Close)
	err = la.Manager().CreateReplicatedObject(200, ftmgmt.Properties{
		Style:           replication.Active,
		InitialReplicas: 1,
		MinReplicas:     1,
		ObjectKey:       []byte("bench/bridge"),
	}, func() (replication.Application, error) {
		return domain.NewBridgeApp(nyRef, []byte("bench-bridge"), 10*time.Second), nil
	})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := la.AddGateway(1, ""); err != nil {
		b.Fatal(err)
	}
	laRef, err := la.PublishIOR(benchType, []byte("bench/bridge"))
	if err != nil {
		b.Fatal(err)
	}
	obj, conn, err := orb.Resolve(laRef)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = conn.Close() })

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := obj.Call("ops", nil, orb.InvokeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2InfrastructureOverhead measures one invocation through the
// fault tolerance infrastructure (3 active replicas) against the plain
// ORB baseline benchmark below.
func BenchmarkE2InfrastructureOverhead(b *testing.B) {
	d := benchDomain(b, 3)
	benchDeploy(b, d, replication.Active, 3)
	rm := clientRM(b, d, 2)
	args := experiments.OctetSeqArg(make([]byte, 256))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rmInvoke(rm, uint32(i+1), "echo", args); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2PlainORBBaseline is E2's baseline: the same invocation on
// an unreplicated ORB over TCP.
func BenchmarkE2PlainORBBaseline(b *testing.B) {
	srv, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = srv.Close() })
	srv.Register([]byte("plain"), &experiments.RegisterApp{})
	conn, err := orb.Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = conn.Close() })
	args := experiments.OctetSeqArg(make([]byte, 256))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Call([]byte("plain"), "echo", args, orb.InvokeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3DuplicateSuppression measures an invocation against 3
// active replicas including the suppression of the 2 duplicate
// responses (figure 3).
func BenchmarkE3DuplicateSuppression(b *testing.B) {
	d := benchDomain(b, 4)
	benchDeploy(b, d, replication.Active, 3)
	gw, err := d.AddGateway(3, "")
	if err != nil {
		b.Fatal(err)
	}
	conn, err := orb.Dial(gw.Addr())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = conn.Close() })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Call([]byte(benchKey), "ops", nil, orb.InvokeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := d.Node(3).RM.Stats()
	b.ReportMetric(float64(st.DuplicateResponses)/float64(b.N), "dup-suppressed/op")
}

// BenchmarkE4MessageEncapsulation measures encoding+decoding the figure
// 4 multicast form (FT header wrapping an IIOP request).
func BenchmarkE4MessageEncapsulation(b *testing.B) {
	req := giop.Request{
		RequestID:        7,
		ResponseExpected: true,
		ObjectKey:        []byte(benchKey),
		Operation:        "echo",
		Args:             experiments.OctetSeqArg(make([]byte, 256)),
	}
	wire, err := giop.EncodeRequest(cdr.BigEndian, req)
	if err != nil {
		b.Fatal(err)
	}
	msg := replication.Message{
		Header: replication.Header{
			Kind:     replication.KindInvocation,
			ClientID: 42,
			SrcGroup: 1,
			DstGroup: benchGroup,
			Op:       replication.OperationID{ParentTS: 123456, ChildSeq: 7},
		},
		Payload: giop.Marshal(wire),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		enc := replication.Encode(msg)
		if _, err := replication.Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(len(replication.Encode(msg))))
}

// BenchmarkE5GatewayLoops measures one full request through the gateway
// (figure 5's inbound and outbound loops plus the TCP edge).
func BenchmarkE5GatewayLoops(b *testing.B) {
	d := benchDomain(b, 3)
	benchDeploy(b, d, replication.Active, 2)
	gw, err := d.AddGateway(2, "")
	if err != nil {
		b.Fatal(err)
	}
	conn, err := orb.Dial(gw.Addr())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = conn.Close() })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Call([]byte(benchKey), "ops", nil, orb.InvokeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5GatewayLoopsInstrumented is E5 with the observability
// subsystem in its production-default posture: metrics registered (the
// counters the datapath increments are read only at scrape time) and
// the tracer disabled (nil). Comparing against BenchmarkE5GatewayLoops
// bounds the overhead of carrying the instrumentation; the acceptance
// bar is under 5% on round-trip throughput.
func BenchmarkE5GatewayLoopsInstrumented(b *testing.B) {
	d, err := domain.New(domain.Config{
		Name:  "bench",
		Nodes: 3,
		Totem: totem.Config{
			IdleHold:        100 * time.Microsecond,
			TokenRetransmit: 10 * time.Millisecond,
			FailTimeout:     80 * time.Millisecond,
			GatherTimeout:   20 * time.Millisecond,
		},
		GatewayInvokeTimeout: 10 * time.Second,
		Metrics:              obs.NewRegistry(),
		Tracer:               nil, // disabled: the hot path pays one nil check per hop
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(d.Close)
	benchDeploy(b, d, replication.Active, 2)
	gw, err := d.AddGateway(2, "")
	if err != nil {
		b.Fatal(err)
	}
	conn, err := orb.Dial(gw.Addr())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = conn.Close() })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := conn.Call([]byte(benchKey), "ops", nil, orb.InvokeOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE6OperationIdentifiers measures nested invocations, whose
// operation identifiers (figure 6) are derived from the parent's totem
// timestamp at every replica.
func BenchmarkE6OperationIdentifiers(b *testing.B) {
	d := benchDomain(b, 3)
	benchDeploy(b, d, replication.Active, 1)

	const frontGrp replication.GroupID = 120
	rm0 := d.Node(0).RM
	if err := rm0.CreateGroup(frontGrp, replication.Active, []byte("bench/front")); err != nil {
		b.Fatal(err)
	}
	if err := rm0.WaitForGroup(frontGrp, 10*time.Second); err != nil {
		b.Fatal(err)
	}
	h := rm0.Handle(frontGrp)
	relay := orbServantFunc(func(op string, args *cdr.Reader, reply *cdr.Writer) error {
		r, err := h.Invoke([]byte(benchKey), "ops", nil, 10*time.Second)
		if err != nil {
			return err
		}
		reply.WriteLongLong(r.ReadLongLong())
		return r.Err()
	})
	if err := rm0.JoinGroup(frontGrp, relay); err != nil {
		b.Fatal(err)
	}
	if err := rm0.WaitSynced(frontGrp, 10*time.Second); err != nil {
		b.Fatal(err)
	}
	rm := clientRM(b, d, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := rm.Invoke(domain.DefaultGatewayGroup, 1, frontGrp,
			replication.OperationID{ChildSeq: uint32(i + 1)},
			giop.Request{RequestID: uint32(i + 1), ResponseExpected: true, ObjectKey: []byte("bench/front"), Operation: "relay"},
			10*time.Second)
		if err != nil {
			b.Fatal(err)
		}
	}
}

// orbServantFunc adapts a function to replication.Application for
// stateless benchmark servants.
type orbServantFunc func(op string, args *cdr.Reader, reply *cdr.Writer) error

func (f orbServantFunc) Invoke(op string, args *cdr.Reader, reply *cdr.Writer) error {
	return f(op, args, reply)
}
func (f orbServantFunc) State() ([]byte, error) { return nil, nil }
func (f orbServantFunc) SetState([]byte) error  { return nil }

// BenchmarkE7SingleGatewayFailure runs one full section 3.4 scenario per
// iteration: requests through a single gateway, gateway crash, abandoned
// requests, recovery, duplicating resend.
func BenchmarkE7SingleGatewayFailure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := benchDomain(b, 3)
		benchDeploy(b, d, replication.Active, 1)
		gw, err := d.AddGateway(2, "")
		if err != nil {
			b.Fatal(err)
		}
		conn, err := orb.Dial(gw.Addr())
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()

		if _, err := conn.Call([]byte(benchKey), "append", experiments.OctetSeqArg([]byte("x")), orb.InvokeOptions{RequestID: 1}); err != nil {
			b.Fatal(err)
		}
		_ = gw.Close()
		_, _ = conn.Call([]byte(benchKey), "ops", nil, orb.InvokeOptions{RequestID: 2, Timeout: 100 * time.Millisecond})
		gw2, err := d.AddGateway(2, "")
		if err != nil {
			b.Fatal(err)
		}
		conn2, err := orb.Dial(gw2.Addr())
		if err != nil {
			b.Fatal(err)
		}
		if _, err := conn2.Call([]byte(benchKey), "append", experiments.OctetSeqArg([]byte("x")), orb.InvokeOptions{RequestID: 1}); err != nil {
			b.Fatal(err)
		}

		b.StopTimer()
		_ = conn.Close()
		_ = conn2.Close()
		d.Close()
		b.StartTimer()
	}
}

// BenchmarkE8GatewayFailover measures one enhanced-client failover: the
// connected gateway dies and the next call transparently re-routes.
func BenchmarkE8GatewayFailover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := benchDomain(b, 3)
		benchDeploy(b, d, replication.Active, 1)
		if _, err := d.AddGateway(1, ""); err != nil {
			b.Fatal(err)
		}
		if _, err := d.AddGateway(2, ""); err != nil {
			b.Fatal(err)
		}
		ref, err := d.PublishIOR(benchType, []byte(benchKey))
		if err != nil {
			b.Fatal(err)
		}
		c, err := thinclient.Dial(ref, thinclient.Config{CallTimeout: 2 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := c.Call("ops", nil); err != nil {
			b.Fatal(err)
		}
		_ = d.Gateways()[0].Close()
		b.StartTimer()

		// The timed region is the failover itself: detect the dead
		// gateway, reconnect to the next profile, reissue, answer.
		if _, err := c.Call("ops", nil); err != nil {
			b.Fatal(err)
		}

		b.StopTimer()
		_ = c.Close()
		d.Close()
		b.StartTimer()
	}
}

// BenchmarkE9ReplicationStyles measures fault-free invocations per
// style; run with -bench 'E9' to compare the three sub-benchmarks.
func BenchmarkE9ReplicationStyles(b *testing.B) {
	for _, style := range []replication.Style{replication.Active, replication.WarmPassive, replication.ColdPassive} {
		b.Run(style.String(), func(b *testing.B) {
			d := benchDomain(b, 3)
			benchDeploy(b, d, style, 2)
			rm := clientRM(b, d, 2)
			args := experiments.OctetSeqArg([]byte("x"))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rmInvoke(rm, uint32(i+1), "append", args); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkE10GatewayScalability measures gateway throughput with
// parallel clients (one connection per RunParallel worker).
func BenchmarkE10GatewayScalability(b *testing.B) {
	d := benchDomain(b, 3)
	benchDeploy(b, d, replication.Active, 2)
	gw, err := d.AddGateway(2, "")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		conn, err := orb.Dial(gw.Addr())
		if err != nil {
			b.Error(err)
			return
		}
		defer func() { _ = conn.Close() }()
		for pb.Next() {
			if _, err := conn.Call([]byte(benchKey), "ops", nil, orb.InvokeOptions{}); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkE11ReplicaConsistency measures totally-ordered appends from
// concurrent clients — the workload whose determinism E11 checks.
func BenchmarkE11ReplicaConsistency(b *testing.B) {
	d := benchDomain(b, 3)
	benchDeploy(b, d, replication.Active, 3)
	gw, err := d.AddGateway(2, "")
	if err != nil {
		b.Fatal(err)
	}
	args := experiments.OctetSeqArg([]byte("x"))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		conn, err := orb.Dial(gw.Addr())
		if err != nil {
			b.Error(err)
			return
		}
		defer func() { _ = conn.Close() }()
		for pb.Next() {
			if _, err := conn.Call([]byte(benchKey), "append", args, orb.InvokeOptions{}); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkE12StateTransfer runs one state transfer (64 KiB) per
// iteration: a fresh replica joins and synchronizes.
func BenchmarkE12StateTransfer(b *testing.B) {
	d := benchDomain(b, 3)
	benchDeploy(b, d, replication.Active, 1)
	rm := clientRM(b, d, 2)
	if err := rmInvoke(rm, 1, "set", experiments.OctetSeqArg(make([]byte, 64<<10))); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		joiner := &experiments.RegisterApp{}
		rmJoin := d.Node(1).RM
		if err := rmJoin.JoinGroup(benchGroup, joiner); err != nil {
			b.Fatal(err)
		}
		if err := rmJoin.WaitSynced(benchGroup, 10*time.Second); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := rmJoin.LeaveGroup(benchGroup); err != nil {
			b.Fatal(err)
		}
		waitMembers(b, rmJoin, benchGroup, 1)
		b.StartTimer()
	}
}

func waitMembers(b *testing.B, rm *replication.Mechanisms, g replication.GroupID, want int) {
	b.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for len(rm.Members(g)) != want {
		if time.Now().After(deadline) {
			b.Fatalf("members = %v", rm.Members(g))
		}
		time.Sleep(time.Millisecond)
	}
}
