# Developer entry points. The CI gate is `make check`.

GO ?= go

.PHONY: build test vet lint lint-fast race check sim sim-long fuzz-smoke soak soak-reconfig soak-leader smoke-udp bench bench-smoke bench-baseline bench-compare bench-udp clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# lint runs the repository's domain analyzers (docs/STATIC_ANALYSIS.md):
# once under the go tool as a vettool (per-package findings, cached like
# vet), and once standalone for the whole-module checks a single build
# unit cannot see (metric/doc sync, module-wide duplicate registration).
lint:
	$(GO) build -o bin/gwlint ./cmd/gwlint
	$(GO) vet -vettool=$(CURDIR)/bin/gwlint ./...
	./bin/gwlint ./...

# lint-fast is the inner-loop variant: vettool mode only, so the go
# tool's per-package caching makes a clean re-run near-instant. It skips
# the standalone module-mode pass (metric/doc sync, duplicate
# registration, lock-order stitching across packages) — run `make lint`
# before pushing.
lint-fast:
	$(GO) build -o bin/gwlint ./cmd/gwlint
	$(GO) vet -vettool=$(CURDIR)/bin/gwlint ./...

# race runs the whole test suite under the race detector. (It was a
# recipe-less phony target for a while, which made `make check` pass
# without running any tests.)
race:
	$(GO) test -race -timeout 15m ./...

# check is the full verification gate: static analysis plus the whole
# test suite under the race detector, the deterministic simulation
# sweep, short decoder fuzzing, the reconfiguration and leader-crash
# soaks at a higher repetition count than one `go test` pass gives
# them, the multi-process UDP deployment smoke, and a one-iteration
# benchmark smoke so a change that breaks benchmark setup (but not the
# tests) cannot land silently.
check: vet lint race sim fuzz-smoke soak-reconfig soak-leader smoke-udp bench-smoke

# sim sweeps the deterministic simulation harness (internal/sim,
# docs/SIMULATION.md) over a bounded seed budget across every schedule
# class and workload, then proves the invariant checkers still have
# teeth: with a known-critical guard disabled (replica dedup, the
# membership-sync snapshot) a violating seed must turn up within the
# same budget. Failing seeds replay exactly: simrun -seed N -workload W
# -schedule S.
SIM_SEEDS ?= 200
SIM_TEETH_SEEDS ?= 30
sim:
	$(GO) run ./cmd/simrun -seeds $(SIM_SEEDS)
	$(GO) run ./cmd/simrun -seeds $(SIM_TEETH_SEEDS) -mutate disable-dedup
	$(GO) run ./cmd/simrun -seeds $(SIM_TEETH_SEEDS) -mutate disable-membership-sync

# sim-long is the nightly-scale budget (override SIM_LONG_SEEDS).
SIM_LONG_SEEDS ?= 2000
sim-long:
	$(GO) run ./cmd/simrun -seeds $(SIM_LONG_SEEDS) -metrics

# fuzz-smoke runs the GIOP decoder fuzz targets briefly — enough to
# catch a framing/decoder regression on the corpus frontier without
# turning `make check` into a fuzzing campaign. Targets run one at a
# time (the go tool rejects -fuzz matching multiple targets in one
# invocation). The other packages' fuzz targets (udpnet, totem,
# replication, ior) stay ad hoc: their seed corpora run as plain tests
# under `race` already.
FUZZTIME ?= 5s
fuzz-smoke:
	$(GO) test ./internal/giop/ -fuzz FuzzUnmarshal -fuzztime $(FUZZTIME) -run xxx
	$(GO) test ./internal/giop/ -fuzz FuzzDecodeRequest -fuzztime $(FUZZTIME) -run xxx
	$(GO) test ./internal/giop/ -fuzz FuzzDecodeReply -fuzztime $(FUZZTIME) -run xxx
	$(GO) test ./internal/giop/ -fuzz FuzzReassembler -fuzztime $(FUZZTIME) -run xxx

# soak slams one admission-controlled gateway at 4x its configured
# in-flight window under the race detector while fault injection slows
# the domain (overload_test.go): the overload-protection acceptance gate.
SOAK_COUNT ?= 1
soak:
	$(GO) test -race -run TestGatewayOverloadSoak -count $(SOAK_COUNT) -timeout 10m -v .

# soak-reconfig rolling-upgrades a degree-3 active group and churns the
# gateway set while thin clients run at full load under the race
# detector (reconfig_soak_test.go): the online-reconfiguration
# acceptance gate — exactly-once, one total order, checkpointed
# catch-up, and IOR-driven gateway failover.
SOAK_RECONFIG_COUNT ?= 3
soak-reconfig:
	$(GO) test -race -run TestReconfigRollingUpgradeSoak -count $(SOAK_RECONFIG_COUNT) -timeout 10m -v .

# soak-leader crashes and restarts the totem sequencer while thin
# clients run at full load under the race detector
# (leader_soak_test.go): the ordering-fast-path acceptance gate —
# exactly-once across demotion to ring rotation and agreed
# re-promotion.
SOAK_LEADER_COUNT ?= 3
soak-leader:
	$(GO) test -race -run TestLeaderCrashSoak -count $(SOAK_LEADER_COUNT) -timeout 10m -v .

# smoke-udp launches a three-member totem ring as three separate OS
# processes over real localhost UDP sockets (ftdomaind -node), drives a
# short multi-client echo soak through a gateway, and audits that every
# append executed exactly once (scripts/udpsmoke.sh). Part of `make
# check`: the real-network deployment path must keep standing up.
smoke-udp:
	scripts/udpsmoke.sh

# bench runs the datapath throughput suite (round trips, multi-client
# load, packing on/off ablation) with the same methodology as the
# recorded BENCH_*.json trajectory files, then prints a JSON summary in
# the BENCH_baseline.json schema for side-by-side comparison. Override
# BENCH_COUNT for more repetitions.
BENCH_COUNT ?= 3
bench:
	$(GO) test -run xxx -bench 'BenchmarkE5GatewayLoops$$|BenchmarkGatewayRoundTrip|BenchmarkGatewayMultiClient|BenchmarkGatewayPacking|BenchmarkGatewayReplicationDegree|BenchmarkGatewayMultiGroup|BenchmarkGatewayAdmission' -benchtime 2s -count $(BENCH_COUNT) . | tee /tmp/bench_run.txt
	@awk -f scripts/benchjson.awk /tmp/bench_run.txt

# bench-smoke runs every benchmark in the module for exactly one
# iteration: it costs seconds and proves benchmark setup still compiles
# and stands up (domain construction, fast-path promotion, deploys) —
# regressions there otherwise surface only when someone next runs
# `make bench` by hand.
bench-smoke:
	$(GO) test -run xxx -bench . -benchtime 1x ./...

# bench-udp records the real-network UDP datapath A/B in the
# BENCH_udp.json schema: the in-process transport-level multi-client
# suite (BenchmarkUDPNetMultiClient) and the gateway suite over real
# sockets (BenchmarkGatewayMultiClientUDP), batched vs per-datagram
# alternating within every round, plus the multi-process sweep
# (scripts/benchudp.sh: one ftdomaind -node OS process per ring member,
# ring and leader ordering at r=1..3, exactly-once audited).
BENCH_UDP_ROUNDS ?= 3
BENCH_UDP_MP_ROUNDS ?= 2
bench-udp:
	: >/tmp/bench_udp.txt
	i=1; while [ $$i -le $(BENCH_UDP_ROUNDS) ]; do \
		echo "== bench-udp round $$i/$(BENCH_UDP_ROUNDS) ==" >&2; \
		$(GO) test -run xxx -bench 'BenchmarkUDPNetMultiClient|BenchmarkGatewayMultiClientUDP' -benchtime 2s -count 1 . | tee -a /tmp/bench_udp.txt || exit 1; \
		i=$$((i + 1)); \
	done
	scripts/benchudp.sh $(BENCH_UDP_MP_ROUNDS) 2s 8 | tee -a /tmp/bench_udp.txt
	awk -f scripts/benchjson.awk -v cmd='make bench-udp' /tmp/bench_udp.txt | tee BENCH_udp.json

# bench-baseline reproduces the original gateway round-trip numbers
# recorded in BENCH_baseline.json (baseline vs instrumented datapath).
bench-baseline:
	$(GO) test -run xxx -bench 'BenchmarkE5GatewayLoops$$|BenchmarkE5GatewayLoopsInstrumented' -benchtime 2s -count $(BENCH_COUNT) .

# bench-compare runs the throughput suite interleaved against a named
# ref (HEAD's bench_throughput_test.go overlaid onto the ref's tree, so
# both sides run identical benchmarks) and prints a before/after table.
# This is the A/B methodology behind the BENCH_pr*.json files.
#   make bench-compare BENCH_REF=v0-tag BENCH_COUNT=3
BENCH_REF ?= HEAD~1
BENCH_REGEX ?= BenchmarkGatewayRoundTrip|BenchmarkGatewayMultiClient|BenchmarkGatewayReplicationDegree|BenchmarkGatewayMultiGroup
bench-compare:
	scripts/benchcompare.sh '$(BENCH_REF)' '$(BENCH_REGEX)' $(BENCH_COUNT) 2s

clean:
	$(GO) clean ./...
