# Developer entry points. The CI gate is `make check`.

GO ?= go

.PHONY: build test vet race check bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the full verification gate: static analysis plus the whole
# test suite under the race detector.
check: vet race

# bench reproduces the gateway round-trip numbers recorded in
# BENCH_baseline.json (baseline vs instrumented datapath).
bench:
	$(GO) test -run xxx -bench 'BenchmarkE5GatewayLoops$$|BenchmarkE5GatewayLoopsInstrumented' -benchtime 2s -count 3 .

clean:
	$(GO) clean ./...
