#!/bin/sh
# udpsmoke.sh — multi-process UDP deployment smoke test.
#
# Launches a three-member totem ring as three separate ftdomaind -node
# OS processes over real localhost UDP sockets (two replica hosts by the
# sorted-registry convention, the third hosting the gateway), runs a
# short echo soak plus the exactly-once append audit through the gateway
# with udpbench, and tears the fleet down. Exits non-zero on any
# failure: a node that dies, a gateway that never comes up, a lost or
# duplicated append. Used by `make smoke-udp` (part of `make check`)
# and CI.
set -eu

ROOT=$(git rev-parse --show-toplevel 2>/dev/null || pwd)
cd "$ROOT"
WORK=$(mktemp -d /tmp/udpsmoke.XXXXXX)
PIDS=""
cleanup() {
    for pid in $PIDS; do
        kill -TERM "$pid" 2>/dev/null || true
    done
    for pid in $PIDS; do
        wait "$pid" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$WORK/ftdomaind" ./cmd/ftdomaind
go build -o "$WORK/udpbench" ./cmd/udpbench

# Build the shared registry from freshly probed ports. The probe-then-
# bind window is racy in principle; launching is retried from scratch on
# failure.
attempt=1
while :; do
    set -- $("$WORK/udpbench" -freeports 3)
    REG="smoke/a=127.0.0.1:$1,smoke/b=127.0.0.1:$2,smoke/c=127.0.0.1:$3"
    PIDS=""
    : >"$WORK/gw.log"
    for node in smoke/a smoke/b smoke/c; do
        listen=""
        log="$WORK/$(echo "$node" | tr / _).log"
        if [ "$node" = smoke/c ]; then
            listen="-listen 127.0.0.1:0"
            log="$WORK/gw.log"
        fi
        # shellcheck disable=SC2086
        "$WORK/ftdomaind" -node "$node" -registry "$REG" -replicas 2 \
            -log-level error $listen >"$log" 2>&1 &
        PIDS="$PIDS $!"
    done
    # Wait for the gateway node to print its address and reach serving.
    GWADDR=""
    i=0
    while [ $i -lt 100 ]; do
        if grep -q '^serving' "$WORK/gw.log" 2>/dev/null; then
            GWADDR=$(sed -n 's/^gateway 0 listening on //p' "$WORK/gw.log" | head -1)
            break
        fi
        alive=true
        for pid in $PIDS; do
            kill -0 "$pid" 2>/dev/null || alive=false
        done
        $alive || break
        i=$((i + 1))
        sleep 0.2
    done
    [ -n "$GWADDR" ] && break
    echo "udpsmoke: launch attempt $attempt failed; node logs:" >&2
    cat "$WORK"/*.log >&2 || true
    for pid in $PIDS; do kill -TERM "$pid" 2>/dev/null || true; done
    for pid in $PIDS; do wait "$pid" 2>/dev/null || true; done
    PIDS=""
    attempt=$((attempt + 1))
    if [ $attempt -gt 3 ]; then
        echo "udpsmoke: giving up after 3 launch attempts" >&2
        exit 1
    fi
done

echo "udpsmoke: ring up, gateway at $GWADDR (registry $REG)"
# Short soak: concurrent echo load, then the exactly-once audit.
"$WORK/udpbench" -addr "$GWADDR" -clients 8 -duration 1s -warmup 100ms \
    -name BenchmarkUDPSmoke/c=8/small -audit -audit-appends 25

# Every node process must still be alive after the load.
for pid in $PIDS; do
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "udpsmoke: a node process died during the soak; logs:" >&2
        cat "$WORK"/*.log >&2 || true
        exit 1
    fi
done
echo "udpsmoke: ok"
