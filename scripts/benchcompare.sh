#!/bin/sh
# benchcompare.sh REF [BENCH_REGEX [ROUNDS [BENCHTIME]]]
#
# Interleaved A/B benchmark run: HEAD's working tree against REF. The
# current bench_throughput_test.go is overlaid onto a detached worktree
# of REF, so both sides run the *same* benchmark suite (the file is kept
# self-contained over bench_test.go helpers for exactly this reason).
# Rounds alternate before/after so machine-load drift cancels instead of
# biasing one side; the table at the end shows per-benchmark mean ns/op
# and the before/after speedup. Used by `make bench-compare`.
set -eu

REF=${1:?usage: benchcompare.sh REF [BENCH_REGEX [ROUNDS [BENCHTIME]]]}
REGEX=${2:-'BenchmarkGatewayRoundTrip|BenchmarkGatewayMultiClient|BenchmarkGatewayReplicationDegree|BenchmarkGatewayMultiGroup'}
ROUNDS=${3:-3}
BENCHTIME=${4:-2s}

ROOT=$(git rev-parse --show-toplevel)
cd "$ROOT"
WORK=$(mktemp -d /tmp/benchcompare.XXXXXX)
TREE="$WORK/ref"
cleanup() {
    git worktree remove --force "$TREE" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "== before: $REF   after: working tree ==" >&2
git worktree add --detach "$TREE" "$REF" >/dev/null
cp bench_throughput_test.go "$TREE/bench_throughput_test.go"
# The overlay only works while HEAD's bench file compiles against the
# ref's packages; a ref predating a package the file imports (e.g.
# internal/admission) breaks it. Fall back to the ref's own suite then —
# the shared benchmarks still compare; ref-missing ones are skipped.
if ! (cd "$TREE" && go vet . >/dev/null 2>&1); then
    echo "== overlaid bench file does not compile at $REF; using ref's own bench_throughput_test.go ==" >&2
    (cd "$TREE" && git checkout -- bench_throughput_test.go 2>/dev/null) || \
        rm -f "$TREE/bench_throughput_test.go"
fi

BEFORE="$WORK/before.txt"
AFTER="$WORK/after.txt"
: >"$BEFORE"
: >"$AFTER"
i=1
while [ "$i" -le "$ROUNDS" ]; do
    echo "== round $i/$ROUNDS: before ($REF) ==" >&2
    (cd "$TREE" && go test -run xxx -bench "$REGEX" -benchtime "$BENCHTIME" -count 1 .) | tee -a "$BEFORE" >&2
    echo "== round $i/$ROUNDS: after (working tree) ==" >&2
    go test -run xxx -bench "$REGEX" -benchtime "$BENCHTIME" -count 1 . | tee -a "$AFTER" >&2
    # A regexp that matches nothing produces a clean PASS and an empty
    # comparison — indistinguishable from "no regression" unless caught.
    # Check after the first round so a typo fails in seconds, not after
    # every remaining round has burned its benchtime.
    if [ "$i" -eq 1 ]; then
        if ! grep -q '^Benchmark' "$BEFORE"; then
            echo "benchcompare: regex '$REGEX' matched no benchmarks at $REF" >&2
            exit 1
        fi
        if ! grep -q '^Benchmark' "$AFTER"; then
            echo "benchcompare: regex '$REGEX' matched no benchmarks in the working tree" >&2
            exit 1
        fi
    fi
    i=$((i + 1))
done

awk '
function mean(sums, cnts, k) { return sums[k] / cnts[k] }
FNR == 1 { side++ }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") {
            if (side == 1) {
                if (!(name in bsum)) order[++n] = name
                bsum[name] += $i; bcnt[name]++
            } else {
                if (!(name in asum)) aorder[++an] = name
                asum[name] += $i; acnt[name]++
            }
            break
        }
    }
}
END {
    printf "%-52s %14s %14s %9s\n", "benchmark", "before ns/op", "after ns/op", "speedup"
    for (i = 1; i <= n; i++) {
        k = order[i]
        if (!(k in acnt)) continue
        b = mean(bsum, bcnt, k); a = mean(asum, acnt, k)
        printf "%-52s %14d %14d %8.2fx\n", k, b, a, b / a
    }
    # After-only benchmarks that are a mode variant of a before row are
    # scored against that baseline so the mode-vs-baseline speedup prints
    # directly: "Leader" rows against their ring-mode row (e.g.
    # GatewayRoundTripLeader/small vs GatewayRoundTrip/small), and
    # real-socket UDP rows against the memnet row of the same shape (e.g.
    # GatewayMultiClientUDP/batched/c=16/small vs
    # GatewayMultiClient/c=16/small — the price of a real network).
    for (i = 1; i <= an; i++) {
        k = aorder[i]
        if (k in bcnt) continue
        base = k
        sub(/Leader/, "", base)
        if (base == k) sub(/UDP\/(batched|perdatagram)/, "", base)
        if (base != k && (base in bcnt)) {
            b = mean(bsum, bcnt, base); a = mean(asum, acnt, k)
            printf "%-52s %14d %14d %8.2fx\n", k " (vs " base ")", b, a, b / a
        } else {
            printf "%-52s %14s %14d %9s\n", k, "(new)", mean(asum, acnt, k), "-"
        }
    }
}' "$BEFORE" "$AFTER"
