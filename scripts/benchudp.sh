#!/bin/sh
# benchudp.sh [ROUNDS [DURATION [CLIENTS]]] — multi-process UDP
# throughput sweep.
#
# For every configuration (totem ordering ring|leader × replication
# degree r=1..3), launches a fresh four-member ring as four separate
# ftdomaind -node OS processes over real localhost UDP sockets (the
# first r sorted registry ids host replicas, the fourth hosts the
# gateway) and drives it with udpbench: a timed multi-client echo phase
# plus the exactly-once append audit. Within each round the batched
# (sendmmsg/recvmmsg) and per-datagram datapaths run back to back, so
# machine-load drift cancels out of the A/B instead of biasing one side
# — the same interleaving discipline as scripts/benchcompare.sh.
#
# Benchmark lines go to stdout in `go test -bench` format; `make
# bench-udp` aggregates them (together with the in-process
# BenchmarkGatewayMultiClientUDP rows) through scripts/benchjson.awk
# into the BENCH_udp.json schema. Diagnostics go to stderr.
set -eu

ROUNDS=${1:-2}
DURATION=${2:-2s}
CLIENTS=${3:-8}

ROOT=$(git rev-parse --show-toplevel 2>/dev/null || pwd)
cd "$ROOT"
WORK=$(mktemp -d /tmp/benchudp.XXXXXX)
PIDS=""
cleanup() {
    stop_fleet
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

go build -o "$WORK/ftdomaind" ./cmd/ftdomaind
go build -o "$WORK/udpbench" ./cmd/udpbench

stop_fleet() {
    for pid in $PIDS; do
        kill -TERM "$pid" 2>/dev/null || true
    done
    for pid in $PIDS; do
        wait "$pid" 2>/dev/null || true
    done
    PIDS=""
}

# launch_fleet ORDERING REPLICAS BATCHFLAG — start four node processes
# and set GWADDR to the gateway address. Retries from scratch when the
# probed registry ports are raced away.
launch_fleet() {
    ordering=$1
    replicas=$2
    batch=$3
    attempt=1
    while :; do
        set -- $("$WORK/udpbench" -freeports 4)
        REG="bench/n0=127.0.0.1:$1,bench/n1=127.0.0.1:$2,bench/n2=127.0.0.1:$3,bench/n3=127.0.0.1:$4"
        PIDS=""
        rm -f "$WORK"/*.log
        for node in bench/n0 bench/n1 bench/n2 bench/n3; do
            listen=""
            log="$WORK/$(echo "$node" | tr / _).log"
            if [ "$node" = bench/n3 ]; then
                listen="-listen 127.0.0.1:0"
                log="$WORK/gw.log"
            fi
            # shellcheck disable=SC2086
            "$WORK/ftdomaind" -node "$node" -registry "$REG" \
                -replicas "$replicas" -ordering "$ordering" \
                -udp-batch="$batch" -log-level error $listen >"$log" 2>&1 &
            PIDS="$PIDS $!"
        done
        GWADDR=""
        i=0
        while [ $i -lt 150 ]; do
            if grep -q '^serving' "$WORK/gw.log" 2>/dev/null; then
                GWADDR=$(sed -n 's/^gateway 0 listening on //p' "$WORK/gw.log" | head -1)
                break
            fi
            alive=true
            for pid in $PIDS; do
                kill -0 "$pid" 2>/dev/null || alive=false
            done
            $alive || break
            i=$((i + 1))
            sleep 0.2
        done
        [ -n "$GWADDR" ] && return 0
        echo "benchudp: launch attempt $attempt ($ordering r=$replicas batch=$batch) failed; node logs:" >&2
        cat "$WORK"/*.log >&2 || true
        stop_fleet
        attempt=$((attempt + 1))
        if [ $attempt -gt 3 ]; then
            echo "benchudp: giving up after 3 launch attempts" >&2
            exit 1
        fi
    done
}

round=1
while [ "$round" -le "$ROUNDS" ]; do
    for ordering in ring leader; do
        for replicas in 1 2 3; do
            for mode in batched perdatagram; do
                batch=true
                [ "$mode" = perdatagram ] && batch=false
                echo "== round $round/$ROUNDS: $ordering r=$replicas $mode ==" >&2
                launch_fleet "$ordering" "$replicas" "$batch"
                "$WORK/udpbench" -addr "$GWADDR" -clients "$CLIENTS" \
                    -duration "$DURATION" -payload 64 \
                    -name "BenchmarkUDPMultiProcess/$ordering/$mode/r=$replicas/c=$CLIENTS/small" \
                    -audit -audit-appends 25 >"$WORK/bench.out"
                # Benchmark line to stdout, audit confirmation to stderr.
                grep '^Benchmark' "$WORK/bench.out"
                grep -v '^Benchmark' "$WORK/bench.out" >&2 || true
                stop_fleet
            done
        done
    done
    round=$((round + 1))
done
