# Summarizes `go test -bench` output as JSON in the BENCH_baseline.json
# schema: goos/goarch/cpu from the run header, then per-benchmark
# ns_per_op sample lists and means, so a run is directly comparable to
# the recorded BENCH_*.json trajectory files. Used by `make bench`.
/^goos: /   { goos = $2 }
/^goarch: / { goarch = $2 }
/^cpu: /    { sub(/^cpu: /, ""); cpu = $0 }
/^Benchmark/ {
    # "BenchmarkName-8   1234   5678 ns/op ..." — strip the GOMAXPROCS
    # suffix so repeated -count runs aggregate under one name.
    name = $1
    sub(/-[0-9]+$/, "", name)
    for (i = 2; i < NF; i++) {
        if ($(i + 1) == "ns/op") {
            if (!(name in samples)) order[++n] = name
            samples[name] = samples[name] == "" ? $i : samples[name] ", " $i
            sum[name] += $i
            cnt[name]++
            break
        }
    }
}
END {
    printf "{\n"
    printf "  \"command\": \"%s\",\n", cmd == "" ? "make bench" : cmd
    printf "  \"goos\": \"%s\",\n", goos
    printf "  \"goarch\": \"%s\",\n", goarch
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"results\": {\n"
    for (i = 1; i <= n; i++) {
        name = order[i]
        printf "    \"%s\": {\n", name
        printf "      \"ns_per_op\": [%s],\n", samples[name]
        printf "      \"mean_ns_per_op\": %d\n", sum[name] / cnt[name]
        printf "    }%s\n", i < n ? "," : ""
    }
    printf "  }\n"
    printf "}\n"
}
