// Leader-crash soak for the totem ordering fast path: a domain runs
// with `Ordering: leader`, thin clients append unique markers at full
// load, and the fault plan crashes the promoted sequencer mid-storm and
// restarts it later. Run under -race by `make soak-leader`. The
// assertions are the fast path's safety contract: every marker lands in
// the replicated state exactly once and in one total order across the
// demotion to ring rotation and the subsequent agreed re-promotion —
// leader failure may cost latency, never correctness.
package eternalgw_test

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"eternalgw/internal/domain"
	"eternalgw/internal/experiments"
	"eternalgw/internal/faultinject"
	"eternalgw/internal/ftmgmt"
	"eternalgw/internal/memnet"
	"eternalgw/internal/replication"
	"eternalgw/internal/thinclient"
	"eternalgw/internal/totem"
)

// soakWaitFastpath polls until every node in ids agrees on the same
// (sequencer, start sequence) pair, returning them. The agreement is
// the point: a promotion is only usable once the whole ring switched
// modes at the same agreed sequence.
func soakWaitFastpath(t *testing.T, d *domain.Domain, ids []int) (memnet.NodeID, uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		var (
			leader memnet.NodeID
			start  uint64
			agreed = true
		)
		for _, i := range ids {
			l, s, ok := d.Node(i).Totem.Fastpath()
			if !ok || (leader != "" && (l != leader || s != start)) {
				agreed = false
				break
			}
			leader, start = l, s
		}
		if agreed {
			return leader, start
		}
		if time.Now().After(deadline) {
			t.Fatal("nodes never agreed on a sequencer")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestLeaderCrashSoak(t *testing.T) {
	const clients = 16
	calls := 25
	if testing.Short() {
		calls = 8
	}
	total := clients * calls

	d, err := domain.New(domain.Config{
		Name:  "leader-soak",
		Nodes: 5,
		Totem: totem.Config{
			IdleHold:        100 * time.Microsecond,
			TokenRetransmit: 10 * time.Millisecond,
			FailTimeout:     80 * time.Millisecond,
			GatherTimeout:   20 * time.Millisecond,
			Ordering:        totem.OrderingLeader,
		},
		GatewayInvokeTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)

	err = d.Manager().CreateReplicatedObject(benchGroup, ftmgmt.Properties{
		Style:           replication.Active,
		InitialReplicas: 3,
		MinReplicas:     2,
		ObjectKey:       []byte(benchKey),
		TypeID:          benchType,
	}, func() (replication.Application, error) { return &experiments.RegisterApp{}, nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddGateway(3, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddGateway(4, ""); err != nil {
		t.Fatal(err)
	}
	ref, err := d.PublishIOR(benchType, []byte(benchKey))
	if err != nil {
		t.Fatal(err)
	}

	// Load must start against the fast path, not the ring warming up to
	// it; promotion needs quiescence, so wait before the storm begins.
	allNodes := []int{0, 1, 2, 3, 4}
	leader1, start1 := soakWaitFastpath(t, d, allNodes)
	victim := -1
	for _, i := range allNodes {
		if d.Node(i).ID == leader1 {
			victim = i
			break
		}
	}
	if victim < 0 {
		t.Fatalf("sequencer %s is not a domain node", leader1)
	}

	// The fault plan kills the sequencer a third of the way through the
	// storm and brings the processor back at two thirds. Thresholds are
	// operation counts so the schedule reproduces regardless of machine
	// speed; the actions run on their own goroutines so no client loop
	// stalls behind them.
	var faultWG sync.WaitGroup
	plan := faultinject.NewPlan(
		faultinject.Step{AtOp: uint64(total / 3), Name: "crash-sequencer", Action: func() {
			faultWG.Add(1)
			go func() {
				defer faultWG.Done()
				d.CrashNode(victim)
			}()
		}},
		faultinject.Step{AtOp: uint64(2 * total / 3), Name: "restart-sequencer", Action: func() {
			faultWG.Add(1)
			go func() {
				defer faultWG.Done()
				d.RestartNode(victim)
			}()
		}},
	)

	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c uint32) {
			defer wg.Done()
			tc, err := thinclient.Dial(ref, thinclient.Config{
				CallTimeout:  10 * time.Second,
				MaxRounds:    500,
				ShedBackoff:  500 * time.Microsecond,
				ShedFailover: 8,
			})
			if err != nil {
				errCh <- err
				return
			}
			defer func() { _ = tc.Close() }()
			for i := 0; i < calls; i++ {
				if _, err := tc.Call("append", experiments.OctetSeqArg(marker(c, uint32(i)))); err != nil {
					errCh <- err
					return
				}
				plan.Tick()
			}
		}(uint32(c))
	}
	wg.Wait()
	faultWG.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if !plan.Done() {
		t.Fatalf("fault plan incomplete: fired %v after %d ops", plan.Fired(), plan.Ops())
	}

	// The sequencer's death must have forced the survivors off the fast
	// path (demotion is what keeps the crash safe), and once the storm
	// ended and the ring went quiescent again, a fresh promotion must
	// have installed a sequencer every node agrees on.
	var demotions uint64
	for _, i := range allNodes {
		demotions += d.Node(i).Totem.Stats().Demotions
	}
	if demotions == 0 {
		t.Fatal("sequencer crashed but no node ever demoted to ring rotation")
	}
	leader2, start2 := soakWaitFastpath(t, d, allNodes)
	if leader2 == leader1 && start2 == start1 {
		t.Fatalf("post-crash sequencer is still the original promotion (%s at %d)", leader1, start1)
	}

	// Exactly-once audit: the replicated register holds every marker
	// exactly once, despite any forwards the demotion re-queued and any
	// batches the dead sequencer had in flight.
	tc, err := thinclient.Dial(ref, thinclient.Config{
		CallTimeout:  10 * time.Second,
		MaxRounds:    500,
		ShedBackoff:  500 * time.Microsecond,
		ShedFailover: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = tc.Close() }()
	r, err := tc.Call("ops", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReadLongLong(); got != int64(total) {
		t.Fatalf("replicas executed %d ops, want exactly %d", got, total)
	}
	r, err = tc.Call("read", nil)
	if err != nil {
		t.Fatal(err)
	}
	value := r.ReadOctetSeq()
	if err := r.Err(); err != nil {
		t.Fatal(err)
	}
	if len(value) != total*8 {
		t.Fatalf("register holds %d bytes, want %d (markers lost or duplicated)", len(value), total*8)
	}
	seen := make(map[uint64]int, total)
	for off := 0; off < len(value); off += 8 {
		seen[binary.BigEndian.Uint64(value[off:])]++
	}
	for c := uint32(0); c < clients; c++ {
		for i := uint32(0); i < uint32(calls); i++ {
			if n := seen[binary.BigEndian.Uint64(marker(c, i))]; n != 1 {
				t.Fatalf("marker client=%d call=%d appended %d times, want exactly once", c, i, n)
			}
		}
	}
}
