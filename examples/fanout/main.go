// Fan-out streaming through gateways: a publisher appends items to a
// replicated group, and the domain's gateways push each ordered item to
// unreplicated subscribers outside the domain — the paper's gateway
// role as the boundary where replicated state meets thin clients, in
// the streaming direction. Subscribers detect gaps and backfill from
// any live gateway, so a gateway crash mid-stream loses nothing.
//
// The example runs the scenario in the deterministic simulator under a
// loss storm plus gateway crashes, then audits that every subscriber
// accepted every item in the published order.
//
// Run with: go run ./examples/fanout [seed]
package main

import (
	"fmt"
	"os"
	"strconv"

	"eternalgw/internal/sim"
)

func main() {
	seed := uint64(7)
	if len(os.Args) > 1 {
		v, err := strconv.ParseUint(os.Args[1], 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad seed %q: %v\n", os.Args[1], err)
			os.Exit(2)
		}
		seed = v
	}

	fmt.Printf("fan-out streaming under loss storm, seed %d\n\n", seed)
	res := sim.Run(sim.Config{
		Seed:     seed,
		Workload: sim.WorkloadFanout,
		Schedule: sim.SchedStorm,
	})

	fmt.Printf("virtual time:  %d ms\n", res.Stats.VirtualMS)
	fmt.Printf("trace:         %d events, hash %016x\n", res.Stats.Events, res.TraceHash)
	fmt.Printf("faults fired:  %d\n", res.Stats.Faults)
	fmt.Printf("ring installs: %d\n\n", res.Stats.Rings)

	if res.Reason != "completed" || len(res.Violations) > 0 {
		fmt.Printf("FAILED (%s):\n", res.Reason)
		for _, v := range res.Violations {
			fmt.Printf("  %s\n", v)
		}
		fmt.Printf("\nreplay with: go run ./cmd/simrun -seed %d -workload %s -schedule %s\n",
			seed, sim.WorkloadFanout, sim.SchedStorm)
		os.Exit(1)
	}

	fmt.Println("all subscribers accepted every item in published order")
}
