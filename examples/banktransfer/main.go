// Bank transfer across fault tolerance domains: the paper's "gateways
// as bridges" story (section 4). A west domain holds debit accounts, an
// east domain the credit side; every transfer debits a replicated west
// group and emits a nested credit invocation that crosses the domain
// boundary through the east gateways, whose duplicate suppression
// collapses the copies every west replica emits.
//
// The example runs the scenario inside the deterministic simulator
// (internal/sim) under an adversarial fault schedule — a partition cut
// through the west ring while transfers are in flight — and then audits
// the paper's invariants from the recorded trace: exactly-once per
// transfer, a single total order, and conservation of money across both
// domains. Change the seed and the fault schedule changes with it;
// rerun a seed and the run replays byte-for-byte.
//
// Run with: go run ./examples/banktransfer [seed]
package main

import (
	"fmt"
	"os"
	"strconv"

	"eternalgw/internal/sim"
)

func main() {
	seed := uint64(42)
	if len(os.Args) > 1 {
		v, err := strconv.ParseUint(os.Args[1], 10, 64)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bad seed %q: %v\n", os.Args[1], err)
			os.Exit(2)
		}
		seed = v
	}

	fmt.Printf("bank transfer under partition-during-invocation, seed %d\n\n", seed)
	res := sim.Run(sim.Config{
		Seed:     seed,
		Workload: sim.WorkloadBank,
		Schedule: sim.SchedPartition,
	})

	fmt.Printf("virtual time:  %d ms\n", res.Stats.VirtualMS)
	fmt.Printf("trace:         %d events, hash %016x\n", res.Stats.Events, res.TraceHash)
	fmt.Printf("faults fired:  %d\n", res.Stats.Faults)
	fmt.Printf("executions:    %d (%d duplicates suppressed at replicas)\n", res.Stats.Execs, res.Stats.Dedups)
	fmt.Printf("reissues:      %d answered, %d from gateway records\n", res.Stats.Reissues, res.Stats.RecordHits)
	fmt.Printf("ring installs: %d\n\n", res.Stats.Rings)

	if res.Reason != "completed" || len(res.Violations) > 0 {
		fmt.Printf("FAILED (%s):\n", res.Reason)
		for _, v := range res.Violations {
			fmt.Printf("  %s\n", v)
		}
		fmt.Printf("\nreplay with: go run ./cmd/simrun -seed %d -workload %s -schedule %s\n",
			seed, sim.WorkloadBank, sim.SchedPartition)
		os.Exit(1)
	}

	// Replay gate: the identical seed must reproduce the identical trace.
	again := sim.Run(sim.Config{Seed: seed, Workload: sim.WorkloadBank, Schedule: sim.SchedPartition})
	if again.TraceHash != res.TraceHash {
		fmt.Printf("REPLAY DIVERGED: %016x != %016x\n", again.TraceHash, res.TraceHash)
		os.Exit(1)
	}

	fmt.Println("all invariants hold: exactly-once, total order, conservation of money")
	fmt.Println("replay verified: identical seed, identical trace")
}
