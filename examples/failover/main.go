// Failover: paper sections 3.4 vs 3.5, side by side.
//
// Act 1 (plain ORB, single gateway): the gateway process dies mid-
// session. The client's outstanding requests are abandoned — it never
// learns their fate — and a naive resend through the recovered gateway
// executes the operation a second time.
//
// Act 2 (enhanced client, redundant gateways): the same failure, but the
// client runs the thin client-side interception layer over a
// multi-profile IOR. It fails over to the next gateway, reissues its
// pending invocations with its unique client identifier, and every
// operation happens exactly once.
//
// Run with: go run ./examples/failover
package main

import (
	"fmt"
	"os"
	"time"

	"eternalgw/internal/domain"
	"eternalgw/internal/experiments"
	"eternalgw/internal/ftmgmt"
	"eternalgw/internal/orb"
	"eternalgw/internal/replication"
	"eternalgw/internal/thinclient"
)

const (
	group     replication.GroupID = 100
	objectKey                     = "account/balance"
	refType                       = "IDL:eternalgw/Account:1.0"
)

func main() {
	if err := actOne(); err != nil {
		fmt.Fprintln(os.Stderr, "failover (act 1):", err)
		os.Exit(1)
	}
	fmt.Println()
	if err := actTwo(); err != nil {
		fmt.Fprintln(os.Stderr, "failover (act 2):", err)
		os.Exit(1)
	}
}

func setup(gateways int) (*domain.Domain, []*experiments.RegisterApp, error) {
	d, err := domain.New(domain.Config{Name: "bank", Nodes: 4})
	if err != nil {
		return nil, nil, err
	}
	var apps []*experiments.RegisterApp
	err = d.Manager().CreateReplicatedObject(group, ftmgmt.Properties{
		Style:           replication.Active,
		InitialReplicas: 2,
		MinReplicas:     1,
		ObjectKey:       []byte(objectKey),
		TypeID:          refType,
	}, func() (replication.Application, error) {
		app := &experiments.RegisterApp{}
		apps = append(apps, app)
		return app, nil
	})
	if err != nil {
		d.Close()
		return nil, nil, err
	}
	for i := 0; i < gateways; i++ {
		if _, err := d.AddGateway(2+i%2, ""); err != nil {
			d.Close()
			return nil, nil, err
		}
	}
	return d, apps, nil
}

func waitOps(app *experiments.RegisterApp, want int64) int64 {
	deadline := time.Now().Add(2 * time.Second)
	for app.Ops() < want && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	return app.Ops()
}

// actOne demonstrates section 3.4: plain client, single gateway.
func actOne() error {
	fmt.Println("=== Act 1: plain ORB client, single gateway (section 3.4) ===")
	d, apps, err := setup(1)
	if err != nil {
		return err
	}
	defer d.Close()
	gw := d.Gateways()[0]

	conn, err := orb.Dial(gw.Addr())
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }()

	// A deposit goes through...
	if _, err := conn.Call([]byte(objectKey), "append", experiments.OctetSeqArg([]byte("+100")), orb.InvokeOptions{RequestID: 1}); err != nil {
		return err
	}
	fmt.Println("deposit #1 acknowledged")

	// ...then the gateway process dies.
	_ = gw.Close()
	fmt.Println("!! gateway process failed")
	_, err = conn.Call([]byte(objectKey), "append", experiments.OctetSeqArg([]byte("+100")), orb.InvokeOptions{RequestID: 2, Timeout: 500 * time.Millisecond})
	fmt.Printf("deposit #2: %v  <- abandoned; the customer cannot know whether it happened\n", err)

	// The gateway recovers; the customer retries deposit #2.
	if _, err := d.AddGateway(3, ""); err != nil {
		return err
	}
	conn2, err := orb.Dial(d.Gateways()[1].Addr())
	if err != nil {
		return err
	}
	defer func() { _ = conn2.Close() }()
	if _, err := conn2.Call([]byte(objectKey), "append", experiments.OctetSeqArg([]byte("+100")), orb.InvokeOptions{RequestID: 2}); err != nil {
		return err
	}
	ops := waitOps(apps[0], 2)
	fmt.Printf("deposit #2 retried through the recovered gateway: server executed %d operations for 2 acknowledged deposits\n", ops)
	if ops > 2 {
		fmt.Println(">> the retry DUPLICATED a deposit the domain had already executed — the corruption section 3.4 warns about")
	}
	return nil
}

// actTwo demonstrates section 3.5: enhanced client, redundant gateways.
func actTwo() error {
	fmt.Println("=== Act 2: enhanced client, redundant gateways (section 3.5) ===")
	d, apps, err := setup(3)
	if err != nil {
		return err
	}
	defer d.Close()

	ref, err := d.PublishIOR(refType, []byte(objectKey))
	if err != nil {
		return err
	}
	profiles, _ := ref.IIOPProfiles()
	fmt.Printf("multi-profile IOR carries %d gateway endpoints\n", len(profiles))

	c, err := thinclient.Dial(ref, thinclient.Config{CallTimeout: 2 * time.Second})
	if err != nil {
		return err
	}
	defer func() { _ = c.Close() }()

	const deposits = 12
	for i := 1; i <= deposits; i++ {
		if i == 4 {
			_ = d.Gateways()[0].Close()
			fmt.Println("!! gateway 0 failed mid-session")
		}
		if i == 8 {
			_ = d.Gateways()[1].Close()
			fmt.Println("!! gateway 1 failed mid-session")
		}
		r, err := c.Call("append", experiments.OctetSeqArg([]byte("+100")))
		if err != nil {
			return fmt.Errorf("deposit %d lost: %w", i, err)
		}
		if got := r.ReadLongLong(); got != int64(i) {
			return fmt.Errorf("deposit %d produced op #%d: lost or duplicated", i, got)
		}
	}
	st := c.Stats()
	ops := waitOps(apps[0], deposits)
	fmt.Printf("%d deposits acknowledged; server executed exactly %d operations\n", deposits, ops)
	fmt.Printf("the interception layer performed %d gateway failover(s) and %d reissue(s), invisibly to the application\n",
		st.Failovers, st.Reissues)
	fmt.Printf("now connected to gateway: %s\n", c.Gateway())
	return nil
}
