// Multi-domain: the full topology of paper figure 1. A customer in
// Santa Barbara (an unreplicated client) reaches the replicated servers
// of the New York fault tolerance domain by way of the Los Angeles
// domain, crossing two gateways and a replicated bridge object.
//
// Each domain runs its own fault tolerance infrastructure (its own
// totem ring, replication mechanisms, and gateways); the only traffic
// between them is TCP/IIOP between gateways — exactly the picture in
// the paper.
//
// Run with: go run ./examples/multidomain
package main

import (
	"fmt"
	"os"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/domain"
	"eternalgw/internal/experiments"
	"eternalgw/internal/ftmgmt"
	"eternalgw/internal/orb"
	"eternalgw/internal/replication"
)

const (
	nyServerGroup replication.GroupID = 100
	nyServerKey                       = "trading/book"
	laBridgeGroup replication.GroupID = 200
	laBridgeKey                       = "bridge/new-york"
	wideGroup     replication.GroupID = 300
	wideBridgeKey                     = "bridge/wide-area"
	refType                           = "IDL:Trading/Book:1.0"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "multidomain:", err)
		os.Exit(1)
	}
}

func run() error {
	// --- New York: the replicated servers -----------------------------
	ny, err := domain.New(domain.Config{Name: "new-york", Nodes: 4})
	if err != nil {
		return err
	}
	defer ny.Close()
	err = ny.Manager().CreateReplicatedObject(nyServerGroup, ftmgmt.Properties{
		Style:           replication.Active,
		InitialReplicas: 3,
		MinReplicas:     2,
		ObjectKey:       []byte(nyServerKey),
		TypeID:          refType,
	}, func() (replication.Application, error) { return &experiments.RegisterApp{}, nil })
	if err != nil {
		return err
	}
	if _, err := ny.AddGateway(3, ""); err != nil {
		return err
	}
	nyRef, err := ny.PublishIOR(refType, []byte(nyServerKey))
	if err != nil {
		return err
	}
	fmt.Println("new-york: 3 active replicas behind 1 gateway")

	// --- Wide-area domain: bridges New York onward --------------------
	wide, err := domain.New(domain.Config{Name: "wide-area", Nodes: 2})
	if err != nil {
		return err
	}
	defer wide.Close()
	err = wide.Manager().CreateReplicatedObject(wideGroup, ftmgmt.Properties{
		Style:           replication.Active,
		InitialReplicas: 2,
		MinReplicas:     1,
		ObjectKey:       []byte(wideBridgeKey),
		TypeID:          refType,
	}, func() (replication.Application, error) {
		return domain.NewBridgeApp(nyRef, []byte("wide-to-ny"), 10*time.Second), nil
	})
	if err != nil {
		return err
	}
	if _, err := wide.AddGateway(1, ""); err != nil {
		return err
	}
	wideRef, err := wide.PublishIOR(refType, []byte(wideBridgeKey))
	if err != nil {
		return err
	}
	fmt.Println("wide-area: replicated bridge to new-york behind 1 gateway")

	// --- Los Angeles: bridges the wide-area domain ---------------------
	la, err := domain.New(domain.Config{Name: "los-angeles", Nodes: 3})
	if err != nil {
		return err
	}
	defer la.Close()
	err = la.Manager().CreateReplicatedObject(laBridgeGroup, ftmgmt.Properties{
		Style:           replication.Active,
		InitialReplicas: 2,
		MinReplicas:     1,
		ObjectKey:       []byte(laBridgeKey),
		TypeID:          refType,
	}, func() (replication.Application, error) {
		return domain.NewBridgeApp(wideRef, []byte("la-to-wide"), 10*time.Second), nil
	})
	if err != nil {
		return err
	}
	if _, err := la.AddGateway(2, ""); err != nil {
		return err
	}
	laRef, err := la.PublishIOR(refType, []byte(laBridgeKey))
	if err != nil {
		return err
	}
	fmt.Println("los-angeles: replicated bridge to wide-area behind 1 gateway")

	// --- The customer in Santa Barbara ---------------------------------
	// An ordinary unreplicated client that only knows the LA reference.
	obj, conn, err := orb.Resolve(laRef)
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }()
	fmt.Println("\nsanta-barbara customer invoking through LA -> wide-area -> NY:")
	for i, order := range []string{"BUY 100 ETNL", "SELL 20 ETNL", "BUY 5 TOTM"} {
		start := time.Now()
		r, err := obj.Call("append", experiments.OctetSeqArg([]byte(order+";")), orb.InvokeOptions{})
		if err != nil {
			return fmt.Errorf("order %d: %w", i, err)
		}
		fmt.Printf("  %-14s -> recorded as op #%d (%v round trip, 3 domains crossed)\n",
			order, r.ReadLongLong(), time.Since(start).Round(time.Microsecond))
	}

	// Prove the orders landed in New York, reading via NY's own gateway.
	nyObj, nyConn, err := orb.Resolve(nyRef)
	if err != nil {
		return err
	}
	defer func() { _ = nyConn.Close() }()
	r, err := nyObj.Call("read", nil, orb.InvokeOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("\nnew-york order book: %q\n", decodeSeq(r))
	fmt.Println("every order crossed three fault tolerance domains exactly once")
	return nil
}

func decodeSeq(r *cdr.Reader) string { return string(r.ReadOctetSeq()) }
