// Quickstart: one fault tolerance domain, a triple-replicated counter,
// one gateway, and a plain unreplicated IIOP client invoking through it.
//
// The client never learns that the server is replicated: the published
// IOR points at the gateway, the gateway multicasts each request to the
// server group in total order, and the three replicas' responses are
// deduplicated down to one (paper figure 3).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"eternalgw/internal/cdr"
	"eternalgw/internal/domain"
	"eternalgw/internal/experiments"
	"eternalgw/internal/ftmgmt"
	"eternalgw/internal/orb"
	"eternalgw/internal/replication"
)

const (
	group     replication.GroupID = 100
	objectKey                     = "quickstart/register"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// 1. Start a domain: 4 processors, a totem ring, replication
	//    mechanisms everywhere.
	d, err := domain.New(domain.Config{Name: "quickstart", Nodes: 4})
	if err != nil {
		return err
	}
	defer d.Close()

	// 2. Ask the Replication Manager for a triple-replicated register.
	err = d.Manager().CreateReplicatedObject(group, ftmgmt.Properties{
		Style:           replication.Active,
		InitialReplicas: 3,
		MinReplicas:     2,
		ObjectKey:       []byte(objectKey),
		TypeID:          "IDL:eternalgw/Register:1.0",
	}, func() (replication.Application, error) {
		return &experiments.RegisterApp{}, nil
	})
	if err != nil {
		return err
	}

	// 3. Put a gateway on the domain edge and publish the IOR external
	//    clients will use. The IOR's host:port is the gateway's — the
	//    interceptor's address rewriting at work.
	if _, err := d.AddGateway(3, ""); err != nil {
		return err
	}
	ref, err := d.PublishIOR("IDL:eternalgw/Register:1.0", []byte(objectKey))
	if err != nil {
		return err
	}
	fmt.Println("published IOR (points at the gateway):")
	fmt.Println(ref.String()[:64] + "...")

	// 4. A completely ordinary IIOP client: resolve, connect, invoke.
	obj, conn, err := orb.Resolve(ref)
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }()

	for _, word := range []string{"fault", " tolerance", " domains"} {
		r, err := obj.Call("append", experiments.OctetSeqArg([]byte(word)), orb.InvokeOptions{})
		if err != nil {
			return err
		}
		fmt.Printf("append(%q) -> op #%d\n", word, r.ReadLongLong())
	}
	r, err := obj.Call("read", nil, orb.InvokeOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("read() -> %q\n", r.ReadOctetSeq())
	if err := r.Err(); err != nil {
		return err
	}

	// 5. Show what the infrastructure did behind the client's back.
	var dup uint64
	for i := 0; i < d.Nodes(); i++ {
		dup += d.Node(i).RM.Stats().DuplicateResponses
	}
	fmt.Printf("\nbehind the scenes: 3 replicas answered every request; %d duplicate responses were suppressed\n", dup)
	readCDRNote()
	return nil
}

// readCDRNote shows that the reply bodies really are CDR.
func readCDRNote() {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteString("all message bodies are CORBA CDR")
	r := cdr.NewReader(w.Bytes(), cdr.BigEndian)
	fmt.Println("note:", r.ReadString())
}
