// Evolution: live upgrade of a replicated object (paper section 2, the
// Eternal Evolution Manager). A v1 pricing service is upgraded to v2 —
// new behaviour, same state — while clients keep invoking it through the
// gateway. Replication is what makes this possible: the new replicas
// receive the old replicas' state by state transfer, and the old ones
// retire only once their replacements are live.
//
// Run with: go run ./examples/evolution
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/domain"
	"eternalgw/internal/ftmgmt"
	"eternalgw/internal/orb"
	"eternalgw/internal/replication"
)

const (
	group     replication.GroupID = 100
	objectKey                     = "pricing/quotes"
	refType                       = "IDL:eternalgw/Pricing:1.0"
)

// pricer quotes prices; v2 adds a volume discount but keeps v1's state
// encoding (quotes served so far), so state transfers across versions.
type pricer struct {
	version int64

	mu     sync.Mutex
	quotes int64
}

func (p *pricer) Invoke(op string, args *cdr.Reader, reply *cdr.Writer) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch op {
	case "quote":
		qty := args.ReadLongLong()
		if err := args.Err(); err != nil {
			return err
		}
		price := qty * 100
		if p.version >= 2 && qty >= 10 {
			price = price * 9 / 10 // v2: 10% volume discount
		}
		p.quotes++
		reply.WriteLongLong(price)
		return nil
	case "stats":
		reply.WriteLongLong(p.version)
		reply.WriteLongLong(p.quotes)
		return nil
	default:
		return fmt.Errorf("pricer: unknown operation %q", op)
	}
}

func (p *pricer) State() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteLongLong(p.quotes)
	return w.Bytes(), nil
}

func (p *pricer) SetState(state []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	r := cdr.NewReader(state, cdr.BigEndian)
	p.quotes = r.ReadLongLong()
	return r.Err()
}

func quoteArgs(qty int64) []byte {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteLongLong(qty)
	return w.Bytes()
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "evolution:", err)
		os.Exit(1)
	}
}

func run() error {
	d, err := domain.New(domain.Config{Name: "pricing", Nodes: 5})
	if err != nil {
		return err
	}
	defer d.Close()

	mkFactory := func(version int64) ftmgmt.Factory {
		return func() (replication.Application, error) { return &pricer{version: version}, nil }
	}
	err = d.Manager().CreateReplicatedObject(group, ftmgmt.Properties{
		Style:           replication.Active,
		InitialReplicas: 2,
		MinReplicas:     1,
		ObjectKey:       []byte(objectKey),
		TypeID:          refType,
	}, mkFactory(1))
	if err != nil {
		return err
	}
	if _, err := d.AddGateway(4, ""); err != nil {
		return err
	}
	ref, err := d.PublishIOR(refType, []byte(objectKey))
	if err != nil {
		return err
	}

	obj, conn, err := orb.Resolve(ref)
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }()

	quote := func(qty int64) (int64, error) {
		r, err := obj.Call("quote", quoteArgs(qty), orb.InvokeOptions{})
		if err != nil {
			return 0, err
		}
		return r.ReadLongLong(), nil
	}
	stats := func() (version, quotes int64, err error) {
		r, err := obj.Call("stats", nil, orb.InvokeOptions{})
		if err != nil {
			return 0, 0, err
		}
		version = r.ReadLongLong()
		quotes = r.ReadLongLong()
		return version, quotes, r.Err()
	}

	// v1 in production.
	for i := 0; i < 5; i++ {
		if _, err := quote(12); err != nil {
			return err
		}
	}
	price, err := quote(12)
	if err != nil {
		return err
	}
	v, q, err := stats()
	if err != nil {
		return err
	}
	fmt.Printf("v%d serving: quote(12 units) = %d  (quotes so far: %d)\n", v, price, q)

	// Live upgrade to v2 while the object keeps serving.
	fmt.Println("\n>> evolution manager: upgrading pricing service to v2 (no downtime)")
	upgradeDone := make(chan error, 1)
	go func() { upgradeDone <- d.Manager().Upgrade(group, mkFactory(2)) }()
	// Clients keep calling throughout the upgrade.
	for i := 0; i < 10; i++ {
		if _, err := quote(1); err != nil {
			return fmt.Errorf("quote during upgrade: %w", err)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := <-upgradeDone; err != nil {
		return err
	}

	// Wait for the last v1 replica to retire, then observe v2 behaviour
	// with v1's accumulated state.
	deadline := time.Now().Add(5 * time.Second)
	for {
		v, _, err = stats()
		if err != nil {
			return err
		}
		if v == 2 || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	price, err = quote(12)
	if err != nil {
		return err
	}
	v, q, err = stats()
	if err != nil {
		return err
	}
	fmt.Printf("v%d serving: quote(12 units) = %d  <- volume discount active\n", v, price)
	fmt.Printf("state carried across the upgrade: %d quotes served in total\n", q)
	return nil
}
