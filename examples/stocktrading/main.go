// Stock trading: the paper's motivating scenario (section 1). Customers
// with unreplicated thin clients trade against a stock exchange whose
// servers are replicated for fault tolerance. Mid-session, one exchange
// replica's processor crashes — and no customer notices: the surviving
// replicas keep answering, and the Resource Manager restores the
// replication level in the background.
//
// Run with: go run ./examples/stocktrading
package main

import (
	"fmt"
	"os"
	"sync"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/domain"
	"eternalgw/internal/ftmgmt"
	"eternalgw/internal/orb"
	"eternalgw/internal/replication"
)

const (
	exchangeGroup replication.GroupID = 100
	exchangeKey                       = "trading/exchange"
	exchangeType                      = "IDL:Trading/Exchange:1.0"
)

// exchange is a deterministic replicated stock exchange: a limit-free
// order book tracking positions per customer.
type exchange struct {
	mu        sync.Mutex
	positions map[string]int64 // "customer/SYMBOL" -> shares
	trades    int64
}

func newExchange() *exchange {
	return &exchange{positions: make(map[string]int64)}
}

func (e *exchange) Invoke(op string, args *cdr.Reader, reply *cdr.Writer) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	switch op {
	case "buy", "sell":
		customer := args.ReadString()
		symbol := args.ReadString()
		qty := args.ReadLongLong()
		if err := args.Err(); err != nil {
			return err
		}
		if op == "sell" {
			qty = -qty
		}
		key := customer + "/" + symbol
		e.positions[key] += qty
		e.trades++
		reply.WriteLongLong(e.positions[key])
		return nil
	case "position":
		customer := args.ReadString()
		symbol := args.ReadString()
		if err := args.Err(); err != nil {
			return err
		}
		reply.WriteLongLong(e.positions[customer+"/"+symbol])
		return nil
	case "trades":
		reply.WriteLongLong(e.trades)
		return nil
	default:
		return fmt.Errorf("exchange: unknown operation %q", op)
	}
}

func (e *exchange) State() ([]byte, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteLongLong(e.trades)
	w.WriteULong(uint32(len(e.positions)))
	// Deterministic order is not required for State (only one replica
	// donates at a time), but sorted output keeps digests comparable.
	keys := make([]string, 0, len(e.positions))
	for k := range e.positions {
		keys = append(keys, k)
	}
	sortStrings(keys)
	for _, k := range keys {
		w.WriteString(k)
		w.WriteLongLong(e.positions[k])
	}
	return w.Bytes(), nil
}

func (e *exchange) SetState(state []byte) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	r := cdr.NewReader(state, cdr.BigEndian)
	e.trades = r.ReadLongLong()
	n := r.ReadULong()
	// Symbol (string, ≥4 bytes) plus position (longlong, 8 bytes) per
	// entry: reject counts the payload cannot hold before allocating.
	if r.Err() != nil || int(n) > r.Remaining()/12 {
		return fmt.Errorf("stocktrading: set state: bad position count %d", n)
	}
	e.positions = make(map[string]int64, n)
	for i := uint32(0); i < n; i++ {
		k := r.ReadString()
		e.positions[k] = r.ReadLongLong()
	}
	return r.Err()
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func tradeArgs(customer, symbol string, qty int64) []byte {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteString(customer)
	w.WriteString(symbol)
	w.WriteLongLong(qty)
	return w.Bytes()
}

func posArgs(customer, symbol string) []byte {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteString(customer)
	w.WriteString(symbol)
	return w.Bytes()
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "stocktrading:", err)
		os.Exit(1)
	}
}

func run() error {
	d, err := domain.New(domain.Config{Name: "exchange", Nodes: 5})
	if err != nil {
		return err
	}
	defer d.Close()

	err = d.Manager().CreateReplicatedObject(exchangeGroup, ftmgmt.Properties{
		Style:           replication.Active,
		InitialReplicas: 3,
		MinReplicas:     3,
		ObjectKey:       []byte(exchangeKey),
		TypeID:          exchangeType,
	}, func() (replication.Application, error) { return newExchange(), nil })
	if err != nil {
		return err
	}
	// The Resource Manager watches the replication level.
	d.Manager().Monitor(50 * time.Millisecond)

	if _, err := d.AddGateway(4, ""); err != nil {
		return err
	}
	ref, err := d.PublishIOR(exchangeType, []byte(exchangeKey))
	if err != nil {
		return err
	}

	// Three customers trade concurrently through their web-browser-like
	// thin clients.
	customers := []string{"alice", "bob", "carol"}
	var wg sync.WaitGroup
	errCh := make(chan error, len(customers))
	for _, customer := range customers {
		wg.Add(1)
		go func(customer string) {
			defer wg.Done()
			obj, conn, err := orb.Resolve(ref)
			if err != nil {
				errCh <- err
				return
			}
			defer func() { _ = conn.Close() }()
			for i := 0; i < 20; i++ {
				if _, err := obj.Call("buy", tradeArgs(customer, "ETNL", 10), orb.InvokeOptions{}); err != nil {
					errCh <- fmt.Errorf("%s trade %d: %w", customer, i, err)
					return
				}
			}
		}(customer)
	}

	// Meanwhile, a processor hosting an exchange replica crashes.
	time.Sleep(20 * time.Millisecond)
	victim := d.Node(0).RM.Members(exchangeGroup)[0]
	for i := 0; i < d.Nodes(); i++ {
		if d.Node(i).ID == victim {
			fmt.Printf("!! crashing processor %s (hosts an exchange replica) mid-trading\n", victim)
			d.CrashNode(i)
			break
		}
	}

	wg.Wait()
	close(errCh)
	for err := range errCh {
		return err
	}

	// Verify from a fresh client: every trade is accounted for.
	obj, conn, err := orb.Resolve(ref)
	if err != nil {
		return err
	}
	defer func() { _ = conn.Close() }()
	for _, customer := range customers {
		r, err := obj.Call("position", posArgs(customer, "ETNL"), orb.InvokeOptions{})
		if err != nil {
			return err
		}
		fmt.Printf("%s holds %d ETNL\n", customer, r.ReadLongLong())
	}
	r, err := obj.Call("trades", nil, orb.InvokeOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("total trades executed: %d (expected %d; none lost, none duplicated)\n", r.ReadLongLong(), len(customers)*20)

	// The Resource Manager has been replacing the lost replica; wait for
	// the membership to settle (it can transiently overshoot while the
	// crashed member's removal and the replacement's join race).
	deadline := time.Now().Add(5 * time.Second)
	for len(d.Node(4).RM.Members(exchangeGroup)) != 3 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	fmt.Printf("exchange replicas after recovery: %d (resource manager restored the minimum)\n",
		len(d.Node(4).RM.Members(exchangeGroup)))
	return nil
}
