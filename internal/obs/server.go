package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// StatusFunc renders one named section of the /statusz page.
type StatusFunc func() string

// Server is the ops HTTP endpoint of a process: liveness and readiness
// probes, the Prometheus scrape target, and a human-oriented /statusz
// with the tracer's recent invocations and whatever status sections the
// embedding process registers (e.g. per-group dedup-cache occupancy).
type Server struct {
	reg    *Registry
	tracer *Tracer
	opts   ServerOptions
	start  time.Time

	ln   net.Listener
	srv  *http.Server
	wg   sync.WaitGroup
	once sync.Once

	muxOnce sync.Once
	mux     *http.ServeMux

	ready atomic.Bool

	mu       sync.Mutex
	sections []statusSection
}

type statusSection struct {
	name string
	fn   StatusFunc
}

// ServerOptions are optional ops-server features.
type ServerOptions struct {
	// Pprof mounts the net/http/pprof profiling handlers under
	// /debug/pprof/, so CPU and heap profiles of the datapath can be
	// captured in place. Off by default: the profile endpoints expose
	// process internals and cost CPU while sampling, so enabling them is
	// an explicit operator decision.
	Pprof bool
}

// NewServer starts the ops server on addr ("host:port"; port 0 for
// ephemeral). Either reg or tracer may be nil; the endpoints then render
// what exists.
func NewServer(addr string, reg *Registry, tracer *Tracer) (*Server, error) {
	return NewServerOpts(addr, reg, tracer, ServerOptions{})
}

// NewServerOpts is NewServer with optional features.
func NewServerOpts(addr string, reg *Registry, tracer *Tracer, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	s := &Server{reg: reg, tracer: tracer, opts: opts, start: time.Now(), ln: ln}
	s.srv = &http.Server{Handler: s.Handler()}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

// NewHandler builds the ops endpoints without a listener, for embedding
// in an existing mux or an httptest server.
func NewHandler(reg *Registry, tracer *Tracer) *Server {
	return NewHandlerOpts(reg, tracer, ServerOptions{})
}

// NewHandlerOpts is NewHandler with optional features.
func NewHandlerOpts(reg *Registry, tracer *Tracer, opts ServerOptions) *Server {
	return &Server{reg: reg, tracer: tracer, opts: opts, start: time.Now()}
}

// Handler returns the ops mux (usable directly with httptest). The mux
// is built once and stored, so routes registered later through Handle
// are served by listeners already using it.
func (s *Server) Handler() http.Handler {
	s.muxOnce.Do(func() {
		mux := http.NewServeMux()
		mux.HandleFunc("/healthz", s.handleHealthz)
		mux.HandleFunc("/readyz", s.handleReadyz)
		mux.HandleFunc("/metrics", s.handleMetrics)
		mux.HandleFunc("/statusz", s.handleStatusz)
		if s.opts.Pprof {
			// Explicit registrations on this mux; the package-level handlers
			// net/http/pprof installs on http.DefaultServeMux are not served.
			mux.HandleFunc("/debug/pprof/", pprof.Index)
			mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
			mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
			mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
			mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		}
		s.mux = mux
	})
	return s.mux
}

// Handle registers an additional route on the ops mux — the extension
// point embedding processes use to mount admin surfaces (e.g. online
// reconfiguration) next to the probes. Safe to call while the server is
// serving; it follows http.ServeMux semantics, including panicking on a
// duplicate pattern.
func (s *Server) Handle(pattern string, h http.Handler) {
	_ = s.Handler() // ensure the stored mux exists
	s.mux.Handle(pattern, h)
}

// Addr returns the listen address (empty for handler-only servers).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// SetReady flips the /readyz state; processes call it once their domain
// is synchronized and gateways are listening.
func (s *Server) SetReady(ready bool) { s.ready.Store(ready) }

// AddStatusSection registers a named /statusz section.
func (s *Server) AddStatusSection(name string, fn StatusFunc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sections = append(s.sections, statusSection{name: name, fn: fn})
}

// Close stops the listener and waits for the serve loop.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	var err error
	s.once.Do(func() {
		err = s.srv.Close()
		s.wg.Wait()
	})
	return err
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = fmt.Fprintln(w, "ok")
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.ready.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		_, _ = fmt.Fprintln(w, "not ready")
		return
	}
	_, _ = fmt.Fprintln(w, "ready")
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.reg.WritePrometheus(w)
}

func (s *Server) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var b strings.Builder
	fmt.Fprintf(&b, "eternalgw ops status\nuptime: %v\nready: %v\n",
		time.Since(s.start).Round(time.Millisecond), s.ready.Load())

	if s.tracer != nil {
		recent := s.tracer.Recent()
		fmt.Fprintf(&b, "\n== recent traces (%d retained, %d in flight) ==\n",
			len(recent), s.tracer.ActiveCount())
		const maxShown = 32
		for i, tr := range recent {
			if i == maxShown {
				fmt.Fprintf(&b, "... %d more\n", len(recent)-maxShown)
				break
			}
			state := "done"
			if !tr.Done {
				state = "incomplete"
			}
			fmt.Fprintf(&b, "trace %s %s total=%v\n", tr.Key, state, tr.Total().Round(time.Microsecond))
			for _, h := range tr.Breakdown() {
				fmt.Fprintf(&b, "  %-20s -> %-20s %v\n", h.From, h.To, h.D.Round(time.Microsecond))
			}
		}
	}

	s.mu.Lock()
	sections := append([]statusSection(nil), s.sections...)
	s.mu.Unlock()
	sort.SliceStable(sections, func(i, j int) bool { return sections[i].name < sections[j].name })
	for _, sec := range sections {
		fmt.Fprintf(&b, "\n== %s ==\n%s", sec.name, strings.TrimRight(sec.fn(), "\n")+"\n")
	}
	_, _ = w.Write([]byte(b.String()))
}
