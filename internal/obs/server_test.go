package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestOpsEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total", "Ups.", nil).Add(5)
	tracer := NewTracer(8)
	key := TraceKey{ClientID: 9, ChildSeq: 1}
	tracer.Event(key, StageGatewayAccept, "gw")
	tracer.Event(key, StageMulticastSend, "gw")
	tracer.Event(key, StageReplyWrite, "gw")

	s := NewHandler(reg, tracer)
	s.AddStatusSection("dedup cache", func() string { return "group 100: 17 entries" })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if code, body := get(t, ts.URL+"/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}
	if code, _ := get(t, ts.URL+"/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("/readyz before ready = %d", code)
	}
	s.SetReady(true)
	if code, body := get(t, ts.URL+"/readyz"); code != 200 || !strings.Contains(body, "ready") {
		t.Fatalf("/readyz after ready = %d %q", code, body)
	}
	if code, body := get(t, ts.URL+"/metrics"); code != 200 || !strings.Contains(body, "up_total 5") {
		t.Fatalf("/metrics = %d %q", code, body)
	}
	code, body := get(t, ts.URL+"/statusz")
	if code != 200 {
		t.Fatalf("/statusz = %d", code)
	}
	for _, want := range []string{"recent traces", "9/(0,1)", "multicast_send", "== dedup cache ==", "17 entries"} {
		if !strings.Contains(body, want) {
			t.Errorf("/statusz missing %q:\n%s", want, body)
		}
	}
}

func TestServerListensAndCloses(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, "http://"+s.Addr()+"/healthz"); code != 200 {
		t.Fatalf("/healthz over TCP = %d", code)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestPprofEndpointsGated(t *testing.T) {
	// Default posture: the profiling handlers are not mounted.
	off := httptest.NewServer(NewHandler(nil, nil).Handler())
	defer off.Close()
	if code, _ := get(t, off.URL+"/debug/pprof/cmdline"); code != http.StatusNotFound {
		t.Fatalf("pprof off: /debug/pprof/cmdline = %d, want 404", code)
	}

	on := httptest.NewServer(NewHandlerOpts(nil, nil, ServerOptions{Pprof: true}).Handler())
	defer on.Close()
	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline"} {
		if code, _ := get(t, on.URL+path); code != http.StatusOK {
			t.Fatalf("pprof on: %s = %d, want 200", path, code)
		}
	}
}
