package obs

import (
	"strings"
	"sync"
	"testing"
)

// syncBuf is a goroutine-safe string sink.
type syncBuf struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func TestLoggerLevelsAndComponents(t *testing.T) {
	var buf syncBuf
	root := NewLogger(&buf, LevelInfo)
	gw := root.With("gateway")
	mgmt := root.With("ftmgmt")

	gw.Debugf("hidden %d", 1)
	gw.Infof("request from %s", "10.0.0.1")
	mgmt.Warnf("replacing replica")
	out := buf.String()
	if strings.Contains(out, "hidden") {
		t.Fatalf("debug line leaked at info level:\n%s", out)
	}
	if !strings.Contains(out, "level=info component=gateway request from 10.0.0.1") {
		t.Fatalf("missing gateway line:\n%s", out)
	}
	if !strings.Contains(out, "level=warn component=ftmgmt replacing replica") {
		t.Fatalf("missing ftmgmt line:\n%s", out)
	}

	// Lowering the level on any member affects the whole family.
	mgmt.SetLevel(LevelDebug)
	gw.Debugf("now visible")
	if !strings.Contains(buf.String(), "level=debug component=gateway now visible") {
		t.Fatalf("debug line missing after SetLevel:\n%s", buf.String())
	}
}

func TestNilLoggerIsSafe(t *testing.T) {
	var l *Logger
	l.Debugf("a")
	l.Infof("b")
	l.Warnf("c")
	l.Errorf("d")
	l.SetLevel(LevelDebug)
	if l.With("x") != nil {
		t.Fatal("With on nil logger must stay nil")
	}
	if l.Enabled(LevelError) {
		t.Fatal("nil logger enables nothing")
	}
}

func TestParseLevel(t *testing.T) {
	cases := map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "warn": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "bogus": LevelInfo,
	}
	for in, want := range cases {
		if got := ParseLevel(in); got != want {
			t.Errorf("ParseLevel(%q) = %v, want %v", in, got, want)
		}
	}
}
