package obs

import (
	"fmt"
	"sync"
	"time"
)

// Stage identifies one hop of an invocation's path through the
// infrastructure: the gateway's inbound loop, the totally-ordered
// multicast, the replicas, and the gateway's outbound loop (paper
// figure 5).
type Stage uint8

// Trace span stages, in datapath order.
const (
	// StageGatewayAccept marks the arrival of the request's GIOP message
	// on the gateway's external TCP socket.
	StageGatewayAccept Stage = iota + 1
	// StageIIOPDecode marks the request header successfully decoded.
	StageIIOPDecode
	// StageMulticastSend marks the invocation handed to the
	// totally-ordered multicast.
	StageMulticastSend
	// StageDeliver marks the invocation's delivery in total order.
	StageDeliver
	// StageExecute marks a replica executing the operation.
	StageExecute
	// StageDupSuppressed marks a duplicate (invocation or response)
	// detected and suppressed instead of executed/delivered.
	StageDupSuppressed
	// StageReplyWrite marks the reply written back to the client socket;
	// it completes the trace.
	StageReplyWrite
)

// String returns the stage's span-event name as documented in
// docs/OBSERVABILITY.md.
func (s Stage) String() string {
	switch s {
	case StageGatewayAccept:
		return "gateway_accept"
	case StageIIOPDecode:
		return "iiop_decode"
	case StageMulticastSend:
		return "multicast_send"
	case StageDeliver:
		return "total_order_deliver"
	case StageExecute:
		return "replica_execute"
	case StageDupSuppressed:
		return "duplicate_suppressed"
	case StageReplyWrite:
		return "reply_write"
	default:
		return fmt.Sprintf("stage(%d)", uint8(s))
	}
}

// TraceKey identifies one traced operation. It is exactly the paper's
// operation identifier (T_A_inv, S_A_inv) — identical at every replica,
// which is what lets span events emitted on different nodes land on the
// same trace — plus the TCP client identifier a gateway tagged the
// invocation with.
type TraceKey struct {
	ClientID uint64
	ParentTS uint64
	ChildSeq uint32
}

// String renders the key as client/(parentTS,childSeq).
func (k TraceKey) String() string {
	return fmt.Sprintf("%d/(%d,%d)", k.ClientID, k.ParentTS, k.ChildSeq)
}

// SpanEvent is one recorded hop of a trace.
type SpanEvent struct {
	Stage Stage
	At    time.Time
	Note  string // e.g. the node the event fired on
}

// Trace is the recorded path of one operation.
type Trace struct {
	Key    TraceKey
	Start  time.Time
	Events []SpanEvent
	// Done is true once the reply was written to the client (or false
	// for a trace evicted while still in flight).
	Done bool
}

// Hop is one edge of a trace's per-hop latency breakdown.
type Hop struct {
	From, To Stage
	D        time.Duration
}

// Breakdown computes the per-hop latency of the trace: the elapsed time
// between the first occurrence of each stage, in datapath order. Stages
// that never fired (e.g. no duplicate was suppressed) are skipped.
func (t *Trace) Breakdown() []Hop {
	first := make(map[Stage]time.Time, len(t.Events))
	for _, e := range t.Events {
		if _, ok := first[e.Stage]; !ok {
			first[e.Stage] = e.At
		}
	}
	order := [...]Stage{StageGatewayAccept, StageIIOPDecode, StageMulticastSend,
		StageDeliver, StageExecute, StageDupSuppressed, StageReplyWrite}
	var hops []Hop
	var prevStage Stage
	var prevAt time.Time
	for _, s := range order {
		at, ok := first[s]
		if !ok {
			continue
		}
		if prevStage != 0 {
			hops = append(hops, Hop{From: prevStage, To: s, D: at.Sub(prevAt)})
		}
		prevStage, prevAt = s, at
	}
	return hops
}

// Total returns the elapsed time from the first to the last event.
func (t *Trace) Total() time.Duration {
	if len(t.Events) == 0 {
		return 0
	}
	last := t.Events[0].At
	for _, e := range t.Events {
		if e.At.After(last) {
			last = e.At
		}
	}
	return last.Sub(t.Start)
}

// Tracer records invocation traces into a bounded ring of recent
// completions. A nil *Tracer is the disabled tracer: every method is a
// no-op behind a single nil check, which is all the instrumented hot
// paths pay by default.
type Tracer struct {
	mu         sync.Mutex
	active     map[TraceKey]*Trace
	activeFIFO []TraceKey
	recent     []*Trace // ring, recent[next-1] is newest
	next       int
	filled     bool
	cap        int

	started   Counter
	completed Counter
	evicted   Counter
}

// NewTracer creates a tracer keeping the most recent capacity completed
// traces (capacity <= 0 means 256). At most 4*capacity traces may be in
// flight; beyond that the oldest in-flight trace is evicted to the ring
// marked incomplete, so abandoned requests surface instead of leaking.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 256
	}
	return &Tracer{
		active: make(map[TraceKey]*Trace),
		recent: make([]*Trace, capacity),
		cap:    capacity,
	}
}

// Event records a span event now. The first StageGatewayAccept (or
// StageMulticastSend, for invocations that never crossed a gateway)
// starts a trace; events for keys with no in-flight trace are dropped.
func (t *Tracer) Event(key TraceKey, stage Stage, note string) {
	if t == nil {
		return
	}
	t.record(key, stage, time.Now(), note)
}

// EventAt records a span event with an explicit timestamp, for callers
// that captured the instant before doing the work (e.g. the gateway
// noting a message's arrival before decoding it).
func (t *Tracer) EventAt(key TraceKey, stage Stage, at time.Time, note string) {
	if t == nil {
		return
	}
	t.record(key, stage, at, note)
}

func (t *Tracer) record(key TraceKey, stage Stage, at time.Time, note string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	tr, ok := t.active[key]
	if !ok {
		if stage != StageGatewayAccept && stage != StageMulticastSend {
			return // late event for a completed or evicted trace
		}
		tr = &Trace{Key: key, Start: at}
		t.active[key] = tr
		t.activeFIFO = append(t.activeFIFO, key)
		t.started.Inc()
		if len(t.activeFIFO) > 4*t.cap {
			old := t.activeFIFO[0]
			t.activeFIFO = t.activeFIFO[1:]
			if stale, live := t.active[old]; live {
				delete(t.active, old)
				t.evicted.Inc()
				t.pushRecent(stale)
			}
		}
	}
	tr.Events = append(tr.Events, SpanEvent{Stage: stage, At: at, Note: note})
	if stage == StageReplyWrite {
		tr.Done = true
		delete(t.active, key)
		t.completed.Inc()
		t.pushRecent(tr)
	}
}

// pushRecent stores a finished (or evicted) trace in the ring. Callers
// hold mu.
func (t *Tracer) pushRecent(tr *Trace) {
	t.recent[t.next] = tr
	t.next++
	if t.next == t.cap {
		t.next = 0
		t.filled = true
	}
}

// Recent returns copies of the retained traces, newest first.
func (t *Tracer) Recent() []*Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.next
	if t.filled {
		n = t.cap
	}
	out := make([]*Trace, 0, n)
	for i := 0; i < n; i++ {
		idx := t.next - 1 - i
		if idx < 0 {
			idx += t.cap
		}
		tr := t.recent[idx]
		if tr == nil {
			continue
		}
		cp := &Trace{Key: tr.Key, Start: tr.Start, Done: tr.Done,
			Events: append([]SpanEvent(nil), tr.Events...)}
		out = append(out, cp)
	}
	return out
}

// ActiveCount reports traces still in flight.
func (t *Tracer) ActiveCount() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.active)
}

// Register publishes the tracer's own bookkeeping counters on a
// registry.
func (t *Tracer) Register(r *Registry) {
	if t == nil || r == nil {
		return
	}
	r.CounterFunc("eternalgw_trace_started_total", "Traces started.", nil, t.started.Value)
	r.CounterFunc("eternalgw_trace_completed_total", "Traces completed by a reply write.", nil, t.completed.Value)
	r.CounterFunc("eternalgw_trace_evicted_total", "In-flight traces evicted before completion.", nil, t.evicted.Value)
	r.GaugeFunc("eternalgw_trace_active", "Traces currently in flight.", nil, func() float64 { return float64(t.ActiveCount()) })
}
