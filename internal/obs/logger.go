package obs

import (
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Level orders log severities.
type Level int32

// Log levels.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

// String returns the level's lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// ParseLevel maps a name to a level, defaulting to info.
func ParseLevel(s string) Level {
	switch s {
	case "debug":
		return LevelDebug
	case "warn", "warning":
		return LevelWarn
	case "error":
		return LevelError
	default:
		return LevelInfo
	}
}

// sink is the shared backend of a logger family: one writer, one mutex,
// one minimum level, however many component-tagged fronts.
type sink struct {
	mu  sync.Mutex
	w   io.Writer
	min atomic.Int32
}

// Logger is a small leveled logger. Component-tagged children share
// their parent's sink, so every line carries a consistent
// "component=..." prefix and a single level switch governs the family.
// A nil *Logger discards everything, which is the default for library
// components.
type Logger struct {
	s         *sink
	component string
}

// NewLogger creates a logger writing lines at or above min to w.
func NewLogger(w io.Writer, min Level) *Logger {
	s := &sink{w: w}
	s.min.Store(int32(min))
	return &Logger{s: s}
}

// With returns a child logger tagged with a component name. It shares
// the parent's writer and level.
func (l *Logger) With(component string) *Logger {
	if l == nil {
		return nil
	}
	return &Logger{s: l.s, component: component}
}

// SetLevel changes the minimum level for the whole logger family.
func (l *Logger) SetLevel(min Level) {
	if l == nil {
		return
	}
	l.s.min.Store(int32(min))
}

// Enabled reports whether lines at level would be written.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && int32(level) >= l.s.min.Load()
}

func (l *Logger) logf(level Level, format string, args ...any) {
	if !l.Enabled(level) {
		return
	}
	comp := l.component
	if comp == "" {
		comp = "-"
	}
	line := fmt.Sprintf("%s level=%s component=%s %s\n",
		time.Now().UTC().Format("2006-01-02T15:04:05.000Z"),
		level, comp, fmt.Sprintf(format, args...))
	l.s.mu.Lock()
	_, _ = io.WriteString(l.s.w, line)
	l.s.mu.Unlock()
}

// Debugf logs at debug level.
func (l *Logger) Debugf(format string, args ...any) { l.logf(LevelDebug, format, args...) }

// Infof logs at info level.
func (l *Logger) Infof(format string, args ...any) { l.logf(LevelInfo, format, args...) }

// Warnf logs at warn level.
func (l *Logger) Warnf(format string, args ...any) { l.logf(LevelWarn, format, args...) }

// Errorf logs at error level.
func (l *Logger) Errorf(format string, args ...any) { l.logf(LevelError, format, args...) }
