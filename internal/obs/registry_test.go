package obs

import (
	"strings"
	"testing"
	"time"

	"eternalgw/internal/metrics"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("requests_total", "Requests.", Labels{"gateway": "a"})
	c.Add(3)
	g := r.Gauge("open_conns", "Open connections.", nil)
	g.Set(2.5)
	r.CounterFunc("delivered_total", "Delivered.", Labels{"node": "p00"}, func() uint64 { return 7 })
	r.GaugeFunc("cache_entries", "Entries.", nil, func() float64 { return 42 })

	out := r.RenderPrometheus()
	for _, want := range []string{
		"# HELP requests_total Requests.",
		"# TYPE requests_total counter",
		`requests_total{gateway="a"} 3`,
		"# TYPE open_conns gauge",
		"open_conns 2.5",
		`delivered_total{node="p00"} 7`,
		"cache_entries 42",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryMultipleSeriesOneFamily(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "X.", Labels{"node": "a"}).Add(1)
	r.Counter("x_total", "X.", Labels{"node": "b"}).Add(2)
	out := r.RenderPrometheus()
	if strings.Count(out, "# TYPE x_total counter") != 1 {
		t.Fatalf("family header should appear once:\n%s", out)
	}
	if !strings.Contains(out, `x_total{node="a"} 1`) || !strings.Contains(out, `x_total{node="b"} 2`) {
		t.Fatalf("missing series:\n%s", out)
	}
}

func TestRegistryReregisterReplaces(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("y_total", "Y.", Labels{"gw": "g"}, func() uint64 { return 1 })
	r.CounterFunc("y_total", "Y.", Labels{"gw": "g"}, func() uint64 { return 9 })
	out := r.RenderPrometheus()
	if !strings.Contains(out, `y_total{gw="g"} 9`) {
		t.Fatalf("replacement value not rendered:\n%s", out)
	}
	if strings.Contains(out, `y_total{gw="g"} 1`) {
		t.Fatalf("stale series survived re-registration:\n%s", out)
	}
}

func TestRegistryHistogramSummary(t *testing.T) {
	r := NewRegistry()
	h := &metrics.Histogram{}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	r.Histogram("req_seconds", "Latency.", Labels{"gateway": "a"}, h)
	out := r.RenderPrometheus()
	for _, want := range []string{
		"# TYPE req_seconds summary",
		`req_seconds{gateway="a",quantile="0.5"} 0.05`,
		`req_seconds{gateway="a",quantile="0.99"} 0.099`,
		`req_seconds_count{gateway="a"} 100`,
		`req_seconds_sum{gateway="a"} 5.05`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "", Labels{"v": `a"b\c` + "\n"}).Inc()
	out := r.RenderPrometheus()
	if !strings.Contains(out, `esc_total{v="a\"b\\c\n"} 1`) {
		t.Fatalf("bad escaping:\n%s", out)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	c := r.Counter("n_total", "", nil)
	c.Inc()
	if c.Value() != 1 {
		t.Fatal("counter from nil registry must still count")
	}
	g := r.Gauge("n", "", nil)
	g.Set(1)
	r.CounterFunc("n2_total", "", nil, func() uint64 { return 0 })
	r.GaugeFunc("n3", "", nil, func() float64 { return 0 })
	r.Histogram("n4", "", nil, &metrics.Histogram{})
	if got := r.RenderPrometheus(); got != "" {
		t.Fatalf("nil registry rendered %q", got)
	}
	var nc *Counter
	nc.Inc() // must not panic
	var ng *Gauge
	ng.Set(3)
}
