package obs

import (
	"sync"
	"testing"
	"time"
)

func TestTracerLifecycleAndBreakdown(t *testing.T) {
	tr := NewTracer(8)
	key := TraceKey{ClientID: 42, ParentTS: 0, ChildSeq: 7}
	base := time.Now()
	tr.EventAt(key, StageGatewayAccept, base, "gw0")
	tr.EventAt(key, StageIIOPDecode, base.Add(1*time.Millisecond), "gw0")
	tr.EventAt(key, StageMulticastSend, base.Add(2*time.Millisecond), "gw0")
	tr.EventAt(key, StageDeliver, base.Add(3*time.Millisecond), "p00")
	tr.EventAt(key, StageDeliver, base.Add(4*time.Millisecond), "p01")
	tr.EventAt(key, StageExecute, base.Add(5*time.Millisecond), "p00")
	tr.EventAt(key, StageReplyWrite, base.Add(6*time.Millisecond), "gw0")

	if n := tr.ActiveCount(); n != 0 {
		t.Fatalf("trace should have completed; %d active", n)
	}
	recent := tr.Recent()
	if len(recent) != 1 {
		t.Fatalf("want 1 recent trace, got %d", len(recent))
	}
	got := recent[0]
	if !got.Done || got.Key != key {
		t.Fatalf("bad trace: %+v", got)
	}
	if got.Total() != 6*time.Millisecond {
		t.Fatalf("total = %v", got.Total())
	}
	hops := got.Breakdown()
	// accept->decode->multicast->deliver->execute->reply: 5 hops, and the
	// breakdown uses the FIRST deliver event.
	if len(hops) != 5 {
		t.Fatalf("want 5 hops, got %d: %+v", len(hops), hops)
	}
	if hops[2].To != StageDeliver || hops[2].D != time.Millisecond {
		t.Fatalf("deliver hop = %+v", hops[2])
	}
	if hops[4].From != StageExecute || hops[4].To != StageReplyWrite {
		t.Fatalf("last hop = %+v", hops[4])
	}
}

func TestTracerDropsEventsForUnknownKeys(t *testing.T) {
	tr := NewTracer(4)
	tr.Event(TraceKey{ClientID: 1}, StageExecute, "")
	tr.Event(TraceKey{ClientID: 1}, StageReplyWrite, "")
	if n := len(tr.Recent()); n != 0 {
		t.Fatalf("orphan events must not create traces; got %d", n)
	}
}

func TestTracerRingBound(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 10; i++ {
		key := TraceKey{ClientID: uint64(i)}
		tr.Event(key, StageGatewayAccept, "")
		tr.Event(key, StageReplyWrite, "")
	}
	recent := tr.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring should retain 4, got %d", len(recent))
	}
	// Newest first: client ids 9,8,7,6.
	for i, tr := range recent {
		if want := uint64(9 - i); tr.Key.ClientID != want {
			t.Fatalf("recent[%d].ClientID = %d, want %d", i, tr.Key.ClientID, want)
		}
	}
}

func TestTracerEvictsStuckTraces(t *testing.T) {
	tr := NewTracer(2) // in-flight bound = 8
	for i := 0; i < 9; i++ {
		tr.Event(TraceKey{ClientID: uint64(i)}, StageGatewayAccept, "")
	}
	if n := tr.ActiveCount(); n != 8 {
		t.Fatalf("active = %d, want 8", n)
	}
	recent := tr.Recent()
	if len(recent) != 1 || recent[0].Done {
		t.Fatalf("evicted trace should appear incomplete in ring: %+v", recent)
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	tr.Event(TraceKey{}, StageGatewayAccept, "")
	tr.EventAt(TraceKey{}, StageReplyWrite, time.Now(), "")
	if tr.Recent() != nil || tr.ActiveCount() != 0 {
		t.Fatal("nil tracer must report nothing")
	}
	tr.Register(NewRegistry())
}

func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(32)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := TraceKey{ClientID: uint64(w), ChildSeq: uint32(i)}
				tr.Event(key, StageGatewayAccept, "gw")
				tr.Event(key, StageDeliver, "p")
				tr.Event(key, StageReplyWrite, "gw")
			}
		}(w)
	}
	wg.Wait()
	if got := len(tr.Recent()); got != 32 {
		t.Fatalf("ring size = %d", got)
	}
}
