// Package obs is the observability subsystem of the fault tolerance
// infrastructure: a lock-cheap metrics registry rendered in Prometheus
// text format, an invocation tracer that follows each operation across
// the hops of the paper's figure 5 datapath, a small leveled logger, and
// an ops HTTP server exposing /healthz, /readyz, /metrics and /statusz.
//
// Everything in this package is nil-safe: a nil *Registry, *Tracer or
// *Logger is a valid no-op, so the instrumented components (gateway,
// replication mechanisms, totem, managers) pay at most a nil check on
// their hot paths when observability is disabled.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"eternalgw/internal/metrics"
)

func floatBits(v float64) uint64     { return math.Float64bits(v) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// Labels is a metric's label set. Values are escaped when rendering.
type Labels map[string]string

// Counter is a monotonically increasing metric. The zero value is ready
// to use, and a nil *Counter is a no-op, so components may keep counting
// whether or not a registry is attached.
type Counter struct {
	v atomic.Uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (zero for a nil counter).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. Like Counter it is nil-safe
// and lock-free (the float is stored as its IEEE-754 bits).
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(floatBits(v))
}

// Value returns the current value (zero for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return floatFromBits(g.bits.Load())
}

// series is one (label set, value source) member of a metric family.
type series struct {
	labels    string // rendered {k="v",...} or ""
	counter   *Counter
	gauge     *Gauge
	counterFn func() uint64
	gaugeFn   func() float64
	hist      *metrics.Histogram
}

// family is one named metric with its HELP/TYPE header and its series.
type family struct {
	name   string
	help   string
	typ    string // "counter", "gauge" or "summary"
	series []*series
	byKey  map[string]int // labels -> index in series
}

// Registry collects metrics for the /metrics endpoint. Registration is
// rare (startup) and rendering infrequent (scrapes), so a single mutex
// guards the directory; the counters and gauges themselves are atomics
// and never contend with the datapath. A nil *Registry accepts every
// registration as a no-op and still hands out usable counters/gauges.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

// register adds (or replaces, for an identical name+labels pair) one
// series. Replacement keeps restartable components (gateways, replicas)
// from accumulating dead series.
func (r *Registry) register(name, help, typ string, labels Labels, s *series) {
	if r == nil {
		return
	}
	s.labels = renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.byName[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byKey: make(map[string]int)}
		r.byName[name] = f
		r.families = append(r.families, f)
	}
	if i, dup := f.byKey[s.labels]; dup {
		f.series[i] = s
		return
	}
	f.byKey[s.labels] = len(f.series)
	f.series = append(f.series, s)
}

// Counter registers and returns an owned counter. With a nil registry
// the counter still works; it is simply never rendered.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.register(name, help, "counter", labels, &series{counter: c})
	return c
}

// Gauge registers and returns an owned gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.register(name, help, "gauge", labels, &series{gauge: g})
	return g
}

// CounterFunc registers a counter read from fn at render time. This is
// how components expose counters they already maintain as atomics: the
// datapath keeps its bare atomic add and the registry only reads on
// scrape.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() uint64) {
	r.register(name, help, "counter", labels, &series{counterFn: fn})
}

// GaugeFunc registers a gauge read from fn at render time.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, help, "gauge", labels, &series{gaugeFn: fn})
}

// Histogram registers an existing duration histogram, rendered as a
// Prometheus summary (quantiles in seconds, _sum, _count) from a single
// Snapshot per scrape.
func (r *Registry) Histogram(name, help string, labels Labels, h *metrics.Histogram) {
	r.register(name, help, "summary", labels, &series{hist: h})
}

// WritePrometheus renders every registered metric in the Prometheus text
// exposition format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	fams := make([]*family, len(r.families))
	copy(fams, r.families)
	snaps := make([][]*series, len(fams))
	for i, f := range fams {
		snaps[i] = make([]*series, len(f.series))
		copy(snaps[i], f.series)
	}
	r.mu.Unlock()

	var b strings.Builder
	for i, f := range fams {
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, f.help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range snaps[i] {
			writeSeries(&b, f.name, s)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderPrometheus returns the rendered exposition as a string.
func (r *Registry) RenderPrometheus() string {
	var b strings.Builder
	_ = r.WritePrometheus(&b)
	return b.String()
}

func writeSeries(b *strings.Builder, name string, s *series) {
	switch {
	case s.counter != nil:
		fmt.Fprintf(b, "%s%s %d\n", name, s.labels, s.counter.Value())
	case s.counterFn != nil:
		fmt.Fprintf(b, "%s%s %d\n", name, s.labels, s.counterFn())
	case s.gauge != nil:
		fmt.Fprintf(b, "%s%s %s\n", name, s.labels, formatFloat(s.gauge.Value()))
	case s.gaugeFn != nil:
		fmt.Fprintf(b, "%s%s %s\n", name, s.labels, formatFloat(s.gaugeFn()))
	case s.hist != nil:
		snap := s.hist.Snapshot()
		for _, q := range [...]struct {
			q string
			d time.Duration
		}{{"0.5", snap.P50}, {"0.9", snap.P90}, {"0.99", snap.P99}} {
			fmt.Fprintf(b, "%s%s %s\n", name, mergeLabels(s.labels, `quantile="`+q.q+`"`), formatFloat(q.d.Seconds()))
		}
		fmt.Fprintf(b, "%s_sum%s %s\n", name, s.labels, formatFloat(snap.Sum.Seconds()))
		fmt.Fprintf(b, "%s_count%s %d\n", name, s.labels, snap.Count)
	}
}

// mergeLabels appends extra (already-rendered k="v" text) to a rendered
// label block.
func mergeLabels(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, k, escapeLabelValue(labels[k]))
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

func formatFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%.9f", v), "0"), ".")
}
