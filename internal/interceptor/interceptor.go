// Package interceptor models the Eternal Interceptor (paper sections
// 2.1 and 3.1): the component that, in the original system, attaches to
// every CORBA object via library interpositioning — without the ORB's or
// the application's knowledge — and modifies its behaviour.
//
// Go programs cannot interpose on dynamic-library symbols, so this
// package reproduces the two *effects* the paper obtains from
// interpositioning (see DESIGN.md section 2):
//
//   - Address rewriting: when a replicated server publishes its IOR, the
//     {host, port} it contains are replaced with the gateway's, so
//     external clients implicitly connect to the gateway believing it is
//     the server. GatewayAddr plugs into the ORB exactly where the
//     getsockname()/sysinfo() interposition would take effect, and
//     StitchIOR builds the multi-profile IORs of section 3.5.
//
//   - Connection diversion: replicated clients inside the domain never
//     use the TCP/IP addressing in an IOR; their connection establishment
//     is diverted to the local Replication Mechanisms. Diverter performs
//     that rerouting: it accepts an IOR, ignores its transport endpoint,
//     and binds the client to the object group named by the object key.
package interceptor

import (
	"fmt"
	"sync"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/giop"
	"eternalgw/internal/ior"
	"eternalgw/internal/orb"
	"eternalgw/internal/replication"
)

// GatewayAddr is an orb.Advertiser that substitutes the gateway's
// endpoint for the server's when IORs are published. The gateway host
// and port are dedicated choices supplied at system configuration time
// (paper section 3.1).
type GatewayAddr struct {
	Host string
	Port uint16
}

// AdvertisedAddr implements orb.Advertiser: the server's real address is
// discarded and the gateway's returned.
func (a GatewayAddr) AdvertisedAddr(string, uint16) (string, uint16) {
	return a.Host, a.Port
}

var _ orb.Advertiser = GatewayAddr{}

// StitchIOR builds the multi-profile IOR of paper section 3.5: the
// addressing information of each redundant gateway stitched into a
// single reference, in failover order.
func StitchIOR(typeID string, objectKey []byte, gateways ...GatewayAddr) ior.Ref {
	profiles := make([]ior.IIOPProfile, 0, len(gateways))
	for _, g := range gateways {
		profiles = append(profiles, ior.IIOPProfile{
			Host:      g.Host,
			Port:      g.Port,
			ObjectKey: objectKey,
		})
	}
	return ior.NewMulti(typeID, profiles...)
}

// Diverter reroutes in-domain connection establishment to the local
// Replication Mechanisms.
type Diverter struct {
	rm *replication.Mechanisms
	// src is the group whose member this client is; responses are
	// addressed to it.
	src replication.GroupID

	// mu guards the request counter, shared by every connection this
	// diverter establishes so operation identifiers stay unique per
	// client group. The counter is deterministic: replicas of a
	// replicated client issuing the same call sequence produce the same
	// identifiers, which is what lets the servers deduplicate their
	// invocations. Use one diverter per client group per node.
	mu     sync.Mutex
	nextID uint32
}

// NewDiverter builds a diverter for a client that is a member of the
// src group on this node.
func NewDiverter(rm *replication.Mechanisms, src replication.GroupID) *Diverter {
	return &Diverter{rm: rm, src: src}
}

// Connect is the diverted socket-establishment routine: the {host, port}
// in the IOR are ignored, and the connection is bound to the object
// group identified by the reference's object key.
func (d *Diverter) Connect(ref ior.Ref) (*Connection, error) {
	p, err := ref.PrimaryProfile()
	if err != nil {
		return nil, err
	}
	return d.ConnectKey(p.ObjectKey)
}

// ConnectKey binds directly to an object key.
func (d *Diverter) ConnectKey(objectKey []byte) (*Connection, error) {
	group, ok := d.rm.GroupByKey(objectKey)
	if !ok {
		return nil, fmt.Errorf("interceptor: object key %q: %w", objectKey, replication.ErrNoSuchGroup)
	}
	return &Connection{
		d:         d,
		rm:        d.rm,
		src:       d.src,
		dst:       group,
		objectKey: append([]byte(nil), objectKey...),
	}, nil
}

// Connection is a diverted in-domain client connection: invocations
// travel through the fault tolerance infrastructure as totally-ordered
// multicasts rather than over TCP. The request counter is deterministic,
// so every replica of a replicated client produces identical operation
// identifiers for corresponding requests.
type Connection struct {
	d         *Diverter
	rm        *replication.Mechanisms
	src       replication.GroupID
	dst       replication.GroupID
	objectKey []byte
}

// Call invokes op on the connected object group and decodes the reply.
func (c *Connection) Call(op string, args []byte, timeout time.Duration) (*cdr.Reader, error) {
	c.d.mu.Lock()
	c.d.nextID++
	id := c.d.nextID
	c.d.mu.Unlock()
	rep, err := c.rm.Invoke(c.src, replication.UnusedClientID, c.dst,
		replication.OperationID{ParentTS: 0, ChildSeq: id},
		giop.Request{
			RequestID:        id,
			ResponseExpected: true,
			ObjectKey:        c.objectKey,
			Operation:        op,
			Args:             args,
		}, timeout)
	if err != nil {
		return nil, err
	}
	return orb.ReplyReader(rep)
}
