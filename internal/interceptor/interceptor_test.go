package interceptor_test

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/domain"
	"eternalgw/internal/ftmgmt"
	"eternalgw/internal/interceptor"
	"eternalgw/internal/orb"
	"eternalgw/internal/replication"
	"eternalgw/internal/totem"
)

func TestGatewayAddrRewritesAdvertisement(t *testing.T) {
	a := interceptor.GatewayAddr{Host: "gw.example", Port: 9021}
	h, p := a.AdvertisedAddr("server.internal", 34567)
	if h != "gw.example" || p != 9021 {
		t.Fatalf("advertised = %s:%d", h, p)
	}
}

func TestGatewayAddrPlugsIntoORB(t *testing.T) {
	// The interceptor hook replaces the server's address when the ORB
	// publishes an IOR (paper section 3.1): the published profile never
	// names the real server endpoint.
	s, err := orb.NewServer("127.0.0.1:0", orb.WithAdvertiser(interceptor.GatewayAddr{Host: "gw", Port: 1}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	ref := s.IOR("IDL:X:1.0", []byte("k"))
	p, err := ref.PrimaryProfile()
	if err != nil {
		t.Fatal(err)
	}
	if p.Host != "gw" || p.Port != 1 {
		t.Fatalf("profile = %+v", p)
	}
	if p.Addr() == s.Addr() {
		t.Fatal("published IOR leaked the server's real address")
	}
}

func TestStitchIORProducesOrderedProfiles(t *testing.T) {
	ref := interceptor.StitchIOR("IDL:X:1.0", []byte("key"),
		interceptor.GatewayAddr{Host: "gw1", Port: 1},
		interceptor.GatewayAddr{Host: "gw2", Port: 2},
	)
	ps, err := ref.IIOPProfiles()
	if err != nil || len(ps) != 2 {
		t.Fatalf("profiles = %v, %v", ps, err)
	}
	if ps[0].Host != "gw1" || ps[1].Host != "gw2" {
		t.Fatalf("order = %s, %s", ps[0].Host, ps[1].Host)
	}
	for _, p := range ps {
		if string(p.ObjectKey) != "key" {
			t.Fatalf("object key = %q", p.ObjectKey)
		}
	}
}

// echoApp echoes its argument.
type echoApp struct{ mu sync.Mutex }

func (a *echoApp) Invoke(op string, args *cdr.Reader, reply *cdr.Writer) error {
	if op != "echo" {
		return errors.New("echoApp: unknown op")
	}
	reply.WriteOctetSeq(args.ReadOctetSeq())
	return args.Err()
}
func (a *echoApp) State() ([]byte, error) { return nil, nil }
func (a *echoApp) SetState([]byte) error  { return nil }

func TestDiverterRoutesThroughInfrastructure(t *testing.T) {
	// An in-domain client's connection establishment is diverted: the
	// TCP endpoint in the IOR is ignored and invocations travel through
	// the replication mechanisms.
	d, err := domain.New(domain.Config{
		Name:  "dv",
		Nodes: 3,
		Totem: totem.Config{
			IdleHold:        100 * time.Microsecond,
			TokenRetransmit: 10 * time.Millisecond,
			FailTimeout:     80 * time.Millisecond,
			GatherTimeout:   20 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()

	const grp replication.GroupID = 50
	key := []byte("svc/echo")
	err = d.Manager().CreateReplicatedObject(grp, ftmgmt.Properties{
		Style:           replication.Active,
		InitialReplicas: 2,
		MinReplicas:     1,
		ObjectKey:       key,
	}, func() (replication.Application, error) { return &echoApp{}, nil })
	if err != nil {
		t.Fatal(err)
	}

	// The client-side group (a client-only membership, as a replicated
	// client's mechanisms would hold).
	const clientGrp replication.GroupID = 51
	rm := d.Node(2).RM
	if err := rm.CreateGroup(clientGrp, replication.Active, nil); err != nil {
		t.Fatal(err)
	}
	if err := rm.WaitForGroup(clientGrp, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := rm.JoinGroup(clientGrp, nil); err != nil {
		t.Fatal(err)
	}
	if err := rm.WaitSynced(clientGrp, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// An IOR whose TCP endpoint is somewhere unreachable: the diverter
	// must never use it.
	ref := interceptor.StitchIOR("IDL:X:1.0", key, interceptor.GatewayAddr{Host: "203.0.113.1", Port: 1})
	div := interceptor.NewDiverter(rm, clientGrp)
	conn, err := div.Connect(ref)
	if err != nil {
		t.Fatal(err)
	}
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteOctetSeq([]byte("ping"))
	r, err := conn.Call("echo", w.Bytes(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReadOctetSeq(); !bytes.Equal(got, []byte("ping")) {
		t.Fatalf("echo = %q", got)
	}
}

func TestDiverterUnknownKey(t *testing.T) {
	d, err := domain.New(domain.Config{
		Name:  "dv2",
		Nodes: 1,
		Totem: totem.Config{
			IdleHold:        100 * time.Microsecond,
			TokenRetransmit: 10 * time.Millisecond,
			FailTimeout:     80 * time.Millisecond,
			GatherTimeout:   20 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	div := interceptor.NewDiverter(d.Node(0).RM, domain.DefaultGatewayGroup)
	if _, err := div.ConnectKey([]byte("nope")); !errors.Is(err, replication.ErrNoSuchGroup) {
		t.Fatalf("err = %v, want ErrNoSuchGroup", err)
	}
}
