package metrics

import (
	"testing"
	"testing/quick"
	"time"
)

// TestQuickPercentileMonotone property: percentiles are monotone in q
// and bounded by min/max.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(samples []uint16) bool {
		if len(samples) == 0 {
			return true
		}
		var h Histogram
		for _, s := range samples {
			h.Record(time.Duration(s))
		}
		prev := time.Duration(-1)
		for _, q := range []float64{1, 25, 50, 75, 90, 99, 100} {
			p := h.Percentile(q)
			if p < prev || p < h.Min() || p > h.Max() {
				return false
			}
			prev = p
		}
		return h.Mean() >= h.Min() && h.Mean() <= h.Max()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickCountMatches property: Count equals the number of samples.
func TestQuickCountMatches(t *testing.T) {
	f := func(n uint8) bool {
		var h Histogram
		for i := 0; i < int(n); i++ {
			h.Record(time.Duration(i))
		}
		return h.Count() == int(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
