// Package metrics provides the small measurement kit used by the
// experiment harness: latency histograms with percentiles and throughput
// windows. It exists so every experiment reports its series the same way
// (see EXPERIMENTS.md).
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Histogram collects duration samples. The zero value is ready to use
// and retains every sample (what the experiment harness wants). A
// bounded histogram (NewBounded) retains only the most recent samples,
// so a long-running server can keep one on a hot path without growing
// without bound.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
	limit   int // 0 = unbounded
	next    int // ring cursor when bounded
	scratch []time.Duration
}

// NewBounded creates a histogram retaining the most recent limit
// samples (a sliding window); limit <= 0 means unbounded.
func NewBounded(limit int) *Histogram {
	if limit < 0 {
		limit = 0
	}
	return &Histogram{limit: limit}
}

// Record adds one sample, displacing the oldest once a bounded
// histogram's window is full.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.limit > 0 && len(h.samples) == h.limit {
		h.samples[h.next] = d
		h.next = (h.next + 1) % h.limit
	} else {
		h.samples = append(h.samples, d)
	}
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// sortedLocked returns the samples in ascending order. Callers hold mu.
// Unbounded histograms sort in place; bounded ones sort a scratch copy
// so the ring's insertion order survives.
func (h *Histogram) sortedLocked() []time.Duration {
	if h.limit == 0 {
		if !h.sorted {
			sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
			h.sorted = true
		}
		return h.samples
	}
	if !h.sorted {
		h.scratch = append(h.scratch[:0], h.samples...)
		sort.Slice(h.scratch, func(i, j int) bool { return h.scratch[i] < h.scratch[j] })
		h.sorted = true
	}
	return h.scratch
}

// Percentile returns the q-th percentile (0 < q <= 100) by
// nearest-rank; zero if empty.
func (h *Histogram) Percentile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	s := h.sortedLocked()
	return s[rankFor(q, len(s))]
}

// Mean returns the average sample; zero if empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / time.Duration(len(h.samples))
}

// Min returns the smallest sample; zero if empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	return h.sortedLocked()[0]
}

// Max returns the largest sample; zero if empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	s := h.sortedLocked()
	return s[len(s)-1]
}

// Snapshot is a single-lock summary of a histogram: every quantity a
// renderer needs, captured in one mutex acquisition so exporters (the
// obs registry's /metrics endpoint) do not take the histogram lock once
// per percentile.
type Snapshot struct {
	Count int
	Sum   time.Duration
	Mean  time.Duration
	Min   time.Duration
	Max   time.Duration
	P50   time.Duration
	P90   time.Duration
	P99   time.Duration
}

// Snapshot captures count, sum, mean, min, max and the fixed percentiles
// under one lock acquisition. An empty histogram yields the zero value.
func (h *Histogram) Snapshot() Snapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.samples)
	if n == 0 {
		return Snapshot{}
	}
	sorted := h.sortedLocked()
	var sum time.Duration
	for _, s := range sorted {
		sum += s
	}
	return Snapshot{
		Count: n,
		Sum:   sum,
		Mean:  sum / time.Duration(n),
		Min:   sorted[0],
		Max:   sorted[n-1],
		P50:   sorted[rankFor(50, n)],
		P90:   sorted[rankFor(90, n)],
		P99:   sorted[rankFor(99, n)],
	}
}

// rankFor converts a percentile to a nearest-rank index into n sorted
// samples.
func rankFor(q float64, n int) int {
	rank := int(q/100*float64(n)+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= n {
		rank = n - 1
	}
	return rank
}

// Summary renders "mean / p50 / p99 / max" for experiment tables.
func (h *Histogram) Summary() string {
	s := h.Snapshot()
	return fmt.Sprintf("mean=%v p50=%v p99=%v max=%v",
		s.Mean.Round(time.Microsecond),
		s.P50.Round(time.Microsecond),
		s.P99.Round(time.Microsecond),
		s.Max.Round(time.Microsecond))
}

// Throughput measures operations per second over a wall-clock window.
type Throughput struct {
	start time.Time
	ops   int
}

// StartThroughput begins a measurement window.
func StartThroughput() *Throughput {
	return &Throughput{start: time.Now()}
}

// Add counts n completed operations.
func (t *Throughput) Add(n int) { t.ops += n }

// PerSecond reports the rate since the window began.
func (t *Throughput) PerSecond() float64 {
	elapsed := time.Since(t.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(t.ops) / elapsed
}
