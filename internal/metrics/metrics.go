// Package metrics provides the small measurement kit used by the
// experiment harness: latency histograms with percentiles and throughput
// windows. It exists so every experiment reports its series the same way
// (see EXPERIMENTS.md).
package metrics

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Histogram collects duration samples. The zero value is ready to use.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	sorted  bool
}

// Record adds one sample.
func (h *Histogram) Record(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = append(h.samples, d)
	h.sorted = false
}

// Count returns the number of samples.
func (h *Histogram) Count() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.samples)
}

// sortLocked sorts the samples. Callers hold mu.
func (h *Histogram) sortLocked() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Percentile returns the q-th percentile (0 < q <= 100) by
// nearest-rank; zero if empty.
func (h *Histogram) Percentile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	rank := int(q/100*float64(len(h.samples))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(h.samples) {
		rank = len(h.samples) - 1
	}
	return h.samples[rank]
}

// Mean returns the average sample; zero if empty.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	var sum time.Duration
	for _, s := range h.samples {
		sum += s
	}
	return sum / time.Duration(len(h.samples))
}

// Min returns the smallest sample; zero if empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	return h.samples[0]
}

// Max returns the largest sample; zero if empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	h.sortLocked()
	return h.samples[len(h.samples)-1]
}

// Summary renders "mean / p50 / p99 / max" for experiment tables.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("mean=%v p50=%v p99=%v max=%v",
		h.Mean().Round(time.Microsecond),
		h.Percentile(50).Round(time.Microsecond),
		h.Percentile(99).Round(time.Microsecond),
		h.Max().Round(time.Microsecond))
}

// Throughput measures operations per second over a wall-clock window.
type Throughput struct {
	start time.Time
	ops   int
}

// StartThroughput begins a measurement window.
func StartThroughput() *Throughput {
	return &Throughput{start: time.Now()}
}

// Add counts n completed operations.
func (t *Throughput) Add(n int) { t.ops += n }

// PerSecond reports the rate since the window began.
func (t *Throughput) PerSecond() float64 {
	elapsed := time.Since(t.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(t.ops) / elapsed
}
