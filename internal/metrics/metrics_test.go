package metrics

import (
	"strings"
	"testing"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.Percentile(50) != 0 {
		t.Fatal("empty histogram not all-zero")
	}
}

func TestHistogramStatistics(t *testing.T) {
	var h Histogram
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got := h.Min(); got != time.Millisecond {
		t.Fatalf("min = %v", got)
	}
	if got := h.Max(); got != 100*time.Millisecond {
		t.Fatalf("max = %v", got)
	}
	if got := h.Mean(); got != 50500*time.Microsecond {
		t.Fatalf("mean = %v", got)
	}
	if got := h.Percentile(50); got != 50*time.Millisecond {
		t.Fatalf("p50 = %v", got)
	}
	if got := h.Percentile(99); got != 99*time.Millisecond {
		t.Fatalf("p99 = %v", got)
	}
	if got := h.Percentile(100); got != 100*time.Millisecond {
		t.Fatalf("p100 = %v", got)
	}
}

func TestHistogramInterleavedRecordAndQuery(t *testing.T) {
	var h Histogram
	h.Record(3 * time.Millisecond)
	if h.Max() != 3*time.Millisecond {
		t.Fatal("max wrong")
	}
	h.Record(time.Millisecond) // must re-sort after new samples
	if h.Min() != time.Millisecond {
		t.Fatal("min wrong after second record")
	}
}

func TestHistogramSnapshot(t *testing.T) {
	var h Histogram
	if s := h.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("empty snapshot = %+v", s)
	}
	for i := 1; i <= 100; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	want := Snapshot{
		Count: 100,
		Sum:   5050 * time.Millisecond,
		Mean:  50500 * time.Microsecond,
		Min:   time.Millisecond,
		Max:   100 * time.Millisecond,
		P50:   50 * time.Millisecond,
		P90:   90 * time.Millisecond,
		P99:   99 * time.Millisecond,
	}
	if s != want {
		t.Fatalf("snapshot = %+v, want %+v", s, want)
	}
	// Snapshot must agree with the per-quantity accessors.
	if s.P50 != h.Percentile(50) || s.Mean != h.Mean() || s.Max != h.Max() {
		t.Fatal("snapshot disagrees with accessors")
	}
}

func TestSummaryFormat(t *testing.T) {
	var h Histogram
	h.Record(time.Millisecond)
	s := h.Summary()
	for _, part := range []string{"mean=", "p50=", "p99=", "max="} {
		if !strings.Contains(s, part) {
			t.Fatalf("summary %q missing %q", s, part)
		}
	}
}

func TestBoundedHistogramSlidesWindow(t *testing.T) {
	h := NewBounded(3)
	for i := 1; i <= 5; i++ {
		h.Record(time.Duration(i) * time.Millisecond)
	}
	// Window holds the 3 most recent samples: 3ms, 4ms, 5ms.
	if h.Count() != 3 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 3*time.Millisecond || h.Max() != 5*time.Millisecond {
		t.Fatalf("window = [%v, %v]", h.Min(), h.Max())
	}
	// Recording after a query must displace the oldest, not a sorted slot.
	h.Record(10 * time.Millisecond) // displaces 3ms
	if h.Min() != 4*time.Millisecond || h.Max() != 10*time.Millisecond {
		t.Fatalf("window after displace = [%v, %v]", h.Min(), h.Max())
	}
}

func TestThroughput(t *testing.T) {
	tp := StartThroughput()
	tp.Add(10)
	time.Sleep(10 * time.Millisecond)
	rate := tp.PerSecond()
	if rate <= 0 || rate > 10_000 {
		t.Fatalf("rate = %f", rate)
	}
}
