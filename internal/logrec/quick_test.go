package logrec

import (
	"testing"
	"testing/quick"
)

// TestQuickCheckpointSubsumption property: after a checkpoint at seq S,
// recovery returns only entries with Seq > S, in their original order.
func TestQuickCheckpointSubsumption(t *testing.T) {
	f := func(seqs []uint16, cut uint16) bool {
		l := NewLog()
		for i, s := range seqs {
			l.Append(1, Entry{Seq: uint64(s), Data: []byte{byte(i)}})
		}
		l.Checkpoint(1, Checkpoint{Seq: uint64(cut), State: []byte("s")})
		_, entries, err := l.Recover(1)
		if err != nil {
			return false
		}
		// Every surviving entry is beyond the cut...
		for _, e := range entries {
			if e.Seq <= uint64(cut) {
				return false
			}
		}
		// ...and exactly the expected number survived.
		want := 0
		for _, s := range seqs {
			if uint64(s) > uint64(cut) {
				want++
			}
		}
		return len(entries) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
