// Package logrec implements the Eternal Logging-Recovery Mechanisms: a
// message log and checkpoint store that, together with the Replication
// Mechanisms, provides recovery of passively replicated objects and state
// transfer to new and recovering replicas (paper section 2.2).
//
// A Log records, per object group, the most recent checkpoint of the
// application state and the totally-ordered invocations executed since
// that checkpoint. Recovery loads the checkpoint and replays the logged
// invocations, reconstructing exactly the primary's state because the
// invocation stream is totally ordered and the application deterministic.
package logrec

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNoCheckpoint reports recovery from a group with no checkpoint.
var ErrNoCheckpoint = errors.New("logrec: no checkpoint recorded")

// Checkpoint is a captured application state together with the position
// in the total order it reflects.
type Checkpoint struct {
	// Seq is the Totem sequence number of the last invocation folded
	// into State.
	Seq uint64
	// OpCount counts operations executed up to the checkpoint.
	OpCount uint64
	// State is the application state blob.
	State []byte
}

// Entry is one logged invocation.
type Entry struct {
	// Seq is the Totem sequence number the invocation was delivered at.
	Seq uint64
	// Data is the encoded invocation (an encapsulated IIOP request).
	Data []byte
}

// Log is an in-memory per-group checkpoint and invocation log. It is
// safe for concurrent use. The process-local log models the per-
// processor "Log" boxes of figure 2; durability across process crashes
// is out of scope because a recovering replica re-fetches state from the
// surviving replicas rather than from its own disk.
type Log struct {
	mu     sync.Mutex
	groups map[uint32]*groupLog
}

type groupLog struct {
	checkpoint *Checkpoint
	entries    []Entry
}

// NewLog returns an empty log.
func NewLog() *Log {
	return &Log{groups: make(map[uint32]*groupLog)}
}

func (l *Log) group(g uint32) *groupLog {
	gl, ok := l.groups[g]
	if !ok {
		gl = &groupLog{}
		l.groups[g] = gl
	}
	return gl
}

// Checkpoint replaces group g's checkpoint and truncates the invocation
// log entries that the checkpoint subsumes (those with Seq <= cp.Seq).
func (l *Log) Checkpoint(g uint32, cp Checkpoint) {
	l.mu.Lock()
	defer l.mu.Unlock()
	gl := l.group(g)
	cpCopy := cp
	cpCopy.State = append([]byte(nil), cp.State...)
	gl.checkpoint = &cpCopy
	kept := gl.entries[:0]
	for _, e := range gl.entries {
		if e.Seq > cp.Seq {
			kept = append(kept, e)
		}
	}
	gl.entries = kept
}

// Append records one invocation for group g, copying e.Data so the
// caller's buffer may be reused.
func (l *Log) Append(g uint32, e Entry) {
	e.Data = append([]byte(nil), e.Data...)
	l.AppendOwned(g, e)
}

// AppendOwned records one invocation for group g, taking ownership of
// e.Data: the caller must not reuse or mutate the slice afterwards. The
// replication datapath uses it to log a copy it already made, avoiding
// Append's second copy.
func (l *Log) AppendOwned(g uint32, e Entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	gl := l.group(g)
	gl.entries = append(gl.entries, e)
}

// Recover returns group g's checkpoint and the invocations logged after
// it, in total order.
func (l *Log) Recover(g uint32) (Checkpoint, []Entry, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	gl, ok := l.groups[g]
	if !ok || gl.checkpoint == nil {
		return Checkpoint{}, nil, fmt.Errorf("group %d: %w", g, ErrNoCheckpoint)
	}
	cp := *gl.checkpoint
	cp.State = append([]byte(nil), gl.checkpoint.State...)
	entries := make([]Entry, len(gl.entries))
	copy(entries, gl.entries)
	return cp, entries, nil
}

// EntryCount reports the number of logged invocations for group g.
func (l *Log) EntryCount(g uint32) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	gl, ok := l.groups[g]
	if !ok {
		return 0
	}
	return len(gl.entries)
}

// HasCheckpoint reports whether group g has a checkpoint.
func (l *Log) HasCheckpoint(g uint32) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	gl, ok := l.groups[g]
	return ok && gl.checkpoint != nil
}

// Drop forgets everything recorded for group g.
func (l *Log) Drop(g uint32) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.groups, g)
}
