package logrec

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func TestRecoverWithoutCheckpoint(t *testing.T) {
	l := NewLog()
	if _, _, err := l.Recover(1); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
	l.Append(1, Entry{Seq: 5, Data: []byte("op")})
	if _, _, err := l.Recover(1); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("entries without checkpoint: err = %v", err)
	}
}

func TestCheckpointAndReplay(t *testing.T) {
	l := NewLog()
	l.Checkpoint(7, Checkpoint{Seq: 10, OpCount: 3, State: []byte("s10")})
	l.Append(7, Entry{Seq: 11, Data: []byte("op11")})
	l.Append(7, Entry{Seq: 12, Data: []byte("op12")})

	cp, entries, err := l.Recover(7)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Seq != 10 || cp.OpCount != 3 || !bytes.Equal(cp.State, []byte("s10")) {
		t.Fatalf("checkpoint = %+v", cp)
	}
	if len(entries) != 2 || entries[0].Seq != 11 || entries[1].Seq != 12 {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestCheckpointTruncatesSubsumedEntries(t *testing.T) {
	l := NewLog()
	l.Checkpoint(1, Checkpoint{Seq: 0, State: []byte("s0")})
	for seq := uint64(1); seq <= 5; seq++ {
		l.Append(1, Entry{Seq: seq, Data: []byte{byte(seq)}})
	}
	if got := l.EntryCount(1); got != 5 {
		t.Fatalf("entries = %d", got)
	}
	l.Checkpoint(1, Checkpoint{Seq: 3, State: []byte("s3")})
	_, entries, err := l.Recover(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Seq != 4 || entries[1].Seq != 5 {
		t.Fatalf("entries after truncation = %+v", entries)
	}
}

func TestLogIsolatesGroups(t *testing.T) {
	l := NewLog()
	l.Checkpoint(1, Checkpoint{Seq: 1, State: []byte("a")})
	l.Checkpoint(2, Checkpoint{Seq: 2, State: []byte("b")})
	l.Append(1, Entry{Seq: 3, Data: []byte("x")})

	if l.EntryCount(2) != 0 {
		t.Fatal("group 2 contaminated")
	}
	cp, _, err := l.Recover(2)
	if err != nil || !bytes.Equal(cp.State, []byte("b")) {
		t.Fatalf("group 2 checkpoint = %+v, %v", cp, err)
	}
}

func TestRecoverReturnsCopies(t *testing.T) {
	l := NewLog()
	state := []byte("mutable")
	l.Checkpoint(1, Checkpoint{Seq: 1, State: state})
	state[0] = 'X' // caller mutation must not affect the stored copy

	cp, _, err := l.Recover(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cp.State, []byte("mutable")) {
		t.Fatalf("stored state corrupted: %q", cp.State)
	}
	cp.State[0] = 'Y' // and mutating the recovered copy must not either
	cp2, _, _ := l.Recover(1)
	if !bytes.Equal(cp2.State, []byte("mutable")) {
		t.Fatalf("second recovery corrupted: %q", cp2.State)
	}
}

func TestDrop(t *testing.T) {
	l := NewLog()
	l.Checkpoint(1, Checkpoint{Seq: 1, State: []byte("a")})
	l.Drop(1)
	if l.HasCheckpoint(1) {
		t.Fatal("checkpoint survived drop")
	}
}

// Recovery must hand back the checkpoint followed by only the
// invocations delivered after it, still in total order — entries the
// checkpoint subsumes never reappear, even when appends and checkpoints
// interleave.
func TestRecoverOrdering(t *testing.T) {
	l := NewLog()
	l.Checkpoint(9, Checkpoint{Seq: 0, State: []byte("s0")})
	for seq := uint64(1); seq <= 10; seq++ {
		l.Append(9, Entry{Seq: seq, Data: []byte{byte(seq)}})
		if seq == 6 {
			l.Checkpoint(9, Checkpoint{Seq: 6, OpCount: 6, State: []byte("s6")})
		}
	}
	cp, entries, err := l.Recover(9)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Seq != 6 || !bytes.Equal(cp.State, []byte("s6")) {
		t.Fatalf("checkpoint = %+v, want the seq-6 state", cp)
	}
	if len(entries) != 4 {
		t.Fatalf("recovered %d entries, want the 4 after seq 6: %+v", len(entries), entries)
	}
	for i, e := range entries {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("entry %d has seq %d, want %d (out of order or subsumed)", i, e.Seq, want)
		}
		if e.Seq <= cp.Seq {
			t.Fatalf("entry %d (seq %d) predates the checkpoint", i, e.Seq)
		}
	}
}

// A checkpoint with no trailing invocations is a complete recovery
// image on its own: Recover succeeds with zero entries to replay.
func TestRecoverCheckpointZeroEntries(t *testing.T) {
	l := NewLog()
	l.Checkpoint(3, Checkpoint{Seq: 42, OpCount: 42, State: []byte("quiesced")})
	cp, entries, err := l.Recover(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Fatalf("entries = %+v, want none", entries)
	}
	if cp.Seq != 42 || cp.OpCount != 42 || !bytes.Equal(cp.State, []byte("quiesced")) {
		t.Fatalf("checkpoint = %+v", cp)
	}
	// Appends after the fact extend the image without disturbing it.
	l.Append(3, Entry{Seq: 43, Data: []byte("op")})
	if _, entries, _ = l.Recover(3); len(entries) != 1 || entries[0].Seq != 43 {
		t.Fatalf("entries after late append = %+v", entries)
	}
}

// Drop racing concurrent Appends must stay internally consistent: after
// both sides settle, the group either vanished (drop won last) or holds
// exactly the entries appended after the drop — run with -race.
func TestDropConcurrentAppend(t *testing.T) {
	l := NewLog()
	const appends = 200
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for seq := uint64(1); seq <= appends; seq++ {
			l.Append(5, Entry{Seq: seq, Data: []byte{byte(seq)}})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			l.Drop(5)
		}
	}()
	wg.Wait()
	if n := l.EntryCount(5); n > appends {
		t.Fatalf("entry count %d exceeds %d appends", n, appends)
	}
	// The group is usable again after the race: a fresh checkpoint and
	// append recover cleanly.
	l.Drop(5)
	l.Checkpoint(5, Checkpoint{Seq: 100, State: []byte("fresh")})
	l.Append(5, Entry{Seq: 101, Data: []byte("op")})
	cp, entries, err := l.Recover(5)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Seq != 100 || len(entries) != 1 || entries[0].Seq != 101 {
		t.Fatalf("post-race recovery = %+v, %+v", cp, entries)
	}
}
