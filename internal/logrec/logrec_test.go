package logrec

import (
	"bytes"
	"errors"
	"testing"
)

func TestRecoverWithoutCheckpoint(t *testing.T) {
	l := NewLog()
	if _, _, err := l.Recover(1); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("err = %v, want ErrNoCheckpoint", err)
	}
	l.Append(1, Entry{Seq: 5, Data: []byte("op")})
	if _, _, err := l.Recover(1); !errors.Is(err, ErrNoCheckpoint) {
		t.Fatalf("entries without checkpoint: err = %v", err)
	}
}

func TestCheckpointAndReplay(t *testing.T) {
	l := NewLog()
	l.Checkpoint(7, Checkpoint{Seq: 10, OpCount: 3, State: []byte("s10")})
	l.Append(7, Entry{Seq: 11, Data: []byte("op11")})
	l.Append(7, Entry{Seq: 12, Data: []byte("op12")})

	cp, entries, err := l.Recover(7)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Seq != 10 || cp.OpCount != 3 || !bytes.Equal(cp.State, []byte("s10")) {
		t.Fatalf("checkpoint = %+v", cp)
	}
	if len(entries) != 2 || entries[0].Seq != 11 || entries[1].Seq != 12 {
		t.Fatalf("entries = %+v", entries)
	}
}

func TestCheckpointTruncatesSubsumedEntries(t *testing.T) {
	l := NewLog()
	l.Checkpoint(1, Checkpoint{Seq: 0, State: []byte("s0")})
	for seq := uint64(1); seq <= 5; seq++ {
		l.Append(1, Entry{Seq: seq, Data: []byte{byte(seq)}})
	}
	if got := l.EntryCount(1); got != 5 {
		t.Fatalf("entries = %d", got)
	}
	l.Checkpoint(1, Checkpoint{Seq: 3, State: []byte("s3")})
	_, entries, err := l.Recover(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 || entries[0].Seq != 4 || entries[1].Seq != 5 {
		t.Fatalf("entries after truncation = %+v", entries)
	}
}

func TestLogIsolatesGroups(t *testing.T) {
	l := NewLog()
	l.Checkpoint(1, Checkpoint{Seq: 1, State: []byte("a")})
	l.Checkpoint(2, Checkpoint{Seq: 2, State: []byte("b")})
	l.Append(1, Entry{Seq: 3, Data: []byte("x")})

	if l.EntryCount(2) != 0 {
		t.Fatal("group 2 contaminated")
	}
	cp, _, err := l.Recover(2)
	if err != nil || !bytes.Equal(cp.State, []byte("b")) {
		t.Fatalf("group 2 checkpoint = %+v, %v", cp, err)
	}
}

func TestRecoverReturnsCopies(t *testing.T) {
	l := NewLog()
	state := []byte("mutable")
	l.Checkpoint(1, Checkpoint{Seq: 1, State: state})
	state[0] = 'X' // caller mutation must not affect the stored copy

	cp, _, err := l.Recover(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cp.State, []byte("mutable")) {
		t.Fatalf("stored state corrupted: %q", cp.State)
	}
	cp.State[0] = 'Y' // and mutating the recovered copy must not either
	cp2, _, _ := l.Recover(1)
	if !bytes.Equal(cp2.State, []byte("mutable")) {
		t.Fatalf("second recovery corrupted: %q", cp2.State)
	}
}

func TestDrop(t *testing.T) {
	l := NewLog()
	l.Checkpoint(1, Checkpoint{Seq: 1, State: []byte("a")})
	l.Drop(1)
	if l.HasCheckpoint(1) {
		t.Fatal("checkpoint survived drop")
	}
}
