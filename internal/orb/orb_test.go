package orb

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/giop"
)

// counterServant is a deterministic test servant with add/get/fail ops.
type counterServant struct {
	mu    sync.Mutex
	total int64
}

func (c *counterServant) Invoke(op string, args *cdr.Reader, reply *cdr.Writer) error {
	switch op {
	case "add":
		delta := args.ReadLongLong()
		if err := args.Err(); err != nil {
			return err
		}
		c.mu.Lock()
		c.total += delta
		total := c.total
		c.mu.Unlock()
		reply.WriteLongLong(total)
		return nil
	case "get":
		c.mu.Lock()
		total := c.total
		c.mu.Unlock()
		reply.WriteLongLong(total)
		return nil
	case "fail":
		return &SystemException{RepoID: RepoUnknown, Minor: 42}
	case "boom":
		return errors.New("internal explosion")
	default:
		return &SystemException{RepoID: RepoObjectNotExist, Minor: 2}
	}
}

func newTestServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	s.Register([]byte("counter"), &counterServant{})
	return s
}

func dialServer(t *testing.T, s *Server) *Conn {
	t.Helper()
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func encodeDelta(v int64) []byte {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteLongLong(v)
	return w.Bytes()
}

func TestInvokeRoundTrip(t *testing.T) {
	s := newTestServer(t)
	c := dialServer(t, s)

	r, err := c.Call([]byte("counter"), "add", encodeDelta(5), InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReadLongLong(); got != 5 || r.Err() != nil {
		t.Fatalf("add = %d, err %v", got, r.Err())
	}
	r, err = c.Call([]byte("counter"), "add", encodeDelta(-2), InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReadLongLong(); got != 3 {
		t.Fatalf("total = %d", got)
	}
}

func TestConcurrentInvocationsMultiplex(t *testing.T) {
	s := newTestServer(t)
	c := dialServer(t, s)

	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Call([]byte("counter"), "add", encodeDelta(1), InvokeOptions{}); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	r, err := c.Call([]byte("counter"), "get", nil, InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReadLongLong(); got != 32 {
		t.Fatalf("total = %d, want 32", got)
	}
}

func TestUnknownObjectKeyRaisesObjectNotExist(t *testing.T) {
	s := newTestServer(t)
	c := dialServer(t, s)

	_, err := c.Call([]byte("ghost"), "get", nil, InvokeOptions{})
	var sysEx *SystemException
	if !errors.As(err, &sysEx) || sysEx.RepoID != RepoObjectNotExist {
		t.Fatalf("err = %v, want OBJECT_NOT_EXIST", err)
	}
}

func TestServantErrorsMapToSystemExceptions(t *testing.T) {
	s := newTestServer(t)
	c := dialServer(t, s)

	_, err := c.Call([]byte("counter"), "fail", nil, InvokeOptions{})
	var sysEx *SystemException
	if !errors.As(err, &sysEx) || sysEx.Minor != 42 {
		t.Fatalf("err = %v, want minor 42", err)
	}

	_, err = c.Call([]byte("counter"), "boom", nil, InvokeOptions{})
	if !errors.As(err, &sysEx) || sysEx.RepoID != RepoUnknown {
		t.Fatalf("err = %v, want UNKNOWN", err)
	}
}

func TestOneWayInvocation(t *testing.T) {
	s := newTestServer(t)
	c := dialServer(t, s)

	if _, err := c.Invoke([]byte("counter"), "add", encodeDelta(7), InvokeOptions{OneWay: true}); err != nil {
		t.Fatal(err)
	}
	// The one-way must eventually apply; poll via a two-way get.
	deadline := time.Now().Add(2 * time.Second)
	for {
		r, err := c.Call([]byte("counter"), "get", nil, InvokeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if r.ReadLongLong() == 7 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("one-way add never applied")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestServerIORPointsAtListenAddress(t *testing.T) {
	s := newTestServer(t)
	ref := s.IOR("IDL:Test/Counter:1.0", []byte("counter"))
	p, err := ref.PrimaryProfile()
	if err != nil {
		t.Fatal(err)
	}
	if p.Addr() != s.Addr() {
		t.Fatalf("IOR addr = %s, server addr = %s", p.Addr(), s.Addr())
	}
	if string(p.ObjectKey) != "counter" {
		t.Fatalf("object key = %q", p.ObjectKey)
	}
}

type fixedAdvertiser struct {
	host string
	port uint16
}

func (a fixedAdvertiser) AdvertisedAddr(string, uint16) (string, uint16) { return a.host, a.port }

func TestAdvertiserRedirectsIOR(t *testing.T) {
	// Section 3.1: the interceptor substitutes the gateway address when
	// the server publishes its IOR.
	s, err := NewServer("127.0.0.1:0", WithAdvertiser(fixedAdvertiser{host: "gw.example", port: 9999}))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	ref := s.IOR("IDL:Test/Counter:1.0", []byte("counter"))
	p, err := ref.PrimaryProfile()
	if err != nil {
		t.Fatal(err)
	}
	if p.Host != "gw.example" || p.Port != 9999 {
		t.Fatalf("profile = %+v", p)
	}
}

func TestResolveViaIOR(t *testing.T) {
	s := newTestServer(t)
	ref := s.IOR("IDL:Test/Counter:1.0", []byte("counter"))
	obj, conn, err := Resolve(ref)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	r, err := obj.Call("add", encodeDelta(11), InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReadLongLong(); got != 11 {
		t.Fatalf("got %d", got)
	}
}

func TestInvokeAfterServerClose(t *testing.T) {
	s := newTestServer(t)
	c := dialServer(t, s)
	if _, err := c.Call([]byte("counter"), "get", nil, InvokeOptions{}); err != nil {
		t.Fatal(err)
	}
	_ = s.Close()
	_, err := c.Call([]byte("counter"), "get", nil, InvokeOptions{Timeout: time.Second})
	if err == nil {
		t.Fatal("expected error after server close")
	}
}

func TestInvokeTimeout(t *testing.T) {
	// A servant that blocks forever must trigger the client timeout.
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	block := make(chan struct{})
	defer close(block)
	t.Cleanup(func() { _ = s.Close() })
	s.Register([]byte("slow"), ServantFunc(func(string, *cdr.Reader, *cdr.Writer) error {
		<-block
		return nil
	}))
	c := dialServer(t, s)
	_, err = c.Call([]byte("slow"), "wait", nil, InvokeOptions{Timeout: 50 * time.Millisecond})
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestLocateRequest(t *testing.T) {
	s := newTestServer(t)
	// Use a raw connection to exercise LocateRequest directly.
	c := dialServer(t, s)
	msg := giop.EncodeLocateRequest(cdr.BigEndian, giop.LocateRequest{RequestID: 9, ObjectKey: []byte("counter")})
	c.wmu.Lock()
	err := giop.WriteMessage(c.nc, msg)
	c.wmu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	// The client readLoop drops LocateReply silently; just verify the
	// connection stays healthy afterwards.
	if _, err := c.Call([]byte("counter"), "get", nil, InvokeOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestRequestIDReuseIsHonoured(t *testing.T) {
	s := newTestServer(t)
	c := dialServer(t, s)
	rep, err := c.Invoke([]byte("counter"), "get", nil, InvokeOptions{RequestID: 777})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RequestID != 777 {
		t.Fatalf("reply request id = %d", rep.RequestID)
	}
}

func TestManySequentialCalls(t *testing.T) {
	s := newTestServer(t)
	c := dialServer(t, s)
	for i := 1; i <= 200; i++ {
		r, err := c.Call([]byte("counter"), "add", encodeDelta(1), InvokeOptions{})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got := r.ReadLongLong(); got != int64(i) {
			t.Fatalf("call %d returned %d", i, got)
		}
	}
}

func TestMultipleClients(t *testing.T) {
	s := newTestServer(t)
	const clients = 8
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer func() { _ = c.Close() }()
			for j := 0; j < 20; j++ {
				if _, err := c.Call([]byte("counter"), "add", encodeDelta(1), InvokeOptions{}); err != nil {
					errs <- fmt.Errorf("client %d call %d: %w", n, j, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	c := dialServer(t, s)
	r, err := c.Call([]byte("counter"), "get", nil, InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReadLongLong(); got != clients*20 {
		t.Fatalf("total = %d, want %d", got, clients*20)
	}
}

// waitTotal polls the counter until it reaches want.
func waitTotal(t *testing.T, c *Conn, want int64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		r, err := c.Call([]byte("counter"), "get", nil, InvokeOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if got := r.ReadLongLong(); got == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("counter never reached %d", want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestConcurrentDispatchInterleaves(t *testing.T) {
	// A multithreaded ORB (concurrent dispatch) serves a slow request
	// without stalling later requests on the same connection — and is
	// exactly the nondeterminism source the domain executor serializes
	// away (paper section 2.2).
	s, err := NewServer("127.0.0.1:0", WithConcurrentDispatch())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	release := make(chan struct{})
	s.Register([]byte("slow"), ServantFunc(func(op string, _ *cdr.Reader, reply *cdr.Writer) error {
		if op == "wait" {
			<-release
		}
		reply.WriteLongLong(1)
		return nil
	}))
	c := dialServer(t, s)

	done := make(chan error, 1)
	go func() {
		_, err := c.Call([]byte("slow"), "wait", nil, InvokeOptions{Timeout: 5 * time.Second})
		done <- err
	}()
	// The fast request on the same connection completes while the slow
	// one is still parked.
	if _, err := c.Call([]byte("slow"), "fast", nil, InvokeOptions{Timeout: 2 * time.Second}); err != nil {
		t.Fatalf("fast call stalled behind slow call: %v", err)
	}
	close(release)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestLocateAPI(t *testing.T) {
	s := newTestServer(t)
	c := dialServer(t, s)
	status, err := c.Locate([]byte("counter"), time.Second)
	if err != nil || status != giop.LocateObjectHere {
		t.Fatalf("locate counter = %v, %v", status, err)
	}
	status, err = c.Locate([]byte("ghost"), time.Second)
	if err != nil || status != giop.LocateUnknownObject {
		t.Fatalf("locate ghost = %v, %v", status, err)
	}
}
