package orb

import (
	"testing"
)

// TestGIOP12ClientAgainstServer drives the object adapter with GIOP 1.2
// requests: the server must decode the 1.2 header and answer in 1.2.
func TestGIOP12ClientAgainstServer(t *testing.T) {
	s := newTestServer(t)
	c := dialServer(t, s)
	c.SetGIOPMinor(2)

	for i := 1; i <= 10; i++ {
		r, err := c.Call([]byte("counter"), "add", encodeDelta(1), InvokeOptions{})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got := r.ReadLongLong(); got != int64(i) {
			t.Fatalf("call %d = %d", i, got)
		}
	}
}

// TestGIOP12OneWay exercises the 1.2 response_flags oneway path.
func TestGIOP12OneWay(t *testing.T) {
	s := newTestServer(t)
	c := dialServer(t, s)
	c.SetGIOPMinor(2)
	if _, err := c.Invoke([]byte("counter"), "add", encodeDelta(3), InvokeOptions{OneWay: true}); err != nil {
		t.Fatal(err)
	}
	// Confirm via a 1.0 connection that the state changed.
	c2 := dialServer(t, s)
	waitTotal(t, c2, 3)
}

// TestMixedVersionsOnOneConnection interleaves 1.0 and 1.2 requests.
func TestMixedVersionsOnOneConnection(t *testing.T) {
	s := newTestServer(t)
	c := dialServer(t, s)
	for i := 1; i <= 6; i++ {
		c.SetGIOPMinor(byte(2 * (i % 2))) // alternate 0 and 2
		r, err := c.Call([]byte("counter"), "add", encodeDelta(1), InvokeOptions{})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got := r.ReadLongLong(); got != int64(i) {
			t.Fatalf("call %d = %d", i, got)
		}
	}
}
