package orb

import (
	"errors"
	"io"
	"log"
	"net"
	"strconv"
	"sync"

	"eternalgw/internal/cdr"
	"eternalgw/internal/giop"
	"eternalgw/internal/ior"
)

// Advertiser decides the host and port that published IORs carry. The
// default advertises the server's own listen address. Eternal's
// interceptor substitutes the gateway's address here, exactly as the
// paper's getsockname()/sysinfo() interpositioning does (section 3.1), so
// IORs published by replicated servers point external clients at the
// gateway.
type Advertiser interface {
	AdvertisedAddr(actualHost string, actualPort uint16) (host string, port uint16)
}

// selfAdvertiser advertises the real listen address.
type selfAdvertiser struct{}

func (selfAdvertiser) AdvertisedAddr(h string, p uint16) (string, uint16) { return h, p }

// ServerOption configures a Server.
type ServerOption interface{ apply(*Server) }

type serverOptionFunc func(*Server)

func (f serverOptionFunc) apply(s *Server) { f(s) }

// WithAdvertiser installs an IOR address advertiser (the interceptor
// hook).
func WithAdvertiser(a Advertiser) ServerOption {
	return serverOptionFunc(func(s *Server) { s.advertiser = a })
}

// WithLogger directs server diagnostics to l instead of discarding them.
func WithLogger(l *log.Logger) ServerOption {
	return serverOptionFunc(func(s *Server) { s.logger = l })
}

// WithConcurrentDispatch makes the server execute each request on its
// own goroutine, as commercial multithreaded ORBs do. The paper's
// section 2.2 identifies exactly this multithreading as a significant
// source of nondeterminism for replicated objects: inside a fault
// tolerance domain, Eternal's interceptor-level mechanisms serialize
// dispatch (in this repository, the replication executor applies the
// totally-ordered invocation stream one operation at a time), so
// concurrent dispatch is only safe for unreplicated servants.
func WithConcurrentDispatch() ServerOption {
	return serverOptionFunc(func(s *Server) { s.concurrent = true })
}

// Server is an IIOP server: a TCP listener plus an object adapter mapping
// object keys to servants.
type Server struct {
	ln         net.Listener
	advertiser Advertiser
	logger     *log.Logger
	concurrent bool

	mu       sync.Mutex
	servants map[string]Servant
	conns    map[net.Conn]struct{}
	closed   bool

	wg sync.WaitGroup
}

// NewServer starts an IIOP server listening on addr (e.g.
// "127.0.0.1:0").
func NewServer(addr string, opts ...ServerOption) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		ln:         ln,
		advertiser: selfAdvertiser{},
		servants:   make(map[string]Servant),
		conns:      make(map[net.Conn]struct{}),
	}
	for _, o := range opts {
		o.apply(s)
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's actual listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Register binds a servant to an object key.
func (s *Server) Register(objectKey []byte, sv Servant) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.servants[string(objectKey)] = sv
}

// Unregister removes the servant bound to objectKey.
func (s *Server) Unregister(objectKey []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.servants, string(objectKey))
}

// lookup returns the servant for an object key.
func (s *Server) lookup(objectKey []byte) (Servant, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sv, ok := s.servants[string(objectKey)]
	return sv, ok
}

// IOR builds the object reference a client would use to reach objectKey,
// with the addressing information supplied by the advertiser.
func (s *Server) IOR(typeID string, objectKey []byte) ior.Ref {
	host, portStr, err := net.SplitHostPort(s.Addr())
	if err != nil {
		host, portStr = "127.0.0.1", "0"
	}
	p, _ := strconv.Atoi(portStr)
	advHost, advPort := s.advertiser.AdvertisedAddr(host, uint16(p))
	return ior.New(typeID, ior.IIOPProfile{Host: advHost, Port: advPort, ObjectKey: objectKey})
}

// Close stops the listener and all connections, and waits for the
// connection handlers to finish.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	}
	s.closed = true
	conns := make([]net.Conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()

	err := s.ln.Close()
	for _, c := range conns {
		// Orderly GIOP shutdown: tell the peer before severing, so its
		// in-flight bookkeeping can distinguish closure from a crash.
		_ = giop.WriteMessage(c, giop.EncodeCloseConnection(cdr.BigEndian))
		_ = c.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			_ = conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()

		s.wg.Add(1)
		go s.serveConn(conn)
	}
}

func (s *Server) serveConn(conn net.Conn) {
	defer s.wg.Done()
	defer func() {
		_ = conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
	}()
	var wmu sync.Mutex // serializes replies onto the connection
	ra := giop.NewReassembler(conn, 0)
	for {
		msg, err := ra.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				s.logf("orb: connection %s: %v", conn.RemoteAddr(), err)
			}
			return
		}
		switch msg.Header.Type {
		case giop.MsgRequest:
			if s.concurrent {
				s.wg.Add(1)
				go func(msg giop.Message) {
					defer s.wg.Done()
					s.handleRequest(conn, &wmu, msg)
				}(msg)
			} else {
				s.handleRequest(conn, &wmu, msg)
			}
		case giop.MsgLocateRequest:
			s.handleLocate(conn, &wmu, msg)
		case giop.MsgCancelRequest:
			// Nothing cancellable: requests are served synchronously.
		case giop.MsgCloseConn:
			return
		default:
			wmu.Lock()
			_ = giop.WriteMessage(conn, giop.EncodeMessageError(msg.Header.Order))
			wmu.Unlock()
		}
	}
}

func (s *Server) handleRequest(conn net.Conn, wmu *sync.Mutex, msg giop.Message) {
	req, err := giop.DecodeRequest(msg)
	if err != nil {
		s.logf("orb: bad request from %s: %v", conn.RemoteAddr(), err)
		wmu.Lock()
		_ = giop.WriteMessage(conn, giop.EncodeMessageError(msg.Header.Order))
		wmu.Unlock()
		return
	}
	rep := DispatchRequest(s, req)
	if !req.ResponseExpected {
		return
	}
	out, err := giop.EncodeReplyV(msg.Header.Order, msg.Header.Minor, rep)
	if err != nil {
		s.logf("orb: encode reply: %v", err)
		return
	}
	wmu.Lock()
	defer wmu.Unlock()
	if err := giop.WriteMessageFragmented(conn, out, 0); err != nil {
		s.logf("orb: write reply to %s: %v", conn.RemoteAddr(), err)
	}
}

func (s *Server) handleLocate(conn net.Conn, wmu *sync.Mutex, msg giop.Message) {
	lr, err := giop.DecodeLocateRequest(msg)
	if err != nil {
		return
	}
	status := giop.LocateUnknownObject
	if _, ok := s.lookup(lr.ObjectKey); ok {
		status = giop.LocateObjectHere
	}
	wmu.Lock()
	defer wmu.Unlock()
	_ = giop.WriteMessage(conn, giop.EncodeLocateReply(msg.Header.Order, giop.LocateReply{
		RequestID: lr.RequestID,
		Status:    status,
	}))
}

// DispatchRequest runs one decoded request against the server's object
// adapter and produces the reply. It is exported so the replication
// mechanisms can feed totally-ordered requests through the same dispatch
// path that direct IIOP connections use.
func DispatchRequest(s *Server, req giop.Request) giop.Reply {
	sv, ok := s.lookup(req.ObjectKey)
	if !ok {
		return giop.Reply{
			RequestID: req.RequestID,
			Status:    giop.ReplySystemException,
			Result:    giop.SystemExceptionBody(req.ArgsOrder, RepoObjectNotExist, minorNoSuchObject, giop.CompletedNo),
		}
	}
	return InvokeServant(sv, req)
}

// InvokeServant runs one request against a servant, mapping servant
// errors to system exceptions.
func InvokeServant(sv Servant, req giop.Request) giop.Reply {
	args := cdr.NewReader(req.Args, req.ArgsOrder)
	reply := cdr.NewWriter(req.ArgsOrder)
	if err := sv.Invoke(req.Operation, args, reply); err != nil {
		var sysEx *SystemException
		repoID, minor := RepoUnknown, uint32(0)
		if errors.As(err, &sysEx) {
			repoID, minor = sysEx.RepoID, sysEx.Minor
		}
		return giop.Reply{
			RequestID:   req.RequestID,
			Status:      giop.ReplySystemException,
			Result:      giop.SystemExceptionBody(req.ArgsOrder, repoID, minor, giop.CompletedYes),
			ResultOrder: req.ArgsOrder,
		}
	}
	return giop.Reply{
		RequestID:   req.RequestID,
		Status:      giop.ReplyNoException,
		Result:      reply.Bytes(),
		ResultOrder: req.ArgsOrder,
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.logger != nil {
		s.logger.Printf(format, args...)
	}
}
