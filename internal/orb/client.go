package orb

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/giop"
	"eternalgw/internal/ior"
)

// Conn is a client-side IIOP connection. It multiplexes concurrent
// invocations over one TCP connection, matching replies to requests by
// request id. Conn is safe for concurrent use.
type Conn struct {
	nc    net.Conn
	order cdr.ByteOrder
	minor atomic.Uint32 // GIOP minor version for outgoing requests

	wmu sync.Mutex // serializes writes

	mu       sync.Mutex
	nextID   uint32
	pending  map[uint32]chan giop.Reply
	locating map[uint32]chan giop.LocateReply
	err      error
	closed   bool

	done chan struct{}
}

// DialTimeout connects to an IIOP endpoint with a connect timeout.
func DialTimeout(addr string, timeout time.Duration) (*Conn, error) {
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return newConn(nc), nil
}

// Dial connects to an IIOP endpoint.
func Dial(addr string) (*Conn, error) {
	return DialTimeout(addr, 10*time.Second)
}

// DialRaw opens a plain TCP connection to an IIOP endpoint without the
// request/reply machinery, for callers that exchange GIOP messages
// directly (interoperability tests, protocol tooling).
func DialRaw(addr string) (net.Conn, error) {
	return net.DialTimeout("tcp", addr, 10*time.Second)
}

func newConn(nc net.Conn) *Conn {
	c := &Conn{
		nc:       nc,
		order:    cdr.BigEndian,
		nextID:   1,
		pending:  make(map[uint32]chan giop.Reply),
		locating: make(map[uint32]chan giop.LocateReply),
		done:     make(chan struct{}),
	}
	go c.readLoop()
	return c
}

// SetGIOPMinor selects the GIOP minor version (0, 1 or 2) for requests
// sent after the call. Replies are decoded by whatever version the peer
// answers with.
func (c *Conn) SetGIOPMinor(minor byte) {
	c.minor.Store(uint32(minor))
}

// Close shuts the connection down; in-flight invocations fail with
// ErrClosed.
func (c *Conn) Close() error {
	c.fail(ErrClosed)
	return c.nc.Close()
}

// fail marks the connection broken and wakes all waiters.
func (c *Conn) fail(err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	c.err = err
	for id, ch := range c.pending {
		close(ch)
		delete(c.pending, id)
	}
	close(c.done)
}

func (c *Conn) readLoop() {
	ra := giop.NewReassembler(c.nc, 0)
	for {
		msg, err := ra.Next()
		if err != nil {
			c.fail(fmt.Errorf("%w: %v", ErrClosed, err))
			return
		}
		switch msg.Header.Type {
		case giop.MsgReply:
			rep, err := giop.DecodeReply(msg)
			if err != nil {
				continue
			}
			c.mu.Lock()
			ch, ok := c.pending[rep.RequestID]
			if ok {
				delete(c.pending, rep.RequestID)
			}
			c.mu.Unlock()
			if ok {
				ch <- rep
			}
		case giop.MsgLocateReply:
			lr, err := giop.DecodeLocateReply(msg)
			if err != nil {
				continue
			}
			c.mu.Lock()
			ch, ok := c.locating[lr.RequestID]
			if ok {
				delete(c.locating, lr.RequestID)
			}
			c.mu.Unlock()
			if ok {
				ch <- lr
			}
		case giop.MsgCloseConn:
			c.fail(ErrClosed)
			return
		default:
			// Unsolicited message types are ignored by this client.
		}
	}
}

// InvokeOptions customizes a single invocation.
type InvokeOptions struct {
	// ServiceContexts are attached to the request; the enhanced client
	// interception layer uses this to carry its unique client id.
	ServiceContexts []giop.ServiceContext
	// OneWay suppresses the response (response_expected = false).
	OneWay bool
	// Timeout bounds the wait for the reply; zero means 10 seconds.
	Timeout time.Duration
	// RequestID forces a specific request id; zero allocates the next
	// one. The enhanced client layer reuses ids when reissuing pending
	// invocations after gateway failover so duplicates are detectable.
	RequestID uint32
}

// Invoke performs one IIOP request/reply exchange. args must be
// CDR-encoded in big-endian order (use cdr.NewWriter(cdr.BigEndian)).
func (c *Conn) Invoke(objectKey []byte, op string, args []byte, opts InvokeOptions) (giop.Reply, error) {
	timeout := opts.Timeout
	if timeout == 0 {
		timeout = 10 * time.Second
	}

	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		return giop.Reply{}, err
	}
	id := opts.RequestID
	if id == 0 {
		id = c.nextID
		c.nextID++
	}
	var ch chan giop.Reply
	if !opts.OneWay {
		ch = make(chan giop.Reply, 1)
		c.pending[id] = ch
	}
	c.mu.Unlock()

	msg, err := giop.EncodeRequestV(c.order, byte(c.minor.Load()), giop.Request{
		ServiceContexts:  opts.ServiceContexts,
		RequestID:        id,
		ResponseExpected: !opts.OneWay,
		ObjectKey:        objectKey,
		Operation:        op,
		Args:             args,
	})
	if err != nil {
		c.abandon(id)
		return giop.Reply{}, err
	}
	c.wmu.Lock()
	err = giop.WriteMessageFragmented(c.nc, msg, 0)
	c.wmu.Unlock()
	if err != nil {
		c.abandon(id)
		return giop.Reply{}, fmt.Errorf("%w: %v", ErrClosed, err)
	}
	if opts.OneWay {
		return giop.Reply{}, nil
	}

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case rep, ok := <-ch:
		if !ok {
			c.mu.Lock()
			err := c.err
			c.mu.Unlock()
			return giop.Reply{}, err
		}
		return rep, nil
	case <-timer.C:
		c.abandon(id)
		return giop.Reply{}, fmt.Errorf("%w: %s after %v", ErrTimeout, op, timeout)
	}
}

// abandon forgets a pending request.
func (c *Conn) abandon(id uint32) {
	c.mu.Lock()
	delete(c.pending, id)
	c.mu.Unlock()
}

// Call invokes op and surfaces CORBA exceptions as errors, returning a
// reader over the reply body on success.
func (c *Conn) Call(objectKey []byte, op string, args []byte, opts InvokeOptions) (*cdr.Reader, error) {
	rep, err := c.Invoke(objectKey, op, args, opts)
	if err != nil {
		return nil, err
	}
	return ReplyReader(rep)
}

// ReplyReader converts a decoded reply into a result reader, mapping
// exception statuses to errors.
func ReplyReader(rep giop.Reply) (*cdr.Reader, error) {
	switch rep.Status {
	case giop.ReplyNoException:
		return cdr.NewReader(rep.Result, rep.ResultOrder), nil
	case giop.ReplySystemException:
		repoID, minor, completed, err := giop.DecodeSystemException(rep.Result, rep.ResultOrder)
		if err != nil {
			return nil, err
		}
		return nil, &SystemException{RepoID: repoID, Minor: minor, Completed: completed}
	default:
		return nil, fmt.Errorf("orb: unsupported reply status %v", rep.Status)
	}
}

// ObjectRef is a client-side proxy bound to one profile of an IOR.
type ObjectRef struct {
	conn *Conn
	key  []byte
}

// Resolve connects to the first IIOP profile of ref and returns a proxy
// plus the connection (which the caller owns and must close).
func Resolve(ref ior.Ref) (*ObjectRef, *Conn, error) {
	p, err := ref.PrimaryProfile()
	if err != nil {
		return nil, nil, err
	}
	conn, err := Dial(p.Addr())
	if err != nil {
		return nil, nil, err
	}
	return &ObjectRef{conn: conn, key: p.ObjectKey}, conn, nil
}

// Object binds a proxy for objectKey over an existing connection.
func Object(conn *Conn, objectKey []byte) *ObjectRef {
	return &ObjectRef{conn: conn, key: objectKey}
}

// Call invokes op on the referenced object.
func (o *ObjectRef) Call(op string, args []byte, opts InvokeOptions) (*cdr.Reader, error) {
	return o.conn.Call(o.key, op, args, opts)
}

// Locate asks the peer whether it serves objectKey (a GIOP
// LocateRequest). Gateways answer OBJECT_HERE for every object of their
// domain, upholding the illusion that they are the server (paper
// section 3.1).
func (c *Conn) Locate(objectKey []byte, timeout time.Duration) (giop.LocateStatus, error) {
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	c.mu.Lock()
	if c.closed {
		err := c.err
		c.mu.Unlock()
		return 0, err
	}
	id := c.nextID
	c.nextID++
	ch := make(chan giop.LocateReply, 1)
	c.locating[id] = ch
	c.mu.Unlock()

	msg := giop.EncodeLocateRequest(c.order, giop.LocateRequest{RequestID: id, ObjectKey: objectKey})
	c.wmu.Lock()
	err := giop.WriteMessage(c.nc, msg)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.locating, id)
		c.mu.Unlock()
		return 0, fmt.Errorf("%w: %v", ErrClosed, err)
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case lr := <-ch:
		return lr.Status, nil
	case <-c.done:
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		return 0, err
	case <-timer.C:
		c.mu.Lock()
		delete(c.locating, id)
		c.mu.Unlock()
		return 0, fmt.Errorf("%w: locate after %v", ErrTimeout, timeout)
	}
}
