// Package orb is a minimal CORBA Object Request Broker: an IIOP server
// with an object adapter dispatching to servants keyed by object key, and
// an IIOP client with request/reply matching over TCP.
//
// It plays the role of the commercial ORBs in the paper: the unreplicated
// external clients of a fault tolerance domain run this client; the
// gateway speaks this wire protocol on its external side; and replicated
// servants inside the domain are hosted behind the replication
// mechanisms. Only the wire contract matters to the gateway — GIOP 1.0
// framing, request ids, object keys and service contexts — which this
// package implements per CORBA 2.3.
package orb

import (
	"errors"
	"fmt"

	"eternalgw/internal/cdr"
)

// Errors reported by the package.
var (
	// ErrNoSuchObject reports an unknown object key.
	ErrNoSuchObject = errors.New("orb: no such object")
	// ErrClosed reports use of a closed connection or server.
	ErrClosed = errors.New("orb: closed")
	// ErrTimeout reports an invocation that exceeded its deadline.
	ErrTimeout = errors.New("orb: invocation timed out")
)

// SystemException is a CORBA system exception surfaced to clients.
type SystemException struct {
	RepoID    string
	Minor     uint32
	Completed uint32
}

// Error implements the error interface.
func (e *SystemException) Error() string {
	return fmt.Sprintf("orb: system exception %s (minor %d, completed %d)", e.RepoID, e.Minor, e.Completed)
}

// Well-known system exception repository ids.
const (
	RepoObjectNotExist = "IDL:omg.org/CORBA/OBJECT_NOT_EXIST:1.0"
	RepoUnknown        = "IDL:omg.org/CORBA/UNKNOWN:1.0"
	RepoCommFailure    = "IDL:omg.org/CORBA/COMM_FAILURE:1.0"
	// RepoTransient is the CORBA "overloaded, try again" exception;
	// gateways raise it (with the admission verdict in the minor code)
	// when shedding requests under overload or drain.
	RepoTransient = "IDL:omg.org/CORBA/TRANSIENT:1.0"
)

// minorNoSuchObject is the OBJECT_NOT_EXIST minor code for a request
// whose object key matches no servant in the adapter (documented in
// docs/OPERATIONS.md).
const (
	minorNoSuchObject uint32 = 0
)

// Servant handles invocations on one object. Implementations decode
// in-parameters from args and encode results into reply. Returning an
// error produces a CORBA system exception at the client.
//
// A servant used inside a fault tolerance domain must be deterministic:
// its state changes may depend only on the operation, its arguments and
// the current state, never on wall-clock time or randomness, because
// every replica executes the same totally-ordered invocation stream.
type Servant interface {
	Invoke(op string, args *cdr.Reader, reply *cdr.Writer) error
}

// ServantFunc adapts a function to the Servant interface.
type ServantFunc func(op string, args *cdr.Reader, reply *cdr.Writer) error

// Invoke calls f.
func (f ServantFunc) Invoke(op string, args *cdr.Reader, reply *cdr.Writer) error {
	return f(op, args, reply)
}
