//go:build !(linux && (amd64 || arm64))

package udpnet

// Platforms without sendmmsg/recvmmsg (or whose syscall numbers this
// package does not pin) fall back to the portable per-datagram path:
// Broadcast frames and writes synchronously and the receive loop reads
// one datagram per syscall, exactly as with Config.DisableBatching.

const batchSupported = false

// batchState is unused on this platform.
type batchState struct{}

func newBatchState(e *Endpoint) (*batchState, error) { return nil, nil }

func (e *Endpoint) sendFramesBatched(frames [][]byte) {
	// Unreachable: the send loop only starts when batchSupported.
	for _, f := range frames {
		frame := make([]byte, 0, len(e.hdr)+len(f))
		frame = append(append(frame, e.hdr...), f...)
		for i := range e.peers {
			if e.dropTx() {
				continue
			}
			if _, err := e.conn.WriteToUDP(frame, e.peers[i].addr); err != nil {
				e.txErrors.Add(1)
				continue
			}
			e.txDatagrams.Add(1)
		}
	}
}

func (e *Endpoint) readLoopBatched() { e.readLoopSequential() }
