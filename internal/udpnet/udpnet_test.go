package udpnet

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"eternalgw/internal/memnet"
	"eternalgw/internal/totem"
)

// freeRegistry builds a registry of localhost endpoints on free ports by
// binding each once to discover a port, then releasing it.
func freeRegistry(t *testing.T, ids ...memnet.NodeID) Registry {
	t.Helper()
	reg := make(Registry, len(ids))
	for _, id := range ids {
		probe, err := Listen(id, Registry{id: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		reg[id] = probe.Addr()
		if err := probe.Close(); err != nil {
			t.Fatal(err)
		}
	}
	return reg
}

func TestListenRequiresRegistryEntry(t *testing.T) {
	if _, err := Listen("ghost", Registry{"a": "127.0.0.1:0"}); err == nil {
		t.Fatal("missing registry entry accepted")
	}
}

func TestBroadcastSelfDelivery(t *testing.T) {
	reg := freeRegistry(t, "solo")
	e, err := Listen("solo", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()
	if err := e.Broadcast([]byte("loop")); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-e.Recv():
		if p.From != "solo" || string(p.Payload) != "loop" {
			t.Fatalf("packet = %+v", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("self-delivery never arrived")
	}
}

func TestBroadcastReachesPeers(t *testing.T) {
	reg := freeRegistry(t, "a", "b", "c")
	eps := make(map[memnet.NodeID]*Endpoint, 3)
	for id := range reg {
		e, err := Listen(id, reg)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = e.Close() }()
		eps[id] = e
	}
	if err := eps["a"].Broadcast([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	for id, e := range eps {
		select {
		case p := <-e.Recv():
			if p.From != "a" || string(p.Payload) != "hello" {
				t.Fatalf("%s got %+v", id, p)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("%s never received the broadcast", id)
		}
	}
}

func TestBroadcastAfterClose(t *testing.T) {
	reg := freeRegistry(t, "x")
	e, err := Listen("x", reg)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Broadcast([]byte("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestTotemRingOverUDP runs a full totem ring over real UDP sockets:
// the protocol must install a ring and deliver in identical total order
// at every member — on the batched (sendmmsg/recvmmsg) datapath and on
// the per-datagram ablation path.
func TestTotemRingOverUDP(t *testing.T) {
	t.Run("batched", func(t *testing.T) { testTotemRingOverUDP(t, Config{}) })
	t.Run("perdatagram", func(t *testing.T) { testTotemRingOverUDP(t, Config{DisableBatching: true}) })
}

func testTotemRingOverUDP(t *testing.T, cfg Config) {
	ids := []memnet.NodeID{"u0", "u1", "u2"}
	reg := freeRegistry(t, ids...)
	nodes := make(map[memnet.NodeID]*totem.Node, len(ids))
	for _, id := range ids {
		ep, err := ListenConfig(id, reg, cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = ep.Close() })
		node, err := totem.Start(totem.Config{
			ID:              id,
			Endpoint:        ep,
			Members:         ids,
			IdleHold:        200 * time.Microsecond,
			TokenRetransmit: 20 * time.Millisecond,
			FailTimeout:     200 * time.Millisecond,
			GatherTimeout:   40 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(node.Stop)
		nodes[id] = node
	}
	// Wait for ring installation everywhere.
	for id, n := range nodes {
		deadline := time.After(10 * time.Second)
		for installed := false; !installed; {
			select {
			case ev := <-n.Events():
				installed = ev.Type == totem.EventConfig && len(ev.Config.Members) == len(ids)
			case <-deadline:
				t.Fatalf("%s: ring never installed", id)
			}
		}
	}
	const per = 20
	for _, id := range ids {
		go func(n *totem.Node, tag byte) {
			for i := 0; i < per; i++ {
				_ = n.Multicast([]byte{tag, byte(i)})
			}
		}(nodes[id], id[1])
	}
	total := per * len(ids)
	collect := func(n *totem.Node) []totem.Delivery {
		out := make([]totem.Delivery, 0, total)
		deadline := time.After(15 * time.Second)
		for len(out) < total {
			select {
			case ev := <-n.Events():
				if ev.Type == totem.EventDeliver {
					out = append(out, ev.Delivery)
				}
			case <-deadline:
				t.Fatalf("timed out after %d/%d deliveries", len(out), total)
			}
		}
		return out
	}
	ref := collect(nodes[ids[0]])
	for _, id := range ids[1:] {
		got := collect(nodes[id])
		for i := range ref {
			if got[i].Seq != ref[i].Seq || string(got[i].Payload) != string(ref[i].Payload) {
				t.Fatalf("%s: delivery %d differs over UDP: %+v vs %+v", id, i, got[i], ref[i])
			}
		}
	}
}

func TestFrameRoundTripSenderIdentity(t *testing.T) {
	reg := freeRegistry(t, "long-sender-name", "receiver")
	a, err := Listen("long-sender-name", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	b, err := Listen("receiver", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	payload := []byte(fmt.Sprintf("payload-%d", 42))
	if err := a.Broadcast(payload); err != nil {
		t.Fatal(err)
	}
	select {
	case p := <-b.Recv():
		if p.From != "long-sender-name" || string(p.Payload) != string(payload) {
			t.Fatalf("packet = %+v", p)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("broadcast never arrived")
	}
}
