package udpnet

import (
	"bytes"
	"testing"
)

// frameFor builds a wire frame the way an endpoint's precomputed header
// plus payload would appear on the wire.
func frameFor(id string, payload []byte) []byte {
	out := []byte{byte(len(id) >> 8), byte(len(id))}
	out = append(out, id...)
	return append(out, payload...)
}

func TestDecodeFrame(t *testing.T) {
	cases := []struct {
		name    string
		frame   []byte
		ok      bool
		from    string
		payload []byte
	}{
		{"empty", nil, false, "", nil},
		{"one byte", []byte{0}, false, "", nil},
		{"zero id length", []byte{0, 0, 'x'}, false, "", nil},
		{"id length past end", []byte{0, 5, 'a', 'b'}, false, "", nil},
		{"hostile max id length", append([]byte{0xff, 0xff}, make([]byte, 16)...), false, "", nil},
		{"id exactly fills frame", frameFor("abc", nil), true, "abc", []byte{}},
		{"ordinary", frameFor("node-7", []byte("payload")), true, "node-7", []byte("payload")},
		{"binary id", frameFor("\x00\xff", []byte{1, 2, 3}), true, "\x00\xff", []byte{1, 2, 3}},
		{"length prefix only", []byte{0, 1}, false, "", nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			from, payload, ok := decodeFrame(c.frame)
			if ok != c.ok {
				t.Fatalf("ok = %v, want %v", ok, c.ok)
			}
			if !ok {
				return
			}
			if string(from) != c.from || !bytes.Equal(payload, c.payload) {
				t.Fatalf("decoded (%q, %x), want (%q, %x)", from, payload, c.from, c.payload)
			}
		})
	}
}

// FuzzDecodeFrame throws arbitrary bytes at the frame decoder: it must
// never panic, and whenever it accepts a frame, re-encoding the result
// must reproduce the input (the decode is a bijection on valid frames).
func FuzzDecodeFrame(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add([]byte{0, 0})
	f.Add([]byte{0xff, 0xff, 1, 2, 3})
	f.Add(frameFor("demo/p00", []byte("hello")))
	f.Add(frameFor("x", nil))
	f.Fuzz(func(t *testing.T, frame []byte) {
		from, payload, ok := decodeFrame(frame)
		if !ok {
			return
		}
		if len(from) == 0 {
			t.Fatalf("accepted empty sender id from %x", frame)
		}
		if got := frameFor(string(from), payload); !bytes.Equal(got, frame) {
			t.Fatalf("decode(%x) = (%q, %x) does not re-encode to the input", frame, from, payload)
		}
	})
}

// TestDecodeFrameAliases pins the zero-copy property the receive loop
// depends on: the decoded payload aliases the frame buffer, so
// deliverFrame must copy before queueing.
func TestDecodeFrameAliases(t *testing.T) {
	frame := frameFor("n", []byte("abc"))
	_, payload, ok := decodeFrame(frame)
	if !ok {
		t.Fatal("valid frame rejected")
	}
	frame[len(frame)-1] = 'z'
	if string(payload) != "abz" {
		t.Fatalf("payload = %q; expected it to alias the frame", payload)
	}
}
