package udpnet

import (
	"strings"
	"testing"
	"time"

	"eternalgw/internal/memnet"
	"eternalgw/internal/obs"
	"eternalgw/internal/totem"
)

// waitStats polls an endpoint until cond holds or the deadline passes.
func waitStats(t *testing.T, e *Endpoint, what string, cond func(Stats) bool) Stats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		s := e.Stats()
		if cond(s) {
			return s
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s never held; stats %+v", what, s)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatchedCountersAndMetrics pushes a burst through a two-node pair
// and checks the datapath counters move and render as eternalgw_udpnet_*
// metrics. On platforms with batch support the burst must also amortize:
// fewer flushes than datagrams.
func TestBatchedCountersAndMetrics(t *testing.T) {
	reg := freeRegistry(t, "a", "b", "c")
	mreg := obs.NewRegistry()
	a, err := ListenConfig("a", reg, Config{Metrics: mreg})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	b, err := ListenConfig("b", reg, Config{Metrics: mreg})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = b.Close() }()
	c, err := ListenConfig("c", reg, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	const burst = 200
	for i := 0; i < burst; i++ {
		if err := a.Broadcast([]byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	// Drain the peers' inboxes so nothing is dropped for lack of a
	// consumer.
	for _, ep := range []*Endpoint{b, c} {
		got := 0
		deadline := time.After(5 * time.Second)
		for got < burst {
			select {
			case <-ep.Recv():
				got++
			case <-deadline:
				t.Fatalf("%s received %d/%d datagrams", ep.ID(), got, burst)
			}
		}
	}
	sa := waitStats(t, a, "all tx datagrams flushed", func(s Stats) bool {
		return s.TxDatagrams+2*s.TxQueueDrops >= 2*burst
	})
	sb := b.Stats()
	if sb.RxDatagrams == 0 || sb.RxShortFrames != 0 || sb.RxTruncated != 0 {
		t.Fatalf("receiver stats %+v", sb)
	}
	if a.Batched() {
		// Every flush covers both peers (and possibly several gathered
		// frames), so flushes must number strictly fewer than datagrams.
		if sa.TxBatches == 0 || sa.TxBatches >= sa.TxDatagrams {
			t.Fatalf("no send amortization: %+v", sa)
		}
	}
	text := mreg.RenderPrometheus()
	for _, want := range []string{
		`eternalgw_udpnet_tx_datagrams_total{node="a"}`,
		`eternalgw_udpnet_rx_datagrams_total{node="b"}`,
		`eternalgw_udpnet_rx_inbox_drops_total{node="a"}`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("metrics output lacks %s:\n%s", want, text)
		}
	}
}

// TestInboxOverflowCounted proves silent packet loss is gone: with a
// tiny inbox and no consumer, drops land in RxInboxDrops instead of
// vanishing.
func TestInboxOverflowCounted(t *testing.T) {
	reg := freeRegistry(t, "src", "sink")
	src, err := Listen("src", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = src.Close() }()
	sink, err := ListenConfig("sink", reg, Config{InboxSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = sink.Close() }()
	for i := 0; i < 200; i++ {
		if err := src.Broadcast([]byte("flood")); err != nil {
			t.Fatal(err)
		}
	}
	waitStats(t, sink, "inbox overflow counted", func(s Stats) bool {
		return s.RxInboxDrops > 0
	})
}

// TestSeededLossAgreement runs a ring over real sockets with 5%
// deterministic transmit loss on every endpoint: totem's retransmission
// machinery must still deliver one identical total order everywhere.
func TestSeededLossAgreement(t *testing.T) {
	testLossyAgreement(t, func(id memnet.NodeID, seed int64) Config {
		return Config{LossRate: 0.05, LossSeed: seed}
	})
}

// TestKernelDropRecovery shrinks the kernel receive buffer to its floor
// so bursts overflow it — genuine kernel-path loss, not injection — and
// asserts totem still reaches agreement.
func TestKernelDropRecovery(t *testing.T) {
	testLossyAgreement(t, func(id memnet.NodeID, seed int64) Config {
		return Config{ReadBuffer: 1}
	})
}

func testLossyAgreement(t *testing.T, cfgFor func(id memnet.NodeID, seed int64) Config) {
	ids := []memnet.NodeID{"l0", "l1", "l2"}
	reg := freeRegistry(t, ids...)
	nodes := make(map[memnet.NodeID]*totem.Node, len(ids))
	eps := make(map[memnet.NodeID]*Endpoint, len(ids))
	for i, id := range ids {
		ep, err := ListenConfig(id, reg, cfgFor(id, int64(i)+1))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = ep.Close() })
		eps[id] = ep
		node, err := totem.Start(totem.Config{
			ID:              id,
			Endpoint:        ep,
			Members:         ids,
			IdleHold:        200 * time.Microsecond,
			TokenRetransmit: 15 * time.Millisecond,
			FailTimeout:     300 * time.Millisecond,
			GatherTimeout:   40 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(node.Stop)
		nodes[id] = node
	}
	for id, n := range nodes {
		deadline := time.After(20 * time.Second)
		for installed := false; !installed; {
			select {
			case ev := <-n.Events():
				installed = ev.Type == totem.EventConfig && len(ev.Config.Members) == len(ids)
			case <-deadline:
				t.Fatalf("%s: ring never installed", id)
			}
		}
	}
	const per = 25
	for _, id := range ids {
		go func(n *totem.Node, tag byte) {
			for i := 0; i < per; i++ {
				_ = n.Multicast([]byte{tag, byte(i)})
			}
		}(nodes[id], id[1])
	}
	total := per * len(ids)
	collect := func(id memnet.NodeID) []totem.Delivery {
		out := make([]totem.Delivery, 0, total)
		deadline := time.After(30 * time.Second)
		for len(out) < total {
			select {
			case ev := <-nodes[id].Events():
				if ev.Type == totem.EventDeliver {
					out = append(out, ev.Delivery)
				}
			case <-deadline:
				t.Fatalf("%s: timed out after %d/%d deliveries", id, len(out), total)
			}
		}
		return out
	}
	ref := collect(ids[0])
	for _, id := range ids[1:] {
		got := collect(id)
		for i := range ref {
			if got[i].Seq != ref[i].Seq || got[i].Sub != ref[i].Sub ||
				string(got[i].Payload) != string(ref[i].Payload) {
				t.Fatalf("%s: delivery %d differs over lossy UDP: %+v vs %+v", id, i, got[i], ref[i])
			}
		}
	}
	// The lossy path must actually have been lossy for the run to prove
	// anything; seeded injection guarantees it, the kernel path makes it
	// overwhelmingly likely under a floor-sized receive buffer.
	var dropped uint64
	for _, ep := range eps {
		s := ep.Stats()
		dropped += s.TxLossInjected
	}
	t.Logf("injected loss: %d datagrams", dropped)
}
