//go:build linux && (amd64 || arm64)

package udpnet

import (
	"encoding/binary"
	"fmt"
	"net"
	"runtime"
	"syscall"
	"unsafe"
)

// The batched datapath speaks sendmmsg/recvmmsg directly through the
// raw syscall interface so the module stays stdlib-only: the frozen
// syscall package predates sendmmsg on some architectures (amd64 lists
// SYS_RECVMMSG but not SYS_SENDMMSG), so the numbers live in the
// per-arch sysnum files next to this one.

const batchSupported = true

// sendmmsgChunk bounds the mmsghdr vector length of one sendmmsg call.
const sendmmsgChunk = 64

// mmsghdr mirrors struct mmsghdr: a msghdr plus the kernel-filled
// datagram length. Go pads the struct to the platform msghdr alignment,
// matching the C layout on the architectures this file builds for.
type mmsghdr struct {
	hdr syscall.Msghdr
	n   uint32
}

// batchState is the platform half of an endpoint: the raw connection,
// the resolved peer sockaddrs, and the preallocated syscall vectors
// owned by the send and receive loops.
type batchState struct {
	rc syscall.RawConn

	// Peer sockaddr table, parallel to Endpoint.peers.
	sas    []syscall.RawSockaddrAny
	salens []uint32

	// Send-loop scratch (sendLoop goroutine only): one iovec pair
	// [header, payload] per gathered frame, one mmsghdr per
	// (frame, peer) datagram.
	iovs []syscall.Iovec
	ents []mmsghdr

	// Receive-loop scratch (readLoop goroutine only): pooled
	// maxDatagram buffers, one per recvmmsg slot.
	rbufs [][]byte
	riovs []syscall.Iovec
	rents []mmsghdr
}

// newBatchState resolves the raw connection and peer sockaddrs and
// preallocates the syscall vectors.
func newBatchState(e *Endpoint) (*batchState, error) {
	rc, err := e.conn.SyscallConn()
	if err != nil {
		return nil, fmt.Errorf("udpnet: raw conn: %w", err)
	}
	local := e.conn.LocalAddr().(*net.UDPAddr)
	v6 := local.IP.To4() == nil
	bs := &batchState{
		rc:     rc,
		sas:    make([]syscall.RawSockaddrAny, len(e.peers)),
		salens: make([]uint32, len(e.peers)),
		iovs:   make([]syscall.Iovec, 0, 2*sendGather),
		ents:   make([]mmsghdr, 0, sendGather*len(e.peers)),
		rbufs:  make([][]byte, recvBatch),
		riovs:  make([]syscall.Iovec, recvBatch),
		rents:  make([]mmsghdr, recvBatch),
	}
	for i, p := range e.peers {
		n, err := putSockaddr(&bs.sas[i], p.addr, v6)
		if err != nil {
			return nil, fmt.Errorf("udpnet: peer %q: %w", p.id, err)
		}
		bs.salens[i] = n
	}
	for i := range bs.rbufs {
		bs.rbufs[i] = make([]byte, maxDatagram)
		bs.riovs[i].Base = &bs.rbufs[i][0]
		bs.riovs[i].SetLen(maxDatagram)
		bs.rents[i].hdr.Iov = &bs.riovs[i]
		bs.rents[i].hdr.Iovlen = 1
	}
	return bs, nil
}

// putSockaddr encodes a UDP address into a raw sockaddr matching the
// local socket's family (v4 peers become v4-mapped on a v6 socket) and
// returns the sockaddr length.
func putSockaddr(sa *syscall.RawSockaddrAny, a *net.UDPAddr, v6 bool) (uint32, error) {
	if ip4 := a.IP.To4(); ip4 != nil && !v6 {
		p := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		p.Family = syscall.AF_INET
		binary.BigEndian.PutUint16((*[2]byte)(unsafe.Pointer(&p.Port))[:], uint16(a.Port))
		copy(p.Addr[:], ip4)
		return syscall.SizeofSockaddrInet4, nil
	}
	ip16 := a.IP.To16()
	if ip16 == nil {
		return 0, fmt.Errorf("unsupported address %v", a)
	}
	p := (*syscall.RawSockaddrInet6)(unsafe.Pointer(sa))
	p.Family = syscall.AF_INET6
	binary.BigEndian.PutUint16((*[2]byte)(unsafe.Pointer(&p.Port))[:], uint16(a.Port))
	copy(p.Addr[:], ip16)
	if a.Zone != "" {
		ifi, err := net.InterfaceByName(a.Zone)
		if err != nil {
			return 0, fmt.Errorf("zone %q: %w", a.Zone, err)
		}
		p.Scope_id = uint32(ifi.Index)
	}
	return syscall.SizeofSockaddrInet6, nil
}

// sendFramesBatched transmits every gathered frame to every peer,
// packing up to sendmmsgChunk datagrams into each sendmmsg call. The
// shared header and each payload travel as separate iovecs, so payload
// bytes are never copied. Runs on the sendLoop goroutine.
func (e *Endpoint) sendFramesBatched(frames [][]byte) {
	bs := e.bs
	iovs := bs.iovs[:0]
	for _, f := range frames {
		hi := syscall.Iovec{Base: &e.hdr[0]}
		hi.SetLen(len(e.hdr))
		pi := syscall.Iovec{}
		if len(f) > 0 {
			pi.Base = &f[0]
			pi.SetLen(len(f))
		}
		iovs = append(iovs, hi, pi)
	}
	ents := bs.ents[:0]
	for i := range frames {
		for pi := range e.peers {
			if e.dropTx() {
				continue
			}
			var m mmsghdr
			m.hdr.Name = (*byte)(unsafe.Pointer(&bs.sas[pi]))
			m.hdr.Namelen = bs.salens[pi]
			m.hdr.Iov = &iovs[2*i]
			m.hdr.Iovlen = 2
			ents = append(ents, m)
		}
	}
	if len(ents) == 0 {
		return
	}
	off := 0
	// The callback may be re-entered after waiting for writability;
	// off carries the progress across entries.
	err := bs.rc.Write(func(fd uintptr) bool {
		for off < len(ents) {
			n := len(ents) - off
			if n > sendmmsgChunk {
				n = sendmmsgChunk
			}
			r, _, errno := syscall.Syscall6(sysSENDMMSG, fd,
				uintptr(unsafe.Pointer(&ents[off])), uintptr(n), 0, 0, 0)
			switch errno {
			case 0:
				e.txDatagrams.Add(uint64(r))
				off += int(r)
				if r == 0 {
					off++ // cannot happen, but never spin
				}
			case syscall.EINTR:
				// retry
			case syscall.EAGAIN:
				return false
			default:
				// Per-datagram refusal (e.g. a bounced ICMP error
				// surfacing on the error queue): count it, skip one
				// datagram, keep the rest of the batch moving.
				e.txErrors.Add(1)
				off++
			}
		}
		return true
	})
	_ = err // socket closed mid-flush: remaining datagrams are lost, as on the wire
	runtime.KeepAlive(frames)
	runtime.KeepAlive(iovs)
}

// readLoopBatched drains the socket with recvmmsg into the pooled
// buffers, then validates and queues each datagram.
func (e *Endpoint) readLoopBatched() {
	defer e.wg.Done()
	bs := e.bs
	for {
		var n int
		var operr syscall.Errno
		err := bs.rc.Read(func(fd uintptr) bool {
			for {
				r, _, errno := syscall.Syscall6(sysRECVMMSG, fd,
					uintptr(unsafe.Pointer(&bs.rents[0])), uintptr(len(bs.rents)), 0, 0, 0)
				switch errno {
				case 0:
					n = int(r)
					return true
				case syscall.EINTR:
					// retry
				case syscall.EAGAIN:
					return false
				default:
					operr = errno
					return true
				}
			}
		})
		if err != nil {
			return // socket closed
		}
		if operr != 0 {
			if e.closed.Load() {
				return
			}
			continue // transient error-queue hit; keep receiving
		}
		if n > 0 {
			e.rxBatches.Add(1)
		}
		for i := 0; i < n; i++ {
			m := &bs.rents[i]
			e.deliverFrame(bs.rbufs[i][:m.n], m.hdr.Flags&syscall.MSG_TRUNC != 0)
			m.hdr.Flags = 0
		}
	}
}
