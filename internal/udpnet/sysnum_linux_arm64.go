//go:build linux && arm64

package udpnet

// From the generic unistd.h table (linux/arm64 uses the asm-generic
// numbers).
const (
	sysSENDMMSG = 269
	sysRECVMMSG = 243
)
