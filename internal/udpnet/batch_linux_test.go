//go:build linux && (amd64 || arm64)

package udpnet

import (
	"syscall"
	"testing"
	"unsafe"
)

// TestMmsghdrLayout pins the struct mmsghdr ABI the raw syscalls depend
// on: the kernel expects a 64-byte record (msghdr + msg_len padded to
// msghdr alignment) on both architectures this file builds for.
func TestMmsghdrLayout(t *testing.T) {
	if got := unsafe.Sizeof(mmsghdr{}); got != 64 {
		t.Fatalf("sizeof(mmsghdr) = %d, want 64", got)
	}
	if got := unsafe.Offsetof(mmsghdr{}.n); got != unsafe.Sizeof(syscall.Msghdr{}) {
		t.Fatalf("offsetof(mmsghdr.n) = %d, want %d", got, unsafe.Sizeof(syscall.Msghdr{}))
	}
}

// TestBatchedEnabledOnLinux pins that the default configuration actually
// takes the sendmmsg/recvmmsg path on supported platforms — otherwise
// the A/B benchmarks would silently compare the fallback with itself.
func TestBatchedEnabledOnLinux(t *testing.T) {
	reg := freeRegistry(t, "n")
	e, err := Listen("n", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = e.Close() }()
	if !e.Batched() {
		t.Fatal("default endpoint not batched on linux")
	}
	d, err := ListenConfig("n", Registry{"n": "127.0.0.1:0"}, Config{DisableBatching: true})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = d.Close() }()
	if d.Batched() {
		t.Fatal("DisableBatching endpoint still batched")
	}
}
