//go:build linux && amd64

package udpnet

// The frozen syscall package on linux/amd64 lists SYS_RECVMMSG (299)
// but predates sendmmsg; both numbers are pinned here from the kernel's
// syscall_64.tbl.
const (
	sysSENDMMSG = 307
	sysRECVMMSG = 299
)
