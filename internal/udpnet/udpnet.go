// Package udpnet is the real-network transport for the Totem protocol:
// each node binds a UDP socket, and "broadcast" is realized by sending
// the datagram to every peer in a static registry plus looping one copy
// back locally — the deployment shape of the original Totem on a LAN
// segment without IP-multicast support.
//
// udpnet implements the same totem.Transport contract as the simulated
// memnet: unordered, unreliable, broadcast-capable datagram delivery
// with self-delivery. Tests and experiments use memnet for determinism
// and fault injection; udpnet is the production path a domain runs over
// real sockets (cmd/ftdomaind -udp, or one ring member per OS process
// with -node/-registry).
//
// The datapath amortizes per-datagram costs the way the Totem literature
// assumes: Broadcast enqueues onto a bounded outbound queue and a
// dedicated send loop flushes many datagrams per syscall (sendmmsg on
// linux), while the receive loop drains many datagrams per syscall
// (recvmmsg) into pooled buffers. The sender-identity frame header is
// precomputed once and sent as a separate iovec, so payload bytes are
// never copied on the batched transmit path. DisableBatching reproduces
// the original synchronous per-datagram transport for ablation
// (scripts/benchudp.sh and BenchmarkGatewayMultiClientUDP A/B it).
//
// Loss is expected and counted, never hidden: outbound-queue overflow,
// inbox overflow, kernel truncation and malformed frames each have a
// counter, exposed as eternalgw_udpnet_* metrics when a registry is
// attached (docs/OBSERVABILITY.md).
package udpnet

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"sync/atomic"

	"eternalgw/internal/memnet"
	"eternalgw/internal/obs"
)

// ErrClosed reports use of a closed endpoint.
var ErrClosed = errors.New("udpnet: endpoint closed")

// maxDatagram bounds receive buffers. Totem messages are small (the
// token plus bounded bursts of packed application payloads); anything
// larger should be fragmented by the application layer.
const maxDatagram = 64 << 10

const (
	defaultInboxSize  = 4096
	defaultOutboxSize = 4096
	// sendGather bounds how many queued payloads one send-loop flush
	// drains; each flush transmits len(frames)×len(peers) datagrams.
	sendGather = 64
	// recvBatch is how many pooled maxDatagram buffers one recvmmsg
	// call may fill.
	recvBatch = 64
)

// Registry maps node identities to UDP addresses. All nodes of a ring
// share one registry, fixed at configuration time (the paper's gateways
// likewise use dedicated, configured endpoints).
type Registry map[memnet.NodeID]string

// Config tunes an endpoint. The zero value gives the production
// defaults: batched syscalls where the platform supports them, OS
// socket-buffer sizes, 4096-entry queues.
type Config struct {
	// ReadBuffer, when positive, is handed to SetReadBuffer: the kernel
	// receive buffer in bytes. Undersizing it makes the kernel drop
	// datagrams under burst — totem recovers them, at latency cost
	// (docs/OPERATIONS.md "Real-network deployment").
	ReadBuffer int
	// WriteBuffer, when positive, is handed to SetWriteBuffer.
	WriteBuffer int
	// InboxSize bounds the received-packet queue between the socket
	// reader and the protocol; overflow drops are counted. Zero means
	// 4096.
	InboxSize int
	// OutboxSize bounds the outbound queue between Broadcast and the
	// send loop; overflow drops are counted (best-effort, like a full
	// socket buffer). Zero means 4096. Ignored with DisableBatching.
	OutboxSize int
	// DisableBatching turns off syscall amortization: Broadcast frames
	// and writes one datagram per peer synchronously on the caller's
	// goroutine, and the receive loop reads one datagram per syscall —
	// the transport's original shape, kept for ablation benchmarks.
	DisableBatching bool
	// LossRate, when in (0,1], drops that fraction of outbound peer
	// datagrams before they reach the socket, deterministically from
	// LossSeed. Self-delivery is never dropped. This exists so tests can
	// prove totem's recovery over real sockets without depending on
	// kernel-buffer luck; production configs leave it zero.
	LossRate float64
	// LossSeed seeds the LossRate generator.
	LossSeed int64
	// Metrics, when set, exposes the endpoint's counters as
	// eternalgw_udpnet_* series labelled node=<id>. The datapath keeps
	// bare atomics; the registry reads them only at scrape time.
	Metrics *obs.Registry
}

// Stats is a snapshot of an endpoint's datapath counters.
type Stats struct {
	TxDatagrams    uint64 // datagrams handed to the kernel
	TxBatches      uint64 // send-loop flushes (each ≥1 syscall, many datagrams)
	TxQueueDrops   uint64 // broadcasts dropped because the outbound queue was full
	TxErrors       uint64 // datagrams the kernel refused (counted, skipped)
	TxLossInjected uint64 // datagrams dropped by configured loss injection
	RxDatagrams    uint64 // datagrams received from the socket
	RxBatches      uint64 // receive-loop syscall returns that carried ≥1 datagram
	RxInboxDrops   uint64 // received datagrams dropped because the inbox was full
	RxTruncated    uint64 // datagrams the kernel truncated (larger than maxDatagram)
	RxShortFrames  uint64 // frames too short or with a hostile id length
}

// peer is one remote ring member: resolved once at Listen time.
type peer struct {
	id   memnet.NodeID
	addr *net.UDPAddr
}

// Endpoint is one node's UDP attachment. It satisfies totem.Transport.
type Endpoint struct {
	id    memnet.NodeID
	conn  *net.UDPConn
	peers []peer
	// hdr is the precomputed sender-identity frame header (2-byte
	// big-endian id length + id bytes), shared by every datagram this
	// endpoint sends.
	hdr     []byte
	inbox   chan memnet.Packet
	outbox  chan []byte
	batched bool
	bs      *batchState // platform batch machinery; nil when !batched
	// gather is the flush scratch, owned by sendLoop.
	gather [][]byte

	closed atomic.Bool
	quit   chan struct{}
	wg     sync.WaitGroup

	lossMu   sync.Mutex
	lossRate float64
	lossRng  *rand.Rand

	txDatagrams    atomic.Uint64
	txBatches      atomic.Uint64
	txQueueDrops   atomic.Uint64
	txErrors       atomic.Uint64
	txLossInjected atomic.Uint64
	rxDatagrams    atomic.Uint64
	rxBatches      atomic.Uint64
	rxInboxDrops   atomic.Uint64
	rxTruncated    atomic.Uint64
	rxShortFrames  atomic.Uint64
}

// Listen binds the endpoint for id at its registry address with default
// configuration and starts receiving. The registry must contain id.
func Listen(id memnet.NodeID, registry Registry) (*Endpoint, error) {
	return ListenConfig(id, registry, Config{})
}

// ListenConfig is Listen with explicit tuning.
func ListenConfig(id memnet.NodeID, registry Registry, cfg Config) (*Endpoint, error) {
	self, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("udpnet: node %q not in registry", id)
	}
	laddr, err := net.ResolveUDPAddr("udp", self)
	if err != nil {
		return nil, fmt.Errorf("udpnet: resolve %q: %w", self, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, err
	}
	if cfg.ReadBuffer > 0 {
		if err := conn.SetReadBuffer(cfg.ReadBuffer); err != nil {
			_ = conn.Close()
			return nil, fmt.Errorf("udpnet: SetReadBuffer(%d): %w", cfg.ReadBuffer, err)
		}
	}
	if cfg.WriteBuffer > 0 {
		if err := conn.SetWriteBuffer(cfg.WriteBuffer); err != nil {
			_ = conn.Close()
			return nil, fmt.Errorf("udpnet: SetWriteBuffer(%d): %w", cfg.WriteBuffer, err)
		}
	}
	inboxSize := cfg.InboxSize
	if inboxSize <= 0 {
		inboxSize = defaultInboxSize
	}
	outboxSize := cfg.OutboxSize
	if outboxSize <= 0 {
		outboxSize = defaultOutboxSize
	}
	idb := []byte(id)
	e := &Endpoint{
		id:      id,
		conn:    conn,
		hdr:     append([]byte{byte(len(idb) >> 8), byte(len(idb))}, idb...),
		inbox:   make(chan memnet.Packet, inboxSize),
		batched: !cfg.DisableBatching && batchSupported,
		quit:    make(chan struct{}),
	}
	if cfg.LossRate > 0 {
		e.lossRate = cfg.LossRate
		e.lossRng = rand.New(rand.NewSource(cfg.LossSeed))
	}
	// Deterministic peer order so the platform sockaddr table and any
	// injected loss pattern are reproducible across runs.
	ids := make([]string, 0, len(registry))
	for p := range registry {
		if p != id {
			ids = append(ids, string(p))
		}
	}
	sort.Strings(ids)
	for _, p := range ids {
		ua, err := net.ResolveUDPAddr("udp", registry[memnet.NodeID(p)])
		if err != nil {
			_ = conn.Close()
			return nil, fmt.Errorf("udpnet: resolve peer %q at %q: %w", p, registry[memnet.NodeID(p)], err)
		}
		e.peers = append(e.peers, peer{id: memnet.NodeID(p), addr: ua})
	}
	if e.batched {
		bs, err := newBatchState(e)
		if err != nil {
			_ = conn.Close()
			return nil, err
		}
		e.bs = bs
		e.outbox = make(chan []byte, outboxSize)
		e.gather = make([][]byte, 0, sendGather)
		e.wg.Add(1)
		go e.sendLoop()
	}
	e.registerMetrics(cfg.Metrics)
	e.wg.Add(1)
	if e.batched {
		go e.readLoopBatched()
	} else {
		go e.readLoopSequential()
	}
	return e, nil
}

// Addr returns the bound UDP address (useful with ":0" registries in
// tests; production registries use fixed ports so peers can be
// configured statically).
func (e *Endpoint) Addr() string { return e.conn.LocalAddr().String() }

// ID implements totem.Transport.
func (e *Endpoint) ID() memnet.NodeID { return e.id }

// Recv implements totem.Transport.
func (e *Endpoint) Recv() <-chan memnet.Packet { return e.inbox }

// Batched reports whether the endpoint amortizes syscalls (false on
// platforms without sendmmsg/recvmmsg or with DisableBatching).
func (e *Endpoint) Batched() bool { return e.batched }

// Broadcast implements totem.Transport: one datagram to every peer plus
// a local loopback copy (IP-multicast loopback semantics). Delivery is
// best-effort, as on a real network; totem recovers losses. The payload
// is not copied on the batched path; as with memnet, callers must not
// mutate it after broadcasting.
func (e *Endpoint) Broadcast(payload []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if e.batched {
		select {
		case e.outbox <- payload:
		default:
			// Bounded queue overflow: drop, like a full socket buffer.
			e.txQueueDrops.Add(1)
		}
		e.deliverLocal(payload)
		return nil
	}
	// Per-datagram ablation path: frame into a fresh buffer and issue
	// one blocking syscall per peer on the caller's goroutine — the
	// transport's original shape.
	frame := make([]byte, 0, len(e.hdr)+len(payload))
	frame = append(append(frame, e.hdr...), payload...)
	for i := range e.peers {
		if e.dropTx() {
			continue
		}
		if _, err := e.conn.WriteToUDP(frame, e.peers[i].addr); err != nil {
			e.txErrors.Add(1)
			continue
		}
		e.txDatagrams.Add(1)
	}
	e.deliverLocal(payload)
	return nil
}

// dropTx applies the configured deterministic loss injection to one
// outbound peer datagram.
func (e *Endpoint) dropTx() bool {
	if e.lossRate == 0 {
		return false
	}
	e.lossMu.Lock()
	drop := e.lossRng.Float64() < e.lossRate
	e.lossMu.Unlock()
	if drop {
		e.txLossInjected.Add(1)
	}
	return drop
}

// deliverLocal loops one copy of the broadcast back to the local inbox.
// The payload is aliased, not copied (the Broadcast contract already
// forbids mutation after sending, exactly as memnet does).
func (e *Endpoint) deliverLocal(payload []byte) {
	select {
	case e.inbox <- memnet.Packet{From: e.id, Payload: payload}:
	default:
		e.rxInboxDrops.Add(1)
	}
}

// sendLoop drains the outbound queue: each wakeup gathers up to
// sendGather queued payloads into one flush so the platform layer can
// put many datagrams into each syscall. Broadcast never transmits
// inline — on a machine with few cores an inline "fast path" wins every
// race against would-be queuers and degrades every flush to a single
// frame, forfeiting the amortization this queue exists to buy.
func (e *Endpoint) sendLoop() {
	defer e.wg.Done()
	for {
		var first []byte
		select {
		case first = <-e.outbox:
		case <-e.quit:
			return
		}
		e.flush(first)
	}
}

// flush transmits first plus everything gathered from the outbound
// queue in one batched flush. Only sendLoop calls it; it owns e.gather
// and the platform batch scratch.
func (e *Endpoint) flush(first []byte) {
	frames := append(e.gather[:0], first)
	for len(frames) < sendGather {
		select {
		case f := <-e.outbox:
			frames = append(frames, f)
		default:
			goto flush
		}
	}
flush:
	e.sendFramesBatched(frames)
	e.txBatches.Add(1)
	// Drop the payload references so flushed buffers do not outlive
	// their batch.
	for i := range frames {
		frames[i] = nil
	}
	e.gather = frames
}

// readLoopSequential is the per-datagram receive path (ablation mode and
// platforms without recvmmsg): one syscall and one pooled buffer per
// datagram.
func (e *Endpoint) readLoopSequential() {
	defer e.wg.Done()
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		e.rxBatches.Add(1)
		e.deliverFrame(buf[:n], false)
	}
}

// deliverFrame validates one received datagram's sender-id framing and
// queues the decoded packet. The frame buffer is only borrowed: the
// payload is copied out because the inbox consumer holds it
// indefinitely while the receive buffers are pooled.
func (e *Endpoint) deliverFrame(frame []byte, truncated bool) {
	e.rxDatagrams.Add(1)
	if truncated {
		// The kernel cut the datagram's tail off: the payload is
		// unusable, and a sane sender never exceeds maxDatagram.
		e.rxTruncated.Add(1)
		return
	}
	from, payload, ok := decodeFrame(frame)
	if !ok {
		e.rxShortFrames.Add(1)
		return
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	select {
	case e.inbox <- memnet.Packet{From: from, Payload: cp}:
	default:
		e.rxInboxDrops.Add(1)
	}
}

// decodeFrame splits a wire frame into its sender identity and payload.
// The returned payload aliases the frame. It rejects frames shorter than
// the length prefix and hostile id lengths pointing past the frame end.
func decodeFrame(frame []byte) (from memnet.NodeID, payload []byte, ok bool) {
	if len(frame) < 2 {
		return "", nil, false
	}
	idLen := int(frame[0])<<8 | int(frame[1])
	if idLen == 0 || 2+idLen > len(frame) {
		return "", nil, false
	}
	return memnet.NodeID(frame[2 : 2+idLen]), frame[2+idLen:], true
}

// Stats returns a snapshot of the endpoint's counters.
func (e *Endpoint) Stats() Stats {
	return Stats{
		TxDatagrams:    e.txDatagrams.Load(),
		TxBatches:      e.txBatches.Load(),
		TxQueueDrops:   e.txQueueDrops.Load(),
		TxErrors:       e.txErrors.Load(),
		TxLossInjected: e.txLossInjected.Load(),
		RxDatagrams:    e.rxDatagrams.Load(),
		RxBatches:      e.rxBatches.Load(),
		RxInboxDrops:   e.rxInboxDrops.Load(),
		RxTruncated:    e.rxTruncated.Load(),
		RxShortFrames:  e.rxShortFrames.Load(),
	}
}

// registerMetrics publishes the endpoint counters on the registry.
func (e *Endpoint) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	lbl := obs.Labels{"node": string(e.id)}
	for _, c := range []struct {
		name, help string
		fn         func() uint64
	}{
		{"eternalgw_udpnet_tx_datagrams_total", "UDP datagrams handed to the kernel.", e.txDatagrams.Load},
		{"eternalgw_udpnet_tx_batches_total", "Send-loop flushes, each transmitting many datagrams per syscall.", e.txBatches.Load},
		{"eternalgw_udpnet_tx_queue_drops_total", "Broadcasts dropped because the outbound queue was full.", e.txQueueDrops.Load},
		{"eternalgw_udpnet_tx_errors_total", "Outbound datagrams the kernel refused.", e.txErrors.Load},
		{"eternalgw_udpnet_tx_loss_injected_total", "Outbound datagrams dropped by configured loss injection.", e.txLossInjected.Load},
		{"eternalgw_udpnet_rx_datagrams_total", "UDP datagrams received from the socket.", e.rxDatagrams.Load},
		{"eternalgw_udpnet_rx_batches_total", "Receive-loop syscall returns that carried at least one datagram.", e.rxBatches.Load},
		{"eternalgw_udpnet_rx_inbox_drops_total", "Received datagrams dropped because the inbox was full.", e.rxInboxDrops.Load},
		{"eternalgw_udpnet_rx_truncated_total", "Received datagrams the kernel truncated.", e.rxTruncated.Load},
		{"eternalgw_udpnet_rx_short_frames_total", "Received frames rejected by sender-id framing validation.", e.rxShortFrames.Load},
	} {
		reg.CounterFunc(c.name, c.help, lbl, c.fn)
	}
}

// Close shuts the socket down and stops the send and receive loops.
func (e *Endpoint) Close() error {
	if e.closed.Swap(true) {
		return nil
	}
	close(e.quit)
	err := e.conn.Close()
	e.wg.Wait()
	return err
}
