// Package udpnet is a real-network transport for the Totem protocol:
// each node binds a UDP socket, and "broadcast" is realized by sending
// the datagram to every peer in a static registry plus looping one copy
// back locally — the deployment shape of the original Totem on a LAN
// segment without IP-multicast support.
//
// udpnet implements the same totem.Transport contract as the simulated
// memnet: unordered, unreliable, broadcast-capable datagram delivery
// with self-delivery. Tests and experiments use memnet for determinism
// and fault injection; udpnet exists so a domain can run over real
// sockets (cmd/ftdomaind -udp).
package udpnet

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"eternalgw/internal/memnet"
)

// ErrClosed reports use of a closed endpoint.
var ErrClosed = errors.New("udpnet: endpoint closed")

// maxDatagram bounds receive buffers. Totem messages are small (the
// token plus bounded bursts of application payloads); anything larger
// should be fragmented by the application layer.
const maxDatagram = 64 << 10

const inboxSize = 4096

// Registry maps node identities to UDP addresses. All nodes of a ring
// share one registry, fixed at configuration time (the paper's gateways
// likewise use dedicated, configured endpoints).
type Registry map[memnet.NodeID]string

// Endpoint is one node's UDP attachment. It satisfies totem.Transport.
type Endpoint struct {
	id    memnet.NodeID
	conn  *net.UDPConn
	peers map[memnet.NodeID]*net.UDPAddr
	inbox chan memnet.Packet

	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

// Listen binds the endpoint for id at its registry address and starts
// receiving. The registry must contain id.
func Listen(id memnet.NodeID, registry Registry) (*Endpoint, error) {
	self, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("udpnet: node %q not in registry", id)
	}
	laddr, err := net.ResolveUDPAddr("udp", self)
	if err != nil {
		return nil, fmt.Errorf("udpnet: resolve %q: %w", self, err)
	}
	conn, err := net.ListenUDP("udp", laddr)
	if err != nil {
		return nil, err
	}
	e := &Endpoint{
		id:    id,
		conn:  conn,
		peers: make(map[memnet.NodeID]*net.UDPAddr, len(registry)),
		inbox: make(chan memnet.Packet, inboxSize),
		done:  make(chan struct{}),
	}
	for peer, addr := range registry {
		if peer == id {
			continue
		}
		ua, err := net.ResolveUDPAddr("udp", addr)
		if err != nil {
			_ = conn.Close()
			return nil, fmt.Errorf("udpnet: resolve peer %q at %q: %w", peer, addr, err)
		}
		e.peers[peer] = ua
	}
	go e.readLoop()
	return e, nil
}

// Addr returns the bound UDP address (useful with ":0" registries in
// tests; production registries use fixed ports so peers can be
// configured statically).
func (e *Endpoint) Addr() string { return e.conn.LocalAddr().String() }

// ID implements totem.Transport.
func (e *Endpoint) ID() memnet.NodeID { return e.id }

// Recv implements totem.Transport.
func (e *Endpoint) Recv() <-chan memnet.Packet { return e.inbox }

// Broadcast implements totem.Transport: one datagram to every peer plus
// a local loopback copy (IP-multicast loopback semantics).
func (e *Endpoint) Broadcast(payload []byte) error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return ErrClosed
	}
	e.mu.Unlock()

	frame := e.frame(payload)
	for _, addr := range e.peers {
		// Best-effort, as on a real network; totem recovers losses.
		_, _ = e.conn.WriteToUDP(frame, addr)
	}
	e.deliverLocal(payload)
	return nil
}

// frame prepends the sender identity (length-prefixed) to the payload.
func (e *Endpoint) frame(payload []byte) []byte {
	id := []byte(e.id)
	out := make([]byte, 0, 2+len(id)+len(payload))
	out = append(out, byte(len(id)>>8), byte(len(id)))
	out = append(out, id...)
	return append(out, payload...)
}

func (e *Endpoint) deliverLocal(payload []byte) {
	cp := make([]byte, len(payload))
	copy(cp, payload)
	select {
	case e.inbox <- memnet.Packet{From: e.id, Payload: cp}:
	default: // inbox overflow: drop, like a full socket buffer
	}
}

func (e *Endpoint) readLoop() {
	buf := make([]byte, maxDatagram)
	for {
		n, _, err := e.conn.ReadFromUDP(buf)
		if err != nil {
			close(e.done)
			return
		}
		if n < 2 {
			continue
		}
		idLen := int(buf[0])<<8 | int(buf[1])
		if 2+idLen > n {
			continue
		}
		from := memnet.NodeID(buf[2 : 2+idLen])
		payload := make([]byte, n-2-idLen)
		copy(payload, buf[2+idLen:n])
		select {
		case e.inbox <- memnet.Packet{From: from, Payload: payload}:
		default:
		}
	}
}

// Close shuts the socket down and stops the receive loop.
func (e *Endpoint) Close() error {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return nil
	}
	e.closed = true
	e.mu.Unlock()
	err := e.conn.Close()
	<-e.done
	return err
}
