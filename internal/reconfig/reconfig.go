// Package reconfig implements online reconfiguration of the replica and
// gateway groups of a fault tolerance domain: numbered membership views
// driven through the totem/replication total order, and the elasticity
// operations built on them — grow, shrink, replace and rolling upgrade
// of a live group under traffic.
//
// A view change is just another totally-ordered message (replication's
// KindJoinGroup / KindLeaveGroup / KindViewChange), so every replica
// installs the same numbered view at the same sequence number; there is
// no separate agreement round. A joining replica catches up by state
// transfer: the donor sends its latest application checkpoint plus the
// logged invocations after it (internal/logrec), and the joiner replays
// only that bounded suffix — never history from zero (the checkpoint +
// message-log recovery shape of the Eternal papers).
//
// The coordinator is mechanism, not policy: it executes one membership
// operation at a time against the replication layer. Policy — which
// groups exist, what their factories are, when to reconfigure — stays
// with ftmgmt.Manager, which drives this package.
package reconfig

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"eternalgw/internal/memnet"
	"eternalgw/internal/obs"
	"eternalgw/internal/replication"
)

// Errors reported by the coordinator.
var (
	ErrNoHosts     = errors.New("reconfig: no hosts available")
	ErrNotMember   = errors.New("reconfig: node is not a member of the group")
	ErrLastReplica = errors.New("reconfig: refusing to remove the last replica")
)

// Factory creates a fresh application instance for a replica.
type Factory func() (replication.Application, error)

// Host is one processor available for replica placement.
type Host struct {
	ID memnet.NodeID
	RM *replication.Mechanisms
}

// Coordinator executes membership operations against a domain's
// replication layer. Operations on one coordinator are serialized: each
// grow/shrink/replace step is an ordered view change, and overlapping
// operations on the same group would race each other's placement
// decisions.
type Coordinator struct {
	mu      sync.Mutex
	hosts   []Host
	timeout time.Duration
	log     *obs.Logger // nil until Instrument
	reg     *obs.Registry
	gauged  map[replication.GroupID]bool

	opMu sync.Mutex // serializes membership operations

	grows           atomic.Uint64
	shrinks         atomic.Uint64
	replaces        atomic.Uint64
	rollingUpgrades atomic.Uint64
	failures        atomic.Uint64
}

// New creates a coordinator over the given hosts. timeout bounds each
// synchronization step (state transfer, view installation); zero means
// 10s.
func New(timeout time.Duration, hosts ...Host) *Coordinator {
	if timeout == 0 {
		timeout = 10 * time.Second
	}
	return &Coordinator{
		hosts:   append([]Host(nil), hosts...),
		timeout: timeout,
		gauged:  make(map[replication.GroupID]bool),
	}
}

// Instrument connects the coordinator to the observability subsystem:
// operation counters plus a per-group view-number gauge registered for
// every group the coordinator touches. Nil arguments are no-ops.
func (c *Coordinator) Instrument(reg *obs.Registry, log *obs.Logger) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg = reg
	c.log = log.With("reconfig")
	if reg == nil {
		return
	}
	for _, m := range []struct {
		name, help string
		fn         func() uint64
	}{
		{"eternalgw_reconfig_grows_total", "Grow operations completed (one replica added).", c.grows.Load},
		{"eternalgw_reconfig_shrinks_total", "Shrink operations completed (one replica evicted).", c.shrinks.Load},
		{"eternalgw_reconfig_replaces_total", "Replace operations completed (one replica swapped for a fresh one).", c.replaces.Load},
		{"eternalgw_reconfig_rolling_upgrades_total", "Rolling upgrades completed (every replica of a group replaced).", c.rollingUpgrades.Load},
		{"eternalgw_reconfig_failures_total", "Reconfiguration operations that failed partway.", c.failures.Load},
	} {
		reg.CounterFunc(m.name, m.help, nil, m.fn)
	}
}

// gaugeGroup publishes the view number of one group. Callers hold mu.
func (c *Coordinator) gaugeGroup(id replication.GroupID) {
	if c.reg == nil || c.gauged[id] || len(c.hosts) == 0 {
		return
	}
	c.gauged[id] = true
	rm := c.hosts[0].RM
	c.reg.GaugeFunc("eternalgw_reconfig_group_view",
		"Current membership view number of a reconfigured object group.",
		obs.Labels{"group": fmt.Sprintf("%d", id)},
		func() float64 {
			v, _ := rm.View(id)
			return float64(v.Number)
		})
}

// AddHost makes a processor available for placement.
func (c *Coordinator) AddHost(h Host) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, existing := range c.hosts {
		if existing.ID == h.ID {
			return
		}
	}
	c.hosts = append(c.hosts, h)
}

// RemoveHost withdraws a processor from placement decisions.
func (c *Coordinator) RemoveHost(id memnet.NodeID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	kept := c.hosts[:0]
	for _, h := range c.hosts {
		if h.ID != id {
			kept = append(kept, h)
		}
	}
	c.hosts = kept
}

// anyRM returns some host's mechanisms for domain-wide queries.
func (c *Coordinator) anyRM() (*replication.Mechanisms, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.hosts) == 0 {
		return nil, ErrNoHosts
	}
	return c.hosts[0].RM, nil
}

func (c *Coordinator) hostByID(id memnet.NodeID) (Host, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, h := range c.hosts {
		if h.ID == id {
			return h, true
		}
	}
	return Host{}, false
}

// load counts replicas placed on each host across every group in the
// directory.
func (c *Coordinator) load(rm *replication.Mechanisms) map[memnet.NodeID]int {
	out := make(map[memnet.NodeID]int)
	for _, id := range rm.Groups() {
		for _, node := range rm.Members(id) {
			out[node]++
		}
	}
	return out
}

// candidates returns hosts ordered by ascending load (ties by id),
// excluding the given nodes.
func (c *Coordinator) candidates(rm *replication.Mechanisms, exclude map[memnet.NodeID]bool) []Host {
	loads := c.load(rm)
	c.mu.Lock()
	hosts := append([]Host(nil), c.hosts...)
	c.mu.Unlock()
	var out []Host
	for _, h := range hosts {
		if !exclude[h.ID] {
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if loads[out[i].ID] != loads[out[j].ID] {
			return loads[out[i].ID] < loads[out[j].ID]
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// addReplica starts one replica of the group on the least loaded
// non-member host and waits until it has caught up (state transferred,
// view installed). It returns the view the join produced.
func (c *Coordinator) addReplica(id replication.GroupID, factory Factory) (replication.View, error) {
	rm, err := c.anyRM()
	if err != nil {
		return replication.View{}, err
	}
	exclude := make(map[memnet.NodeID]bool)
	for _, node := range rm.Members(id) {
		exclude[node] = true
	}
	for _, h := range c.candidates(rm, exclude) {
		app, err := factory()
		if err != nil {
			return replication.View{}, fmt.Errorf("reconfig: factory for group %d: %w", id, err)
		}
		if err := h.RM.JoinGroup(id, app); err != nil {
			continue // e.g. a racing join; try the next host
		}
		if err := h.RM.WaitSynced(id, c.timeout); err != nil {
			return replication.View{}, fmt.Errorf("reconfig: replica of group %d on %s: %w", id, h.ID, err)
		}
		v, _ := h.RM.View(id)
		return v, nil
	}
	return replication.View{}, fmt.Errorf("group %d: %w", id, ErrNoHosts)
}

// evict removes one member through an ordered view change and waits
// until the evicted node itself has installed the new view (so its host
// slot is immediately reusable for a re-join).
func (c *Coordinator) evict(id replication.GroupID, node memnet.NodeID) (replication.View, error) {
	rm, err := c.anyRM()
	if err != nil {
		return replication.View{}, err
	}
	waitOn := rm
	if h, ok := c.hostByID(node); ok {
		waitOn = h.RM
	}
	prev, ok := waitOn.View(id)
	if !ok {
		return replication.View{}, fmt.Errorf("group %d: %w", id, replication.ErrNoSuchGroup)
	}
	if err := rm.EvictMembers(id, node); err != nil {
		return replication.View{}, err
	}
	if err := waitOn.WaitForView(id, prev.Number+1, c.timeout); err != nil {
		return replication.View{}, fmt.Errorf("reconfig: evict %s from group %d: %w", node, id, err)
	}
	v, _ := waitOn.View(id)
	return v, nil
}

// AddReplica starts one replica on the least loaded non-member host and
// waits for it to catch up, like Grow, but without counting the
// operation: it is the placement primitive the Resource Manager uses for
// failure replacements, which are accounted separately from operator
// grows.
func (c *Coordinator) AddReplica(id replication.GroupID, factory Factory) (replication.View, error) {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	return c.addReplica(id, factory)
}

// Grow adds one replica to the group on the least loaded non-member
// host, returning the view the join produced.
func (c *Coordinator) Grow(id replication.GroupID, factory Factory) (replication.View, error) {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	c.mu.Lock()
	c.gaugeGroup(id)
	c.mu.Unlock()
	v, err := c.addReplica(id, factory)
	if err != nil {
		c.failures.Add(1)
		return v, err
	}
	c.grows.Add(1)
	c.log.Infof("group %d: grew to %d replicas (view %d)", id, len(v.Members), v.Number)
	return v, nil
}

// Shrink evicts the group's newest replica (the last in join order, so
// the primary of passive groups is disturbed last), returning the view
// the eviction produced.
func (c *Coordinator) Shrink(id replication.GroupID) (replication.View, error) {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	c.mu.Lock()
	c.gaugeGroup(id)
	c.mu.Unlock()
	rm, err := c.anyRM()
	if err != nil {
		return replication.View{}, err
	}
	members := rm.Members(id)
	if len(members) == 0 {
		return replication.View{}, fmt.Errorf("group %d: %w", id, replication.ErrNoSuchGroup)
	}
	if len(members) == 1 {
		return replication.View{}, fmt.Errorf("group %d: %w", id, ErrLastReplica)
	}
	v, err := c.evict(id, members[len(members)-1])
	if err != nil {
		c.failures.Add(1)
		return v, err
	}
	c.shrinks.Add(1)
	c.log.Infof("group %d: shrank to %d replicas (view %d)", id, len(v.Members), v.Number)
	return v, nil
}

// Replace swaps one member of the group for a fresh replica built by
// factory, preserving the group's state through checkpoint + log-replay
// transfer. With a spare host available the replacement joins (and
// catches up) before the old member is evicted, so the replication
// degree never drops; on a fully packed domain the old member is
// evicted first and its host immediately reused, which requires at
// least one surviving replica to donate state.
func (c *Coordinator) Replace(id replication.GroupID, old memnet.NodeID, factory Factory) (replication.View, error) {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	v, err := c.replaceLocked(id, old, factory)
	if err != nil {
		c.failures.Add(1)
		return v, err
	}
	c.replaces.Add(1)
	return v, nil
}

func (c *Coordinator) replaceLocked(id replication.GroupID, old memnet.NodeID, factory Factory) (replication.View, error) {
	c.mu.Lock()
	c.gaugeGroup(id)
	c.mu.Unlock()
	rm, err := c.anyRM()
	if err != nil {
		return replication.View{}, err
	}
	members := rm.Members(id)
	isMember := false
	for _, node := range members {
		if node == old {
			isMember = true
			break
		}
	}
	if !isMember {
		return replication.View{}, fmt.Errorf("group %d, node %s: %w", id, old, ErrNotMember)
	}
	c.mu.Lock()
	spare := len(c.hosts) > len(members)
	c.mu.Unlock()
	if !spare && len(members) == 1 {
		// Evict-first would lose the only copy of the state and
		// grow-first has nowhere to place: a packed singleton cannot be
		// replaced online.
		return replication.View{}, fmt.Errorf("group %d: replacing the only replica needs a spare host: %w", id, ErrNoHosts)
	}
	if spare {
		if _, err := c.addReplica(id, factory); err != nil {
			return replication.View{}, err
		}
		v, err := c.evict(id, old)
		if err != nil {
			return v, err
		}
		c.log.Infof("group %d: replaced %s (view %d)", id, old, v.Number)
		return v, nil
	}
	if _, err := c.evict(id, old); err != nil {
		return replication.View{}, err
	}
	v, err := c.addReplica(id, factory)
	if err != nil {
		return v, err
	}
	c.log.Infof("group %d: replaced %s in place (view %d)", id, old, v.Number)
	return v, nil
}

// RollingUpgrade replaces every replica of the group with instances from
// factory, one at a time, under live traffic: each replacement catches
// up by checkpoint + log replay before the next old replica retires, so
// the group keeps executing (and never shrinks below its degree when a
// spare host is available). The new application must accept the old
// application's state encoding.
func (c *Coordinator) RollingUpgrade(id replication.GroupID, factory Factory) (replication.View, error) {
	c.opMu.Lock()
	defer c.opMu.Unlock()
	rm, err := c.anyRM()
	if err != nil {
		return replication.View{}, err
	}
	old := rm.Members(id)
	if len(old) == 0 {
		return replication.View{}, fmt.Errorf("group %d: %w", id, replication.ErrNoSuchGroup)
	}
	var v replication.View
	for _, node := range old {
		if v, err = c.replaceLocked(id, node, factory); err != nil {
			c.failures.Add(1)
			return v, fmt.Errorf("reconfig: rolling upgrade of group %d at %s: %w", id, node, err)
		}
	}
	c.rollingUpgrades.Add(1)
	c.log.Infof("group %d: rolling upgrade complete, %d replicas replaced (view %d)", id, len(old), v.Number)
	return v, nil
}
