package reconfig_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/domain"
	"eternalgw/internal/giop"
	"eternalgw/internal/memnet"
	"eternalgw/internal/obs"
	"eternalgw/internal/reconfig"
	"eternalgw/internal/replication"
	"eternalgw/internal/totem"
)

const (
	grpObj        replication.GroupID = 400
	keyObj                            = "reconfig/obj"
	cpInterval                        = 8
	syncedTimeout                     = 5 * time.Second
)

func fastDomain(t *testing.T, nodes int) *domain.Domain {
	t.Helper()
	d, err := domain.New(domain.Config{
		Name:  "reconfig",
		Nodes: nodes,
		Totem: totem.Config{
			IdleHold:        100 * time.Microsecond,
			TokenRetransmit: 10 * time.Millisecond,
			FailTimeout:     80 * time.Millisecond,
			GatherTimeout:   20 * time.Millisecond,
		},
		Replication: replication.Config{CheckpointInterval: cpInterval},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

func coordinatorFor(d *domain.Domain) *reconfig.Coordinator {
	hosts := make([]reconfig.Host, 0, d.Nodes())
	for i := 0; i < d.Nodes(); i++ {
		n := d.Node(i)
		hosts = append(hosts, reconfig.Host{ID: n.ID, RM: n.RM})
	}
	return reconfig.New(syncedTimeout, hosts...)
}

// newGroup creates the object group and grows it to the given degree
// through the coordinator.
func newGroup(t *testing.T, d *domain.Domain, c *reconfig.Coordinator, degree int, factory reconfig.Factory) {
	t.Helper()
	if err := d.Node(0).RM.CreateGroup(grpObj, replication.Active, []byte(keyObj)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < d.Nodes(); i++ {
		if err := d.Node(i).RM.WaitForGroup(grpObj, syncedTimeout); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < degree; i++ {
		if _, err := c.Grow(grpObj, factory); err != nil {
			t.Fatalf("grow %d: %v", i, err)
		}
	}
}

// counterApp counts invocations and reports a build version; used to
// observe state transfer and rolling upgrades.
type counterApp struct {
	version int64

	mu  sync.Mutex
	ops int64
}

func (a *counterApp) Invoke(op string, args *cdr.Reader, reply *cdr.Writer) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch op {
	case "bump":
		a.ops++
		reply.WriteLongLong(a.ops)
		return nil
	case "version":
		reply.WriteLongLong(a.version)
		return nil
	default:
		return fmt.Errorf("counterApp: unknown op %q", op)
	}
}

func (a *counterApp) State() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteLongLong(a.ops)
	return w.Bytes(), nil
}

func (a *counterApp) SetState(state []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := cdr.NewReader(state, cdr.BigEndian)
	a.ops = r.ReadLongLong()
	return r.Err()
}

func factoryV(version int64) reconfig.Factory {
	return func() (replication.Application, error) {
		return &counterApp{version: version}, nil
	}
}

// invoke drives one invocation from a client-only member of the gateway
// group on node i and returns the reply's first long long.
func invoke(t *testing.T, d *domain.Domain, i int, reqID uint32, op string) int64 {
	t.Helper()
	rm := d.Node(i).RM
	if err := rm.JoinGroup(domain.DefaultGatewayGroup, nil); err != nil && !errors.Is(err, replication.ErrAlreadyMember) {
		t.Fatal(err)
	}
	if err := rm.WaitSynced(domain.DefaultGatewayGroup, syncedTimeout); err != nil {
		t.Fatal(err)
	}
	rep, err := rm.Invoke(domain.DefaultGatewayGroup, 1, grpObj,
		replication.OperationID{ChildSeq: reqID},
		giop.Request{RequestID: reqID, ResponseExpected: true, ObjectKey: []byte(keyObj), Operation: op},
		syncedTimeout)
	if err != nil {
		t.Fatalf("invoke %s: %v", op, err)
	}
	r := cdr.NewReader(rep.Result, rep.ResultOrder)
	v := r.ReadLongLong()
	if err := r.Err(); err != nil {
		t.Fatalf("invoke %s: decode reply: %v", op, err)
	}
	return v
}

func memberSet(nodes []memnet.NodeID) map[memnet.NodeID]bool {
	out := make(map[memnet.NodeID]bool, len(nodes))
	for _, n := range nodes {
		out[n] = true
	}
	return out
}

func sumStats(d *domain.Domain) replication.Stats {
	var total replication.Stats
	for i := 0; i < d.Nodes(); i++ {
		st := d.Node(i).RM.Stats()
		total.ViewChanges += st.ViewChanges
		total.TransfersCheckpointed += st.TransfersCheckpointed
		total.TransfersFullState += st.TransfersFullState
		total.TransferEntriesReplayed += st.TransferEntriesReplayed
		total.CatchupCheckpoints += st.CatchupCheckpoints
	}
	return total
}

// TestGrowCatchesUpFromCheckpoint grows a loaded degree-2 group to three
// replicas and verifies the joiner caught up from a checkpoint plus a
// bounded log suffix, not by replaying history from zero.
func TestGrowCatchesUpFromCheckpoint(t *testing.T) {
	d := fastDomain(t, 3)
	c := coordinatorFor(d)
	newGroup(t, d, c, 2, factoryV(1))

	const ops = 20
	reqID := uint32(0)
	for i := 0; i < ops; i++ {
		reqID++
		if got := invoke(t, d, 0, reqID, "bump"); got != int64(i+1) {
			t.Fatalf("bump %d: ops = %d", i+1, got)
		}
	}

	before := sumStats(d)
	prev, ok := d.Node(0).RM.View(grpObj)
	if !ok {
		t.Fatal("no view for group")
	}
	v, err := c.Grow(grpObj, factoryV(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Members) != 3 {
		t.Fatalf("view members = %v, want 3", v.Members)
	}
	if v.Number != prev.Number+1 {
		t.Fatalf("view number = %d, want %d", v.Number, prev.Number+1)
	}

	after := sumStats(d)
	if got := after.TransfersCheckpointed - before.TransfersCheckpointed; got == 0 {
		t.Fatal("joiner was not fed from a checkpoint")
	}
	replayed := after.TransferEntriesReplayed - before.TransferEntriesReplayed
	if replayed > cpInterval {
		t.Fatalf("joiner replayed %d entries, want at most the checkpoint interval (%d)", replayed, cpInterval)
	}

	// The group keeps executing with carried state: the next operation
	// observes every one of the pre-grow invocations.
	reqID++
	if got := invoke(t, d, 0, reqID, "bump"); got != ops+1 {
		t.Fatalf("post-grow ops = %d, want %d", got, ops+1)
	}
}

// TestShrinkEvictsNewestMember checks that Shrink removes the most
// recently joined replica through an ordered view change every node
// installs.
func TestShrinkEvictsNewestMember(t *testing.T) {
	d := fastDomain(t, 3)
	c := coordinatorFor(d)
	newGroup(t, d, c, 3, factoryV(1))

	members := d.Node(0).RM.Members(grpObj)
	if len(members) != 3 {
		t.Fatalf("members = %v, want 3", members)
	}
	newest := members[len(members)-1]

	v, err := c.Shrink(grpObj)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Members) != 2 {
		t.Fatalf("view members = %v, want 2", v.Members)
	}
	if memberSet(v.Members)[newest] {
		t.Fatalf("newest member %s survived the shrink: %v", newest, v.Members)
	}
	for i := 0; i < d.Nodes(); i++ {
		rm := d.Node(i).RM
		if err := rm.WaitForView(grpObj, v.Number, syncedTimeout); err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		nv, _ := rm.View(grpObj)
		if nv.Number != v.Number || len(nv.Members) != len(v.Members) {
			t.Fatalf("node %d installed view %d %v, want %d %v", i, nv.Number, nv.Members, v.Number, v.Members)
		}
	}

	if _, err := c.Shrink(grpObj); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Shrink(grpObj); !errors.Is(err, reconfig.ErrLastReplica) {
		t.Fatalf("shrink to zero: err = %v, want ErrLastReplica", err)
	}
}

// TestReplacePackedDomainPreservesState replaces a member when every
// host already holds a replica, forcing the evict-first path where the
// freed host is reused and state is donated by the survivor.
func TestReplacePackedDomainPreservesState(t *testing.T) {
	d := fastDomain(t, 2)
	c := coordinatorFor(d)
	newGroup(t, d, c, 2, factoryV(1))

	const ops = 5
	reqID := uint32(0)
	for i := 0; i < ops; i++ {
		reqID++
		invoke(t, d, 0, reqID, "bump")
	}

	old := d.Node(0).RM.Members(grpObj)[0]
	v, err := c.Replace(grpObj, old, factoryV(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Members) != 2 {
		t.Fatalf("view members = %v, want 2", v.Members)
	}
	if !memberSet(v.Members)[old] {
		t.Fatalf("freed host %s was not reused: %v", old, v.Members)
	}

	reqID++
	if got := invoke(t, d, 0, reqID, "bump"); got != ops+1 {
		t.Fatalf("post-replace ops = %d, want %d", got, ops+1)
	}

	if _, err := c.Replace(grpObj, memnet.NodeID("reconfig-nope"), factoryV(2)); !errors.Is(err, reconfig.ErrNotMember) {
		t.Fatalf("replace non-member: err = %v, want ErrNotMember", err)
	}
}

// TestRollingUpgradeCarriesState upgrades every replica of a live group
// and verifies both the version change and the carried operation count.
func TestRollingUpgradeCarriesState(t *testing.T) {
	d := fastDomain(t, 3)
	c := coordinatorFor(d)
	newGroup(t, d, c, 2, factoryV(1))

	const ops = 3
	reqID := uint32(0)
	for i := 0; i < ops; i++ {
		reqID++
		invoke(t, d, 0, reqID, "bump")
	}
	if got := invoke(t, d, 0, 100, "version"); got != 1 {
		t.Fatalf("pre-upgrade version = %d, want 1", got)
	}

	v, err := c.RollingUpgrade(grpObj, factoryV(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Members) != 2 {
		t.Fatalf("view members = %v, want degree preserved at 2", v.Members)
	}

	if got := invoke(t, d, 0, 101, "version"); got != 2 {
		t.Fatalf("post-upgrade version = %d, want 2", got)
	}
	reqID++
	if got := invoke(t, d, 0, reqID, "bump"); got != ops+1 {
		t.Fatalf("post-upgrade ops = %d, want %d", got, ops+1)
	}
}

// TestCoordinatorMetrics checks the operation counters and per-group
// view gauge surface through the registry.
func TestCoordinatorMetrics(t *testing.T) {
	d := fastDomain(t, 3)
	c := coordinatorFor(d)
	reg := obs.NewRegistry()
	c.Instrument(reg, nil)
	newGroup(t, d, c, 2, factoryV(1))

	if _, err := c.Shrink(grpObj); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"eternalgw_reconfig_grows_total 2",
		"eternalgw_reconfig_shrinks_total 1",
		"eternalgw_reconfig_failures_total 0",
		`eternalgw_reconfig_group_view{group="400"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
