package naming_test

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/domain"
	"eternalgw/internal/ftmgmt"
	"eternalgw/internal/ior"
	"eternalgw/internal/naming"
	"eternalgw/internal/orb"
	"eternalgw/internal/replication"
	"eternalgw/internal/totem"
)

const nameGroup replication.GroupID = 400

func newDomainWithNaming(t *testing.T, nodes, replicas int) (*domain.Domain, *naming.Resolver, *orb.Conn) {
	t.Helper()
	d, err := domain.New(domain.Config{
		Name:  "ns",
		Nodes: nodes,
		Totem: totem.Config{
			IdleHold:        100 * time.Microsecond,
			TokenRetransmit: 10 * time.Millisecond,
			FailTimeout:     80 * time.Millisecond,
			GatherTimeout:   20 * time.Millisecond,
		},
		GatewayInvokeTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	err = d.Manager().CreateReplicatedObject(nameGroup, ftmgmt.Properties{
		Style:           replication.Active,
		InitialReplicas: replicas,
		MinReplicas:     1,
		ObjectKey:       []byte(naming.ObjectKey),
		TypeID:          naming.TypeID,
	}, func() (replication.Application, error) { return naming.NewService(), nil })
	if err != nil {
		t.Fatal(err)
	}
	gw, err := d.AddGateway(nodes-1, "")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := orb.Dial(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	return d, naming.ViaConn(conn), conn
}

func sampleRef(host string) ior.Ref {
	return ior.New("IDL:App/Svc:1.0", ior.IIOPProfile{Host: host, Port: 9000, ObjectKey: []byte("svc")})
}

func TestBindResolveRoundTrip(t *testing.T) {
	_, res, _ := newDomainWithNaming(t, 3, 2)
	ref := sampleRef("gw.example")
	if err := res.Bind("trading/exchange", ref); err != nil {
		t.Fatal(err)
	}
	got, err := res.Resolve("trading/exchange")
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != ref.String() {
		t.Fatalf("resolved %q, want %q", got.String(), ref.String())
	}
}

func TestBindDuplicateRejected(t *testing.T) {
	_, res, _ := newDomainWithNaming(t, 2, 1)
	if err := res.Bind("x", sampleRef("a")); err != nil {
		t.Fatal(err)
	}
	err := res.Bind("x", sampleRef("b"))
	var sysEx *orb.SystemException
	if !errors.As(err, &sysEx) || sysEx.RepoID != naming.RepoAlreadyBound {
		t.Fatalf("err = %v, want AlreadyBound", err)
	}
	// Rebind replaces.
	if err := res.Rebind("x", sampleRef("b")); err != nil {
		t.Fatal(err)
	}
	got, err := res.Resolve("x")
	if err != nil {
		t.Fatal(err)
	}
	p, _ := got.PrimaryProfile()
	if p.Host != "b" {
		t.Fatalf("resolved host = %q", p.Host)
	}
}

func TestResolveUnknownName(t *testing.T) {
	_, res, _ := newDomainWithNaming(t, 2, 1)
	_, err := res.Resolve("nope")
	var sysEx *orb.SystemException
	if !errors.As(err, &sysEx) || sysEx.RepoID != naming.RepoNotFound {
		t.Fatalf("err = %v, want NotFound", err)
	}
}

func TestUnbindAndList(t *testing.T) {
	_, res, _ := newDomainWithNaming(t, 2, 1)
	for _, name := range []string{"b", "a", "c"} {
		if err := res.Bind(name, sampleRef(name)); err != nil {
			t.Fatal(err)
		}
	}
	names, err := res.List()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(names, []string{"a", "b", "c"}) {
		t.Fatalf("list = %v", names)
	}
	if err := res.Unbind("b"); err != nil {
		t.Fatal(err)
	}
	names, _ = res.List()
	if !reflect.DeepEqual(names, []string{"a", "c"}) {
		t.Fatalf("list after unbind = %v", names)
	}
	var sysEx *orb.SystemException
	if err := res.Unbind("b"); !errors.As(err, &sysEx) || sysEx.RepoID != naming.RepoNotFound {
		t.Fatalf("double unbind err = %v", err)
	}
}

func TestNamingSurvivesReplicaCrash(t *testing.T) {
	// The name service is just another replicated object: bindings
	// survive the crash of the replica's processor.
	d, res, _ := newDomainWithNaming(t, 4, 2)
	if err := res.Bind("durable", sampleRef("keep")); err != nil {
		t.Fatal(err)
	}
	victim := d.Node(3).RM.Members(nameGroup)[0]
	for i := 0; i < d.Nodes(); i++ {
		if d.Node(i).ID == victim {
			d.CrashNode(i)
			break
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for len(d.Node(3).RM.Members(nameGroup)) != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("membership never settled: %v", d.Node(3).RM.Members(nameGroup))
		}
		time.Sleep(5 * time.Millisecond)
	}
	got, err := res.Resolve("durable")
	if err != nil {
		t.Fatal(err)
	}
	p, _ := got.PrimaryProfile()
	if p.Host != "keep" {
		t.Fatalf("resolved host = %q after crash", p.Host)
	}
}

func TestEndToEndDiscoveryThroughNaming(t *testing.T) {
	// The full pattern: a client holding only the name-service IOR
	// discovers and invokes an application object.
	d, res, conn := newDomainWithNaming(t, 3, 1)

	// Deploy an application object and bind its published IOR.
	const appGroup replication.GroupID = 401
	appKey := []byte("app/counter")
	err := d.Manager().CreateReplicatedObject(appGroup, ftmgmt.Properties{
		Style:           replication.Active,
		InitialReplicas: 2,
		MinReplicas:     1,
		ObjectKey:       appKey,
	}, func() (replication.Application, error) { return naming.NewService(), nil })
	if err != nil {
		t.Fatal(err)
	}
	appRef, err := d.PublishIOR("IDL:App/Svc:1.0", appKey)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Bind("app", appRef); err != nil {
		t.Fatal(err)
	}

	// The client resolves "app" and invokes it (here: a nested naming
	// service reused as the app, exercising bind through the resolved
	// reference).
	got, err := res.Resolve("app")
	if err != nil {
		t.Fatal(err)
	}
	p, err := got.PrimaryProfile()
	if err != nil {
		t.Fatal(err)
	}
	appRes := naming.NewResolver(func(op string, args []byte) (*cdr.Reader, error) {
		return conn.Call(p.ObjectKey, op, args, orb.InvokeOptions{})
	})
	if err := appRes.Bind("inner", sampleRef("deep")); err != nil {
		t.Fatal(err)
	}
	inner, err := appRes.Resolve("inner")
	if err != nil {
		t.Fatal(err)
	}
	ip, _ := inner.PrimaryProfile()
	if ip.Host != "deep" {
		t.Fatalf("inner host = %q", ip.Host)
	}
}
