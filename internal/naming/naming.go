// Package naming is a CosNaming-style name service for fault tolerance
// domains: a replicated object mapping names to stringified object
// references. The paper notes that Eternal's own management objects "are
// themselves implemented as collections of CORBA objects and, thus, can
// themselves be replicated and thereby benefit from Eternal's fault
// tolerance capabilities" (section 2) — the name service demonstrates
// the same pattern: it is an ordinary replication.Application, placed by
// the Replication Manager, invoked through gateways like any other
// object, and it survives replica failures like any other object.
//
// Clients hold only the name service's IOR (pointing, as always, at the
// gateways); every other reference is obtained by Resolve.
package naming

import (
	"fmt"
	"sort"
	"sync"

	"eternalgw/internal/cdr"
	"eternalgw/internal/ior"
	"eternalgw/internal/orb"
	"eternalgw/internal/replication"
)

// Conventional addressing for the name service.
const (
	// ObjectKey is the CORBA object key the service registers under.
	ObjectKey = "omg.org/NameService"
	// TypeID is the repository id used in published IORs.
	TypeID = "IDL:omg.org/CosNaming/NamingContext:1.0"
)

// Exception repository ids raised by the service.
const (
	RepoNotFound     = "IDL:omg.org/CosNaming/NamingContext/NotFound:1.0"
	RepoAlreadyBound = "IDL:omg.org/CosNaming/NamingContext/AlreadyBound:1.0"
)

// Service is the replicated name service application. It is
// deterministic: its state depends only on the totally-ordered
// bind/rebind/unbind stream.
type Service struct {
	mu      sync.Mutex
	entries map[string]string // name -> stringified IOR
}

var _ replication.Application = (*Service)(nil)

// NewService returns an empty name service.
func NewService() *Service {
	return &Service{entries: make(map[string]string)}
}

// Invoke implements the servant operations: bind, rebind, resolve,
// unbind, list.
func (s *Service) Invoke(op string, args *cdr.Reader, reply *cdr.Writer) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	switch op {
	case "bind":
		name := args.ReadString()
		ref := args.ReadString()
		if err := args.Err(); err != nil {
			return err
		}
		if _, ok := s.entries[name]; ok {
			return &orb.SystemException{RepoID: RepoAlreadyBound}
		}
		s.entries[name] = ref
		return nil
	case "rebind":
		name := args.ReadString()
		ref := args.ReadString()
		if err := args.Err(); err != nil {
			return err
		}
		s.entries[name] = ref
		return nil
	case "resolve":
		name := args.ReadString()
		if err := args.Err(); err != nil {
			return err
		}
		ref, ok := s.entries[name]
		if !ok {
			return &orb.SystemException{RepoID: RepoNotFound}
		}
		reply.WriteString(ref)
		return nil
	case "unbind":
		name := args.ReadString()
		if err := args.Err(); err != nil {
			return err
		}
		if _, ok := s.entries[name]; !ok {
			return &orb.SystemException{RepoID: RepoNotFound}
		}
		delete(s.entries, name)
		return nil
	case "list":
		names := make([]string, 0, len(s.entries))
		for name := range s.entries {
			names = append(names, name)
		}
		sort.Strings(names)
		reply.WriteULong(uint32(len(names)))
		for _, name := range names {
			reply.WriteString(name)
		}
		return nil
	default:
		return fmt.Errorf("naming: unknown operation %q", op)
	}
}

// State implements replication.Application.
func (s *Service) State() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	names := make([]string, 0, len(s.entries))
	for name := range s.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteULong(uint32(len(names)))
	for _, name := range names {
		w.WriteString(name)
		w.WriteString(s.entries[name])
	}
	return w.Bytes(), nil
}

// SetState implements replication.Application.
func (s *Service) SetState(state []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	r := cdr.NewReader(state, cdr.BigEndian)
	n := r.ReadULong()
	// Each entry is two strings of at least four bytes (their length
	// prefixes); a count that cannot fit is hostile or corrupt and must
	// not size the allocation.
	if r.Err() != nil || int(n) > r.Remaining()/8 {
		return fmt.Errorf("naming: set state: bad entry count %d", n)
	}
	entries := make(map[string]string, n)
	for i := uint32(0); i < n; i++ {
		name := r.ReadString()
		entries[name] = r.ReadString()
	}
	if err := r.Err(); err != nil {
		return err
	}
	s.entries = entries
	return nil
}

// CallFunc is any invoker reaching the name service: a gateway
// connection, the enhanced client layer, or an in-domain diverted
// connection.
type CallFunc func(op string, args []byte) (*cdr.Reader, error)

// Resolver is the client side of the name service.
type Resolver struct {
	call CallFunc
}

// NewResolver wraps an invoker.
func NewResolver(call CallFunc) *Resolver {
	return &Resolver{call: call}
}

// ViaConn builds a resolver over a plain ORB connection to a gateway.
func ViaConn(conn *orb.Conn) *Resolver {
	return NewResolver(func(op string, args []byte) (*cdr.Reader, error) {
		return conn.Call([]byte(ObjectKey), op, args, orb.InvokeOptions{})
	})
}

// Bind registers ref under name; it fails if the name is taken.
func (r *Resolver) Bind(name string, ref ior.Ref) error {
	_, err := r.call("bind", nameRefArgs(name, ref))
	return err
}

// Rebind registers ref under name, replacing any existing binding.
func (r *Resolver) Rebind(name string, ref ior.Ref) error {
	_, err := r.call("rebind", nameRefArgs(name, ref))
	return err
}

// Resolve looks a name up and parses the bound reference.
func (r *Resolver) Resolve(name string) (ior.Ref, error) {
	rd, err := r.call("resolve", nameArgs(name))
	if err != nil {
		return ior.Ref{}, err
	}
	s := rd.ReadString()
	if err := rd.Err(); err != nil {
		return ior.Ref{}, err
	}
	return ior.Parse(s)
}

// Unbind removes a binding.
func (r *Resolver) Unbind(name string) error {
	_, err := r.call("unbind", nameArgs(name))
	return err
}

// List returns all bound names, sorted.
func (r *Resolver) List() ([]string, error) {
	rd, err := r.call("list", nil)
	if err != nil {
		return nil, err
	}
	n := rd.ReadULong()
	if rd.Err() != nil || int(n) > rd.Remaining()/4 {
		return nil, fmt.Errorf("naming: list: bad name count %d", n)
	}
	names := make([]string, 0, n)
	for i := uint32(0); i < n; i++ {
		names = append(names, rd.ReadString())
	}
	if err := rd.Err(); err != nil {
		return nil, err
	}
	return names, nil
}

func nameArgs(name string) []byte {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteString(name)
	return w.Bytes()
}

func nameRefArgs(name string, ref ior.Ref) []byte {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteString(name)
	w.WriteString(ref.String())
	return w.Bytes()
}
