package core_test

import (
	"net"
	"testing"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/giop"
	"eternalgw/internal/orb"
	"eternalgw/internal/replication"
)

// dialRawGateway opens a plain TCP connection to a fresh single-gateway
// domain and returns it with the gateway address.
func dialRawGateway(t *testing.T) (net.Conn, string) {
	t.Helper()
	d := fastDomain(t, "rb", 2)
	deployRegister(t, d, replication.Active, 1)
	gw, err := d.AddGateway(1, "")
	if err != nil {
		t.Fatal(err)
	}
	nc, err := orb.DialRaw(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = nc.Close() })
	return nc, gw.Addr()
}

func TestGatewaySurvivesGarbageBytes(t *testing.T) {
	nc, addr := dialRawGateway(t)
	// Not a GIOP stream at all.
	if _, err := nc.Write([]byte("GET / HTTP/1.1\r\nHost: x\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	// The gateway drops this connection but keeps serving others.
	time.Sleep(20 * time.Millisecond)
	conn, err := orb.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Call([]byte(keyRegister), "ops", nil, orb.InvokeOptions{}); err != nil {
		t.Fatalf("gateway wedged by garbage: %v", err)
	}
}

func TestGatewaySurvivesTruncatedHeader(t *testing.T) {
	nc, addr := dialRawGateway(t)
	if _, err := nc.Write([]byte("GIOP")); err != nil {
		t.Fatal(err)
	}
	_ = nc.Close() // half a header, then gone
	conn, err := orb.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Call([]byte(keyRegister), "ops", nil, orb.InvokeOptions{}); err != nil {
		t.Fatalf("gateway wedged by truncated header: %v", err)
	}
}

func TestGatewaySurvivesMalformedRequestBody(t *testing.T) {
	nc, addr := dialRawGateway(t)
	// Valid header, garbage body that fails Request decoding.
	msg := giop.Message{
		Header: giop.Header{Major: 1, Minor: 0, Order: cdr.BigEndian, Type: giop.MsgRequest},
		Body:   []byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3},
	}
	if err := giop.WriteMessage(nc, msg); err != nil {
		t.Fatal(err)
	}
	// The gateway answers with MessageError (or drops the connection);
	// either way it keeps serving.
	time.Sleep(20 * time.Millisecond)
	conn, err := orb.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Call([]byte(keyRegister), "ops", nil, orb.InvokeOptions{}); err != nil {
		t.Fatalf("gateway wedged by malformed body: %v", err)
	}
}

func TestGatewaySurvivesDeclaredHugeMessage(t *testing.T) {
	nc, addr := dialRawGateway(t)
	// Header declaring a body near the 16 MiB cap, never delivered.
	hdr := []byte{'G', 'I', 'O', 'P', 1, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF}
	if _, err := nc.Write(hdr); err != nil {
		t.Fatal(err)
	}
	conn, err := orb.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Call([]byte(keyRegister), "ops", nil, orb.InvokeOptions{}); err != nil {
		t.Fatalf("gateway wedged by oversized declaration: %v", err)
	}
}

func TestORBServerSurvivesGarbage(t *testing.T) {
	s, err := orb.NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	s.Register([]byte("k"), orb.ServantFunc(func(string, *cdr.Reader, *cdr.Writer) error { return nil }))

	nc, err := orb.DialRaw(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	_, _ = nc.Write([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	_ = nc.Close()

	conn, err := orb.Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Call([]byte("k"), "op", nil, orb.InvokeOptions{}); err != nil {
		t.Fatalf("server wedged by garbage: %v", err)
	}
}

func TestGatewayShutdownNotifiesClients(t *testing.T) {
	d := fastDomain(t, "sd", 2)
	deployRegister(t, d, replication.Active, 1)
	gw, err := d.AddGateway(1, "")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := orb.Dial(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Call([]byte(keyRegister), "ops", nil, orb.InvokeOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := gw.Shutdown(); err != nil {
		t.Fatal(err)
	}
	// The next call must fail promptly (orderly close), not hang until
	// the invocation timeout.
	start := time.Now()
	_, err = conn.Call([]byte(keyRegister), "ops", nil, orb.InvokeOptions{Timeout: 5 * time.Second})
	if err == nil {
		t.Fatal("call through shut-down gateway succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("close notification not honoured: failed only after %v", elapsed)
	}
}

func TestCancelRequestSuppressesReply(t *testing.T) {
	// CORBA CancelRequest semantics at the gateway: the operation still
	// executes (it is already in the total order), but the client has
	// declared it no longer wants the reply, so none is written.
	d := fastDomain(t, "cx", 2)
	apps := deployRegister(t, d, replication.Active, 1)
	gw, err := d.AddGateway(1, "")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := orb.DialRaw(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = raw.Close() }()

	// A slow operation, then an immediate cancel for it.
	reqMsg, err := giop.EncodeRequest(cdr.BigEndian, giop.Request{
		RequestID:        1,
		ResponseExpected: true,
		ObjectKey:        []byte(keyRegister),
		Operation:        "work",
		Args:             workArgs(100, []byte("w")),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := giop.WriteMessage(raw, reqMsg); err != nil {
		t.Fatal(err)
	}
	if err := giop.WriteMessage(raw, giop.EncodeCancelRequest(cdr.BigEndian, giop.CancelRequest{RequestID: 1})); err != nil {
		t.Fatal(err)
	}
	// A second, uncancelled request on the same connection.
	req2, err := giop.EncodeRequest(cdr.BigEndian, giop.Request{
		RequestID:        2,
		ResponseExpected: true,
		ObjectKey:        []byte(keyRegister),
		Operation:        "ops",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := giop.WriteMessage(raw, req2); err != nil {
		t.Fatal(err)
	}
	// The first (and only) reply on the wire must answer request 2.
	_ = raw.SetReadDeadline(time.Now().Add(5 * time.Second))
	got, err := giop.ReadMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := giop.DecodeReply(got)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RequestID != 2 {
		t.Fatalf("reply for request %d arrived; the cancelled reply was not suppressed", rep.RequestID)
	}
	// The cancelled operation still executed.
	waitInt(t, func() int64 { return apps[0].totalOps() }, 1, "cancelled op execution")
}

// workArgs builds the RegisterApp "work" arguments.
func workArgs(ms uint32, data []byte) []byte {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteULong(ms)
	w.WriteOctetSeq(data)
	return w.Bytes()
}
