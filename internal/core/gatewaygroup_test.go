package core_test

import (
	"testing"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/giop"
	"eternalgw/internal/orb"
	"eternalgw/internal/replication"
)

// enhancedContext builds the section 3.5 service context.
func enhancedContext(id string) []giop.ServiceContext {
	return []giop.ServiceContext{{ID: giop.FTClientContextID, Data: []byte(id)}}
}

func waitCount(t *testing.T, what string, get func() int, want int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for get() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want >= %d", what, get(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestGatewayGroupRecordsRequestsAndResponses(t *testing.T) {
	// Section 3.5: every gateway in the group keeps a record of the
	// requests and responses flowing through any of them.
	d := fastDomain(t, "ny", 4)
	deployRegister(t, d, replication.Active, 2)
	gw1, err := d.AddGateway(2, "")
	if err != nil {
		t.Fatal(err)
	}
	gw2, err := d.AddGateway(3, "")
	if err != nil {
		t.Fatal(err)
	}

	conn, err := orb.Dial(gw1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Call([]byte(keyRegister), "append", encodeOctetSeq([]byte("x")), orb.InvokeOptions{ServiceContexts: enhancedContext("rec-client")}); err != nil {
		t.Fatal(err)
	}
	// gw2 never saw the TCP connection, yet it has the record.
	waitCount(t, "gw2 recorded requests", gw2.RecordedRequests, 1)
	waitCount(t, "gw2 recorded replies", gw2.RecordedReplies, 1)
}

func TestReissueAnsweredFromGatewayGroupRecord(t *testing.T) {
	// After the connected gateway dies, the next gateway answers the
	// client's reissued invocation from its record of the response —
	// without touching the servers.
	d := fastDomain(t, "ny", 4)
	apps := deployRegister(t, d, replication.Active, 2)
	gw1, err := d.AddGateway(2, "")
	if err != nil {
		t.Fatal(err)
	}
	gw2, err := d.AddGateway(3, "")
	if err != nil {
		t.Fatal(err)
	}
	sc := enhancedContext("cache-client")

	conn, err := orb.Dial(gw1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	r, err := conn.Call([]byte(keyRegister), "append", encodeOctetSeq([]byte("x")), orb.InvokeOptions{RequestID: 9, ServiceContexts: sc})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReadLongLong(); got != 1 {
		t.Fatalf("append = %d", got)
	}
	// Wait until gw2's record holds the response, then fail over.
	waitCount(t, "gw2 recorded replies", gw2.RecordedReplies, 1)
	_ = gw1.Close()

	conn2, err := orb.Dial(gw2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn2.Close() }()
	r, err = conn2.Call([]byte(keyRegister), "append", encodeOctetSeq([]byte("x")), orb.InvokeOptions{RequestID: 9, ServiceContexts: sc})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReadLongLong(); got != 1 {
		t.Fatalf("reissue returned %d, want the recorded result 1", got)
	}
	st := gw2.Stats()
	if st.AnsweredFromCache != 1 {
		t.Fatalf("answered-from-cache = %d, want 1 (stats %+v)", st.AnsweredFromCache, st)
	}
	if st.RequestsForwarded != 0 {
		t.Fatalf("gw2 forwarded %d requests; the record should have answered", st.RequestsForwarded)
	}
	if got := apps[0].totalOps(); got != 1 {
		t.Fatalf("server executed %d ops, want 1", got)
	}
}

func TestClientDepartureCleansGatewayState(t *testing.T) {
	// Section 3.5: when a client fails (its connection ends), the
	// gateways inform each other and delete the state stored on the
	// client's behalf. Applies to counter-identified (plain) clients.
	d := fastDomain(t, "ny", 4)
	deployRegister(t, d, replication.Active, 1)
	gw1, err := d.AddGateway(2, "")
	if err != nil {
		t.Fatal(err)
	}
	gw2, err := d.AddGateway(3, "")
	if err != nil {
		t.Fatal(err)
	}

	conn, err := orb.Dial(gw1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Call([]byte(keyRegister), "append", encodeOctetSeq([]byte("x")), orb.InvokeOptions{}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, "gw2 recorded replies", gw2.RecordedReplies, 1)

	// The client departs; both gateways drop its records.
	_ = conn.Close()
	waitCount(t, "gw1 departures", func() int { return int(gw1.Stats().ClientsDeparted) }, 1)
	waitCount(t, "gw2 departures", func() int { return int(gw2.Stats().ClientsDeparted) }, 1)
	deadline := time.Now().Add(3 * time.Second)
	for gw2.RecordedReplies() != 0 || gw1.RecordedReplies() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("records not dropped: gw1=%d gw2=%d", gw1.RecordedReplies(), gw2.RecordedReplies())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestEnhancedClientStateSurvivesDeparture(t *testing.T) {
	// Enhanced clients' identifiers outlive connections (that is the
	// point of section 3.5), so their records are not dropped on
	// disconnect.
	d := fastDomain(t, "ny", 3)
	deployRegister(t, d, replication.Active, 1)
	gw, err := d.AddGateway(2, "")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := orb.Dial(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Call([]byte(keyRegister), "append", encodeOctetSeq([]byte("x")), orb.InvokeOptions{ServiceContexts: enhancedContext("sticky")}); err != nil {
		t.Fatal(err)
	}
	waitCount(t, "recorded replies", gw.RecordedReplies, 1)
	_ = conn.Close()
	time.Sleep(50 * time.Millisecond)
	if gw.RecordedReplies() != 1 {
		t.Fatalf("enhanced client's record dropped on disconnect")
	}
}

func TestLittleEndianClientThroughGateway(t *testing.T) {
	// A client whose ORB marshals little-endian (byte-order flag 1) must
	// interoperate: the gateway re-encodes the reply in the request's
	// byte order.
	d := fastDomain(t, "ny", 3)
	deployRegister(t, d, replication.Active, 1)
	gw, err := d.AddGateway(2, "")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := orb.Dial(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()

	// Hand-roll a little-endian request on the raw connection.
	args := cdr.NewWriter(cdr.LittleEndian)
	args.WriteOctetSeq([]byte("le"))
	msg, err := giop.EncodeRequest(cdr.LittleEndian, giop.Request{
		RequestID:        1,
		ResponseExpected: true,
		ObjectKey:        []byte(keyRegister),
		Operation:        "append",
		Args:             args.Bytes(),
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := orb.DialRaw(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = raw.Close() }()
	if err := giop.WriteMessage(raw, msg); err != nil {
		t.Fatal(err)
	}
	repMsg, err := giop.ReadMessage(raw)
	if err != nil {
		t.Fatal(err)
	}
	if repMsg.Header.Order != cdr.LittleEndian {
		t.Fatalf("reply byte order = %v, want little-endian", repMsg.Header.Order)
	}
	rep, err := giop.DecodeReply(repMsg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != giop.ReplyNoException || rep.RequestID != 1 {
		t.Fatalf("reply = %+v", rep)
	}
	rr := cdr.NewReader(rep.Result, rep.ResultOrder)
	if got := rr.ReadLongLong(); got != 1 {
		t.Fatalf("result = %d", got)
	}
}

func TestVotingStyleThroughGateway(t *testing.T) {
	d := fastDomain(t, "ny", 4)
	deployRegister(t, d, replication.ActiveWithVoting, 3)
	gw, err := d.AddGateway(3, "")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := orb.Dial(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	r, err := conn.Call([]byte(keyRegister), "append", encodeOctetSeq([]byte("v")), orb.InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReadLongLong(); got != 1 {
		t.Fatalf("append = %d", got)
	}
}

func TestGIOP12ClientThroughGateway(t *testing.T) {
	// A GIOP 1.2 client (different request/reply headers, TargetAddress
	// union) must pass through the gateway unchanged: the gateway
	// answers in the version the client spoke.
	d := fastDomain(t, "ny", 3)
	apps := deployRegister(t, d, replication.Active, 2)
	gw, err := d.AddGateway(2, "")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := orb.Dial(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	conn.SetGIOPMinor(2)
	for i := 1; i <= 5; i++ {
		r, err := conn.Call([]byte(keyRegister), "append", encodeOctetSeq([]byte("g")), orb.InvokeOptions{})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got := r.ReadLongLong(); got != int64(i) {
			t.Fatalf("call %d = %d", i, got)
		}
	}
	waitInt(t, func() int64 { return apps[0].totalOps() }, 5, "ops")
}

func TestLargeFragmentedRequestThroughGateway(t *testing.T) {
	// A GIOP 1.2 request large enough to be fragmented on the wire must
	// cross the gateway and come back intact (the reply is fragmented
	// too).
	d := fastDomain(t, "ny", 3)
	deployRegister(t, d, replication.Active, 2)
	gw, err := d.AddGateway(2, "")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := orb.Dial(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	conn.SetGIOPMinor(2)

	payload := make([]byte, 100_000) // > DefaultFragmentSize
	for i := range payload {
		payload[i] = byte(i)
	}
	r, err := conn.Call([]byte(keyRegister), "append", encodeOctetSeq(payload), orb.InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReadLongLong(); got != 1 {
		t.Fatalf("append = %d", got)
	}
	r, err = conn.Call([]byte(keyRegister), "read", nil, orb.InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got := r.ReadOctetSeq()
	if len(got) != len(payload) {
		t.Fatalf("read %d bytes, want %d", len(got), len(payload))
	}
	for i := range got {
		if got[i] != payload[i] {
			t.Fatalf("byte %d corrupted through fragmentation", i)
		}
	}
}

func TestGatewayLocateViaClientAPI(t *testing.T) {
	d := fastDomain(t, "ny", 2)
	deployRegister(t, d, replication.Active, 1)
	gw, err := d.AddGateway(1, "")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := orb.Dial(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	status, err := conn.Locate([]byte(keyRegister), time.Second)
	if err != nil || status != giop.LocateObjectHere {
		t.Fatalf("locate = %v, %v", status, err)
	}
	status, err = conn.Locate([]byte("ghost"), time.Second)
	if err != nil || status != giop.LocateUnknownObject {
		t.Fatalf("locate ghost = %v, %v", status, err)
	}
}
