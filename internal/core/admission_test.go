package core_test

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"eternalgw/internal/admission"
	"eternalgw/internal/cdr"
	"eternalgw/internal/orb"
	"eternalgw/internal/replication"
)

// encodeWork builds the args of the register's "work" op: a server-side
// sleep of ms milliseconds followed by an append. It is how these tests
// make the domain slow deterministically, without touching the network.
func encodeWork(ms uint32, data []byte) []byte {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteULong(ms)
	w.WriteOctetSeq(data)
	return w.Bytes()
}

func waitUint64(t *testing.T, get func() uint64, want uint64, what string) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for get() < want {
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want >= %d", what, get(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestGatewayShedsBeyondWindow(t *testing.T) {
	d := fastDomain(t, "ny", 2)
	deployRegister(t, d, replication.Active, 1)
	gw, err := d.AddGatewayAdmission(0, "", &admission.Config{
		MaxInFlight: 1,
		AdmitWait:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	// One slow invocation occupies the whole window...
	slow, err := orb.Dial(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = slow.Close() }()
	slowDone := make(chan error, 1)
	go func() {
		_, err := slow.Call([]byte(keyRegister), "work", encodeWork(300, []byte("s")), orb.InvokeOptions{})
		slowDone <- err
	}()
	// ...then a second client is shed with TRANSIENT once it has waited
	// out the AdmitWait deadline. Poll until the slow call is in flight.
	waitInt(t, gw.InFlight, 1, "in-flight")
	fast, err := orb.Dial(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = fast.Close() }()
	_, err = fast.Call([]byte(keyRegister), "ops", nil, orb.InvokeOptions{})
	var sysEx *orb.SystemException
	if !errors.As(err, &sysEx) {
		t.Fatalf("err = %v, want a system exception", err)
	}
	if sysEx.RepoID != orb.RepoTransient {
		t.Fatalf("repo id = %s, want TRANSIENT", sysEx.RepoID)
	}
	if sysEx.Minor != admission.ShedWindow.Minor() {
		t.Fatalf("minor = %d, want ShedWindow (%d)", sysEx.Minor, admission.ShedWindow.Minor())
	}
	if sysEx.Completed != 1 {
		t.Fatalf("completed = %d, want COMPLETED_NO", sysEx.Completed)
	}
	if err := <-slowDone; err != nil {
		t.Fatalf("admitted slow call failed: %v", err)
	}
	st := gw.Stats()
	if st.RequestsShed == 0 {
		t.Fatalf("stats = %+v, want RequestsShed > 0", st)
	}
	if s := gw.Admission().Stats(); s.ShedWindow == 0 || s.Admitted == 0 {
		t.Fatalf("admission stats = %+v", s)
	}
}

func TestGatewayRateLimitSheds(t *testing.T) {
	d := fastDomain(t, "ny", 2)
	deployRegister(t, d, replication.Active, 1)
	gw, err := d.AddGatewayAdmission(0, "", &admission.Config{Rate: 0.001, Burst: 2})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := orb.Dial(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	for i := 0; i < 2; i++ {
		if _, err := conn.Call([]byte(keyRegister), "ops", nil, orb.InvokeOptions{}); err != nil {
			t.Fatalf("call %d within burst: %v", i, err)
		}
	}
	_, err = conn.Call([]byte(keyRegister), "ops", nil, orb.InvokeOptions{})
	var sysEx *orb.SystemException
	if !errors.As(err, &sysEx) || sysEx.RepoID != orb.RepoTransient || sysEx.Minor != admission.ShedRate.Minor() {
		t.Fatalf("err = %v, want TRANSIENT/ShedRate", err)
	}
}

func TestGatewayPerClientConnCap(t *testing.T) {
	d := fastDomain(t, "ny", 2)
	deployRegister(t, d, replication.Active, 1)
	gw, err := d.AddGatewayAdmission(0, "", &admission.Config{MaxConnsPerClient: 1})
	if err != nil {
		t.Fatal(err)
	}
	c1, err := orb.Dial(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c1.Close() }()
	if _, err := c1.Call([]byte(keyRegister), "ops", nil, orb.InvokeOptions{}); err != nil {
		t.Fatal(err)
	}
	// The second connection from the same address is shed at accept time
	// with a CloseConnection; an invocation on it fails.
	c2, err := orb.Dial(gw.Addr())
	if err == nil {
		defer func() { _ = c2.Close() }()
		if _, err := c2.Call([]byte(keyRegister), "ops", nil, orb.InvokeOptions{Timeout: 2 * time.Second}); err == nil {
			t.Fatal("call over the per-client cap succeeded")
		}
	}
	waitUint64(t, func() uint64 { return gw.Stats().ConnectionsShed }, 1, "connections shed")
	// Closing the first connection frees the slot for the client again.
	_ = c1.Close()
	deadline := time.Now().Add(3 * time.Second)
	for {
		c3, err := orb.Dial(gw.Addr())
		if err == nil {
			_, err = c3.Call([]byte(keyRegister), "ops", nil, orb.InvokeOptions{Timeout: time.Second})
			_ = c3.Close()
			if err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("connection slot never freed: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestGatewayBreakerShedsConnections(t *testing.T) {
	d := fastDomain(t, "ny", 2)
	deployRegister(t, d, replication.Active, 1)
	var load atomic.Uint64 // signal in thousandths
	gw, err := d.AddGatewayAdmission(0, "", &admission.Config{
		Backpressure:    func() float64 { return float64(load.Load()) / 1000 },
		BreakerSustain:  time.Nanosecond,
		BreakerCooldown: time.Nanosecond,
		BreakerInterval: time.Nanosecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	adm := gw.Admission()
	// Healthy domain: connections are admitted.
	c1, err := orb.Dial(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c1.Call([]byte(keyRegister), "ops", nil, orb.InvokeOptions{}); err != nil {
		t.Fatal(err)
	}
	_ = c1.Close()
	// Sustained overload trips the breaker; new connections are shed.
	load.Store(1000)
	adm.BreakerOpen()
	time.Sleep(time.Millisecond)
	if !adm.BreakerOpen() {
		t.Fatal("breaker did not trip")
	}
	c2, err := orb.Dial(gw.Addr())
	if err == nil {
		if _, err := c2.Call([]byte(keyRegister), "ops", nil, orb.InvokeOptions{Timeout: 2 * time.Second}); err == nil {
			t.Fatal("call through tripped breaker succeeded")
		}
		_ = c2.Close()
	}
	waitUint64(t, func() uint64 { return adm.Stats().ConnsShedBreaker }, 1, "breaker sheds")
	// The domain recovers; after the cooldown the gateway serves again.
	load.Store(0)
	adm.BreakerOpen()
	time.Sleep(time.Millisecond)
	deadline := time.Now().Add(3 * time.Second)
	for {
		c3, err := orb.Dial(gw.Addr())
		if err == nil {
			_, err = c3.Call([]byte(keyRegister), "ops", nil, orb.InvokeOptions{Timeout: time.Second})
			_ = c3.Close()
			if err == nil {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway never recovered from breaker: %v", err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestGatewayDrainBleedsInFlight(t *testing.T) {
	d := fastDomain(t, "ny", 2)
	deployRegister(t, d, replication.Active, 1)
	gw, err := d.AddGatewayAdmission(0, "", &admission.Config{MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := orb.Dial(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	type result struct {
		ops int64
		err error
	}
	done := make(chan result, 1)
	go func() {
		r, err := conn.Call([]byte(keyRegister), "work", encodeWork(150, []byte("d")), orb.InvokeOptions{})
		if err != nil {
			done <- result{err: err}
			return
		}
		done <- result{ops: r.ReadLongLong(), err: r.Err()}
	}()
	waitInt(t, gw.InFlight, 1, "in-flight")
	// Drain must wait for the in-flight invocation and deliver its reply.
	if err := gw.Drain(5 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	res := <-done
	if res.err != nil || res.ops != 1 {
		t.Fatalf("in-flight call during drain: ops=%d err=%v", res.ops, res.err)
	}
	if !gw.Draining() {
		t.Fatal("gateway does not report draining")
	}
	// The listener is gone: no new connections.
	if c, err := orb.Dial(gw.Addr()); err == nil {
		_ = c.Close()
		t.Fatal("dial succeeded after drain")
	}
}

func TestGatewayDrainShedsNewRequests(t *testing.T) {
	d := fastDomain(t, "ny", 2)
	deployRegister(t, d, replication.Active, 1)
	gw, err := d.AddGatewayAdmission(0, "", &admission.Config{MaxInFlight: 8})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := orb.Dial(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Call([]byte(keyRegister), "ops", nil, orb.InvokeOptions{}); err != nil {
		t.Fatal(err)
	}
	// Begin the drain concurrently with a long in-flight call so the
	// established connection is still open to observe the shed.
	hold, err := orb.Dial(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = hold.Close() }()
	holdDone := make(chan error, 1)
	go func() {
		_, err := hold.Call([]byte(keyRegister), "work", encodeWork(300, []byte("h")), orb.InvokeOptions{})
		holdDone <- err
	}()
	waitInt(t, gw.InFlight, 1, "in-flight")
	drainDone := make(chan error, 1)
	go func() { drainDone <- gw.Drain(5 * time.Second) }()
	// Wait until the gateway flips to draining, then send a request on
	// the established connection: it must be shed, not hang.
	deadline := time.Now().Add(time.Second)
	for !gw.Draining() && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	_, err = conn.Call([]byte(keyRegister), "ops", nil, orb.InvokeOptions{Timeout: 2 * time.Second})
	var sysEx *orb.SystemException
	if !errors.As(err, &sysEx) || sysEx.RepoID != orb.RepoTransient || sysEx.Minor != admission.ShedDraining.Minor() {
		t.Fatalf("err = %v, want TRANSIENT/ShedDraining", err)
	}
	if err := <-holdDone; err != nil {
		t.Fatalf("in-flight call during drain: %v", err)
	}
	if err := <-drainDone; err != nil {
		t.Fatalf("drain: %v", err)
	}
}

func TestGatewayConcurrentClientsWithAdmission(t *testing.T) {
	// Generous caps must not change behaviour: the existing concurrency
	// test, with admission on.
	d := fastDomain(t, "ny", 3)
	apps := deployRegister(t, d, replication.Active, 2)
	gw, err := d.AddGatewayAdmission(2, "", &admission.Config{
		MaxConns:    64,
		MaxInFlight: 64,
		Rate:        1e6,
		AdmitWait:   time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	const clients, calls = 6, 10
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := orb.Dial(gw.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer func() { _ = conn.Close() }()
			for i := 0; i < calls; i++ {
				if _, err := conn.Call([]byte(keyRegister), "append", encodeOctetSeq([]byte("x")), orb.InvokeOptions{}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i, app := range apps {
		waitInt(t, func() int64 { return app.totalOps() }, clients*calls, fmt.Sprintf("replica %d", i))
	}
	if shed := gw.Stats().RequestsShed; shed != 0 {
		t.Fatalf("generous admission shed %d requests", shed)
	}
}
