package core

import "sync"

// recordShards is how many locks the gateway-group record is split
// across. Must be a power of two.
const recordShards = 16

// recordStore holds the section 3.5 gateway-group record: the request
// keys seen by the group (to detect reinvocations) and the responses that
// flowed through any gateway (to answer reissued invocations after a
// gateway failure). It is sharded by client identifier so concurrent
// clients do not contend on one lock, and each shard evicts FIFO through
// a ring buffer in O(1) — the former single-map design shifted a shared
// slice (s = s[1:]) per eviction, retaining the backing array and
// serializing every record touch behind the gateway's global mutex.
//
// Sharding by client keeps all of one client's records in one shard, so
// deleting a departed client's state touches a single shard.
type recordStore struct {
	shards [recordShards]recordShard
}

type recordShard struct {
	mu       sync.Mutex
	seen     map[cacheKey]struct{}
	seenRing keyRing
	// replies holds the raw encapsulated IIOP reply bytes as they
	// appeared on the wire: the observer on the replication event loop
	// stores them without decoding, and the rare reissue path decodes on
	// a hit.
	replies     map[cacheKey][]byte
	repliesRing keyRing
}

// keyRing is a fixed-capacity FIFO of cache keys: pushing into a full
// ring overwrites the oldest slot and returns the displaced key so the
// caller can drop its map entry.
type keyRing struct {
	buf  []cacheKey
	head int // index of the oldest entry once the ring is full
	max  int
}

func (r *keyRing) push(k cacheKey) (old cacheKey, evicted bool) {
	if len(r.buf) < r.max {
		r.buf = append(r.buf, k)
		return cacheKey{}, false
	}
	old = r.buf[r.head]
	r.buf[r.head] = k
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	return old, true
}

// compactDrop removes every key of the given client, calling drop for
// each, and preserves the FIFO order of the rest. O(shard size); used
// only for client departures, which run off the replication event loop.
func (r *keyRing) compactDrop(clientID uint64, drop func(cacheKey)) {
	n := len(r.buf)
	if n == 0 {
		return
	}
	kept := make([]cacheKey, 0, n)
	for i := 0; i < n; i++ {
		k := r.buf[(r.head+i)%n]
		if k.clientID == clientID {
			drop(k)
			continue
		}
		kept = append(kept, k)
	}
	r.buf = kept
	r.head = 0
}

// newRecordStore builds a store bounded at roughly capacity entries per
// record kind, split evenly across the shards.
func newRecordStore(capacity int) *recordStore {
	per := (capacity + recordShards - 1) / recordShards
	if per < 1 {
		per = 1
	}
	s := &recordStore{}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.seen = make(map[cacheKey]struct{})
		sh.replies = make(map[cacheKey][]byte)
		sh.seenRing.max = per
		sh.repliesRing.max = per
	}
	return s
}

// shard maps a client identifier to its shard. Fibonacci hashing spreads
// both counter-assigned identifiers (sequential values xor a nonce) and
// enhanced clients' FNV hashes.
func (s *recordStore) shard(clientID uint64) *recordShard {
	return &s.shards[(clientID*0x9E3779B97F4A7C15)>>(64-4)&(recordShards-1)]
}

// noteSeen records a request key and reports whether the group had
// already seen it (a reinvocation).
func (s *recordStore) noteSeen(key cacheKey) bool {
	sh := s.shard(key.clientID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.seen[key]; ok {
		return true
	}
	sh.seen[key] = struct{}{}
	if old, evicted := sh.seenRing.push(key); evicted {
		delete(sh.seen, old)
	}
	return false
}

// storeReply caches a raw response under its operation key; the first
// recorded response wins, matching the deduplication rule. The bytes are
// copied: the caller's slice may alias a delivery buffer (and, with
// packing, the arena shared by a whole datagram), which must not be
// pinned for the record's lifetime.
func (s *recordStore) storeReply(key cacheKey, raw []byte) {
	sh := s.shard(key.clientID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.replies[key]; ok {
		return
	}
	sh.replies[key] = append([]byte(nil), raw...)
	if old, evicted := sh.repliesRing.push(key); evicted {
		delete(sh.replies, old)
	}
}

// reply returns the recorded raw response for an operation key, if any.
func (s *recordStore) reply(key cacheKey) ([]byte, bool) {
	sh := s.shard(key.clientID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	raw, ok := sh.replies[key]
	return raw, ok
}

// dropClient deletes every record kept on a departed client's behalf.
// Only that client's shard is touched.
func (s *recordStore) dropClient(clientID uint64) {
	sh := s.shard(clientID)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.seenRing.compactDrop(clientID, func(k cacheKey) { delete(sh.seen, k) })
	sh.repliesRing.compactDrop(clientID, func(k cacheKey) { delete(sh.replies, k) })
}

// countSeen reports the number of request records held.
func (s *recordStore) countSeen() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.seen)
		sh.mu.Unlock()
	}
	return n
}

// countReplies reports the number of responses held.
func (s *recordStore) countReplies() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.replies)
		sh.mu.Unlock()
	}
	return n
}
