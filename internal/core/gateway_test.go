package core_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/domain"
	"eternalgw/internal/ftmgmt"
	"eternalgw/internal/giop"
	"eternalgw/internal/orb"
	"eternalgw/internal/replication"
	"eternalgw/internal/totem"
)

const (
	grpRegister replication.GroupID = 100
	keyRegister                     = "app/register"
	typeIDReg                       = "IDL:eternalgw/Register:1.0"
)

func fastDomain(t *testing.T, name string, nodes int) *domain.Domain {
	t.Helper()
	d, err := domain.New(domain.Config{
		Name:  name,
		Nodes: nodes,
		Totem: totem.Config{
			IdleHold:        100 * time.Microsecond,
			TokenRetransmit: 10 * time.Millisecond,
			FailTimeout:     80 * time.Millisecond,
			GatherTimeout:   20 * time.Millisecond,
		},
		GatewayInvokeTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// registerApp is a deterministic replicated register.
type registerApp struct {
	mu    sync.Mutex
	value []byte
	ops   int64
}

func (a *registerApp) Invoke(op string, args *cdr.Reader, reply *cdr.Writer) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch op {
	case "append":
		a.value = append(a.value, args.ReadOctetSeq()...)
		a.ops++
		reply.WriteLongLong(a.ops)
		return args.Err()
	case "work":
		ms := args.ReadULong()
		data := args.ReadOctetSeq()
		if err := args.Err(); err != nil {
			return err
		}
		a.mu.Unlock()
		time.Sleep(time.Duration(ms) * time.Millisecond)
		a.mu.Lock()
		a.value = append(a.value, data...)
		a.ops++
		reply.WriteLongLong(a.ops)
		return nil
	case "read":
		reply.WriteOctetSeq(a.value)
		return nil
	case "ops":
		reply.WriteLongLong(a.ops)
		return nil
	default:
		return fmt.Errorf("registerApp: unknown op %q", op)
	}
}

func (a *registerApp) State() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteLongLong(a.ops)
	w.WriteOctetSeq(a.value)
	return w.Bytes(), nil
}

func (a *registerApp) SetState(state []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := cdr.NewReader(state, cdr.BigEndian)
	a.ops = r.ReadLongLong()
	a.value = append([]byte(nil), r.ReadOctetSeq()...)
	return r.Err()
}

func (a *registerApp) totalOps() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.ops
}

// deployRegister places a replicated register on the first `replicas`
// nodes via the replication manager and returns the replica apps.
func deployRegister(t *testing.T, d *domain.Domain, style replication.Style, replicas int) []*registerApp {
	t.Helper()
	var (
		mu   sync.Mutex
		apps []*registerApp
	)
	err := d.Manager().CreateReplicatedObject(grpRegister, ftmgmt.Properties{
		Style:           style,
		InitialReplicas: replicas,
		MinReplicas:     replicas,
		ObjectKey:       []byte(keyRegister),
		TypeID:          typeIDReg,
	}, func() (replication.Application, error) {
		mu.Lock()
		defer mu.Unlock()
		app := &registerApp{}
		apps = append(apps, app)
		return app, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return apps
}

func encodeOctetSeq(b []byte) []byte {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteOctetSeq(b)
	return w.Bytes()
}

func TestUnreplicatedClientThroughGateway(t *testing.T) {
	d := fastDomain(t, "ny", 3)
	apps := deployRegister(t, d, replication.Active, 3)
	gw, err := d.AddGateway(0, "")
	if err != nil {
		t.Fatal(err)
	}
	ref, err := d.PublishIOR(typeIDReg, []byte(keyRegister))
	if err != nil {
		t.Fatal(err)
	}
	// The IOR points at the gateway, not at any server replica.
	p, err := ref.PrimaryProfile()
	if err != nil {
		t.Fatal(err)
	}
	if p.Addr() != gw.Addr() {
		t.Fatalf("IOR addr %s, gateway addr %s", p.Addr(), gw.Addr())
	}

	// A plain, unreplicated IIOP client connects and invokes.
	obj, conn, err := orb.Resolve(ref)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	r, err := obj.Call("append", encodeOctetSeq([]byte("hi")), orb.InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReadLongLong(); got != 1 || r.Err() != nil {
		t.Fatalf("append = %d, err %v", got, r.Err())
	}
	r, err = obj.Call("read", nil, orb.InvokeOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReadOctetSeq(); !bytes.Equal(got, []byte("hi")) {
		t.Fatalf("read = %q", got)
	}
	// Every replica executed the append exactly once.
	for i, app := range apps {
		waitInt(t, func() int64 { return app.totalOps() }, 1, fmt.Sprintf("replica %d ops", i))
	}
	// Three replicas responded per request; the gateway delivered one
	// and suppressed the duplicates (paper figure 3).
	rmStats := d.Node(0).RM.Stats()
	if rmStats.DuplicateResponses < 2 {
		t.Fatalf("duplicate responses suppressed = %d, want >= 2", rmStats.DuplicateResponses)
	}
	st := gw.Stats()
	if st.RequestsForwarded != 2 || st.RepliesReturned != 2 {
		t.Fatalf("gateway stats = %+v", st)
	}
}

func TestGatewayAnswersLocateRequests(t *testing.T) {
	d := fastDomain(t, "ny", 2)
	deployRegister(t, d, replication.Active, 1)
	gw, err := d.AddGateway(0, "")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := orb.Dial(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	// The gateway must claim to be the object so the client never
	// suspects it is not the server (paper section 3.1).
	if _, err := conn.Call([]byte(keyRegister), "ops", nil, orb.InvokeOptions{}); err != nil {
		t.Fatal(err)
	}
}

func TestGatewayUnknownObjectKey(t *testing.T) {
	d := fastDomain(t, "ny", 2)
	deployRegister(t, d, replication.Active, 1)
	gw, err := d.AddGateway(0, "")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := orb.Dial(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	_, err = conn.Call([]byte("no/such/object"), "read", nil, orb.InvokeOptions{})
	var sysEx *orb.SystemException
	if !errors.As(err, &sysEx) || sysEx.RepoID != orb.RepoObjectNotExist {
		t.Fatalf("err = %v, want OBJECT_NOT_EXIST", err)
	}
}

func TestDistinctTCPClientsGetDistinctIdentifiers(t *testing.T) {
	// Two plain clients use identical request ids; the gateway's
	// per-group client counters keep their operations separate (paper
	// section 3.2).
	d := fastDomain(t, "ny", 2)
	apps := deployRegister(t, d, replication.Active, 1)
	gw, err := d.AddGateway(0, "")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		conn, err := orb.Dial(gw.Addr())
		if err != nil {
			t.Fatal(err)
		}
		_, err = conn.Call([]byte(keyRegister), "append", encodeOctetSeq([]byte{byte('a' + i)}), orb.InvokeOptions{RequestID: 42})
		_ = conn.Close()
		if err != nil {
			t.Fatal(err)
		}
	}
	waitInt(t, func() int64 { return apps[0].totalOps() }, 2, "ops")
}

func TestGatewayConcurrentClients(t *testing.T) {
	d := fastDomain(t, "ny", 3)
	apps := deployRegister(t, d, replication.Active, 2)
	gw, err := d.AddGateway(2, "")
	if err != nil {
		t.Fatal(err)
	}
	const clients, calls = 6, 10
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := orb.Dial(gw.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer func() { _ = conn.Close() }()
			for i := 0; i < calls; i++ {
				if _, err := conn.Call([]byte(keyRegister), "append", encodeOctetSeq([]byte("x")), orb.InvokeOptions{}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i, app := range apps {
		waitInt(t, func() int64 { return app.totalOps() }, clients*calls, fmt.Sprintf("replica %d", i))
	}
}

func TestSingleGatewayFailureAbandonsAndDuplicates(t *testing.T) {
	// Paper section 3.4: with plain ORBs, the gateway is a single point
	// of failure. After it dies, the client's outstanding requests are
	// abandoned; when the client reconnects (to a recovered gateway) and
	// resends, the gateway cannot recognize the resend — the counter-
	// assigned client identifier differs — so the operation executes
	// twice.
	d := fastDomain(t, "ny", 3)
	apps := deployRegister(t, d, replication.Active, 2)
	gw1, err := d.AddGateway(2, "")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := orb.Dial(gw1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Call([]byte(keyRegister), "append", encodeOctetSeq([]byte("x")), orb.InvokeOptions{RequestID: 7}); err != nil {
		t.Fatal(err)
	}
	// The gateway process fails.
	_ = gw1.Close()
	if _, err := conn.Call([]byte(keyRegister), "ops", nil, orb.InvokeOptions{RequestID: 8, Timeout: time.Second}); err == nil {
		t.Fatal("invocation through dead gateway succeeded")
	}
	// The gateway recovers (fresh process, fresh counters); the client
	// reconnects and resends its request with the same request id.
	gw2, err := d.AddGateway(2, "")
	if err != nil {
		t.Fatal(err)
	}
	conn2, err := orb.Dial(gw2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn2.Close() }()
	if _, err := conn2.Call([]byte(keyRegister), "append", encodeOctetSeq([]byte("x")), orb.InvokeOptions{RequestID: 7}); err != nil {
		t.Fatal(err)
	}
	// The duplication the paper warns about: the append ran twice.
	waitInt(t, func() int64 { return apps[0].totalOps() }, 2, "ops after resend")
}

func TestEnhancedClientResendIsDeduplicated(t *testing.T) {
	// The same scenario as above, but the client supplies the unique
	// identifier of section 3.5 in its service context: the resent
	// request maps to the same operation identifier and is answered
	// without re-execution.
	d := fastDomain(t, "ny", 3)
	apps := deployRegister(t, d, replication.Active, 2)
	gw1, err := d.AddGateway(2, "")
	if err != nil {
		t.Fatal(err)
	}
	uniqueID := []byte("client-sb-0001")
	sc := []giop.ServiceContext{{ID: giop.FTClientContextID, Data: uniqueID}}

	conn, err := orb.Dial(gw1.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Call([]byte(keyRegister), "append", encodeOctetSeq([]byte("x")), orb.InvokeOptions{RequestID: 7, ServiceContexts: sc}); err != nil {
		t.Fatal(err)
	}
	_ = gw1.Close()
	gw2, err := d.AddGateway(2, "")
	if err != nil {
		t.Fatal(err)
	}
	conn2, err := orb.Dial(gw2.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn2.Close() }()
	r, err := conn2.Call([]byte(keyRegister), "append", encodeOctetSeq([]byte("x")), orb.InvokeOptions{RequestID: 7, ServiceContexts: sc})
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReadLongLong(); got != 1 {
		t.Fatalf("resent append returned %d, want the original result 1", got)
	}
	if got := apps[0].totalOps(); got != 1 {
		t.Fatalf("ops = %d, want 1 (resend executed!)", got)
	}
	// The recovered gateway either answered from the gateway-group
	// record or forwarded and the servers deduplicated; both uphold
	// exactly-once.
	st := gw2.Stats()
	if st.AnsweredFromCache == 0 && apps[0].totalOps() != 1 {
		t.Fatalf("gateway stats = %+v", st)
	}
}

func TestOneWayRequestThroughGateway(t *testing.T) {
	d := fastDomain(t, "ny", 2)
	apps := deployRegister(t, d, replication.Active, 1)
	gw, err := d.AddGateway(1, "")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := orb.Dial(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	if _, err := conn.Invoke([]byte(keyRegister), "append", encodeOctetSeq([]byte("o")), orb.InvokeOptions{OneWay: true}); err != nil {
		t.Fatal(err)
	}
	waitInt(t, func() int64 { return apps[0].totalOps() }, 1, "one-way append")
	// The gateway conveys one-ways without registering for a reply: no
	// invocation may be left pending or counted abandoned.
	time.Sleep(30 * time.Millisecond)
	if st := gw.Stats(); st.RequestsAbandoned != 0 {
		t.Fatalf("one-way counted abandoned: %+v", st)
	}
}

func TestGatewayWithPassiveServers(t *testing.T) {
	d := fastDomain(t, "ny", 3)
	apps := deployRegister(t, d, replication.WarmPassive, 2)
	gw, err := d.AddGateway(2, "")
	if err != nil {
		t.Fatal(err)
	}
	conn, err := orb.Dial(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	for i := 0; i < 5; i++ {
		if _, err := conn.Call([]byte(keyRegister), "append", encodeOctetSeq([]byte("p")), orb.InvokeOptions{}); err != nil {
			t.Fatal(err)
		}
	}
	// Only the primary executed.
	total := apps[0].totalOps() + apps[1].totalOps()
	if total != 5 {
		t.Fatalf("combined ops = %d, want 5", total)
	}
}

func waitInt(t *testing.T, get func() int64, want int64, what string) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		if got := get(); got == want {
			return
		} else if got > want {
			t.Fatalf("%s = %d, want %d", what, got, want)
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s = %d, want %d", what, get(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
