package core

import (
	"fmt"
	"testing"

	"eternalgw/internal/replication"
)

// rawRep builds a distinguishable stand-in for raw reply bytes.
func rawRep(id uint32) []byte { return []byte{byte(id)} }

func recKey(client uint64, parentTS uint64) cacheKey {
	return cacheKey{
		group:    replication.GroupID(7),
		clientID: client,
		op:       replication.OperationID{ParentTS: parentTS, ChildSeq: 0},
	}
}

func TestRecordStoreEvictsOldestPastCapacity(t *testing.T) {
	// Capacity is split across the shards; one client's records all land
	// in one shard, so a single client sees a per-shard bound of
	// ceil(32/16) = 2 entries.
	store := newRecordStore(32)
	const client = 42
	const n = 6
	for i := uint64(0); i < n; i++ {
		store.storeReply(recKey(client, i), rawRep(uint32(i)))
	}
	if got := store.countReplies(); got != 2 {
		t.Fatalf("countReplies = %d, want per-shard bound 2", got)
	}
	// The oldest entries were evicted in FIFO order; only the newest two
	// survive.
	for i := uint64(0); i < n-2; i++ {
		if _, ok := store.reply(recKey(client, i)); ok {
			t.Fatalf("reply %d still cached, want evicted as oldest", i)
		}
	}
	for i := uint64(n - 2); i < n; i++ {
		rep, ok := store.reply(recKey(client, i))
		if !ok {
			t.Fatalf("reply %d missing, want retained as newest", i)
		}
		if len(rep) != 1 || rep[0] != byte(i) {
			t.Fatalf("reply %d has bytes %v", i, rep)
		}
	}
}

func TestRecordStoreSeenEvictsOldest(t *testing.T) {
	store := newRecordStore(16) // per-shard bound 1
	const client = 9
	if store.noteSeen(recKey(client, 1)) {
		t.Fatal("first noteSeen reported a reinvocation")
	}
	if !store.noteSeen(recKey(client, 1)) {
		t.Fatal("repeated noteSeen did not report a reinvocation")
	}
	// A second key evicts the first from the one-entry shard, so the
	// first key reads as fresh again.
	if store.noteSeen(recKey(client, 2)) {
		t.Fatal("fresh key reported as reinvocation")
	}
	if store.noteSeen(recKey(client, 1)) {
		t.Fatal("evicted key still reported as reinvocation")
	}
	if got := store.countSeen(); got > 1 {
		t.Fatalf("countSeen = %d, want bounded at 1", got)
	}
}

func TestRecordStoreFirstReplyWins(t *testing.T) {
	store := newRecordStore(64)
	key := recKey(5, 100)
	store.storeReply(key, rawRep(1))
	store.storeReply(key, rawRep(2))
	rep, ok := store.reply(key)
	if !ok {
		t.Fatal("reply missing")
	}
	if len(rep) != 1 || rep[0] != 1 {
		t.Fatalf("reply bytes = %v, want the first recorded reply to win", rep)
	}
}

func TestRecordStoreDropClientRemovesOnlyThatClient(t *testing.T) {
	store := newRecordStore(256)
	const departed = 17
	// Find a client that hashes to the departed client's shard, so the
	// compaction must discriminate by client id and not just by shard.
	sameShard := uint64(0)
	for c := uint64(18); ; c++ {
		if store.shard(c) == store.shard(departed) {
			sameShard = c
			break
		}
	}
	clients := []uint64{1, 2, 3, departed, 33, sameShard}
	const perClient = 4
	for _, c := range clients {
		for i := uint64(0); i < perClient; i++ {
			k := recKey(c, i)
			store.noteSeen(k)
			store.storeReply(k, rawRep(uint32(c)))
		}
	}
	store.dropClient(departed)
	for i := uint64(0); i < perClient; i++ {
		if _, ok := store.reply(recKey(departed, i)); ok {
			t.Fatalf("departed client's reply %d survived dropClient", i)
		}
		if !store.noteSeen(recKey(departed, i)) {
			// noteSeen returning false means the key was gone (and is now
			// re-recorded), which is what we want; clean it up again.
			store.dropClient(departed)
			continue
		}
		t.Fatalf("departed client's seen key %d survived dropClient", i)
	}
	for _, c := range clients {
		if c == departed {
			continue
		}
		for i := uint64(0); i < perClient; i++ {
			if _, ok := store.reply(recKey(c, i)); !ok {
				t.Fatalf("client %d reply %d lost by another client's departure", c, i)
			}
			if !store.noteSeen(recKey(c, i)) {
				t.Fatalf("client %d seen key %d lost by another client's departure", c, i)
			}
		}
	}
}

func TestKeyRingCompactDropPreservesFIFO(t *testing.T) {
	r := keyRing{max: 4}
	for i := uint64(0); i < 6; i++ {
		// Alternate two clients; pushing past max wraps the ring.
		r.push(recKey(100+i%2, i))
	}
	// Ring now holds ops 2,3,4,5 with head pointing at op 2.
	var dropped []uint64
	r.compactDrop(100, func(k cacheKey) { dropped = append(dropped, k.op.ParentTS) })
	if fmt.Sprint(dropped) != "[2 4]" {
		t.Fatalf("dropped = %v, want [2 4]", dropped)
	}
	if len(r.buf) != 2 || r.buf[0].op.ParentTS != 3 || r.buf[1].op.ParentTS != 5 {
		t.Fatalf("kept = %+v, want ops 3,5 in FIFO order", r.buf)
	}
	// The compacted ring keeps evicting oldest-first.
	old, evicted := r.push(recKey(101, 7))
	if evicted || old.op.ParentTS != 0 {
		t.Fatalf("push into compacted non-full ring evicted %v", old)
	}
	r.push(recKey(101, 8))
	old, evicted = r.push(recKey(101, 9))
	if !evicted || old.op.ParentTS != 3 {
		t.Fatalf("eviction after compaction displaced op %d, want 3", old.op.ParentTS)
	}
}
