// Package core implements the paper's primary contribution: gateways for
// accessing fault tolerance domains.
//
// A gateway is the entry point through which unreplicated IIOP clients
// reach the replicated objects of a fault tolerance domain (paper
// section 3). On its external side it accepts plain TCP connections and
// speaks GIOP/IIOP, appearing to clients to be the remote server object;
// on its internal side it is a (client-only) member of the gateway
// object group, translating IIOP requests into totally-ordered
// multicasts addressed to server object groups and returning a single
// response per request, with the duplicate responses of the server
// replicas suppressed by response identifier.
//
// A gateway is not a CORBA object: it is part of the fault tolerance
// infrastructure. Several gateways form a redundant gateway group
// (paper section 3.5): each records the requests and responses flowing
// through any of them, so a client that fails over to another gateway
// and reissues its pending invocations receives its responses without
// the operations being executed twice.
package core

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"eternalgw/internal/admission"
	"eternalgw/internal/cdr"
	"eternalgw/internal/giop"
	"eternalgw/internal/metrics"
	"eternalgw/internal/obs"
	"eternalgw/internal/replication"
)

// repoIDTransient is the CORBA system exception the gateway raises when
// admission control sheds a request: the standard "try again later"
// exception, carrying the shed reason as its minor code
// (admission.Verdict.Minor; see docs/OPERATIONS.md for the contract).
const repoIDTransient = "IDL:omg.org/CORBA/TRANSIENT:1.0"

// Minor codes for the system exceptions the gateway itself fabricates
// (shed replies carry admission.Verdict.Minor instead). Documented in
// docs/OPERATIONS.md; the completedno analyzer rejects bare literals
// here so every code stays in that table.
const (
	// minorUnknownObjectKey: OBJECT_NOT_EXIST — the request's object key
	// matches no replicated group at this gateway.
	minorUnknownObjectKey uint32 = 0
	// minorInvokeFailed: COMM_FAILURE — conveying the request through
	// the fault tolerance domain failed or timed out.
	minorInvokeFailed uint32 = 0
)

// Errors reported by the gateway.
var ErrClosed = errors.New("gateway: closed")

// Config parameterizes a Gateway.
type Config struct {
	// RM is this node's replication mechanisms; the gateway must already
	// be (or become) a member of Group through it.
	RM *replication.Mechanisms
	// Group is the gateway object group identifier.
	Group replication.GroupID
	// ListenAddr is the external TCP endpoint ("host:port", empty for
	// 127.0.0.1:0).
	ListenAddr string
	// InvokeTimeout bounds each forwarded invocation. Zero means 10s.
	InvokeTimeout time.Duration
	// ReplyCacheSize bounds the recorded-response cache used to answer
	// reissued invocations after a gateway failover. Zero means 8192.
	ReplyCacheSize int
	// DisableGroupRecord turns off the section 3.5 gateway-group
	// recording (the request record multicast and the response cache).
	// Reissues after a failover then always travel into the domain and
	// rely on server-side duplicate detection alone. Exists for
	// ablation: it trades one extra multicast per request against
	// failover work.
	DisableGroupRecord bool
	// Log receives diagnostics (tagged component=gateway); nil discards
	// them.
	Log *obs.Logger
	// Metrics, when set, receives the gateway's counters, connection
	// gauges and a request-latency histogram for the /metrics endpoint.
	Metrics *obs.Registry
	// Tracer, when set, records invocation span events on the gateway
	// hops (accept, decode, cache suppression, reply write). Nil — the
	// default — is the disabled tracer: the datapath pays one nil check.
	Tracer *obs.Tracer
	// Admission, when set, is this gateway's admission controller:
	// connection caps with accept-loop backpressure, per-client rate
	// limiting and in-flight windows with TRANSIENT shedding, and the
	// domain-backpressure breaker. Nil admits everything. The controller
	// must be private to this gateway (its connection accounting is
	// per-listener).
	Admission *admission.Controller
}

// Stats snapshots gateway counters.
type Stats struct {
	ConnectionsAccepted   uint64
	RequestsReceived      uint64
	RequestsForwarded     uint64
	RepliesReturned       uint64
	AnsweredFromCache     uint64 // reissued invocations answered from the gateway-group record
	ReinvocationsDetected uint64 // requests seen before by the gateway group
	RequestsAbandoned     uint64 // received but never answered (gateway or domain failure)
	Exceptions            uint64 // system exceptions returned to clients
	ClientsDeparted       uint64 // departed-client notifications processed (state deleted)
	RequestsShed          uint64 // requests refused by admission control (TRANSIENT returned)
	ConnectionsShed       uint64 // connections refused by admission control (closed at accept)
	DeparturesDropped     uint64 // departed-client notifications dropped by the bounded overflow queue
}

// cacheKey identifies a recorded operation: the routing triple of paper
// section 3.2 (server group, TCP client id) plus the operation
// identifier.
type cacheKey struct {
	group    replication.GroupID
	clientID uint64
	op       replication.OperationID
}

// departQueueMax bounds the departed-client overflow queue: departures
// beyond it are dropped (and counted) rather than spawning goroutines.
// Dropping one only delays cleanup — the per-client records age out of
// the bounded record caches regardless.
const departQueueMax = 4096

// Gateway bridges external IIOP clients into a fault tolerance domain.
type Gateway struct {
	cfg    Config
	rm     *replication.Mechanisms
	ln     net.Listener
	log    *obs.Logger
	tracer *obs.Tracer
	adm    *admission.Controller
	// reqHist, non-nil only when cfg.Metrics is set, records round-trip
	// latency of response-expected requests over a sliding window.
	reqHist *metrics.Histogram

	// draining is set by Drain: new requests are shed with TRANSIENT and
	// the accept loop stops, while in-flight invocations bleed out.
	draining atomic.Bool
	// inflight counts requests currently being conveyed through the
	// domain; Drain waits for it to reach zero. Tracked by the gateway
	// itself so drain works with admission disabled too.
	inflight atomic.Int64
	// lnOnce/lnErr let Drain and Close both close the listener.
	lnOnce sync.Once
	lnErr  error
	// acceptStop unblocks an accept loop waiting on a connection slot;
	// closed by both Drain and Close.
	acceptStop     chan struct{}
	acceptStopOnce sync.Once

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	// counters assigns TCP client identifiers per destination server
	// group, as in paper section 3.2.
	counters map[replication.GroupID]uint64
	// records is the section 3.5 gateway-group record: request keys seen
	// (reinvocation detection) and responses (answering reissues),
	// sharded by client identifier so the datapath does not serialize
	// behind mu.
	records *recordStore
	// instanceNonce distinguishes this gateway instance's counter-
	// assigned client identifiers from any other gateway's.
	instanceNonce uint64

	// The departure overflow queue carries departed-client notifications
	// from the replication event loop (whose observer must not block) to
	// the departure worker. It is bounded at departQueueMax; notifications
	// beyond that are dropped and counted rather than spawning goroutines.
	depMu     sync.Mutex
	depQueue  []uint64
	depNotify chan struct{}
	quit      chan struct{}

	wg sync.WaitGroup

	connectionsAccepted   atomic.Uint64
	requestsReceived      atomic.Uint64
	requestsForwarded     atomic.Uint64
	repliesReturned       atomic.Uint64
	answeredFromCache     atomic.Uint64
	reinvocationsDetected atomic.Uint64
	requestsAbandoned     atomic.Uint64
	exceptions            atomic.Uint64
	clientsDeparted       atomic.Uint64
	requestsShed          atomic.Uint64
	connectionsShed       atomic.Uint64
	departuresDropped     atomic.Uint64
}

// New creates a gateway, joins the gateway group as a client-only member
// and starts accepting external connections. The caller should wait for
// the group membership (rm.WaitSynced) before handing the address out.
func New(cfg Config) (*Gateway, error) {
	if cfg.RM == nil {
		return nil, errors.New("gateway: config needs replication mechanisms")
	}
	if cfg.InvokeTimeout == 0 {
		cfg.InvokeTimeout = 10 * time.Second
	}
	if cfg.ReplyCacheSize == 0 {
		cfg.ReplyCacheSize = 8192
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, err
	}
	var nonce [8]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		_ = ln.Close()
		return nil, fmt.Errorf("gateway: generating instance nonce: %w", err)
	}
	g := &Gateway{
		cfg:           cfg,
		rm:            cfg.RM,
		ln:            ln,
		log:           cfg.Log.With("gateway"),
		tracer:        cfg.Tracer,
		adm:           cfg.Admission,
		conns:         make(map[net.Conn]struct{}),
		counters:      make(map[replication.GroupID]uint64),
		records:       newRecordStore(cfg.ReplyCacheSize),
		depNotify:     make(chan struct{}, 1),
		acceptStop:    make(chan struct{}),
		quit:          make(chan struct{}),
		instanceNonce: binary.BigEndian.Uint64(nonce[:]) &^ counterIDBit,
	}
	g.registerMetrics(cfg.Metrics)
	// Join the gateway group (idempotent error if the embedding code
	// joined already) and observe the group's traffic to build the
	// request/response record.
	if err := g.rm.JoinGroup(cfg.Group, nil); err != nil && !errors.Is(err, replication.ErrAlreadyMember) {
		_ = ln.Close()
		return nil, err
	}
	g.rm.SetObserver(cfg.Group, g.observe)
	g.wg.Add(2)
	go g.acceptLoop()
	go g.departureLoop()
	return g, nil
}

// Addr returns the gateway's external TCP address.
func (g *Gateway) Addr() string { return g.ln.Addr().String() }

// registerMetrics publishes the gateway's counters, gauges and a
// request-latency histogram on the registry, labelled with the external
// listen address so several gateways in one process stay
// distinguishable. The registry reads only at scrape time; the datapath
// keeps its bare atomic increments.
func (g *Gateway) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	lbl := obs.Labels{"gateway": g.ln.Addr().String()}
	for _, c := range []struct {
		name, help string
		fn         func() uint64
	}{
		{"eternalgw_gateway_connections_accepted_total", "External TCP connections accepted.", g.connectionsAccepted.Load},
		{"eternalgw_gateway_requests_received_total", "GIOP requests received from external clients.", g.requestsReceived.Load},
		{"eternalgw_gateway_requests_forwarded_total", "Requests conveyed into the fault tolerance domain.", g.requestsForwarded.Load},
		{"eternalgw_gateway_replies_returned_total", "Replies written back to external clients.", g.repliesReturned.Load},
		{"eternalgw_gateway_answered_from_cache_total", "Reissued invocations answered from the gateway-group record.", g.answeredFromCache.Load},
		{"eternalgw_gateway_reinvocations_detected_total", "Requests seen before by the gateway group.", g.reinvocationsDetected.Load},
		{"eternalgw_gateway_requests_abandoned_total", "Requests received but never answered.", g.requestsAbandoned.Load},
		{"eternalgw_gateway_exceptions_total", "System exceptions returned to external clients.", g.exceptions.Load},
		{"eternalgw_gateway_clients_departed_total", "Departed-client notifications processed.", g.clientsDeparted.Load},
		{"eternalgw_gateway_requests_shed_total", "Requests refused by admission control (TRANSIENT returned).", g.requestsShed.Load},
		{"eternalgw_gateway_connections_shed_total", "Connections refused by admission control (closed at accept).", g.connectionsShed.Load},
		{"eternalgw_gateway_departures_dropped_total", "Departed-client notifications dropped by the bounded overflow queue.", g.departuresDropped.Load},
	} {
		reg.CounterFunc(c.name, c.help, lbl, c.fn)
	}
	reg.GaugeFunc("eternalgw_gateway_inflight_requests", "Requests currently being conveyed through the domain.", lbl,
		func() float64 { return float64(g.inflight.Load()) })
	reg.GaugeFunc("eternalgw_gateway_draining", "1 while the gateway is draining.", lbl, func() float64 {
		if g.draining.Load() {
			return 1
		}
		return 0
	})
	if g.adm != nil {
		for _, c := range []struct {
			name, help string
			fn         func() uint64
		}{
			{"eternalgw_gateway_admission_admitted_total", "Requests admitted by the admission controller.", func() uint64 { return g.adm.Stats().Admitted }},
			{"eternalgw_gateway_admission_shed_rate_total", "Requests shed by the per-client token bucket.", func() uint64 { return g.adm.Stats().ShedRate }},
			{"eternalgw_gateway_admission_shed_window_total", "Requests shed by the in-flight window.", func() uint64 { return g.adm.Stats().ShedWindow }},
			{"eternalgw_gateway_admission_shed_draining_total", "Requests shed while draining.", func() uint64 { return g.adm.Stats().ShedDraining }},
			{"eternalgw_gateway_admission_conns_over_cap_total", "Connections shed by the per-client connection cap.", func() uint64 { return g.adm.Stats().ConnsOverCap }},
			{"eternalgw_gateway_admission_conns_shed_breaker_total", "Connections shed by the open backpressure breaker.", func() uint64 { return g.adm.Stats().ConnsShedBreaker }},
			{"eternalgw_gateway_admission_breaker_trips_total", "Times the backpressure breaker opened.", func() uint64 { return g.adm.Stats().BreakerTrips }},
		} {
			reg.CounterFunc(c.name, c.help, lbl, c.fn)
		}
		reg.GaugeFunc("eternalgw_gateway_admission_breaker_open", "1 while the backpressure breaker is open.", lbl, func() float64 {
			if g.adm.Stats().BreakerOpen {
				return 1
			}
			return 0
		})
	}
	reg.GaugeFunc("eternalgw_gateway_open_connections", "Currently connected external clients.", lbl, func() float64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		return float64(len(g.conns))
	})
	reg.GaugeFunc("eternalgw_gateway_recorded_requests", "Request records held for reinvocation detection.", lbl,
		func() float64 { return float64(g.RecordedRequests()) })
	reg.GaugeFunc("eternalgw_gateway_recorded_replies", "Responses held in the gateway-group record.", lbl,
		func() float64 { return float64(g.RecordedReplies()) })
	g.reqHist = metrics.NewBounded(8192)
	reg.Histogram("eternalgw_gateway_request_duration_seconds", "Round-trip latency of response-expected requests.", lbl, g.reqHist)
}

// observeLatency records one round trip when the latency histogram is
// enabled (arrived is zero when it is not).
func (g *Gateway) observeLatency(arrived time.Time) {
	if g.reqHist != nil && !arrived.IsZero() {
		g.reqHist.Record(time.Since(arrived))
	}
}

// Host and Port of the external endpoint, for IOR construction.
func (g *Gateway) HostPort() (string, uint16) {
	addr, ok := g.ln.Addr().(*net.TCPAddr)
	if !ok {
		return "127.0.0.1", 0
	}
	return addr.IP.String(), uint16(addr.Port)
}

// Stats snapshots the counters.
func (g *Gateway) Stats() Stats {
	return Stats{
		ConnectionsAccepted:   g.connectionsAccepted.Load(),
		RequestsReceived:      g.requestsReceived.Load(),
		RequestsForwarded:     g.requestsForwarded.Load(),
		RepliesReturned:       g.repliesReturned.Load(),
		AnsweredFromCache:     g.answeredFromCache.Load(),
		ReinvocationsDetected: g.reinvocationsDetected.Load(),
		RequestsAbandoned:     g.requestsAbandoned.Load(),
		Exceptions:            g.exceptions.Load(),
		ClientsDeparted:       g.clientsDeparted.Load(),
		RequestsShed:          g.requestsShed.Load(),
		ConnectionsShed:       g.connectionsShed.Load(),
		DeparturesDropped:     g.departuresDropped.Load(),
	}
}

// Admission exposes the gateway's admission controller (nil when
// admission is disabled), for status pages and tests.
func (g *Gateway) Admission() *admission.Controller { return g.adm }

// InFlight reports the number of requests currently being conveyed
// through the domain on behalf of this gateway's clients.
func (g *Gateway) InFlight() int64 { return g.inflight.Load() }

// closeListener closes the external listener exactly once (Drain and
// Close both need to).
func (g *Gateway) closeListener() error {
	g.lnOnce.Do(func() { g.lnErr = g.ln.Close() })
	return g.lnErr
}

// stopAccepting wakes an accept loop blocked on a connection slot.
func (g *Gateway) stopAccepting() {
	g.acceptStopOnce.Do(func() { close(g.acceptStop) })
}

// Close stops accepting and severs all client connections. It models the
// gateway process failure of paper section 3.4 as well as orderly
// shutdown: clients with outstanding invocations observe a broken
// connection and never learn their requests' fate.
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		g.wg.Wait()
		return nil
	}
	g.closed = true
	close(g.quit)
	g.stopAccepting()
	conns := make([]net.Conn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	g.mu.Unlock()

	err := g.closeListener()
	for _, c := range conns {
		_ = c.Close()
	}
	g.wg.Wait()
	return err
}

// Shutdown closes the gateway gracefully: connected clients receive a
// GIOP CloseConnection before their sockets are severed. Close (without
// the notification) doubles as the abrupt process-failure model used in
// the section 3.4/3.5 experiments.
func (g *Gateway) Shutdown() error {
	g.mu.Lock()
	conns := make([]net.Conn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	g.mu.Unlock()
	for _, c := range conns {
		_ = giop.WriteMessage(c, giop.EncodeCloseConnection(cdr.BigEndian))
	}
	return g.Close()
}

// Drain retires the gateway gracefully under a deadline: stop accepting
// connections and admitting requests, bleed the in-flight invocations to
// completion (so clients receive the responses they are owed), then hand
// the remaining clients to the redundant gateway group with a GIOP
// CloseConnection. Their enhanced ORBs fail over to the next profile and
// reissue any still-pending invocations; the section 3.5 gateway-group
// record answers reissues without re-executing operations, which is what
// makes the handoff safe.
//
// Requests arriving while draining are shed with a TRANSIENT system
// exception (minor code admission.ShedDraining), so even plain clients
// observe a clean retryable failure rather than a hang.
func (g *Gateway) Drain(timeout time.Duration) error {
	g.draining.Store(true)
	g.adm.BeginDrain()
	g.stopAccepting()
	_ = g.closeListener()
	deadline := time.Now().Add(timeout)
	for g.inflight.Load() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if n := g.inflight.Load(); n > 0 {
		g.log.Warnf("drain: %d invocations still in flight at deadline", n)
	}
	return g.Shutdown()
}

// Draining reports whether Drain has been initiated.
func (g *Gateway) Draining() bool { return g.draining.Load() }

// hostOf extracts the client address (host without port) used for the
// per-client connection cap.
func hostOf(conn net.Conn) string {
	addr := conn.RemoteAddr().String()
	if host, _, err := net.SplitHostPort(addr); err == nil {
		return host
	}
	return addr
}

func (g *Gateway) acceptLoop() {
	defer g.wg.Done()
	for {
		// Accept-loop backpressure: at the connection cap the gateway
		// stops accepting; further clients wait in the kernel listen
		// backlog instead of consuming gateway state.
		if !g.adm.ReserveConn(g.acceptStop) {
			return
		}
		conn, err := g.ln.Accept()
		if err != nil {
			g.adm.UnreserveConn()
			return
		}
		host := hostOf(conn)
		if v := g.adm.AdmitConn(host); v != admission.Admit {
			// The shed connection gets a CloseConnection notification —
			// the standard GIOP "go elsewhere" signal — so enhanced
			// clients fail over to the next gateway profile immediately.
			g.connectionsShed.Add(1)
			g.log.Infof("shedding connection from %s: %s", conn.RemoteAddr(), v)
			_ = giop.WriteMessage(conn, giop.EncodeCloseConnection(cdr.BigEndian))
			_ = conn.Close()
			continue
		}
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			g.adm.ReleaseConn(host)
			_ = conn.Close()
			return
		}
		g.conns[conn] = struct{}{}
		g.mu.Unlock()
		g.connectionsAccepted.Add(1)
		g.wg.Add(1)
		go g.serveConn(conn, host)
	}
}

// clientConn is the per-TCP-client state of figure 5a: the client
// identifiers assigned for each destination server group.
type clientConn struct {
	gw  *Gateway
	nc  net.Conn
	wmu sync.Mutex

	mu        sync.Mutex
	ids       map[replication.GroupID]uint64
	cancelled map[uint32]bool // request ids the client cancelled
}

// serveConn handles one external client: the gateway spawned a dedicated
// socket for it and keeps listening for further clients on the original
// socket (paper section 3.1). When the client departs, the gateway
// informs the other gateways so they can delete any state stored on the
// client's behalf (section 3.5).
func (g *Gateway) serveConn(nc net.Conn, host string) {
	defer g.wg.Done()
	cc := &clientConn{gw: g, nc: nc, ids: make(map[replication.GroupID]uint64), cancelled: make(map[uint32]bool)}
	defer func() {
		_ = nc.Close()
		g.mu.Lock()
		delete(g.conns, nc)
		g.mu.Unlock()
		g.adm.ReleaseConn(host)
		g.announceDepartures(cc)
	}()
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	ra := giop.NewReassembler(nc, 0)
	for {
		msg, err := ra.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				g.log.Warnf("connection %s: %v", nc.RemoteAddr(), err)
			}
			return
		}
		switch msg.Header.Type {
		case giop.MsgRequest:
			// The message's arrival instant anchors the trace and the
			// latency histogram; with both disabled the clock is skipped.
			var arrived time.Time
			if g.tracer != nil || g.reqHist != nil {
				arrived = time.Now()
			}
			req, err := giop.DecodeRequest(msg)
			if err != nil {
				g.log.Warnf("bad request from %s: %v", nc.RemoteAddr(), err)
				cc.write(giop.EncodeMessageError(msg.Header.Order))
				continue
			}
			g.requestsReceived.Add(1)
			// Resolving the group and client identifier before admission
			// keeps shed decisions per-client (the paper's TCP client
			// identifier), and a bad object key never costs a window slot.
			group, ok := g.rm.GroupByKey(req.ObjectKey)
			if !ok {
				g.exceptions.Add(1)
				cc.writeReplyRaw(msg, req, giop.Reply{
					RequestID: req.RequestID,
					Status:    giop.ReplySystemException,
					Result:    giop.SystemExceptionBody(msg.Header.Order, "IDL:omg.org/CORBA/OBJECT_NOT_EXIST:1.0", minorUnknownObjectKey, giop.CompletedNo),
				})
				continue
			}
			clientID := cc.clientID(group, req)
			if g.draining.Load() {
				cc.shedReply(msg, req, admission.ShedDraining)
				continue
			}
			release, verdict := g.adm.AdmitRequest(clientID)
			if verdict != admission.Admit {
				cc.shedReply(msg, req, verdict)
				continue
			}
			// The goroutine spawn is gated by the in-flight window above:
			// under overload the gateway sheds instead of growing without
			// bound.
			g.inflight.Add(1)
			reqWG.Add(1)
			go func() {
				defer reqWG.Done()
				defer g.inflight.Add(-1)
				defer release()
				cc.handleRequest(msg, req, arrived, group, clientID)
			}()
		case giop.MsgLocateRequest:
			cc.handleLocate(msg)
		case giop.MsgCloseConn:
			return
		case giop.MsgCancelRequest:
			// The invocation is already in the total order and will
			// execute (it cannot be unsent, in CORBA or here); the
			// client has merely declared it no longer wants the reply,
			// so the gateway stops holding the socket for it.
			if cr, err := giop.DecodeCancelRequest(msg); err == nil {
				cc.mu.Lock()
				cc.cancelled[cr.RequestID] = true
				cc.mu.Unlock()
			}
		default:
			cc.write(giop.EncodeMessageError(msg.Header.Order))
		}
	}
}

func (cc *clientConn) write(msg giop.Message) {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	if err := giop.WriteMessageFragmented(cc.nc, msg, 0); err != nil {
		cc.gw.log.Warnf("write to %s: %v", cc.nc.RemoteAddr(), err)
	}
}

// clientID returns the TCP client identifier for this connection and
// destination group. Enhanced clients supply a unique identifier in the
// FT_C service context (paper section 3.5); for plain ORBs the gateway
// assigns the next value of the per-group counter (section 3.2), which
// is what makes their requests unidentifiable across gateway failures
// (section 3.4).
func (cc *clientConn) clientID(group replication.GroupID, req giop.Request) uint64 {
	if data, ok := giop.ContextByID(req.ServiceContexts, giop.FTClientContextID); ok && len(data) > 0 {
		h := fnv.New64a()
		_, _ = h.Write(data)
		id := h.Sum64()
		if id == replication.UnusedClientID {
			id = 1
		}
		return id
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if id, ok := cc.ids[group]; ok {
		return id
	}
	cc.gw.mu.Lock()
	cc.gw.counters[group]++
	// The counter is mixed with a per-gateway-instance nonce: a counter
	// value is only meaningful to the gateway that assigned it, which is
	// precisely the weakness of section 3.4 — a recovered or redundant
	// gateway has no way of knowing that a reconnecting TCP client is
	// the same client, so its resent requests become new operations.
	id := cc.gw.counters[group] ^ cc.gw.instanceNonce | counterIDBit
	cc.gw.mu.Unlock()
	cc.ids[group] = id
	return id
}

// counterIDBit marks gateway-assigned client identifiers; enhanced
// clients' hashed identifiers occupy the rest of the space (a hash could
// still land in the marked half, but the paper's point stands either
// way: counter ids are only meaningful to the assigning gateway).
const counterIDBit = uint64(1) << 63

// handleRequest implements figure 5a: resolve the object key to the
// server group, tag the request with the client and operation
// identifiers, convey it into the fault tolerance domain, and return the
// (first, deduplicated) response over the client's socket.
func (cc *clientConn) handleRequest(msg giop.Message, req giop.Request, arrived time.Time, group replication.GroupID, clientID uint64) {
	gw := cc.gw
	op := replication.OperationID{ParentTS: 0, ChildSeq: req.RequestID}
	key := cacheKey{group: group, clientID: clientID, op: op}
	tkey := obs.TraceKey{ClientID: clientID, ParentTS: op.ParentTS, ChildSeq: op.ChildSeq}
	if gw.tracer != nil {
		gw.tracer.EventAt(tkey, obs.StageGatewayAccept, arrived, "gateway")
		gw.tracer.Event(tkey, obs.StageIIOPDecode, "gateway")
	}

	// A reissued invocation (after the client failed over from a dead
	// gateway) may already have been answered; the gateway group's
	// record answers it without touching the servers. The cheap flag is
	// tested before the cache lookup takes a shard lock.
	if !gw.cfg.DisableGroupRecord {
		if rep, ok := gw.cachedReply(key); ok {
			gw.answeredFromCache.Add(1)
			gw.tracer.Event(tkey, obs.StageDupSuppressed, "gateway-record")
			if req.ResponseExpected {
				gw.repliesReturned.Add(1)
				cc.writeReplyRaw(msg, req, rep)
				gw.tracer.Event(tkey, obs.StageReplyWrite, "gateway")
			}
			gw.observeLatency(arrived)
			return
		}
	}

	// The section 3.5 request record rides on the invocation itself: the
	// gateways observe the invocation (whose source group is theirs) at
	// its place in the total order and build the same (client, op)
	// record a separate record multicast used to carry — one ordered
	// multicast and one request encoding per request instead of two.

	gw.requestsForwarded.Add(1)
	if !req.ResponseExpected {
		// One-way request: convey it into the domain without waiting
		// for (or ever receiving) a response.
		wire, err := giop.EncodeRequest(req.ArgsOrder, req)
		if err != nil {
			gw.log.Errorf("encode one-way: %v", err)
			return
		}
		if err := gw.rm.MulticastMessage(replication.Message{
			Header: replication.Header{
				Kind:     replication.KindInvocation,
				ClientID: clientID,
				SrcGroup: gw.cfg.Group,
				DstGroup: group,
				Op:       op,
			},
			Payload: giop.Marshal(wire),
		}); err != nil {
			gw.requestsAbandoned.Add(1)
		}
		return
	}
	rep, err := gw.rm.Invoke(gw.cfg.Group, clientID, group, op, req, gw.cfg.InvokeTimeout)
	if err != nil {
		gw.requestsAbandoned.Add(1)
		gw.exceptions.Add(1)
		if req.ResponseExpected {
			cc.writeReplyRaw(msg, req, giop.Reply{
				RequestID: req.RequestID,
				Status:    giop.ReplySystemException,
				Result:    giop.SystemExceptionBody(msg.Header.Order, "IDL:omg.org/CORBA/COMM_FAILURE:1.0", minorInvokeFailed, giop.CompletedNo),
			})
			gw.tracer.Event(tkey, obs.StageReplyWrite, "gateway-exception")
		}
		// Abandoned and excepted requests are exactly the slow ones; the
		// latency histogram must include them.
		gw.observeLatency(arrived)
		return
	}
	if req.ResponseExpected && !cc.isCancelled(req.RequestID) {
		gw.repliesReturned.Add(1)
		cc.writeReplyRaw(msg, req, rep)
		gw.tracer.Event(tkey, obs.StageReplyWrite, "gateway")
	}
	gw.observeLatency(arrived)
}

// isCancelled reports (and consumes) a cancellation for a request id.
func (cc *clientConn) isCancelled(id uint32) bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.cancelled[id] {
		delete(cc.cancelled, id)
		return true
	}
	return false
}

// shedReply refuses an invocation with a TRANSIENT system exception —
// the CORBA "try again" signal. completed=COMPLETED_NO tells the client
// the operation never entered the total order, so an immediate retry (or
// a failover to a redundant gateway) is always safe. The admission
// verdict travels in the minor code so operators can tell shed causes
// apart on the wire.
func (cc *clientConn) shedReply(msg giop.Message, req giop.Request, v admission.Verdict) {
	gw := cc.gw
	gw.requestsShed.Add(1)
	gw.exceptions.Add(1)
	if !req.ResponseExpected {
		return
	}
	cc.writeReplyRaw(msg, req, giop.Reply{
		RequestID: req.RequestID,
		Status:    giop.ReplySystemException,
		Result:    giop.SystemExceptionBody(msg.Header.Order, repoIDTransient, v.Minor(), giop.CompletedNo),
	})
}

// writeReplyRaw re-encodes a reply in the byte order of the client's
// request and writes it to the socket.
func (cc *clientConn) writeReplyRaw(msg giop.Message, req giop.Request, rep giop.Reply) {
	rep.RequestID = req.RequestID
	out, err := giop.EncodeReplyV(msg.Header.Order, msg.Header.Minor, rep)
	if err != nil {
		cc.gw.log.Errorf("encode reply: %v", err)
		return
	}
	cc.write(out)
}

func (cc *clientConn) handleLocate(msg giop.Message) {
	lr, err := giop.DecodeLocateRequest(msg)
	if err != nil {
		return
	}
	status := giop.LocateUnknownObject
	if _, ok := cc.gw.rm.GroupByKey(lr.ObjectKey); ok {
		// The gateway claims to be the object (paper section 3.1).
		status = giop.LocateObjectHere
	}
	cc.write(giop.EncodeLocateReply(msg.Header.Order, giop.LocateReply{
		RequestID: lr.RequestID,
		Status:    status,
	}))
}

// announceDepartures tells the gateway group that a TCP client's
// connection ended, one notification per client identifier the
// connection used, so every gateway deletes the state it stored on the
// client's behalf. Enhanced clients are exempt: their identifiers
// outlive connections by design (that is what makes failover reissues
// recognizable), so their records age out of the bounded caches instead.
func (g *Gateway) announceDepartures(cc *clientConn) {
	cc.mu.Lock()
	ids := make([]uint64, 0, len(cc.ids))
	for _, id := range cc.ids {
		ids = append(ids, id)
	}
	cc.mu.Unlock()
	for _, id := range ids {
		_ = g.rm.MulticastMessage(replication.Message{
			Header: replication.Header{
				Kind:     replication.KindGatewayControl,
				ClientID: id,
				SrcGroup: g.cfg.Group,
				DstGroup: g.cfg.Group,
			},
		})
	}
}

// departureLoop processes departed-client notifications off the
// replication event loop: the observer contract forbids blocking there,
// and deleting a client's records walks its whole record shard.
func (g *Gateway) departureLoop() {
	defer g.wg.Done()
	for {
		select {
		case <-g.depNotify:
			g.drainDepartures()
		case <-g.quit:
			// Process notifications already queued so departures observed
			// before shutdown still clean up.
			g.drainDepartures()
			return
		}
	}
}

// drainDepartures swaps out the queued departure notifications and
// processes them. Swapping under the lock keeps the observer's enqueue
// path to an append.
func (g *Gateway) drainDepartures() {
	g.depMu.Lock()
	batch := g.depQueue
	g.depQueue = nil
	g.depMu.Unlock()
	for _, id := range batch {
		g.processDeparture(id)
	}
}

func (g *Gateway) processDeparture(clientID uint64) {
	g.records.dropClient(clientID)
	g.clientsDeparted.Add(1)
}

// observe is the gateway-group observer: it records requests (to detect
// reinvocations) and responses (to answer reissued invocations) flowing
// through any gateway of the group. It runs on the replication event
// loop and must not block.
func (g *Gateway) observe(msg replication.Message, ts uint64) {
	switch msg.Header.Kind {
	case replication.KindGatewayControl:
		// A client departed somewhere in the gateway group: hand the
		// cleanup to the departure worker over a bounded queue. A full
		// queue drops the notification instead of spawning a goroutine —
		// the departure worker is already saturated, and the dropped
		// client's records age out of the bounded record caches anyway.
		if msg.Header.ClientID != replication.UnusedClientID {
			g.depMu.Lock()
			if len(g.depQueue) < departQueueMax {
				g.depQueue = append(g.depQueue, msg.Header.ClientID)
				g.depMu.Unlock()
				select {
				case g.depNotify <- struct{}{}:
				default:
				}
			} else {
				g.depMu.Unlock()
				g.departuresDropped.Add(1)
			}
		}
		return
	case replication.KindInvocation:
		if g.cfg.DisableGroupRecord || msg.Header.ClientID == replication.UnusedClientID {
			return
		}
		// The record rides on the invocation itself: every invocation a
		// gateway of this group conveys has this group as its source, and
		// the replication mechanisms dispatch it to the source group's
		// observer at its place in the total order. Reinvocation
		// detection keys on (client, op) with the gateway group, exactly
		// as the former separate record multicast did.
		if msg.Header.SrcGroup != g.cfg.Group {
			return
		}
		key := cacheKey{group: msg.Header.SrcGroup, clientID: msg.Header.ClientID, op: msg.Header.Op}
		if g.records.noteSeen(key) {
			g.reinvocationsDetected.Add(1)
		}
	case replication.KindResponse:
		if g.cfg.DisableGroupRecord || msg.Header.ClientID == replication.UnusedClientID {
			return
		}
		// The raw encapsulated reply is stored as-is (the record store
		// copies it out of the delivery buffer); decoding happens only on
		// the rare reissue path, keeping CDR work off the event loop.
		key := cacheKey{group: msg.Header.SrcGroup, clientID: msg.Header.ClientID, op: msg.Header.Op}
		g.records.storeReply(key, msg.Payload)
	}
}

// cachedReply returns the recorded response for a reissued invocation,
// decoding the stored raw reply. A record that fails to decode (it was
// malformed on the wire and would have been ignored by the old eager
// path too) reads as a miss.
func (g *Gateway) cachedReply(key cacheKey) (giop.Reply, bool) {
	raw, ok := g.records.reply(key)
	if !ok {
		return giop.Reply{}, false
	}
	wire, err := giop.Unmarshal(raw)
	if err != nil {
		return giop.Reply{}, false
	}
	rep, err := giop.DecodeReply(wire)
	if err != nil {
		return giop.Reply{}, false
	}
	return rep, true
}

// RecordedReplies reports how many responses the gateway currently holds
// in its gateway-group record (diagnostics and tests).
func (g *Gateway) RecordedReplies() int { return g.records.countReplies() }

// RecordedRequests reports how many request records the gateway holds.
func (g *Gateway) RecordedRequests() int { return g.records.countSeen() }
