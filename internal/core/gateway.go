// Package core implements the paper's primary contribution: gateways for
// accessing fault tolerance domains.
//
// A gateway is the entry point through which unreplicated IIOP clients
// reach the replicated objects of a fault tolerance domain (paper
// section 3). On its external side it accepts plain TCP connections and
// speaks GIOP/IIOP, appearing to clients to be the remote server object;
// on its internal side it is a (client-only) member of the gateway
// object group, translating IIOP requests into totally-ordered
// multicasts addressed to server object groups and returning a single
// response per request, with the duplicate responses of the server
// replicas suppressed by response identifier.
//
// A gateway is not a CORBA object: it is part of the fault tolerance
// infrastructure. Several gateways form a redundant gateway group
// (paper section 3.5): each records the requests and responses flowing
// through any of them, so a client that fails over to another gateway
// and reissues its pending invocations receives its responses without
// the operations being executed twice.
package core

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/giop"
	"eternalgw/internal/metrics"
	"eternalgw/internal/obs"
	"eternalgw/internal/replication"
)

// Errors reported by the gateway.
var ErrClosed = errors.New("gateway: closed")

// Config parameterizes a Gateway.
type Config struct {
	// RM is this node's replication mechanisms; the gateway must already
	// be (or become) a member of Group through it.
	RM *replication.Mechanisms
	// Group is the gateway object group identifier.
	Group replication.GroupID
	// ListenAddr is the external TCP endpoint ("host:port", empty for
	// 127.0.0.1:0).
	ListenAddr string
	// InvokeTimeout bounds each forwarded invocation. Zero means 10s.
	InvokeTimeout time.Duration
	// ReplyCacheSize bounds the recorded-response cache used to answer
	// reissued invocations after a gateway failover. Zero means 8192.
	ReplyCacheSize int
	// DisableGroupRecord turns off the section 3.5 gateway-group
	// recording (the request record multicast and the response cache).
	// Reissues after a failover then always travel into the domain and
	// rely on server-side duplicate detection alone. Exists for
	// ablation: it trades one extra multicast per request against
	// failover work.
	DisableGroupRecord bool
	// Log receives diagnostics (tagged component=gateway); nil discards
	// them.
	Log *obs.Logger
	// Metrics, when set, receives the gateway's counters, connection
	// gauges and a request-latency histogram for the /metrics endpoint.
	Metrics *obs.Registry
	// Tracer, when set, records invocation span events on the gateway
	// hops (accept, decode, cache suppression, reply write). Nil — the
	// default — is the disabled tracer: the datapath pays one nil check.
	Tracer *obs.Tracer
}

// Stats snapshots gateway counters.
type Stats struct {
	ConnectionsAccepted   uint64
	RequestsReceived      uint64
	RequestsForwarded     uint64
	RepliesReturned       uint64
	AnsweredFromCache     uint64 // reissued invocations answered from the gateway-group record
	ReinvocationsDetected uint64 // requests seen before by the gateway group
	RequestsAbandoned     uint64 // received but never answered (gateway or domain failure)
	Exceptions            uint64 // system exceptions returned to clients
	ClientsDeparted       uint64 // departed-client notifications processed (state deleted)
}

// cacheKey identifies a recorded operation: the routing triple of paper
// section 3.2 (server group, TCP client id) plus the operation
// identifier.
type cacheKey struct {
	group    replication.GroupID
	clientID uint64
	op       replication.OperationID
}

// Gateway bridges external IIOP clients into a fault tolerance domain.
type Gateway struct {
	cfg    Config
	rm     *replication.Mechanisms
	ln     net.Listener
	log    *obs.Logger
	tracer *obs.Tracer
	// reqHist, non-nil only when cfg.Metrics is set, records round-trip
	// latency of response-expected requests over a sliding window.
	reqHist *metrics.Histogram

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	// counters assigns TCP client identifiers per destination server
	// group, as in paper section 3.2.
	counters map[replication.GroupID]uint64
	// records is the section 3.5 gateway-group record: request keys seen
	// (reinvocation detection) and responses (answering reissues),
	// sharded by client identifier so the datapath does not serialize
	// behind mu.
	records *recordStore
	// instanceNonce distinguishes this gateway instance's counter-
	// assigned client identifiers from any other gateway's.
	instanceNonce uint64

	// departq carries departed-client notifications from the replication
	// event loop (whose observer must not block) to the departure worker.
	departq chan uint64
	quit    chan struct{}

	wg sync.WaitGroup

	connectionsAccepted   atomic.Uint64
	requestsReceived      atomic.Uint64
	requestsForwarded     atomic.Uint64
	repliesReturned       atomic.Uint64
	answeredFromCache     atomic.Uint64
	reinvocationsDetected atomic.Uint64
	requestsAbandoned     atomic.Uint64
	exceptions            atomic.Uint64
	clientsDeparted       atomic.Uint64
}

// New creates a gateway, joins the gateway group as a client-only member
// and starts accepting external connections. The caller should wait for
// the group membership (rm.WaitSynced) before handing the address out.
func New(cfg Config) (*Gateway, error) {
	if cfg.RM == nil {
		return nil, errors.New("gateway: config needs replication mechanisms")
	}
	if cfg.InvokeTimeout == 0 {
		cfg.InvokeTimeout = 10 * time.Second
	}
	if cfg.ReplyCacheSize == 0 {
		cfg.ReplyCacheSize = 8192
	}
	if cfg.ListenAddr == "" {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", cfg.ListenAddr)
	if err != nil {
		return nil, err
	}
	var nonce [8]byte
	if _, err := rand.Read(nonce[:]); err != nil {
		_ = ln.Close()
		return nil, fmt.Errorf("gateway: generating instance nonce: %w", err)
	}
	g := &Gateway{
		cfg:           cfg,
		rm:            cfg.RM,
		ln:            ln,
		log:           cfg.Log.With("gateway"),
		tracer:        cfg.Tracer,
		conns:         make(map[net.Conn]struct{}),
		counters:      make(map[replication.GroupID]uint64),
		records:       newRecordStore(cfg.ReplyCacheSize),
		departq:       make(chan uint64, 1024),
		quit:          make(chan struct{}),
		instanceNonce: binary.BigEndian.Uint64(nonce[:]) &^ counterIDBit,
	}
	g.registerMetrics(cfg.Metrics)
	// Join the gateway group (idempotent error if the embedding code
	// joined already) and observe the group's traffic to build the
	// request/response record.
	if err := g.rm.JoinGroup(cfg.Group, nil); err != nil && !errors.Is(err, replication.ErrAlreadyMember) {
		_ = ln.Close()
		return nil, err
	}
	g.rm.SetObserver(cfg.Group, g.observe)
	g.wg.Add(2)
	go g.acceptLoop()
	go g.departureLoop()
	return g, nil
}

// Addr returns the gateway's external TCP address.
func (g *Gateway) Addr() string { return g.ln.Addr().String() }

// registerMetrics publishes the gateway's counters, gauges and a
// request-latency histogram on the registry, labelled with the external
// listen address so several gateways in one process stay
// distinguishable. The registry reads only at scrape time; the datapath
// keeps its bare atomic increments.
func (g *Gateway) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	lbl := obs.Labels{"gateway": g.ln.Addr().String()}
	for _, c := range []struct {
		name, help string
		fn         func() uint64
	}{
		{"eternalgw_gateway_connections_accepted_total", "External TCP connections accepted.", g.connectionsAccepted.Load},
		{"eternalgw_gateway_requests_received_total", "GIOP requests received from external clients.", g.requestsReceived.Load},
		{"eternalgw_gateway_requests_forwarded_total", "Requests conveyed into the fault tolerance domain.", g.requestsForwarded.Load},
		{"eternalgw_gateway_replies_returned_total", "Replies written back to external clients.", g.repliesReturned.Load},
		{"eternalgw_gateway_answered_from_cache_total", "Reissued invocations answered from the gateway-group record.", g.answeredFromCache.Load},
		{"eternalgw_gateway_reinvocations_detected_total", "Requests seen before by the gateway group.", g.reinvocationsDetected.Load},
		{"eternalgw_gateway_requests_abandoned_total", "Requests received but never answered.", g.requestsAbandoned.Load},
		{"eternalgw_gateway_exceptions_total", "System exceptions returned to external clients.", g.exceptions.Load},
		{"eternalgw_gateway_clients_departed_total", "Departed-client notifications processed.", g.clientsDeparted.Load},
	} {
		reg.CounterFunc(c.name, c.help, lbl, c.fn)
	}
	reg.GaugeFunc("eternalgw_gateway_open_connections", "Currently connected external clients.", lbl, func() float64 {
		g.mu.Lock()
		defer g.mu.Unlock()
		return float64(len(g.conns))
	})
	reg.GaugeFunc("eternalgw_gateway_recorded_requests", "Request records held for reinvocation detection.", lbl,
		func() float64 { return float64(g.RecordedRequests()) })
	reg.GaugeFunc("eternalgw_gateway_recorded_replies", "Responses held in the gateway-group record.", lbl,
		func() float64 { return float64(g.RecordedReplies()) })
	g.reqHist = metrics.NewBounded(8192)
	reg.Histogram("eternalgw_gateway_request_duration_seconds", "Round-trip latency of response-expected requests.", lbl, g.reqHist)
}

// observeLatency records one round trip when the latency histogram is
// enabled (arrived is zero when it is not).
func (g *Gateway) observeLatency(arrived time.Time) {
	if g.reqHist != nil && !arrived.IsZero() {
		g.reqHist.Record(time.Since(arrived))
	}
}

// Host and Port of the external endpoint, for IOR construction.
func (g *Gateway) HostPort() (string, uint16) {
	addr, ok := g.ln.Addr().(*net.TCPAddr)
	if !ok {
		return "127.0.0.1", 0
	}
	return addr.IP.String(), uint16(addr.Port)
}

// Stats snapshots the counters.
func (g *Gateway) Stats() Stats {
	return Stats{
		ConnectionsAccepted:   g.connectionsAccepted.Load(),
		RequestsReceived:      g.requestsReceived.Load(),
		RequestsForwarded:     g.requestsForwarded.Load(),
		RepliesReturned:       g.repliesReturned.Load(),
		AnsweredFromCache:     g.answeredFromCache.Load(),
		ReinvocationsDetected: g.reinvocationsDetected.Load(),
		RequestsAbandoned:     g.requestsAbandoned.Load(),
		Exceptions:            g.exceptions.Load(),
		ClientsDeparted:       g.clientsDeparted.Load(),
	}
}

// Close stops accepting and severs all client connections. It models the
// gateway process failure of paper section 3.4 as well as orderly
// shutdown: clients with outstanding invocations observe a broken
// connection and never learn their requests' fate.
func (g *Gateway) Close() error {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		g.wg.Wait()
		return nil
	}
	g.closed = true
	close(g.quit)
	conns := make([]net.Conn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	g.mu.Unlock()

	err := g.ln.Close()
	for _, c := range conns {
		_ = c.Close()
	}
	g.wg.Wait()
	return err
}

// Shutdown closes the gateway gracefully: connected clients receive a
// GIOP CloseConnection before their sockets are severed. Close (without
// the notification) doubles as the abrupt process-failure model used in
// the section 3.4/3.5 experiments.
func (g *Gateway) Shutdown() error {
	g.mu.Lock()
	conns := make([]net.Conn, 0, len(g.conns))
	for c := range g.conns {
		conns = append(conns, c)
	}
	g.mu.Unlock()
	for _, c := range conns {
		_ = giop.WriteMessage(c, giop.EncodeCloseConnection(cdr.BigEndian))
	}
	return g.Close()
}

func (g *Gateway) acceptLoop() {
	defer g.wg.Done()
	for {
		conn, err := g.ln.Accept()
		if err != nil {
			return
		}
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			_ = conn.Close()
			return
		}
		g.conns[conn] = struct{}{}
		g.mu.Unlock()
		g.connectionsAccepted.Add(1)
		g.wg.Add(1)
		go g.serveConn(conn)
	}
}

// clientConn is the per-TCP-client state of figure 5a: the client
// identifiers assigned for each destination server group.
type clientConn struct {
	gw  *Gateway
	nc  net.Conn
	wmu sync.Mutex

	mu        sync.Mutex
	ids       map[replication.GroupID]uint64
	cancelled map[uint32]bool // request ids the client cancelled
}

// serveConn handles one external client: the gateway spawned a dedicated
// socket for it and keeps listening for further clients on the original
// socket (paper section 3.1). When the client departs, the gateway
// informs the other gateways so they can delete any state stored on the
// client's behalf (section 3.5).
func (g *Gateway) serveConn(nc net.Conn) {
	defer g.wg.Done()
	cc := &clientConn{gw: g, nc: nc, ids: make(map[replication.GroupID]uint64), cancelled: make(map[uint32]bool)}
	defer func() {
		_ = nc.Close()
		g.mu.Lock()
		delete(g.conns, nc)
		g.mu.Unlock()
		g.announceDepartures(cc)
	}()
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	ra := giop.NewReassembler(nc, 0)
	for {
		msg, err := ra.Next()
		if err != nil {
			if !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
				g.log.Warnf("connection %s: %v", nc.RemoteAddr(), err)
			}
			return
		}
		switch msg.Header.Type {
		case giop.MsgRequest:
			// The message's arrival instant anchors the trace and the
			// latency histogram; with both disabled the clock is skipped.
			var arrived time.Time
			if g.tracer != nil || g.reqHist != nil {
				arrived = time.Now()
			}
			req, err := giop.DecodeRequest(msg)
			if err != nil {
				g.log.Warnf("bad request from %s: %v", nc.RemoteAddr(), err)
				cc.write(giop.EncodeMessageError(msg.Header.Order))
				continue
			}
			g.requestsReceived.Add(1)
			reqWG.Add(1)
			go func() {
				defer reqWG.Done()
				cc.handleRequest(msg, req, arrived)
			}()
		case giop.MsgLocateRequest:
			cc.handleLocate(msg)
		case giop.MsgCloseConn:
			return
		case giop.MsgCancelRequest:
			// The invocation is already in the total order and will
			// execute (it cannot be unsent, in CORBA or here); the
			// client has merely declared it no longer wants the reply,
			// so the gateway stops holding the socket for it.
			if cr, err := giop.DecodeCancelRequest(msg); err == nil {
				cc.mu.Lock()
				cc.cancelled[cr.RequestID] = true
				cc.mu.Unlock()
			}
		default:
			cc.write(giop.EncodeMessageError(msg.Header.Order))
		}
	}
}

func (cc *clientConn) write(msg giop.Message) {
	cc.wmu.Lock()
	defer cc.wmu.Unlock()
	if err := giop.WriteMessageFragmented(cc.nc, msg, 0); err != nil {
		cc.gw.log.Warnf("write to %s: %v", cc.nc.RemoteAddr(), err)
	}
}

// clientID returns the TCP client identifier for this connection and
// destination group. Enhanced clients supply a unique identifier in the
// FT_C service context (paper section 3.5); for plain ORBs the gateway
// assigns the next value of the per-group counter (section 3.2), which
// is what makes their requests unidentifiable across gateway failures
// (section 3.4).
func (cc *clientConn) clientID(group replication.GroupID, req giop.Request) uint64 {
	if data, ok := giop.ContextByID(req.ServiceContexts, giop.FTClientContextID); ok && len(data) > 0 {
		h := fnv.New64a()
		_, _ = h.Write(data)
		id := h.Sum64()
		if id == replication.UnusedClientID {
			id = 1
		}
		return id
	}
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if id, ok := cc.ids[group]; ok {
		return id
	}
	cc.gw.mu.Lock()
	cc.gw.counters[group]++
	// The counter is mixed with a per-gateway-instance nonce: a counter
	// value is only meaningful to the gateway that assigned it, which is
	// precisely the weakness of section 3.4 — a recovered or redundant
	// gateway has no way of knowing that a reconnecting TCP client is
	// the same client, so its resent requests become new operations.
	id := cc.gw.counters[group] ^ cc.gw.instanceNonce | counterIDBit
	cc.gw.mu.Unlock()
	cc.ids[group] = id
	return id
}

// counterIDBit marks gateway-assigned client identifiers; enhanced
// clients' hashed identifiers occupy the rest of the space (a hash could
// still land in the marked half, but the paper's point stands either
// way: counter ids are only meaningful to the assigning gateway).
const counterIDBit = uint64(1) << 63

// handleRequest implements figure 5a: resolve the object key to the
// server group, tag the request with the client and operation
// identifiers, convey it into the fault tolerance domain, and return the
// (first, deduplicated) response over the client's socket.
func (cc *clientConn) handleRequest(msg giop.Message, req giop.Request, arrived time.Time) {
	gw := cc.gw
	group, ok := gw.rm.GroupByKey(req.ObjectKey)
	if !ok {
		gw.exceptions.Add(1)
		cc.writeReplyRaw(msg, req, giop.Reply{
			RequestID: req.RequestID,
			Status:    giop.ReplySystemException,
			Result:    giop.SystemExceptionBody(msg.Header.Order, "IDL:omg.org/CORBA/OBJECT_NOT_EXIST:1.0", 0, 0),
		})
		return
	}
	clientID := cc.clientID(group, req)
	op := replication.OperationID{ParentTS: 0, ChildSeq: req.RequestID}
	key := cacheKey{group: group, clientID: clientID, op: op}
	tkey := obs.TraceKey{ClientID: clientID, ParentTS: op.ParentTS, ChildSeq: op.ChildSeq}
	if gw.tracer != nil {
		gw.tracer.EventAt(tkey, obs.StageGatewayAccept, arrived, "gateway")
		gw.tracer.Event(tkey, obs.StageIIOPDecode, "gateway")
	}

	// A reissued invocation (after the client failed over from a dead
	// gateway) may already have been answered; the gateway group's
	// record answers it without touching the servers. The cheap flag is
	// tested before the cache lookup takes a shard lock.
	if !gw.cfg.DisableGroupRecord {
		if rep, ok := gw.cachedReply(key); ok {
			gw.answeredFromCache.Add(1)
			gw.tracer.Event(tkey, obs.StageDupSuppressed, "gateway-record")
			if req.ResponseExpected {
				gw.repliesReturned.Add(1)
				cc.writeReplyRaw(msg, req, rep)
				gw.tracer.Event(tkey, obs.StageReplyWrite, "gateway")
			}
			gw.observeLatency(arrived)
			return
		}
	}

	// The section 3.5 request record rides on the invocation itself: the
	// gateways observe the invocation (whose source group is theirs) at
	// its place in the total order and build the same (client, op)
	// record a separate record multicast used to carry — one ordered
	// multicast and one request encoding per request instead of two.

	gw.requestsForwarded.Add(1)
	if !req.ResponseExpected {
		// One-way request: convey it into the domain without waiting
		// for (or ever receiving) a response.
		wire, err := giop.EncodeRequest(req.ArgsOrder, req)
		if err != nil {
			gw.log.Errorf("encode one-way: %v", err)
			return
		}
		if err := gw.rm.MulticastMessage(replication.Message{
			Header: replication.Header{
				Kind:     replication.KindInvocation,
				ClientID: clientID,
				SrcGroup: gw.cfg.Group,
				DstGroup: group,
				Op:       op,
			},
			Payload: giop.Marshal(wire),
		}); err != nil {
			gw.requestsAbandoned.Add(1)
		}
		return
	}
	rep, err := gw.rm.Invoke(gw.cfg.Group, clientID, group, op, req, gw.cfg.InvokeTimeout)
	if err != nil {
		gw.requestsAbandoned.Add(1)
		gw.exceptions.Add(1)
		if req.ResponseExpected {
			cc.writeReplyRaw(msg, req, giop.Reply{
				RequestID: req.RequestID,
				Status:    giop.ReplySystemException,
				Result:    giop.SystemExceptionBody(msg.Header.Order, "IDL:omg.org/CORBA/COMM_FAILURE:1.0", 0, 1),
			})
			gw.tracer.Event(tkey, obs.StageReplyWrite, "gateway-exception")
		}
		// Abandoned and excepted requests are exactly the slow ones; the
		// latency histogram must include them.
		gw.observeLatency(arrived)
		return
	}
	if req.ResponseExpected && !cc.isCancelled(req.RequestID) {
		gw.repliesReturned.Add(1)
		cc.writeReplyRaw(msg, req, rep)
		gw.tracer.Event(tkey, obs.StageReplyWrite, "gateway")
	}
	gw.observeLatency(arrived)
}

// isCancelled reports (and consumes) a cancellation for a request id.
func (cc *clientConn) isCancelled(id uint32) bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.cancelled[id] {
		delete(cc.cancelled, id)
		return true
	}
	return false
}

// writeReplyRaw re-encodes a reply in the byte order of the client's
// request and writes it to the socket.
func (cc *clientConn) writeReplyRaw(msg giop.Message, req giop.Request, rep giop.Reply) {
	rep.RequestID = req.RequestID
	out, err := giop.EncodeReplyV(msg.Header.Order, msg.Header.Minor, rep)
	if err != nil {
		cc.gw.log.Errorf("encode reply: %v", err)
		return
	}
	cc.write(out)
}

func (cc *clientConn) handleLocate(msg giop.Message) {
	lr, err := giop.DecodeLocateRequest(msg)
	if err != nil {
		return
	}
	status := giop.LocateUnknownObject
	if _, ok := cc.gw.rm.GroupByKey(lr.ObjectKey); ok {
		// The gateway claims to be the object (paper section 3.1).
		status = giop.LocateObjectHere
	}
	cc.write(giop.EncodeLocateReply(msg.Header.Order, giop.LocateReply{
		RequestID: lr.RequestID,
		Status:    status,
	}))
}

// announceDepartures tells the gateway group that a TCP client's
// connection ended, one notification per client identifier the
// connection used, so every gateway deletes the state it stored on the
// client's behalf. Enhanced clients are exempt: their identifiers
// outlive connections by design (that is what makes failover reissues
// recognizable), so their records age out of the bounded caches instead.
func (g *Gateway) announceDepartures(cc *clientConn) {
	cc.mu.Lock()
	ids := make([]uint64, 0, len(cc.ids))
	for _, id := range cc.ids {
		ids = append(ids, id)
	}
	cc.mu.Unlock()
	for _, id := range ids {
		_ = g.rm.MulticastMessage(replication.Message{
			Header: replication.Header{
				Kind:     replication.KindGatewayControl,
				ClientID: id,
				SrcGroup: g.cfg.Group,
				DstGroup: g.cfg.Group,
			},
		})
	}
}

// departureLoop processes departed-client notifications off the
// replication event loop: the observer contract forbids blocking there,
// and deleting a client's records walks its whole record shard.
func (g *Gateway) departureLoop() {
	defer g.wg.Done()
	for {
		select {
		case id := <-g.departq:
			g.processDeparture(id)
		case <-g.quit:
			// Drain notifications already queued so departures observed
			// before shutdown still clean up.
			for {
				select {
				case id := <-g.departq:
					g.processDeparture(id)
				default:
					return
				}
			}
		}
	}
}

func (g *Gateway) processDeparture(clientID uint64) {
	g.records.dropClient(clientID)
	g.clientsDeparted.Add(1)
}

// observe is the gateway-group observer: it records requests (to detect
// reinvocations) and responses (to answer reissued invocations) flowing
// through any gateway of the group. It runs on the replication event
// loop and must not block.
func (g *Gateway) observe(msg replication.Message, ts uint64) {
	switch msg.Header.Kind {
	case replication.KindGatewayControl:
		// A client departed somewhere in the gateway group: hand the
		// cleanup to the departure worker.
		if msg.Header.ClientID != replication.UnusedClientID {
			select {
			case g.departq <- msg.Header.ClientID:
			case <-g.quit:
			default:
				// Queue full: shed to a goroutine rather than block the
				// event loop.
				g.wg.Add(1)
				go func(id uint64) {
					defer g.wg.Done()
					g.processDeparture(id)
				}(msg.Header.ClientID)
			}
		}
		return
	case replication.KindInvocation:
		if g.cfg.DisableGroupRecord || msg.Header.ClientID == replication.UnusedClientID {
			return
		}
		// The record rides on the invocation itself: every invocation a
		// gateway of this group conveys has this group as its source, and
		// the replication mechanisms dispatch it to the source group's
		// observer at its place in the total order. Reinvocation
		// detection keys on (client, op) with the gateway group, exactly
		// as the former separate record multicast did.
		if msg.Header.SrcGroup != g.cfg.Group {
			return
		}
		key := cacheKey{group: msg.Header.SrcGroup, clientID: msg.Header.ClientID, op: msg.Header.Op}
		if g.records.noteSeen(key) {
			g.reinvocationsDetected.Add(1)
		}
	case replication.KindResponse:
		if g.cfg.DisableGroupRecord || msg.Header.ClientID == replication.UnusedClientID {
			return
		}
		// The raw encapsulated reply is stored as-is (the record store
		// copies it out of the delivery buffer); decoding happens only on
		// the rare reissue path, keeping CDR work off the event loop.
		key := cacheKey{group: msg.Header.SrcGroup, clientID: msg.Header.ClientID, op: msg.Header.Op}
		g.records.storeReply(key, msg.Payload)
	}
}

// cachedReply returns the recorded response for a reissued invocation,
// decoding the stored raw reply. A record that fails to decode (it was
// malformed on the wire and would have been ignored by the old eager
// path too) reads as a miss.
func (g *Gateway) cachedReply(key cacheKey) (giop.Reply, bool) {
	raw, ok := g.records.reply(key)
	if !ok {
		return giop.Reply{}, false
	}
	wire, err := giop.Unmarshal(raw)
	if err != nil {
		return giop.Reply{}, false
	}
	rep, err := giop.DecodeReply(wire)
	if err != nil {
		return giop.Reply{}, false
	}
	return rep, true
}

// RecordedReplies reports how many responses the gateway currently holds
// in its gateway-group record (diagnostics and tests).
func (g *Gateway) RecordedReplies() int { return g.records.countReplies() }

// RecordedRequests reports how many request records the gateway holds.
func (g *Gateway) RecordedRequests() int { return g.records.countSeen() }
