package core_test

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"eternalgw/internal/domain"
	"eternalgw/internal/obs"
	"eternalgw/internal/orb"
	"eternalgw/internal/replication"
	"eternalgw/internal/totem"
)

// obsDomain is fastDomain with the observability subsystem wired in.
func obsDomain(t *testing.T, name string, nodes int, reg *obs.Registry, tracer *obs.Tracer) *domain.Domain {
	t.Helper()
	d, err := domain.New(domain.Config{
		Name:  name,
		Nodes: nodes,
		Totem: totem.Config{
			IdleHold:        100 * time.Microsecond,
			TokenRetransmit: 10 * time.Millisecond,
			FailTimeout:     80 * time.Millisecond,
			GatherTimeout:   20 * time.Millisecond,
		},
		GatewayInvokeTimeout: 5 * time.Second,
		Metrics:              reg,
		Tracer:               tracer,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// TestGatewayStatsConcurrent drives many client connections in parallel
// and checks that the gateway's counters account for every request.
func TestGatewayStatsConcurrent(t *testing.T) {
	d := fastDomain(t, "stats", 3)
	deployRegister(t, d, replication.Active, 2)
	gw, err := d.AddGateway(0, "")
	if err != nil {
		t.Fatal(err)
	}

	const (
		clients  = 8
		perConn  = 25
		expected = clients * perConn
	)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			conn, err := orb.Dial(gw.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer func() { _ = conn.Close() }()
			for i := 0; i < perConn; i++ {
				if _, err := conn.Call([]byte(keyRegister), "ops", nil, orb.InvokeOptions{RequestID: uint32(i + 1)}); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	s := gw.Stats()
	if s.ConnectionsAccepted != clients {
		t.Errorf("ConnectionsAccepted = %d, want %d", s.ConnectionsAccepted, clients)
	}
	if s.RequestsReceived != expected {
		t.Errorf("RequestsReceived = %d, want %d", s.RequestsReceived, expected)
	}
	if s.RequestsForwarded != expected {
		t.Errorf("RequestsForwarded = %d, want %d", s.RequestsForwarded, expected)
	}
	if s.RepliesReturned != expected {
		t.Errorf("RepliesReturned = %d, want %d", s.RepliesReturned, expected)
	}
	if s.Exceptions != 0 || s.RequestsAbandoned != 0 {
		t.Errorf("unexpected failures: %+v", s)
	}
}

// TestMetricsEndToEnd runs a client request through a fully instrumented
// domain and verifies the ops endpoints: /metrics must expose the
// gateway, replication and totem counters the request drove, and
// /healthz must answer.
func TestMetricsEndToEnd(t *testing.T) {
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(64)
	tracer.Register(reg)
	d := obsDomain(t, "e2e", 3, reg, tracer)
	deployRegister(t, d, replication.Active, 2)
	gw, err := d.AddGateway(2, "")
	if err != nil {
		t.Fatal(err)
	}

	srv := httptest.NewServer(obs.NewHandler(reg, tracer).Handler())
	t.Cleanup(srv.Close)

	conn, err := orb.Dial(gw.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = conn.Close() })
	const calls = 5
	for i := 0; i < calls; i++ {
		if _, err := conn.Call([]byte(keyRegister), "ops", nil, orb.InvokeOptions{RequestID: uint32(i + 1)}); err != nil {
			t.Fatal(err)
		}
	}

	body := fetch(t, srv.URL+"/metrics")
	gwLabel := fmt.Sprintf("{gateway=%q}", gw.Addr())
	for _, want := range []string{
		"# TYPE eternalgw_gateway_requests_received_total counter",
		fmt.Sprintf("eternalgw_gateway_requests_received_total%s %d", gwLabel, calls),
		fmt.Sprintf("eternalgw_gateway_replies_returned_total%s %d", gwLabel, calls),
		fmt.Sprintf("eternalgw_gateway_connections_accepted_total%s 1", gwLabel),
		"eternalgw_replication_invocations_executed_total",
		"eternalgw_totem_delivered_total",
		"eternalgw_trace_completed_total",
		"eternalgw_gateway_request_duration_seconds_count",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The request was executed on both active replicas (nodes 0 and 1).
	var executed int
	for _, line := range strings.Split(body, "\n") {
		if strings.HasPrefix(line, "eternalgw_replication_invocations_executed_total") {
			var n int
			if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &n); err == nil {
				executed += n
			}
		}
	}
	if executed < calls {
		t.Errorf("domain-wide invocations executed = %d, want >= %d", executed, calls)
	}

	if got := fetch(t, srv.URL+"/healthz"); !strings.Contains(got, "ok") {
		t.Errorf("/healthz = %q", got)
	}

	// The tracer followed the request across layers: gateway accept
	// through multicast, delivery, execution, and the reply write.
	recent := tracer.Recent()
	if len(recent) == 0 {
		t.Fatal("no completed traces recorded")
	}
	stages := make(map[obs.Stage]bool)
	for _, hop := range recent[0].Breakdown() {
		stages[hop.From] = true
		stages[hop.To] = true
	}
	for _, want := range []obs.Stage{
		obs.StageGatewayAccept, obs.StageMulticastSend,
		obs.StageDeliver, obs.StageExecute, obs.StageReplyWrite,
	} {
		if !stages[want] {
			t.Errorf("trace missing stage %v (got %v)", want, recent[0].Breakdown())
		}
	}

	statusz := fetch(t, srv.URL+"/statusz")
	if !strings.Contains(statusz, "traces") {
		t.Errorf("/statusz missing trace section: %q", statusz)
	}
}

func fetch(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
