package ior_test

import (
	"fmt"

	"eternalgw/internal/ior"
)

// Build, stringify and re-parse a multi-profile reference: the form the
// Eternal interceptor publishes for redundant gateways.
func Example() {
	ref := ior.NewMulti("IDL:Trading/Exchange:1.0",
		ior.IIOPProfile{Host: "gw1.example", Port: 9021, ObjectKey: []byte("exchange")},
		ior.IIOPProfile{Host: "gw2.example", Port: 9021, ObjectKey: []byte("exchange")},
	)
	parsed, err := ior.Parse(ref.String())
	if err != nil {
		fmt.Println("parse failed:", err)
		return
	}
	profiles, _ := parsed.IIOPProfiles()
	fmt.Println(parsed.TypeID)
	for i, p := range profiles {
		fmt.Printf("profile %d: %s key=%s\n", i, p.Addr(), p.ObjectKey)
	}
	// Output:
	// IDL:Trading/Exchange:1.0
	// profile 0: gw1.example:9021 key=exchange
	// profile 1: gw2.example:9021 key=exchange
}
