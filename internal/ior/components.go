package ior

import (
	"fmt"

	"eternalgw/internal/cdr"
)

// Tagged components (CORBA 2.3 §13.6.5): typed entries inside a
// TAG_MULTIPLE_COMPONENTS profile. IORs published by this repository can
// carry an ORB-type marker and a fault-tolerance domain label so tools
// (cmd/iordump) and peers can tell which infrastructure minted a
// reference and which domain it belongs to.

// Component tags.
const (
	// TagORBType is the OMG-assigned TAG_ORB_TYPE component.
	TagORBType uint32 = 0
	// TagFTDomain is a private component carrying the fault tolerance
	// domain's name. Unknown components are ignored by readers, per the
	// specification, so this is safe to attach anywhere.
	TagFTDomain uint32 = 0x45544724 // "ETG$"
)

// ORBTypeEternalGW identifies this implementation in TAG_ORB_TYPE.
// (Vendor ORB type ids are assigned by the OMG; this value sits in the
// range conventionally used by open-source experiments.)
const ORBTypeEternalGW uint32 = 0x45544700 // "ETG\0"

// Component is one tagged component.
type Component struct {
	Tag  uint32
	Data []byte
}

// WithComponents returns a copy of the reference with a
// TAG_MULTIPLE_COMPONENTS profile holding the given components appended.
func (r Ref) WithComponents(components ...Component) Ref {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteOctet(byte(cdr.BigEndian))
	w.WriteULong(uint32(len(components)))
	for _, c := range components {
		w.WriteULong(c.Tag)
		w.WriteOctetSeq(c.Data)
	}
	out := Ref{TypeID: r.TypeID, Profiles: append(append([]TaggedProfile(nil), r.Profiles...), TaggedProfile{
		Tag:  TagMultipleComponents,
		Data: w.Bytes(),
	})}
	return out
}

// Components decodes every tagged component from the reference's
// TAG_MULTIPLE_COMPONENTS profiles, in order.
func (r Ref) Components() ([]Component, error) {
	var out []Component
	for _, p := range r.Profiles {
		if p.Tag != TagMultipleComponents {
			continue
		}
		if len(p.Data) == 0 {
			return nil, fmt.Errorf("ior: empty multiple-components profile")
		}
		rd := cdr.NewReader(p.Data, cdr.ByteOrder(p.Data[0]&1))
		rd.ReadOctet() // byte-order flag
		n := rd.ReadULong()
		if rd.Err() != nil {
			return nil, fmt.Errorf("ior: decode components: %w", rd.Err())
		}
		capHint := int(n)
		if maxEntries := rd.Remaining() / 8; capHint > maxEntries {
			capHint = maxEntries
		}
		for i := uint32(0); i < n && rd.Err() == nil; i++ {
			tag := rd.ReadULong()
			data := rd.ReadOctetSeq()
			cp := make([]byte, len(data))
			copy(cp, data)
			out = append(out, Component{Tag: tag, Data: cp})
		}
		if rd.Err() != nil {
			return nil, fmt.Errorf("ior: decode components: %w", rd.Err())
		}
	}
	return out, nil
}

// ORBTypeComponent builds a TAG_ORB_TYPE component.
func ORBTypeComponent(orbType uint32) Component {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteOctet(byte(cdr.BigEndian))
	w.WriteULong(orbType)
	return Component{Tag: TagORBType, Data: w.Bytes()}
}

// ORBType extracts the TAG_ORB_TYPE value, if present.
func (r Ref) ORBType() (uint32, bool) {
	cs, err := r.Components()
	if err != nil {
		return 0, false
	}
	for _, c := range cs {
		if c.Tag != TagORBType || len(c.Data) == 0 {
			continue
		}
		rd := cdr.NewReader(c.Data, cdr.ByteOrder(c.Data[0]&1))
		rd.ReadOctet()
		v := rd.ReadULong()
		if rd.Err() == nil {
			return v, true
		}
	}
	return 0, false
}

// FTDomainComponent builds the private fault-tolerance-domain component.
func FTDomainComponent(name string) Component {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteOctet(byte(cdr.BigEndian))
	w.WriteString(name)
	return Component{Tag: TagFTDomain, Data: w.Bytes()}
}

// FTDomain extracts the fault-tolerance-domain label, if present.
func (r Ref) FTDomain() (string, bool) {
	cs, err := r.Components()
	if err != nil {
		return "", false
	}
	for _, c := range cs {
		if c.Tag != TagFTDomain || len(c.Data) == 0 {
			continue
		}
		rd := cdr.NewReader(c.Data, cdr.ByteOrder(c.Data[0]&1))
		rd.ReadOctet()
		name := rd.ReadString()
		if rd.Err() == nil {
			return name, true
		}
	}
	return "", false
}
