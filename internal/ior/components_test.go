package ior

import (
	"testing"
)

func TestComponentsRoundTrip(t *testing.T) {
	base := New("IDL:X:1.0", IIOPProfile{Host: "gw", Port: 1, ObjectKey: []byte("k")})
	ref := base.WithComponents(
		ORBTypeComponent(ORBTypeEternalGW),
		FTDomainComponent("new-york"),
	)
	// Survives stringification.
	parsed, err := Parse(ref.String())
	if err != nil {
		t.Fatal(err)
	}
	cs, err := parsed.Components()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs) != 2 {
		t.Fatalf("components = %d", len(cs))
	}
	if v, ok := parsed.ORBType(); !ok || v != ORBTypeEternalGW {
		t.Fatalf("orb type = %#x, %v", v, ok)
	}
	if name, ok := parsed.FTDomain(); !ok || name != "new-york" {
		t.Fatalf("ft domain = %q, %v", name, ok)
	}
	// The IIOP profile is untouched.
	p, err := parsed.PrimaryProfile()
	if err != nil || p.Host != "gw" {
		t.Fatalf("profile = %+v, %v", p, err)
	}
}

func TestComponentsAbsent(t *testing.T) {
	ref := New("IDL:X:1.0", IIOPProfile{Host: "h", Port: 1})
	cs, err := ref.Components()
	if err != nil || len(cs) != 0 {
		t.Fatalf("components = %v, %v", cs, err)
	}
	if _, ok := ref.ORBType(); ok {
		t.Fatal("phantom orb type")
	}
	if _, ok := ref.FTDomain(); ok {
		t.Fatal("phantom ft domain")
	}
}

func TestUnknownComponentsIgnored(t *testing.T) {
	ref := New("IDL:X:1.0", IIOPProfile{Host: "h", Port: 1}).WithComponents(
		Component{Tag: 0x7777, Data: []byte{1, 2, 3}},
		FTDomainComponent("la"),
	)
	if name, ok := ref.FTDomain(); !ok || name != "la" {
		t.Fatalf("ft domain = %q, %v", name, ok)
	}
	if _, ok := ref.ORBType(); ok {
		t.Fatal("phantom orb type among unknown components")
	}
}

func TestMalformedComponentsProfile(t *testing.T) {
	ref := Ref{TypeID: "IDL:X:1.0", Profiles: []TaggedProfile{{Tag: TagMultipleComponents, Data: nil}}}
	if _, err := ref.Components(); err == nil {
		t.Fatal("empty components profile accepted")
	}
}
