package ior

import "testing"

// FuzzParse feeds arbitrary strings through the stringified-IOR parser
// and profile decoder.
func FuzzParse(f *testing.F) {
	good := NewMulti("IDL:X:1.0",
		IIOPProfile{Host: "a", Port: 1, ObjectKey: []byte("k")},
		IIOPProfile{Host: "b", Port: 2, ObjectKey: []byte("k")},
	).String()
	f.Add(good)
	f.Add("IOR:")
	f.Add("IOR:00")
	f.Add("not an ior")

	f.Fuzz(func(t *testing.T, s string) {
		ref, err := Parse(s)
		if err != nil {
			return
		}
		_, _ = ref.IIOPProfiles()
		_ = ref.String()
	})
}
