// Package ior implements CORBA Interoperable Object References (IORs),
// including IIOP profiles, multi-profile IORs for redundant gateways
// (paper section 3.5), and the standard "IOR:<hex>" stringified form.
package ior

import (
	"encoding/hex"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"

	"eternalgw/internal/cdr"
)

// Profile tags from the CORBA specification.
const (
	// TagInternetIOP identifies an IIOP profile (TAG_INTERNET_IOP).
	TagInternetIOP uint32 = 0
	// TagMultipleComponents identifies a multiple-components profile.
	TagMultipleComponents uint32 = 1
)

// Errors reported by the package.
var (
	ErrNotIOR       = errors.New("ior: string does not begin with \"IOR:\"")
	ErrNoIIOP       = errors.New("ior: no IIOP profile present")
	ErrOddHexLength = errors.New("ior: stringified form has odd hex length")
)

// IIOPProfile is the addressing information of one TAG_INTERNET_IOP
// profile: the endpoint an unreplicated client connects to (which, inside
// a fault tolerance domain, the interceptor points at a gateway rather
// than at the real server) and the object key identifying the target.
type IIOPProfile struct {
	Major, Minor byte
	Host         string
	Port         uint16
	ObjectKey    []byte
}

// Addr returns the profile's host:port endpoint.
func (p IIOPProfile) Addr() string {
	return net.JoinHostPort(p.Host, strconv.Itoa(int(p.Port)))
}

// TaggedProfile is a raw profile entry: a tag and its encapsulated data.
type TaggedProfile struct {
	Tag  uint32
	Data []byte
}

// Ref is an object reference: a repository type id plus one or more
// tagged profiles. The paper's enhanced clients traverse the IIOP
// profiles in order, failing over to the next gateway when one dies.
type Ref struct {
	TypeID   string
	Profiles []TaggedProfile
}

// New builds a Ref with a single IIOP profile.
func New(typeID string, p IIOPProfile) Ref {
	return Ref{TypeID: typeID, Profiles: []TaggedProfile{encodeIIOPProfile(p)}}
}

// NewMulti builds a Ref whose IIOP profiles list each endpoint in order.
// This is the multi-profile IOR that the Eternal interceptor "stitches"
// together so clients can reach any of the redundant gateways.
func NewMulti(typeID string, profiles ...IIOPProfile) Ref {
	r := Ref{TypeID: typeID, Profiles: make([]TaggedProfile, 0, len(profiles))}
	for _, p := range profiles {
		r.Profiles = append(r.Profiles, encodeIIOPProfile(p))
	}
	return r
}

// IIOPProfiles decodes and returns every TAG_INTERNET_IOP profile, in the
// order they appear.
func (r Ref) IIOPProfiles() ([]IIOPProfile, error) {
	var out []IIOPProfile
	for _, tp := range r.Profiles {
		if tp.Tag != TagInternetIOP {
			continue
		}
		p, err := decodeIIOPProfile(tp.Data)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, ErrNoIIOP
	}
	return out, nil
}

// PrimaryProfile returns the first IIOP profile.
func (r Ref) PrimaryProfile() (IIOPProfile, error) {
	ps, err := r.IIOPProfiles()
	if err != nil {
		return IIOPProfile{}, err
	}
	return ps[0], nil
}

// Marshal encodes the reference in CDR (as it appears inside message
// bodies: type id string followed by the profile sequence).
func (r Ref) Marshal(w *cdr.Writer) {
	w.WriteString(r.TypeID)
	w.WriteULong(uint32(len(r.Profiles)))
	for _, p := range r.Profiles {
		w.WriteULong(p.Tag)
		w.WriteOctetSeq(p.Data)
	}
}

// Unmarshal decodes a reference from a CDR stream.
func Unmarshal(rd *cdr.Reader) (Ref, error) {
	var r Ref
	r.TypeID = rd.ReadString()
	n := rd.ReadULong()
	if rd.Err() != nil {
		return Ref{}, fmt.Errorf("ior: unmarshal: %w", rd.Err())
	}
	capHint := int(n)
	if maxEntries := rd.Remaining() / 8; capHint > maxEntries {
		capHint = maxEntries
	}
	r.Profiles = make([]TaggedProfile, 0, capHint)
	for i := uint32(0); i < n && rd.Err() == nil; i++ {
		tag := rd.ReadULong()
		data := rd.ReadOctetSeq()
		cp := make([]byte, len(data))
		copy(cp, data)
		r.Profiles = append(r.Profiles, TaggedProfile{Tag: tag, Data: cp})
	}
	if rd.Err() != nil {
		return Ref{}, fmt.Errorf("ior: unmarshal: %w", rd.Err())
	}
	return r, nil
}

// String returns the stringified "IOR:<hex>" form: a hex dump of a CDR
// encapsulation of the reference.
func (r Ref) String() string {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteOctet(byte(cdr.BigEndian))
	r.Marshal(w)
	return "IOR:" + hex.EncodeToString(w.Bytes())
}

// Parse decodes a stringified "IOR:<hex>" reference.
func Parse(s string) (Ref, error) {
	if !strings.HasPrefix(s, "IOR:") {
		return Ref{}, ErrNotIOR
	}
	hx := s[len("IOR:"):]
	if len(hx)%2 != 0 {
		return Ref{}, ErrOddHexLength
	}
	raw, err := hex.DecodeString(hx)
	if err != nil {
		return Ref{}, fmt.Errorf("ior: %w", err)
	}
	if len(raw) == 0 {
		return Ref{}, errors.New("ior: empty reference")
	}
	rd := cdr.NewReader(raw, cdr.ByteOrder(raw[0]&1))
	rd.ReadOctet() // byte-order flag
	return Unmarshal(rd)
}

func encodeIIOPProfile(p IIOPProfile) TaggedProfile {
	if p.Major == 0 {
		p.Major, p.Minor = 1, 0
	}
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteOctet(byte(cdr.BigEndian))
	w.WriteOctet(p.Major)
	w.WriteOctet(p.Minor)
	w.WriteString(p.Host)
	w.WriteUShort(p.Port)
	w.WriteOctetSeq(p.ObjectKey)
	return TaggedProfile{Tag: TagInternetIOP, Data: w.Bytes()}
}

func decodeIIOPProfile(data []byte) (IIOPProfile, error) {
	if len(data) == 0 {
		return IIOPProfile{}, errors.New("ior: empty IIOP profile")
	}
	rd := cdr.NewReader(data, cdr.ByteOrder(data[0]&1))
	rd.ReadOctet() // byte-order flag
	var p IIOPProfile
	p.Major = rd.ReadOctet()
	p.Minor = rd.ReadOctet()
	p.Host = rd.ReadString()
	p.Port = rd.ReadUShort()
	key := rd.ReadOctetSeq()
	if rd.Err() != nil {
		return IIOPProfile{}, fmt.Errorf("ior: decode IIOP profile: %w", rd.Err())
	}
	p.ObjectKey = make([]byte, len(key))
	copy(p.ObjectKey, key)
	return p, nil
}
