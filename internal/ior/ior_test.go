package ior

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"eternalgw/internal/cdr"
)

func TestSingleProfileRoundTrip(t *testing.T) {
	ref := New("IDL:Trading/Exchange:1.0", IIOPProfile{
		Host:      "gateway.example.com",
		Port:      9021,
		ObjectKey: []byte("exchange/nyse"),
	})
	s := ref.String()
	if !strings.HasPrefix(s, "IOR:") {
		t.Fatalf("stringified = %q", s)
	}
	got, err := Parse(s)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if got.TypeID != "IDL:Trading/Exchange:1.0" {
		t.Errorf("type id = %q", got.TypeID)
	}
	p, err := got.PrimaryProfile()
	if err != nil {
		t.Fatalf("primary: %v", err)
	}
	if p.Host != "gateway.example.com" || p.Port != 9021 || string(p.ObjectKey) != "exchange/nyse" {
		t.Errorf("profile = %+v", p)
	}
	if p.Major != 1 || p.Minor != 0 {
		t.Errorf("version = %d.%d", p.Major, p.Minor)
	}
	if p.Addr() != "gateway.example.com:9021" {
		t.Errorf("addr = %q", p.Addr())
	}
}

func TestMultiProfileOrderPreserved(t *testing.T) {
	// Section 3.5: the interceptor stitches the redundant gateways into
	// one multi-profile IOR; clients traverse profiles in order.
	ref := NewMulti("IDL:X:1.0",
		IIOPProfile{Host: "gw1", Port: 1, ObjectKey: []byte("k")},
		IIOPProfile{Host: "gw2", Port: 2, ObjectKey: []byte("k")},
		IIOPProfile{Host: "gw3", Port: 3, ObjectKey: []byte("k")},
	)
	got, err := Parse(ref.String())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ps, err := got.IIOPProfiles()
	if err != nil {
		t.Fatalf("profiles: %v", err)
	}
	if len(ps) != 3 {
		t.Fatalf("len = %d", len(ps))
	}
	for i, want := range []string{"gw1", "gw2", "gw3"} {
		if ps[i].Host != want || ps[i].Port != uint16(i+1) {
			t.Errorf("profile %d = %+v", i, ps[i])
		}
	}
}

func TestUnknownProfilesSkipped(t *testing.T) {
	ref := New("IDL:X:1.0", IIOPProfile{Host: "h", Port: 5, ObjectKey: []byte("k")})
	// Prepend a multiple-components profile the IIOP scan must skip.
	ref.Profiles = append([]TaggedProfile{{Tag: TagMultipleComponents, Data: []byte{0, 1, 2}}}, ref.Profiles...)
	got, err := Parse(ref.String())
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ps, err := got.IIOPProfiles()
	if err != nil || len(ps) != 1 || ps[0].Host != "h" {
		t.Fatalf("profiles = %+v, %v", ps, err)
	}
}

func TestNoIIOPProfile(t *testing.T) {
	ref := Ref{TypeID: "IDL:X:1.0", Profiles: []TaggedProfile{{Tag: TagMultipleComponents, Data: []byte{1}}}}
	if _, err := ref.IIOPProfiles(); !errors.Is(err, ErrNoIIOP) {
		t.Fatalf("err = %v, want ErrNoIIOP", err)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	tests := []struct {
		name string
		in   string
	}{
		{"no prefix", "ior:00"},
		{"odd hex", "IOR:012"},
		{"bad hex", "IOR:zz"},
		{"empty", "IOR:"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Parse(tt.in); err == nil {
				t.Fatalf("Parse(%q) succeeded", tt.in)
			}
		})
	}
}

func TestMarshalInline(t *testing.T) {
	// References embedded in message bodies (LOCATION_FORWARD) use plain
	// CDR marshalling without the encapsulation wrapper.
	ref := New("IDL:X:1.0", IIOPProfile{Host: "h", Port: 7, ObjectKey: []byte("key")})
	w := cdr.NewWriter(cdr.LittleEndian)
	ref.Marshal(w)
	if w.Err() != nil {
		t.Fatalf("marshal: %v", w.Err())
	}
	got, err := Unmarshal(cdr.NewReader(w.Bytes(), cdr.LittleEndian))
	if err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	p, err := got.PrimaryProfile()
	if err != nil || p.Host != "h" || p.Port != 7 {
		t.Fatalf("profile = %+v, %v", p, err)
	}
}

func TestQuickIORRoundTrip(t *testing.T) {
	f := func(typeID, host string, port uint16, key []byte) bool {
		typeID = stripNUL(typeID)
		host = stripNUL(host)
		ref := New(typeID, IIOPProfile{Host: host, Port: port, ObjectKey: key})
		got, err := Parse(ref.String())
		if err != nil {
			return false
		}
		p, err := got.PrimaryProfile()
		if err != nil {
			return false
		}
		return got.TypeID == typeID && p.Host == host && p.Port == port && bytes.Equal(p.ObjectKey, key)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickParseNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		ref, err := Parse("IOR:" + hexOf(data))
		if err == nil {
			_, _ = ref.IIOPProfiles()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func hexOf(b []byte) string {
	const digits = "0123456789abcdef"
	out := make([]byte, 0, len(b)*2)
	for _, c := range b {
		out = append(out, digits[c>>4], digits[c&0xF])
	}
	return string(out)
}

func stripNUL(s string) string {
	return strings.ReplaceAll(s, "\x00", "")
}
