package cdr_test

import (
	"fmt"

	"eternalgw/internal/cdr"
)

// Marshal a record and read it back: writers and readers apply CORBA
// CDR alignment automatically.
func Example() {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteString("ETNL")
	w.WriteULong(100)
	w.WriteDouble(99.5)

	r := cdr.NewReader(w.Bytes(), cdr.BigEndian)
	symbol := r.ReadString()
	qty := r.ReadULong()
	price := r.ReadDouble()
	if err := r.Err(); err != nil {
		fmt.Println("decode failed:", err)
		return
	}
	fmt.Printf("%s x%d @ %.2f\n", symbol, qty, price)
	// Output: ETNL x100 @ 99.50
}

// Encapsulations carry nested CDR data with their own byte order.
func ExampleWriter_WriteEncapsulation() {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteEncapsulation(cdr.LittleEndian, func(ew *cdr.Writer) {
		ew.WriteString("profile-data")
	})

	r := cdr.NewReader(w.Bytes(), cdr.BigEndian)
	inner := r.ReadEncapsulation()
	fmt.Println(inner.Order(), inner.ReadString())
	// Output: little-endian profile-data
}
