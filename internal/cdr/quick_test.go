package cdr

import (
	"bytes"
	"testing"
	"testing/quick"
)

// TestQuickRoundTripULong property: every uint32 survives a write/read
// round trip in both byte orders.
func TestQuickRoundTripULong(t *testing.T) {
	f := func(v uint32, little bool) bool {
		order := BigEndian
		if little {
			order = LittleEndian
		}
		w := NewWriter(order)
		w.WriteULong(v)
		r := NewReader(w.Bytes(), order)
		return r.ReadULong() == v && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRoundTripULongLong property: every uint64 survives a round trip.
func TestQuickRoundTripULongLong(t *testing.T) {
	f := func(v uint64, little bool) bool {
		order := BigEndian
		if little {
			order = LittleEndian
		}
		w := NewWriter(order)
		w.WriteULongLong(v)
		r := NewReader(w.Bytes(), order)
		return r.ReadULongLong() == v && r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRoundTripOctetSeq property: arbitrary byte slices survive a
// sequence<octet> round trip, including after a misaligning prefix.
func TestQuickRoundTripOctetSeq(t *testing.T) {
	f := func(prefix uint8, data []byte) bool {
		w := NewWriter(BigEndian)
		w.WriteOctet(prefix)
		w.WriteOctetSeq(data)
		r := NewReader(w.Bytes(), BigEndian)
		if r.ReadOctet() != prefix {
			return false
		}
		got := r.ReadOctetSeq()
		return r.Err() == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRoundTripMixed property: an interleaved record of all scalar
// kinds round-trips in either byte order, regardless of a random prefix
// length perturbing alignment.
func TestQuickRoundTripMixed(t *testing.T) {
	f := func(pad uint8, a uint16, b uint32, c uint64, d int32, s string, little bool) bool {
		order := BigEndian
		if little {
			order = LittleEndian
		}
		w := NewWriter(order)
		for i := 0; i < int(pad%7); i++ {
			w.WriteOctet(0xCC)
		}
		w.WriteUShort(a)
		w.WriteULong(b)
		w.WriteULongLong(c)
		w.WriteLong(d)
		w.WriteString(s)

		r := NewReader(w.Bytes(), order)
		for i := 0; i < int(pad%7); i++ {
			if r.ReadOctet() != 0xCC {
				return false
			}
		}
		return r.ReadUShort() == a &&
			r.ReadULong() == b &&
			r.ReadULongLong() == c &&
			r.ReadLong() == d &&
			r.ReadString() == s &&
			r.Err() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDecoderNeverPanics property: the reader must fail gracefully on
// arbitrary input, never panic, and never read past the buffer.
func TestQuickDecoderNeverPanics(t *testing.T) {
	f := func(data []byte, little bool) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		order := BigEndian
		if little {
			order = LittleEndian
		}
		r := NewReader(data, order)
		r.ReadString()
		r.ReadOctetSeq()
		r.ReadULongLong()
		r.ReadEncapsulation()
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickAlignmentInvariant property: after writing any prefix, a ulong
// always lands at a 4-aligned offset and a ulonglong at an 8-aligned one.
func TestQuickAlignmentInvariant(t *testing.T) {
	f := func(prefix []byte) bool {
		w := NewWriter(BigEndian)
		w.WriteOctets(prefix)
		w.Align(4)
		if w.Len()%4 != 0 {
			return false
		}
		w.WriteOctet(1)
		w.Align(8)
		return w.Len()%8 == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
