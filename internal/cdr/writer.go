package cdr

import (
	"fmt"
	"math"
)

// Writer encodes values into a CDR stream. The zero value is not usable;
// construct one with NewWriter.
//
// Errors are sticky: the first error (there are none in the write path
// today, but encapsulation helpers may add them) is retained and every
// subsequent operation becomes a no-op. Check Err before using Bytes.
type Writer struct {
	buf   []byte
	order ByteOrder
	// base is the stream position of buf[0]; non-zero only for writers that
	// continue an existing stream (GIOP bodies start at offset 12 but CDR
	// alignment is relative to the body start, so base stays 0 there).
	base int
	err  error
}

// NewWriter returns a Writer producing a stream in the given byte order.
func NewWriter(order ByteOrder) *Writer {
	return &Writer{buf: make([]byte, 0, 64), order: order}
}

// NewWriterCap returns a Writer whose buffer is preallocated to the given
// capacity, for callers that can bound the encoded size up front and want
// to avoid growth copies on the hot path.
func NewWriterCap(order ByteOrder, capacity int) *Writer {
	if capacity < 0 {
		capacity = 0
	}
	return &Writer{buf: make([]byte, 0, capacity), order: order}
}

// Order reports the byte order the writer encodes with.
func (w *Writer) Order() ByteOrder { return w.order }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Err returns the first error encountered, if any.
func (w *Writer) Err() error { return w.err }

// Bytes returns the encoded stream. The returned slice aliases the
// writer's internal buffer; the caller must not retain it across
// further writes.
func (w *Writer) Bytes() []byte { return w.buf }

// Align inserts padding so that the next value begins at a multiple of n
// bytes from the start of the stream.
func (w *Writer) Align(n int) {
	if w.err != nil {
		return
	}
	pad := align(w.base+len(w.buf), n)
	for i := 0; i < pad; i++ {
		w.buf = append(w.buf, 0)
	}
}

// WriteOctet appends a single octet.
func (w *Writer) WriteOctet(v byte) {
	if w.err != nil {
		return
	}
	w.buf = append(w.buf, v)
}

// WriteBool appends a CDR boolean (one octet, 0 or 1).
func (w *Writer) WriteBool(v bool) {
	if v {
		w.WriteOctet(1)
	} else {
		w.WriteOctet(0)
	}
}

// WriteUShort appends an unsigned short aligned to 2 bytes.
func (w *Writer) WriteUShort(v uint16) {
	if w.err != nil {
		return
	}
	w.Align(2)
	if w.order == BigEndian {
		w.buf = append(w.buf, byte(v>>8), byte(v))
	} else {
		w.buf = append(w.buf, byte(v), byte(v>>8))
	}
}

// WriteShort appends a signed short aligned to 2 bytes.
func (w *Writer) WriteShort(v int16) { w.WriteUShort(uint16(v)) }

// WriteULong appends an unsigned long aligned to 4 bytes.
func (w *Writer) WriteULong(v uint32) {
	if w.err != nil {
		return
	}
	w.Align(4)
	if w.order == BigEndian {
		w.buf = append(w.buf, byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	} else {
		w.buf = append(w.buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
}

// WriteLong appends a signed long aligned to 4 bytes.
func (w *Writer) WriteLong(v int32) { w.WriteULong(uint32(v)) }

// WriteULongLong appends an unsigned long long aligned to 8 bytes.
func (w *Writer) WriteULongLong(v uint64) {
	if w.err != nil {
		return
	}
	w.Align(8)
	if w.order == BigEndian {
		w.buf = append(w.buf,
			byte(v>>56), byte(v>>48), byte(v>>40), byte(v>>32),
			byte(v>>24), byte(v>>16), byte(v>>8), byte(v))
	} else {
		w.buf = append(w.buf,
			byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
			byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
}

// WriteLongLong appends a signed long long aligned to 8 bytes.
func (w *Writer) WriteLongLong(v int64) { w.WriteULongLong(uint64(v)) }

// WriteFloat appends an IEEE 754 single-precision float aligned to 4 bytes.
func (w *Writer) WriteFloat(v float32) { w.WriteULong(math.Float32bits(v)) }

// WriteDouble appends an IEEE 754 double-precision float aligned to 8 bytes.
func (w *Writer) WriteDouble(v float64) { w.WriteULongLong(math.Float64bits(v)) }

// WriteString appends a CDR string: a ulong length that counts the
// terminating NUL, the bytes, and a trailing NUL octet.
func (w *Writer) WriteString(s string) {
	if w.err != nil {
		return
	}
	w.WriteULong(uint32(len(s) + 1))
	w.buf = append(w.buf, s...)
	w.buf = append(w.buf, 0)
}

// WriteOctets appends raw bytes without alignment or a length prefix.
func (w *Writer) WriteOctets(b []byte) {
	if w.err != nil {
		return
	}
	w.buf = append(w.buf, b...)
}

// WriteOctetSeq appends a sequence<octet>: a ulong count followed by the
// bytes.
func (w *Writer) WriteOctetSeq(b []byte) {
	if w.err != nil {
		return
	}
	w.WriteULong(uint32(len(b)))
	w.buf = append(w.buf, b...)
}

// WriteEncapsulation appends a sequence<octet> whose contents are a CDR
// encapsulation: a byte-order octet followed by the data produced by body,
// which receives a fresh writer in the requested order.
func (w *Writer) WriteEncapsulation(order ByteOrder, body func(*Writer)) {
	if w.err != nil {
		return
	}
	inner := NewWriter(order)
	inner.WriteOctet(byte(order))
	body(inner)
	if inner.err != nil {
		w.err = fmt.Errorf("cdr: encapsulation: %w", inner.err)
		return
	}
	w.WriteOctetSeq(inner.Bytes())
}
