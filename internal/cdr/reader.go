package cdr

import (
	"errors"
	"fmt"
	"math"
)

// ErrTruncated reports that a CDR stream ended before a complete value
// could be decoded.
var ErrTruncated = errors.New("cdr: truncated stream")

// maxSeqLen bounds the declared length of strings and octet sequences so a
// corrupt or hostile stream cannot trigger enormous allocations. A
// sequence can never be longer than the remaining bytes anyway, so the
// reader checks the declared length against what is left.
const maxSeqLen = 1 << 30

// Reader decodes values from a CDR stream. Errors are sticky: after the
// first decoding error every subsequent read returns a zero value, and the
// error is reported by Err. This keeps sequential unmarshalling code free
// of per-field error checks; callers must check Err once at the end.
type Reader struct {
	buf   []byte
	pos   int
	order ByteOrder
	err   error
}

// NewReader returns a Reader over buf decoding in the given byte order.
func NewReader(buf []byte, order ByteOrder) *Reader {
	return &Reader{buf: buf, order: order}
}

// Order reports the byte order the reader decodes with.
func (r *Reader) Order() ByteOrder { return r.order }

// Err returns the first decoding error, or nil.
func (r *Reader) Err() error { return r.err }

// Pos returns the current decoding position within the stream.
func (r *Reader) Pos() int { return r.pos }

// Remaining returns the number of bytes left to decode.
func (r *Reader) Remaining() int { return len(r.buf) - r.pos }

// fail records the first error.
func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Align advances the position to the next multiple of n bytes.
func (r *Reader) Align(n int) {
	if r.err != nil {
		return
	}
	pad := align(r.pos, n)
	if r.pos+pad > len(r.buf) {
		r.fail(ErrTruncated)
		return
	}
	r.pos += pad
}

// take returns the next n bytes after aligning to n (for primitives) and
// advances the position, or nil on error.
func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	r.Align(n)
	if r.err != nil {
		return nil
	}
	if r.pos+n > len(r.buf) {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

// ReadOctet decodes a single octet.
func (r *Reader) ReadOctet() byte {
	if r.err != nil {
		return 0
	}
	if r.pos >= len(r.buf) {
		r.fail(ErrTruncated)
		return 0
	}
	b := r.buf[r.pos]
	r.pos++
	return b
}

// ReadBool decodes a CDR boolean.
func (r *Reader) ReadBool() bool { return r.ReadOctet() != 0 }

// ReadUShort decodes an unsigned short.
func (r *Reader) ReadUShort() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	if r.order == BigEndian {
		return uint16(b[0])<<8 | uint16(b[1])
	}
	return uint16(b[1])<<8 | uint16(b[0])
}

// ReadShort decodes a signed short.
func (r *Reader) ReadShort() int16 { return int16(r.ReadUShort()) }

// ReadULong decodes an unsigned long.
func (r *Reader) ReadULong() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	if r.order == BigEndian {
		return uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	}
	return uint32(b[3])<<24 | uint32(b[2])<<16 | uint32(b[1])<<8 | uint32(b[0])
}

// ReadLong decodes a signed long.
func (r *Reader) ReadLong() int32 { return int32(r.ReadULong()) }

// ReadULongLong decodes an unsigned long long.
func (r *Reader) ReadULongLong() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	if r.order == BigEndian {
		return uint64(b[0])<<56 | uint64(b[1])<<48 | uint64(b[2])<<40 | uint64(b[3])<<32 |
			uint64(b[4])<<24 | uint64(b[5])<<16 | uint64(b[6])<<8 | uint64(b[7])
	}
	return uint64(b[7])<<56 | uint64(b[6])<<48 | uint64(b[5])<<40 | uint64(b[4])<<32 |
		uint64(b[3])<<24 | uint64(b[2])<<16 | uint64(b[1])<<8 | uint64(b[0])
}

// ReadLongLong decodes a signed long long.
func (r *Reader) ReadLongLong() int64 { return int64(r.ReadULongLong()) }

// ReadFloat decodes a single-precision float.
func (r *Reader) ReadFloat() float32 { return math.Float32frombits(r.ReadULong()) }

// ReadDouble decodes a double-precision float.
func (r *Reader) ReadDouble() float64 { return math.Float64frombits(r.ReadULongLong()) }

// ReadString decodes a CDR string (length includes the terminating NUL).
func (r *Reader) ReadString() string {
	n := r.ReadULong()
	if r.err != nil {
		return ""
	}
	if n == 0 {
		// Tolerated: some ORBs emit zero-length (rather than 1 + NUL)
		// for empty strings.
		return ""
	}
	if n > maxSeqLen || int(n) > r.Remaining() {
		r.fail(fmt.Errorf("cdr: string length %d exceeds remaining %d bytes: %w", n, r.Remaining(), ErrTruncated))
		return ""
	}
	b := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	if b[len(b)-1] != 0 {
		r.fail(errors.New("cdr: string missing NUL terminator"))
		return ""
	}
	return string(b[:len(b)-1])
}

// ReadOctets decodes n raw bytes without alignment. The returned slice
// aliases the reader's buffer.
func (r *Reader) ReadOctets(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.Remaining() {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.pos : r.pos+n]
	r.pos += n
	return b
}

// ReadOctetSeq decodes a sequence<octet>. The returned slice aliases the
// reader's buffer.
func (r *Reader) ReadOctetSeq() []byte {
	n := r.ReadULong()
	if r.err != nil {
		return nil
	}
	if n > maxSeqLen || int(n) > r.Remaining() {
		r.fail(fmt.Errorf("cdr: sequence length %d exceeds remaining %d bytes: %w", n, r.Remaining(), ErrTruncated))
		return nil
	}
	return r.ReadOctets(int(n))
}

// ReadEncapsulation decodes a sequence<octet> holding a CDR encapsulation
// and returns a Reader positioned after the leading byte-order octet,
// decoding in the encapsulated order.
func (r *Reader) ReadEncapsulation() *Reader {
	data := r.ReadOctetSeq()
	if r.err != nil {
		return &Reader{err: r.err}
	}
	if len(data) == 0 {
		r.fail(errors.New("cdr: empty encapsulation"))
		return &Reader{err: r.err}
	}
	order := ByteOrder(data[0] & 1)
	inner := NewReader(data, order)
	inner.pos = 1
	return inner
}
