// Package cdr implements the CORBA Common Data Representation (CDR)
// transfer syntax used by GIOP/IIOP messages.
//
// CDR encodes primitive types aligned to their natural size, measured from
// the start of the enclosing message body or encapsulation, and supports
// both big-endian and little-endian byte orders. Encapsulations (used for
// IOR profiles and service contexts) are octet sequences whose first octet
// records the byte order of the encapsulated data.
//
// The package follows the CORBA 2.3 specification, chapter 15.3.
package cdr

// ByteOrder identifies the endianness of a CDR stream. The on-the-wire
// encoding is a single octet: 0 for big-endian, 1 for little-endian, as
// specified for GIOP message headers and encapsulations.
type ByteOrder uint8

const (
	// BigEndian is the network byte order used by default.
	BigEndian ByteOrder = 0
	// LittleEndian is the byte order flag value 1.
	LittleEndian ByteOrder = 1
)

// String returns the conventional name of the byte order.
func (o ByteOrder) String() string {
	if o == LittleEndian {
		return "little-endian"
	}
	return "big-endian"
}

// align returns the number of padding bytes needed to advance pos to the
// next multiple of n. CDR alignment is always relative to the start of the
// stream, and n is one of 1, 2, 4, 8.
func align(pos, n int) int {
	r := pos % n
	if r == 0 {
		return 0
	}
	return n - r
}
