package cdr

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestAlignPadding(t *testing.T) {
	tests := []struct {
		pos, n, want int
	}{
		{0, 4, 0},
		{1, 4, 3},
		{2, 4, 2},
		{3, 4, 1},
		{4, 4, 0},
		{1, 2, 1},
		{7, 8, 1},
		{8, 8, 0},
		{9, 8, 7},
		{5, 1, 0},
	}
	for _, tt := range tests {
		if got := align(tt.pos, tt.n); got != tt.want {
			t.Errorf("align(%d, %d) = %d, want %d", tt.pos, tt.n, got, tt.want)
		}
	}
}

func TestWriterAlignmentInsertsPadding(t *testing.T) {
	w := NewWriter(BigEndian)
	w.WriteOctet(0xAA)
	w.WriteULong(0x01020304)
	want := []byte{0xAA, 0, 0, 0, 0x01, 0x02, 0x03, 0x04}
	if !bytes.Equal(w.Bytes(), want) {
		t.Fatalf("got % x, want % x", w.Bytes(), want)
	}
}

func TestWriterLittleEndianULong(t *testing.T) {
	w := NewWriter(LittleEndian)
	w.WriteULong(0x01020304)
	want := []byte{0x04, 0x03, 0x02, 0x01}
	if !bytes.Equal(w.Bytes(), want) {
		t.Fatalf("got % x, want % x", w.Bytes(), want)
	}
}

func TestStringEncoding(t *testing.T) {
	w := NewWriter(BigEndian)
	w.WriteString("hi")
	want := []byte{0, 0, 0, 3, 'h', 'i', 0}
	if !bytes.Equal(w.Bytes(), want) {
		t.Fatalf("got % x, want % x", w.Bytes(), want)
	}
	r := NewReader(w.Bytes(), BigEndian)
	if got := r.ReadString(); got != "hi" || r.Err() != nil {
		t.Fatalf("ReadString = %q, err %v", got, r.Err())
	}
}

func TestEmptyStringTolerated(t *testing.T) {
	// A zero-length string (no NUL at all) must decode as "".
	r := NewReader([]byte{0, 0, 0, 0}, BigEndian)
	if got := r.ReadString(); got != "" || r.Err() != nil {
		t.Fatalf("ReadString = %q, err %v", got, r.Err())
	}
}

func TestStringMissingNUL(t *testing.T) {
	r := NewReader([]byte{0, 0, 0, 2, 'h', 'i'}, BigEndian)
	r.ReadString()
	if r.Err() == nil {
		t.Fatal("expected error for string without NUL terminator")
	}
}

func TestRoundTripAllPrimitives(t *testing.T) {
	for _, order := range []ByteOrder{BigEndian, LittleEndian} {
		w := NewWriter(order)
		w.WriteOctet(0x7F)
		w.WriteBool(true)
		w.WriteUShort(0xBEEF)
		w.WriteShort(-12345)
		w.WriteULong(0xDEADBEEF)
		w.WriteLong(-123456789)
		w.WriteULongLong(0x0102030405060708)
		w.WriteLongLong(-987654321012345)
		w.WriteFloat(3.25)
		w.WriteDouble(math.Pi)
		w.WriteString("eternal")
		w.WriteOctetSeq([]byte{1, 2, 3})
		if w.Err() != nil {
			t.Fatalf("%v: write err: %v", order, w.Err())
		}

		r := NewReader(w.Bytes(), order)
		if got := r.ReadOctet(); got != 0x7F {
			t.Errorf("%v: octet = %#x", order, got)
		}
		if got := r.ReadBool(); !got {
			t.Errorf("%v: bool = %v", order, got)
		}
		if got := r.ReadUShort(); got != 0xBEEF {
			t.Errorf("%v: ushort = %#x", order, got)
		}
		if got := r.ReadShort(); got != -12345 {
			t.Errorf("%v: short = %d", order, got)
		}
		if got := r.ReadULong(); got != 0xDEADBEEF {
			t.Errorf("%v: ulong = %#x", order, got)
		}
		if got := r.ReadLong(); got != -123456789 {
			t.Errorf("%v: long = %d", order, got)
		}
		if got := r.ReadULongLong(); got != 0x0102030405060708 {
			t.Errorf("%v: ulonglong = %#x", order, got)
		}
		if got := r.ReadLongLong(); got != -987654321012345 {
			t.Errorf("%v: longlong = %d", order, got)
		}
		if got := r.ReadFloat(); got != 3.25 {
			t.Errorf("%v: float = %v", order, got)
		}
		if got := r.ReadDouble(); got != math.Pi {
			t.Errorf("%v: double = %v", order, got)
		}
		if got := r.ReadString(); got != "eternal" {
			t.Errorf("%v: string = %q", order, got)
		}
		if got := r.ReadOctetSeq(); !bytes.Equal(got, []byte{1, 2, 3}) {
			t.Errorf("%v: octetseq = % x", order, got)
		}
		if r.Err() != nil {
			t.Fatalf("%v: read err: %v", order, r.Err())
		}
		if r.Remaining() != 0 {
			t.Errorf("%v: %d bytes left over", order, r.Remaining())
		}
	}
}

func TestReaderTruncation(t *testing.T) {
	tests := []struct {
		name string
		read func(*Reader)
	}{
		{"octet", func(r *Reader) { r.ReadOctet() }},
		{"ushort", func(r *Reader) { r.ReadUShort() }},
		{"ulong", func(r *Reader) { r.ReadULong() }},
		{"ulonglong", func(r *Reader) { r.ReadULongLong() }},
		{"string", func(r *Reader) { r.ReadString() }},
		{"octetseq", func(r *Reader) { r.ReadOctetSeq() }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := NewReader(nil, BigEndian)
			tt.read(r)
			if !errors.Is(r.Err(), ErrTruncated) {
				t.Fatalf("err = %v, want ErrTruncated", r.Err())
			}
		})
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{1, 2}, BigEndian)
	r.ReadULong() // fails: only 2 bytes
	if r.Err() == nil {
		t.Fatal("expected error")
	}
	first := r.Err()
	// All further reads return zero values without changing the error.
	if got := r.ReadOctet(); got != 0 {
		t.Errorf("post-error octet = %d", got)
	}
	if got := r.ReadString(); got != "" {
		t.Errorf("post-error string = %q", got)
	}
	if r.Err() != first {
		t.Errorf("error changed: %v -> %v", first, r.Err())
	}
}

func TestHugeSequenceLengthRejected(t *testing.T) {
	// Declared length 0xFFFFFFFF with no payload must fail cleanly rather
	// than attempt the allocation.
	r := NewReader([]byte{0xFF, 0xFF, 0xFF, 0xFF}, BigEndian)
	r.ReadOctetSeq()
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", r.Err())
	}
}

func TestEncapsulationRoundTrip(t *testing.T) {
	for _, inner := range []ByteOrder{BigEndian, LittleEndian} {
		w := NewWriter(BigEndian)
		w.WriteEncapsulation(inner, func(ew *Writer) {
			ew.WriteULong(42)
			ew.WriteString("profile")
		})
		if w.Err() != nil {
			t.Fatalf("write: %v", w.Err())
		}
		r := NewReader(w.Bytes(), BigEndian)
		er := r.ReadEncapsulation()
		if r.Err() != nil {
			t.Fatalf("read: %v", r.Err())
		}
		if er.Order() != inner {
			t.Errorf("inner order = %v, want %v", er.Order(), inner)
		}
		if got := er.ReadULong(); got != 42 {
			t.Errorf("ulong = %d", got)
		}
		if got := er.ReadString(); got != "profile" {
			t.Errorf("string = %q", got)
		}
		if er.Err() != nil {
			t.Fatalf("inner err: %v", er.Err())
		}
	}
}

func TestEncapsulationAlignmentIsSelfRelative(t *testing.T) {
	// Alignment inside an encapsulation is relative to the start of the
	// encapsulation, not the outer stream: write an odd number of octets
	// first so an absolute-position implementation would misalign.
	w := NewWriter(BigEndian)
	w.WriteOctet(0xEE)
	w.WriteEncapsulation(BigEndian, func(ew *Writer) {
		ew.WriteULongLong(0x1122334455667788)
	})
	r := NewReader(w.Bytes(), BigEndian)
	if got := r.ReadOctet(); got != 0xEE {
		t.Fatalf("prefix octet = %#x", got)
	}
	er := r.ReadEncapsulation()
	if got := er.ReadULongLong(); got != 0x1122334455667788 {
		t.Fatalf("ulonglong = %#x, err %v", got, er.Err())
	}
}

func TestEmptyEncapsulationRejected(t *testing.T) {
	r := NewReader([]byte{0, 0, 0, 0}, BigEndian)
	r.ReadEncapsulation()
	if r.Err() == nil {
		t.Fatal("expected error for empty encapsulation")
	}
}

func TestReaderAlignTruncated(t *testing.T) {
	r := NewReader([]byte{1}, BigEndian)
	r.ReadOctet()
	r.Align(4)
	if !errors.Is(r.Err(), ErrTruncated) {
		t.Fatalf("err = %v, want ErrTruncated", r.Err())
	}
}

func TestWriterAppendsAreSequential(t *testing.T) {
	w := NewWriter(BigEndian)
	w.WriteUShort(1)
	w.WriteUShort(2)
	w.WriteULong(3)
	// ushort(2) is already 2-aligned at pos 2; ulong needs no pad at pos 4.
	if w.Len() != 8 {
		t.Fatalf("len = %d, want 8", w.Len())
	}
}
