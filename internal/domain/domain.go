// Package domain composes the substrates of this repository into
// runnable fault tolerance domains: a simulated network, a Totem ring, a
// replication-mechanisms instance per processor, the management objects,
// and any number of gateways on the domain's edge.
//
// A Domain is the paper's "fault tolerance domain": the domain of
// control of one fault tolerance infrastructure (paper section 1).
// Multiple domains, each with its own network and ring, can be bridged
// through their gateways exactly as in figure 1: a replicated bridge
// object inside one domain forwards invocations over TCP/IIOP to
// another domain's gateway.
package domain

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"eternalgw/internal/admission"
	"eternalgw/internal/core"
	"eternalgw/internal/ftmgmt"
	"eternalgw/internal/interceptor"
	"eternalgw/internal/ior"
	"eternalgw/internal/memnet"
	"eternalgw/internal/obs"
	"eternalgw/internal/replication"
	"eternalgw/internal/totem"
)

// DefaultGatewayGroup is the object group id gateways join unless the
// caller chooses another.
const DefaultGatewayGroup replication.GroupID = 1

// Config parameterizes a Domain.
type Config struct {
	// Name identifies the domain (e.g. "new-york").
	Name string
	// Nodes is the number of processors in the domain.
	Nodes int
	// NetOptions configure the simulated network (loss, delay, seed).
	NetOptions []memnet.Option
	// Totem overrides protocol timeouts; zero values use totem defaults.
	Totem totem.Config
	// Replication overrides mechanism tuning; zero values use defaults.
	Replication replication.Config
	// GatewayGroup is the gateways' object group id.
	GatewayGroup replication.GroupID
	// GatewayInvokeTimeout bounds invocations forwarded by gateways.
	GatewayInvokeTimeout time.Duration
	// Admission, when set, is the admission-control template applied to
	// every gateway added with AddGateway: each gateway gets its own
	// controller built from a copy of this config, with the breaker's
	// backpressure signal defaulted to the hosting node's replication
	// mechanisms. Nil disables admission control (every connection and
	// request is accepted), matching the pre-admission behaviour.
	Admission *admission.Config
	// TransportFactory, when set, supplies each processor's network
	// attachment instead of the simulated in-process network — e.g.
	// udpnet endpoints for a domain running over real UDP sockets. The
	// fault-injection helpers (CrashNode, RestartNode) act on the
	// simulated network and therefore require the default transport.
	TransportFactory func(id memnet.NodeID) (totem.Transport, error)
	// Metrics, when set, is threaded into every layer of the domain:
	// totem protocol counters per node, replication mechanism counters
	// per node, management gauges, and gateway counters as gateways are
	// added.
	Metrics *obs.Registry
	// Tracer, when set, is threaded into the replication mechanisms and
	// gateways so one invocation's span events join across layers. Nil
	// disables tracing.
	Tracer *obs.Tracer
	// Log, when set, gives the domain's components a leveled logger;
	// each layer tags lines with its own component.
	Log *obs.Logger
	// OnIORUpdate, when set, is called with the object key and the
	// freshly stitched reference each time the domain republishes the
	// references it has handed out because the gateway set changed
	// (AddGateway, RemoveGateway). Enhanced thin clients feed the new
	// reference to RefreshProfiles so they fail over onto the surviving
	// profile set (paper section 3.5). Called from the reconfiguring
	// goroutine; keep it quick.
	OnIORUpdate func(objectKey []byte, ref ior.Ref)
}

// Node is one processor of the domain.
type Node struct {
	ID    memnet.NodeID
	Totem *totem.Node
	RM    *replication.Mechanisms
}

// Domain is a running fault tolerance domain.
type Domain struct {
	Name string
	Net  *memnet.Network

	cfg     Config
	nodes   []*Node
	manager *ftmgmt.Manager
	closed  bool

	mu        sync.Mutex // guards gateways, gwNode, published
	gateways  []*core.Gateway
	gwNode    map[*core.Gateway]int
	published map[string]string // object key -> type id, for republishing
}

// New builds and starts a domain with cfg.Nodes processors.
func New(cfg Config) (*Domain, error) {
	if cfg.Nodes <= 0 {
		return nil, errors.New("domain: need at least one node")
	}
	if cfg.Name == "" {
		cfg.Name = "domain"
	}
	if cfg.GatewayGroup == 0 {
		cfg.GatewayGroup = DefaultGatewayGroup
	}
	d := &Domain{
		Name:      cfg.Name,
		Net:       memnet.New(cfg.NetOptions...),
		cfg:       cfg,
		gwNode:    make(map[*core.Gateway]int),
		published: make(map[string]string),
	}
	ids := make([]memnet.NodeID, cfg.Nodes)
	for i := range ids {
		ids[i] = memnet.NodeID(fmt.Sprintf("%s/p%02d", cfg.Name, i))
	}
	for _, id := range ids {
		var (
			ep  totem.Transport
			err error
		)
		if cfg.TransportFactory != nil {
			ep, err = cfg.TransportFactory(id)
		} else {
			ep, err = d.Net.Attach(id)
		}
		if err != nil {
			d.Close()
			return nil, err
		}
		tcfg := cfg.Totem
		tcfg.ID = id
		tcfg.Endpoint = ep
		tcfg.Members = ids
		tcfg.Metrics = cfg.Metrics
		tn, err := totem.Start(tcfg)
		if err != nil {
			d.Close()
			return nil, err
		}
		rcfg := cfg.Replication
		rcfg.Node = tn
		rcfg.NodeID = id
		rcfg.Metrics = cfg.Metrics
		rcfg.Tracer = cfg.Tracer
		rm, err := replication.New(rcfg)
		if err != nil {
			tn.Stop()
			d.Close()
			return nil, err
		}
		d.nodes = append(d.nodes, &Node{ID: id, Totem: tn, RM: rm})
	}
	hosts := make([]ftmgmt.Host, 0, len(d.nodes))
	for _, n := range d.nodes {
		hosts = append(hosts, ftmgmt.Host{ID: n.ID, RM: n.RM})
	}
	d.manager = ftmgmt.NewManager(hosts...)
	d.manager.Instrument(cfg.Metrics, cfg.Log)
	// The gateway group exists from the start so gateways can join it.
	if err := d.nodes[0].RM.CreateGroup(cfg.GatewayGroup, replication.Active, nil); err != nil {
		d.Close()
		return nil, err
	}
	for _, n := range d.nodes {
		if err := n.RM.WaitForGroup(cfg.GatewayGroup, 10*time.Second); err != nil {
			d.Close()
			return nil, fmt.Errorf("domain %s: gateway group: %w", cfg.Name, err)
		}
	}
	return d, nil
}

// Nodes returns the number of processors.
func (d *Domain) Nodes() int { return len(d.nodes) }

// Node returns processor i.
func (d *Domain) Node(i int) *Node { return d.nodes[i] }

// Manager returns the domain's management objects.
func (d *Domain) Manager() *ftmgmt.Manager { return d.manager }

// Gateways returns the domain's gateways in creation order.
func (d *Domain) Gateways() []*core.Gateway {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]*core.Gateway(nil), d.gateways...)
}

// AddGateway starts a gateway on processor i listening on addr (empty
// for an ephemeral localhost port) and waits until it is a live member
// of the gateway group. The domain's Admission template, if any,
// parameterizes the gateway's admission controller.
func (d *Domain) AddGateway(i int, addr string) (*core.Gateway, error) {
	return d.AddGatewayAdmission(i, addr, d.cfg.Admission)
}

// AddGatewayAdmission is AddGateway with an explicit admission config
// for this gateway (overriding the domain template; nil disables
// admission). When the config has no Backpressure signal, the hosting
// node's replication mechanisms supply it, so the breaker trips on that
// node's totem send backlog and pending-call occupancy.
func (d *Domain) AddGatewayAdmission(i int, addr string, ac *admission.Config) (*core.Gateway, error) {
	n := d.nodes[i]
	var adm *admission.Controller
	if ac != nil {
		cfg := *ac
		if cfg.Backpressure == nil {
			cfg.Backpressure = n.RM.Backpressure
		}
		adm = admission.New(cfg)
	}
	gw, err := core.New(core.Config{
		RM:            n.RM,
		Group:         d.cfg.GatewayGroup,
		ListenAddr:    addr,
		InvokeTimeout: d.cfg.GatewayInvokeTimeout,
		Admission:     adm,
		Metrics:       d.cfg.Metrics,
		Tracer:        d.cfg.Tracer,
		Log:           d.cfg.Log,
	})
	if err != nil {
		return nil, err
	}
	if err := n.RM.WaitSynced(d.cfg.GatewayGroup, 10*time.Second); err != nil {
		_ = gw.Close()
		return nil, err
	}
	d.mu.Lock()
	d.gateways = append(d.gateways, gw)
	d.gwNode[gw] = i
	d.mu.Unlock()
	d.republishAll()
	return gw, nil
}

// RemoveGateway retires a gateway from the domain's edge under live
// traffic. The published references are re-stitched without it first, so
// enhanced clients learn the surviving profile set before the gateway
// goes away; the gateway then drains its in-flight invocations under
// drainTimeout (zero means 5s) and hands its remaining clients over with
// a GIOP CloseConnection, after which their reissued invocations are
// answered by the redundant gateways from the group's record. If the
// gateway was the last one on its processor, the processor's client
// membership in the gateway group is released.
func (d *Domain) RemoveGateway(gw *core.Gateway, drainTimeout time.Duration) error {
	d.mu.Lock()
	idx, ok := d.gwNode[gw]
	if !ok {
		d.mu.Unlock()
		return errors.New("domain: gateway is not part of this domain")
	}
	delete(d.gwNode, gw)
	kept := make([]*core.Gateway, 0, len(d.gateways)-1)
	for _, g := range d.gateways {
		if g != gw {
			kept = append(kept, g)
		}
	}
	d.gateways = kept
	lastOnNode := true
	for _, i := range d.gwNode {
		if i == idx {
			lastOnNode = false
			break
		}
	}
	d.mu.Unlock()

	d.republishAll()
	if drainTimeout <= 0 {
		drainTimeout = 5 * time.Second
	}
	err := gw.Drain(drainTimeout)
	if lastOnNode {
		if lerr := d.nodes[idx].RM.LeaveGroup(d.cfg.GatewayGroup); lerr != nil && err == nil {
			err = lerr
		}
	}
	return err
}

// PublishIOR builds the reference external clients use to reach the
// object: the interceptor's address rewriting pointed it at the
// gateways, one profile per gateway in failover order (paper sections
// 3.1 and 3.5).
func (d *Domain) PublishIOR(typeID string, objectKey []byte) (ior.Ref, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	ref, err := d.stitchLocked(typeID, objectKey)
	if err != nil {
		return ior.Ref{}, err
	}
	// Remember what was handed out so the reference can be re-stitched
	// when the gateway set changes.
	d.published[string(objectKey)] = typeID
	return ref, nil
}

// stitchLocked builds a reference from the current gateway set. Callers
// hold mu.
func (d *Domain) stitchLocked(typeID string, objectKey []byte) (ior.Ref, error) {
	if len(d.gateways) == 0 {
		return ior.Ref{}, errors.New("domain: no gateways to publish")
	}
	addrs := make([]interceptor.GatewayAddr, 0, len(d.gateways))
	for _, gw := range d.gateways {
		host, port := gw.HostPort()
		addrs = append(addrs, interceptor.GatewayAddr{Host: host, Port: port})
	}
	ref := interceptor.StitchIOR(typeID, objectKey, addrs...)
	// Tag the reference with the minting implementation and the domain
	// name (ignored by readers that do not understand the components).
	return ref.WithComponents(
		ior.ORBTypeComponent(ior.ORBTypeEternalGW),
		ior.FTDomainComponent(d.Name),
	), nil
}

// republishAll re-stitches every published reference against the current
// gateway set and hands each to the OnIORUpdate hook.
func (d *Domain) republishAll() {
	if d.cfg.OnIORUpdate == nil {
		return
	}
	type update struct {
		key string
		ref ior.Ref
	}
	d.mu.Lock()
	updates := make([]update, 0, len(d.published))
	for key, typeID := range d.published {
		ref, err := d.stitchLocked(typeID, []byte(key))
		if err != nil {
			continue // no gateways left; publish again once one is added
		}
		updates = append(updates, update{key: key, ref: ref})
	}
	d.mu.Unlock()
	// The hook runs outside mu so it may call back into the domain.
	for _, u := range updates {
		d.cfg.OnIORUpdate([]byte(u.key), u.ref)
	}
}

// CrashNode simulates a processor failure: its network endpoint goes
// silent and any gateways it hosts drop their connections.
func (d *Domain) CrashNode(i int) {
	d.Net.Crash(d.nodes[i].ID)
	d.mu.Lock()
	var closing []*core.Gateway
	for gw, idx := range d.gwNode {
		if idx == i {
			closing = append(closing, gw)
		}
	}
	d.mu.Unlock()
	for _, gw := range closing {
		_ = gw.Close()
	}
}

// RestartNode heals a crashed processor's network endpoint; its totem
// node rejoins the ring automatically.
func (d *Domain) RestartNode(i int) {
	d.Net.Restart(d.nodes[i].ID)
}

// Close stops everything.
func (d *Domain) Close() {
	if d.closed {
		return
	}
	d.closed = true
	if d.manager != nil {
		d.manager.Close()
	}
	for _, gw := range d.Gateways() {
		_ = gw.Close()
	}
	for _, n := range d.nodes {
		n.RM.Stop()
	}
	for _, n := range d.nodes {
		n.Totem.Stop()
	}
}
