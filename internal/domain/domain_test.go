package domain_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/domain"
	"eternalgw/internal/ftmgmt"
	"eternalgw/internal/ior"
	"eternalgw/internal/orb"
	"eternalgw/internal/replication"
	"eternalgw/internal/thinclient"
	"eternalgw/internal/totem"
)

func fastTotem() totem.Config {
	return totem.Config{
		IdleHold:        100 * time.Microsecond,
		TokenRetransmit: 10 * time.Millisecond,
		FailTimeout:     80 * time.Millisecond,
		GatherTimeout:   20 * time.Millisecond,
	}
}

func newDomain(t *testing.T, name string, nodes int) *domain.Domain {
	t.Helper()
	d, err := domain.New(domain.Config{
		Name:                 name,
		Nodes:                nodes,
		Totem:                fastTotem(),
		GatewayInvokeTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// adderApp sums submitted values.
type adderApp struct {
	mu    sync.Mutex
	total int64
}

func (a *adderApp) Invoke(op string, args *cdr.Reader, reply *cdr.Writer) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch op {
	case "add":
		a.total += args.ReadLongLong()
		reply.WriteLongLong(a.total)
		return args.Err()
	case "get":
		reply.WriteLongLong(a.total)
		return nil
	default:
		return fmt.Errorf("adderApp: unknown op %q", op)
	}
}

func (a *adderApp) State() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteLongLong(a.total)
	return w.Bytes(), nil
}

func (a *adderApp) SetState(state []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := cdr.NewReader(state, cdr.BigEndian)
	a.total = r.ReadLongLong()
	return r.Err()
}

func int64Args(v int64) []byte {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteLongLong(v)
	return w.Bytes()
}

func TestDomainLifecycle(t *testing.T) {
	d := newDomain(t, "ny", 3)
	if d.Nodes() != 3 {
		t.Fatalf("nodes = %d", d.Nodes())
	}
	if _, err := d.PublishIOR("IDL:X:1.0", []byte("k")); err == nil {
		t.Fatal("PublishIOR succeeded with no gateways")
	}
	if _, err := d.AddGateway(0, ""); err != nil {
		t.Fatal(err)
	}
	ref, err := d.PublishIOR("IDL:X:1.0", []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ref.PrimaryProfile(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashAndRestartNode(t *testing.T) {
	d := newDomain(t, "ny", 3)
	const grp replication.GroupID = 60
	err := d.Manager().CreateReplicatedObject(grp, ftmgmt.Properties{
		Style:           replication.Active,
		InitialReplicas: 3,
		MinReplicas:     1,
		ObjectKey:       []byte("svc/adder"),
	}, func() (replication.Application, error) { return &adderApp{}, nil })
	if err != nil {
		t.Fatal(err)
	}
	d.CrashNode(1)
	// Survivors drop the crashed member.
	deadline := time.Now().Add(5 * time.Second)
	for len(d.Node(0).RM.Members(grp)) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("members = %v", d.Node(0).RM.Members(grp))
		}
		time.Sleep(5 * time.Millisecond)
	}
	d.RestartNode(1)
	// The node's ring membership heals (its replicas are gone until the
	// resource manager replaces them, which is exercised in ftmgmt).
	deadline = time.Now().Add(5 * time.Second)
	for len(d.Node(0).Totem.Members()) != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("ring = %v", d.Node(0).Totem.Members())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestMultiDomainBridging reproduces figure 1: a customer's unreplicated
// client in Santa Barbara invokes, through the Los Angeles domain's
// gateway, a bridge object in LA that forwards to the New York domain's
// gateway, behind which the actual replicated server runs.
func TestMultiDomainBridging(t *testing.T) {
	ny := newDomain(t, "new-york", 3)
	la := newDomain(t, "los-angeles", 3)

	// New York hosts the replicated server.
	const nyGrp replication.GroupID = 70
	serverKey := []byte("trading/exchange")
	err := ny.Manager().CreateReplicatedObject(nyGrp, ftmgmt.Properties{
		Style:           replication.Active,
		InitialReplicas: 2,
		MinReplicas:     1,
		ObjectKey:       serverKey,
	}, func() (replication.Application, error) { return &adderApp{}, nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ny.AddGateway(2, ""); err != nil {
		t.Fatal(err)
	}
	nyRef, err := ny.PublishIOR("IDL:Trading/Exchange:1.0", serverKey)
	if err != nil {
		t.Fatal(err)
	}

	// Los Angeles hosts a replicated bridge to New York.
	const laGrp replication.GroupID = 71
	bridgeKey := []byte("bridge/to-ny")
	err = la.Manager().CreateReplicatedObject(laGrp, ftmgmt.Properties{
		Style:           replication.Active,
		InitialReplicas: 2,
		MinReplicas:     1,
		ObjectKey:       bridgeKey,
	}, func() (replication.Application, error) {
		return domain.NewBridgeApp(nyRef, []byte("la-bridge-01"), 5*time.Second), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := la.AddGateway(2, ""); err != nil {
		t.Fatal(err)
	}
	laRef, err := la.PublishIOR("IDL:Trading/Exchange:1.0", bridgeKey)
	if err != nil {
		t.Fatal(err)
	}

	// The Santa Barbara customer: a plain unreplicated IIOP client that
	// knows only the LA reference.
	obj, conn, err := orb.Resolve(laRef)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	for i := 1; i <= 5; i++ {
		r, err := obj.Call("add", int64Args(10), orb.InvokeOptions{})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got := r.ReadLongLong(); got != int64(i*10) {
			t.Fatalf("call %d = %d, want %d (lost or duplicated across domains)", i, got, i*10)
		}
	}
}

func TestBridgeSurvivesRemoteGatewayFailover(t *testing.T) {
	ny := newDomain(t, "ny", 3)
	la := newDomain(t, "la", 2)

	const nyGrp replication.GroupID = 80
	serverKey := []byte("svc/adder")
	err := ny.Manager().CreateReplicatedObject(nyGrp, ftmgmt.Properties{
		Style:           replication.Active,
		InitialReplicas: 2,
		MinReplicas:     1,
		ObjectKey:       serverKey,
	}, func() (replication.Application, error) { return &adderApp{}, nil })
	if err != nil {
		t.Fatal(err)
	}
	// Two redundant NY gateways.
	if _, err := ny.AddGateway(0, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := ny.AddGateway(1, ""); err != nil {
		t.Fatal(err)
	}
	nyRef, err := ny.PublishIOR("IDL:X:1.0", serverKey)
	if err != nil {
		t.Fatal(err)
	}

	bridge := domain.NewBridgeApp(nyRef, []byte("bridge-x"), 2*time.Second)
	defer bridge.Close()
	const laGrp replication.GroupID = 81
	if err := la.Node(0).RM.CreateGroup(laGrp, replication.Active, []byte("bridge/x")); err != nil {
		t.Fatal(err)
	}
	if err := la.Node(0).RM.WaitForGroup(laGrp, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := la.Node(0).RM.JoinGroup(laGrp, bridge); err != nil {
		t.Fatal(err)
	}
	if err := la.Node(0).RM.WaitSynced(laGrp, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := la.AddGateway(1, ""); err != nil {
		t.Fatal(err)
	}
	laRef, err := la.PublishIOR("IDL:X:1.0", []byte("bridge/x"))
	if err != nil {
		t.Fatal(err)
	}

	c, err := thinclient.Dial(laRef, thinclient.Config{CallTimeout: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	for i := 1; i <= 6; i++ {
		if i == 3 {
			// The NY gateway the bridge is connected to dies; the
			// bridge's enhanced client lets it fail over without
			// duplicating operations.
			_ = ny.Gateways()[0].Close()
		}
		r, err := c.Call("add", int64Args(1))
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got := r.ReadLongLong(); got != int64(i) {
			t.Fatalf("call %d = %d, want %d", i, got, i)
		}
	}
}

func TestDomainConfigValidation(t *testing.T) {
	if _, err := domain.New(domain.Config{Nodes: 0}); err == nil {
		t.Fatal("zero nodes accepted")
	}
}

func TestBridgeAppStateIsEmpty(t *testing.T) {
	b := domain.NewBridgeApp(ior.New("IDL:X:1.0", ior.IIOPProfile{Host: "h", Port: 1}), nil, 0)
	st, err := b.State()
	if err != nil || st != nil {
		t.Fatalf("state = %v, %v", st, err)
	}
	if err := b.SetState(nil); err != nil {
		t.Fatal(err)
	}
}

func TestPublishedIORCarriesDomainComponents(t *testing.T) {
	d := newDomain(t, "tagged", 2)
	if _, err := d.AddGateway(0, ""); err != nil {
		t.Fatal(err)
	}
	ref, err := d.PublishIOR("IDL:X:1.0", []byte("k"))
	if err != nil {
		t.Fatal(err)
	}
	parsed, err := ior.Parse(ref.String())
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := parsed.ORBType(); !ok || v != ior.ORBTypeEternalGW {
		t.Fatalf("orb type = %#x, %v", v, ok)
	}
	if name, ok := parsed.FTDomain(); !ok || name != "tagged" {
		t.Fatalf("domain tag = %q, %v", name, ok)
	}
}

func TestRemoveGatewayRepublishesAndReleasesMembership(t *testing.T) {
	updates := make(chan ior.Ref, 8)
	d, err := domain.New(domain.Config{
		Name:                 "rgw",
		Nodes:                3,
		Totem:                fastTotem(),
		GatewayInvokeTimeout: 5 * time.Second,
		OnIORUpdate: func(objectKey []byte, ref ior.Ref) {
			if string(objectKey) != "app/adder" {
				t.Errorf("update for unexpected key %q", objectKey)
			}
			updates <- ref
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)

	err = d.Manager().CreateReplicatedObject(77, ftmgmt.Properties{
		Style:           replication.Active,
		InitialReplicas: 2,
		MinReplicas:     1,
		ObjectKey:       []byte("app/adder"),
	}, func() (replication.Application, error) { return &adderApp{}, nil })
	if err != nil {
		t.Fatal(err)
	}
	gwA, err := d.AddGateway(1, "")
	if err != nil {
		t.Fatal(err)
	}
	gwB, err := d.AddGateway(2, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.PublishIOR("IDL:eternalgw/Adder:1.0", []byte("app/adder")); err != nil {
		t.Fatal(err)
	}
	// Adding a gateway after PublishIOR republishes with both profiles.
	gwC, err := d.AddGateway(2, "")
	if err != nil {
		t.Fatal(err)
	}
	ref := <-updates
	profiles, err := ref.IIOPProfiles()
	if err != nil || len(profiles) != 3 {
		t.Fatalf("profiles after add = %d (%v), want 3", len(profiles), err)
	}

	// Removing one republishes without its profile before it drains.
	removedAddr := gwA.Addr()
	if err := d.RemoveGateway(gwA, time.Second); err != nil {
		t.Fatal(err)
	}
	ref = <-updates
	profiles, err = ref.IIOPProfiles()
	if err != nil || len(profiles) != 2 {
		t.Fatalf("profiles after remove = %d (%v), want 2", len(profiles), err)
	}
	for _, p := range profiles {
		if p.Addr() == removedAddr {
			t.Fatalf("removed gateway %s still published", removedAddr)
		}
	}

	// Node 1 hosted only gwA: its client membership in the gateway group
	// is released. Node 2 still hosts gwC, so it stays.
	deadline := time.Now().Add(5 * time.Second)
	for {
		members := d.Node(0).RM.Members(domain.DefaultGatewayGroup)
		var hasN1, hasN2 bool
		for _, m := range members {
			if m == d.Node(1).ID {
				hasN1 = true
			}
			if m == d.Node(2).ID {
				hasN2 = true
			}
		}
		if !hasN1 && hasN2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway group members = %v, want %s out and %s in",
				members, d.Node(1).ID, d.Node(2).ID)
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Removing a foreign gateway is rejected.
	if err := d.RemoveGateway(gwA, time.Second); err == nil {
		t.Fatal("second remove of the same gateway succeeded")
	}
	_ = gwB
	if err := d.RemoveGateway(gwC, time.Second); err != nil {
		t.Fatal(err)
	}
	if got := len(d.Gateways()); got != 1 {
		t.Fatalf("gateways left = %d, want 1", got)
	}
}
