package domain

import (
	"sync"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/ior"
	"eternalgw/internal/replication"
	"eternalgw/internal/thinclient"
)

// BridgeApp is the outbound half of figure 1's inter-domain connection:
// a replicated object inside one fault tolerance domain whose replicas
// forward every invocation over TCP/IIOP to another domain's gateway
// through the enhanced client-side interception layer.
//
// All replicas of a bridge share a deterministic unique client
// identifier and issue deterministic request identifiers, so the remote
// domain's gateway and servers deduplicate their parallel forwards into
// exactly one operation — the same mechanism (section 3.5) that protects
// against reissues after gateway failover.
type BridgeApp struct {
	remote ior.Ref
	cfg    thinclient.Config

	mu     sync.Mutex
	client *thinclient.Client
}

var _ replication.Application = (*BridgeApp)(nil)

// NewBridgeApp creates a bridge replica application targeting the remote
// reference. uniqueID must be identical for all replicas of the bridge
// group and distinct between bridge groups.
func NewBridgeApp(remote ior.Ref, uniqueID []byte, timeout time.Duration) *BridgeApp {
	cfg := thinclient.Config{UniqueID: uniqueID}
	if timeout > 0 {
		cfg.CallTimeout = timeout
	}
	return &BridgeApp{remote: remote, cfg: cfg}
}

// Invoke forwards the operation to the remote domain and copies the
// reply body through.
func (b *BridgeApp) Invoke(op string, args *cdr.Reader, reply *cdr.Writer) error {
	raw := args.ReadOctets(args.Remaining())
	if err := args.Err(); err != nil {
		return err
	}
	b.mu.Lock()
	if b.client == nil {
		c, err := thinclient.Dial(b.remote, b.cfg)
		if err != nil {
			b.mu.Unlock()
			return err
		}
		b.client = c
	}
	c := b.client
	b.mu.Unlock()

	r, err := c.Call(op, raw)
	if err != nil {
		return err
	}
	reply.WriteOctets(r.ReadOctets(r.Remaining()))
	return r.Err()
}

// State implements replication.Application; bridges are stateless.
func (b *BridgeApp) State() ([]byte, error) { return nil, nil }

// SetState implements replication.Application.
func (b *BridgeApp) SetState([]byte) error { return nil }

// Close severs the bridge's outbound connection.
func (b *BridgeApp) Close() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.client != nil {
		_ = b.client.Close()
		b.client = nil
	}
}
