package domain_test

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"eternalgw/internal/domain"
	"eternalgw/internal/ftmgmt"
	"eternalgw/internal/memnet"
	"eternalgw/internal/orb"
	"eternalgw/internal/replication"
	"eternalgw/internal/thinclient"
	"eternalgw/internal/totem"
	"eternalgw/internal/udpnet"
)

// TestFullSystemUnderCompoundFailures is the repository's capstone
// integration test: a 6-processor domain, a triple-replicated server
// maintained by the resource manager, three redundant gateways, and
// several enhanced clients driving load while, mid-run, a server
// replica's processor crashes, a gateway dies, and the crashed processor
// comes back. The invariant under all of it: every acknowledged
// operation executed exactly once, and the surviving replicas agree.
func TestFullSystemUnderCompoundFailures(t *testing.T) {
	if testing.Short() {
		t.Skip("compound-failure system test skipped in -short mode")
	}
	d := newDomain(t, "capstone", 6)

	const grp replication.GroupID = 500
	key := []byte("capstone/adder")
	var (
		mu   sync.Mutex
		apps []*adderApp
	)
	err := d.Manager().CreateReplicatedObject(grp, ftmgmt.Properties{
		Style:           replication.Active,
		InitialReplicas: 3,
		MinReplicas:     3,
		ObjectKey:       key,
	}, func() (replication.Application, error) {
		mu.Lock()
		defer mu.Unlock()
		app := &adderApp{}
		apps = append(apps, app)
		return app, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	d.Manager().Monitor(20 * time.Millisecond)

	for i := 0; i < 3; i++ {
		if _, err := d.AddGateway(3+i, ""); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := d.PublishIOR("IDL:Capstone/Adder:1.0", key)
	if err != nil {
		t.Fatal(err)
	}

	const clients, perClient = 3, 40
	var (
		wg    sync.WaitGroup
		ackMu sync.Mutex
		acked int64
	)
	errCh := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cl, err := thinclient.Dial(ref, thinclient.Config{CallTimeout: 3 * time.Second})
			if err != nil {
				errCh <- err
				return
			}
			defer func() { _ = cl.Close() }()
			for i := 0; i < perClient; i++ {
				r, err := cl.Call("add", int64Args(1))
				if err != nil {
					errCh <- err
					return
				}
				if r.ReadLongLong() <= 0 {
					errCh <- err
					return
				}
				ackMu.Lock()
				acked++
				ackMu.Unlock()
			}
		}()
	}

	// The fault storm, while the clients run.
	victim := -1
	members := d.Node(5).RM.Members(grp)
	for i := 0; i < d.Nodes(); i++ {
		if d.Node(i).ID == members[0] {
			victim = i
			break
		}
	}
	time.Sleep(30 * time.Millisecond)
	d.CrashNode(victim) // a server replica's processor dies
	time.Sleep(50 * time.Millisecond)
	_ = d.Gateways()[0].Close() // the first gateway dies
	time.Sleep(100 * time.Millisecond)
	d.RestartNode(victim) // the processor returns (rejoins the ring)

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if acked != clients*perClient {
		t.Fatalf("acked = %d, want %d", acked, clients*perClient)
	}

	// The resource manager restores three replicas; all live replicas
	// converge on exactly the acknowledged total.
	deadline := time.Now().Add(10 * time.Second)
	for {
		live := d.Node(5).RM.Members(grp)
		if len(live) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("replication level never restored: %v", live)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Verify totals via a fresh client (the authoritative view).
	cl, err := thinclient.Dial(ref, thinclient.Config{CallTimeout: 3 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cl.Close() }()
	r, err := cl.Call("get", nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReadLongLong(); got != int64(clients*perClient) {
		t.Fatalf("server total = %d, want %d: operations lost or duplicated through the fault storm", got, clients*perClient)
	}
}

// TestDomainOverUDPTransport runs the full stack — totem ring,
// replication, gateway, external client — with the ring's datagrams on
// real UDP sockets instead of the simulated network.
func TestDomainOverUDPTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("UDP transport test skipped in -short mode")
	}
	const nodes = 3
	registry := make(udpnet.Registry, nodes)
	ids := make([]memnet.NodeID, nodes)
	for i := 0; i < nodes; i++ {
		ids[i] = memnet.NodeID(fmt.Sprintf("udp/p%02d", i))
		probe, err := udpnet.Listen(ids[i], udpnet.Registry{ids[i]: "127.0.0.1:0"})
		if err != nil {
			t.Fatal(err)
		}
		registry[ids[i]] = probe.Addr()
		if err := probe.Close(); err != nil {
			t.Fatal(err)
		}
	}
	d, err := domain.New(domain.Config{
		Name:  "udp",
		Nodes: nodes,
		TransportFactory: func(id memnet.NodeID) (totem.Transport, error) {
			return udpnet.Listen(id, registry)
		},
		GatewayInvokeTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)

	const grp replication.GroupID = 600
	key := []byte("udp/adder")
	err = d.Manager().CreateReplicatedObject(grp, ftmgmt.Properties{
		Style:           replication.Active,
		InitialReplicas: 2,
		MinReplicas:     1,
		ObjectKey:       key,
	}, func() (replication.Application, error) { return &adderApp{}, nil })
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddGateway(2, ""); err != nil {
		t.Fatal(err)
	}
	ref, err := d.PublishIOR("IDL:X:1.0", key)
	if err != nil {
		t.Fatal(err)
	}
	obj, conn, err := orb.Resolve(ref)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	for i := 1; i <= 10; i++ {
		r, err := obj.Call("add", int64Args(1), orb.InvokeOptions{})
		if err != nil {
			t.Fatalf("call %d over UDP ring: %v", i, err)
		}
		if got := r.ReadLongLong(); got != int64(i) {
			t.Fatalf("call %d = %d", i, got)
		}
	}
}
