// Package replication implements the Eternal Replication Mechanisms: the
// component of the fault tolerance infrastructure that maintains strongly
// consistent object replication on top of the Totem totally-ordered
// multicast (paper section 2.2).
//
// It provides object groups with five replication styles (stateless, cold
// passive, warm passive, active, active-with-voting), detection and
// suppression of duplicate invocations and duplicate responses using the
// operation identifiers of paper section 3.3 / figure 6, support for
// nested invocations, deterministic primary election, and state transfer
// to new and recovering replicas.
package replication

import (
	"time"

	"eternalgw/internal/memnet"
	"eternalgw/internal/obs"
	"eternalgw/internal/orb"
	"eternalgw/internal/totem"
)

// GroupID is the unique object-group identifier that addresses a
// replicated object inside a fault tolerance domain. Replicas of an
// object are contacted by multicasting to the object's group identifier,
// never through TCP/IP (paper section 3).
type GroupID uint32

// Style is the replication style of an object group, matching the
// user-specified fault tolerance properties listed in paper section 2.
type Style uint8

// Replication styles.
const (
	// Stateless replicas hold no state; any replica may execute any
	// invocation independently.
	Stateless Style = iota + 1
	// ColdPassive keeps backups idle: only the primary executes; state
	// reaches backups solely through checkpoints in the log, which a
	// backup loads (and tops up with replayed invocations) on failover.
	ColdPassive
	// WarmPassive keeps backups loaded: only the primary executes, but
	// backups apply periodic state synchronizations and log the
	// invocation stream between them.
	WarmPassive
	// Active replication executes every invocation at every replica;
	// duplicate responses are suppressed downstream.
	Active
	// ActiveWithVoting executes everywhere and the invoker accepts a
	// result only when a majority of replicas return identical bytes.
	ActiveWithVoting
)

// String returns the conventional name of the style.
func (s Style) String() string {
	switch s {
	case Stateless:
		return "stateless"
	case ColdPassive:
		return "cold-passive"
	case WarmPassive:
		return "warm-passive"
	case Active:
		return "active"
	case ActiveWithVoting:
		return "active-with-voting"
	default:
		return "unknown"
	}
}

// OperationID uniquely identifies one operation (an invocation-response
// pair), exactly as in figure 6 of the paper: ParentTS is the timestamp
// (Totem sequence number) of the message that carried the invocation the
// issuing group was executing when it issued this operation, and ChildSeq
// is this operation's index in the issuer's sequence of invocations. The
// operation identifier is determined identically at every replica of the
// issuing group, which is what makes duplicate detection possible.
type OperationID struct {
	ParentTS uint64
	ChildSeq uint32
}

// InvocationID is the full identifier of an invocation message:
// (T_B_inv, (T_A_inv, S_A_inv)). The timestamp is filled in at the
// receiving end from the totally-ordered sequence number.
type InvocationID struct {
	Timestamp uint64
	Op        OperationID
}

// ResponseID is the full identifier of a response message:
// (T_B_res, (T_A_inv, S_A_inv)). It shares the operation identifier with
// its invocation.
type ResponseID struct {
	Timestamp uint64
	Op        OperationID
}

// View is a numbered membership view of an object group. Every
// membership change — create, join, leave, eviction, failure — is
// delivered through the total order (or, for processor failures, at the
// single point where the new ring is installed), so every surviving
// member increments the view number at the same place in the message
// stream and the (Number, Members) pair is identical domain-wide.
type View struct {
	// Number counts membership changes since the group was created; the
	// creation itself is view 1.
	Number uint64
	// Seq is the total-order position at which this view was installed:
	// the totem timestamp of the membership message, or the ring
	// identifier for failure-driven changes.
	Seq uint64
	// Members is the view's membership in join order; Members[0] is the
	// primary of passive groups and the state-transfer donor.
	Members []memnet.NodeID
}

// UnusedClientID is the TCP client identifier carried by messages
// exchanged between replicated objects within the fault tolerance domain
// ("some unused value" in figure 4c).
const UnusedClientID uint64 = 0

// Application is the interface a replicated object implements: servant
// dispatch plus state capture and restoration for checkpointing and
// state transfer. Implementations must be deterministic: identical state
// and identical invocation streams must produce identical behaviour at
// every replica.
type Application interface {
	orb.Servant
	// State captures the full application state.
	State() ([]byte, error)
	// SetState replaces the application state.
	SetState(state []byte) error
}

// Config parameterizes the replication mechanisms on one node.
type Config struct {
	// Node is the Totem node whose event stream these mechanisms consume.
	Node *totem.Node
	// NodeID is this node's identity (defaults to Node.ID()).
	NodeID memnet.NodeID
	// WarmSyncInterval is the number of executed operations between
	// warm-passive state synchronizations. Zero means 8.
	WarmSyncInterval int
	// CheckpointInterval is the number of executed operations between
	// cold-passive checkpoints written to the log. Zero means 32.
	CheckpointInterval int
	// DedupCapacity bounds the per-group duplicate-detection and
	// response-cache tables, and the node's early-discard done-set for
	// duplicate responses. Zero means 16384 operations.
	DedupCapacity int
	// InvokeTimeout bounds waiting for a response. Zero means 10s.
	InvokeTimeout time.Duration
	// QuorumOf, when non-zero, enables majority-partition protection:
	// while the totem ring holds fewer than QuorumOf/2+1 of the domain's
	// processors, this node refuses to execute or issue invocations, so
	// a minority partition cannot diverge from the majority (the
	// partitionable-operation discipline of the Eternal papers, reference
	// [6] of the paper). Zero disables the check: every partition
	// component keeps serving, and reconciliation is the application's
	// concern.
	QuorumOf int
	// DisableCatchupLog turns off the per-group catch-up log: the local
	// checkpoints and logged invocations every executing replica keeps so
	// that it can donate state to a joiner as checkpoint + replay instead
	// of a full capture, and so a joiner can catch up without replaying
	// history from zero. With the log disabled every transfer falls back
	// to a full state capture (the pre-reconfiguration behaviour; useful
	// for ablation).
	DisableCatchupLog bool
	// BackpressureWindow is the pending-call occupancy at which the
	// Backpressure signal saturates to 1.0 — i.e. how many invocations
	// this node can comfortably have in flight toward the domain before
	// a gateway should start shedding at its edge. Zero means 1024.
	BackpressureWindow int
	// Metrics, when set, receives the mechanisms' counters and the
	// dedup-cache occupancy gauge, labelled with this node's id.
	Metrics *obs.Registry
	// Tracer, when set, records span events at total-order delivery,
	// replica execution and duplicate suppression. Nil — the default —
	// disables tracing; the datapath then pays one nil check per hop.
	Tracer *obs.Tracer
}

func (c *Config) applyDefaults() {
	if c.NodeID == "" && c.Node != nil {
		c.NodeID = c.Node.ID()
	}
	if c.WarmSyncInterval == 0 {
		c.WarmSyncInterval = 8
	}
	if c.CheckpointInterval == 0 {
		c.CheckpointInterval = 32
	}
	if c.DedupCapacity == 0 {
		c.DedupCapacity = 16384
	}
	if c.InvokeTimeout == 0 {
		c.InvokeTimeout = 10 * time.Second
	}
	if c.BackpressureWindow == 0 {
		c.BackpressureWindow = 1024
	}
}

// Stats snapshots the mechanisms' counters. The duplicate-suppression
// counters are the quantities the paper's gateway discussion revolves
// around (sections 3.2-3.3).
type Stats struct {
	InvocationsSent      uint64
	InvocationsExecuted  uint64
	DuplicateInvocations uint64 // dedup hits: detected and suppressed
	DedupMisses          uint64 // executions that were not duplicates
	ResponsesSent        uint64
	ResponsesDelivered   uint64
	DuplicateResponses   uint64 // detected and suppressed
	// ResponsesDiscardedEarly is the subset of DuplicateResponses
	// dropped from the header peek alone, without payload decode.
	ResponsesDiscardedEarly uint64
	StateTransfers          uint64
	StateSyncs              uint64
	Checkpoints             uint64
	Failovers               uint64
	ReplayedInvocations     uint64
	// ViewChanges counts group membership views installed at this node
	// (joins, leaves, evictions, failure-driven removals).
	ViewChanges uint64
	// TransfersCheckpointed counts state donations served as checkpoint
	// plus log replay; TransfersFullState counts the fallback full
	// captures (no local checkpoint available, or the catch-up log is
	// disabled).
	TransfersCheckpointed uint64
	TransfersFullState    uint64
	// TransferEntriesReplayed counts logged invocations replayed by
	// joining replicas catching up from a donated checkpoint.
	TransferEntriesReplayed uint64
	// CatchupCheckpoints counts local checkpoints written into the
	// catch-up log by executing replicas.
	CatchupCheckpoints uint64
	// MembershipSyncs counts authoritative directory snapshots adopted
	// after a ring merge (partition healing).
	MembershipSyncs uint64
}

// traceKey derives the obs trace key of a message: the paper's
// operation identifier plus the client identifier, identical at every
// replica, so span events emitted on different nodes join one trace.
func traceKey(h Header) obs.TraceKey {
	return obs.TraceKey{ClientID: h.ClientID, ParentTS: h.Op.ParentTS, ChildSeq: h.Op.ChildSeq}
}
