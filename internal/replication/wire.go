package replication

import (
	"fmt"

	"eternalgw/internal/cdr"
	"eternalgw/internal/logrec"
	"eternalgw/internal/memnet"
)

// Kind distinguishes the messages the fault tolerance infrastructure
// multicasts inside a domain.
type Kind uint8

// Message kinds. Invocation and Response carry encapsulated IIOP
// messages (figure 4b/4c); the rest are infrastructure control traffic.
const (
	KindInvocation Kind = iota + 1
	KindResponse
	KindCreateGroup
	KindJoinGroup
	KindLeaveGroup
	KindStateTransfer
	KindStateSync
	// KindGatewayControl carries gateway-group housekeeping, e.g. the
	// notification that a TCP client departed so every gateway can drop
	// the state it stored on the client's behalf (paper section 3.5).
	// The infrastructure only routes it to the destination group's
	// observers.
	KindGatewayControl
	// KindDeleteGroup retires an object group everywhere: local replicas
	// stop and the directory entry disappears.
	KindDeleteGroup
	// KindViewChange installs a membership delta — joiners and evicted
	// members in one message. Because it travels through the same total
	// order as every invocation, all replicas switch to the new numbered
	// view at the same sequence number; there is no separate agreement
	// round. The resource manager's shrink/replace path uses it to remove
	// replicas without their cooperation (LeaveGroup is the cooperative
	// exit).
	KindViewChange
	// KindMembershipSync carries the authoritative group directory after
	// a ring merge. Nodes from the majority component broadcast their
	// directory snapshot; nodes returning from a minority partition —
	// whose memberships diverged while they were away — adopt it. The
	// first sync delivered for a ring wins; the rest are identical and
	// ignored.
	KindMembershipSync
)

// Header is the fault tolerance infrastructure and gateway header
// prepended to every multicast message (figure 4). The message timestamp
// of the paper is not a wire field: it is the Totem sequence number,
// filled in by the replication mechanisms at the receiving end when the
// message is delivered.
type Header struct {
	Kind Kind
	// ClientID identifies the external TCP client on whose behalf the
	// gateway issued an invocation; it is UnusedClientID for messages
	// exchanged between replicated objects (figure 4c).
	ClientID uint64
	// SrcGroup is the sending object group.
	SrcGroup GroupID
	// DstGroup is the target object group.
	DstGroup GroupID
	// Op is the operation identifier shared by an invocation and its
	// responses (figure 6).
	Op OperationID
}

// Message is one fault-tolerance multicast: header plus payload. For
// invocations the payload is an encapsulated IIOP Request; for responses
// an encapsulated IIOP Reply; control kinds define their own payloads.
type Message struct {
	Header  Header
	Payload []byte
}

// opKey identifies one operation for duplicate detection: the paper's
// routing triple (destination group, source group, TCP client id) plus
// the operation identifier.
type opKey struct {
	src      GroupID
	clientID uint64
	op       OperationID
}

// Encode serializes a message for multicasting. The buffer is sized up
// front: the header's fixed fields plus alignment padding fit in 48
// bytes ahead of the payload.
func Encode(m Message) []byte {
	w := cdr.NewWriterCap(cdr.BigEndian, 48+len(m.Payload))
	w.WriteOctet(byte(m.Header.Kind))
	w.WriteULongLong(m.Header.ClientID)
	w.WriteULong(uint32(m.Header.SrcGroup))
	w.WriteULong(uint32(m.Header.DstGroup))
	w.WriteULongLong(m.Header.Op.ParentTS)
	w.WriteULong(m.Header.Op.ChildSeq)
	w.WriteOctetSeq(m.Payload)
	return w.Bytes()
}

// HeaderView is the cheap header-first peek at a delivered message: the
// decoded fixed header plus the payload bytes, still encoded and
// aliasing the delivery buffer. The event loop routes every delivery on
// the header alone; payload decode is deferred to whoever needs it — the
// replica executor for request bodies, the first pending waiter for
// reply bodies — and skipped entirely for early-discarded duplicate
// responses. The payload must not be mutated, and anything retained
// beyond the delivery must be copied (the packed-delivery arena behind
// it is shared by every payload of the datagram).
type HeaderView struct {
	Header  Header
	Payload []byte
}

// Message materializes the view as a Message whose payload still aliases
// the delivery buffer.
func (v HeaderView) Message() Message {
	return Message{Header: v.Header, Payload: v.Payload}
}

// DecodeHeader parses the fixed header of a multicast message, leaving
// the payload unparsed and uncopied.
func DecodeHeader(b []byte) (HeaderView, error) {
	r := cdr.NewReader(b, cdr.BigEndian)
	var v HeaderView
	v.Header.Kind = Kind(r.ReadOctet())
	v.Header.ClientID = r.ReadULongLong()
	v.Header.SrcGroup = GroupID(r.ReadULong())
	v.Header.DstGroup = GroupID(r.ReadULong())
	v.Header.Op.ParentTS = r.ReadULongLong()
	v.Header.Op.ChildSeq = r.ReadULong()
	v.Payload = r.ReadOctetSeq()
	if err := r.Err(); err != nil {
		return HeaderView{}, fmt.Errorf("replication: decode: %w", err)
	}
	return v, nil
}

// Decode parses a multicast message, copying the payload so the result
// does not alias the input.
func Decode(b []byte) (Message, error) {
	v, err := DecodeHeader(b)
	if err != nil {
		return Message{}, err
	}
	m := v.Message()
	m.Payload = append([]byte(nil), m.Payload...)
	return m, nil
}

// createGroupPayload carries group creation parameters.
type createGroupPayload struct {
	Style     Style
	ObjectKey []byte
}

func encodeCreateGroup(p createGroupPayload) []byte {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteOctet(byte(p.Style))
	w.WriteOctetSeq(p.ObjectKey)
	return w.Bytes()
}

func decodeCreateGroup(b []byte) (createGroupPayload, error) {
	r := cdr.NewReader(b, cdr.BigEndian)
	var p createGroupPayload
	p.Style = Style(r.ReadOctet())
	p.ObjectKey = append([]byte(nil), r.ReadOctetSeq()...)
	if err := r.Err(); err != nil {
		return createGroupPayload{}, fmt.Errorf("replication: decode create-group: %w", err)
	}
	return p, nil
}

// memberPayload carries join/leave announcements.
type memberPayload struct {
	Node memnet.NodeID
}

func encodeMember(p memberPayload) []byte {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteString(string(p.Node))
	return w.Bytes()
}

func decodeMember(b []byte) (memberPayload, error) {
	r := cdr.NewReader(b, cdr.BigEndian)
	p := memberPayload{Node: memnet.NodeID(r.ReadString())}
	if err := r.Err(); err != nil {
		return memberPayload{}, fmt.Errorf("replication: decode member: %w", err)
	}
	return p, nil
}

// viewChangePayload carries one membership delta: nodes added to and
// removed from the group in a single totally-ordered view change.
type viewChangePayload struct {
	Add    []memnet.NodeID
	Remove []memnet.NodeID
}

func encodeViewChange(p viewChangePayload) []byte {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteULong(uint32(len(p.Add)))
	for _, n := range p.Add {
		w.WriteString(string(n))
	}
	w.WriteULong(uint32(len(p.Remove)))
	for _, n := range p.Remove {
		w.WriteString(string(n))
	}
	return w.Bytes()
}

func decodeViewChange(b []byte) (viewChangePayload, error) {
	r := cdr.NewReader(b, cdr.BigEndian)
	var p viewChangePayload
	for n := r.ReadULong(); n > 0 && r.Err() == nil; n-- {
		p.Add = append(p.Add, memnet.NodeID(r.ReadString()))
	}
	for n := r.ReadULong(); n > 0 && r.Err() == nil; n-- {
		p.Remove = append(p.Remove, memnet.NodeID(r.ReadString()))
	}
	if err := r.Err(); err != nil {
		return viewChangePayload{}, fmt.Errorf("replication: decode view change: %w", err)
	}
	return p, nil
}

// syncGroup is one group's directory entry inside a membership sync.
type syncGroup struct {
	ID        GroupID
	Style     Style
	ObjectKey []byte
	View      uint64
	ViewSeq   uint64
	Members   []memnet.NodeID
}

// membershipSyncPayload is a majority node's directory snapshot, taken
// at the merge configuration and valid only for that ring.
type membershipSyncPayload struct {
	RingID uint64
	Groups []syncGroup
}

func encodeMembershipSync(p membershipSyncPayload) []byte {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteULongLong(p.RingID)
	w.WriteULong(uint32(len(p.Groups)))
	for _, g := range p.Groups {
		w.WriteULong(uint32(g.ID))
		w.WriteOctet(byte(g.Style))
		w.WriteOctetSeq(g.ObjectKey)
		w.WriteULongLong(g.View)
		w.WriteULongLong(g.ViewSeq)
		w.WriteULong(uint32(len(g.Members)))
		for _, n := range g.Members {
			w.WriteString(string(n))
		}
	}
	return w.Bytes()
}

func decodeMembershipSync(b []byte) (membershipSyncPayload, error) {
	r := cdr.NewReader(b, cdr.BigEndian)
	var p membershipSyncPayload
	p.RingID = r.ReadULongLong()
	for n := r.ReadULong(); n > 0 && r.Err() == nil; n-- {
		g := syncGroup{
			ID:        GroupID(r.ReadULong()),
			Style:     Style(r.ReadOctet()),
			ObjectKey: append([]byte(nil), r.ReadOctetSeq()...),
			View:      r.ReadULongLong(),
			ViewSeq:   r.ReadULongLong(),
		}
		for k := r.ReadULong(); k > 0 && r.Err() == nil; k-- {
			g.Members = append(g.Members, memnet.NodeID(r.ReadString()))
		}
		p.Groups = append(p.Groups, g)
	}
	if err := r.Err(); err != nil {
		return membershipSyncPayload{}, fmt.Errorf("replication: decode membership sync: %w", err)
	}
	return p, nil
}

// statePayload carries a state transfer or synchronization.
type statePayload struct {
	// Target is the joining node a transfer is addressed to; empty for
	// warm-passive synchronizations addressed to the whole group.
	Target memnet.NodeID
	// JoinTS is the totem timestamp of the join this transfer answers.
	JoinTS uint64
	// OpCount is the number of operations folded into the state.
	OpCount uint64
	State   []byte
	// CpSeq is the totem sequence number of the checkpoint State was cut
	// at; zero when State is a direct capture at the join point (the
	// full-state fallback), in which case Entries is empty.
	CpSeq uint64
	// Entries are the logged invocations after the checkpoint, in total
	// order; the joiner replays them to catch up from CpSeq to JoinTS
	// without replaying history from zero.
	Entries []logrec.Entry
}

func encodeState(p statePayload) []byte {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteString(string(p.Target))
	w.WriteULongLong(p.JoinTS)
	w.WriteULongLong(p.OpCount)
	w.WriteOctetSeq(p.State)
	w.WriteULongLong(p.CpSeq)
	w.WriteULong(uint32(len(p.Entries)))
	for _, e := range p.Entries {
		w.WriteULongLong(e.Seq)
		w.WriteOctetSeq(e.Data)
	}
	return w.Bytes()
}

func decodeState(b []byte) (statePayload, error) {
	r := cdr.NewReader(b, cdr.BigEndian)
	var p statePayload
	p.Target = memnet.NodeID(r.ReadString())
	p.JoinTS = r.ReadULongLong()
	p.OpCount = r.ReadULongLong()
	p.State = append([]byte(nil), r.ReadOctetSeq()...)
	p.CpSeq = r.ReadULongLong()
	for n := r.ReadULong(); n > 0 && r.Err() == nil; n-- {
		e := logrec.Entry{Seq: r.ReadULongLong()}
		e.Data = append([]byte(nil), r.ReadOctetSeq()...)
		p.Entries = append(p.Entries, e)
	}
	if err := r.Err(); err != nil {
		return statePayload{}, fmt.Errorf("replication: decode state: %w", err)
	}
	return p, nil
}
