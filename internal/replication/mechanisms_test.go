package replication

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/giop"
)

const (
	grpServer  GroupID = 10
	grpClient  GroupID = 20
	grpNested  GroupID = 30
	testKeyStr         = "test/register"
)

// invokeAsClient performs a top-level invocation from a client-only
// group member (the gateway pattern).
func invokeAsClient(t *testing.T, m *Mechanisms, src GroupID, clientID uint64, dst GroupID, reqID uint32, op string, args []byte) (giop.Reply, error) {
	t.Helper()
	return m.Invoke(src, clientID, dst, OperationID{ParentTS: 0, ChildSeq: reqID}, giop.Request{
		RequestID:        reqID,
		ResponseExpected: true,
		ObjectKey:        []byte(testKeyStr),
		Operation:        op,
		Args:             args,
	}, 5*time.Second)
}

func setupClientServer(t *testing.T, d *domain, style Style, serverNodes, clientNode int) []*regApp {
	t.Helper()
	d.mustCreate(grpServer, style, testKeyStr)
	d.mustCreate(grpClient, style, "")
	apps := make([]*regApp, serverNodes)
	for i := 0; i < serverNodes; i++ {
		apps[i] = &regApp{}
		d.mustJoin(d.ids[i], grpServer, apps[i])
	}
	d.mustJoin(d.ids[clientNode], grpClient, nil)
	// All nodes must see the full membership before invoking.
	for _, n := range d.ids {
		if err := d.rms[n].WaitForMembers(grpServer, serverNodes, 5*time.Second); err != nil {
			t.Fatalf("%s: members: %v", n, err)
		}
	}
	return apps
}

func TestGroupDirectoryAgreement(t *testing.T) {
	d := newDomain(t, 3)
	d.mustCreate(grpServer, Active, testKeyStr)
	for _, n := range d.ids {
		if id, ok := d.rms[n].GroupByKey([]byte(testKeyStr)); !ok || id != grpServer {
			t.Fatalf("%s: GroupByKey = %d, %v", n, id, ok)
		}
		if style, ok := d.rms[n].GroupStyle(grpServer); !ok || style != Active {
			t.Fatalf("%s: style = %v, %v", n, style, ok)
		}
	}
}

func TestCreateGroupIdempotentAcrossCreators(t *testing.T) {
	d := newDomain(t, 2)
	// Both nodes create the same group id with different styles; the
	// first delivered wins everywhere.
	_ = d.rms[d.ids[0]].CreateGroup(grpServer, Active, []byte("k"))
	_ = d.rms[d.ids[1]].CreateGroup(grpServer, WarmPassive, []byte("k"))
	for _, n := range d.ids {
		if err := d.rms[n].WaitForGroup(grpServer, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	s0, _ := d.rms[d.ids[0]].GroupStyle(grpServer)
	s1, _ := d.rms[d.ids[1]].GroupStyle(grpServer)
	if s0 != s1 {
		t.Fatalf("styles diverge: %v vs %v", s0, s1)
	}
}

func TestActiveInvocationExecutesEverywhereDeliversOnce(t *testing.T) {
	d := newDomain(t, 3)
	apps := setupClientServer(t, d, Active, 3, 2)
	client := d.rms[d.ids[2]]

	rep, err := invokeAsClient(t, client, grpClient, 7, grpServer, 1, "set", octets([]byte("hello")))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != giop.ReplyNoException {
		t.Fatalf("status = %v", rep.Status)
	}
	// Every replica executed exactly once.
	deadline := time.Now().Add(2 * time.Second)
	for _, app := range apps {
		for {
			v, ops := app.snapshot()
			if bytes.Equal(v, []byte("hello")) && ops == 1 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("replica state = %q ops=%d", v, ops)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	// Three replicas responded; two duplicates suppressed at the client.
	st := client.Stats()
	if st.ResponsesDelivered != 1 {
		t.Fatalf("delivered = %d", st.ResponsesDelivered)
	}
	waitStat(t, func() uint64 { return client.Stats().DuplicateResponses }, 2)
}

func TestDuplicateInvocationSuppressed(t *testing.T) {
	d := newDomain(t, 2)
	apps := setupClientServer(t, d, Active, 1, 1)
	client := d.rms[d.ids[1]]

	if _, err := invokeAsClient(t, client, grpClient, 9, grpServer, 5, "append", octets([]byte("x"))); err != nil {
		t.Fatal(err)
	}
	// Reissue the identical operation (same client id, same request id):
	// the replica must answer from its cache without re-executing.
	rep, err := invokeAsClient(t, client, grpClient, 9, grpServer, 5, "append", octets([]byte("x")))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != giop.ReplyNoException {
		t.Fatalf("status = %v", rep.Status)
	}
	if _, ops := apps[0].snapshot(); ops != 1 {
		t.Fatalf("ops = %d, want 1 (duplicate executed!)", ops)
	}
	server := d.rms[d.ids[0]]
	waitStat(t, func() uint64 { return server.Stats().DuplicateInvocations }, 1)
}

func TestDistinctClientsSameRequestIDBothExecute(t *testing.T) {
	// The TCP client identifier disambiguates clients that happen to use
	// the same request ids (paper section 3.2).
	d := newDomain(t, 2)
	apps := setupClientServer(t, d, Active, 1, 1)
	client := d.rms[d.ids[1]]

	if _, err := invokeAsClient(t, client, grpClient, 1, grpServer, 5, "append", octets([]byte("a"))); err != nil {
		t.Fatal(err)
	}
	if _, err := invokeAsClient(t, client, grpClient, 2, grpServer, 5, "append", octets([]byte("b"))); err != nil {
		t.Fatal(err)
	}
	if v, ops := apps[0].snapshot(); ops != 2 || !bytes.Equal(v, []byte("ab")) {
		t.Fatalf("state = %q ops=%d", v, ops)
	}
}

func TestReplicaConsistencyUnderConcurrentClients(t *testing.T) {
	d := newDomain(t, 3)
	apps := setupClientServer(t, d, Active, 3, 2)
	client := d.rms[d.ids[2]]

	const calls = 60
	done := make(chan error, 3)
	for c := 0; c < 3; c++ {
		go func(clientID uint64) {
			for i := 1; i <= calls/3; i++ {
				if _, err := invokeAsClient(t, client, grpClient, clientID, grpServer, uint32(i), "append", octets([]byte{byte(clientID)})); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(uint64(c + 1))
	}
	for c := 0; c < 3; c++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// All replicas converge to identical state.
	deadline := time.Now().Add(3 * time.Second)
	for {
		v0, o0 := apps[0].snapshot()
		v1, o1 := apps[1].snapshot()
		v2, o2 := apps[2].snapshot()
		if o0 == calls && o1 == calls && o2 == calls {
			if !bytes.Equal(v0, v1) || !bytes.Equal(v1, v2) {
				t.Fatalf("replica divergence: %q %q %q", v0, v1, v2)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("ops = %d %d %d, want %d", o0, o1, o2, calls)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestStateTransferToLateJoiner(t *testing.T) {
	d := newDomain(t, 3)
	d.mustCreate(grpServer, Active, testKeyStr)
	d.mustCreate(grpClient, Active, "")
	app0 := &regApp{}
	d.mustJoin(d.ids[0], grpServer, app0)
	d.mustJoin(d.ids[2], grpClient, nil)
	client := d.rms[d.ids[2]]

	for i := 1; i <= 5; i++ {
		if _, err := invokeAsClient(t, client, grpClient, 1, grpServer, uint32(i), "append", octets([]byte{byte('0' + i)})); err != nil {
			t.Fatal(err)
		}
	}
	// Late joiner must receive the accumulated state.
	app1 := &regApp{}
	d.mustJoin(d.ids[1], grpServer, app1)
	v, ops := app1.snapshot()
	if !bytes.Equal(v, []byte("12345")) || ops != 5 {
		t.Fatalf("joiner state = %q ops=%d", v, ops)
	}
	// And must execute subsequent invocations.
	if _, err := invokeAsClient(t, client, grpClient, 1, grpServer, 6, "append", octets([]byte("6"))); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		v, _ := app1.snapshot()
		return bytes.Equal(v, []byte("123456"))
	})
	if st := d.rms[d.ids[0]].Stats(); st.StateTransfers != 1 {
		t.Fatalf("state transfers = %d", st.StateTransfers)
	}
}

func TestWarmPassiveOnlyPrimaryExecutes(t *testing.T) {
	d := newDomain(t, 3)
	apps := setupClientServer(t, d, WarmPassive, 2, 2)
	client := d.rms[d.ids[2]]

	for i := 1; i <= 3; i++ {
		if _, err := invokeAsClient(t, client, grpClient, 1, grpServer, uint32(i), "append", octets([]byte("x"))); err != nil {
			t.Fatal(err)
		}
	}
	if _, ops := apps[0].snapshot(); ops != 3 {
		t.Fatalf("primary ops = %d", ops)
	}
	// The backup has not executed anything (it may have applied a state
	// sync, which sets ops wholesale, but at sync interval 4 none
	// happened yet).
	if _, ops := apps[1].snapshot(); ops != 0 {
		t.Fatalf("backup ops = %d, want 0", ops)
	}
}

func TestWarmPassiveFailover(t *testing.T) {
	d := newDomain(t, 3)
	apps := setupClientServer(t, d, WarmPassive, 2, 2)
	client := d.rms[d.ids[2]]

	// 6 ops: one sync at 4, entries 5..6 pending in the backup's log.
	for i := 1; i <= 6; i++ {
		if _, err := invokeAsClient(t, client, grpClient, 1, grpServer, uint32(i), "append", octets([]byte{byte('0' + i)})); err != nil {
			t.Fatal(err)
		}
	}
	d.net.Crash(d.ids[0])
	// The backup is promoted and reconstructs the primary's exact state.
	waitFor(t, 5*time.Second, func() bool {
		v, ops := apps[1].snapshot()
		return ops == 6 && bytes.Equal(v, []byte("123456"))
	})
	// New invocations are served by the new primary.
	rep, err := invokeAsClient(t, client, grpClient, 1, grpServer, 7, "read", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != giop.ReplyNoException {
		t.Fatalf("status = %v", rep.Status)
	}
	waitStat(t, func() uint64 { return d.rms[d.ids[1]].Stats().Failovers }, 1)
}

func TestColdPassiveFailoverRecoversFromLog(t *testing.T) {
	d := newDomain(t, 3)
	apps := setupClientServer(t, d, ColdPassive, 2, 2)
	client := d.rms[d.ids[2]]

	// 10 ops: checkpoint at 8 (interval 8), entries 9..10 in the log.
	for i := 1; i <= 10; i++ {
		if _, err := invokeAsClient(t, client, grpClient, 1, grpServer, uint32(i), "append", octets([]byte{byte('a' + i - 1)})); err != nil {
			t.Fatal(err)
		}
	}
	// Cold backup's application is untouched before failover.
	if _, ops := apps[1].snapshot(); ops != 0 {
		t.Fatalf("cold backup ops = %d before failover", ops)
	}
	d.net.Crash(d.ids[0])
	waitFor(t, 5*time.Second, func() bool {
		v, ops := apps[1].snapshot()
		return ops == 10 && bytes.Equal(v, []byte("abcdefghij"))
	})
	st := d.rms[d.ids[1]].Stats()
	if st.Failovers != 1 {
		t.Fatalf("failovers = %d", st.Failovers)
	}
	if st.ReplayedInvocations != 2 {
		t.Fatalf("replayed = %d, want 2 (since checkpoint)", st.ReplayedInvocations)
	}
}

func TestVotingRequiresMajority(t *testing.T) {
	d := newDomain(t, 3)
	setupClientServer(t, d, ActiveWithVoting, 3, 2)
	client := d.rms[d.ids[2]]

	rep, err := invokeAsClient(t, client, grpClient, 1, grpServer, 1, "set", octets([]byte("v")))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != giop.ReplyNoException {
		t.Fatalf("status = %v", rep.Status)
	}
}

func TestNestedInvocation(t *testing.T) {
	d := newDomain(t, 3)
	d.mustCreate(grpServer, Active, testKeyStr)
	d.mustCreate(grpNested, Active, "nested/target")
	d.mustCreate(grpClient, Active, "")

	// The nested target is a register.
	nestedApps := []*regApp{{}, {}}
	d.mustJoin(d.ids[0], grpNested, nestedApps[0])
	d.mustJoin(d.ids[1], grpNested, nestedApps[1])

	// The front servant forwards "relay" calls to the nested target.
	mkFront := func(m *Mechanisms) Application {
		h := m.Handle(grpServer)
		return &relayApp{h: h}
	}
	d.mustJoin(d.ids[0], grpServer, mkFront(d.rms[d.ids[0]]))
	d.mustJoin(d.ids[1], grpServer, mkFront(d.rms[d.ids[1]]))
	d.mustJoin(d.ids[2], grpClient, nil)
	for _, n := range d.ids {
		if err := d.rms[n].WaitForMembers(grpServer, 2, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	client := d.rms[d.ids[2]]
	rep, err := invokeAsClient(t, client, grpClient, 1, grpServer, 1, "relay", octets([]byte("deep")))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != giop.ReplyNoException {
		t.Fatalf("status = %v", rep.Status)
	}
	// Both front replicas issued the nested call with the identical
	// operation identifier, so the nested target executed it exactly
	// once per replica of the nested group.
	waitFor(t, 2*time.Second, func() bool {
		v0, o0 := nestedApps[0].snapshot()
		v1, o1 := nestedApps[1].snapshot()
		return o0 == 1 && o1 == 1 && bytes.Equal(v0, []byte("deep")) && bytes.Equal(v1, []byte("deep"))
	})
}

func TestInvokeUnknownGroup(t *testing.T) {
	d := newDomain(t, 1)
	_, err := d.rms[d.ids[0]].Invoke(grpClient, 0, 999, OperationID{ChildSeq: 1}, giop.Request{RequestID: 1}, time.Second)
	if !errors.Is(err, ErrNoSuchGroup) {
		t.Fatalf("err = %v, want ErrNoSuchGroup", err)
	}
}

func TestInvokeTimesOutWithNoServants(t *testing.T) {
	d := newDomain(t, 2)
	d.mustCreate(grpServer, Active, testKeyStr)
	d.mustCreate(grpClient, Active, "")
	d.mustJoin(d.ids[1], grpClient, nil)
	_, err := invokeWithTimeout(d.rms[d.ids[1]], grpClient, grpServer, 150*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestDoubleJoinRejected(t *testing.T) {
	d := newDomain(t, 1)
	d.mustCreate(grpServer, Active, testKeyStr)
	d.mustJoin(d.ids[0], grpServer, &regApp{})
	if err := d.rms[d.ids[0]].JoinGroup(grpServer, &regApp{}); !errors.Is(err, ErrAlreadyMember) {
		t.Fatalf("err = %v, want ErrAlreadyMember", err)
	}
}

func TestLeaveGroupStopsExecution(t *testing.T) {
	d := newDomain(t, 2)
	apps := setupClientServer(t, d, Active, 1, 1)
	client := d.rms[d.ids[1]]
	if _, err := invokeAsClient(t, client, grpClient, 1, grpServer, 1, "append", octets([]byte("x"))); err != nil {
		t.Fatal(err)
	}
	if err := d.rms[d.ids[0]].LeaveGroup(grpServer); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		return len(d.rms[d.ids[1]].Members(grpServer)) == 0
	})
	_, err := invokeWithTimeout(client, grpClient, grpServer, 150*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if _, ops := apps[0].snapshot(); ops != 1 {
		t.Fatalf("ops = %d after leave", ops)
	}
}

// relayApp forwards "relay" invocations to the nested target group.
type relayApp struct {
	h *Handle
}

func (a *relayApp) Invoke(op string, args *cdr.Reader, reply *cdr.Writer) error {
	if op != "relay" {
		return fmt.Errorf("relayApp: unknown op %q", op)
	}
	payload := args.ReadOctetSeq()
	if err := args.Err(); err != nil {
		return err
	}
	r, err := a.h.Invoke([]byte("nested/target"), "set", octets(payload), 5*time.Second)
	if err != nil {
		return err
	}
	reply.WriteLongLong(r.ReadLongLong())
	return r.Err()
}

func (a *relayApp) State() ([]byte, error) { return nil, nil }
func (a *relayApp) SetState([]byte) error  { return nil }

func invokeWithTimeout(m *Mechanisms, src, dst GroupID, timeout time.Duration) (giop.Reply, error) {
	return m.Invoke(src, 0, dst, OperationID{ChildSeq: 1}, giop.Request{
		RequestID:        1,
		ResponseExpected: true,
		ObjectKey:        []byte(testKeyStr),
		Operation:        "read",
	}, timeout)
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition never became true")
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func waitStat(t *testing.T, get func() uint64, want uint64) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if got := get(); got >= want {
			if got != want {
				t.Fatalf("stat = %d, want %d", got, want)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("stat = %d, want %d", get(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}
