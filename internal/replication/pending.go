package replication

import "sync"

// pendingShards is how many locks the pending-call table and the
// early-discard done-set are split across. Must be a power of two.
const pendingShards = 16

// opKeyRing is a fixed-capacity FIFO of operation keys: pushing into a
// full ring overwrites the oldest slot and returns the displaced key so
// the caller can drop its map entry. Same O(1) eviction shape as the
// gateway record's keyRing (internal/core/record.go); the former designs
// shifted a slice (s = s[1:]) per eviction, retaining the backing array.
type opKeyRing struct {
	buf  []opKey
	head int // index of the oldest entry once the ring is full
	max  int
}

func (r *opKeyRing) push(k opKey) (old opKey, evicted bool) {
	if len(r.buf) < r.max {
		r.buf = append(r.buf, k)
		return opKey{}, false
	}
	old = r.buf[r.head]
	r.buf[r.head] = k
	r.head++
	if r.head == len(r.buf) {
		r.head = 0
	}
	return old, true
}

// pendingShard is one lock's worth of the pending-call table: the calls
// awaiting responses plus the done-set remembering operations whose
// first response copy has already been answered (or recorded) here.
type pendingShard struct {
	mu    sync.Mutex
	calls map[opKey][]*pendingCall
	// done is consulted from the header peek: once an operation is in
	// it, the 2nd..Rth replica copies of its response are discarded
	// without payload decode. Bounded FIFO through doneRing.
	done     map[opKey]struct{}
	doneRing opKeyRing
}

// markDone remembers an answered operation. Callers hold sh.mu.
func (sh *pendingShard) markDone(key opKey) {
	if _, ok := sh.done[key]; ok {
		return
	}
	sh.done[key] = struct{}{}
	if old, evicted := sh.doneRing.push(key); evicted {
		delete(sh.done, old)
	}
}

// pendingTable is the sharded pending-call table: concurrent Invokes
// from many gateway connections register and resolve under per-shard
// locks instead of serializing behind the group-directory mutex.
type pendingTable struct {
	shards [pendingShards]pendingShard
}

// newPendingTable builds a table whose done-set is bounded at roughly
// capacity operations, split evenly across the shards.
func newPendingTable(capacity int) *pendingTable {
	per := (capacity + pendingShards - 1) / pendingShards
	if per < 1 {
		per = 1
	}
	t := &pendingTable{}
	for i := range t.shards {
		sh := &t.shards[i]
		sh.calls = make(map[opKey][]*pendingCall)
		sh.done = make(map[opKey]struct{})
		sh.doneRing.max = per
	}
	return t
}

// shard maps an operation key to its shard. Fibonacci hashing over the
// mixed key fields spreads both gateway traffic (distinct client ids,
// ChildSeq-only operation ids) and nested invocations (distinct parent
// timestamps).
func (t *pendingTable) shard(k opKey) *pendingShard {
	h := k.clientID ^ k.op.ParentTS ^ uint64(k.op.ChildSeq)<<32 ^ uint64(k.src)<<13
	return &t.shards[(h*0x9E3779B97F4A7C15)>>(64-4)&(pendingShards-1)]
}

// occupancy counts the calls currently awaiting responses across all
// shards. It takes each shard lock briefly; callers are scrape-time or
// interval-sampled (the admission breaker), not per-request.
func (t *pendingTable) occupancy() int {
	total := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		for _, calls := range sh.calls {
			total += len(calls)
		}
		sh.mu.Unlock()
	}
	return total
}

// register adds a call awaiting responses for the operation.
func (t *pendingTable) register(key opKey, c *pendingCall) {
	sh := t.shard(key)
	sh.mu.Lock()
	sh.calls[key] = append(sh.calls[key], c)
	sh.mu.Unlock()
}

// unregister removes a call, whether resolved or abandoned (timeout).
func (t *pendingTable) unregister(key opKey, c *pendingCall) {
	sh := t.shard(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	calls := sh.calls[key]
	kept := calls[:0]
	for _, pc := range calls {
		if pc != c {
			kept = append(kept, pc)
		}
	}
	if len(kept) == 0 {
		delete(sh.calls, key)
	} else {
		sh.calls[key] = kept
	}
}
