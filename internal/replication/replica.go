package replication

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/giop"
	"eternalgw/internal/logrec"
	"eternalgw/internal/memnet"
	"eternalgw/internal/obs"
	"eternalgw/internal/orb"
)

// taskKind enumerates replica executor work items.
type taskKind uint8

const (
	taskInvoke taskKind = iota + 1
	taskCaptureState
	taskApplyState
	taskApplySync
	taskFailover
)

// task is one unit of work, created by the event loop at a specific
// point in the total order and executed asynchronously in that order.
type task struct {
	kind taskKind
	// msg's payload may alias the delivery buffer; the executor decodes
	// or copies it, never retains it.
	msg Message
	// raw is the full encoded wire form of an invocation delivery
	// (header plus payload), aliasing the delivery buffer; backups copy
	// it into the replay log instead of re-encoding msg.
	raw     []byte
	ts      uint64
	execute bool
	logInv  bool
	state   statePayload
	joiner  memnet.NodeID
}

// detach returns a copy of the task whose msg payload and raw bytes no
// longer alias the delivery buffer, safe to retain indefinitely. Tasks
// that merely flow through the queue are consumed promptly and skip
// this copy; anything buffered past the delivery cycle (the holdback
// list) must detach first — the arenaalias analyzer enforces it.
func (t task) detach() task {
	t.msg.Payload = append([]byte(nil), t.msg.Payload...)
	t.raw = append([]byte(nil), t.raw...)
	return t
}

// taskQueue is an unbounded FIFO. The event loop must never block on a
// replica whose application is slow (or blocked in a nested invocation),
// so pushes always succeed.
//
// gwlint:arena-carrier — queued tasks may alias the delivery buffer;
// the consumer decodes or copies each task promptly and never retains
// one past its turn (holdback buffering detaches first).
type taskQueue struct {
	mu     sync.Mutex
	items  []task
	signal chan struct{}
	closed bool
}

func newTaskQueue() *taskQueue {
	return &taskQueue{signal: make(chan struct{}, 1)}
}

func (q *taskQueue) push(t task) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.items = append(q.items, t)
	q.mu.Unlock()
	select {
	case q.signal <- struct{}{}:
	default:
	}
}

// pop blocks until a task is available or the queue is closed.
func (q *taskQueue) pop() (task, bool) {
	for {
		q.mu.Lock()
		if len(q.items) > 0 {
			t := q.items[0]
			q.items = q.items[1:]
			q.mu.Unlock()
			return t, true
		}
		closed := q.closed
		q.mu.Unlock()
		if closed {
			return task{}, false
		}
		<-q.signal
	}
}

func (q *taskQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	select {
	case q.signal <- struct{}{}:
	default:
	}
}

// replica is this node's runtime for one group membership: the hosted
// application (nil for client-only members such as gateways) plus the
// executor state. Fields below the queue are owned by the executor
// goroutine; primary is owned by the event loop.
type replica struct {
	m     *Mechanisms
	group GroupID
	style Style
	app   Application
	tasks *taskQueue

	synced atomic.Bool
	// primary marks this node as g.members[0]; loop-owned. wasBackup
	// records that the replica served as a non-primary at some point,
	// which is what makes a later promotion a failover.
	primary   bool
	wasBackup bool

	// executor-owned state.
	executed     map[opKey]giop.Reply
	executedRing opKeyRing    // O(1) FIFO eviction for executed
	dedupLen     atomic.Int64 // len(executed), readable off the executor
	opCount      uint64
	lastOpTS     uint64
	pendingLog   []logrec.Entry // warm-passive backup replay log
	holdback     []task         // invocations buffered until state arrives
	curParentTS  uint64
	curChildSeq  uint32
}

func newReplica(m *Mechanisms, group GroupID, style Style, app Application) *replica {
	r := &replica{
		m:            m,
		group:        group,
		style:        style,
		app:          app,
		tasks:        newTaskQueue(),
		executed:     make(map[opKey]giop.Reply),
		executedRing: opKeyRing{max: m.cfg.DedupCapacity},
	}
	if app != nil {
		go r.runExecutor()
	}
	return r
}

func (r *replica) push(t task) { r.tasks.push(t) }

func (r *replica) close() { r.tasks.close() }

func (r *replica) runExecutor() {
	for {
		t, ok := r.tasks.pop()
		if !ok {
			return
		}
		r.handle(t)
	}
}

func (r *replica) handle(t task) {
	switch t.kind {
	case taskInvoke:
		if !r.synced.Load() {
			// State has not arrived yet: hold invocations back; they
			// replay in order once the transfer is applied. The wait is
			// unbounded, so the task must stop aliasing the delivery
			// buffer — holding it raw would pin every packed datagram
			// arena touched until the state transfer lands (and reads
			// reused memory if arenas are ever pooled).
			r.holdback = append(r.holdback, t.detach())
			return
		}
		r.handleInvoke(t)
	case taskCaptureState:
		r.handleCaptureState(t)
	case taskApplyState:
		r.handleApplyState(t)
	case taskApplySync:
		r.handleApplySync(t)
	case taskFailover:
		r.handleFailover()
	}
}

func (r *replica) handleInvoke(t task) {
	if t.logInv {
		// The delivery already carries the encoded wire form; copy it
		// (it aliases the delivery buffer) rather than re-encoding.
		entry := logrec.Entry{Seq: t.ts, Data: append([]byte(nil), t.raw...)}
		switch r.style {
		case WarmPassive:
			r.pendingLog = append(r.pendingLog, entry)
		case ColdPassive:
			r.m.log.Append(uint32(r.group), entry)
		}
		return
	}
	if !t.execute {
		return
	}
	r.executeInvocation(t.msg, t.ts, false)
}

// executeInvocation runs one invocation against the application,
// multicasting the response. Duplicate invocations (same operation
// identifier from the same source and client) are detected and
// suppressed: the cached response is re-sent so a reissuing client (or a
// gateway that failed over) still obtains the result, but the operation
// is not executed twice (paper sections 2.2, 3.3, 3.5).
func (r *replica) executeInvocation(msg Message, ts uint64, replay bool) {
	key := opKey{src: msg.Header.SrcGroup, clientID: msg.Header.ClientID, op: msg.Header.Op}
	if rep, ok := r.executed[key]; ok {
		r.m.duplicateInvocations.Add(1)
		r.m.tracer.Event(traceKey(msg.Header), obs.StageDupSuppressed, string(r.m.cfg.NodeID))
		r.respond(msg, rep)
		return
	}
	r.m.dedupMisses.Add(1)
	wire, err := giop.Unmarshal(msg.Payload)
	if err != nil {
		return
	}
	req, err := giop.DecodeRequest(wire)
	if err != nil {
		return
	}

	r.curParentTS = ts
	r.curChildSeq = 0
	rep := orb.InvokeServant(r.app, req)
	r.curParentTS = 0

	r.m.invocationsExecuted.Add(1)
	r.m.tracer.Event(traceKey(msg.Header), obs.StageExecute, string(r.m.cfg.NodeID))
	if replay {
		r.m.replayedInvocations.Add(1)
	}
	r.opCount++
	r.lastOpTS = ts
	r.remember(key, rep)
	if req.ResponseExpected {
		r.respond(msg, rep)
	}
	r.maybeSync(ts)
}

// remember caches an executed operation's reply for duplicate detection,
// bounded by the configured capacity. Eviction is O(1) through the key
// ring; the former slice FIFO shifted (s = s[1:]) per eviction, which is
// O(n) and retains the backing array.
func (r *replica) remember(key opKey, rep giop.Reply) {
	if _, ok := r.executed[key]; ok {
		return
	}
	r.executed[key] = rep
	if old, evicted := r.executedRing.push(key); evicted {
		delete(r.executed, old)
	}
	r.dedupLen.Store(int64(len(r.executed)))
}

// respond multicasts a response addressed to the invoker's group,
// carrying the same client identifier and operation identifier as the
// invocation so receivers can correlate and deduplicate (figure 6).
func (r *replica) respond(inv Message, rep giop.Reply) {
	// The reply is framed in the same byte order its result bytes were
	// produced in (the original request's order), so the label on the
	// wire matches the payload.
	wire, err := giop.EncodeReply(rep.ResultOrder, rep)
	if err != nil {
		return
	}
	_ = r.m.multicast(Message{
		Header: Header{
			Kind:     KindResponse,
			ClientID: inv.Header.ClientID,
			SrcGroup: inv.Header.DstGroup, // we are the invoked group
			DstGroup: inv.Header.SrcGroup,
			Op:       inv.Header.Op,
		},
		Payload: giop.Marshal(wire),
	})
	r.m.responsesSent.Add(1)
}

// maybeSync publishes state to the backups of a passive group: a
// StateSync every WarmSyncInterval operations for warm replicas, a
// checkpoint every CheckpointInterval for cold ones. Only the primary
// executes, so only the primary arrives here.
func (r *replica) maybeSync(ts uint64) {
	var interval int
	switch r.style {
	case WarmPassive:
		interval = r.m.cfg.WarmSyncInterval
	case ColdPassive:
		interval = r.m.cfg.CheckpointInterval
	default:
		return
	}
	if interval <= 0 || r.opCount%uint64(interval) != 0 {
		return
	}
	state, err := r.app.State()
	if err != nil {
		return
	}
	_ = r.m.multicast(Message{
		Header:  Header{Kind: KindStateSync, ClientID: UnusedClientID, SrcGroup: r.group, DstGroup: r.group},
		Payload: encodeState(statePayload{JoinTS: ts, OpCount: r.opCount, State: state}),
	})
	if r.style == WarmPassive {
		r.m.stateSyncs.Add(1)
	} else {
		r.m.checkpoints.Add(1)
	}
}

// handleCaptureState is the donor side of state transfer: capture the
// application state as of this point in the total order and multicast it
// to the joining replica.
func (r *replica) handleCaptureState(t task) {
	state, err := r.app.State()
	if err != nil {
		return
	}
	_ = r.m.multicast(Message{
		Header:  Header{Kind: KindStateTransfer, ClientID: UnusedClientID, SrcGroup: r.group, DstGroup: r.group},
		Payload: encodeState(statePayload{Target: t.joiner, JoinTS: t.ts, OpCount: r.opCount, State: state}),
	})
	r.m.stateTransfers.Add(1)
}

// handleApplyState is the joiner side of state transfer.
func (r *replica) handleApplyState(t task) {
	if r.synced.Load() {
		return // duplicate transfer (donor died and was re-triggered)
	}
	switch r.style {
	case ColdPassive:
		// A cold backup stores the state as a checkpoint; the
		// application is loaded only at failover.
		r.m.log.Checkpoint(uint32(r.group), logrec.Checkpoint{
			Seq: t.state.JoinTS, OpCount: t.state.OpCount, State: t.state.State,
		})
	default:
		if err := r.app.SetState(t.state.State); err != nil {
			return
		}
	}
	r.opCount = t.state.OpCount
	r.synced.Store(true)
	r.m.mu.Lock()
	r.m.notifyChanged()
	r.m.mu.Unlock()

	// Replay invocations that were delivered between the join and the
	// state's arrival, in their original order.
	held := r.holdback
	r.holdback = nil
	for _, h := range held {
		r.handle(h)
	}
}

// handleApplySync is the backup side of periodic state synchronization.
func (r *replica) handleApplySync(t task) {
	switch r.style {
	case WarmPassive:
		if err := r.app.SetState(t.state.State); err != nil {
			return
		}
		r.opCount = t.state.OpCount
		r.pendingLog = nil
	case ColdPassive:
		r.m.log.Checkpoint(uint32(r.group), logrec.Checkpoint{
			Seq: t.state.JoinTS, OpCount: t.state.OpCount, State: t.state.State,
		})
	}
}

// handleFailover promotes a passive backup to primary: reconstruct the
// primary's state and re-execute the invocations it may not have
// answered. Responses for replayed operations are multicast normally;
// clients that already received them suppress the duplicates, and
// clients the dead primary never answered finally get their responses —
// this is exactly the scenario of paper section 3, where a new primary
// that never saw the original invocation could not produce the response.
func (r *replica) handleFailover() {
	r.m.failovers.Add(1)
	var entries []logrec.Entry
	switch r.style {
	case WarmPassive:
		// State is current as of the last sync; replay the log since.
		entries = r.pendingLog
		r.pendingLog = nil
	case ColdPassive:
		cp, logged, err := r.m.log.Recover(uint32(r.group))
		if err == nil {
			if err := r.app.SetState(cp.State); err != nil {
				return
			}
			r.opCount = cp.OpCount
		}
		// With no checkpoint the application starts from its initial
		// state and the full log replays.
		entries = logged
	default:
		return
	}
	r.synced.Store(true)
	for _, e := range entries {
		msg, err := Decode(e.Data)
		if err != nil {
			continue
		}
		r.executeInvocation(msg, e.Seq, true)
	}
}

// --- nested invocations ----------------------------------------------------

// Handle lets a replicated application issue nested invocations on other
// object groups. Obtain one from Mechanisms.Handle and call Invoke only
// from within Application.Invoke: the operation identifiers of nested
// invocations are derived from the timestamp of the parent invocation
// being executed (figure 6), so every replica issues the identical
// identifier and the target group executes the operation exactly once.
type Handle struct {
	m     *Mechanisms
	group GroupID
}

// Handle returns the nested-invocation handle for this node's replica of
// the group.
func (m *Mechanisms) Handle(group GroupID) *Handle {
	return &Handle{m: m, group: group}
}

// Invoke performs a nested invocation on the object identified by
// objectKey from within the currently executing operation.
func (h *Handle) Invoke(objectKey []byte, op string, args []byte, timeout time.Duration) (*cdr.Reader, error) {
	dst, ok := h.m.GroupByKey(objectKey)
	if !ok {
		return nil, fmt.Errorf("replication: object key %q: %w", objectKey, ErrNoSuchGroup)
	}
	h.m.mu.RLock()
	g, ok := h.m.groups[h.group]
	if !ok || g.local == nil {
		h.m.mu.RUnlock()
		return nil, fmt.Errorf("group %d: %w", h.group, ErrNotMember)
	}
	r := g.local
	h.m.mu.RUnlock()
	if r.curParentTS == 0 {
		return nil, errors.New("replication: nested Invoke outside an executing operation")
	}
	r.curChildSeq++
	opID := OperationID{ParentTS: r.curParentTS, ChildSeq: r.curChildSeq}
	rep, err := h.m.Invoke(h.group, UnusedClientID, dst, opID, giop.Request{
		RequestID:        r.curChildSeq,
		ResponseExpected: true,
		ObjectKey:        objectKey,
		Operation:        op,
		Args:             args,
	}, timeout)
	if err != nil {
		return nil, err
	}
	return orb.ReplyReader(rep)
}
