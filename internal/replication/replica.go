package replication

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/giop"
	"eternalgw/internal/logrec"
	"eternalgw/internal/memnet"
	"eternalgw/internal/obs"
	"eternalgw/internal/orb"
)

// taskKind enumerates replica executor work items.
type taskKind uint8

const (
	taskInvoke taskKind = iota + 1
	taskCaptureState
	taskApplyState
	taskApplySync
	taskFailover
)

// task is one unit of work, created by the event loop at a specific
// point in the total order and executed asynchronously in that order.
type task struct {
	kind taskKind
	// msg's payload may alias the delivery buffer; the executor decodes
	// or copies it, never retains it.
	msg Message
	// raw is the full encoded wire form of an invocation delivery
	// (header plus payload), aliasing the delivery buffer; backups copy
	// it into the replay log instead of re-encoding msg.
	raw     []byte
	ts      uint64
	execute bool
	logInv  bool
	state   statePayload
	joiner  memnet.NodeID
}

// detach returns a copy of the task whose msg payload and raw bytes no
// longer alias the delivery buffer, safe to retain indefinitely. Tasks
// that merely flow through the queue are consumed promptly and skip
// this copy; anything buffered past the delivery cycle (the holdback
// list) must detach first — the arenaalias analyzer enforces it.
func (t task) detach() task {
	t.msg.Payload = append([]byte(nil), t.msg.Payload...)
	t.raw = append([]byte(nil), t.raw...)
	return t
}

// taskQueue is an unbounded FIFO. The event loop must never block on a
// replica whose application is slow (or blocked in a nested invocation),
// so pushes always succeed.
//
// gwlint:arena-carrier — queued tasks may alias the delivery buffer;
// the consumer decodes or copies each task promptly and never retains
// one past its turn (holdback buffering detaches first).
type taskQueue struct {
	mu     sync.Mutex
	items  []task
	signal chan struct{}
	closed bool
}

func newTaskQueue() *taskQueue {
	return &taskQueue{signal: make(chan struct{}, 1)}
}

func (q *taskQueue) push(t task) {
	q.mu.Lock()
	if q.closed {
		q.mu.Unlock()
		return
	}
	q.items = append(q.items, t)
	q.mu.Unlock()
	select {
	case q.signal <- struct{}{}:
	default:
	}
}

// pop blocks until a task is available or the queue is closed.
func (q *taskQueue) pop() (task, bool) {
	for {
		q.mu.Lock()
		if len(q.items) > 0 {
			t := q.items[0]
			q.items = q.items[1:]
			q.mu.Unlock()
			return t, true
		}
		closed := q.closed
		q.mu.Unlock()
		if closed {
			return task{}, false
		}
		<-q.signal
	}
}

func (q *taskQueue) close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
	select {
	case q.signal <- struct{}{}:
	default:
	}
}

// replica is this node's runtime for one group membership: the hosted
// application (nil for client-only members such as gateways) plus the
// executor state. Fields below the queue are owned by the executor
// goroutine; primary is owned by the event loop.
type replica struct {
	m     *Mechanisms
	group GroupID
	style Style
	app   Application
	tasks *taskQueue

	synced atomic.Bool
	// primary marks this node as g.members[0]; loop-owned. wasBackup
	// records that the replica served as a non-primary at some point,
	// which is what makes a later promotion a failover.
	primary   bool
	wasBackup bool

	// executor-owned state.
	executed     map[opKey]giop.Reply
	executedRing opKeyRing    // O(1) FIFO eviction for executed
	dedupLen     atomic.Int64 // len(executed), readable off the executor
	opCount      uint64
	lastOpTS     uint64
	pendingLog   []logrec.Entry // warm-passive backup replay log
	holdback     []task         // invocations buffered until state arrives
	curParentTS  uint64
	curChildSeq  uint32
}

func newReplica(m *Mechanisms, group GroupID, style Style, app Application) *replica {
	r := &replica{
		m:            m,
		group:        group,
		style:        style,
		app:          app,
		tasks:        newTaskQueue(),
		executed:     make(map[opKey]giop.Reply),
		executedRing: opKeyRing{max: m.cfg.DedupCapacity},
	}
	if app != nil {
		go r.runExecutor()
	}
	return r
}

func (r *replica) push(t task) { r.tasks.push(t) }

func (r *replica) close() { r.tasks.close() }

func (r *replica) runExecutor() {
	for {
		t, ok := r.tasks.pop()
		if !ok {
			return
		}
		r.handle(t)
	}
}

func (r *replica) handle(t task) {
	switch t.kind {
	case taskInvoke:
		if !r.synced.Load() {
			// State has not arrived yet: hold invocations back; they
			// replay in order once the transfer is applied. The wait is
			// unbounded, so the task must stop aliasing the delivery
			// buffer — holding it raw would pin every packed datagram
			// arena touched until the state transfer lands (and reads
			// reused memory if arenas are ever pooled).
			r.holdback = append(r.holdback, t.detach())
			return
		}
		r.handleInvoke(t)
	case taskCaptureState:
		r.handleCaptureState(t)
	case taskApplyState:
		r.handleApplyState(t)
	case taskApplySync:
		r.handleApplySync(t)
	case taskFailover:
		r.handleFailover()
	}
}

// execMode distinguishes why an invocation is being executed, which
// decides whether it is appended to the catch-up log and whether its
// response is multicast.
type execMode uint8

const (
	// execLive is the normal path: a freshly delivered invocation. It is
	// logged for future joiners and its response is multicast.
	execLive execMode = iota
	// execFailover re-executes a logged invocation on a promoted passive
	// primary. Responses ARE re-multicast: clients that already received
	// them suppress the duplicates, and clients the dead primary never
	// answered finally get theirs (paper section 3). The log already
	// holds these entries, so they are not re-appended.
	execFailover
	// execCatchup replays a donated log entry on a joining replica.
	// Responses were already multicast by the established members, so the
	// joiner stays quiet; the entries are seeded into its own log by the
	// transfer application, not re-appended here.
	execCatchup
)

func (r *replica) handleInvoke(t task) {
	if t.logInv {
		// The delivery already carries the encoded wire form; copy it
		// (it aliases the delivery buffer) rather than re-encoding.
		entry := logrec.Entry{Seq: t.ts, Data: append([]byte(nil), t.raw...)}
		switch r.style {
		case WarmPassive:
			r.pendingLog = append(r.pendingLog, entry)
		case ColdPassive:
			r.m.log.AppendOwned(uint32(r.group), entry)
		}
		return
	}
	if !t.execute {
		return
	}
	r.executeInvocation(t.msg, t.raw, t.ts, execLive)
}

// executeInvocation runs one invocation against the application,
// multicasting the response. Duplicate invocations (same operation
// identifier from the same source and client) are detected and
// suppressed: the cached response is re-sent so a reissuing client (or a
// gateway that failed over) still obtains the result, but the operation
// is not executed twice (paper sections 2.2, 3.3, 3.5). raw is the
// encoded wire form when the caller has it (the live path, which appends
// it to the catch-up log); replays pass nil.
func (r *replica) executeInvocation(msg Message, raw []byte, ts uint64, mode execMode) {
	key := opKey{src: msg.Header.SrcGroup, clientID: msg.Header.ClientID, op: msg.Header.Op}
	if rep, ok := r.executed[key]; ok {
		r.m.duplicateInvocations.Add(1)
		r.m.tracer.Event(traceKey(msg.Header), obs.StageDupSuppressed, string(r.m.cfg.NodeID))
		if mode != execCatchup {
			r.respond(msg, rep)
		}
		return
	}
	r.m.dedupMisses.Add(1)
	wire, err := giop.Unmarshal(msg.Payload)
	if err != nil {
		return
	}
	req, err := giop.DecodeRequest(wire)
	if err != nil {
		return
	}
	if raw != nil && !r.m.cfg.DisableCatchupLog {
		// Log the wire form before executing: a checkpoint cut inside the
		// execution (maybeSync, at Seq == ts) then correctly truncates the
		// entry its state already covers. Replay paths whose entries are
		// already in the log pass nil.
		r.m.log.AppendOwned(uint32(r.group), logrec.Entry{Seq: ts, Data: append([]byte(nil), raw...)})
	}

	r.curParentTS = ts
	r.curChildSeq = 0
	rep := orb.InvokeServant(r.app, req)
	r.curParentTS = 0

	r.m.invocationsExecuted.Add(1)
	r.m.tracer.Event(traceKey(msg.Header), obs.StageExecute, string(r.m.cfg.NodeID))
	switch mode {
	case execFailover:
		r.m.replayedInvocations.Add(1)
	case execCatchup:
		r.m.transferEntriesReplayed.Add(1)
	}
	r.opCount++
	r.lastOpTS = ts
	r.remember(key, rep)
	if req.ResponseExpected && mode != execCatchup {
		r.respond(msg, rep)
	}
	r.maybeSync(ts)
}

// remember caches an executed operation's reply for duplicate detection,
// bounded by the configured capacity. Eviction is O(1) through the key
// ring; the former slice FIFO shifted (s = s[1:]) per eviction, which is
// O(n) and retains the backing array.
func (r *replica) remember(key opKey, rep giop.Reply) {
	if _, ok := r.executed[key]; ok {
		return
	}
	r.executed[key] = rep
	if old, evicted := r.executedRing.push(key); evicted {
		delete(r.executed, old)
	}
	r.dedupLen.Store(int64(len(r.executed)))
}

// respond multicasts a response addressed to the invoker's group,
// carrying the same client identifier and operation identifier as the
// invocation so receivers can correlate and deduplicate (figure 6).
func (r *replica) respond(inv Message, rep giop.Reply) {
	// The reply is framed in the same byte order its result bytes were
	// produced in (the original request's order), so the label on the
	// wire matches the payload.
	wire, err := giop.EncodeReply(rep.ResultOrder, rep)
	if err != nil {
		return
	}
	_ = r.m.multicast(Message{
		Header: Header{
			Kind:     KindResponse,
			ClientID: inv.Header.ClientID,
			SrcGroup: inv.Header.DstGroup, // we are the invoked group
			DstGroup: inv.Header.SrcGroup,
			Op:       inv.Header.Op,
		},
		Payload: giop.Marshal(wire),
	})
	r.m.responsesSent.Add(1)
}

// maybeSync publishes state to the backups of a passive group — a
// StateSync every WarmSyncInterval operations for warm replicas, a
// checkpoint every CheckpointInterval for cold ones — and, for every
// style, cuts a local catch-up checkpoint every CheckpointInterval so
// this replica can donate state as checkpoint + log replay. Only
// executing replicas arrive here (the primary of passive groups, every
// replica of active ones).
func (r *replica) maybeSync(ts uint64) {
	r.maybeCheckpointLocal(ts)
	var interval int
	switch r.style {
	case WarmPassive:
		interval = r.m.cfg.WarmSyncInterval
	case ColdPassive:
		interval = r.m.cfg.CheckpointInterval
	default:
		return
	}
	if interval <= 0 || r.opCount%uint64(interval) != 0 {
		return
	}
	state, err := r.app.State()
	if err != nil {
		return
	}
	_ = r.m.multicast(Message{
		Header:  Header{Kind: KindStateSync, ClientID: UnusedClientID, SrcGroup: r.group, DstGroup: r.group},
		Payload: encodeState(statePayload{JoinTS: ts, OpCount: r.opCount, State: state}),
	})
	if r.style == WarmPassive {
		r.m.stateSyncs.Add(1)
	} else {
		r.m.checkpoints.Add(1)
	}
}

// maybeCheckpointLocal cuts a catch-up checkpoint into the local log:
// the state as of operation ts, truncating the logged entries the state
// already covers. A joiner is then donated this checkpoint plus the
// (bounded) entries logged since, instead of a full capture.
func (r *replica) maybeCheckpointLocal(ts uint64) {
	if r.m.cfg.DisableCatchupLog {
		return
	}
	interval := r.m.cfg.CheckpointInterval
	if interval <= 0 || r.opCount%uint64(interval) != 0 {
		return
	}
	state, err := r.app.State()
	if err != nil {
		return
	}
	r.m.log.Checkpoint(uint32(r.group), logrec.Checkpoint{Seq: ts, OpCount: r.opCount, State: state})
	r.m.catchupCheckpoints.Add(1)
}

// handleCaptureState is the donor side of state transfer. When the local
// catch-up log holds a checkpoint, the donation is the checkpoint plus
// the entries logged since it — the joiner catches up by replaying a
// bounded suffix instead of receiving a fresh full capture. Without a
// checkpoint (a young group, or the log disabled) it falls back to
// capturing the application state at this point in the total order.
func (r *replica) handleCaptureState(t task) {
	if !r.m.cfg.DisableCatchupLog {
		if cp, entries, err := r.m.log.Recover(uint32(r.group)); err == nil {
			_ = r.m.multicast(Message{
				Header: Header{Kind: KindStateTransfer, ClientID: UnusedClientID, SrcGroup: r.group, DstGroup: r.group},
				Payload: encodeState(statePayload{
					Target: t.joiner, JoinTS: t.ts, OpCount: cp.OpCount,
					State: cp.State, CpSeq: cp.Seq, Entries: entries,
				}),
			})
			r.m.stateTransfers.Add(1)
			r.m.transfersCheckpointed.Add(1)
			return
		}
	}
	state, err := r.app.State()
	if err != nil {
		return
	}
	_ = r.m.multicast(Message{
		Header:  Header{Kind: KindStateTransfer, ClientID: UnusedClientID, SrcGroup: r.group, DstGroup: r.group},
		Payload: encodeState(statePayload{Target: t.joiner, JoinTS: t.ts, OpCount: r.opCount, State: state}),
	})
	r.m.stateTransfers.Add(1)
	r.m.transfersFullState.Add(1)
}

// handleApplyState is the joiner side of state transfer: install the
// donated checkpoint, replay the donated log suffix quietly (the
// established members already multicast these responses), then replay
// the invocations held back since the join.
func (r *replica) handleApplyState(t task) {
	if r.synced.Load() {
		return // duplicate transfer (donor died and was re-triggered)
	}
	st := t.state
	cpSeq := st.CpSeq
	if cpSeq == 0 {
		cpSeq = st.JoinTS // full capture: the state is current as of the join
	}
	switch r.style {
	case ColdPassive:
		// A cold backup stores the donation in its log; the application
		// is loaded only at failover.
		r.m.log.Checkpoint(uint32(r.group), logrec.Checkpoint{
			Seq: cpSeq, OpCount: st.OpCount, State: st.State,
		})
		for _, e := range st.Entries {
			r.m.log.AppendOwned(uint32(r.group), e)
		}
		r.opCount = st.OpCount + uint64(len(st.Entries))
	case WarmPassive:
		if err := r.app.SetState(st.State); err != nil {
			return
		}
		// Backups do not execute: the donated suffix becomes the pending
		// replay log, exactly as if this backup had logged those
		// invocations itself.
		r.opCount = st.OpCount
		r.pendingLog = append(r.pendingLog[:0], st.Entries...)
	default:
		if err := r.app.SetState(st.State); err != nil {
			return
		}
		r.opCount = st.OpCount
		if !r.m.cfg.DisableCatchupLog && st.CpSeq > 0 {
			// Seed the local log with the donation so this replica is
			// immediately donor-capable for the next joiner.
			r.m.log.Checkpoint(uint32(r.group), logrec.Checkpoint{
				Seq: st.CpSeq, OpCount: st.OpCount, State: st.State,
			})
		}
		for _, e := range st.Entries {
			msg, err := Decode(e.Data)
			if err != nil {
				continue
			}
			if !r.m.cfg.DisableCatchupLog && st.CpSeq > 0 {
				r.m.log.AppendOwned(uint32(r.group), e)
			}
			r.executeInvocation(msg, nil, e.Seq, execCatchup)
		}
	}
	r.synced.Store(true)
	r.m.mu.Lock()
	r.m.notifyChanged()
	r.m.mu.Unlock()

	// Replay invocations that were delivered between the join and the
	// state's arrival, in their original order.
	held := r.holdback
	r.holdback = nil
	for _, h := range held {
		r.handle(h)
	}
}

// handleApplySync is the backup side of periodic state synchronization.
func (r *replica) handleApplySync(t task) {
	switch r.style {
	case WarmPassive:
		if err := r.app.SetState(t.state.State); err != nil {
			return
		}
		r.opCount = t.state.OpCount
		// The synchronized state covers operations up to its capture
		// point; entries logged after it must survive for failover
		// replay (the capture races the entries still in flight to this
		// backup).
		kept := r.pendingLog[:0]
		for _, e := range r.pendingLog {
			if e.Seq > t.state.JoinTS {
				kept = append(kept, e)
			}
		}
		r.pendingLog = kept
		if !r.m.cfg.DisableCatchupLog {
			// Mirror the sync into the local log: a promoted warm backup
			// is then donor-capable from its last synchronized state.
			r.m.log.Checkpoint(uint32(r.group), logrec.Checkpoint{
				Seq: t.state.JoinTS, OpCount: t.state.OpCount, State: t.state.State,
			})
		}
	case ColdPassive:
		r.m.log.Checkpoint(uint32(r.group), logrec.Checkpoint{
			Seq: t.state.JoinTS, OpCount: t.state.OpCount, State: t.state.State,
		})
	}
}

// handleFailover promotes a passive backup to primary: reconstruct the
// primary's state and re-execute the invocations it may not have
// answered. Responses for replayed operations are multicast normally;
// clients that already received them suppress the duplicates, and
// clients the dead primary never answered finally get their responses —
// this is exactly the scenario of paper section 3, where a new primary
// that never saw the original invocation could not produce the response.
func (r *replica) handleFailover() {
	r.m.failovers.Add(1)
	var entries []logrec.Entry
	logReplayed := false
	switch r.style {
	case WarmPassive:
		// State is current as of the last sync; replay the log since.
		// The replayed entries are appended to the catch-up log (the
		// last sync mirrored a checkpoint there), keeping the promoted
		// primary donor-capable.
		entries = r.pendingLog
		r.pendingLog = nil
		logReplayed = true
	case ColdPassive:
		cp, logged, err := r.m.log.Recover(uint32(r.group))
		if err == nil {
			if err := r.app.SetState(cp.State); err != nil {
				return
			}
			r.opCount = cp.OpCount
		}
		// With no checkpoint the application starts from its initial
		// state and the full log replays. The entries are already in the
		// log, so the replay must not re-append them.
		entries = logged
	default:
		return
	}
	r.synced.Store(true)
	for _, e := range entries {
		msg, err := Decode(e.Data)
		if err != nil {
			continue
		}
		var raw []byte
		if logReplayed {
			raw = e.Data
		}
		r.executeInvocation(msg, raw, e.Seq, execFailover)
	}
}

// --- nested invocations ----------------------------------------------------

// Handle lets a replicated application issue nested invocations on other
// object groups. Obtain one from Mechanisms.Handle and call Invoke only
// from within Application.Invoke: the operation identifiers of nested
// invocations are derived from the timestamp of the parent invocation
// being executed (figure 6), so every replica issues the identical
// identifier and the target group executes the operation exactly once.
type Handle struct {
	m     *Mechanisms
	group GroupID
}

// Handle returns the nested-invocation handle for this node's replica of
// the group.
func (m *Mechanisms) Handle(group GroupID) *Handle {
	return &Handle{m: m, group: group}
}

// Invoke performs a nested invocation on the object identified by
// objectKey from within the currently executing operation.
func (h *Handle) Invoke(objectKey []byte, op string, args []byte, timeout time.Duration) (*cdr.Reader, error) {
	dst, ok := h.m.GroupByKey(objectKey)
	if !ok {
		return nil, fmt.Errorf("replication: object key %q: %w", objectKey, ErrNoSuchGroup)
	}
	h.m.mu.RLock()
	g, ok := h.m.groups[h.group]
	if !ok || g.local == nil {
		h.m.mu.RUnlock()
		return nil, fmt.Errorf("group %d: %w", h.group, ErrNotMember)
	}
	r := g.local
	h.m.mu.RUnlock()
	if r.curParentTS == 0 {
		return nil, errors.New("replication: nested Invoke outside an executing operation")
	}
	r.curChildSeq++
	opID := OperationID{ParentTS: r.curParentTS, ChildSeq: r.curChildSeq}
	rep, err := h.m.Invoke(h.group, UnusedClientID, dst, opID, giop.Request{
		RequestID:        r.curChildSeq,
		ResponseExpected: true,
		ObjectKey:        objectKey,
		Operation:        op,
		Args:             args,
	}, timeout)
	if err != nil {
		return nil, err
	}
	return orb.ReplyReader(rep)
}
