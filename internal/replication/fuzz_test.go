package replication

import (
	"testing"

	"eternalgw/internal/logrec"
	"eternalgw/internal/memnet"
)

// FuzzDecode feeds arbitrary bytes through the infrastructure message
// decoder and every payload decoder.
func FuzzDecode(f *testing.F) {
	f.Add(Encode(Message{Header: Header{Kind: KindInvocation, ClientID: 1, SrcGroup: 2, DstGroup: 3, Op: OperationID{ParentTS: 4, ChildSeq: 5}}, Payload: []byte("x")}))
	f.Add(encodeCreateGroup(createGroupPayload{Style: Active, ObjectKey: []byte("k")}))
	f.Add(encodeState(statePayload{Target: "n", JoinTS: 1, OpCount: 2, State: []byte("s"),
		CpSeq: 1, Entries: []logrec.Entry{{Seq: 2, Data: []byte("e")}}}))
	f.Add(encodeViewChange(viewChangePayload{Add: []memnet.NodeID{"a"}, Remove: []memnet.NodeID{"b"}}))
	f.Fuzz(func(t *testing.T, data []byte) {
		if msg, err := Decode(data); err == nil {
			_, _ = decodeCreateGroup(msg.Payload)
			_, _ = decodeMember(msg.Payload)
			_, _ = decodeState(msg.Payload)
			_, _ = decodeViewChange(msg.Payload)
		}
	})
}
