package replication

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"eternalgw/internal/giop"
	"eternalgw/internal/logrec"
	"eternalgw/internal/memnet"
	"eternalgw/internal/obs"
	"eternalgw/internal/totem"
)

// Errors reported by the mechanisms.
var (
	ErrNoQuorum      = errors.New("replication: node is in a minority partition")
	ErrStopped       = errors.New("replication: mechanisms stopped")
	ErrNoSuchGroup   = errors.New("replication: no such group")
	ErrGroupExists   = errors.New("replication: group already exists")
	ErrNotMember     = errors.New("replication: node is not a member")
	ErrAlreadyMember = errors.New("replication: node already a member")
	ErrTimeout       = errors.New("replication: timed out")
	ErrNoAgreement   = errors.New("replication: voting replicas disagree")
)

// groupState is the directory entry for one object group. It is mutated
// only by the event loop, under mu for the benefit of concurrent readers.
type groupState struct {
	id        GroupID
	style     Style
	objectKey string
	// members lists hosting nodes in join order; members[0] is the
	// primary of passive groups and the state-transfer donor.
	members []memnet.NodeID
	// local is this node's replica runtime, if the node is a member.
	local *replica
	// pendingJoins tracks joiners awaiting state transfer: node -> the
	// totem timestamp of their join.
	pendingJoins map[memnet.NodeID]uint64
	// view numbers this group's membership views; viewSeq is the
	// total-order position the current view was installed at. Both are
	// bumped by the event loop at every membership change, so all members
	// agree on (view, members) at every point in the message stream.
	view    uint64
	viewSeq uint64
}

func (g *groupState) isMember(id memnet.NodeID) bool {
	for _, m := range g.members {
		if m == id {
			return true
		}
	}
	return false
}

func (g *groupState) removeMember(id memnet.NodeID) {
	kept := g.members[:0]
	for _, m := range g.members {
		if m != id {
			kept = append(kept, m)
		}
	}
	g.members = kept
}

// pendingCall is one invocation awaiting its response(s). The fields
// below ch are mutated only by the event loop, under the call's pending
// shard lock.
type pendingCall struct {
	ch chan pendingResult
	// votesNeeded is zero for first-response delivery; otherwise the
	// number of identical results required (active-with-voting).
	votesNeeded int
	votes       map[string]int
	responded   map[memnet.NodeID]bool
	expected    int // group size at invocation time (voting)
}

// pendingResult is what the event loop hands a pending waiter: either
// the raw encapsulated IIOP reply (the common first-response path, where
// the waiter decodes it off the event loop) or an already-decoded reply
// (the voting path, which must decode on the loop to compare result
// bytes across replicas). raw aliases the delivery buffer; the waiter
// decodes it immediately and DecodeReply copies the result bytes out.
type pendingResult struct {
	rep giop.Reply
	raw []byte
}

// Mechanisms is the per-node replication engine. Create with New, stop
// with Stop.
type Mechanisms struct {
	cfg    Config
	node   *totem.Node
	log    *logrec.Log
	tracer *obs.Tracer // nil when tracing is disabled

	stop chan struct{}
	done chan struct{}

	// mu guards the group directory. Only the event loop takes the write
	// lock (directory mutations are delivered in total order); the
	// invocation datapath takes read locks, so concurrent Invokes and
	// response deliveries do not serialize behind membership changes.
	mu     sync.RWMutex
	groups map[GroupID]*groupState
	byKey  map[string]GroupID
	// prearmed holds applications registered by JoinGroup, installed
	// when the join announcement is delivered in total order.
	prearmed  map[GroupID]Application
	observers map[GroupID]Observer
	changed   chan struct{} // closed and replaced on directory change

	// ring is the current totem ring's membership and ringID its
	// identifier, tracked so a configuration change can tell a merge (new
	// nodes appeared) from a departure, and which side of a healed
	// partition this node was on. syncApplied is the highest ring whose
	// membership sync has been adopted. All three are loop-owned, under
	// mu.
	ring        []memnet.NodeID
	ringID      uint64
	syncApplied uint64

	// pending is the sharded pending-call table plus the early-discard
	// done-set, outside mu entirely: response delivery and Invoke
	// registration meet only on a shard lock.
	pending *pendingTable

	stopOnce sync.Once
	// wg tracks goroutines the event loop hands blocking work to (the
	// membership-sync multicast); Stop waits for them so no multicast
	// fires after the caller assumes quiescence.
	wg sync.WaitGroup

	invocationsSent      atomic.Uint64
	invocationsExecuted  atomic.Uint64
	duplicateInvocations atomic.Uint64
	dedupMisses          atomic.Uint64
	responsesSent        atomic.Uint64
	responsesDelivered   atomic.Uint64
	duplicateResponses   atomic.Uint64
	// responsesDiscardedEarly counts the subset of duplicate responses
	// dropped from the header peek alone, without payload decode.
	responsesDiscardedEarly atomic.Uint64
	stateTransfers          atomic.Uint64
	stateSyncs              atomic.Uint64
	checkpoints             atomic.Uint64
	failovers               atomic.Uint64
	replayedInvocations     atomic.Uint64
	viewChanges             atomic.Uint64
	transfersCheckpointed   atomic.Uint64
	transfersFullState      atomic.Uint64
	transferEntriesReplayed atomic.Uint64
	catchupCheckpoints      atomic.Uint64
	membershipSyncs         atomic.Uint64
}

// New creates the replication mechanisms over a running totem node and
// starts consuming its event stream.
func New(cfg Config) (*Mechanisms, error) {
	if cfg.Node == nil {
		return nil, errors.New("replication: config needs a totem node")
	}
	cfg.applyDefaults()
	m := &Mechanisms{
		cfg:       cfg,
		node:      cfg.Node,
		tracer:    cfg.Tracer,
		log:       logrec.NewLog(),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
		groups:    make(map[GroupID]*groupState),
		byKey:     make(map[string]GroupID),
		prearmed:  make(map[GroupID]Application),
		observers: make(map[GroupID]Observer),
		pending:   newPendingTable(cfg.DedupCapacity),
		changed:   make(chan struct{}),
	}
	m.registerMetrics(cfg.Metrics)
	go m.run()
	return m, nil
}

// registerMetrics publishes the mechanisms' counters on the registry,
// labelled with this node's identity. The datapath keeps its bare
// atomic increments; the registry reads only at scrape time.
func (m *Mechanisms) registerMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	lbl := obs.Labels{"node": string(m.cfg.NodeID)}
	for _, c := range []struct {
		name, help string
		fn         func() uint64
	}{
		{"eternalgw_replication_invocations_sent_total", "Invocations multicast by this node.", m.invocationsSent.Load},
		{"eternalgw_replication_invocations_executed_total", "Invocations executed by local replicas.", m.invocationsExecuted.Load},
		{"eternalgw_replication_duplicate_invocations_total", "Duplicate invocations detected and suppressed (dedup hits).", m.duplicateInvocations.Load},
		{"eternalgw_replication_dedup_misses_total", "Executed invocations that were not duplicates (dedup misses).", m.dedupMisses.Load},
		{"eternalgw_replication_responses_sent_total", "Responses multicast by local replicas.", m.responsesSent.Load},
		{"eternalgw_replication_responses_delivered_total", "Responses delivered to local pending invocations.", m.responsesDelivered.Load},
		{"eternalgw_replication_duplicate_responses_total", "Duplicate responses detected and suppressed.", m.duplicateResponses.Load},
		{"eternalgw_replication_responses_discarded_early_total", "Duplicate responses discarded from the header peek, without payload decode.", m.responsesDiscardedEarly.Load},
		{"eternalgw_replication_state_transfers_total", "State transfers donated.", m.stateTransfers.Load},
		{"eternalgw_replication_state_syncs_total", "Warm-passive state synchronizations published.", m.stateSyncs.Load},
		{"eternalgw_replication_checkpoints_total", "Cold-passive checkpoints written.", m.checkpoints.Load},
		{"eternalgw_replication_failovers_total", "Passive-group failovers performed.", m.failovers.Load},
		{"eternalgw_replication_replayed_invocations_total", "Invocations re-executed during failover.", m.replayedInvocations.Load},
		{"eternalgw_replication_view_changes_total", "Group membership views installed (joins, leaves, evictions, failures).", m.viewChanges.Load},
		{"eternalgw_replication_transfers_checkpointed_total", "State donations served as checkpoint plus log replay.", m.transfersCheckpointed.Load},
		{"eternalgw_replication_transfers_full_state_total", "State donations that fell back to a full state capture.", m.transfersFullState.Load},
		{"eternalgw_replication_transfer_entries_replayed_total", "Logged invocations replayed by joining replicas catching up from a checkpoint.", m.transferEntriesReplayed.Load},
		{"eternalgw_replication_catchup_checkpoints_total", "Local checkpoints written into the catch-up log by executing replicas.", m.catchupCheckpoints.Load},
		{"eternalgw_replication_membership_syncs_total", "Authoritative directory snapshots adopted after a ring merge (partition healing).", m.membershipSyncs.Load},
	} {
		reg.CounterFunc(c.name, c.help, lbl, c.fn)
	}
	reg.GaugeFunc("eternalgw_replication_dedup_cache_entries", "Executed-operation records held for duplicate detection, all local replicas.", lbl, func() float64 {
		total := 0
		for _, n := range m.DedupOccupancy() {
			total += n
		}
		return float64(total)
	})
	reg.GaugeFunc("eternalgw_replication_pending_calls", "Invocations registered and awaiting responses on this node.", lbl, func() float64 {
		return float64(m.PendingCalls())
	})
	reg.GaugeFunc("eternalgw_replication_backpressure", "Domain-side load signal in [0,1]: max of totem send backlog and pending-call occupancy against their windows.", lbl, m.Backpressure)
}

// PendingCalls reports how many invocations this node has registered and
// not yet resolved (responses outstanding toward the domain).
func (m *Mechanisms) PendingCalls() int {
	return m.pending.occupancy()
}

// Backpressure is the domain-side load signal in [0, 1] that admission
// breakers sample: the worse of (a) the totem send backlog against the
// submission queue's capacity — ordered multicasts waiting for a token
// visit — and (b) the pending-call occupancy against the configured
// BackpressureWindow — invocations conveyed but unanswered. Either one
// saturating means the domain is falling behind this node's offered
// load, which an edge gateway should stop accepting.
func (m *Mechanisms) Backpressure() float64 {
	var sig float64
	if queued, capacity := m.node.Backlog(); capacity > 0 {
		sig = float64(queued) / float64(capacity)
	}
	if p := float64(m.PendingCalls()) / float64(m.cfg.BackpressureWindow); p > sig {
		sig = p
	}
	if sig > 1 {
		sig = 1
	}
	return sig
}

// DedupOccupancy reports, per group with a local servant replica, how
// many executed-operation records the replica's duplicate-detection
// cache currently holds (the /statusz dedup section and capacity-tuning
// diagnostics read this).
func (m *Mechanisms) DedupOccupancy() map[GroupID]int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make(map[GroupID]int)
	for id, g := range m.groups {
		if g.local != nil && g.local.app != nil {
			out[id] = int(g.local.dedupLen.Load())
		}
	}
	return out
}

// NodeID returns the identity of the node these mechanisms run on.
func (m *Mechanisms) NodeID() memnet.NodeID { return m.cfg.NodeID }

// Log exposes the node's logging-recovery store (used by experiments and
// the resource manager to inspect recovery behaviour).
func (m *Mechanisms) Log() *logrec.Log { return m.log }

// Stop shuts down the event loop and all replica executors, then waits
// for any in-flight handoff goroutines (totem.Multicast unblocks them
// once the node stops, so the wait terminates on every shutdown path).
func (m *Mechanisms) Stop() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
	m.wg.Wait()
}

// Stats snapshots the counters.
func (m *Mechanisms) Stats() Stats {
	return Stats{
		InvocationsSent:         m.invocationsSent.Load(),
		InvocationsExecuted:     m.invocationsExecuted.Load(),
		DuplicateInvocations:    m.duplicateInvocations.Load(),
		DedupMisses:             m.dedupMisses.Load(),
		ResponsesSent:           m.responsesSent.Load(),
		ResponsesDelivered:      m.responsesDelivered.Load(),
		DuplicateResponses:      m.duplicateResponses.Load(),
		ResponsesDiscardedEarly: m.responsesDiscardedEarly.Load(),
		StateTransfers:          m.stateTransfers.Load(),
		StateSyncs:              m.stateSyncs.Load(),
		Checkpoints:             m.checkpoints.Load(),
		Failovers:               m.failovers.Load(),
		ReplayedInvocations:     m.replayedInvocations.Load(),
		ViewChanges:             m.viewChanges.Load(),
		TransfersCheckpointed:   m.transfersCheckpointed.Load(),
		TransfersFullState:      m.transfersFullState.Load(),
		TransferEntriesReplayed: m.transferEntriesReplayed.Load(),
		CatchupCheckpoints:      m.catchupCheckpoints.Load(),
		MembershipSyncs:         m.membershipSyncs.Load(),
	}
}

// --- group administration -------------------------------------------------

// CreateGroup announces a new object group. The announcement is ordered
// by totem; use WaitForGroup to synchronize. Creating an existing group
// id is a delivered no-op, so concurrent creators agree on the first.
func (m *Mechanisms) CreateGroup(id GroupID, style Style, objectKey []byte) error {
	return m.multicast(Message{
		Header:  Header{Kind: KindCreateGroup, ClientID: UnusedClientID, DstGroup: id},
		Payload: encodeCreateGroup(createGroupPayload{Style: style, ObjectKey: objectKey}),
	})
}

// JoinGroup adds a replica of the group on this node, hosting app. A nil
// app joins as a client-only member (how gateways join the gateway
// group): it can invoke through the group and receive responses but
// hosts no servant. Use WaitSynced to block until the replica has
// received its state transfer and is live.
func (m *Mechanisms) JoinGroup(id GroupID, app Application) error {
	m.mu.Lock()
	g, ok := m.groups[id]
	if _, armed := m.prearmed[id]; (ok && g.local != nil) || armed {
		m.mu.Unlock()
		return fmt.Errorf("group %d on %s: %w", id, m.cfg.NodeID, ErrAlreadyMember)
	}
	// Register the intent; the replica activates when the join is
	// delivered in total order.
	m.prearmed[id] = app
	m.mu.Unlock()
	return m.multicast(Message{
		Header:  Header{Kind: KindJoinGroup, ClientID: UnusedClientID, DstGroup: id},
		Payload: encodeMember(memberPayload{Node: m.cfg.NodeID}),
	})
}

// DeleteGroup retires the group across the whole domain: every node
// stops its local replica (if any) and removes the directory entry. The
// deletion is ordered by totem like every other membership change.
func (m *Mechanisms) DeleteGroup(id GroupID) error {
	return m.multicast(Message{
		Header: Header{Kind: KindDeleteGroup, ClientID: UnusedClientID, DstGroup: id},
	})
}

// LeaveGroup removes this node's replica from the group.
func (m *Mechanisms) LeaveGroup(id GroupID) error {
	return m.multicast(Message{
		Header:  Header{Kind: KindLeaveGroup, ClientID: UnusedClientID, DstGroup: id},
		Payload: encodeMember(memberPayload{Node: m.cfg.NodeID}),
	})
}

// GroupByKey resolves a CORBA object key to its object group. This is
// the lookup the gateway performs on the object key embedded in each
// incoming IIOP request (paper section 3.1).
func (m *Mechanisms) GroupByKey(objectKey []byte) (GroupID, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	id, ok := m.byKey[string(objectKey)]
	return id, ok
}

// GroupStyle returns the replication style of a group.
func (m *Mechanisms) GroupStyle(id GroupID) (Style, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	g, ok := m.groups[id]
	if !ok {
		return 0, false
	}
	return g.style, true
}

// Members returns a group's hosting nodes in join order (index 0 is the
// primary of passive groups).
func (m *Mechanisms) Members(id GroupID) []memnet.NodeID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	g, ok := m.groups[id]
	if !ok {
		return nil
	}
	out := make([]memnet.NodeID, len(g.members))
	copy(out, g.members)
	return out
}

// View returns the group's current membership view.
func (m *Mechanisms) View(id GroupID) (View, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	g, ok := m.groups[id]
	if !ok {
		return View{}, false
	}
	v := View{Number: g.view, Seq: g.viewSeq, Members: make([]memnet.NodeID, len(g.members))}
	copy(v.Members, g.members)
	return v, true
}

// Groups lists the identifiers of every object group in the directory.
func (m *Mechanisms) Groups() []GroupID {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]GroupID, 0, len(m.groups))
	for id := range m.groups {
		out = append(out, id)
	}
	return out
}

// EvictMembers removes nodes from a group through one totally-ordered
// view change, without the evicted nodes' cooperation: the resource
// manager's shrink and replace operations use it to retire replicas
// (the cooperative exit is LeaveGroup). Evicting a non-member is a
// delivered no-op.
func (m *Mechanisms) EvictMembers(id GroupID, nodes ...memnet.NodeID) error {
	if len(nodes) == 0 {
		return nil
	}
	return m.multicast(Message{
		Header:  Header{Kind: KindViewChange, ClientID: UnusedClientID, DstGroup: id},
		Payload: encodeViewChange(viewChangePayload{Remove: nodes}),
	})
}

// WaitForView blocks until the group's view number reaches at least n.
func (m *Mechanisms) WaitForView(id GroupID, n uint64, timeout time.Duration) error {
	return m.waitCondition(timeout, func() bool {
		g, ok := m.groups[id]
		return ok && g.view >= n
	})
}

// waitCondition blocks until cond (evaluated under mu) holds.
func (m *Mechanisms) waitCondition(timeout time.Duration, cond func() bool) error {
	deadline := time.Now().Add(timeout)
	for {
		m.mu.RLock()
		ok := cond()
		ch := m.changed
		m.mu.RUnlock()
		if ok {
			return nil
		}
		remain := time.Until(deadline)
		if remain <= 0 {
			return ErrTimeout
		}
		timer := time.NewTimer(remain)
		select {
		case <-ch:
		case <-timer.C:
		case <-m.stop:
			timer.Stop()
			return ErrStopped
		}
		timer.Stop()
	}
}

// WaitForGroup blocks until the group exists.
func (m *Mechanisms) WaitForGroup(id GroupID, timeout time.Duration) error {
	return m.waitCondition(timeout, func() bool {
		_, ok := m.groups[id]
		return ok
	})
}

// WaitForMembers blocks until the group has at least n members.
func (m *Mechanisms) WaitForMembers(id GroupID, n int, timeout time.Duration) error {
	return m.waitCondition(timeout, func() bool {
		g, ok := m.groups[id]
		return ok && len(g.members) >= n
	})
}

// WaitSynced blocks until this node's replica of the group is live
// (joined, state transferred).
func (m *Mechanisms) WaitSynced(id GroupID, timeout time.Duration) error {
	return m.waitCondition(timeout, func() bool {
		g, ok := m.groups[id]
		return ok && g.local != nil && g.local.synced.Load()
	})
}

// notifyChanged wakes all condition waiters. Callers hold mu.
func (m *Mechanisms) notifyChanged() {
	close(m.changed)
	m.changed = make(chan struct{})
}

// --- invocation -----------------------------------------------------------

// Invoke multicasts an invocation of the dst group and waits for the
// response, suppressing duplicate responses by response identifier. src
// must be a group this node is a member of (responses are addressed to
// it). clientID carries the TCP client identifier when a gateway invokes
// on behalf of an external client, and UnusedClientID otherwise. op must
// be determined identically by every replica of the issuing group.
func (m *Mechanisms) Invoke(src GroupID, clientID uint64, dst GroupID, op OperationID, req giop.Request, timeout time.Duration) (giop.Reply, error) {
	if timeout == 0 {
		timeout = m.cfg.InvokeTimeout
	}
	if !m.HasQuorum() {
		return giop.Reply{}, fmt.Errorf("invoke group %d: %w", dst, ErrNoQuorum)
	}
	key := opKey{src: dst, clientID: clientID, op: op}

	m.mu.RLock()
	g, ok := m.groups[dst]
	if !ok {
		m.mu.RUnlock()
		return giop.Reply{}, fmt.Errorf("group %d: %w", dst, ErrNoSuchGroup)
	}
	style, groupSize := g.style, len(g.members)
	m.mu.RUnlock()
	call := &pendingCall{ch: make(chan pendingResult, 1)}
	if style == ActiveWithVoting {
		call.expected = groupSize
		call.votesNeeded = groupSize/2 + 1
		call.votes = make(map[string]int)
		call.responded = make(map[memnet.NodeID]bool)
	}
	m.pending.register(key, call)
	defer m.pending.unregister(key, call)

	// Encode the conveyed IIOP request in the byte order its arguments
	// were marshalled in (the external client's order, when a gateway
	// forwards), so replicas decode the arguments correctly and answer
	// in the same order.
	reqMsg, err := giop.EncodeRequest(req.ArgsOrder, req)
	if err != nil {
		return giop.Reply{}, err
	}
	err = m.multicast(Message{
		Header: Header{
			Kind:     KindInvocation,
			ClientID: clientID,
			SrcGroup: src,
			DstGroup: dst,
			Op:       op,
		},
		Payload: giop.Marshal(reqMsg),
	})
	if err != nil {
		return giop.Reply{}, err
	}
	m.invocationsSent.Add(1)
	m.tracer.Event(obs.TraceKey{ClientID: clientID, ParentTS: op.ParentTS, ChildSeq: op.ChildSeq},
		obs.StageMulticastSend, string(m.cfg.NodeID))

	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case res := <-call.ch:
		if res.raw == nil {
			return res.rep, nil
		}
		// The common path: the event loop handed over the raw
		// encapsulated reply and this waiter — off the event loop —
		// decodes it. DecodeReply copies the result bytes out of the
		// delivery buffer.
		wire, derr := giop.Unmarshal(res.raw)
		if derr != nil {
			return giop.Reply{}, fmt.Errorf("replication: decode response: %w", derr)
		}
		rep, derr := giop.DecodeReply(wire)
		if derr != nil {
			return giop.Reply{}, fmt.Errorf("replication: decode response: %w", derr)
		}
		return rep, nil
	case <-timer.C:
		return giop.Reply{}, fmt.Errorf("%w: op %v on group %d", ErrTimeout, op, dst)
	case <-m.stop:
		return giop.Reply{}, ErrStopped
	}
}

// HasQuorum reports whether this node may serve: always true unless
// QuorumOf is configured, in which case the node's ring must hold a
// majority of the domain's processors.
func (m *Mechanisms) HasQuorum() bool {
	if m.cfg.QuorumOf <= 0 {
		return true
	}
	return len(m.node.Members()) >= m.cfg.QuorumOf/2+1
}

// multicast submits an encoded message to totem.
func (m *Mechanisms) multicast(msg Message) error {
	if err := m.node.Multicast(Encode(msg)); err != nil {
		return fmt.Errorf("replication: multicast: %w", err)
	}
	return nil
}

// MulticastMessage multicasts an arbitrary infrastructure message into
// the domain. Gateways use it to record incoming client requests with
// the whole gateway group before forwarding them (paper section 3.5).
func (m *Mechanisms) MulticastMessage(msg Message) error {
	return m.multicast(msg)
}

// Observer receives infrastructure messages addressed to an observed
// group, in total order, together with their delivery timestamps.
// Observers run on the event loop and must not block.
type Observer func(msg Message, ts uint64)

// SetObserver registers fn to observe every invocation and response
// delivered to the group while this node is a member. This is how every
// member of a redundant gateway group keeps a record of the requests and
// responses flowing through any one of them (paper section 3.5).
func (m *Mechanisms) SetObserver(group GroupID, fn Observer) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.observers[group] = fn
}

// observerLocked returns the observer a delivered message to the group
// should be dispatched to, or nil if the node is not a member or none is
// registered. Callers hold mu (read or write) for the map lookup, but
// must invoke the returned function only after releasing it: observers
// are foreign code (the gateway record takes its shard locks and copies
// reply bytes), so calling them under the directory lock stretches the
// event loop's critical section and hides lock-order edges from static
// analysis (gwlint lockorder). Delivery order is preserved because every
// dispatch site runs on the single event-loop goroutine. The message
// payload may alias the delivery buffer; observers copy what they
// retain.
func (m *Mechanisms) observerLocked(g *groupState) Observer {
	if g.local == nil {
		return nil
	}
	return m.observers[g.id]
}
