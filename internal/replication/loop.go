package replication

import (
	"eternalgw/internal/cdr"
	"eternalgw/internal/giop"
	"eternalgw/internal/memnet"
	"eternalgw/internal/obs"
	"eternalgw/internal/totem"
)

// giopOrder is the byte order used for IIOP messages the infrastructure
// itself encodes.
const giopOrder = cdr.BigEndian

// minorNoAgreement is the NO_AGREEMENT minor code raised when every
// replica answered a voting invocation without a majority (documented
// in docs/OPERATIONS.md). The request did execute — the copies merely
// disagree — so it travels with COMPLETED_MAYBE: the outcome is
// unknown and a blind retry is not known to be safe.
const minorNoAgreement uint32 = 0

// run consumes the totem event stream. It is the only goroutine that
// mutates the group directory; replica executors receive work through
// their task queues in delivery order, which preserves the total order
// per group.
func (m *Mechanisms) run() {
	defer close(m.done)
	defer m.shutdownReplicas()
	for {
		select {
		case <-m.stop:
			return
		case ev := <-m.node.Events():
			switch ev.Type {
			case totem.EventDeliver:
				m.handleDelivery(ev.Delivery)
			case totem.EventConfig:
				m.handleConfig(ev.Config)
			}
		}
	}
}

func (m *Mechanisms) shutdownReplicas() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, g := range m.groups {
		if g.local != nil {
			g.local.close()
			g.local = nil
		}
	}
}

func (m *Mechanisms) handleDelivery(d totem.Delivery) {
	// Header-first: the loop peeks at the fixed header and routes on
	// {Kind, SrcGroup, DstGroup, ClientID, Op} alone. The payload stays
	// encoded, aliasing the delivery buffer; the datapath kinds defer its
	// decode to whoever needs it (the replica executor for requests, the
	// first pending waiter for replies) and duplicate responses are
	// discarded without ever touching CDR. Control kinds decode their
	// small payloads here as before.
	hv, err := DecodeHeader(d.Payload)
	if err != nil {
		return // not an infrastructure message; ignore
	}
	// The timestamp folds the packed-message sub-index into the sequence
	// number so that every payload — even ones sharing a datagram — gets a
	// unique, totally-ordered value for operation identifiers.
	ts := d.Timestamp()
	switch hv.Header.Kind {
	case KindCreateGroup:
		m.deliverCreateGroup(hv.Message(), ts)
	case KindJoinGroup:
		m.deliverJoin(hv.Message(), ts)
	case KindLeaveGroup:
		m.deliverLeave(hv.Message(), ts)
	case KindViewChange:
		m.deliverViewChange(hv.Message(), ts)
	case KindInvocation:
		m.deliverInvocation(hv, d.Payload, ts)
	case KindResponse:
		m.deliverResponse(hv, d.Sender, ts)
	case KindStateTransfer:
		m.deliverStateTransfer(hv.Message())
	case KindStateSync:
		m.deliverStateSync(hv.Message())
	case KindGatewayControl:
		m.deliverGatewayControl(hv.Message(), ts)
	case KindDeleteGroup:
		m.deliverDeleteGroup(hv.Message())
	case KindMembershipSync:
		m.deliverMembershipSync(hv.Message())
	}
}

// deliverDeleteGroup retires a group at this node.
func (m *Mechanisms) deliverDeleteGroup(msg Message) {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.groups[msg.Header.DstGroup]
	if !ok {
		return
	}
	if g.local != nil {
		g.local.close()
		g.local = nil
	}
	if g.objectKey != "" && m.byKey[g.objectKey] == g.id {
		delete(m.byKey, g.objectKey)
	}
	delete(m.groups, g.id)
	delete(m.observers, g.id)
	m.notifyChanged()
}

// deliverGatewayControl routes gateway housekeeping to the destination
// group's observer; the infrastructure itself attaches no meaning to it.
func (m *Mechanisms) deliverGatewayControl(msg Message, ts uint64) {
	m.mu.RLock()
	var fn Observer
	if g, ok := m.groups[msg.Header.DstGroup]; ok {
		fn = m.observerLocked(g)
	}
	m.mu.RUnlock()
	if fn != nil {
		fn(msg, ts)
	}
}

func (m *Mechanisms) deliverCreateGroup(msg Message, ts uint64) {
	p, err := decodeCreateGroup(msg.Payload)
	if err != nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	id := msg.Header.DstGroup
	if _, ok := m.groups[id]; ok {
		return // concurrent creators: first delivery wins
	}
	m.groups[id] = &groupState{
		id:           id,
		style:        p.Style,
		objectKey:    string(p.ObjectKey),
		pendingJoins: make(map[memnet.NodeID]uint64),
		view:         1, // the empty group is view 1
		viewSeq:      ts,
	}
	if len(p.ObjectKey) > 0 {
		m.byKey[string(p.ObjectKey)] = id
	}
	m.notifyChanged()
}

// bumpView installs the next numbered view of a group after a membership
// change applied at total-order position seq. Callers hold mu.
func (m *Mechanisms) bumpView(g *groupState, seq uint64) {
	g.view++
	g.viewSeq = seq
	m.viewChanges.Add(1)
}

// addMember applies one join to the group directory: the membership slot,
// the local replica activation when the joiner is this node, the
// pending-join record and the donor's state-capture task. It reports
// whether the membership changed (a self-join that was never prearmed is
// rolled back for safety). Callers hold mu.
func (m *Mechanisms) addMember(g *groupState, node memnet.NodeID, ts uint64) bool {
	g.members = append(g.members, node)
	first := len(g.members) == 1

	if node == m.cfg.NodeID {
		app, armed := m.prearmed[g.id]
		if !armed {
			// A join we never prearmed (e.g. replayed from before a
			// restart): ignore the membership slot for safety.
			g.removeMember(node)
			return false
		}
		delete(m.prearmed, g.id)
		r := newReplica(m, g.id, g.style, app)
		g.local = r
		// The first member and client-only members need no state
		// transfer.
		if first || app == nil {
			r.synced.Store(true)
		} else {
			g.pendingJoins[node] = ts
		}
	} else if g.local != nil && g.local.app != nil && !first {
		g.pendingJoins[node] = ts
	}

	// The donor (current primary) captures state for a joining servant.
	if !first && len(g.members) > 0 && g.members[0] == m.cfg.NodeID &&
		g.local != nil && g.local.app != nil && node != m.cfg.NodeID {
		g.local.push(task{kind: taskCaptureState, joiner: node, ts: ts})
	}
	return true
}

func (m *Mechanisms) deliverJoin(msg Message, ts uint64) {
	p, err := decodeMember(msg.Payload)
	if err != nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.groups[msg.Header.DstGroup]
	if !ok || g.isMember(p.Node) {
		return
	}
	if m.addMember(g, p.Node, ts) {
		m.bumpView(g, ts)
		m.updatePrimary(g)
	}
	m.notifyChanged()
}

func (m *Mechanisms) deliverLeave(msg Message, ts uint64) {
	p, err := decodeMember(msg.Payload)
	if err != nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.groups[msg.Header.DstGroup]
	if !ok || !g.isMember(p.Node) {
		return
	}
	g.removeMember(p.Node)
	delete(g.pendingJoins, p.Node)
	if p.Node == m.cfg.NodeID && g.local != nil {
		g.local.close()
		g.local = nil
	}
	m.bumpView(g, ts)
	m.updatePrimary(g)
	m.retriggerTransfers(g)
	m.notifyChanged()
}

// deliverViewChange applies a membership delta: evictions first, then
// joins (a replace delta frees the evicted slot before the joiner lands).
// Like every membership change it is delivered in total order, so every
// member installs the same numbered view at the same sequence number.
func (m *Mechanisms) deliverViewChange(msg Message, ts uint64) {
	p, err := decodeViewChange(msg.Payload)
	if err != nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.groups[msg.Header.DstGroup]
	if !ok {
		return
	}
	changed := false
	for _, node := range p.Remove {
		if !g.isMember(node) {
			continue
		}
		g.removeMember(node)
		delete(g.pendingJoins, node)
		if node == m.cfg.NodeID && g.local != nil {
			g.local.close()
			g.local = nil
		}
		changed = true
	}
	for _, node := range p.Add {
		if g.isMember(node) {
			continue
		}
		if m.addMember(g, node, ts) {
			changed = true
		}
	}
	if changed {
		m.bumpView(g, ts)
		m.updatePrimary(g)
		m.retriggerTransfers(g)
	}
	m.notifyChanged()
}

// handleConfig reacts to a totem membership change: nodes that left the
// ring are removed from every group, at a single point in the total
// order, so all survivors agree on the resulting memberships and on who
// is promoted. When the change is a merge (a healed partition brought
// nodes back), the two sides' directories have diverged — the majority
// component evicted the absentees and repaired around them, while the
// minority evicted everyone else and kept executing on state that then
// went stale. The minority side therefore discards its replicas at the
// merge point, before any post-merge invocation can reach them, and the
// majority side broadcasts its directory for the returning nodes to
// adopt (primary-component membership, paper section 2.4).
func (m *Mechanisms) handleConfig(c totem.ConfigChange) {
	inRing := make(map[memnet.NodeID]bool, len(c.Members))
	for _, id := range c.Members {
		inRing[id] = true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	prev := m.ring
	m.ring = append([]memnet.NodeID(nil), c.Members...)
	m.ringID = c.RingID
	merged := false
	if len(prev) > 0 {
		was := make(map[memnet.NodeID]bool, len(prev))
		for _, id := range prev {
			was[id] = true
		}
		for _, id := range c.Members {
			if !was[id] {
				merged = true
				break
			}
		}
	}
	for _, g := range m.groups {
		changed := false
		for _, node := range append([]memnet.NodeID(nil), g.members...) {
			if !inRing[node] {
				g.removeMember(node)
				delete(g.pendingJoins, node)
				changed = true
			}
		}
		if changed {
			// Failure-driven view change: every survivor installs the new
			// ring at the same point in the total order, so the ring
			// identifier stands in for the membership message's timestamp.
			m.bumpView(g, c.RingID)
			m.updatePrimary(g)
			m.retriggerTransfers(g)
		}
	}
	if merged {
		if fromMajority(prev, c.Members) {
			if payload := m.directorySyncLocked(c.RingID); payload != nil {
				// Multicast can block on the send queue; it must leave the
				// event loop. The snapshot was taken under mu at the merge
				// point, so every majority node sends identical content and
				// the first delivery wins. Stop waits on wg for this
				// handoff.
				m.wg.Add(1)
				go func() {
					defer m.wg.Done()
					_ = m.multicast(Message{
						Header:  Header{Kind: KindMembershipSync, ClientID: UnusedClientID},
						Payload: payload,
					})
				}()
			}
		} else {
			m.discardStaleReplicasLocked(c.RingID)
		}
	}
	m.notifyChanged()
}

// fromMajority reports whether the previous ring was the majority
// component of the merged ring — the side whose directory survives a
// partition healing. An exact half keeps the component holding the
// merged ring's lowest node identifier, a tiebreak both sides can
// compute from what they know.
func fromMajority(prev, merged []memnet.NodeID) bool {
	if len(prev)*2 > len(merged) {
		return true
	}
	if len(prev)*2 < len(merged) {
		return false
	}
	low := merged[0]
	for _, id := range merged[1:] {
		if id < low {
			low = id
		}
	}
	for _, id := range prev {
		if id == low {
			return true
		}
	}
	return false
}

// discardStaleReplicasLocked drops every local servant replica on a node
// returning from a minority partition: its state missed the operations
// the majority executed, so it must not answer post-merge invocations.
// Running at the merge configuration — before any post-merge delivery —
// closes the window in which a stale replica could respond. The catch-up
// log goes with it (a stale checkpoint must never be donated), and the
// node rejoins groups only through the resource manager's normal
// placement, with a fresh state transfer. Callers hold mu.
func (m *Mechanisms) discardStaleReplicasLocked(seq uint64) {
	for _, g := range m.groups {
		if g.local == nil || g.local.app == nil {
			continue
		}
		g.local.close()
		g.local = nil
		g.removeMember(m.cfg.NodeID)
		for node := range g.pendingJoins {
			delete(g.pendingJoins, node)
		}
		m.log.Drop(uint32(g.id))
		m.bumpView(g, seq)
	}
}

// directorySyncLocked snapshots the group directory as an encoded
// membership-sync payload, or returns nil when there is nothing to
// share. Callers hold mu.
func (m *Mechanisms) directorySyncLocked(ringID uint64) []byte {
	if len(m.groups) == 0 {
		return nil
	}
	p := membershipSyncPayload{RingID: ringID}
	for _, g := range m.groups {
		p.Groups = append(p.Groups, syncGroup{
			ID:        g.id,
			Style:     g.style,
			ObjectKey: []byte(g.objectKey),
			View:      g.view,
			ViewSeq:   g.viewSeq,
			Members:   append([]memnet.NodeID(nil), g.members...),
		})
	}
	return encodeMembershipSync(p)
}

// deliverMembershipSync adopts the majority component's directory after
// a ring merge. It is delivered in total order, so every node applies
// the same snapshot at the same point; on the nodes that were already in
// the majority it is a no-op by content. Only the first sync for the
// current ring applies — later ones for the same ring are the identical
// snapshots of other majority nodes, and syncs for older rings are
// stale.
func (m *Mechanisms) deliverMembershipSync(msg Message) {
	p, err := decodeMembershipSync(msg.Payload)
	if err != nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if p.RingID != m.ringID || p.RingID <= m.syncApplied {
		return
	}
	m.syncApplied = p.RingID
	m.membershipSyncs.Add(1)
	for _, sg := range p.Groups {
		g, ok := m.groups[sg.ID]
		if !ok {
			g = &groupState{
				id:           sg.ID,
				style:        sg.Style,
				objectKey:    string(sg.ObjectKey),
				pendingJoins: make(map[memnet.NodeID]uint64),
			}
			m.groups[sg.ID] = g
			if g.objectKey != "" {
				m.byKey[g.objectKey] = sg.ID
			}
		}
		g.members = append(g.members[:0], sg.Members...)
		g.view = sg.View
		g.viewSeq = sg.ViewSeq
		if g.local != nil && !g.isMember(m.cfg.NodeID) {
			// The majority evicted this node while it was away; whatever
			// membership it thinks it holds is void.
			g.local.close()
			g.local = nil
			m.log.Drop(uint32(g.id))
		}
		m.updatePrimary(g)
	}
	m.notifyChanged()
}

// updatePrimary recomputes the local replica's primary role; a backup of
// a passive group promoted to primary performs failover. Callers hold mu.
func (m *Mechanisms) updatePrimary(g *groupState) {
	if g.local == nil {
		return
	}
	isPrimary := len(g.members) > 0 && g.members[0] == m.cfg.NodeID
	if isPrimary && !g.local.primary {
		g.local.primary = true
		// Failover applies only to replicas that actually served as a
		// backup: a replica that is primary from its own join (the
		// group's first member) has nothing to recover.
		if g.local.wasBackup && (g.style == WarmPassive || g.style == ColdPassive) && g.local.app != nil {
			g.local.push(task{kind: taskFailover})
		}
	} else if !isPrimary {
		g.local.primary = false
		g.local.wasBackup = true
	}
}

// retriggerTransfers re-issues state capture for joiners whose donor died
// before sending their state. Callers hold mu.
func (m *Mechanisms) retriggerTransfers(g *groupState) {
	if g.local == nil || g.local.app == nil {
		return
	}
	if len(g.members) == 0 || g.members[0] != m.cfg.NodeID {
		return
	}
	for joiner, ts := range g.pendingJoins {
		if joiner != m.cfg.NodeID {
			g.local.push(task{kind: taskCaptureState, joiner: joiner, ts: ts})
		}
	}
}

func (m *Mechanisms) deliverInvocation(hv HeaderView, raw []byte, ts uint64) {
	if !m.HasQuorum() {
		// Minority partition: refuse to advance replica state so the
		// majority's history stays the only history (reconciliation by
		// state transfer on merge).
		return
	}
	msg := hv.Message()
	// Everything the directory lock protects is collected in one read
	// section; the observers run after release (see observerLocked). The
	// event loop is the only dispatcher, so they still see invocations in
	// total order.
	m.mu.RLock()
	// An invocation is also observed by its source group, if this node is
	// a member: that is how gateways build the §3.5 gateway-group record
	// from the invocation itself, without a separate record multicast —
	// every gateway sees the invocation at the same point in the total
	// order as the servants do.
	var srcObs, dstObs Observer
	if msg.Header.SrcGroup != msg.Header.DstGroup {
		if sg, ok := m.groups[msg.Header.SrcGroup]; ok {
			srcObs = m.observerLocked(sg)
		}
	}
	g, ok := m.groups[msg.Header.DstGroup]
	if !ok {
		m.mu.RUnlock()
		if srcObs != nil {
			srcObs(msg, ts)
		}
		return
	}
	dstObs = m.observerLocked(g)
	var r *replica
	execute := true
	logOnly := false
	if g.local != nil && g.local.app != nil {
		r = g.local
		if g.style == WarmPassive || g.style == ColdPassive {
			// Only the primary executes; backups log the invocation
			// stream for replay after failover.
			execute = r.primary
			logOnly = !r.primary
		}
	}
	m.mu.RUnlock()
	if srcObs != nil {
		srcObs(msg, ts)
	}
	if dstObs != nil {
		dstObs(msg, ts)
	}
	if r == nil {
		return
	}
	// The deliver span fires only on nodes hosting a servant for the
	// destination group: the gateway-group record multicast reuses the
	// real invocation's operation identifier and would otherwise pollute
	// that trace with an earlier deliver hop.
	m.tracer.Event(traceKey(msg.Header), obs.StageDeliver, string(m.cfg.NodeID))
	// The still-encoded GIOP request rides to the per-group executor,
	// which decodes it off the event loop; backups that only log the
	// invocation copy the raw wire form instead of re-encoding it.
	r.push(task{kind: taskInvoke, msg: msg, raw: raw, ts: ts, execute: execute, logInv: logOnly})
}

// deliverResponse routes a response to local pending invocations,
// suppressing duplicates by response identifier (paper section 3.3): the
// first copy is delivered, all subsequently received copies of the same
// operation identifier are discarded. The discard happens from the
// header peek alone — once an operation is in the shard's done-set, the
// 2nd..Rth replica copies never reach the group directory or CDR.
func (m *Mechanisms) deliverResponse(hv HeaderView, sender memnet.NodeID, ts uint64) {
	h := hv.Header
	key := opKey{src: h.SrcGroup, clientID: h.ClientID, op: h.Op}
	sh := m.pending.shard(key)

	sh.mu.Lock()
	calls := sh.calls[key]
	if len(calls) == 0 {
		_, done := sh.done[key]
		sh.mu.Unlock()
		if done {
			// Early discard: a copy of this response was already answered
			// or recorded at this node.
			m.duplicateResponses.Add(1)
			m.responsesDiscardedEarly.Add(1)
			m.tracer.Event(traceKey(h), obs.StageDupSuppressed, string(m.cfg.NodeID)+"/response")
			return
		}
		// First copy with nobody waiting (another gateway's traffic, or a
		// caller that timed out): members of the destination group still
		// observe it — that is how every gateway of the group records
		// responses flowing through its peers (§3.5) — and remember it so
		// the remaining replica copies are discarded early.
		if m.observeResponse(hv, ts) {
			sh.mu.Lock()
			sh.markDone(key)
			sh.mu.Unlock()
		}
		return
	}
	voting := false
	for _, c := range calls {
		if c.votesNeeded > 0 {
			voting = true
			break
		}
	}
	if !voting {
		// First-response delivery: this copy resolves every waiter. The
		// payload travels raw; each waiter decodes it off the event loop.
		for _, c := range calls {
			c.ch <- pendingResult{raw: hv.Payload}
		}
		delete(sh.calls, key)
		sh.markDone(key)
		sh.mu.Unlock()
		m.responsesDelivered.Add(1)
		m.observeResponse(hv, ts)
		return
	}
	sh.mu.Unlock()
	m.deliverVotingResponse(hv, sh, key, sender, ts)
}

// deliverVotingResponse handles responses awaited by active-with-voting
// callers. Voting compares result bytes across replica copies, so —
// unlike the first-response path — every copy is decoded, on the event
// loop, until a majority agrees.
func (m *Mechanisms) deliverVotingResponse(hv HeaderView, sh *pendingShard, key opKey, sender memnet.NodeID, ts uint64) {
	wire, err := giop.Unmarshal(hv.Payload)
	if err != nil {
		return
	}
	rep, err := giop.DecodeReply(wire)
	if err != nil {
		return
	}

	sh.mu.Lock()
	calls := sh.calls[key]
	remaining := calls[:0]
	delivered := false
	for _, c := range calls {
		if c.votesNeeded == 0 {
			c.ch <- pendingResult{rep: rep}
			delivered = true
			continue // resolved; drop from pending
		}
		if c.responded[sender] {
			m.duplicateResponses.Add(1)
			remaining = append(remaining, c)
			continue
		}
		c.responded[sender] = true
		c.votes[string(rep.Result)]++
		if c.votes[string(rep.Result)] >= c.votesNeeded {
			c.ch <- pendingResult{rep: rep}
			delivered = true
			continue
		}
		if len(c.responded) >= c.expected {
			// All replicas answered without a majority: surface the
			// disagreement instead of hanging the caller.
			c.ch <- pendingResult{rep: giop.Reply{
				RequestID: rep.RequestID,
				Status:    giop.ReplySystemException,
				Result:    giop.SystemExceptionBody(giopOrder, "IDL:eternalgw/NO_AGREEMENT:1.0", minorNoAgreement, giop.CompletedMaybe),
			}}
			delivered = true
			continue
		}
		remaining = append(remaining, c)
	}
	if len(remaining) == 0 {
		delete(sh.calls, key)
	} else {
		sh.calls[key] = remaining
	}
	if delivered {
		sh.markDone(key)
	}
	sh.mu.Unlock()
	if delivered {
		m.responsesDelivered.Add(1)
	}
	m.observeResponse(hv, ts)
}

// observeResponse dispatches a response to the destination group's
// observer if this node is a member, and reports the membership. The
// §3.5 gateway record consumes this; it copies what it retains, since
// the payload aliases the delivery buffer.
func (m *Mechanisms) observeResponse(hv HeaderView, ts uint64) bool {
	m.mu.RLock()
	g, ok := m.groups[hv.Header.DstGroup]
	if !ok || g.local == nil {
		m.mu.RUnlock()
		return false
	}
	fn := m.observerLocked(g)
	m.mu.RUnlock()
	if fn != nil {
		fn(hv.Message(), ts)
	}
	return true
}

func (m *Mechanisms) deliverStateTransfer(msg Message) {
	p, err := decodeState(msg.Payload)
	if err != nil {
		return
	}
	m.mu.Lock()
	g, ok := m.groups[msg.Header.DstGroup]
	if !ok {
		m.mu.Unlock()
		return
	}
	delete(g.pendingJoins, p.Target)
	var r *replica
	if p.Target == m.cfg.NodeID && g.local != nil && g.local.app != nil {
		r = g.local
	}
	m.mu.Unlock()
	if r != nil {
		r.push(task{kind: taskApplyState, state: p})
	}
}

func (m *Mechanisms) deliverStateSync(msg Message) {
	p, err := decodeState(msg.Payload)
	if err != nil {
		return
	}
	m.mu.RLock()
	g, ok := m.groups[msg.Header.DstGroup]
	var r *replica
	if ok && g.local != nil && g.local.app != nil && !g.local.primary {
		r = g.local
	}
	m.mu.RUnlock()
	if r != nil {
		r.push(task{kind: taskApplySync, state: p})
	}
}
