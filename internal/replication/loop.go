package replication

import (
	"eternalgw/internal/cdr"
	"eternalgw/internal/giop"
	"eternalgw/internal/memnet"
	"eternalgw/internal/obs"
	"eternalgw/internal/totem"
)

// giopOrder is the byte order used for IIOP messages the infrastructure
// itself encodes.
const giopOrder = cdr.BigEndian

// run consumes the totem event stream. It is the only goroutine that
// mutates the group directory; replica executors receive work through
// their task queues in delivery order, which preserves the total order
// per group.
func (m *Mechanisms) run() {
	defer close(m.done)
	defer m.shutdownReplicas()
	for {
		select {
		case <-m.stop:
			return
		case ev := <-m.node.Events():
			switch ev.Type {
			case totem.EventDeliver:
				m.handleDelivery(ev.Delivery)
			case totem.EventConfig:
				m.handleConfig(ev.Config)
			}
		}
	}
}

func (m *Mechanisms) shutdownReplicas() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, g := range m.groups {
		if g.local != nil {
			g.local.close()
			g.local = nil
		}
	}
}

func (m *Mechanisms) handleDelivery(d totem.Delivery) {
	msg, err := Decode(d.Payload)
	if err != nil {
		return // not an infrastructure message; ignore
	}
	// The timestamp folds the packed-message sub-index into the sequence
	// number so that every payload — even ones sharing a datagram — gets a
	// unique, totally-ordered value for operation identifiers.
	ts := d.Timestamp()
	switch msg.Header.Kind {
	case KindCreateGroup:
		m.deliverCreateGroup(msg)
	case KindJoinGroup:
		m.deliverJoin(msg, ts)
	case KindLeaveGroup:
		m.deliverLeave(msg)
	case KindInvocation:
		m.deliverInvocation(msg, ts)
	case KindResponse:
		m.deliverResponse(msg, d.Sender, ts)
	case KindStateTransfer:
		m.deliverStateTransfer(msg)
	case KindStateSync:
		m.deliverStateSync(msg)
	case KindGatewayControl:
		m.deliverGatewayControl(msg, ts)
	case KindDeleteGroup:
		m.deliverDeleteGroup(msg)
	}
}

// deliverDeleteGroup retires a group at this node.
func (m *Mechanisms) deliverDeleteGroup(msg Message) {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.groups[msg.Header.DstGroup]
	if !ok {
		return
	}
	if g.local != nil {
		g.local.close()
		g.local = nil
	}
	if g.objectKey != "" && m.byKey[g.objectKey] == g.id {
		delete(m.byKey, g.objectKey)
	}
	delete(m.groups, g.id)
	delete(m.observers, g.id)
	m.notifyChanged()
}

// deliverGatewayControl routes gateway housekeeping to the destination
// group's observer; the infrastructure itself attaches no meaning to it.
func (m *Mechanisms) deliverGatewayControl(msg Message, ts uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.groups[msg.Header.DstGroup]
	if !ok {
		return
	}
	m.observe(g, msg, ts)
}

func (m *Mechanisms) deliverCreateGroup(msg Message) {
	p, err := decodeCreateGroup(msg.Payload)
	if err != nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	id := msg.Header.DstGroup
	if _, ok := m.groups[id]; ok {
		return // concurrent creators: first delivery wins
	}
	m.groups[id] = &groupState{
		id:           id,
		style:        p.Style,
		objectKey:    string(p.ObjectKey),
		pendingJoins: make(map[memnet.NodeID]uint64),
	}
	if len(p.ObjectKey) > 0 {
		m.byKey[string(p.ObjectKey)] = id
	}
	m.notifyChanged()
}

func (m *Mechanisms) deliverJoin(msg Message, ts uint64) {
	p, err := decodeMember(msg.Payload)
	if err != nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.groups[msg.Header.DstGroup]
	if !ok || g.isMember(p.Node) {
		return
	}
	g.members = append(g.members, p.Node)
	first := len(g.members) == 1

	if p.Node == m.cfg.NodeID {
		app, armed := m.prearmed[g.id]
		if !armed {
			// A join we never prearmed (e.g. replayed from before a
			// restart): ignore the membership slot for safety.
			g.removeMember(p.Node)
			m.notifyChanged()
			return
		}
		delete(m.prearmed, g.id)
		r := newReplica(m, g.id, g.style, app)
		g.local = r
		// The first member and client-only members need no state
		// transfer.
		if first || app == nil {
			r.synced.Store(true)
		} else {
			g.pendingJoins[p.Node] = ts
		}
	} else if g.local != nil && g.local.app != nil && !first {
		g.pendingJoins[p.Node] = ts
	}

	// The donor (current primary) captures state for a joining servant.
	if !first && len(g.members) > 0 && g.members[0] == m.cfg.NodeID &&
		g.local != nil && g.local.app != nil && p.Node != m.cfg.NodeID {
		g.local.push(task{kind: taskCaptureState, joiner: p.Node, ts: ts})
	}
	m.updatePrimary(g)
	m.notifyChanged()
}

func (m *Mechanisms) deliverLeave(msg Message) {
	p, err := decodeMember(msg.Payload)
	if err != nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.groups[msg.Header.DstGroup]
	if !ok || !g.isMember(p.Node) {
		return
	}
	g.removeMember(p.Node)
	delete(g.pendingJoins, p.Node)
	if p.Node == m.cfg.NodeID && g.local != nil {
		g.local.close()
		g.local = nil
	}
	m.updatePrimary(g)
	m.retriggerTransfers(g)
	m.notifyChanged()
}

// handleConfig reacts to a totem membership change: nodes that left the
// ring are removed from every group, at a single point in the total
// order, so all survivors agree on the resulting memberships and on who
// is promoted.
func (m *Mechanisms) handleConfig(c totem.ConfigChange) {
	inRing := make(map[memnet.NodeID]bool, len(c.Members))
	for _, id := range c.Members {
		inRing[id] = true
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, g := range m.groups {
		changed := false
		for _, node := range append([]memnet.NodeID(nil), g.members...) {
			if !inRing[node] {
				g.removeMember(node)
				delete(g.pendingJoins, node)
				changed = true
			}
		}
		if changed {
			m.updatePrimary(g)
			m.retriggerTransfers(g)
		}
	}
	m.notifyChanged()
}

// updatePrimary recomputes the local replica's primary role; a backup of
// a passive group promoted to primary performs failover. Callers hold mu.
func (m *Mechanisms) updatePrimary(g *groupState) {
	if g.local == nil {
		return
	}
	isPrimary := len(g.members) > 0 && g.members[0] == m.cfg.NodeID
	if isPrimary && !g.local.primary {
		g.local.primary = true
		// Failover applies only to replicas that actually served as a
		// backup: a replica that is primary from its own join (the
		// group's first member) has nothing to recover.
		if g.local.wasBackup && (g.style == WarmPassive || g.style == ColdPassive) && g.local.app != nil {
			g.local.push(task{kind: taskFailover})
		}
	} else if !isPrimary {
		g.local.primary = false
		g.local.wasBackup = true
	}
}

// retriggerTransfers re-issues state capture for joiners whose donor died
// before sending their state. Callers hold mu.
func (m *Mechanisms) retriggerTransfers(g *groupState) {
	if g.local == nil || g.local.app == nil {
		return
	}
	if len(g.members) == 0 || g.members[0] != m.cfg.NodeID {
		return
	}
	for joiner, ts := range g.pendingJoins {
		if joiner != m.cfg.NodeID {
			g.local.push(task{kind: taskCaptureState, joiner: joiner, ts: ts})
		}
	}
}

func (m *Mechanisms) deliverInvocation(msg Message, ts uint64) {
	if !m.HasQuorum() {
		// Minority partition: refuse to advance replica state so the
		// majority's history stays the only history (reconciliation by
		// state transfer on merge).
		return
	}
	m.mu.Lock()
	// An invocation is also observed by its source group, if this node is
	// a member: that is how gateways build the §3.5 gateway-group record
	// from the invocation itself, without a separate record multicast —
	// every gateway sees the invocation at the same point in the total
	// order as the servants do.
	if msg.Header.SrcGroup != msg.Header.DstGroup {
		if sg, ok := m.groups[msg.Header.SrcGroup]; ok {
			m.observe(sg, msg, ts)
		}
	}
	g, ok := m.groups[msg.Header.DstGroup]
	if !ok {
		m.mu.Unlock()
		return
	}
	m.observe(g, msg, ts)
	if g.local == nil || g.local.app == nil {
		m.mu.Unlock()
		return
	}
	// The deliver span fires only on nodes hosting a servant for the
	// destination group: the gateway-group record multicast reuses the
	// real invocation's operation identifier and would otherwise pollute
	// that trace with an earlier deliver hop.
	m.tracer.Event(traceKey(msg.Header), obs.StageDeliver, string(m.cfg.NodeID))
	r := g.local
	execute := true
	logOnly := false
	if g.style == WarmPassive || g.style == ColdPassive {
		// Only the primary executes; backups log the invocation stream
		// for replay after failover.
		execute = r.primary
		logOnly = !r.primary
	}
	m.mu.Unlock()
	r.push(task{kind: taskInvoke, msg: msg, ts: ts, execute: execute, logInv: logOnly})
}

// deliverResponse routes a response to local pending invocations,
// suppressing duplicates by response identifier (paper section 3.3): the
// first copy is delivered, all subsequently received copies of the same
// operation identifier are discarded.
func (m *Mechanisms) deliverResponse(msg Message, sender memnet.NodeID, ts uint64) {
	key := opKey{src: msg.Header.SrcGroup, clientID: msg.Header.ClientID, op: msg.Header.Op}

	m.mu.Lock()
	// Only group members are addressees.
	g, ok := m.groups[msg.Header.DstGroup]
	if !ok || g.local == nil {
		m.mu.Unlock()
		return
	}
	m.observe(g, msg, ts)
	calls := m.pending[key]
	if len(calls) == 0 {
		if _, done := m.recentDone[key]; done {
			m.duplicateResponses.Add(1)
			m.tracer.Event(traceKey(msg.Header), obs.StageDupSuppressed, string(m.cfg.NodeID)+"/response")
		}
		m.mu.Unlock()
		return
	}

	wire, err := giop.Unmarshal(msg.Payload)
	if err != nil {
		m.mu.Unlock()
		return
	}
	rep, err := giop.DecodeReply(wire)
	if err != nil {
		m.mu.Unlock()
		return
	}

	remaining := calls[:0]
	delivered := false
	for _, c := range calls {
		if c.votesNeeded == 0 {
			c.ch <- rep
			delivered = true
			continue // resolved; drop from pending
		}
		if c.responded[sender] {
			m.duplicateResponses.Add(1)
			remaining = append(remaining, c)
			continue
		}
		c.responded[sender] = true
		c.votes[string(rep.Result)]++
		if c.votes[string(rep.Result)] >= c.votesNeeded {
			c.ch <- rep
			delivered = true
			continue
		}
		if len(c.responded) >= c.expected {
			// All replicas answered without a majority: surface the
			// disagreement instead of hanging the caller.
			c.ch <- giop.Reply{
				RequestID: rep.RequestID,
				Status:    giop.ReplySystemException,
				Result:    giop.SystemExceptionBody(giopOrder, "IDL:eternalgw/NO_AGREEMENT:1.0", 0, 0),
			}
			delivered = true
			continue
		}
		remaining = append(remaining, c)
	}
	if len(remaining) == 0 {
		delete(m.pending, key)
	} else {
		m.pending[key] = remaining
	}
	if delivered {
		m.responsesDelivered.Add(1)
		m.markDone(key)
	}
	m.mu.Unlock()
}

// markDone remembers an answered operation so late duplicate responses
// are counted. Callers hold mu.
func (m *Mechanisms) markDone(key opKey) {
	if _, ok := m.recentDone[key]; ok {
		return
	}
	m.recentDone[key] = struct{}{}
	m.recentDoneFIFO = append(m.recentDoneFIFO, key)
	if len(m.recentDoneFIFO) > m.cfg.DedupCapacity {
		old := m.recentDoneFIFO[0]
		m.recentDoneFIFO = m.recentDoneFIFO[1:]
		delete(m.recentDone, old)
	}
}

func (m *Mechanisms) deliverStateTransfer(msg Message) {
	p, err := decodeState(msg.Payload)
	if err != nil {
		return
	}
	m.mu.Lock()
	g, ok := m.groups[msg.Header.DstGroup]
	if !ok {
		m.mu.Unlock()
		return
	}
	delete(g.pendingJoins, p.Target)
	var r *replica
	if p.Target == m.cfg.NodeID && g.local != nil && g.local.app != nil {
		r = g.local
	}
	m.mu.Unlock()
	if r != nil {
		r.push(task{kind: taskApplyState, state: p})
	}
}

func (m *Mechanisms) deliverStateSync(msg Message) {
	p, err := decodeState(msg.Payload)
	if err != nil {
		return
	}
	m.mu.Lock()
	g, ok := m.groups[msg.Header.DstGroup]
	var r *replica
	if ok && g.local != nil && g.local.app != nil && !g.local.primary {
		r = g.local
	}
	m.mu.Unlock()
	if r != nil {
		r.push(task{kind: taskApplySync, state: p})
	}
}
