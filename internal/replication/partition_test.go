package replication

import (
	"testing"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/giop"
)

// TestPartitionHealingDiscardsStaleMinority exercises primary-component
// membership reconciliation after a ring merge. A replica node isolated
// into a minority partition keeps a stale servant and, having evicted
// everyone else from its directory, believes it is the group. Without
// QuorumOf the majority keeps executing, so on merge the two components
// disagree. The majority's directory must win: the returning node
// discards its stale replica at the merge configuration (before any
// post-merge delivery), adopts the broadcast directory snapshot, and
// never answers from stale state again.
func TestPartitionHealingDiscardsStaleMinority(t *testing.T) {
	d := newDomain(t, 4)
	// Replicas on n00 and n01, client on n03.
	apps := setupClientServer(t, d, Active, 2, 3)
	client := d.rms[d.ids[3]]

	for i := 0; i < 4; i++ {
		if _, err := invokeAsClient(t, client, grpClient, 1, grpServer, uint32(i+1), "append", octets([]byte("a"))); err != nil {
			t.Fatal(err)
		}
	}

	// Isolate n00. Both sides must finish reconfiguring before the heal:
	// the survivors evict n00 from the group, and n00 — alone in a
	// singleton ring — evicts n01, keeping its now-stale replica live.
	d.net.Crash(d.ids[0])
	waitFor(t, 5*time.Second, func() bool {
		ms := d.rms[d.ids[1]].Members(grpServer)
		return len(ms) == 1 && ms[0] == d.ids[1]
	})
	waitFor(t, 5*time.Second, func() bool {
		ms := d.rms[d.ids[0]].Members(grpServer)
		return len(ms) == 1 && ms[0] == d.ids[0]
	})

	// The majority component keeps executing, advancing past the
	// partitioned replica's state.
	for i := 0; i < 4; i++ {
		if _, err := invokeAsClient(t, client, grpClient, 1, grpServer, uint32(100+i), "append", octets([]byte("b"))); err != nil {
			t.Fatal(err)
		}
	}

	// Heal the partition. The majority (3 of 4 nodes) broadcasts its
	// directory; the minority node adopts exactly one snapshot.
	d.net.Restart(d.ids[0])
	waitStat(t, func() uint64 { return d.rms[d.ids[0]].Stats().MembershipSyncs }, 1)

	// Every node converges on the majority's directory: n01 is the sole
	// member, at an identical view number.
	waitFor(t, 5*time.Second, func() bool {
		want, ok := d.rms[d.ids[1]].View(grpServer)
		if !ok {
			return false
		}
		for _, n := range d.ids {
			v, ok := d.rms[n].View(grpServer)
			if !ok || v.Number != want.Number || len(v.Members) != 1 || v.Members[0] != d.ids[1] {
				return false
			}
		}
		return true
	})

	// Post-merge invocations are served from the surviving replica's
	// state; the discarded replica never executes again.
	_, staleOps := apps[0].snapshot()
	for i := 0; i < 3; i++ {
		if _, err := invokeAsClient(t, client, grpClient, 1, grpServer, uint32(200+i), "append", octets([]byte("c"))); err != nil {
			t.Fatal(err)
		}
	}
	rep, err := invokeAsClient(t, client, grpClient, 1, grpServer, 300, "count", nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Status != giop.ReplyNoException {
		t.Fatalf("status = %v", rep.Status)
	}
	r := cdr.NewReader(rep.Result, rep.ResultOrder)
	if got := r.ReadLongLong(); got != 11 || r.Err() != nil {
		t.Fatalf("count = %d (err %v), want 11", got, r.Err())
	}
	if _, ops := apps[1].snapshot(); ops != 11 {
		t.Fatalf("surviving replica ops = %d, want 11", ops)
	}
	if _, ops := apps[0].snapshot(); ops != staleOps {
		t.Fatalf("discarded replica executed after merge: ops %d -> %d", staleOps, ops)
	}
}
