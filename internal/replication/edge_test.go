package replication

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/giop"
	"eternalgw/internal/memnet"
)

func TestStatelessStyleExecutesEverywhere(t *testing.T) {
	d := newDomain(t, 2)
	apps := setupClientServer(t, d, Stateless, 1, 1)
	client := d.rms[d.ids[1]]
	if _, err := invokeAsClient(t, client, grpClient, 1, grpServer, 1, "append", octets([]byte("s"))); err != nil {
		t.Fatal(err)
	}
	if _, ops := apps[0].snapshot(); ops != 1 {
		t.Fatalf("ops = %d", ops)
	}
}

func TestDedupCacheEviction(t *testing.T) {
	// With a tiny dedup capacity, an operation reissued after its entry
	// was evicted re-executes: the bounded-memory trade-off the paper's
	// section 3.4 discussion implies.
	net := memnet.New()
	ids := []memnet.NodeID{"a", "b"}
	var rms []*Mechanisms
	for _, id := range ids {
		ep, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		node, err := startTotem(t, id, ep, ids)
		if err != nil {
			t.Fatal(err)
		}
		rm, err := New(Config{Node: node, DedupCapacity: 4})
		if err != nil {
			t.Fatal(err)
		}
		rms = append(rms, rm)
		t.Cleanup(rm.Stop)
	}
	app := &regApp{}
	if err := rms[0].CreateGroup(grpServer, Active, []byte(testKeyStr)); err != nil {
		t.Fatal(err)
	}
	for _, rm := range rms {
		if err := rm.WaitForGroup(grpServer, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := rms[0].JoinGroup(grpServer, app); err != nil {
		t.Fatal(err)
	}
	if err := rms[0].WaitSynced(grpServer, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := rms[1].CreateGroup(grpClient, Active, nil); err != nil {
		t.Fatal(err)
	}
	if err := rms[1].WaitForGroup(grpClient, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if err := rms[1].JoinGroup(grpClient, nil); err != nil {
		t.Fatal(err)
	}
	if err := rms[1].WaitSynced(grpClient, 5*time.Second); err != nil {
		t.Fatal(err)
	}

	// Operation 1, then enough distinct operations to evict it.
	for i := 1; i <= 6; i++ {
		if _, err := invokeAsClient(t, rms[1], grpClient, 1, grpServer, uint32(i), "append", octets([]byte("x"))); err != nil {
			t.Fatal(err)
		}
	}
	// Reissue operation 1: its dedup entry is gone, so it re-executes.
	if _, err := invokeAsClient(t, rms[1], grpClient, 1, grpServer, 1, "append", octets([]byte("x"))); err != nil {
		t.Fatal(err)
	}
	if _, ops := app.snapshot(); ops != 7 {
		t.Fatalf("ops = %d, want 7 (eviction should allow re-execution)", ops)
	}
}

func TestHandleInvokeOutsideExecution(t *testing.T) {
	d := newDomain(t, 1)
	d.mustCreate(grpServer, Active, testKeyStr)
	d.mustJoin(d.ids[0], grpServer, &regApp{})
	h := d.rms[d.ids[0]].Handle(grpServer)
	if _, err := h.Invoke([]byte(testKeyStr), "read", nil, time.Second); err == nil {
		t.Fatal("nested Invoke outside an executing operation succeeded")
	}
}

func TestHandleInvokeUnknownKey(t *testing.T) {
	d := newDomain(t, 1)
	d.mustCreate(grpServer, Active, testKeyStr)
	d.mustJoin(d.ids[0], grpServer, &regApp{})
	h := d.rms[d.ids[0]].Handle(grpServer)
	if _, err := h.Invoke([]byte("ghost"), "read", nil, time.Second); !errors.Is(err, ErrNoSuchGroup) {
		t.Fatalf("err = %v, want ErrNoSuchGroup", err)
	}
}

func TestWaitForGroupTimeout(t *testing.T) {
	d := newDomain(t, 1)
	if err := d.rms[d.ids[0]].WaitForGroup(777, 50*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
}

func TestOneWayInvocationExecutesWithoutResponse(t *testing.T) {
	d := newDomain(t, 2)
	apps := setupClientServer(t, d, Active, 1, 1)
	client := d.rms[d.ids[1]]
	// Fire-and-forget: multicast the invocation directly with
	// ResponseExpected = false; no pending call is registered.
	err := client.MulticastMessage(Message{
		Header: Header{
			Kind:     KindInvocation,
			ClientID: 3,
			SrcGroup: grpClient,
			DstGroup: grpServer,
			Op:       OperationID{ChildSeq: 1},
		},
		Payload: mustRequestPayload(t, giop.Request{
			RequestID: 1,
			ObjectKey: []byte(testKeyStr),
			Operation: "append",
			Args:      octets([]byte("o")),
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 2*time.Second, func() bool {
		_, ops := apps[0].snapshot()
		return ops == 1
	})
	// No response was multicast for it.
	if sent := d.rms[d.ids[0]].Stats().ResponsesSent; sent != 0 {
		t.Fatalf("responses sent = %d, want 0", sent)
	}
}

func TestReplicationPartitionThenHeal(t *testing.T) {
	// A partition splits the domain; the majority side keeps serving.
	// After healing, the rings merge and the rejoined node resumes
	// participating in new operations.
	d := newDomain(t, 3)
	apps := setupClientServer(t, d, Active, 2, 2)
	client := d.rms[d.ids[2]]

	if _, err := invokeAsClient(t, client, grpClient, 1, grpServer, 1, "append", octets([]byte("a"))); err != nil {
		t.Fatal(err)
	}
	// Isolate n01 (one server replica) from the rest.
	d.net.Partition([]memnet.NodeID{d.ids[0], d.ids[2]}, []memnet.NodeID{d.ids[1]})
	waitFor(t, 5*time.Second, func() bool {
		return len(d.rms[d.ids[0]].Members(grpServer)) == 1
	})
	if _, err := invokeAsClient(t, client, grpClient, 1, grpServer, 2, "append", octets([]byte("b"))); err != nil {
		t.Fatal(err)
	}
	d.net.Heal()
	// Rings merge back to 3 members.
	waitFor(t, 5*time.Second, func() bool {
		return len(d.nodes[d.ids[0]].Members()) == 3
	})
	if _, err := invokeAsClient(t, client, grpClient, 1, grpServer, 3, "append", octets([]byte("c"))); err != nil {
		t.Fatal(err)
	}
	v, _ := apps[0].snapshot()
	if !bytes.Equal(v, []byte("abc")) {
		t.Fatalf("majority replica state = %q", v)
	}
}

// mustRequestPayload marshals a request for direct multicasting.
func mustRequestPayload(t *testing.T, req giop.Request) []byte {
	t.Helper()
	msg, err := giop.EncodeRequest(giopOrder, req)
	if err != nil {
		t.Fatal(err)
	}
	return giop.Marshal(msg)
}

// racyApp performs an unprotected read-modify-write with a deliberate
// gap: dispatched concurrently it loses updates, dispatched serially it
// cannot. It demonstrates paper section 2.2: multithreaded dispatch is a
// source of nondeterminism that the infrastructure's serialized,
// totally-ordered execution removes.
type racyApp struct {
	// total is read-modify-written non-atomically across a delay: under
	// concurrent dispatch, updates are lost. (The field itself uses
	// atomic load/store only so the test's progress polling is
	// race-detector clean; the lost-update hazard is untouched.)
	total atomic.Int64
}

func (a *racyApp) Invoke(op string, args *cdr.Reader, reply *cdr.Writer) error {
	if op != "incr" {
		return fmt.Errorf("racyApp: unknown op %q", op)
	}
	v := a.total.Load()
	time.Sleep(100 * time.Microsecond) // widen the lost-update window
	a.total.Store(v + 1)
	reply.WriteLongLong(v + 1)
	return nil
}

func (a *racyApp) State() ([]byte, error) {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteLongLong(a.total.Load())
	return w.Bytes(), nil
}

func (a *racyApp) SetState(state []byte) error {
	r := cdr.NewReader(state, cdr.BigEndian)
	a.total.Store(r.ReadLongLong())
	return r.Err()
}

func TestSerializedDispatchEnforcesDeterminism(t *testing.T) {
	// Paper section 2.2: the infrastructure executes the totally-ordered
	// invocation stream one operation at a time, so even an application
	// that would lose updates under multithreaded dispatch stays
	// deterministic and consistent across replicas.
	d := newDomain(t, 3)
	d.mustCreate(grpServer, Active, testKeyStr)
	d.mustCreate(grpClient, Active, "")
	apps := []*racyApp{{}, {}}
	d.mustJoin(d.ids[0], grpServer, apps[0])
	d.mustJoin(d.ids[1], grpServer, apps[1])
	d.mustJoin(d.ids[2], grpClient, nil)
	client := d.rms[d.ids[2]]

	const workers, per = 4, 10
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(clientID uint64) {
			for i := 1; i <= per; i++ {
				if _, err := invokeAsClient(t, client, grpClient, clientID, grpServer, uint32(i), "incr", nil); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(uint64(w + 1))
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 3*time.Second, func() bool {
		return apps[0].total.Load() == workers*per && apps[1].total.Load() == workers*per
	})
}

func TestDeleteGroupRetiresEverywhere(t *testing.T) {
	d := newDomain(t, 2)
	apps := setupClientServer(t, d, Active, 1, 1)
	client := d.rms[d.ids[1]]
	if _, err := invokeAsClient(t, client, grpClient, 1, grpServer, 1, "append", octets([]byte("x"))); err != nil {
		t.Fatal(err)
	}
	if err := client.DeleteGroup(grpServer); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool {
		_, ok := d.rms[d.ids[0]].GroupByKey([]byte(testKeyStr))
		return !ok
	})
	// Further invocations fail fast: the group no longer exists.
	_, err := client.Invoke(grpClient, 1, grpServer, OperationID{ChildSeq: 2}, giop.Request{
		RequestID: 2, ResponseExpected: true, ObjectKey: []byte(testKeyStr), Operation: "read",
	}, time.Second)
	if !errors.Is(err, ErrNoSuchGroup) {
		t.Fatalf("err = %v, want ErrNoSuchGroup", err)
	}
	// The replica executed exactly the one operation before retirement.
	if _, ops := apps[0].snapshot(); ops != 1 {
		t.Fatalf("ops = %d", ops)
	}
	// The id can be reused for a fresh group.
	d.mustCreate(grpServer, WarmPassive, "fresh/key")
	if style, ok := d.rms[d.ids[0]].GroupStyle(grpServer); !ok || style != WarmPassive {
		t.Fatalf("recreated style = %v, %v", style, ok)
	}
}

func TestQuorumProtectionBlocksMinority(t *testing.T) {
	// With quorum protection on, a minority partition neither executes
	// nor issues invocations; after the merge the minority replica is
	// intact (it never diverged).
	net := memnet.New()
	ids := []memnet.NodeID{"q0", "q1", "q2"}
	rms := make(map[memnet.NodeID]*Mechanisms, 3)
	for _, id := range ids {
		ep, err := net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		node, err := startTotem(t, id, ep, ids)
		if err != nil {
			t.Fatal(err)
		}
		rm, err := New(Config{Node: node, QuorumOf: len(ids)})
		if err != nil {
			t.Fatal(err)
		}
		rms[id] = rm
		t.Cleanup(rm.Stop)
	}
	apps := map[memnet.NodeID]*regApp{"q0": {}, "q1": {}}
	if err := rms["q0"].CreateGroup(grpServer, Active, []byte(testKeyStr)); err != nil {
		t.Fatal(err)
	}
	if err := rms["q2"].CreateGroup(grpClient, Active, nil); err != nil {
		t.Fatal(err)
	}
	for _, id := range ids {
		if err := rms[id].WaitForGroup(grpServer, 5*time.Second); err != nil {
			t.Fatal(err)
		}
		if err := rms[id].WaitForGroup(grpClient, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	for id, app := range apps {
		if err := rms[id].JoinGroup(grpServer, app); err != nil {
			t.Fatal(err)
		}
		if err := rms[id].WaitSynced(grpServer, 5*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	if err := rms["q2"].JoinGroup(grpClient, nil); err != nil {
		t.Fatal(err)
	}
	if err := rms["q2"].WaitSynced(grpClient, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := invokeAsClient(t, rms["q2"], grpClient, 1, grpServer, 1, "append", octets([]byte("a"))); err != nil {
		t.Fatal(err)
	}

	// Partition q1 (one server replica) into a minority of one.
	net.Partition([]memnet.NodeID{"q0", "q2"}, []memnet.NodeID{"q1"})
	waitFor(t, 5*time.Second, func() bool { return !rms["q1"].HasQuorum() })

	// The minority cannot invoke...
	_, err := rms["q1"].Invoke(grpServer, 0, grpServer, OperationID{ChildSeq: 99}, giop.Request{
		RequestID: 99, ResponseExpected: true, ObjectKey: []byte(testKeyStr), Operation: "read",
	}, time.Second)
	if !errors.Is(err, ErrNoQuorum) {
		t.Fatalf("minority invoke err = %v, want ErrNoQuorum", err)
	}
	// ...while the majority keeps serving.
	if _, err := invokeAsClient(t, rms["q2"], grpClient, 1, grpServer, 2, "append", octets([]byte("b"))); err != nil {
		t.Fatal(err)
	}

	net.Heal()
	waitFor(t, 5*time.Second, func() bool { return rms["q1"].HasQuorum() })
	if _, err := invokeAsClient(t, rms["q2"], grpClient, 1, grpServer, 3, "append", octets([]byte("c"))); err != nil {
		t.Fatal(err)
	}
	// The majority replica holds the full history.
	v, _ := apps["q0"].snapshot()
	if !bytes.Equal(v, []byte("abc")) {
		t.Fatalf("majority state = %q", v)
	}
	// The minority replica never applied anything while cut off; it only
	// has operations from when it held quorum (a) plus those after the
	// merge (c) — it missed b, which a production deployment would
	// recover by rejoining (state transfer), exercised elsewhere.
	mv, _ := apps["q1"].snapshot()
	if bytes.Contains(mv, []byte("b")) && !bytes.Equal(mv, []byte("abc")) {
		t.Fatalf("minority diverged: %q", mv)
	}
}
