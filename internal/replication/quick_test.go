package replication

import (
	"bytes"
	"testing"
	"testing/quick"

	"eternalgw/internal/memnet"
)

// TestQuickMessageRoundTrip property: every infrastructure message
// survives Encode/Decode byte-for-byte.
func TestQuickMessageRoundTrip(t *testing.T) {
	f := func(kind uint8, clientID uint64, src, dst uint32, parentTS uint64, childSeq uint32, payload []byte) bool {
		msg := Message{
			Header: Header{
				Kind:     Kind(kind%8 + 1),
				ClientID: clientID,
				SrcGroup: GroupID(src),
				DstGroup: GroupID(dst),
				Op:       OperationID{ParentTS: parentTS, ChildSeq: childSeq},
			},
			Payload: payload,
		}
		got, err := Decode(Encode(msg))
		if err != nil {
			return false
		}
		return got.Header == msg.Header && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDecodeNeverPanics property: arbitrary bytes never panic the
// infrastructure decoder.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStatePayloadRoundTrip property: state transfer payloads
// survive their codec.
func TestQuickStatePayloadRoundTrip(t *testing.T) {
	f := func(target string, joinTS, opCount uint64, state []byte) bool {
		target = stripNULs(target)
		p := statePayload{Target: memnetNodeID(target), JoinTS: joinTS, OpCount: opCount, State: state}
		got, err := decodeState(encodeState(p))
		if err != nil {
			return false
		}
		return got.Target == p.Target && got.JoinTS == joinTS && got.OpCount == opCount && bytes.Equal(got.State, state)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOperationIDUniqueness property: distinct (ParentTS, ChildSeq)
// pairs produce distinct duplicate-detection keys, and identical pairs
// identical keys — the figure 6 guarantee the dedup tables rely on.
func TestQuickOperationIDUniqueness(t *testing.T) {
	f := func(ts1, ts2 uint64, seq1, seq2 uint32, client uint64, src uint32) bool {
		k1 := opKey{src: GroupID(src), clientID: client, op: OperationID{ParentTS: ts1, ChildSeq: seq1}}
		k2 := opKey{src: GroupID(src), clientID: client, op: OperationID{ParentTS: ts2, ChildSeq: seq2}}
		same := ts1 == ts2 && seq1 == seq2
		return (k1 == k2) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// helpers for the quick tests.
func stripNULs(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r != 0 {
			out = append(out, r)
		}
	}
	return string(out)
}

func memnetNodeID(s string) memnet.NodeID { return memnet.NodeID(s) }
