package replication

import (
	"bytes"
	"testing"
	"testing/quick"

	"eternalgw/internal/logrec"
	"eternalgw/internal/memnet"
)

// TestQuickMessageRoundTrip property: every infrastructure message
// survives Encode/Decode byte-for-byte.
func TestQuickMessageRoundTrip(t *testing.T) {
	f := func(kind uint8, clientID uint64, src, dst uint32, parentTS uint64, childSeq uint32, payload []byte) bool {
		msg := Message{
			Header: Header{
				Kind:     Kind(kind%8 + 1),
				ClientID: clientID,
				SrcGroup: GroupID(src),
				DstGroup: GroupID(dst),
				Op:       OperationID{ParentTS: parentTS, ChildSeq: childSeq},
			},
			Payload: payload,
		}
		got, err := Decode(Encode(msg))
		if err != nil {
			return false
		}
		return got.Header == msg.Header && bytes.Equal(got.Payload, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDecodeNeverPanics property: arbitrary bytes never panic the
// infrastructure decoder.
func TestQuickDecodeNeverPanics(t *testing.T) {
	f := func(data []byte) (ok bool) {
		defer func() {
			if recover() != nil {
				ok = false
			}
		}()
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickStatePayloadRoundTrip property: state transfer payloads —
// including the checkpoint sequence number and replay entries of the
// catch-up transfer path — survive their codec.
func TestQuickStatePayloadRoundTrip(t *testing.T) {
	f := func(target string, joinTS, opCount, cpSeq uint64, state, e1, e2 []byte) bool {
		target = stripNULs(target)
		p := statePayload{
			Target: memnetNodeID(target), JoinTS: joinTS, OpCount: opCount, State: state,
			CpSeq:   cpSeq,
			Entries: []logrec.Entry{{Seq: cpSeq + 1, Data: e1}, {Seq: cpSeq + 2, Data: e2}},
		}
		got, err := decodeState(encodeState(p))
		if err != nil {
			return false
		}
		if got.Target != p.Target || got.JoinTS != joinTS || got.OpCount != opCount ||
			!bytes.Equal(got.State, state) || got.CpSeq != cpSeq || len(got.Entries) != 2 {
			return false
		}
		for i, e := range p.Entries {
			if got.Entries[i].Seq != e.Seq || !bytes.Equal(got.Entries[i].Data, e.Data) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickViewChangeRoundTrip property: view-change membership deltas
// survive their codec.
func TestQuickViewChangeRoundTrip(t *testing.T) {
	f := func(add, remove []string) bool {
		var p viewChangePayload
		for _, n := range add {
			p.Add = append(p.Add, memnetNodeID(stripNULs(n)))
		}
		for _, n := range remove {
			p.Remove = append(p.Remove, memnetNodeID(stripNULs(n)))
		}
		got, err := decodeViewChange(encodeViewChange(p))
		if err != nil {
			return false
		}
		if len(got.Add) != len(p.Add) || len(got.Remove) != len(p.Remove) {
			return false
		}
		for i := range p.Add {
			if got.Add[i] != p.Add[i] {
				return false
			}
		}
		for i := range p.Remove {
			if got.Remove[i] != p.Remove[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickOperationIDUniqueness property: distinct (ParentTS, ChildSeq)
// pairs produce distinct duplicate-detection keys, and identical pairs
// identical keys — the figure 6 guarantee the dedup tables rely on.
func TestQuickOperationIDUniqueness(t *testing.T) {
	f := func(ts1, ts2 uint64, seq1, seq2 uint32, client uint64, src uint32) bool {
		k1 := opKey{src: GroupID(src), clientID: client, op: OperationID{ParentTS: ts1, ChildSeq: seq1}}
		k2 := opKey{src: GroupID(src), clientID: client, op: OperationID{ParentTS: ts2, ChildSeq: seq2}}
		same := ts1 == ts2 && seq1 == seq2
		return (k1 == k2) == same
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// helpers for the quick tests.
func stripNULs(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		if r != 0 {
			out = append(out, r)
		}
	}
	return string(out)
}

func memnetNodeID(s string) memnet.NodeID { return memnet.NodeID(s) }
