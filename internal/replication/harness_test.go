package replication

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/memnet"
	"eternalgw/internal/totem"
)

// domain is a test harness: a memnet network, a totem ring, and one
// Mechanisms instance per node.
type domain struct {
	t     *testing.T
	net   *memnet.Network
	ids   []memnet.NodeID
	nodes map[memnet.NodeID]*totem.Node
	rms   map[memnet.NodeID]*Mechanisms
}

func newDomain(t *testing.T, n int, opts ...memnet.Option) *domain {
	t.Helper()
	d := &domain{
		t:     t,
		net:   memnet.New(opts...),
		nodes: make(map[memnet.NodeID]*totem.Node, n),
		rms:   make(map[memnet.NodeID]*Mechanisms, n),
	}
	for i := 0; i < n; i++ {
		d.ids = append(d.ids, memnet.NodeID(fmt.Sprintf("n%02d", i)))
	}
	for _, id := range d.ids {
		ep, err := d.net.Attach(id)
		if err != nil {
			t.Fatal(err)
		}
		node, err := totem.Start(totem.Config{
			ID:              id,
			Endpoint:        ep,
			Members:         d.ids,
			IdleHold:        100 * time.Microsecond,
			TokenRetransmit: 10 * time.Millisecond,
			FailTimeout:     80 * time.Millisecond,
			GatherTimeout:   20 * time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		d.nodes[id] = node
		rm, err := New(Config{Node: node, WarmSyncInterval: 4, CheckpointInterval: 8})
		if err != nil {
			t.Fatal(err)
		}
		d.rms[id] = rm
	}
	t.Cleanup(func() {
		for _, rm := range d.rms {
			rm.Stop()
		}
		for _, node := range d.nodes {
			node.Stop()
		}
	})
	return d
}

// mustCreate creates a group from the first node and waits until every
// node has it.
func (d *domain) mustCreate(id GroupID, style Style, key string) {
	d.t.Helper()
	if err := d.rms[d.ids[0]].CreateGroup(id, style, []byte(key)); err != nil {
		d.t.Fatal(err)
	}
	for _, n := range d.ids {
		if err := d.rms[n].WaitForGroup(id, 5*time.Second); err != nil {
			d.t.Fatalf("%s: wait group %d: %v", n, id, err)
		}
	}
}

// mustJoin joins node n to group id hosting app and waits until synced.
func (d *domain) mustJoin(n memnet.NodeID, id GroupID, app Application) {
	d.t.Helper()
	if err := d.rms[n].JoinGroup(id, app); err != nil {
		d.t.Fatal(err)
	}
	if err := d.rms[n].WaitSynced(id, 5*time.Second); err != nil {
		d.t.Fatalf("%s: wait synced %d: %v", n, id, err)
	}
}

// regApp is a deterministic register application: "set"/"append" mutate a
// byte string, "read" returns it, "count" returns the op count.
type regApp struct {
	mu    sync.Mutex
	value []byte
	ops   int64
}

func (a *regApp) Invoke(op string, args *cdr.Reader, reply *cdr.Writer) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch op {
	case "set":
		a.value = append([]byte(nil), args.ReadOctetSeq()...)
		a.ops++
		reply.WriteLongLong(a.ops)
		return args.Err()
	case "append":
		a.value = append(a.value, args.ReadOctetSeq()...)
		a.ops++
		reply.WriteLongLong(a.ops)
		return args.Err()
	case "read":
		reply.WriteOctetSeq(a.value)
		return nil
	case "count":
		reply.WriteLongLong(a.ops)
		return nil
	default:
		return fmt.Errorf("regApp: unknown op %q", op)
	}
}

func (a *regApp) State() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteLongLong(a.ops)
	w.WriteOctetSeq(a.value)
	return w.Bytes(), nil
}

func (a *regApp) SetState(state []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := cdr.NewReader(state, cdr.BigEndian)
	a.ops = r.ReadLongLong()
	a.value = append([]byte(nil), r.ReadOctetSeq()...)
	return r.Err()
}

// snapshot returns the app's value for direct assertions.
func (a *regApp) snapshot() ([]byte, int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]byte(nil), a.value...), a.ops
}

func octets(b []byte) []byte {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteOctetSeq(b)
	return w.Bytes()
}

// startTotem boots a totem node with test timeouts.
func startTotem(t *testing.T, id memnet.NodeID, ep *memnet.Endpoint, members []memnet.NodeID) (*totem.Node, error) {
	t.Helper()
	node, err := totem.Start(totem.Config{
		ID:              id,
		Endpoint:        ep,
		Members:         members,
		IdleHold:        100 * time.Microsecond,
		TokenRetransmit: 10 * time.Millisecond,
		FailTimeout:     80 * time.Millisecond,
		GatherTimeout:   20 * time.Millisecond,
	})
	if err == nil {
		t.Cleanup(node.Stop)
	}
	return node, err
}
