package replication

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"eternalgw/internal/giop"
)

// TestConcurrentInvokeStress exercises the sharded pending-call table:
// many goroutines invoking concurrently across several groups, the shape
// of a gateway serving many client connections. Run under -race (make
// check) this is the data-race gate for the receive-path sharding.
func TestConcurrentInvokeStress(t *testing.T) {
	const (
		groups            = 4
		callers           = 4
		calls             = 25
		firstGrp  GroupID = 40
		clientGrp GroupID = 90
	)
	d := newDomain(t, 3)
	d.mustCreate(clientGrp, Active, "")
	d.mustJoin(d.ids[2], clientGrp, nil)
	for gi := 0; gi < groups; gi++ {
		id := firstGrp + GroupID(gi)
		d.mustCreate(id, Active, fmt.Sprintf("stress/%d", gi))
		d.mustJoin(d.ids[gi%2], id, &regApp{})
		d.mustJoin(d.ids[(gi+1)%2], id, &regApp{})
	}
	client := d.rms[d.ids[2]]
	for gi := 0; gi < groups; gi++ {
		if err := client.WaitForMembers(firstGrp+GroupID(gi), 2, 5*time.Second); err != nil {
			t.Fatalf("group %d members: %v", gi, err)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, groups*callers)
	for gi := 0; gi < groups; gi++ {
		for ci := 0; ci < callers; ci++ {
			wg.Add(1)
			go func(dst GroupID, clientID uint64) {
				defer wg.Done()
				for i := uint32(1); i <= calls; i++ {
					_, err := client.Invoke(clientGrp, clientID, dst,
						OperationID{ParentTS: 0, ChildSeq: i}, giop.Request{
							RequestID:        i,
							ResponseExpected: true,
							ObjectKey:        []byte("stress"),
							Operation:        "set",
							Args:             octets([]byte("v")),
						}, 5*time.Second)
					if err != nil {
						errs <- fmt.Errorf("group %d client %d call %d: %w", dst, clientID, i, err)
						return
					}
				}
			}(firstGrp+GroupID(gi), uint64(ci+1))
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if t.Failed() {
		t.FailNow()
	}
	if got := client.Stats().ResponsesDelivered; got != groups*callers*calls {
		t.Fatalf("ResponsesDelivered = %d, want %d", got, groups*callers*calls)
	}
}

// TestDuplicateResponseStormDiscardsEarly pins the early-discard
// arithmetic at replication degree 3: every request draws one response
// per replica, the first copy resolves the caller, and the remaining
// R-1 copies are discarded from the header peek — counted by both the
// duplicate-response counter and the new early-discard counter.
func TestDuplicateResponseStormDiscardsEarly(t *testing.T) {
	const n = 10
	d := newDomain(t, 4)
	apps := setupClientServer(t, d, Active, 3, 3)
	client := d.rms[d.ids[3]]
	for i := uint32(1); i <= n; i++ {
		rep, err := invokeAsClient(t, client, grpClient, 7, grpServer, i, "append", octets([]byte("x")))
		if err != nil {
			t.Fatalf("invoke %d: %v", i, err)
		}
		if rep.Status != giop.ReplyNoException {
			t.Fatalf("invoke %d: status %v", i, rep.Status)
		}
	}
	st := func() Stats { return client.Stats() }
	waitStat(t, func() uint64 { return st().ResponsesDelivered }, n)
	// Degree 3: two redundant copies per request, all discarded before
	// payload decode.
	waitStat(t, func() uint64 { return st().ResponsesDiscardedEarly }, (3-1)*n)
	waitStat(t, func() uint64 { return st().DuplicateResponses }, (3-1)*n)
	for i, app := range apps {
		if _, ops := app.snapshot(); ops != n {
			t.Fatalf("replica %d executed %d ops, want %d", i, ops, n)
		}
	}
	// The servers are not members of the responses' destination group:
	// redundant copies there fall off the header peek without being
	// counted as this node's duplicates.
	for i := 0; i < 3; i++ {
		if got := d.rms[d.ids[i]].Stats().DuplicateResponses; got != 0 {
			t.Fatalf("server %d DuplicateResponses = %d, want 0", i, got)
		}
	}
}

// TestDecodeHeaderMatchesDecode pins the header-first peek to the full
// decoder: same header, payload aliasing the input rather than copied.
func TestDecodeHeaderMatchesDecode(t *testing.T) {
	msg := Message{
		Header: Header{
			Kind:     KindResponse,
			ClientID: 0xDEADBEEF,
			SrcGroup: 12,
			DstGroup: 34,
			Op:       OperationID{ParentTS: 1 << 40, ChildSeq: 9},
		},
		Payload: []byte("encapsulated-iiop-reply"),
	}
	b := Encode(msg)
	hv, err := DecodeHeader(b)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Decode(b)
	if err != nil {
		t.Fatal(err)
	}
	if hv.Header != full.Header {
		t.Fatalf("header peek %+v, full decode %+v", hv.Header, full.Header)
	}
	if string(hv.Payload) != string(full.Payload) {
		t.Fatalf("payload peek %q, full decode %q", hv.Payload, full.Payload)
	}
	// The view aliases the input; Decode copies.
	if len(hv.Payload) > 0 && &hv.Payload[0] != &b[len(b)-len(hv.Payload)] {
		t.Fatal("HeaderView payload does not alias the input buffer")
	}
	if &full.Payload[0] == &hv.Payload[0] {
		t.Fatal("Decode payload aliases the input buffer")
	}
}
