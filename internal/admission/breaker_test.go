package admission

import (
	"sync/atomic"
	"testing"
	"time"
)

// sig is a controllable backpressure signal.
type sig struct{ bits atomic.Uint64 }

func (s *sig) set(v float64) { s.bits.Store(uint64(v * 1000)) }
func (s *sig) get() float64  { return float64(s.bits.Load()) / 1000 }

// breakerConfig builds a controller whose breaker samples every call and
// trips after `sustain` of continuous overload.
func breakerController(s *sig, sustain, cooldown time.Duration) *Controller {
	return New(Config{
		Backpressure:     s.get,
		BreakerThreshold: 0.9,
		BreakerSustain:   sustain,
		BreakerCooldown:  cooldown,
		BreakerInterval:  time.Nanosecond,
	})
}

func TestBreakerTripsOnSustainedBackpressure(t *testing.T) {
	s := &sig{}
	c := breakerController(s, time.Nanosecond, time.Nanosecond)
	if c.BreakerOpen() {
		t.Fatal("breaker open with zero signal")
	}
	s.set(1.0)
	// First sample starts the sustain clock; the second (past the 1ns
	// sustain) trips.
	c.BreakerOpen()
	time.Sleep(time.Millisecond)
	if !c.BreakerOpen() {
		t.Fatal("breaker did not trip on sustained overload")
	}
	if !c.ReserveConn(nil) {
		t.Fatal("reservation refused while merely tripped (caps not reached)")
	}
	if v := c.AdmitConn("h"); v != ShedBreaker {
		t.Fatalf("verdict = %v, want ShedBreaker", v)
	}
	st := c.Stats()
	if st.BreakerTrips != 1 || !st.BreakerOpen || st.ConnsShedBreaker != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// Requests on established connections are not shed by the breaker.
	release, v := c.AdmitRequest(1)
	if v != Admit {
		t.Fatalf("request verdict while tripped = %v", v)
	}
	release()
}

func TestBreakerRecovers(t *testing.T) {
	s := &sig{}
	c := breakerController(s, time.Nanosecond, time.Nanosecond)
	s.set(1.0)
	c.BreakerOpen()
	time.Sleep(time.Millisecond)
	if !c.BreakerOpen() {
		t.Fatal("breaker did not trip")
	}
	s.set(0.0)
	time.Sleep(time.Millisecond)
	if c.BreakerOpen() {
		t.Fatal("breaker did not close after recovery and cooldown")
	}
	if !c.ReserveConn(nil) {
		t.Fatal("reservation refused")
	}
	if v := c.AdmitConn("h"); v != Admit {
		t.Fatalf("post-recovery verdict = %v", v)
	}
}

func TestBreakerSustainFiltersSpikes(t *testing.T) {
	s := &sig{}
	c := breakerController(s, time.Hour, time.Nanosecond)
	s.set(1.0)
	for i := 0; i < 10; i++ {
		if c.BreakerOpen() {
			t.Fatal("breaker tripped before the sustain period")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestBreakerCooldownHoldsOpen(t *testing.T) {
	s := &sig{}
	c := breakerController(s, time.Nanosecond, time.Hour)
	s.set(1.0)
	c.BreakerOpen()
	time.Sleep(time.Millisecond)
	if !c.BreakerOpen() {
		t.Fatal("breaker did not trip")
	}
	s.set(0.0)
	time.Sleep(time.Millisecond)
	if !c.BreakerOpen() {
		t.Fatal("breaker closed before the cooldown elapsed")
	}
}
