package admission

import (
	"sync"
	"testing"
	"time"
)

func TestNilControllerAdmitsEverything(t *testing.T) {
	var c *Controller
	if !c.ReserveConn(nil) {
		t.Fatal("nil controller refused a connection reservation")
	}
	if v := c.AdmitConn("10.0.0.1"); v != Admit {
		t.Fatalf("nil controller conn verdict = %v", v)
	}
	release, v := c.AdmitRequest(7)
	if v != Admit {
		t.Fatalf("nil controller request verdict = %v", v)
	}
	release()
	c.ReleaseConn("10.0.0.1")
	c.UnreserveConn()
	c.BeginDrain()
	if c.Draining() || c.InFlight() != 0 || c.BreakerOpen() {
		t.Fatal("nil controller reported state")
	}
	if s := c.Stats(); s != (Stats{}) {
		t.Fatalf("nil controller stats = %+v", s)
	}
}

func TestEmptyConfigIsUnlimited(t *testing.T) {
	c := New(Config{})
	for i := 0; i < 100; i++ {
		if !c.ReserveConn(nil) {
			t.Fatal("unlimited controller blocked a reservation")
		}
		if v := c.AdmitConn("h"); v != Admit {
			t.Fatalf("verdict = %v", v)
		}
		release, v := c.AdmitRequest(uint64(i))
		if v != Admit {
			t.Fatalf("request verdict = %v", v)
		}
		release()
	}
	if got := c.Stats().Admitted; got != 100 {
		t.Fatalf("admitted = %d, want 100", got)
	}
}

func TestConnCapBlocksAndReleases(t *testing.T) {
	c := New(Config{MaxConns: 2})
	for i := 0; i < 2; i++ {
		if !c.ReserveConn(nil) {
			t.Fatal("reservation under cap refused")
		}
		if v := c.AdmitConn("h"); v != Admit {
			t.Fatalf("verdict = %v", v)
		}
	}
	// The third reservation must block until a slot frees.
	acquired := make(chan struct{})
	go func() {
		if c.ReserveConn(nil) {
			close(acquired)
		}
	}()
	select {
	case <-acquired:
		t.Fatal("reservation above cap did not block")
	case <-time.After(20 * time.Millisecond):
	}
	c.ReleaseConn("h")
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("reservation did not unblock after a release")
	}
}

func TestReserveConnCancel(t *testing.T) {
	c := New(Config{MaxConns: 1})
	if !c.ReserveConn(nil) {
		t.Fatal("first reservation refused")
	}
	cancel := make(chan struct{})
	done := make(chan bool, 1)
	go func() { done <- c.ReserveConn(cancel) }()
	close(cancel)
	select {
	case ok := <-done:
		if ok {
			t.Fatal("cancelled reservation succeeded")
		}
	case <-time.After(time.Second):
		t.Fatal("cancelled reservation still blocked")
	}
}

func TestPerClientConnCap(t *testing.T) {
	c := New(Config{MaxConnsPerClient: 2})
	for i := 0; i < 2; i++ {
		if !c.ReserveConn(nil) {
			t.Fatal("reservation refused")
		}
		if v := c.AdmitConn("10.0.0.1"); v != Admit {
			t.Fatalf("verdict = %v", v)
		}
	}
	if !c.ReserveConn(nil) {
		t.Fatal("reservation refused")
	}
	if v := c.AdmitConn("10.0.0.1"); v != ShedConnPerClient {
		t.Fatalf("over-cap verdict = %v, want ShedConnPerClient", v)
	}
	// A different client address is unaffected.
	if !c.ReserveConn(nil) {
		t.Fatal("reservation refused")
	}
	if v := c.AdmitConn("10.0.0.2"); v != Admit {
		t.Fatalf("other-host verdict = %v", v)
	}
	c.ReleaseConn("10.0.0.1")
	if !c.ReserveConn(nil) {
		t.Fatal("reservation refused")
	}
	if v := c.AdmitConn("10.0.0.1"); v != Admit {
		t.Fatalf("post-release verdict = %v", v)
	}
	if got := c.Stats().ConnsOverCap; got != 1 {
		t.Fatalf("ConnsOverCap = %d, want 1", got)
	}
}

func TestTokenBucketRateLimit(t *testing.T) {
	c := New(Config{Rate: 10, Burst: 3})
	const client = 42
	var admitted, shed int
	for i := 0; i < 5; i++ {
		release, v := c.AdmitRequest(client)
		switch v {
		case Admit:
			admitted++
			release()
		case ShedRate:
			shed++
		default:
			t.Fatalf("verdict = %v", v)
		}
	}
	if admitted != 3 || shed != 2 {
		t.Fatalf("admitted=%d shed=%d, want burst of 3 admitted, 2 shed", admitted, shed)
	}
	// Refill at 10/s: ~150ms buys at least one token back.
	time.Sleep(150 * time.Millisecond)
	if _, v := c.AdmitRequest(client); v != Admit {
		t.Fatalf("post-refill verdict = %v", v)
	}
	// A different client has its own bucket.
	if _, v := c.AdmitRequest(client + 1); v != Admit {
		t.Fatalf("other-client verdict = %v", v)
	}
}

func TestInFlightWindowShedsAtDeadline(t *testing.T) {
	c := New(Config{MaxInFlight: 2, AdmitWait: 10 * time.Millisecond})
	r1, v := c.AdmitRequest(1)
	if v != Admit {
		t.Fatalf("verdict = %v", v)
	}
	_, v = c.AdmitRequest(2)
	if v != Admit {
		t.Fatalf("verdict = %v", v)
	}
	start := time.Now()
	_, v = c.AdmitRequest(3)
	if v != ShedWindow {
		t.Fatalf("over-window verdict = %v, want ShedWindow", v)
	}
	if waited := time.Since(start); waited < 10*time.Millisecond {
		t.Fatalf("shed after %v, want at least the 10ms AdmitWait", waited)
	}
	// Freeing a slot lets the next request in, and waiting requests are
	// admitted when a slot frees within the deadline.
	done := make(chan Verdict, 1)
	go func() {
		_, v := c.AdmitRequest(4)
		done <- v
	}()
	time.Sleep(2 * time.Millisecond)
	r1()
	if v := <-done; v != Admit {
		t.Fatalf("post-release verdict = %v", v)
	}
	if got := c.Stats().ShedWindow; got != 1 {
		t.Fatalf("ShedWindow = %d, want 1", got)
	}
}

func TestPerClientWindow(t *testing.T) {
	c := New(Config{MaxInFlightPerClient: 1})
	r1, v := c.AdmitRequest(7)
	if v != Admit {
		t.Fatalf("verdict = %v", v)
	}
	if _, v := c.AdmitRequest(7); v != ShedWindow {
		t.Fatalf("second in-flight verdict = %v, want ShedWindow", v)
	}
	if _, v := c.AdmitRequest(8); v != Admit {
		t.Fatalf("other-client verdict = %v", v)
	}
	r1()
	if _, v := c.AdmitRequest(7); v != Admit {
		t.Fatalf("post-release verdict = %v", v)
	}
}

func TestReleaseIsIdempotent(t *testing.T) {
	c := New(Config{MaxInFlight: 1, MaxInFlightPerClient: 1})
	release, v := c.AdmitRequest(1)
	if v != Admit {
		t.Fatalf("verdict = %v", v)
	}
	release()
	release() // must not double-free the window slot
	if got := c.InFlight(); got != 0 {
		t.Fatalf("InFlight = %d, want 0", got)
	}
	r2, v := c.AdmitRequest(1)
	if v != Admit {
		t.Fatalf("verdict after release = %v", v)
	}
	r2()
}

func TestDrainShedsEverything(t *testing.T) {
	c := New(Config{MaxConns: 4})
	c.BeginDrain()
	if !c.Draining() {
		t.Fatal("not draining after BeginDrain")
	}
	if c.ReserveConn(nil) {
		t.Fatal("draining controller handed out a reservation")
	}
	if _, v := c.AdmitRequest(1); v != ShedDraining {
		t.Fatalf("request verdict = %v, want ShedDraining", v)
	}
	s := c.Stats()
	if s.ShedDraining != 1 || !s.Draining {
		t.Fatalf("stats = %+v", s)
	}
}

func TestClientTableEviction(t *testing.T) {
	c := New(Config{Rate: 1000, ClientTableSize: 8})
	for i := uint64(0); i < 64; i++ {
		release, v := c.AdmitRequest(i)
		if v != Admit {
			t.Fatalf("client %d verdict = %v", i, v)
		}
		release()
	}
	if got := c.TrackedClients(); got > 8 {
		t.Fatalf("tracked clients = %d, want <= 8", got)
	}
}

func TestConcurrentAdmissionIsBounded(t *testing.T) {
	const window = 8
	c := New(Config{MaxInFlight: window, AdmitWait: time.Millisecond})
	var (
		wg      sync.WaitGroup
		mu      sync.Mutex
		cur     int64
		highest int64
	)
	for g := 0; g < 64; g++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				release, v := c.AdmitRequest(id)
				if v != Admit {
					continue
				}
				mu.Lock()
				cur++
				if cur > highest {
					highest = cur
				}
				mu.Unlock()
				mu.Lock()
				cur--
				mu.Unlock()
				release()
			}
		}(uint64(g))
	}
	wg.Wait()
	if highest > window {
		t.Fatalf("observed %d concurrent admissions, window is %d", highest, window)
	}
	if c.InFlight() != 0 {
		t.Fatalf("InFlight = %d after all releases", c.InFlight())
	}
}
