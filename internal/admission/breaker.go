package admission

import (
	"sync"
	"time"
)

// breaker is the domain-backpressure circuit breaker: it opens when the
// sampled load signal stays at or above the threshold for the sustain
// period, and closes once the signal is back below the threshold and the
// cooldown has elapsed. Sampling is lazy — the controller calls sample on
// admission decisions, and the interval gate keeps the signal function
// (which walks replication state) off the per-request fast path. A nil
// *breaker (no Backpressure configured) is permanently closed.
type breaker struct {
	signal    func() float64
	threshold float64
	sustain   time.Duration
	cooldown  time.Duration
	interval  time.Duration

	mu         sync.Mutex
	lastSample time.Time
	lastValue  float64
	aboveSince time.Time // zero while the signal is below the threshold
	openSince  time.Time
	open       bool
	trips      uint64
}

// newBreaker builds the breaker, or nil when cfg has no signal.
func newBreaker(cfg Config) *breaker {
	if cfg.Backpressure == nil {
		return nil
	}
	return &breaker{
		signal:    cfg.Backpressure,
		threshold: cfg.BreakerThreshold,
		sustain:   cfg.BreakerSustain,
		cooldown:  cfg.BreakerCooldown,
		interval:  cfg.BreakerInterval,
	}
}

// sample refreshes the breaker state (at most once per interval) and
// reports whether it is open.
func (b *breaker) sample(now time.Time) bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	if !b.lastSample.IsZero() && now.Sub(b.lastSample) < b.interval {
		open := b.open
		b.mu.Unlock()
		return open
	}
	b.lastSample = now
	b.mu.Unlock()
	// The signal runs outside mu: it walks replication state (the totem
	// send backlog, every pending-call shard), so holding the breaker
	// lock across it would serialize concurrent admission decisions
	// behind the walk — the very fast path the interval gate exists to
	// protect — and hands the lock to code whose own acquisitions are
	// invisible here (gwlint lockorder). Claiming lastSample before
	// releasing keeps the walk to one caller per interval; callers that
	// lose the claim return the previous verdict.
	v := b.signal()
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lastValue = v
	if b.lastValue >= b.threshold {
		if b.aboveSince.IsZero() {
			b.aboveSince = now
		}
		if !b.open && now.Sub(b.aboveSince) >= b.sustain {
			b.open = true
			b.openSince = now
			b.trips++
		}
	} else {
		b.aboveSince = time.Time{}
		if b.open && now.Sub(b.openSince) >= b.cooldown {
			b.open = false
		}
	}
	return b.open
}

// isOpen reports the current state without sampling.
func (b *breaker) isOpen() bool {
	if b == nil {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.open
}

// tripCount reports how many times the breaker has opened.
func (b *breaker) tripCount() uint64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
