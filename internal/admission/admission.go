// Package admission implements the gateway's admission control and
// overload protection layer: the serving-stack discipline that keeps the
// paper's gateway — the single funnel through which every unreplicated
// client enters a fault tolerance domain (paper sections 3.1–3.3) —
// bounded under load instead of accepting unbounded TCP connections and
// holding unbounded in-flight state.
//
// The layer has four mechanisms:
//
//   - Connection caps: a global concurrent-connection limit enforced as
//     accept-loop backpressure (the accept loop blocks before accepting
//     when the gateway is full, letting the kernel listen backlog and
//     ultimately TCP do the pushback) plus a per-client-address cap
//     enforced at accept time.
//   - Per-client request policing: a token-bucket rate limit and a
//     bounded in-flight window, both keyed by the paper's TCP client
//     identifier, with deadline-based load shedding — a request may wait
//     AdmitWait for an in-flight slot, after which it is shed.
//   - A breaker driven by domain-side backpressure (totem send backlog
//     and pending-call occupancy, exported by internal/replication):
//     when the signal stays above the threshold for the sustain period,
//     the breaker opens and new connections are shed at accept time
//     until the domain recovers and the cooldown elapses.
//   - Graceful drain: BeginDrain stops admitting new connections and
//     requests so the gateway can bleed in-flight operations to
//     completion and hand remaining clients to the redundant gateway
//     group (internal/core drives the protocol side).
//
// The controller is deliberately mechanism-only: it decides
// admit/shed/wait and counts outcomes; the gateway (internal/core) owns
// the protocol consequences (GIOP TRANSIENT system exceptions for shed
// requests, CloseConnection for shed connections). A nil *Controller is
// a valid no-op that admits everything, so the gateway datapath pays one
// nil check when admission is disabled — the same idiom internal/obs
// uses for its nil registry and tracer.
package admission

import (
	"sync"
	"sync/atomic"
	"time"
)

// Verdict is an admission decision. Admit is the zero value; the shed
// verdicts name the mechanism that rejected the work.
type Verdict uint8

// Admission verdicts.
const (
	// Admit lets the connection or request through.
	Admit Verdict = iota
	// ShedRate rejects a request because the client's token bucket is
	// empty (sustained rate above Config.Rate).
	ShedRate
	// ShedWindow rejects a request because the in-flight window (global
	// or per-client) stayed full past the AdmitWait deadline.
	ShedWindow
	// ShedBreaker rejects a connection because the domain-backpressure
	// breaker is open.
	ShedBreaker
	// ShedDraining rejects work because the gateway is draining.
	ShedDraining
	// ShedConnPerClient rejects a connection because the client address
	// already holds Config.MaxConnsPerClient connections.
	ShedConnPerClient
)

// String names the verdict for logs and status pages.
func (v Verdict) String() string {
	switch v {
	case Admit:
		return "admit"
	case ShedRate:
		return "shed-rate"
	case ShedWindow:
		return "shed-window"
	case ShedBreaker:
		return "shed-breaker"
	case ShedDraining:
		return "shed-draining"
	case ShedConnPerClient:
		return "shed-conn-per-client"
	default:
		return "unknown"
	}
}

// Minor is the minor code the gateway carries in the GIOP TRANSIENT
// system exception when it sheds a request with this verdict, so clients
// (and tests) can tell the shed reasons apart. Part of the shed-reply
// contract documented in docs/OPERATIONS.md.
func (v Verdict) Minor() uint32 { return uint32(v) }

// Config parameterizes a Controller. The zero value of every field means
// "unlimited" / "disabled", so an empty Config admits everything.
type Config struct {
	// MaxConns caps concurrently open external connections. At the cap
	// the accept loop blocks (backpressure) instead of accepting.
	// Zero means unlimited.
	MaxConns int
	// MaxConnsPerClient caps concurrently open connections per client
	// address (host, not host:port). Zero means unlimited.
	MaxConnsPerClient int
	// Rate is the per-client sustained admission rate in requests per
	// second, enforced with a token bucket keyed by the paper's TCP
	// client identifier. Zero means unlimited.
	Rate float64
	// Burst is the token-bucket depth: how many requests a client may
	// issue back-to-back before Rate applies. Zero means twice Rate,
	// minimum 1.
	Burst int
	// MaxInFlight caps requests concurrently admitted into the domain
	// across all clients. Zero means unlimited.
	MaxInFlight int
	// MaxInFlightPerClient caps requests concurrently admitted per
	// client identifier. Zero means unlimited.
	MaxInFlightPerClient int
	// AdmitWait is how long a request may wait for a free slot in the
	// global in-flight window before it is shed (deadline-based load
	// shedding). Zero sheds immediately when the window is full.
	AdmitWait time.Duration
	// Backpressure, when set, is sampled as the domain-side load signal
	// driving the breaker: a value in [0,1], typically
	// replication.Mechanisms.Backpressure. Nil disables the breaker.
	Backpressure func() float64
	// BreakerThreshold is the signal level treated as overload.
	// Zero means 0.9.
	BreakerThreshold float64
	// BreakerSustain is how long the signal must stay at or above the
	// threshold before the breaker opens. Zero means 200ms.
	BreakerSustain time.Duration
	// BreakerCooldown is the minimum open time; the breaker closes once
	// the signal is back below the threshold and the cooldown has
	// elapsed. Zero means 1s.
	BreakerCooldown time.Duration
	// BreakerInterval is the minimum time between samples of the
	// backpressure signal (samples are taken lazily on admission
	// decisions). Zero means 10ms.
	BreakerInterval time.Duration
	// ClientTableSize bounds the per-client state table (token buckets
	// and in-flight windows). When full, an idle client's entry is
	// evicted; a re-appearing client simply starts with a fresh bucket.
	// Zero means 4096.
	ClientTableSize int
}

func (c *Config) applyDefaults() {
	if c.Burst == 0 {
		c.Burst = int(2 * c.Rate)
	}
	if c.Burst < 1 {
		c.Burst = 1
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 0.9
	}
	if c.BreakerSustain == 0 {
		c.BreakerSustain = 200 * time.Millisecond
	}
	if c.BreakerCooldown == 0 {
		c.BreakerCooldown = time.Second
	}
	if c.BreakerInterval == 0 {
		c.BreakerInterval = 10 * time.Millisecond
	}
	if c.ClientTableSize == 0 {
		c.ClientTableSize = 4096
	}
}

// Stats snapshots the controller's counters and state.
type Stats struct {
	Admitted         uint64 // requests admitted into the domain
	ShedRate         uint64 // requests shed by the token bucket
	ShedWindow       uint64 // requests shed by the in-flight window
	ShedDraining     uint64 // requests shed while draining
	ConnsOverCap     uint64 // connections shed by the per-client cap
	ConnsShedBreaker uint64 // connections shed by the open breaker
	ConnsShedDrain   uint64 // connections shed while draining
	BreakerTrips     uint64 // times the breaker opened
	BreakerOpen      bool
	Draining         bool
	InFlight         int64 // requests currently admitted
}

// clientState is one client identifier's admission state: its token
// bucket and its slice of the in-flight window.
type clientState struct {
	tokens   float64
	last     time.Time
	inFlight int
}

// Controller enforces one gateway's admission policy. Create with New;
// a nil *Controller admits everything.
type Controller struct {
	cfg Config
	// connSlots is the global connection semaphore (nil = unlimited).
	connSlots chan struct{}
	// window is the global in-flight semaphore (nil = unlimited).
	window chan struct{}
	br     *breaker

	draining atomic.Bool
	inFlight atomic.Int64

	mu      sync.Mutex
	hosts   map[string]int
	clients map[uint64]*clientState

	admitted         atomic.Uint64
	shedRate         atomic.Uint64
	shedWindow       atomic.Uint64
	shedDraining     atomic.Uint64
	connsOverCap     atomic.Uint64
	connsShedBreaker atomic.Uint64
	connsShedDrain   atomic.Uint64
}

// New builds a controller from cfg.
func New(cfg Config) *Controller {
	cfg.applyDefaults()
	c := &Controller{
		cfg:     cfg,
		hosts:   make(map[string]int),
		clients: make(map[uint64]*clientState),
		br:      newBreaker(cfg),
	}
	if cfg.MaxConns > 0 {
		c.connSlots = make(chan struct{}, cfg.MaxConns)
	}
	if cfg.MaxInFlight > 0 {
		c.window = make(chan struct{}, cfg.MaxInFlight)
	}
	return c
}

// Stats snapshots the counters.
func (c *Controller) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		Admitted:         c.admitted.Load(),
		ShedRate:         c.shedRate.Load(),
		ShedWindow:       c.shedWindow.Load(),
		ShedDraining:     c.shedDraining.Load(),
		ConnsOverCap:     c.connsOverCap.Load(),
		ConnsShedBreaker: c.connsShedBreaker.Load(),
		ConnsShedDrain:   c.connsShedDrain.Load(),
		BreakerTrips:     c.br.tripCount(),
		BreakerOpen:      c.br.isOpen(),
		Draining:         c.draining.Load(),
		InFlight:         c.inFlight.Load(),
	}
}

// --- connection admission --------------------------------------------------

// ReserveConn blocks until a global connection slot is free, providing
// the accept-loop backpressure: at MaxConns the gateway simply stops
// calling Accept, so further clients queue in the kernel listen backlog
// instead of consuming gateway state. Returns false when cancel fires or
// the controller is draining; the caller then stops accepting.
func (c *Controller) ReserveConn(cancel <-chan struct{}) bool {
	if c == nil {
		return true
	}
	if c.draining.Load() {
		return false
	}
	if c.connSlots == nil {
		return true
	}
	select {
	case c.connSlots <- struct{}{}:
		if c.draining.Load() {
			<-c.connSlots
			return false
		}
		return true
	case <-cancel:
		return false
	}
}

// UnreserveConn returns an unused reservation (the accept failed).
func (c *Controller) UnreserveConn() {
	if c == nil {
		return
	}
	if c.connSlots != nil {
		<-c.connSlots
	}
}

// AdmitConn judges one reserved connection from the given client address
// (host only). On Admit the connection is registered and must be paired
// with ReleaseConn; on any shed verdict the reservation is already
// returned and the caller only closes the socket.
func (c *Controller) AdmitConn(host string) Verdict {
	if c == nil {
		return Admit
	}
	if c.draining.Load() {
		c.connsShedDrain.Add(1)
		c.UnreserveConn()
		return ShedDraining
	}
	if c.br.sample(time.Now()) {
		c.connsShedBreaker.Add(1)
		c.UnreserveConn()
		return ShedBreaker
	}
	if c.cfg.MaxConnsPerClient > 0 {
		c.mu.Lock()
		if c.hosts[host] >= c.cfg.MaxConnsPerClient {
			c.mu.Unlock()
			c.connsOverCap.Add(1)
			c.UnreserveConn()
			return ShedConnPerClient
		}
		c.hosts[host]++
		c.mu.Unlock()
	}
	return Admit
}

// ReleaseConn unregisters an admitted connection.
func (c *Controller) ReleaseConn(host string) {
	if c == nil {
		return
	}
	if c.cfg.MaxConnsPerClient > 0 {
		c.mu.Lock()
		if n := c.hosts[host]; n <= 1 {
			delete(c.hosts, host)
		} else {
			c.hosts[host] = n - 1
		}
		c.mu.Unlock()
	}
	c.UnreserveConn()
}

// --- request admission -----------------------------------------------------

// noopRelease is handed out on paths that acquired nothing, so callers
// can always defer the release.
func noopRelease() {}

// AdmitRequest judges one decoded request from the given client
// identifier. On Admit the returned release function must be called when
// the request completes (it frees the client's in-flight slot); it is
// safe to call exactly once. On a shed verdict release is a no-op and
// the gateway answers the client with a GIOP TRANSIENT system exception
// carrying Verdict.Minor.
//
// A full global in-flight window blocks the caller up to AdmitWait
// before shedding; since the gateway calls this on the connection's read
// loop, the wait also exerts per-connection backpressure on pipelined
// clients.
func (c *Controller) AdmitRequest(clientID uint64) (release func(), v Verdict) {
	if c == nil {
		return noopRelease, Admit
	}
	if c.draining.Load() {
		c.shedDraining.Add(1)
		return noopRelease, ShedDraining
	}
	// Keep the breaker's view of the domain fresh even between accepts;
	// the breaker sheds connections, not individual requests.
	c.br.sample(time.Now())

	perClient := c.cfg.Rate > 0 || c.cfg.MaxInFlightPerClient > 0
	if perClient {
		c.mu.Lock()
		cs := c.client(clientID)
		if c.cfg.Rate > 0 && !c.takeToken(cs) {
			c.mu.Unlock()
			c.shedRate.Add(1)
			return noopRelease, ShedRate
		}
		if c.cfg.MaxInFlightPerClient > 0 && cs.inFlight >= c.cfg.MaxInFlightPerClient {
			c.mu.Unlock()
			c.shedWindow.Add(1)
			return noopRelease, ShedWindow
		}
		cs.inFlight++
		c.mu.Unlock()
	}
	if c.window != nil && !c.acquireWindow() {
		if perClient {
			c.mu.Lock()
			if cs, ok := c.clients[clientID]; ok {
				cs.inFlight--
			}
			c.mu.Unlock()
		}
		c.shedWindow.Add(1)
		return noopRelease, ShedWindow
	}
	c.admitted.Add(1)
	c.inFlight.Add(1)
	var once sync.Once
	return func() {
		once.Do(func() {
			c.inFlight.Add(-1)
			if c.window != nil {
				<-c.window
			}
			if perClient {
				c.mu.Lock()
				if cs, ok := c.clients[clientID]; ok {
					cs.inFlight--
				}
				c.mu.Unlock()
			}
		})
	}, Admit
}

// acquireWindow takes a global in-flight slot, waiting up to AdmitWait.
func (c *Controller) acquireWindow() bool {
	select {
	case c.window <- struct{}{}:
		return true
	default:
	}
	if c.cfg.AdmitWait <= 0 {
		return false
	}
	timer := time.NewTimer(c.cfg.AdmitWait)
	defer timer.Stop()
	select {
	case c.window <- struct{}{}:
		return true
	case <-timer.C:
		return false
	}
}

// client returns (creating if needed) the state for a client identifier.
// Callers hold c.mu. When the table is full an idle entry (no requests
// in flight) is evicted; the evicted client restarts with a full bucket
// if it returns, which errs on the side of admitting.
func (c *Controller) client(id uint64) *clientState {
	if cs, ok := c.clients[id]; ok {
		return cs
	}
	if len(c.clients) >= c.cfg.ClientTableSize {
		for k, cs := range c.clients {
			if cs.inFlight == 0 && k != id {
				delete(c.clients, k)
				break
			}
		}
	}
	cs := &clientState{tokens: float64(c.cfg.Burst), last: time.Now()}
	c.clients[id] = cs
	return cs
}

// takeToken refills and debits the client's token bucket. Callers hold
// c.mu.
func (c *Controller) takeToken(cs *clientState) bool {
	now := time.Now()
	if elapsed := now.Sub(cs.last); elapsed > 0 {
		cs.tokens += elapsed.Seconds() * c.cfg.Rate
		if max := float64(c.cfg.Burst); cs.tokens > max {
			cs.tokens = max
		}
	}
	cs.last = now
	if cs.tokens < 1 {
		return false
	}
	cs.tokens--
	return true
}

// TrackedClients reports how many client identifiers currently hold
// admission state (diagnostics).
func (c *Controller) TrackedClients() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.clients)
}

// --- drain -----------------------------------------------------------------

// BeginDrain flips the controller into drain mode: every subsequent
// connection and request is shed. Idempotent.
func (c *Controller) BeginDrain() {
	if c == nil {
		return
	}
	c.draining.Store(true)
}

// Draining reports whether BeginDrain has been called.
func (c *Controller) Draining() bool {
	return c != nil && c.draining.Load()
}

// InFlight reports the number of currently admitted requests.
func (c *Controller) InFlight() int64 {
	if c == nil {
		return 0
	}
	return c.inFlight.Load()
}

// BreakerOpen reports whether the backpressure breaker is currently
// open (sampling the signal if it is stale).
func (c *Controller) BreakerOpen() bool {
	if c == nil {
		return false
	}
	return c.br.sample(time.Now())
}
