package sim

import (
	"fmt"
	"sort"
	"time"

	"eternalgw/internal/memnet"
)

// Virtual-time protocol constants. All values are in simulated time;
// they are scaled roughly like the production stack's LAN tuning so the
// schedules exercise the same races (token loss vs fail timeout, client
// timeout vs reconfiguration, gap flush vs retransmission).
const (
	linkMaxDelay   = 250 * time.Microsecond
	holdDelay      = 150 * time.Microsecond
	maxAssign      = 16
	tokenRetransTO = 2500 * time.Microsecond
	failTO         = 8 * time.Millisecond
	gatherTO       = 2 * time.Millisecond
	installTO      = 6 * time.Millisecond
	prepareTO      = 4 * time.Millisecond
	snapTO         = 4 * time.Millisecond
	installResend  = 1500 * time.Microsecond
	gapTO          = 15 * time.Millisecond
	bridgeResendTO = 5 * time.Millisecond
	fetchBatch     = 32
)

// gwRecord is a gateway's memory of one operation identifier: the
// paper's record store. admitted means the invocation is (or was)
// headed into the total order; replied caches the response so reissues
// are answered without re-execution; interested marks that this gateway
// owes a thin client (or bridge origin) an answer.
type gwRecord struct {
	op         *Op
	admitted   bool
	replied    bool
	val        uint64
	interested bool
	client     string
}

// node is one protocol node of a simulated domain: always a ring member
// and a replica of every group (the sim models the paper's common
// deployment where the domain is the unit of replication), optionally a
// gateway serving thin clients and bridges.
type node struct {
	w    *world
	dom  int
	idx  int
	id   memnet.NodeID
	ep   *memnet.Endpoint
	isGW bool
	subs []memnet.NodeID // fan-out subscribers attached to this gateway

	crashed bool
	inc     uint64 // incarnation; invalidates timers on crash/restart

	// Replicated state (transferred by membership sync).
	apps      map[int]App
	executed  map[int]map[OpKey]execRec
	outbox    map[OpKey]*Op // emitted bridge ops owed to remote domains
	log       []*entry
	delivered uint64 // contiguous received prefix
	execPos   uint64 // processed prefix (<= safe horizon)

	// Volatile state (lost on crash).
	acked    map[OpKey]bool // bridge ops known delivered remotely
	pending  []*entry       // locally submitted, awaiting a token hold
	records  map[OpKey]*gwRecord
	recOrder []OpKey
	pubs     []uint64 // fan-out items in ring order (gateway role)

	// Ring state.
	ring       ringID
	members    []int
	epoch      uint64 // max epoch seen; survives crash (stable storage)
	lastQuorum ringID
	lastRot    uint64
	gapSince   int64

	gathering      bool
	heard          map[int]*joinInfo
	pendingRing    ringID
	pendingMembers []int
	expectDonor    *joinInfo

	// Two-round install state. frozen means this node has acknowledged
	// a prepare and must not deliver/execute in its old ring until a
	// commit at least as new as prepHigh arrives — the freeze is what
	// keeps the fresh state it advertised from going stale while the
	// installer picks the donor.
	frozen      bool
	prepHigh    ringID // highest ring this node acked a prepare for
	prepRing    ringID // installer side: ring being prepared
	prepMembers []int
	prepAcks    map[int]*joinInfo

	failTimer, gatherTimer, installTimer, snapTimer, retransTimer *Timer
	prepTimer, prepAbortTimer                                     *Timer
}

func nodeName(dom, idx int) memnet.NodeID {
	return memnet.NodeID(fmt.Sprintf("d%d.n%02d", dom, idx))
}

// after schedules f on the virtual clock, bound to this incarnation:
// the callback is dropped if the node crashed, restarted or the run
// ended in the meantime.
func (n *node) after(d time.Duration, f func()) *Timer {
	inc := n.inc
	return n.w.clock.After(d, func() {
		if n.w.done || n.crashed || n.inc != inc {
			return
		}
		f()
	})
}

func (n *node) trace(e Event) {
	e.T = n.w.clock.Now()
	e.Dom = n.dom
	e.Node = n.idx
	n.w.record(e)
}

func (n *node) hasQuorum() bool { return len(n.members) >= n.w.doms[n.dom].quorum }

func (n *node) memberOf(idx int) bool {
	for _, m := range n.members {
		if m == idx {
			return true
		}
	}
	return false
}

func (n *node) get(seq uint64) *entry {
	if seq == 0 || seq > uint64(len(n.log)) {
		return nil
	}
	return n.log[seq-1]
}

func (n *node) store(seq uint64, e *entry) {
	for uint64(len(n.log)) < seq {
		n.log = append(n.log, nil)
	}
	if n.log[seq-1] == nil {
		n.log[seq-1] = e
	}
	for n.delivered < uint64(len(n.log)) && n.log[n.delivered] != nil {
		n.delivered++
	}
}

// start arms the node's background timers at world boot.
func (n *node) start() {
	n.resetFail()
	n.startBridgeResend()
}

// resetFail re-arms the token-loss detector. The deterministic
// per-node stagger keeps a whole partition side from gathering at the
// same virtual instant.
func (n *node) resetFail() {
	if n.failTimer != nil {
		n.failTimer.Stop()
	}
	n.failTimer = n.after(failTO+time.Duration(n.idx)*131*time.Microsecond, func() {
		n.startGather("fail-timeout")
	})
}

// handle dispatches one received datagram.
func (n *node) handle(m *msg) {
	if n.crashed {
		return
	}
	switch m.kind {
	case mToken:
		n.onToken(m)
	case mEntry:
		n.onEntry(m)
	case mProbe:
		n.onProbe(m)
	case mJoin:
		n.onJoin(m)
	case mPrepare:
		n.onPrepare(m)
	case mPrepareAck:
		n.onPrepareAck(m)
	case mSnapReq:
		n.onSnapReq(m)
	case mSnap:
		n.onSnap(m)
	case mInstall:
		n.adoptInstall(m.ring, m.members, m.snap, false)
	case mRequest:
		n.onRequest(m)
	case mBridge:
		n.onBridge(m)
	case mBridgeAck:
		n.acked[m.op.Key] = true
	case mFetch:
		n.onFetch(m)
	}
}

// ---- total order: token, entries, execution ----

func (n *node) onToken(m *msg) {
	t := m.token
	if t.ring != n.ring {
		if n.ring.less(t.ring) {
			n.startGather("foreign-token")
		}
		return
	}
	if n.frozen {
		// Prepared for a newer ring: the state advertised in the ack
		// must stay put, so no more holds in this ring. The fail timer
		// keeps running — if the commit never comes it forces a fresh
		// gather rather than a silent stall.
		return
	}
	n.resetFail()
	if n.retransTimer != nil {
		n.retransTimer.Stop()
	}
	if t.rot <= n.lastRot {
		return // duplicate delivery or retransmitted token we already held
	}
	n.holdToken(t)
}

// holdToken is one token hold: fill and serve retransmission requests,
// assign sequence numbers to pending submissions (quorum rings only),
// publish our received horizon on the all-received vector, execute up
// to the safe horizon, and pass the token on.
func (n *node) holdToken(t *token) {
	n.lastRot = t.rot
	n.w.doms[n.dom].lastHolder = n.idx

	for s := n.delivered + 1; s <= t.max; s++ {
		if n.get(s) == nil {
			t.rtr[s] = true
		}
	}
	for _, s := range t.sortedRtr() {
		if e := n.get(s); e != nil {
			delete(t.rtr, s)
			n.bcastEntry(s, e)
		}
	}
	if n.hasQuorum() {
		for i := 0; i < maxAssign && len(n.pending) > 0; i++ {
			e := n.pending[0]
			n.pending = n.pending[1:]
			t.max++
			n.store(t.max, e)
			n.bcastEntry(t.max, e)
		}
	}
	t.ar[n.idx] = n.delivered
	safe := t.max
	for _, mb := range n.members {
		if t.ar[mb] < safe {
			safe = t.ar[mb]
		}
	}
	n.execAdvance(safe)
	n.gapCheck(t)
	n.probeForeign()
	n.passToken(t)
}

func (n *node) bcastEntry(seq uint64, e *entry) {
	for _, mb := range n.members {
		if mb == n.idx {
			continue
		}
		n.w.send(n.ep, nodeName(n.dom, mb), &msg{kind: mEntry, dom: n.dom, from: n.idx, ring: n.ring, seq: seq, entry: e})
	}
}

func (n *node) onEntry(m *msg) {
	if m.ring != n.ring {
		if n.ring.less(m.ring) {
			n.startGather("foreign-entry")
		}
		return
	}
	n.store(m.seq, m.entry)
}

func (n *node) passToken(t *token) {
	mi := 0
	for i, mb := range n.members {
		if mb == n.idx {
			mi = i
		}
	}
	next := n.members[(mi+1)%len(n.members)]
	t2 := t.clone()
	t2.rot++
	out := &msg{kind: mToken, dom: n.dom, from: n.idx, token: t2}
	n.after(holdDelay, func() {
		if n.ring != t2.ring {
			return
		}
		n.w.send(n.ep, nodeName(n.dom, next), out)
		n.retransTimer = n.after(tokenRetransTO, func() {
			if n.ring != t2.ring {
				return
			}
			n.w.send(n.ep, nodeName(n.dom, next), out)
		})
	})
}

// gapCheck flushes permanently unrecoverable holes: a sequence whose
// assigner crashed before any copy escaped can never be filled, so a
// stalled received horizon forces a reconfiguration, whose install-time
// compaction drops the hole.
func (n *node) gapCheck(t *token) {
	if n.delivered >= t.max {
		n.gapSince = 0
		return
	}
	now := n.w.clock.Now()
	if n.gapSince == 0 {
		n.gapSince = now
		return
	}
	if now-n.gapSince > int64(gapTO) {
		n.gapSince = 0
		n.gathering = false
		n.startGather("gap-timeout")
	}
}

// probeForeign announces our ring to every domain node outside it. In a
// steady full ring this is a no-op; after a partition heals the probes
// are what tell two surviving fragments about each other and trigger
// the merge.
func (n *node) probeForeign() {
	size := n.w.doms[n.dom].size
	for i := 0; i < size; i++ {
		if i == n.idx || n.memberOf(i) {
			continue
		}
		n.w.send(n.ep, nodeName(n.dom, i), &msg{kind: mProbe, dom: n.dom, from: n.idx, ring: n.ring})
	}
}

func (n *node) onProbe(m *msg) {
	if m.ring == n.ring {
		return
	}
	n.startGather("foreign-probe")
}

// execAdvance processes ordered entries up to the safe horizon. Only
// quorum rings execute: a minority fragment freezes, so no operation
// can be executed on two sides of a partition at different positions.
func (n *node) execAdvance(safe uint64) {
	if !n.hasQuorum() || n.frozen {
		return
	}
	if safe > n.delivered {
		safe = n.delivered
	}
	for n.execPos < safe {
		e := n.log[n.execPos]
		n.execPos++
		if e.resp {
			n.execResponse(e)
		} else {
			n.execInvocation(e, n.execPos)
		}
	}
}

func (n *node) execInvocation(e *entry, seq uint64) {
	op := e.op
	ex := n.executed[op.Group]
	if rec, dup := ex[op.Key]; dup && !n.w.cfg.Mutations.DisableDedup {
		n.trace(Event{Kind: EvDedup, Group: op.Group, Op: op.Key, Seq: rec.seq})
		if !n.isGW && n.lowestLiveReplica() {
			n.pending = append(n.pending, &entry{op: op, resp: true, val: rec.val, group: op.Group})
		}
		return
	}
	var emitted []*Op
	val := n.apps[op.Group].Apply(op, seq, func(nested *Op) { emitted = append(emitted, nested) })
	ex[op.Key] = execRec{seq: seq, val: val}
	n.trace(Event{Kind: EvExec, Group: op.Group, Op: op.Key, Seq: seq, Val: val, Hash: n.apps[op.Group].Hash()})
	for _, nop := range emitted {
		n.outbox[nop.Key] = nop
	}
	if n.isGW {
		rec := n.record(op)
		rec.admitted = true
		if op.Name == "pub" {
			n.pubs = append(n.pubs, val)
			n.pushItem(val)
		}
		return
	}
	n.pending = append(n.pending, &entry{op: op, resp: true, val: val, group: op.Group})
	for _, nop := range emitted {
		n.sendBridge(nop)
	}
}

// lowestLiveReplica reports whether this node is the lowest-indexed
// non-gateway member of the current ring — the designated re-responder
// for duplicate deliveries, so a reissued op whose original responders
// left the ring still gets its cached answer.
func (n *node) lowestLiveReplica() bool {
	for _, mb := range n.members {
		if n.w.doms[n.dom].isGateway(mb) {
			continue
		}
		return mb == n.idx
	}
	return false
}

func (n *node) execResponse(e *entry) {
	if !n.isGW {
		return
	}
	op := e.op
	rec := n.record(op)
	rec.admitted = true
	if rec.replied {
		n.trace(Event{Kind: EvDupResp, Group: e.group, Op: op.Key})
		return
	}
	rec.replied = true
	rec.val = e.val
	n.trace(Event{Kind: EvRespRec, Group: e.group, Op: op.Key, Val: e.val})
	if rec.interested && rec.client != "" {
		n.w.send(n.ep, memnet.NodeID(rec.client), &msg{kind: mReply, dom: n.dom, from: n.idx, op: op, val: e.val})
	}
	if op.OriginDom >= 0 {
		n.ackBridge(op)
	}
}

// ---- gateway role: admission, records, bridges, fan-out ----

func (n *node) record(op *Op) *gwRecord {
	rec, ok := n.records[op.Key]
	if !ok {
		rec = &gwRecord{op: op}
		n.records[op.Key] = rec
		n.recOrder = append(n.recOrder, op.Key)
	}
	return rec
}

func (n *node) onRequest(m *msg) {
	op := m.op
	if rec, ok := n.records[op.Key]; ok {
		rec.interested = true
		rec.client = op.ReplyTo
		if rec.replied {
			n.trace(Event{Kind: EvRecordHit, Group: op.Group, Op: op.Key})
			n.w.send(n.ep, memnet.NodeID(op.ReplyTo), &msg{kind: mReply, dom: n.dom, from: n.idx, op: op, val: rec.val})
		}
		return
	}
	rec := n.record(op)
	rec.admitted = true
	rec.interested = true
	rec.client = op.ReplyTo
	n.pending = append(n.pending, &entry{op: op, group: op.Group})
}

func (n *node) onBridge(m *msg) {
	op := m.op
	if rec, ok := n.records[op.Key]; ok {
		if rec.replied {
			n.ackBridge(op)
			return
		}
		// Admitted but still unanswered. The response entries may have
		// died with a wiped ring, and nothing else regenerates them for
		// an uninterested record — so re-order the invocation: replica
		// dedup collapses it and the designated re-responder resends
		// the cached answer.
		for _, e := range n.pending {
			if e.op.Key == op.Key {
				return
			}
		}
		n.pending = append(n.pending, &entry{op: op, group: op.Group})
		return
	}
	rec := n.record(op)
	rec.admitted = true
	n.pending = append(n.pending, &entry{op: op, group: op.Group})
}

// ackBridge tells every node of the origin domain that the nested
// invocation is durably answered, stopping their resend loops.
func (n *node) ackBridge(op *Op) {
	size := n.w.doms[op.OriginDom].size
	for i := 0; i < size; i++ {
		n.w.send(n.ep, nodeName(op.OriginDom, i), &msg{kind: mBridgeAck, dom: n.dom, from: n.idx, op: op})
	}
	n.trace(Event{Kind: EvNestedAck, Group: op.Group, Op: op.Key})
}

// sendBridge forwards a nested invocation to every gateway of the
// target domain (the gateways' duplicate suppression collapses the R
// emitted copies into one admission — the paper's figure 4c).
func (n *node) sendBridge(op *Op) {
	d := n.w.doms[op.Dom]
	for _, g := range d.gateways {
		n.w.send(n.ep, nodeName(op.Dom, g), &msg{kind: mBridge, dom: op.Dom, from: n.idx, op: op})
	}
}

// startBridgeResend arms the nested-invocation retry loop. Gateways
// run it too: their acked map is volatile, so after a restart only the
// resend → re-ack round trip can clear the snapshot-restored outbox.
func (n *node) startBridgeResend() {
	n.after(bridgeResendTO, func() {
		n.resendBridges()
		n.startBridgeResend()
	})
}

func (n *node) resendBridges() {
	keys := make([]OpKey, 0, len(n.outbox))
	for k := range n.outbox {
		if !n.acked[k] {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.Client != b.Client {
			return a.Client < b.Client
		}
		if a.A != b.A {
			return a.A < b.A
		}
		return a.B < b.B
	})
	for _, k := range keys {
		n.sendBridge(n.outbox[k])
	}
}

func (n *node) pushItem(val uint64) {
	for _, s := range n.subs {
		n.trace(Event{Kind: EvPush, Val: val})
		n.w.send(n.ep, s, &msg{kind: mPush, dom: n.dom, from: n.idx, val: val})
	}
}

func (n *node) onFetch(m *msg) {
	have := m.have
	if have > uint64(len(n.pubs)) {
		have = uint64(len(n.pubs))
	}
	end := have + fetchBatch
	if end > uint64(len(n.pubs)) {
		end = uint64(len(n.pubs))
	}
	if end == have {
		return
	}
	items := append([]uint64(nil), n.pubs[have:end]...)
	n.w.send(n.ep, memnet.NodeID(m.client), &msg{kind: mItems, dom: n.dom, from: n.idx, items: items})
}

// ---- membership: gather, donor selection, install ----

func (n *node) myJoinInfo() *joinInfo {
	return &joinInfo{idx: n.idx, epoch: n.epoch, lastQuorum: n.lastQuorum, delivered: n.delivered}
}

func (n *node) startGather(reason string) {
	if n.gathering {
		return
	}
	n.gathering = true
	n.heard = map[int]*joinInfo{n.idx: n.myJoinInfo()}
	n.trace(Event{Kind: EvFault, Note: "gather:" + reason})
	size := n.w.doms[n.dom].size
	for i := 0; i < size; i++ {
		if i == n.idx {
			continue
		}
		n.w.send(n.ep, nodeName(n.dom, i), &msg{kind: mJoin, dom: n.dom, from: n.idx, join: n.myJoinInfo()})
	}
	if n.gatherTimer != nil {
		n.gatherTimer.Stop()
	}
	n.gatherTimer = n.after(gatherTO, n.finishGather)
}

func (n *node) onJoin(m *msg) {
	if !n.gathering {
		n.startGather("join")
	}
	if _, seen := n.heard[m.join.idx]; !seen {
		// First time we hear this peer in the round: answer directly in
		// case our broadcast predated its gather. The seen-set makes the
		// exchange terminate.
		n.w.send(n.ep, nodeName(n.dom, m.join.idx), &msg{kind: mJoin, dom: n.dom, from: n.idx, join: n.myJoinInfo()})
	}
	n.heard[m.join.idx] = m.join
}

func (n *node) finishGather() {
	ids := make([]int, 0, len(n.heard))
	for i := range n.heard {
		ids = append(ids, i)
	}
	sort.Ints(ids)
	if n.idx != ids[0] {
		// Someone lower-indexed installs; if no install arrives, retry.
		if n.installTimer != nil {
			n.installTimer.Stop()
		}
		n.installTimer = n.after(installTO, func() {
			n.gathering = false
			n.startGather("install-timeout")
		})
		return
	}
	maxEpoch := n.epoch
	for _, i := range ids {
		if ji := n.heard[i]; ji.epoch > maxEpoch {
			maxEpoch = ji.epoch
		}
	}
	n.startPrepare(ringID{epoch: maxEpoch + 1, installer: n.idx}, ids)
}

// startPrepare opens the install's first round: freeze every member and
// collect its state description as of the freeze. Gather-time joinInfos
// only elect the installer — they go stale the moment an old quorum
// ring executes another entry, and a donor picked from stale infos can
// miss an executed suffix. The prepare acks cannot: once a member acks,
// it stops delivering and executing until a commit, so the donor chosen
// from acks still covers every executed position at commit time.
func (n *node) startPrepare(ring ringID, members []int) {
	if ring.less(n.prepHigh) {
		// Already acked someone else's newer prepare; let that round
		// win, falling back to a fresh gather if its commit never lands.
		if n.installTimer != nil {
			n.installTimer.Stop()
		}
		n.installTimer = n.after(installTO, func() {
			n.gathering = false
			n.startGather("install-timeout")
		})
		return
	}
	n.prepRing = ring
	n.prepMembers = append([]int(nil), members...)
	n.prepAcks = make(map[int]*joinInfo)
	n.frozen = true
	n.prepHigh = ring
	out := &msg{kind: mPrepare, dom: n.dom, from: n.idx, ring: ring, members: n.prepMembers}
	send := func() {
		for _, mb := range n.prepMembers {
			if mb != n.idx && n.prepAcks[mb] == nil {
				n.w.send(n.ep, nodeName(n.dom, mb), out)
			}
		}
	}
	send()
	var resend func()
	resend = func() {
		if n.prepRing != ring {
			return
		}
		send()
		n.prepTimer = n.after(installResend, resend)
	}
	if n.prepTimer != nil {
		n.prepTimer.Stop()
	}
	n.prepTimer = n.after(installResend, resend)
	if n.prepAbortTimer != nil {
		n.prepAbortTimer.Stop()
	}
	n.prepAbortTimer = n.after(prepareTO, func() {
		if n.prepRing != ring {
			return
		}
		n.prepRing = ringID{}
		n.gathering = false
		n.startGather("prepare-timeout")
	})
	n.maybeCommit()
}

func (n *node) onPrepare(m *msg) {
	if !n.ring.less(m.ring) {
		return
	}
	ok := false
	for _, mb := range m.members {
		if mb == n.idx {
			ok = true
		}
	}
	if !ok {
		return
	}
	// Freeze first, then describe: nothing may advance between the two.
	n.frozen = true
	if n.prepHigh.less(m.ring) {
		n.prepHigh = m.ring
	}
	n.w.send(n.ep, nodeName(n.dom, m.from), &msg{kind: mPrepareAck, dom: n.dom, from: n.idx, ring: m.ring, join: n.myJoinInfo()})
}

func (n *node) onPrepareAck(m *msg) {
	if m.ring != n.prepRing {
		return
	}
	n.prepAcks[m.join.idx] = m.join
	n.maybeCommit()
}

// maybeCommit closes the prepare round once every member has acked:
// pick the donor from the fresh infos (self included, read now — the
// installer is frozen too) and either commit immediately with our own
// snapshot or fetch the donor's.
func (n *node) maybeCommit() {
	if n.prepRing == (ringID{}) {
		return
	}
	for _, mb := range n.prepMembers {
		if mb != n.idx && n.prepAcks[mb] == nil {
			return
		}
	}
	ring, members := n.prepRing, n.prepMembers
	n.prepAcks[n.idx] = n.myJoinInfo()
	donor := n.prepAcks[n.idx]
	for _, mb := range members {
		if ji := n.prepAcks[mb]; betterDonor(ji, donor) {
			donor = ji
		}
	}
	n.prepRing = ringID{}
	if n.prepTimer != nil {
		n.prepTimer.Stop()
	}
	if n.prepAbortTimer != nil {
		n.prepAbortTimer.Stop()
	}
	quorum := len(members) >= n.w.doms[n.dom].quorum
	if !quorum || donor.idx == n.idx {
		// Minority rings never transfer state (their members' logs may
		// legitimately diverge until a quorum ring re-converges them),
		// and a self-donor needs no fetch.
		var snap *snapshot
		if quorum {
			snap = n.makeSnapshot()
		}
		n.doInstall(ring, members, snap)
		return
	}
	n.pendingRing = ring
	n.pendingMembers = members
	n.expectDonor = donor
	n.w.send(n.ep, nodeName(n.dom, donor.idx), &msg{kind: mSnapReq, dom: n.dom, from: n.idx, ring: ring})
	if n.snapTimer != nil {
		n.snapTimer.Stop()
	}
	n.snapTimer = n.after(snapTO, func() {
		n.gathering = false
		n.startGather("snap-timeout")
	})
}

func (n *node) onSnapReq(m *msg) {
	n.w.send(n.ep, nodeName(n.dom, m.from), &msg{
		kind: mSnap, dom: n.dom, from: n.idx, ring: m.ring,
		snap: n.makeSnapshot(), join: n.myJoinInfo(),
	})
}

func (n *node) onSnap(m *msg) {
	if !n.gathering || m.ring != n.pendingRing || n.expectDonor == nil || m.from != n.expectDonor.idx {
		return
	}
	// Donor restarted between its join and our request: its state no
	// longer covers what it advertised, so the snapshot could roll the
	// group back. Re-gather instead of installing it.
	if m.join.lastQuorum != n.expectDonor.lastQuorum || m.join.delivered < n.expectDonor.delivered {
		n.gathering = false
		n.startGather("donor-changed")
		return
	}
	if n.snapTimer != nil {
		n.snapTimer.Stop()
	}
	n.doInstall(n.pendingRing, n.pendingMembers, m.snap)
}

func (n *node) doInstall(ring ringID, members []int, snap *snapshot) {
	out := &msg{kind: mInstall, dom: n.dom, from: n.idx, ring: ring, members: members, snap: snap}
	for _, mb := range members {
		if mb == n.idx {
			continue
		}
		n.w.send(n.ep, nodeName(n.dom, mb), out)
	}
	n.after(installResend, func() {
		if n.ring != ring {
			return
		}
		for _, mb := range members {
			if mb != n.idx {
				n.w.send(n.ep, nodeName(n.dom, mb), out)
			}
		}
	})
	n.adoptInstall(ring, members, snap, true)
}

// adoptInstall transitions to a newly installed ring: adopt the donor
// snapshot (unless the membership-sync mutation is disabled — the
// checker teeth), record the view, rebuild the gateway role's derived
// state, and re-enqueue every admitted-but-unanswered interested
// record (the paper's no-lost-requests discipline). The installer also
// regenerates the token and takes the first hold.
func (n *node) adoptInstall(ring ringID, members []int, snap *snapshot, installer bool) {
	if n.crashed || ring == n.ring || ring.less(n.ring) {
		return
	}
	ok := false
	for _, mb := range members {
		if mb == n.idx {
			ok = true
		}
	}
	if !ok {
		return
	}
	n.ring = ring
	n.members = append([]int(nil), members...)
	if ring.epoch > n.epoch {
		n.epoch = ring.epoch
	}
	n.lastRot = 0
	n.gathering = false
	n.gapSince = 0
	n.prepRing = ringID{}
	for _, t := range []*Timer{n.gatherTimer, n.installTimer, n.snapTimer, n.retransTimer, n.prepTimer, n.prepAbortTimer} {
		t.Stop()
	}
	// Unfreeze only if this commit is at least as new as every prepare
	// we acked: a ring older than prepHigh must not resume executing
	// with the state a newer pending install was promised.
	if !ring.less(n.prepHigh) {
		n.frozen = false
	}
	q := len(members) >= n.w.doms[n.dom].quorum
	// Only quorum installs replace state. A minority install must not
	// rewrite member logs: compaction renumbers undelivered entries,
	// and rewriting a log that held a prefix executed under an earlier
	// quorum ring breaks the donor-rule induction that keeps executed
	// positions stable across reconfigurations (a later quorum install
	// could pick the rewritten log as donor and reassign those seqs).
	// Minority rings never assign or execute, so their members' logs
	// can stay divergent until a quorum ring re-converges them.
	if q && snap != nil && !n.w.cfg.Mutations.DisableMembershipSync {
		n.adoptSnapshot(snap)
	}
	if q {
		n.lastQuorum = ring
	}
	n.trace(Event{Kind: EvRing, Quorum: q, Note: fmt.Sprintf("%s%v", ring, members)})
	n.w.stats.Rings++
	if n.isGW {
		n.rebuildFromLog()
		n.reenqueueInterested()
	}
	n.resetFail()
	if installer && !n.frozen {
		t := &token{ring: ring, rot: 1, max: n.delivered, ar: make(map[int]uint64), rtr: make(map[uint64]bool)}
		for _, mb := range members {
			t.ar[mb] = 0
		}
		t.ar[n.idx] = n.delivered
		n.holdToken(t)
	}
}

// adoptSnapshot installs the donor's state, compacting the log: the
// delivered prefix keeps its positions (nothing executed ever moves),
// received-but-undelivered tail entries are renumbered contiguously,
// unrecoverable holes are dropped. State transfer only ever moves a
// node forward: the old ring keeps executing while the gather and
// snapshot request are in flight, so a member can be ahead of the
// donor's execution position at install — its local state is the same
// history executed further (execution happens only in quorum rings,
// which are totally ordered, and the donor rule bounds every executed
// position by the donor's delivered horizon), so it is kept.
// Everything mutable is deep-copied — the snapshot object is shared by
// all adopters.
func (n *node) adoptSnapshot(s *snapshot) {
	log := make([]*entry, 0, len(s.log))
	log = append(log, s.log[:s.delivered]...)
	for _, e := range s.log[s.delivered:] {
		if e != nil {
			log = append(log, e)
		}
	}
	n.log = log
	n.delivered = uint64(len(log))
	if n.execPos < s.execPos {
		n.execPos = s.execPos
		n.apps = make(map[int]App, len(s.apps))
		// Clone in sorted group order: an App's Clone may observe the
		// call order (allocation counters, shared pools), and map
		// iteration order must not leak into the deterministic schedule.
		for _, g := range sortedAppGroups(s.apps) {
			n.apps[g] = s.apps[g].Clone()
		}
		n.executed = make(map[int]map[OpKey]execRec, len(s.executed))
		for g, m := range s.executed {
			cp := make(map[OpKey]execRec, len(m))
			for k, v := range m {
				cp[k] = v
			}
			n.executed[g] = cp
		}
		n.outbox = make(map[OpKey]*Op, len(s.outbox))
		for k, v := range s.outbox {
			n.outbox[k] = v
		}
	}
	if n.lastQuorum.less(s.lastQuorum) {
		n.lastQuorum = s.lastQuorum
	}
}

// sortedAppGroups returns the map's group ids in ascending order.
func sortedAppGroups(m map[int]App) []int {
	out := make([]int, 0, len(m))
	for g := range m {
		out = append(out, g)
	}
	sort.Ints(out)
	return out
}

func (n *node) makeSnapshot() *snapshot {
	s := &snapshot{
		log:        append([]*entry(nil), n.log...),
		delivered:  n.delivered,
		execPos:    n.execPos,
		lastQuorum: n.lastQuorum,
		apps:       make(map[int]App, len(n.apps)),
		executed:   make(map[int]map[OpKey]execRec, len(n.executed)),
		outbox:     make(map[OpKey]*Op, len(n.outbox)),
	}
	// Sorted for the same reason as adoptSnapshot: Clone is a call into
	// application code, and its invocation order must be schedule-stable.
	for _, g := range sortedAppGroups(n.apps) {
		s.apps[g] = n.apps[g].Clone()
	}
	for g, m := range n.executed {
		cp := make(map[OpKey]execRec, len(m))
		for k, v := range m {
			cp[k] = v
		}
		s.executed[g] = cp
	}
	for k, v := range n.outbox {
		s.outbox[k] = v
	}
	return s
}

// rebuildFromLog reconstructs the gateway's derived state (record
// store, fan-out history) from the adopted log, merging with what the
// gateway already knew: interested/client flags are local knowledge and
// survive; admitted/replied come from the order itself.
func (n *node) rebuildFromLog() {
	n.pubs = n.pubs[:0]
	pubbed := make(map[OpKey]bool)
	for i := uint64(0); i < n.delivered; i++ {
		e := n.log[i]
		if e == nil {
			continue
		}
		rec := n.record(e.op)
		rec.admitted = true
		if e.resp && !rec.replied {
			rec.replied = true
			rec.val = e.val
		}
		// A reissued op can be ordered twice; the replicas dedup at
		// execution, so the rebuilt publication stream must too.
		if !e.resp && e.op.Name == "pub" && !pubbed[e.op.Key] {
			pubbed[e.op.Key] = true
			n.pubs = append(n.pubs, uint64(len(n.pubs)+1))
		}
	}
}

// reenqueueInterested resubmits every admitted, unanswered operation
// this gateway owes someone. Replica-side duplicate detection collapses
// re-submissions that survived in the adopted log; ones that were lost
// with a dead ring get ordered for the first time. This is what makes
// "no lost admitted requests" hold across reconfigurations.
func (n *node) reenqueueInterested() {
	for _, k := range n.recOrder {
		rec := n.records[k]
		if rec.interested && !rec.replied && rec.op != nil {
			n.pending = append(n.pending, &entry{op: rec.op, group: rec.op.Group})
		}
	}
}

// ---- crash / restart ----

func (n *node) crash() {
	n.crashed = true
	n.inc++
	n.w.net.Crash(n.id)
}

// restart brings the node back with empty state (only the epoch
// survives, modeling the small stable-storage item that keeps ring ids
// monotonic). The node rejoins by gathering; membership sync restores
// its state from the donor snapshot.
func (n *node) restart() {
	n.crashed = false
	n.inc++
	n.trace(Event{Kind: EvRestart})
	n.w.net.Restart(n.id)
	d := n.w.doms[n.dom]
	n.apps = d.newApps()
	n.executed = make(map[int]map[OpKey]execRec)
	for g := range n.apps {
		n.executed[g] = make(map[OpKey]execRec)
	}
	n.outbox = make(map[OpKey]*Op)
	n.acked = make(map[OpKey]bool)
	n.log = nil
	n.delivered = 0
	n.execPos = 0
	n.pending = nil
	n.records = make(map[OpKey]*gwRecord)
	n.recOrder = nil
	n.pubs = nil
	n.ring = ringID{}
	n.members = []int{n.idx}
	n.lastQuorum = ringID{}
	n.lastRot = 0
	n.gathering = false
	n.gapSince = 0
	n.frozen = false
	n.prepHigh = ringID{}
	n.prepRing = ringID{}
	n.prepAcks = nil
	n.startBridgeResend()
	n.startGather("restart")
}
