package sim

import (
	"fmt"
	"math/rand"

	"eternalgw/internal/faultinject"
	"eternalgw/internal/memnet"
)

// Schedule class names accepted by Config.Schedule. Empty picks one by
// seed. Each class is an adversarial script aimed at a specific paper
// mechanism: partitions mid-invocation at the safe-delivery gate,
// killing the token holder or the installer at the reconfiguration
// machinery, crashing gateways at the record store, rapid
// partition/merge at view agreement, and loss storms at every
// retransmission path.
const (
	SchedCalm           = "calm"
	SchedPartition      = "partition-invoke"
	SchedKillHolder     = "kill-token-holder"
	SchedGatewayCrash   = "gateway-crash-reply"
	SchedPartitionMerge = "partition-merge-view"
	SchedStorm          = "storm"
)

// Schedules lists the schedule class names.
func Schedules() []string {
	return []string{SchedCalm, SchedPartition, SchedKillHolder, SchedGatewayCrash, SchedPartitionMerge, SchedStorm}
}

const stormLoss = 0.25

// minorityCut draws a random minority subset of domain 0's protocol
// nodes: never large enough to take the quorum side below a majority,
// always at least one node.
func (w *world) minorityCut(rng *rand.Rand) []memnet.NodeID {
	d := w.doms[0]
	maxCut := d.size - d.quorum
	if maxCut < 1 {
		maxCut = 1
	}
	k := 1 + rng.Intn(maxCut)
	perm := rng.Perm(d.size)
	ids := make([]memnet.NodeID, 0, k)
	for _, i := range perm[:k] {
		ids = append(ids, nodeName(0, i))
	}
	return ids
}

// buildSchedule draws the concrete fault plan for the chosen class.
// All randomness comes from the schedule stream, so pinning a class
// changes nothing about the network or workload draws.
func (w *world) buildSchedule(class string, rng *rand.Rand) []faultinject.StepSpec {
	tot := uint64(w.spec.clients * w.spec.opsPerClient)
	if tot < 8 {
		tot = 8
	}
	switch class {
	case SchedCalm:
		return nil
	case SchedPartition:
		cut := w.minorityCut(rng)
		return []faultinject.StepSpec{
			{Name: "partition", MinOp: tot / 8, MaxOp: tot / 3, Action: func() { w.doPartition(cut) }},
			{Name: "heal", MinOp: tot / 2, MaxOp: 3 * tot / 4, Action: w.doHeal},
		}
	case SchedKillHolder:
		return []faultinject.StepSpec{
			{Name: "kill-holder", MinOp: tot / 8, MaxOp: tot / 3, Action: func() {
				w.doCrash(0, w.doms[0].lastHolder, "holder")
			}},
			{Name: "kill-installer", MinOp: tot / 3, MaxOp: tot / 2, Action: func() {
				w.doCrash(0, w.doms[0].nodes[w.doms[0].lastHolder].ring.installer, "installer")
			}},
			{Name: "restart-all", MinOp: tot / 2, MaxOp: 2 * tot / 3, Action: w.doRestartAll},
		}
	case SchedGatewayCrash:
		d := w.doms[0]
		gw := d.gateways[rng.Intn(len(d.gateways))]
		return []faultinject.StepSpec{
			{Name: "crash-gateway", MinOp: tot / 8, MaxOp: tot / 2, Action: func() { w.doCrash(0, gw, "gateway") }},
			{Name: "restart-all", MinOp: tot / 2, MaxOp: 3 * tot / 4, Action: w.doRestartAll},
		}
	case SchedPartitionMerge:
		cut1 := w.minorityCut(rng)
		cut2 := w.minorityCut(rng)
		return []faultinject.StepSpec{
			{Name: "partition-a", MinOp: tot / 10, MaxOp: tot / 4, Action: func() { w.doPartition(cut1) }},
			{Name: "heal-a", MinOp: tot / 4, MaxOp: tot / 3, Action: w.doHeal},
			{Name: "partition-b", MinOp: tot / 3, MaxOp: tot / 2, Action: func() { w.doPartition(cut2) }},
			{Name: "heal-b", MinOp: tot / 2, MaxOp: 2 * tot / 3, Action: w.doHeal},
		}
	case SchedStorm:
		loss := stormLoss + rng.Float64()*0.15
		return []faultinject.StepSpec{
			{Name: "storm-on", MinOp: 2, MaxOp: tot / 4, Action: func() { w.doStorm(loss) }},
			{Name: "storm-off", MinOp: tot / 2, MaxOp: 3 * tot / 4, Action: w.doCalmLoss},
		}
	}
	return nil
}

// ---- fault actions ----

func (w *world) faultEvent(note string) {
	w.record(Event{T: w.clock.Now(), Kind: EvFault, Dom: -1, Node: -1, Group: -1, Note: note})
}

func (w *world) doPartition(cut []memnet.NodeID) {
	w.net.Partition(cut)
	w.partitionActive = true
	w.faultEvent(fmt.Sprintf("partition%v", cut))
}

func (w *world) doHeal() {
	w.net.Heal()
	w.partitionActive = false
	w.faultEvent("heal")
}

// doCrash fails a protocol node, respecting the quorum cap: the
// schedule never takes more nodes down at once than the domain can
// lose while keeping a majority.
func (w *world) doCrash(dom, idx int, why string) {
	d := w.doms[dom]
	if idx < 0 || idx >= d.size {
		return
	}
	n := d.nodes[idx]
	if n.crashed {
		return
	}
	if w.crashedCount(dom)+1 > d.size-d.quorum {
		w.faultEvent(fmt.Sprintf("crash-skipped-cap:d%d.n%d", dom, idx))
		return
	}
	n.crash()
	w.faultEvent(fmt.Sprintf("crash:%s:d%d.n%d", why, dom, idx))
}

func (w *world) crashedCount(dom int) int {
	c := 0
	for _, n := range w.doms[dom].nodes {
		if n.crashed {
			c++
		}
	}
	return c
}

func (w *world) doRestartAll() {
	for _, d := range w.doms {
		for _, n := range d.nodes {
			if n.crashed {
				n.restart()
				w.faultEvent(fmt.Sprintf("restart:d%d.n%d", d.idx, n.idx))
			}
		}
	}
}

func (w *world) doStorm(loss float64) {
	w.net.SetLoss(loss)
	w.stormActive = true
	w.faultEvent(fmt.Sprintf("storm:%.2f", loss))
}

func (w *world) doCalmLoss() {
	w.net.SetLoss(baseLoss)
	w.stormActive = false
	w.faultEvent("storm-off")
}

// forceHeal is the time-triggered backstop: whatever the op-triggered
// plan did (or never got to do because the fault it injected stalled
// the workload that drives it), at a fixed virtual time every fault is
// lifted so liveness is a fair thing to check.
func (w *world) forceHeal() {
	if w.done {
		return
	}
	w.net.Heal()
	w.partitionActive = false
	w.net.SetLoss(baseLoss)
	w.stormActive = false
	w.doRestartAll()
	w.faultEvent("forced-heal")
}
