// Package sim is the repository's deterministic simulation harness: a
// FoundationDB-style seeded simulator that runs a full multi-group fault
// tolerance domain — replicas, gateways, thin clients, and for the bank
// workload a second domain bridged through its gateways — on a virtual
// clock over memnet, with every source of nondeterminism (event
// interleaving at the sim layer, fault schedule, client workload,
// topology, payloads) derived from a single uint64 seed.
//
// A schedule generator composes faultinject primitives into adversarial
// scripts (partition the ring mid-invocation, kill the token holder,
// crash a gateway during reply delivery, partition-then-merge during a
// view change, loss storms), and after every run a checker library
// audits the paper's invariants from the recorded trace: a single total
// order across surviving replicas, exactly-once execution per operation
// identifier, duplicate suppression on reissue, no lost admitted
// requests, and view agreement. Failing seeds replay byte-for-byte:
// the trace of a run is a pure function of its configuration.
//
// The protocol model is a miniature of the production stack — a token
// ring with Totem-style safe delivery (an all-received vector carried on
// the token gates execution, so a stale majority ring cannot execute
// during a partition), token-loss-driven membership reconfiguration with
// donor-snapshot state transfer at install (the membership-sync
// discipline of internal/replication), gateway record stores keyed by
// the paper's operation identifiers, and reissuing thin clients — small
// enough to run thousands of seeded schedules per minute, faithful
// enough that disabling a real guard (replication dedup, the
// membership-sync snapshot) makes the checkers find a violating seed
// within a CI-sized budget.
package sim

import (
	"container/heap"
	"time"
)

// event is one scheduled callback on the virtual clock.
type event struct {
	at  int64 // virtual nanoseconds
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Clock is the simulation's virtual clock and event queue. It is not
// safe for concurrent use: the whole simulation is single-threaded,
// which is what makes goroutine-visible interleaving a function of the
// seed. Ties at the same instant fire in scheduling order.
type Clock struct {
	now  int64
	seq  uint64
	heap eventHeap
}

// NewClock returns a clock at virtual time zero.
func NewClock() *Clock { return &Clock{} }

// Now returns the current virtual time as nanoseconds since the start
// of the run.
func (c *Clock) Now() int64 { return c.now }

// AfterFunc schedules f to run once d has elapsed on the virtual clock.
// It implements memnet.Clock, so a simulated network's delayed
// deliveries become ordinary events of the run.
func (c *Clock) AfterFunc(d time.Duration, f func()) {
	if d < 0 {
		d = 0
	}
	c.seq++
	heap.Push(&c.heap, &event{at: c.now + int64(d), seq: c.seq, fn: f})
}

// Timer is a cancellable scheduled callback.
type Timer struct{ stopped bool }

// Stop cancels the timer; the callback will not run.
func (t *Timer) Stop() {
	if t != nil {
		t.stopped = true
	}
}

// After schedules f like AfterFunc but returns a handle that can cancel
// it.
func (c *Clock) After(d time.Duration, f func()) *Timer {
	t := &Timer{}
	c.AfterFunc(d, func() {
		if !t.stopped {
			f()
		}
	})
	return t
}

// Step pops and runs the earliest pending event, advancing virtual time
// to its deadline. It reports false when no events remain.
func (c *Clock) Step() bool {
	if len(c.heap) == 0 {
		return false
	}
	e := heap.Pop(&c.heap).(*event)
	if e.at > c.now {
		c.now = e.at
	}
	e.fn()
	return true
}

// Pending returns the number of scheduled events.
func (c *Clock) Pending() int { return len(c.heap) }
