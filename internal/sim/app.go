package sim

// Op is one invocation flowing through a simulated domain: a client
// request admitted by a gateway, or a nested invocation a replica group
// emits against another domain (the paper's cross-domain bridge, routed
// through the remote domain's gateways).
type Op struct {
	Key   OpKey
	Dom   int // target domain
	Group int // target object group within the domain
	Name  string
	Arg   uint64
	Arg2  uint64
	Arg3  uint64
	// OriginDom/OriginGroup identify the emitting replica group for
	// bridge ops; OriginDom is -1 for client-issued ops.
	OriginDom   int
	OriginGroup int
	// ReplyTo is the memnet id of the issuing client ("" for bridge
	// ops, which are acknowledged to the origin domain instead).
	ReplyTo string
}

// keyHash folds an op's identity into a state hash.
func (o *Op) keyHash() uint64 {
	h := mix64(o.Key.Client, o.Key.A)
	h = mix64(h, o.Key.B)
	h = mix64(h, o.Arg)
	h = mix64(h, o.Arg2)
	return mix64(h, o.Arg3)
}

// App is a deterministic replicated state machine hosted by every
// protocol node of a domain. Apply executes one ordered invocation and
// may emit nested ops (with caller-supplied deterministic keys, so all
// replicas emit the identical nested invocation and the remote
// gateways' duplicate suppression collapses the copies — the paper's
// figure 4c). Hash is an order-sensitive digest of the applied history;
// Total is the workload-level aggregate the checkers audit (counter
// value, balance sum, published items).
type App interface {
	Apply(op *Op, seq uint64, emit func(*Op)) uint64
	Hash() uint64
	Total() uint64
	Clone() App
}

// counterApp is the default workload's state machine: a single counter
// per group, incremented by each op's Arg.
type counterApp struct {
	count uint64
	hash  uint64
}

func newCounterApp() App { return &counterApp{} }

func (a *counterApp) Apply(op *Op, seq uint64, emit func(*Op)) uint64 {
	a.count += op.Arg
	a.hash = mix64(mix64(a.hash, op.keyHash()), a.count)
	return a.count
}

func (a *counterApp) Hash() uint64  { return a.hash }
func (a *counterApp) Total() uint64 { return a.count }
func (a *counterApp) Clone() App    { c := *a; return &c }

// bankApp is the bank-transfer workload's state machine. The west
// instance holds the debit side: a "transfer" op debits a local account
// (saturating, so the transferred amount is a deterministic function of
// replicated state) and emits a "credit" against the east domain keyed
// by the transfer's global sequence — identical from every replica, so
// the east gateways admit it exactly once. The east instance applies
// credits. Total is the balance sum, which the conservation checker
// adds across domains.
type bankApp struct {
	bal  []uint64
	hash uint64
	// eastDom/eastGroup is the credit target for the west instance;
	// eastDom is -1 for the east instance itself.
	eastDom   int
	eastGroup int
}

// bridgeClient is the OpKey.Client value of bank bridge ops: a
// reserved id no thin client uses.
const bridgeClient = 1 << 32

func newBankApp(accounts int, funding uint64, eastDom, eastGroup int) *bankApp {
	bal := make([]uint64, accounts)
	for i := range bal {
		bal[i] = funding
	}
	return &bankApp{bal: bal, eastDom: eastDom, eastGroup: eastGroup}
}

func (a *bankApp) Apply(op *Op, seq uint64, emit func(*Op)) uint64 {
	var val uint64
	switch op.Name {
	case "transfer":
		from := int(op.Arg) % len(a.bal)
		amt := op.Arg3
		if amt > a.bal[from] {
			amt = a.bal[from]
		}
		a.bal[from] -= amt
		emit(&Op{
			Key:         OpKey{Client: bridgeClient, A: seq, B: 0},
			Dom:         a.eastDom,
			Group:       a.eastGroup,
			Name:        "credit",
			Arg:         op.Arg2,
			Arg3:        amt,
			OriginDom:   op.Dom,
			OriginGroup: op.Group,
		})
		val = amt
	case "credit":
		to := int(op.Arg) % len(a.bal)
		a.bal[to] += op.Arg3
		val = a.bal[to]
	}
	a.hash = mix64(mix64(a.hash, op.keyHash()), val)
	return val
}

func (a *bankApp) Hash() uint64 { return a.hash }

func (a *bankApp) Total() uint64 {
	var sum uint64
	for _, b := range a.bal {
		sum += b
	}
	return sum
}

func (a *bankApp) Clone() App {
	c := *a
	c.bal = append([]uint64(nil), a.bal...)
	return &c
}

// fanoutApp is the streaming workload's state machine: each "pub" op
// appends one item; the returned value is the item's position in the
// published order, which the gateways push to subscribers.
type fanoutApp struct {
	items uint64
	hash  uint64
}

func newFanoutApp() App { return &fanoutApp{} }

func (a *fanoutApp) Apply(op *Op, seq uint64, emit func(*Op)) uint64 {
	a.items++
	a.hash = mix64(mix64(a.hash, op.keyHash()), a.items)
	return a.items
}

func (a *fanoutApp) Hash() uint64  { return a.hash }
func (a *fanoutApp) Total() uint64 { return a.items }
func (a *fanoutApp) Clone() App    { c := *a; return &c }
