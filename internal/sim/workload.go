package sim

// domSpec describes one simulated domain's topology: size protocol
// nodes, of which the last `gateways` double as gateways; every node
// replicates all `groups` object groups.
type domSpec struct {
	size     int
	gateways int
	groups   int
	app      func(group int) App
}

// workloadSpec wires a workload: topology, client population, the op
// generator, and the checker options its invariants need.
type workloadSpec struct {
	name         string
	doms         []domSpec
	clients      int
	opsPerClient int
	subscribers  int
	fanoutItems  uint64
	bankInitial  uint64
	nextOp       func(c *client) *Op
}

func (s *workloadSpec) checkOpts() CheckOpts {
	return CheckOpts{
		Bank:        s.bankInitial != 0,
		BankInitial: s.bankInitial,
		Fanout:      s.subscribers > 0,
		FanoutItems: s.fanoutItems,
		Subscribers: s.subscribers,
	}
}

// Workload names accepted by Config.Workload.
const (
	WorkloadCounter = "counter"
	WorkloadBank    = "bank"
	WorkloadFanout  = "fanout"
)

// Workloads lists the available workload names.
func Workloads() []string { return []string{WorkloadCounter, WorkloadBank, WorkloadFanout} }

const (
	bankAccounts = 4
	bankFunding  = 1000
)

func specFor(name string) *workloadSpec {
	switch name {
	case WorkloadBank:
		spec := &workloadSpec{
			name: WorkloadBank,
			doms: []domSpec{
				{size: 5, gateways: 2, groups: 1, app: func(int) App {
					return newBankApp(bankAccounts, bankFunding, 1, 0)
				}},
				{size: 5, gateways: 2, groups: 1, app: func(int) App {
					return newBankApp(bankAccounts, bankFunding, -1, 0)
				}},
			},
			clients:      3,
			opsPerClient: 10,
			bankInitial:  2 * bankAccounts * bankFunding,
		}
		spec.nextOp = func(c *client) *Op {
			if int(c.seq) >= spec.opsPerClient {
				return nil
			}
			c.seq++
			return &Op{
				Key:       OpKey{Client: c.id, B: c.seq},
				Dom:       0,
				Group:     0,
				Name:      "transfer",
				Arg:       uint64(c.rng.Intn(bankAccounts)),
				Arg2:      uint64(c.rng.Intn(bankAccounts)),
				Arg3:      1 + uint64(c.rng.Intn(50)),
				OriginDom: -1,
				ReplyTo:   string(c.nid),
			}
		}
		return spec
	case WorkloadFanout:
		spec := &workloadSpec{
			name:         WorkloadFanout,
			doms:         []domSpec{{size: 5, gateways: 2, groups: 1, app: func(int) App { return newFanoutApp() }}},
			clients:      1,
			opsPerClient: 20,
			subscribers:  3,
			fanoutItems:  20,
		}
		spec.nextOp = func(c *client) *Op {
			if int(c.seq) >= spec.opsPerClient {
				return nil
			}
			c.seq++
			return &Op{
				Key:       OpKey{Client: c.id, B: c.seq},
				Dom:       0,
				Group:     0,
				Name:      "pub",
				Arg:       c.seq,
				OriginDom: -1,
				ReplyTo:   string(c.nid),
			}
		}
		return spec
	default:
		spec := &workloadSpec{
			name:         WorkloadCounter,
			doms:         []domSpec{{size: 7, gateways: 2, groups: 2, app: func(int) App { return newCounterApp() }}},
			clients:      4,
			opsPerClient: 15,
		}
		spec.nextOp = func(c *client) *Op {
			if int(c.seq) >= spec.opsPerClient {
				return nil
			}
			c.seq++
			return &Op{
				Key:       OpKey{Client: c.id, B: c.seq},
				Dom:       0,
				Group:     int(c.seq) % spec.doms[0].groups,
				Name:      "add",
				Arg:       1 + uint64(c.rng.Intn(100)),
				OriginDom: -1,
				ReplyTo:   string(c.nid),
			}
		}
		return spec
	}
}
