package sim

import (
	"fmt"
	"sort"
)

// Violation is one invariant breach found by the checkers. Invariant
// names are stable strings (used by tests and the simrun driver to
// classify failures); Detail carries enough context to locate the
// breach in the trace dump.
type Violation struct {
	Invariant string
	Detail    string
}

func (v Violation) String() string { return v.Invariant + ": " + v.Detail }

// Invariant names reported by Check.
const (
	InvExactlyOnce  = "exactly-once"
	InvSeqAgreement = "seq-agreement"
	InvTotalOrder   = "total-order"
	InvConvergence  = "convergence"
	InvCompletion   = "completion"
	InvViewAgree    = "view-agreement"
	InvConservation = "conservation"
	InvFanoutOrder  = "fanout-order"
	InvFanoutDeliv  = "fanout-delivery"
)

// CheckOpts parameterizes Check for the workload that produced the
// trace. Liveness checks (completion, fan-out delivery) always apply:
// schedules force-heal every fault well before the virtual deadline,
// so a run that still has unfinished operations at the end has lost an
// admitted request, which is precisely the breach the paper's gateway
// records exist to prevent.
type CheckOpts struct {
	// Bank enables the conservation-of-money check with the given
	// initial total across all accounts in all domains.
	Bank        bool
	BankInitial uint64
	// Fanout enables the streaming order/delivery checks with the
	// given published item count and subscriber count.
	Fanout      bool
	FanoutItems uint64
	Subscribers int
}

// execKey identifies one operation within one group.
type execKey struct {
	Dom   int
	Group int
	Op    OpKey
}

// Check audits a recorded trace against the paper's invariants and
// returns every violation found (empty means the run passed). It is
// pure: callers may re-run it on dumped traces.
func Check(events []Event, opts CheckOpts) []Violation {
	var out []Violation

	// --- exactly-once and sequence agreement over exec events ---
	// A restart wipes a replica's volatile state, and recovery replays
	// the adopted log — so exactly-once holds per node *incarnation*
	// (the restart event bounds them), while sequence agreement holds
	// globally across incarnations: replay must land every op at the
	// seq the original execution assigned.
	type perNode struct {
		node int
		inc  int
		seq  uint64
	}
	execs := make(map[execKey][]perNode)
	incarnation := make(map[[2]int]int)
	perNodeSeqs := make(map[[3]int][]uint64) // (dom,node,inc) -> seqs in exec order
	var keys []execKey
	for _, e := range events {
		nk := [2]int{e.Dom, e.Node}
		if e.Kind == EvRestart {
			incarnation[nk]++
			continue
		}
		if e.Kind != EvExec {
			continue
		}
		k := execKey{Dom: e.Dom, Group: e.Group, Op: e.Op}
		if len(execs[k]) == 0 {
			keys = append(keys, k)
		}
		inc := incarnation[nk]
		execs[k] = append(execs[k], perNode{node: e.Node, inc: inc, seq: e.Seq})
		perNodeSeqs[[3]int{e.Dom, e.Node, inc}] = append(perNodeSeqs[[3]int{e.Dom, e.Node, inc}], e.Seq)
	}
	for _, k := range keys {
		seen := make(map[[2]int]int) // (node, incarnation) -> exec count
		for _, pn := range execs[k] {
			seen[[2]int{pn.node, pn.inc}]++
		}
		var incs [][2]int
		for ni := range seen {
			incs = append(incs, ni)
		}
		sort.Slice(incs, func(i, j int) bool {
			if incs[i][0] != incs[j][0] {
				return incs[i][0] < incs[j][0]
			}
			return incs[i][1] < incs[j][1]
		})
		for _, ni := range incs {
			if seen[ni] > 1 {
				out = append(out, Violation{InvExactlyOnce, fmt.Sprintf(
					"op %s executed %d times on d%d/n%d/g%d", k.Op, seen[ni], k.Dom, ni[0], k.Group)})
			}
		}
		first := execs[k][0].seq
		for _, pn := range execs[k][1:] {
			if pn.seq != first {
				out = append(out, Violation{InvSeqAgreement, fmt.Sprintf(
					"op %s executed at seq %d on d%d/n%d but seq %d elsewhere (g%d)",
					k.Op, pn.seq, k.Dom, pn.node, first, k.Group)})
				break
			}
		}
	}

	// --- total order: each replica incarnation's execution stream must
	// be strictly increasing in the agreed global sequence. Together
	// with sequence agreement this implies a single total order across
	// surviving replicas: any pairwise inversion would force a decrease
	// at one of the two nodes. ---
	var nodeKeys [][3]int
	for nk := range perNodeSeqs {
		nodeKeys = append(nodeKeys, nk)
	}
	sort.Slice(nodeKeys, func(i, j int) bool {
		for x := 0; x < 3; x++ {
			if nodeKeys[i][x] != nodeKeys[j][x] {
				return nodeKeys[i][x] < nodeKeys[j][x]
			}
		}
		return false
	})
	for _, nk := range nodeKeys {
		seqs := perNodeSeqs[nk]
		for i := 1; i < len(seqs); i++ {
			if seqs[i] <= seqs[i-1] {
				out = append(out, Violation{InvTotalOrder, fmt.Sprintf(
					"d%d/n%d executed seq %d after seq %d", nk[0], nk[1], seqs[i], seqs[i-1])})
				break
			}
		}
	}

	// --- completion: every issued operation must complete. This is the
	// "no lost admitted requests" audit: an op a gateway admitted but
	// never answered keeps its client retrying past the deadline. ---
	issued := make(map[execKey]bool)
	replied := make(map[execKey]bool)
	var issueOrder []execKey
	for _, e := range events {
		k := execKey{Dom: e.Dom, Group: e.Group, Op: e.Op}
		switch e.Kind {
		case EvIssue:
			if !issued[k] {
				issued[k] = true
				issueOrder = append(issueOrder, k)
			}
		case EvReplyOK:
			replied[k] = true
		}
	}
	for _, k := range issueOrder {
		if !replied[k] {
			out = append(out, Violation{InvCompletion, fmt.Sprintf(
				"op %s (d%d/g%d) issued but never completed", k.Op, k.Dom, k.Group)})
		}
	}

	// --- convergence: at end of run, every surviving replica of a group
	// must hold the identical state hash (order-sensitive, so a replica
	// that executed the same multiset in a different order diverges). ---
	finals := make(map[[2]int]map[int]uint64) // (dom,group) -> node -> hash
	var finalKeys [][2]int
	for _, e := range events {
		if e.Kind != EvFinalState {
			continue
		}
		gk := [2]int{e.Dom, e.Group}
		if finals[gk] == nil {
			finals[gk] = make(map[int]uint64)
			finalKeys = append(finalKeys, gk)
		}
		finals[gk][e.Node] = e.Hash
	}
	sort.Slice(finalKeys, func(i, j int) bool {
		if finalKeys[i][0] != finalKeys[j][0] {
			return finalKeys[i][0] < finalKeys[j][0]
		}
		return finalKeys[i][1] < finalKeys[j][1]
	})
	for _, gk := range finalKeys {
		byNode := finals[gk]
		var nodes []int
		for n := range byNode {
			nodes = append(nodes, n)
		}
		sort.Ints(nodes)
		for _, n := range nodes[1:] {
			if byNode[n] != byNode[nodes[0]] {
				out = append(out, Violation{InvConvergence, fmt.Sprintf(
					"d%d/g%d: n%d state %016x != n%d state %016x",
					gk[0], gk[1], n, byNode[n], nodes[0], byNode[nodes[0]])})
			}
		}
	}

	// --- view agreement: every member that installed a given ring id
	// must agree on its membership; only quorum rings matter (minority
	// fragments may gather transient views while partitioned). ---
	views := make(map[string]map[int]string) // "d<dom>/<ringid>" -> node -> member note
	var viewKeys []string
	for _, e := range events {
		if e.Kind != EvRing || !e.Quorum {
			continue
		}
		id, members := splitRingNote(e.Note)
		vk := fmt.Sprintf("d%d/%s", e.Dom, id)
		if views[vk] == nil {
			views[vk] = make(map[int]string)
			viewKeys = append(viewKeys, vk)
		}
		views[vk][e.Node] = members
	}
	sort.Strings(viewKeys)
	for _, vk := range viewKeys {
		byNode := views[vk]
		var nodes []int
		for n := range byNode {
			nodes = append(nodes, n)
		}
		sort.Ints(nodes)
		for _, n := range nodes[1:] {
			if byNode[n] != byNode[nodes[0]] {
				out = append(out, Violation{InvViewAgree, fmt.Sprintf(
					"ring %s: n%d installed members %s but n%d installed %s",
					vk, n, byNode[n], nodes[0], byNode[nodes[0]])})
			}
		}
	}

	// --- bank: conservation of money. Each bank replica reports its
	// domain's balance total in the Val of its final_state event; the
	// grand total across one representative replica per (dom,group) must
	// equal the initial funding. A duplicated bridge credit inflates it;
	// a lost one deflates it. ---
	if opts.Bank {
		var total uint64
		for _, gk := range finalKeys {
			byNode := finals[gk]
			var nodes []int
			for n := range byNode {
				nodes = append(nodes, n)
			}
			sort.Ints(nodes)
			if len(nodes) == 0 {
				continue
			}
			// Val is recorded alongside Hash; find it from the events.
			for _, e := range events {
				if e.Kind == EvFinalState && e.Dom == gk[0] && e.Group == gk[1] && e.Node == nodes[0] {
					total += e.Val
					break
				}
			}
		}
		if total != opts.BankInitial {
			out = append(out, Violation{InvConservation, fmt.Sprintf(
				"total balance %d != initial funding %d", total, opts.BankInitial)})
		}
	}

	// --- fan-out: each subscriber must accept items in the published
	// order with no gaps, and (liveness) accept all of them. ---
	if opts.Fanout {
		recv := make(map[int][]uint64) // subscriber node -> items in accept order
		var subs []int
		for _, e := range events {
			if e.Kind != EvRecv {
				continue
			}
			if len(recv[e.Node]) == 0 {
				subs = append(subs, e.Node)
			}
			recv[e.Node] = append(recv[e.Node], e.Val)
		}
		sort.Ints(subs)
		for _, s := range subs {
			items := recv[s]
			for i, it := range items {
				if it != uint64(i+1) {
					out = append(out, Violation{InvFanoutOrder, fmt.Sprintf(
						"subscriber n%d accepted item %d at position %d", s, it, i+1)})
					break
				}
			}
			if uint64(len(items)) != opts.FanoutItems {
				out = append(out, Violation{InvFanoutDeliv, fmt.Sprintf(
					"subscriber n%d accepted %d of %d items", s, len(items), opts.FanoutItems)})
			}
		}
		if len(subs) != opts.Subscribers {
			out = append(out, Violation{InvFanoutDeliv, fmt.Sprintf(
				"%d of %d subscribers accepted anything", len(subs), opts.Subscribers)})
		}
	}

	return out
}

// splitRingNote splits a ring event note "e<epoch>.i<node>[members]"
// into the ring id and the member list.
func splitRingNote(note string) (id, members string) {
	for i := 0; i < len(note); i++ {
		if note[i] == '[' {
			return note[:i], note[i:]
		}
	}
	return note, ""
}
