package sim

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"eternalgw/internal/faultinject"
	"eternalgw/internal/memnet"
)

const (
	baseLoss   = 0.005
	baseDup    = 0.005
	healAfter  = 600 * time.Millisecond
	settleWait = 20 * time.Millisecond
	pollEvery  = 4 * time.Millisecond
)

// Mutations are the checker teeth: each knob disables one safety
// mechanism the paper's design depends on, and the acceptance gate for
// the whole harness is that the checkers then find a violating seed
// quickly. A harness that stays green with these on is not checking
// anything.
type Mutations struct {
	// DisableDedup turns off replica-side duplicate detection, so a
	// reissued or doubly-admitted operation executes twice.
	DisableDedup bool
	// DisableMembershipSync skips the donor-snapshot state transfer at
	// ring install, so merging and recovering nodes keep stale state.
	DisableMembershipSync bool
}

// Config parameterizes one simulated run. Everything nondeterministic
// about the run derives from Seed; two runs with equal Configs produce
// byte-for-byte identical traces.
type Config struct {
	Seed uint64
	// Schedule pins a fault class (see Schedules); empty draws one from
	// the seed's schedule stream.
	Schedule string
	// Workload picks the scenario (see Workloads); empty means counter.
	Workload string
	// Mutations disable safety mechanisms to validate the checkers.
	Mutations Mutations
	// MaxVirtual bounds the run in virtual time (default 5s); hitting
	// it is reported as a liveness failure by the completion checker.
	MaxVirtual time.Duration
	// Metrics, when non-nil, receives run counters.
	Metrics *Metrics
}

// RunStats summarizes one run.
type RunStats struct {
	Events     int
	VirtualMS  int64
	Execs      uint64
	Dedups     uint64
	DupResps   uint64
	Reissues   uint64
	RecordHits uint64
	Faults     uint64
	Rings      uint64
}

// Result is the outcome of one simulated run.
type Result struct {
	Seed       uint64
	Schedule   string
	Workload   string
	Planned    []faultinject.FiredStep
	Fired      []faultinject.FiredStep
	Violations []Violation
	Trace      *Trace
	TraceHash  uint64
	Stats      RunStats
	// Reason is "completed" or "deadline".
	Reason string
}

// domainSim is one domain's runtime topology.
type domainSim struct {
	idx      int
	size     int
	quorum   int
	groups   int
	gateways []int
	gwSet    map[int]bool
	nodes    []*node
	appFn    func(group int) App

	lastHolder int
}

func (d *domainSim) isGateway(i int) bool { return d.gwSet[i] }

func (d *domainSim) newApps() map[int]App {
	m := make(map[int]App, d.groups)
	for g := 0; g < d.groups; g++ {
		m[g] = d.appFn(g)
	}
	return m
}

type world struct {
	cfg   Config
	spec  *workloadSpec
	clock *Clock
	net   *memnet.Network
	msgs  []*msg

	doms        []*domainSim
	clients     []*client
	subscribers []*subscriber

	order    []memnet.NodeID
	eps      map[memnet.NodeID]*memnet.Endpoint
	handlers map[memnet.NodeID]func(*msg)

	plan      *faultinject.Plan
	schedName string

	trace *Trace
	stats RunStats

	workers         int
	partitionActive bool
	stormActive     bool
	settlePending   bool
	done            bool
	reason          string
}

// Run executes one simulated run and returns its audited result.
func Run(cfg Config) *Result {
	w := newWorld(cfg)
	w.boot()
	for !w.done {
		if !w.clock.Step() {
			w.finalize("stalled")
			break
		}
		w.drain()
	}
	return w.result()
}

func newWorld(cfg Config) *world {
	if cfg.MaxVirtual <= 0 {
		cfg.MaxVirtual = 5 * time.Second
	}
	w := &world{
		cfg:      cfg,
		spec:     specFor(cfg.Workload),
		clock:    NewClock(),
		trace:    NewTrace(),
		eps:      make(map[memnet.NodeID]*memnet.Endpoint),
		handlers: make(map[memnet.NodeID]func(*msg)),
	}
	w.net = memnet.New(
		memnet.WithSeed(int64(faultinject.Split(cfg.Seed, 1))),
		memnet.WithClock(w.clock),
		memnet.WithMaxDelay(linkMaxDelay),
		memnet.WithLoss(baseLoss),
		memnet.WithDuplication(baseDup),
	)
	return w
}

func (w *world) attach(id memnet.NodeID, h func(*msg)) *memnet.Endpoint {
	ep, err := w.net.Attach(id)
	if err != nil {
		panic(err) // topology ids are unique by construction
	}
	w.eps[id] = ep
	w.handlers[id] = h
	w.order = append(w.order, id)
	return ep
}

func (w *world) boot() {
	// Topology.
	for di, ds := range w.spec.doms {
		d := &domainSim{idx: di, size: ds.size, quorum: ds.size/2 + 1, groups: ds.groups, appFn: ds.app, gwSet: make(map[int]bool)}
		for g := ds.size - ds.gateways; g < ds.size; g++ {
			d.gateways = append(d.gateways, g)
			d.gwSet[g] = true
		}
		for i := 0; i < ds.size; i++ {
			n := &node{
				w: w, dom: di, idx: i, id: nodeName(di, i), isGW: d.gwSet[i],
				apps:     nil, // set below once d is registered
				executed: make(map[int]map[OpKey]execRec),
				outbox:   make(map[OpKey]*Op),
				acked:    make(map[OpKey]bool),
				records:  make(map[OpKey]*gwRecord),
				members:  []int{i},
			}
			n.ep = w.attach(n.id, n.handle)
			d.nodes = append(d.nodes, n)
		}
		w.doms = append(w.doms, d)
		for _, n := range d.nodes {
			n.apps = d.newApps()
			for g := range n.apps {
				n.executed[g] = make(map[OpKey]execRec)
			}
		}
	}

	gw0 := make([]memnet.NodeID, 0, len(w.doms[0].gateways))
	for _, g := range w.doms[0].gateways {
		gw0 = append(gw0, nodeName(0, g))
	}

	// Clients (all attached to domain 0's gateways; bridge traffic is
	// how other domains get work).
	for i := 0; i < w.spec.clients; i++ {
		c := &client{
			w: w, dom: 0, idx: i, id: uint64(i + 1), nid: clientName(i),
			gws: gw0, total: w.spec.opsPerClient, nextOp: w.spec.nextOp,
			rng: rand.New(rand.NewSource(int64(faultinject.Split(w.cfg.Seed, 100+uint64(i))))),
		}
		c.ep = w.attach(c.nid, c.handle)
		w.clients = append(w.clients, c)
	}
	for i := 0; i < w.spec.subscribers; i++ {
		s := &subscriber{w: w, dom: 0, idx: i, nid: subscriberName(i), gws: gw0, total: w.spec.fanoutItems}
		s.ep = w.attach(s.nid, s.handle)
		w.subscribers = append(w.subscribers, s)
	}
	w.workers = len(w.clients) + len(w.subscribers)

	// Fault schedule.
	schedRng := rand.New(rand.NewSource(int64(faultinject.Split(w.cfg.Seed, 3))))
	w.schedName = w.cfg.Schedule
	if w.schedName == "" {
		names := Schedules()
		w.schedName = names[schedRng.Intn(len(names))]
	}
	w.plan = faultinject.Generate(schedRng, w.buildSchedule(w.schedName, schedRng)...)

	// Boot events: install the initial full rings, start everything.
	w.clock.AfterFunc(0, func() {
		for _, d := range w.doms {
			ring := ringID{epoch: 1, installer: 0}
			all := make([]int, d.size)
			for i := range all {
				all[i] = i
			}
			for _, n := range d.nodes {
				n.ring = ring
				n.members = all
				n.epoch = 1
				n.lastQuorum = ring
				n.trace(Event{Kind: EvRing, Quorum: true, Note: fmt.Sprintf("%s%v", ring, all)})
				w.stats.Rings++
				n.start()
			}
			t := &token{ring: ring, rot: 1, max: 0, ar: make(map[int]uint64), rtr: make(map[uint64]bool)}
			for _, m := range all {
				t.ar[m] = 0
			}
			d.nodes[0].holdToken(t)
		}
		for _, c := range w.clients {
			c.start()
		}
		for _, s := range w.subscribers {
			s.start()
		}
	})
	if w.schedName != SchedCalm {
		w.clock.AfterFunc(healAfter, w.forceHeal)
	}
	w.clock.AfterFunc(w.cfg.MaxVirtual, func() {
		if !w.done {
			w.finalize("deadline")
		}
	})
}

// send appends m to the world's message table and transmits its handle
// as a real memnet datagram, so loss, duplication, delay, partitions
// and crashes all apply to it.
func (w *world) send(ep *memnet.Endpoint, to memnet.NodeID, m *msg) {
	idx := len(w.msgs)
	w.msgs = append(w.msgs, m)
	_ = ep.Send(to, handle(idx)) // a crashed sender's error is the drop itself
}

// drain processes every queued inbox packet, in sorted endpoint order,
// until the network is quiet. Handlers may send more (including
// zero-delay deliveries), hence the outer loop.
func (w *world) drain() {
	for {
		progress := false
		for _, id := range w.order {
			ep := w.eps[id]
			h := w.handlers[id]
			for {
				var pkt memnet.Packet
				select {
				case pkt = <-ep.Recv():
				default:
					pkt.Payload = nil
				}
				if pkt.Payload == nil {
					break
				}
				progress = true
				if w.done {
					continue
				}
				if idx := handleIndex(pkt.Payload); idx >= 0 && idx < len(w.msgs) {
					h(w.msgs[idx])
				}
			}
		}
		if !progress {
			return
		}
	}
}

// record appends one trace event and updates the run counters.
func (w *world) record(e Event) {
	w.trace.Add(e)
	w.stats.Events++
	switch e.Kind {
	case EvExec:
		w.stats.Execs++
	case EvDedup:
		w.stats.Dedups++
	case EvDupResp:
		w.stats.DupResps++
	case EvReissue:
		w.stats.Reissues++
	case EvRecordHit:
		w.stats.RecordHits++
	case EvFault:
		w.stats.Faults++
	}
}

// opCompleted drives the fault plan: schedule triggers are operation
// counts, so fault timing is reproducible regardless of how fast the
// virtual run proceeds.
func (w *world) opCompleted() {
	w.plan.Tick()
}

// workerDone is called by each client/subscriber when its workload is
// exhausted; when all are done the world starts polling for
// quiescence.
func (w *world) workerDone() {
	w.workers--
	if w.workers == 0 && !w.settlePending {
		w.settlePending = true
		w.clock.AfterFunc(settleWait, w.quiescePoll)
	}
}

func (w *world) quiescePoll() {
	if w.done {
		return
	}
	if w.quiesced() {
		w.finalize("completed")
		return
	}
	w.clock.AfterFunc(pollEvery, w.quiescePoll)
}

// quiesced reports whether the whole system has converged: no fault in
// force, every domain back to one full quorum ring, every log fully
// delivered and executed, nothing pending anywhere, every bridge op
// acknowledged, and no gateway owing anyone an answer.
func (w *world) quiesced() bool {
	if w.partitionActive {
		return false
	}
	for _, d := range w.doms {
		if w.crashedCount(d.idx) > 0 {
			return false
		}
		ref := d.nodes[0]
		if ref.gathering || len(ref.members) != d.size {
			return false
		}
		for _, n := range d.nodes {
			if n.gathering || n.frozen || n.ring != ref.ring {
				return false
			}
			if n.delivered != ref.delivered || n.execPos != n.delivered {
				return false
			}
			if uint64(len(n.log)) != n.delivered || len(n.pending) > 0 {
				return false
			}
			for k := range n.outbox {
				if !n.acked[k] {
					return false
				}
			}
			if n.isGW {
				for _, k := range n.recOrder {
					rec := n.records[k]
					if rec.interested && !rec.replied {
						return false
					}
				}
			}
		}
	}
	return true
}

// finalize records each surviving replica's final state, closes the
// trace and stops the run.
func (w *world) finalize(reason string) {
	for _, d := range w.doms {
		for _, n := range d.nodes {
			if n.crashed {
				continue
			}
			groups := make([]int, 0, len(n.apps))
			for g := range n.apps {
				groups = append(groups, g)
			}
			sort.Ints(groups)
			for _, g := range groups {
				n.trace(Event{Kind: EvFinalState, Group: g, Hash: n.apps[g].Hash(), Val: n.apps[g].Total()})
			}
		}
	}
	w.record(Event{T: w.clock.Now(), Kind: EvEnd, Dom: -1, Node: -1, Group: -1, Note: reason})
	w.reason = reason
	w.done = true
}

func (w *world) result() *Result {
	w.stats.VirtualMS = w.clock.Now() / int64(time.Millisecond)
	res := &Result{
		Seed:       w.cfg.Seed,
		Schedule:   w.schedName,
		Workload:   w.spec.name,
		Planned:    w.plan.Steps(),
		Fired:      w.plan.FiredAt(),
		Trace:      w.trace,
		TraceHash:  w.trace.Hash(),
		Stats:      w.stats,
		Reason:     w.reason,
	}
	res.Violations = Check(w.trace.Events(), w.spec.checkOpts())
	if m := w.cfg.Metrics; m != nil {
		m.observe(res)
	}
	return res
}
