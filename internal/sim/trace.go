package sim

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync"
)

// OpKey is the simulation's operation identifier: the paper's
// (client id, operation sequence) pair that makes duplicate detection
// possible. Real-stack adapters map replication.OperationID into the
// A/B fields (ParentTS, ChildSeq); the sim's own clients use A=0 and a
// per-client counter in B.
type OpKey struct {
	Client uint64
	A, B   uint64
}

func (k OpKey) String() string { return fmt.Sprintf("%d.%d.%d", k.Client, k.A, k.B) }

// Event kinds recorded in a trace. The set is the vocabulary the
// invariant checkers read; docs/SIMULATION.md documents each.
const (
	EvIssue      = "issue"       // client issued a new operation
	EvReissue    = "reissue"     // client reissued after timeout/failover (Val = attempt)
	EvConnFail   = "conn_fail"   // client attempt hit a dead gateway
	EvExec       = "exec"        // replica executed an invocation (Seq = total-order position, Hash = state hash after)
	EvDedup      = "dedup"       // replica suppressed a duplicate invocation
	EvRespRec    = "resp"        // gateway recorded the first response for an op
	EvDupResp    = "dup_resp"    // gateway suppressed a duplicate response copy
	EvRecordHit  = "record_hit"  // gateway answered a reissue from its record
	EvReplyOK    = "reply_ok"    // client completed an operation (Val = attempt)
	EvReplyDup   = "reply_dup"   // client ignored a duplicate reply
	EvRestart    = "restart"     // crashed node rejoined with volatile state wiped
	EvRing       = "ring"        // node installed a ring (Note = members, Quorum flag)
	EvView       = "view"        // node installed a group membership view (Val = view number)
	EvFault      = "fault"       // schedule action fired (Note = name)
	EvNestedAck  = "nested_ack"  // bridge sender saw its nested invocation acknowledged
	EvPush       = "push"        // gateway pushed a fan-out item (Val = item)
	EvRecv       = "recv"        // subscriber accepted a fan-out item in order (Val = item)
	EvFinalState = "final_state" // replica's state hash at end of run
	EvEnd        = "end"         // run finished (Note = reason)
)

// Event is one record of a run's trace. Fields not meaningful for a
// kind are zero; Node/Dom/Group use -1 for "not applicable" so zero
// values stay meaningful.
type Event struct {
	T      int64 // virtual nanoseconds
	Kind   string
	Dom    int
	Node   int
	Group  int
	Op     OpKey
	Seq    uint64
	Val    uint64
	Hash   uint64
	Quorum bool
	Note   string
}

// line renders the event in the canonical byte-stable form used for
// replay comparison and artifact dumps.
func (e Event) line() string {
	return fmt.Sprintf("%d\t%s\td%d\tn%d\tg%d\t%s\tseq=%d\tval=%d\thash=%016x\tq=%t\t%s",
		e.T, e.Kind, e.Dom, e.Node, e.Group, e.Op, e.Seq, e.Val, e.Hash, e.Quorum, e.Note)
}

// Trace accumulates the events of one run in order. The zero value is
// not usable; call NewTrace. Trace is safe for concurrent appenders so
// the same recorder serves the single-threaded simulator and the real
// multi-goroutine stack (sim_realstack_test.go); within the simulator
// the lock is uncontended.
type Trace struct {
	mu     sync.Mutex
	events []Event
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Add appends one event.
func (t *Trace) Add(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns the recorded events in order.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Dump renders the whole trace in the canonical line form, one event
// per line — the artifact format replayed seeds are compared against.
func (t *Trace) Dump() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	var b strings.Builder
	for _, e := range t.events {
		b.WriteString(e.line())
		b.WriteByte('\n')
	}
	return b.String()
}

// Hash returns the FNV-64a digest of the canonical dump: the quantity
// the determinism gate pins — identical seeds must produce identical
// hashes, byte for byte.
func (t *Trace) Hash() uint64 {
	h := fnv.New64a()
	t.mu.Lock()
	for _, e := range t.events {
		fmt.Fprintln(h, e.line())
	}
	t.mu.Unlock()
	return h.Sum64()
}

// mix64 folds x into h (splitmix-style), the state-hash combiner used
// by replicas and apps.
func mix64(h, x uint64) uint64 {
	z := h ^ (x + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2))
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
