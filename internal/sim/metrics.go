package sim

import "eternalgw/internal/obs"

// Metrics are the simulation harness's observability counters,
// aggregated across runs (the simrun driver registers one set and
// feeds every seed's result through it). All names are documented in
// docs/OBSERVABILITY.md.
type Metrics struct {
	runs       *obs.Counter
	violations *obs.Counter
	events     *obs.Counter
	faults     *obs.Counter
	reissues   *obs.Counter
	dedups     *obs.Counter
	virtualMS  *obs.Counter
}

// NewMetrics registers the simulation counters on r (nil-safe: with a
// nil registry the counters work but are never rendered).
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		runs:       r.Counter("eternalgw_sim_runs_total", "Simulated runs executed.", nil),
		violations: r.Counter("eternalgw_sim_violations_total", "Invariant violations found by the simulation checkers.", nil),
		events:     r.Counter("eternalgw_sim_events_total", "Trace events recorded across simulated runs.", nil),
		faults:     r.Counter("eternalgw_sim_faults_total", "Fault-schedule actions fired across simulated runs.", nil),
		reissues:   r.Counter("eternalgw_sim_reissues_total", "Client reissues observed across simulated runs.", nil),
		dedups:     r.Counter("eternalgw_sim_dedup_total", "Duplicate invocations suppressed across simulated runs.", nil),
		virtualMS:  r.Counter("eternalgw_sim_virtual_ms_total", "Virtual milliseconds simulated across runs.", nil),
	}
}

func (m *Metrics) observe(res *Result) {
	m.runs.Inc()
	m.violations.Add(uint64(len(res.Violations)))
	m.events.Add(uint64(res.Stats.Events))
	m.faults.Add(res.Stats.Faults)
	m.reissues.Add(res.Stats.Reissues)
	m.dedups.Add(res.Stats.Dedups)
	m.virtualMS.Add(uint64(res.Stats.VirtualMS))
}
