package sim

import (
	"testing"
	"time"
)

// TestClockOrdering pins the discrete-event contract: callbacks fire in
// (time, scheduling order) and Now is the firing event's timestamp.
func TestClockOrdering(t *testing.T) {
	c := NewClock()
	var got []int
	c.After(3*time.Millisecond, func() { got = append(got, 3) })
	c.After(1*time.Millisecond, func() { got = append(got, 1) })
	c.After(1*time.Millisecond, func() { got = append(got, 2) }) // same time: FIFO
	c.After(2*time.Millisecond, func() {
		if c.Now() != int64(2*time.Millisecond) {
			t.Errorf("Now inside callback = %d, want %d", c.Now(), int64(2*time.Millisecond))
		}
		got = append(got, 21)
	})
	for c.Step() {
	}
	want := []int{1, 2, 21, 3}
	if len(got) != len(want) {
		t.Fatalf("fired %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fired %v, want %v", got, want)
		}
	}
}

func TestClockTimerStop(t *testing.T) {
	c := NewClock()
	fired := false
	tm := c.After(time.Millisecond, func() { fired = true })
	tm.Stop()
	for c.Step() {
	}
	if fired {
		t.Fatal("stopped timer fired")
	}
	if c.Pending() != 0 {
		t.Fatalf("Pending = %d after drain", c.Pending())
	}
}

// TestClockNestedScheduling checks that callbacks scheduling further
// events keep the virtual time monotone.
func TestClockNestedScheduling(t *testing.T) {
	c := NewClock()
	var times []int64
	var tick func()
	n := 0
	tick = func() {
		times = append(times, c.Now())
		n++
		if n < 5 {
			c.After(time.Millisecond, tick)
		}
	}
	c.After(time.Millisecond, tick)
	for c.Step() {
	}
	if len(times) != 5 {
		t.Fatalf("ticked %d times, want 5", len(times))
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			t.Fatalf("virtual time not monotone: %v", times)
		}
	}
}
