package sim

import (
	"fmt"
	"math/rand"
	"time"

	"eternalgw/internal/memnet"
)

const (
	clientBaseTO = 20 * time.Millisecond
	clientMaxTO  = 60 * time.Millisecond
	thinkTime    = 200 * time.Microsecond
	fetchTO      = 3 * time.Millisecond
)

// client is a simulated thin client: closed-loop, one outstanding
// operation, reissuing with the same operation identifier on timeout
// and rotating to the next gateway (the paper's failover discipline —
// correctness rests on the gateways' duplicate suppression, not on the
// client being careful).
type client struct {
	w       *world
	dom     int
	idx     int
	id      uint64 // OpKey.Client
	nid     memnet.NodeID
	ep      *memnet.Endpoint
	gws     []memnet.NodeID
	rng     *rand.Rand
	seq     uint64
	total   int
	done    int
	cur     *Op
	attempt int
	gwIdx   int
	timer   *Timer
	nextOp  func(c *client) *Op
}

func clientName(idx int) memnet.NodeID { return memnet.NodeID(fmt.Sprintf("zc%02d", idx)) }

func (c *client) after(d time.Duration, f func()) *Timer {
	return c.w.clock.After(d, func() {
		if c.w.done {
			return
		}
		f()
	})
}

func (c *client) trace(e Event) {
	e.T = c.w.clock.Now()
	e.Dom = c.dom
	e.Node = c.idx
	c.w.record(e)
}

func (c *client) start() {
	c.after(time.Duration(c.idx)*73*time.Microsecond, c.issueNext)
}

func (c *client) issueNext() {
	op := c.nextOp(c)
	if op == nil {
		c.w.workerDone()
		return
	}
	c.cur = op
	c.attempt = 1
	c.trace(Event{Kind: EvIssue, Group: op.Group, Op: op.Key})
	c.sendCur()
}

func (c *client) sendCur() {
	gw := c.gws[c.gwIdx%len(c.gws)]
	c.w.send(c.ep, gw, &msg{kind: mRequest, dom: c.dom, from: -1, op: c.cur})
	to := clientBaseTO * time.Duration(c.attempt)
	if to > clientMaxTO {
		to = clientMaxTO
	}
	to += time.Duration(c.rng.Int63n(int64(2 * time.Millisecond)))
	if c.timer != nil {
		c.timer.Stop()
	}
	c.timer = c.after(to, c.onTimeout)
}

func (c *client) onTimeout() {
	if c.cur == nil {
		return
	}
	c.attempt++
	c.gwIdx++
	c.trace(Event{Kind: EvReissue, Group: c.cur.Group, Op: c.cur.Key, Val: uint64(c.attempt)})
	c.sendCur()
}

func (c *client) handle(m *msg) {
	if m.kind != mReply {
		return
	}
	if c.cur == nil || m.op.Key != c.cur.Key {
		c.trace(Event{Kind: EvReplyDup, Group: m.op.Group, Op: m.op.Key})
		return
	}
	op := c.cur
	c.cur = nil
	if c.timer != nil {
		c.timer.Stop()
	}
	c.trace(Event{Kind: EvReplyOK, Group: op.Group, Op: op.Key, Val: uint64(c.attempt)})
	c.done++
	c.w.opCompleted()
	c.after(thinkTime+time.Duration(c.rng.Int63n(int64(100*time.Microsecond))), c.issueNext)
}

// subscriber is a fan-out consumer: it accepts pushed items strictly in
// order and backfills gaps by fetching from the gateways' replicated
// publication history, rotating gateways so a crashed one cannot stall
// it.
type subscriber struct {
	w        *world
	dom      int
	idx      int
	nid      memnet.NodeID
	ep       *memnet.Endpoint
	gws      []memnet.NodeID
	next     uint64
	total    uint64
	fetchIdx int
	finished bool
}

func subscriberName(idx int) memnet.NodeID { return memnet.NodeID(fmt.Sprintf("zs%02d", idx)) }

func (s *subscriber) trace(e Event) {
	e.T = s.w.clock.Now()
	e.Dom = s.dom
	e.Node = s.idx
	s.w.record(e)
}

func (s *subscriber) start() {
	s.next = 1
	s.scheduleFetch()
}

func (s *subscriber) handle(m *msg) {
	switch m.kind {
	case mPush:
		s.accept([]uint64{m.val})
	case mItems:
		s.accept(m.items)
	}
}

func (s *subscriber) accept(items []uint64) {
	for _, it := range items {
		if it == s.next {
			s.trace(Event{Kind: EvRecv, Val: it})
			s.next++
		}
	}
	if !s.finished && s.next > s.total {
		s.finished = true
		s.w.workerDone()
	}
}

func (s *subscriber) scheduleFetch() {
	if s.finished {
		return
	}
	s.w.clock.AfterFunc(fetchTO, func() {
		if s.w.done || s.finished {
			return
		}
		gw := s.gws[s.fetchIdx%len(s.gws)]
		s.fetchIdx++
		s.w.send(s.ep, gw, &msg{kind: mFetch, dom: s.dom, from: -1, have: s.next - 1, client: string(s.nid)})
		s.scheduleFetch()
	})
}
