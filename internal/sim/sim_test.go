package sim

import (
	"testing"

	"eternalgw/internal/obs"
)

// TestDeterministicReplay is the replay gate: the same seed must
// produce the identical event trace byte-for-byte, for every workload
// and a fault-heavy schedule class.
func TestDeterministicReplay(t *testing.T) {
	for _, wl := range Workloads() {
		for _, seed := range []uint64{1, 17, 42} {
			cfg := Config{Seed: seed, Workload: wl}
			a := Run(cfg)
			b := Run(cfg)
			if a.TraceHash != b.TraceHash {
				t.Fatalf("wl=%s seed=%d: trace hash %016x != %016x on replay", wl, seed, a.TraceHash, b.TraceHash)
			}
			if a.Trace.Dump() != b.Trace.Dump() {
				t.Fatalf("wl=%s seed=%d: trace dumps differ despite equal hashes", wl, seed)
			}
			if a.Schedule != b.Schedule || a.Reason != b.Reason {
				t.Fatalf("wl=%s seed=%d: run metadata differs: %q/%q vs %q/%q",
					wl, seed, a.Schedule, a.Reason, b.Schedule, b.Reason)
			}
		}
	}
}

// TestInvariantsAcrossClasses sweeps every schedule class against every
// workload with a handful of seeds each. Any invariant violation or a
// run that fails to quiesce before the virtual deadline fails the test
// with the dump pointer a developer needs to replay it.
func TestInvariantsAcrossClasses(t *testing.T) {
	for _, wl := range Workloads() {
		for _, sched := range Schedules() {
			for seed := uint64(0); seed < 5; seed++ {
				res := Run(Config{Seed: seed, Workload: wl, Schedule: sched})
				if res.Reason != "completed" {
					t.Errorf("wl=%s sched=%s seed=%d: run ended with reason %q (replay: simrun -workload %s -schedule %s -seed %d)",
						wl, sched, seed, res.Reason, wl, sched, seed)
				}
				for _, v := range res.Violations {
					t.Errorf("wl=%s sched=%s seed=%d: %s", wl, sched, seed, v)
				}
			}
		}
	}
}

// TestBankAcceptance pins the issue's acceptance bar: the cross-domain
// bank-transfer workload holds conservation-of-money and exactly-once
// under the partition-during-invocation and kill-token-holder classes.
func TestBankAcceptance(t *testing.T) {
	for _, sched := range []string{SchedPartition, SchedKillHolder} {
		for seed := uint64(0); seed < 15; seed++ {
			res := Run(Config{Seed: seed, Workload: WorkloadBank, Schedule: sched})
			if res.Reason != "completed" {
				t.Errorf("sched=%s seed=%d: reason %q", sched, seed, res.Reason)
			}
			for _, v := range res.Violations {
				t.Errorf("sched=%s seed=%d: %s", sched, seed, v)
			}
		}
	}
}

// TestMutationTeeth proves the checkers detect real protocol damage:
// disabling replica-side duplicate suppression or the membership-sync
// snapshot must surface a violating seed within a small budget.
func TestMutationTeeth(t *testing.T) {
	cases := []struct {
		name string
		mut  Mutations
	}{
		{"disable-dedup", Mutations{DisableDedup: true}},
		{"disable-membership-sync", Mutations{DisableMembershipSync: true}},
	}
	for _, tc := range cases {
		found := false
		for seed := uint64(0); seed < 50 && !found; seed++ {
			res := Run(Config{Seed: seed, Mutations: tc.mut})
			found = len(res.Violations) > 0
		}
		if !found {
			t.Errorf("%s: no violating seed in 50 — the checkers have lost their teeth", tc.name)
		}
	}
}

// TestRunMetrics checks the sim counters aggregate over runs and render
// through the standard registry.
func TestRunMetrics(t *testing.T) {
	r := obs.NewRegistry()
	m := NewMetrics(r)
	for seed := uint64(0); seed < 3; seed++ {
		res := Run(Config{Seed: seed, Metrics: m})
		if res.Stats.Events == 0 {
			t.Fatalf("seed %d: no events recorded", seed)
		}
	}
	if got := m.runs.Value(); got != 3 {
		t.Fatalf("eternalgw_sim_runs_total = %d, want 3", got)
	}
	if m.events.Value() == 0 {
		t.Fatal("eternalgw_sim_events_total stayed zero")
	}
}

// TestScheduleDescribable ensures every class builds a plan the
// artifact dump can describe, and that calm runs stay fault-free.
func TestScheduleDescribable(t *testing.T) {
	res := Run(Config{Seed: 7, Schedule: SchedCalm})
	if res.Stats.Faults != 0 {
		t.Fatalf("calm run fired %d faults", res.Stats.Faults)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("calm run violated: %v", res.Violations)
	}
	for _, sched := range Schedules() {
		res := Run(Config{Seed: 3, Schedule: sched})
		if res.Schedule != sched {
			t.Fatalf("requested class %q, ran %q", sched, res.Schedule)
		}
	}
}
