package sim

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// msgKind enumerates the simulated wire messages. The simulation sends
// real datagrams through memnet (so loss, duplication, delay, partition
// and crash apply), but the payload is only an 8-byte handle into the
// world's message table — the protocol model needs no byte codecs.
type msgKind int

const (
	mToken     msgKind = iota // ring token, holder -> successor
	mEntry                    // ordered entry broadcast / retransmission
	mProbe                    // holder's foreign-ring probe (merge detection)
	mJoin                     // membership gather
	mPrepare                  // installer -> members freeze + fresh-state request
	mPrepareAck               // member -> installer fresh joinInfo under freeze
	mSnapReq                  // installer -> donor snapshot request
	mSnap                     // donor -> installer snapshot
	mInstall                  // installer -> members ring install (commit)
	mRequest                  // client -> gateway invocation
	mReply                    // gateway -> client reply
	mBridge                   // replica -> remote gateway nested invocation
	mBridgeAck                // remote gateway -> origin domain ack
	mPush                     // gateway -> subscriber fan-out item
	mFetch                    // subscriber -> gateway backfill request
	mItems                    // gateway -> subscriber backfill reply
)

// ringID identifies one installed ring configuration: a monotonically
// increasing epoch plus the installer that proposed it (lexicographic
// order — the tie-break when concurrent installers in disjoint
// partitions pick the same epoch).
type ringID struct {
	epoch     uint64
	installer int
}

func (r ringID) String() string { return fmt.Sprintf("e%d.i%d", r.epoch, r.installer) }

func (r ringID) less(o ringID) bool {
	if r.epoch != o.epoch {
		return r.epoch < o.epoch
	}
	return r.installer < o.installer
}

// entry is one slot of the replicated log: a client/bridge invocation
// or a response flowing back through the total order (the paper orders
// responses through the domain too, so every gateway's record store
// sees them).
type entry struct {
	op    *Op
	resp  bool
	val   uint64 // response value
	group int
}

// token is the circulating ring token: the highest assigned sequence,
// the per-member all-received vector (Totem's safe-delivery input: the
// minimum over current members is the horizon every member is known to
// have), and the outstanding retransmission requests.
type token struct {
	ring ringID
	rot  uint64
	max  uint64
	ar   map[int]uint64
	rtr  map[uint64]bool
}

func (t *token) clone() *token {
	c := &token{ring: t.ring, rot: t.rot, max: t.max,
		ar: make(map[int]uint64, len(t.ar)), rtr: make(map[uint64]bool, len(t.rtr))}
	for k, v := range t.ar {
		c.ar[k] = v
	}
	for k := range t.rtr {
		c.rtr[k] = true
	}
	return c
}

// sortedRtr returns the requested sequences in increasing order (map
// iteration must never leak into behavior).
func (t *token) sortedRtr() []uint64 {
	out := make([]uint64, 0, len(t.rtr))
	for s := range t.rtr {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// joinInfo is the state summary carried on gather messages; the
// installer uses it to pick the donor: max lastQuorum ring first (a
// member of the latest quorum ring holds every executed position of any
// surviving lineage — the majority-intersection argument), then max
// delivered, then lowest index.
type joinInfo struct {
	idx        int
	epoch      uint64
	lastQuorum ringID
	delivered  uint64
}

func betterDonor(a, b *joinInfo) bool {
	if a.lastQuorum != b.lastQuorum {
		return b.lastQuorum.less(a.lastQuorum)
	}
	if a.delivered != b.delivered {
		return a.delivered > b.delivered
	}
	return a.idx < b.idx
}

// snapshot is the donor's transferable state: the log, horizons, and
// the replicated application state (apps, duplicate-detection tables,
// bridge outbox). Adopters deep-copy everything mutable; the entries
// themselves are immutable once created.
type snapshot struct {
	log        []*entry
	delivered  uint64
	execPos    uint64
	lastQuorum ringID
	apps       map[int]App
	executed   map[int]map[OpKey]execRec
	outbox     map[OpKey]*Op
}

// execRec is a replica's memory of one executed op: the agreed global
// sequence and the cached reply value used to answer duplicates.
type execRec struct {
	seq uint64
	val uint64
}

// msg is one simulated datagram. from is the sender's protocol-node
// index (-1 for clients/subscribers, which identify themselves in
// their specific fields).
type msg struct {
	kind    msgKind
	dom     int
	from    int
	ring    ringID
	members []int
	token   *token
	seq     uint64
	entry   *entry
	join    *joinInfo
	snap    *snapshot
	op      *Op
	val     uint64
	items   []uint64
	have    uint64
	sub     int
	client  string
}

// handle encodes a message-table index as the 8-byte memnet payload.
func handle(idx int) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(idx))
	return b[:]
}

func handleIndex(payload []byte) int {
	if len(payload) != 8 {
		return -1
	}
	return int(binary.BigEndian.Uint64(payload))
}
