package sim

import "testing"

// Synthetic-trace unit tests: each invariant checker must flag a
// minimal hand-built breach and stay silent on the healthy variant.

func opk(c, b uint64) OpKey { return OpKey{Client: c, B: b} }

func hasInv(vs []Violation, inv string) bool {
	for _, v := range vs {
		if v.Invariant == inv {
			return true
		}
	}
	return false
}

func TestCheckExactlyOnce(t *testing.T) {
	ok := []Event{
		{Kind: EvExec, Dom: 0, Node: 0, Group: 0, Op: opk(1, 1), Seq: 1},
		{Kind: EvExec, Dom: 0, Node: 1, Group: 0, Op: opk(1, 1), Seq: 1},
	}
	if vs := Check(ok, CheckOpts{}); hasInv(vs, InvExactlyOnce) {
		t.Fatalf("clean trace flagged: %v", vs)
	}
	dup := append(ok, Event{Kind: EvExec, Dom: 0, Node: 0, Group: 0, Op: opk(1, 1), Seq: 2})
	if vs := Check(dup, CheckOpts{}); !hasInv(vs, InvExactlyOnce) {
		t.Fatalf("double execution on one node not flagged: %v", vs)
	}
}

// TestCheckExactlyOncePerIncarnation pins the recovery semantics: a
// node that crashes, restarts, and replays an op from the adopted log
// is legitimate — the duplicate only counts within one incarnation.
func TestCheckExactlyOncePerIncarnation(t *testing.T) {
	replay := []Event{
		{Kind: EvExec, Dom: 0, Node: 0, Group: 0, Op: opk(1, 1), Seq: 5},
		{Kind: EvRestart, Dom: 0, Node: 0},
		{Kind: EvExec, Dom: 0, Node: 0, Group: 0, Op: opk(1, 1), Seq: 5},
	}
	if vs := Check(replay, CheckOpts{}); len(vs) != 0 {
		t.Fatalf("legitimate post-restart replay flagged: %v", vs)
	}
	// Replay at a different seq is NOT legitimate: seq-agreement is
	// global across incarnations.
	bad := []Event{
		{Kind: EvExec, Dom: 0, Node: 0, Group: 0, Op: opk(1, 1), Seq: 5},
		{Kind: EvRestart, Dom: 0, Node: 0},
		{Kind: EvExec, Dom: 0, Node: 0, Group: 0, Op: opk(1, 1), Seq: 7},
	}
	if vs := Check(bad, CheckOpts{}); !hasInv(vs, InvSeqAgreement) {
		t.Fatalf("replay at different seq not flagged: %v", vs)
	}
	// A restart on one node must not excuse a duplicate on another.
	other := []Event{
		{Kind: EvExec, Dom: 0, Node: 1, Group: 0, Op: opk(1, 1), Seq: 5},
		{Kind: EvRestart, Dom: 0, Node: 0},
		{Kind: EvExec, Dom: 0, Node: 1, Group: 0, Op: opk(1, 1), Seq: 5},
	}
	if vs := Check(other, CheckOpts{}); !hasInv(vs, InvExactlyOnce) {
		t.Fatalf("unrelated restart excused a duplicate: %v", vs)
	}
}

func TestCheckSeqAgreement(t *testing.T) {
	tr := []Event{
		{Kind: EvExec, Dom: 0, Node: 0, Group: 0, Op: opk(1, 1), Seq: 1},
		{Kind: EvExec, Dom: 0, Node: 1, Group: 0, Op: opk(1, 1), Seq: 2},
	}
	if vs := Check(tr, CheckOpts{}); !hasInv(vs, InvSeqAgreement) {
		t.Fatalf("divergent seqs not flagged: %v", vs)
	}
}

func TestCheckTotalOrder(t *testing.T) {
	tr := []Event{
		{Kind: EvExec, Dom: 0, Node: 0, Group: 0, Op: opk(1, 1), Seq: 2},
		{Kind: EvExec, Dom: 0, Node: 0, Group: 0, Op: opk(1, 2), Seq: 1},
	}
	if vs := Check(tr, CheckOpts{}); !hasInv(vs, InvTotalOrder) {
		t.Fatalf("decreasing exec stream not flagged: %v", vs)
	}
	// After a restart the stream legitimately rewinds (log replay).
	rewind := []Event{
		{Kind: EvExec, Dom: 0, Node: 0, Group: 0, Op: opk(1, 1), Seq: 2},
		{Kind: EvRestart, Dom: 0, Node: 0},
		{Kind: EvExec, Dom: 0, Node: 0, Group: 0, Op: opk(1, 1), Seq: 2},
	}
	if vs := Check(rewind, CheckOpts{}); hasInv(vs, InvTotalOrder) {
		t.Fatalf("post-restart replay flagged as order breach: %v", vs)
	}
}

func TestCheckCompletion(t *testing.T) {
	tr := []Event{
		{Kind: EvIssue, Dom: 0, Node: -1, Group: 0, Op: opk(1, 1)},
		{Kind: EvIssue, Dom: 0, Node: -1, Group: 0, Op: opk(1, 2)},
		{Kind: EvReplyOK, Dom: 0, Node: -1, Group: 0, Op: opk(1, 1)},
	}
	vs := Check(tr, CheckOpts{})
	if !hasInv(vs, InvCompletion) {
		t.Fatalf("lost op not flagged: %v", vs)
	}
}

func TestCheckConvergence(t *testing.T) {
	tr := []Event{
		{Kind: EvFinalState, Dom: 0, Node: 0, Group: 0, Hash: 0xaa},
		{Kind: EvFinalState, Dom: 0, Node: 1, Group: 0, Hash: 0xbb},
	}
	if vs := Check(tr, CheckOpts{}); !hasInv(vs, InvConvergence) {
		t.Fatalf("divergent final states not flagged: %v", vs)
	}
}

func TestCheckViewAgreement(t *testing.T) {
	tr := []Event{
		{Kind: EvRing, Dom: 0, Node: 0, Quorum: true, Note: "e3.i0[0 1 2]"},
		{Kind: EvRing, Dom: 0, Node: 1, Quorum: true, Note: "e3.i0[0 1 3]"},
	}
	if vs := Check(tr, CheckOpts{}); !hasInv(vs, InvViewAgree) {
		t.Fatalf("conflicting quorum views not flagged: %v", vs)
	}
	// Minority (non-quorum) views may disagree freely.
	minority := []Event{
		{Kind: EvRing, Dom: 0, Node: 0, Quorum: false, Note: "e3.i0[0 1]"},
		{Kind: EvRing, Dom: 0, Node: 1, Quorum: false, Note: "e3.i0[1 3]"},
	}
	if vs := Check(minority, CheckOpts{}); hasInv(vs, InvViewAgree) {
		t.Fatalf("minority views flagged: %v", vs)
	}
}

func TestCheckConservation(t *testing.T) {
	tr := []Event{
		{Kind: EvFinalState, Dom: 0, Node: 0, Group: 0, Hash: 1, Val: 4000},
		{Kind: EvFinalState, Dom: 1, Node: 0, Group: 0, Hash: 2, Val: 4012},
	}
	vs := Check(tr, CheckOpts{Bank: true, BankInitial: 8000})
	if !hasInv(vs, InvConservation) {
		t.Fatalf("created money not flagged: %v", vs)
	}
	tr[1].Val = 4000
	if vs := Check(tr, CheckOpts{Bank: true, BankInitial: 8000}); hasInv(vs, InvConservation) {
		t.Fatalf("balanced books flagged: %v", vs)
	}
}

func TestCheckFanout(t *testing.T) {
	gap := []Event{
		{Kind: EvRecv, Dom: 0, Node: 7, Val: 1},
		{Kind: EvRecv, Dom: 0, Node: 7, Val: 3},
	}
	vs := Check(gap, CheckOpts{Fanout: true, FanoutItems: 3, Subscribers: 1})
	if !hasInv(vs, InvFanoutOrder) {
		t.Fatalf("gap in accepted items not flagged: %v", vs)
	}
	short := []Event{
		{Kind: EvRecv, Dom: 0, Node: 7, Val: 1},
		{Kind: EvRecv, Dom: 0, Node: 7, Val: 2},
	}
	vs = Check(short, CheckOpts{Fanout: true, FanoutItems: 3, Subscribers: 2})
	if !hasInv(vs, InvFanoutDeliv) {
		t.Fatalf("missing items / missing subscriber not flagged: %v", vs)
	}
}

// TestCheckPureOnDump re-runs the checker on a real run's recorded
// events and expects the identical verdict — Check must be a pure
// function of the trace so dumped artifacts can be re-audited offline.
func TestCheckPureOnDump(t *testing.T) {
	res := Run(Config{Seed: 5, Workload: WorkloadBank, Schedule: SchedKillHolder})
	again := Check(res.Trace.Events(), specFor(WorkloadBank).checkOpts())
	if len(again) != len(res.Violations) {
		t.Fatalf("re-check found %d violations, run reported %d", len(again), len(res.Violations))
	}
}
