// Package ftmgmt implements the management objects of the Eternal fault
// tolerance infrastructure (paper section 2, figure 2):
//
//   - the Replication Manager, which replicates each application object
//     according to its user-specified fault tolerance properties
//     (replication style, initial and minimum numbers of replicas) and
//     distributes the replicas across the processors of the domain;
//   - the Resource Manager, which monitors the domain and maintains the
//     minimum number of replicas by starting replacements after failures;
//   - the Evolution Manager, which exploits replication to upgrade
//     application objects without taking them down.
//
// In the original system these managers are themselves replicated CORBA
// objects invoked through the infrastructure; here they run as a library
// driving the per-node replication mechanisms directly, which preserves
// their observable behaviour (placement, replacement, live upgrade) at
// laptop scale (see DESIGN.md section 2).
package ftmgmt

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"eternalgw/internal/memnet"
	"eternalgw/internal/obs"
	"eternalgw/internal/replication"
)

// Errors reported by the managers.
var (
	ErrNoHosts      = errors.New("ftmgmt: no hosts available")
	ErrUnknownGroup = errors.New("ftmgmt: group not managed")
	ErrBadProps     = errors.New("ftmgmt: invalid fault tolerance properties")
)

// Properties are the user-specified fault tolerance properties of one
// replicated object.
type Properties struct {
	Style replication.Style
	// InitialReplicas is the number of replicas created up front.
	InitialReplicas int
	// MinReplicas is the floor the Resource Manager maintains.
	MinReplicas int
	// ObjectKey is the CORBA object key clients embed in requests.
	ObjectKey []byte
	// TypeID is the repository id used when publishing IORs.
	TypeID string
}

// Factory creates a fresh application instance for a replica.
type Factory func() (replication.Application, error)

// Host is one processor available for replica placement.
type Host struct {
	ID memnet.NodeID
	RM *replication.Mechanisms
}

// managedGroup records what the managers know about one group.
type managedGroup struct {
	id      replication.GroupID
	props   Properties
	factory Factory
}

// Manager combines the Replication, Resource and Evolution Managers for
// one fault tolerance domain.
type Manager struct {
	mu     sync.Mutex
	hosts  []Host
	groups map[replication.GroupID]*managedGroup

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	syncTimeout time.Duration

	log          *obs.Logger // nil until Instrument
	reg          *obs.Registry
	replacements atomic.Uint64 // replicas started by the Resource Manager
	upgrades     atomic.Uint64 // live upgrades completed
}

// NewManager creates a manager over the given hosts.
func NewManager(hosts ...Host) *Manager {
	m := &Manager{
		hosts:       append([]Host(nil), hosts...),
		groups:      make(map[replication.GroupID]*managedGroup),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		syncTimeout: 10 * time.Second,
	}
	close(m.done) // no monitor running yet
	return m
}

// Instrument connects the managers to the observability subsystem:
// replacement and upgrade counters plus a per-group replica-count gauge
// registered for every group created afterwards. Call before
// CreateReplicatedObject; safe to skip entirely (nil arguments are
// no-ops).
func (m *Manager) Instrument(reg *obs.Registry, log *obs.Logger) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reg = reg
	m.log = log.With("ftmgmt")
	if reg != nil {
		reg.CounterFunc("eternalgw_ftmgmt_replacements_total",
			"Replacement replicas started by the Resource Manager.", nil, m.replacements.Load)
		reg.CounterFunc("eternalgw_ftmgmt_upgrades_total",
			"Live upgrades completed by the Evolution Manager.", nil, m.upgrades.Load)
	}
}

// registerGroupGauge publishes the live replica count of one managed
// group. Callers hold mu.
func (m *Manager) registerGroupGauge(id replication.GroupID) {
	if m.reg == nil || len(m.hosts) == 0 {
		return
	}
	rm := m.hosts[0].RM
	m.reg.GaugeFunc("eternalgw_ftmgmt_group_replicas",
		"Live replicas of a managed object group.",
		obs.Labels{"group": fmt.Sprintf("%d", id)},
		func() float64 { return float64(len(rm.Members(id))) })
}

// AddHost makes a processor available for placement.
func (m *Manager) AddHost(h Host) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, existing := range m.hosts {
		if existing.ID == h.ID {
			return
		}
	}
	m.hosts = append(m.hosts, h)
}

// RemoveHost withdraws a processor from placement decisions (it does not
// stop replicas already running there).
func (m *Manager) RemoveHost(id memnet.NodeID) {
	m.mu.Lock()
	defer m.mu.Unlock()
	kept := m.hosts[:0]
	for _, h := range m.hosts {
		if h.ID != id {
			kept = append(kept, h)
		}
	}
	m.hosts = kept
}

// anyRM returns some host's mechanisms for domain-wide queries.
func (m *Manager) anyRM() (*replication.Mechanisms, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.hosts) == 0 {
		return nil, ErrNoHosts
	}
	return m.hosts[0].RM, nil
}

// load counts replicas placed on each host across managed groups.
func (m *Manager) load() map[memnet.NodeID]int {
	out := make(map[memnet.NodeID]int)
	rm, err := m.anyRM()
	if err != nil {
		return out
	}
	m.mu.Lock()
	ids := make([]replication.GroupID, 0, len(m.groups))
	for id := range m.groups {
		ids = append(ids, id)
	}
	m.mu.Unlock()
	for _, id := range ids {
		for _, node := range rm.Members(id) {
			out[node]++
		}
	}
	return out
}

// placement returns hosts ordered by ascending load (ties by id),
// excluding the given members.
func (m *Manager) placement(exclude map[memnet.NodeID]bool) []Host {
	loads := m.load()
	m.mu.Lock()
	hosts := append([]Host(nil), m.hosts...)
	m.mu.Unlock()
	var out []Host
	for _, h := range hosts {
		if !exclude[h.ID] {
			out = append(out, h)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if loads[out[i].ID] != loads[out[j].ID] {
			return loads[out[i].ID] < loads[out[j].ID]
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// CreateReplicatedObject is the Replication Manager's entry point: it
// creates the object group and places the initial replicas on the least
// loaded processors, waiting for each to synchronize.
func (m *Manager) CreateReplicatedObject(id replication.GroupID, props Properties, factory Factory) error {
	if props.InitialReplicas <= 0 || props.MinReplicas < 0 || props.MinReplicas > props.InitialReplicas {
		return fmt.Errorf("%w: initial=%d min=%d", ErrBadProps, props.InitialReplicas, props.MinReplicas)
	}
	rm, err := m.anyRM()
	if err != nil {
		return err
	}
	if err := rm.CreateGroup(id, props.Style, props.ObjectKey); err != nil {
		return err
	}
	m.mu.Lock()
	m.groups[id] = &managedGroup{id: id, props: props, factory: factory}
	m.registerGroupGauge(id)
	hostCount := len(m.hosts)
	m.mu.Unlock()
	m.log.Infof("group %d: %s, initial=%d min=%d", id, props.Style, props.InitialReplicas, props.MinReplicas)
	if props.InitialReplicas > hostCount {
		return fmt.Errorf("%w: need %d hosts, have %d", ErrNoHosts, props.InitialReplicas, hostCount)
	}
	if err := rm.WaitForGroup(id, m.syncTimeout); err != nil {
		return err
	}
	for i := 0; i < props.InitialReplicas; i++ {
		if err := m.placeOne(id, factory); err != nil {
			return err
		}
	}
	return nil
}

// placeOne starts one replica of the group on the least loaded host that
// does not already have one.
func (m *Manager) placeOne(id replication.GroupID, factory Factory) error {
	rm, err := m.anyRM()
	if err != nil {
		return err
	}
	exclude := make(map[memnet.NodeID]bool)
	for _, node := range rm.Members(id) {
		exclude[node] = true
	}
	for _, h := range m.placement(exclude) {
		app, err := factory()
		if err != nil {
			return fmt.Errorf("ftmgmt: factory for group %d: %w", id, err)
		}
		if err := h.RM.JoinGroup(id, app); err != nil {
			continue // e.g. a racing join; try the next host
		}
		if err := h.RM.WaitSynced(id, m.syncTimeout); err != nil {
			return fmt.Errorf("ftmgmt: replica of group %d on %s: %w", id, h.ID, err)
		}
		return nil
	}
	return ErrNoHosts
}

// Monitor starts the Resource Manager loop: every interval it compares
// each managed group's live membership with its minimum and starts
// replacement replicas as needed. Stop it with Close.
func (m *Manager) Monitor(interval time.Duration) {
	m.stopOnce = sync.Once{}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go func() {
		defer close(m.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-ticker.C:
				m.reconcile()
			}
		}
	}()
}

// reconcile performs one Resource Manager pass.
func (m *Manager) reconcile() {
	m.mu.Lock()
	groups := make([]*managedGroup, 0, len(m.groups))
	for _, g := range m.groups {
		groups = append(groups, g)
	}
	m.mu.Unlock()
	rm, err := m.anyRM()
	if err != nil {
		return
	}
	for _, g := range groups {
		for len(rm.Members(g.id)) < g.props.MinReplicas {
			if err := m.placeOne(g.id, g.factory); err != nil {
				m.log.Warnf("group %d: replacement failed: %v", g.id, err)
				break // no host available now; retry next tick
			}
			m.replacements.Add(1)
			m.log.Infof("group %d: replacement replica started (%d/%d live)",
				g.id, len(rm.Members(g.id)), g.props.MinReplicas)
		}
	}
}

// Upgrade is the Evolution Manager's entry point: it replaces every
// replica of the group with instances from the new factory, one at a
// time, exploiting state transfer so the object stays available and its
// state carries over. The new application must accept the old
// application's state encoding.
func (m *Manager) Upgrade(id replication.GroupID, factory Factory) error {
	m.mu.Lock()
	g, ok := m.groups[id]
	if !ok {
		m.mu.Unlock()
		return fmt.Errorf("group %d: %w", id, ErrUnknownGroup)
	}
	g.factory = factory
	m.mu.Unlock()

	rm, err := m.anyRM()
	if err != nil {
		return err
	}
	old := rm.Members(id)
	if len(old) == 0 {
		return fmt.Errorf("group %d: %w: no live replicas to upgrade", id, ErrUnknownGroup)
	}
	hostByID := make(map[memnet.NodeID]Host)
	m.mu.Lock()
	for _, h := range m.hosts {
		hostByID[h.ID] = h
	}
	m.mu.Unlock()

	for _, node := range old {
		// Start the upgraded replica first so the group never shrinks
		// below its pre-upgrade size, then retire the old one.
		if err := m.placeOne(id, factory); err != nil {
			return fmt.Errorf("ftmgmt: upgrade group %d: place: %w", id, err)
		}
		h, ok := hostByID[node]
		if !ok {
			continue // host withdrew; its replica is already gone
		}
		if err := h.RM.LeaveGroup(id); err != nil {
			return fmt.Errorf("ftmgmt: upgrade group %d: retire %s: %w", id, node, err)
		}
	}
	m.upgrades.Add(1)
	m.log.Infof("group %d: live upgrade complete, %d replicas replaced", id, len(old))
	return nil
}

// Properties returns the managed properties of a group.
func (m *Manager) Properties(id replication.GroupID) (Properties, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.groups[id]
	if !ok {
		return Properties{}, false
	}
	return g.props, true
}

// Close stops the Resource Manager loop.
func (m *Manager) Close() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}
