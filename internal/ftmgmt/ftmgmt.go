// Package ftmgmt implements the management objects of the Eternal fault
// tolerance infrastructure (paper section 2, figure 2):
//
//   - the Replication Manager, which replicates each application object
//     according to its user-specified fault tolerance properties
//     (replication style, initial and minimum numbers of replicas) and
//     distributes the replicas across the processors of the domain;
//   - the Resource Manager, which monitors the domain and maintains the
//     minimum number of replicas by starting replacements after failures;
//   - the Evolution Manager, which exploits replication to upgrade
//     application objects without taking them down.
//
// In the original system these managers are themselves replicated CORBA
// objects invoked through the infrastructure; here they run as a library
// driving the per-node replication mechanisms directly, which preserves
// their observable behaviour (placement, replacement, live upgrade) at
// laptop scale (see DESIGN.md section 2).
//
// The managers are policy: they decide which groups exist, what their
// factories are, and when membership must change. The mechanics of a
// membership change — ordered view installation, checkpoint + log-replay
// state transfer, placement on the least loaded host — live in
// internal/reconfig, whose Coordinator the managers drive for initial
// placement, failure replacement, elasticity (Grow/Shrink/Replace) and
// live upgrades alike.
package ftmgmt

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"eternalgw/internal/memnet"
	"eternalgw/internal/obs"
	"eternalgw/internal/reconfig"
	"eternalgw/internal/replication"
)

// Errors reported by the managers.
var (
	ErrNoHosts      = errors.New("ftmgmt: no hosts available")
	ErrUnknownGroup = errors.New("ftmgmt: group not managed")
	ErrBadProps     = errors.New("ftmgmt: invalid fault tolerance properties")
	ErrMinReplicas  = errors.New("ftmgmt: shrink would violate the minimum replica count")
)

// Properties are the user-specified fault tolerance properties of one
// replicated object.
type Properties struct {
	Style replication.Style
	// InitialReplicas is the number of replicas created up front.
	InitialReplicas int
	// MinReplicas is the floor the Resource Manager maintains.
	MinReplicas int
	// ObjectKey is the CORBA object key clients embed in requests.
	ObjectKey []byte
	// TypeID is the repository id used when publishing IORs.
	TypeID string
}

// Factory creates a fresh application instance for a replica.
type Factory func() (replication.Application, error)

// Host is one processor available for replica placement.
type Host struct {
	ID memnet.NodeID
	RM *replication.Mechanisms
}

// managedGroup records what the managers know about one group.
type managedGroup struct {
	id      replication.GroupID
	props   Properties
	factory Factory
}

// Manager combines the Replication, Resource and Evolution Managers for
// one fault tolerance domain.
type Manager struct {
	mu     sync.Mutex
	hosts  []Host
	groups map[replication.GroupID]*managedGroup
	coord  *reconfig.Coordinator

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once

	syncTimeout time.Duration

	log          *obs.Logger // nil until Instrument
	reg          *obs.Registry
	replacements atomic.Uint64 // replicas started by the Resource Manager
	upgrades     atomic.Uint64 // live upgrades completed
}

// NewManager creates a manager over the given hosts.
func NewManager(hosts ...Host) *Manager {
	m := &Manager{
		hosts:       append([]Host(nil), hosts...),
		groups:      make(map[replication.GroupID]*managedGroup),
		stop:        make(chan struct{}),
		done:        make(chan struct{}),
		syncTimeout: 10 * time.Second,
	}
	coordHosts := make([]reconfig.Host, len(hosts))
	for i, h := range hosts {
		coordHosts[i] = reconfig.Host(h)
	}
	m.coord = reconfig.New(m.syncTimeout, coordHosts...)
	close(m.done) // no monitor running yet
	return m
}

// Coordinator returns the reconfiguration coordinator the managers drive;
// callers needing raw membership operations (e.g. an admin surface) can
// use it directly.
func (m *Manager) Coordinator() *reconfig.Coordinator { return m.coord }

// Instrument connects the managers to the observability subsystem:
// replacement and upgrade counters plus a per-group replica-count gauge
// registered for every group created afterwards. Call before
// CreateReplicatedObject; safe to skip entirely (nil arguments are
// no-ops).
func (m *Manager) Instrument(reg *obs.Registry, log *obs.Logger) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.reg = reg
	m.log = log.With("ftmgmt")
	if reg != nil {
		reg.CounterFunc("eternalgw_ftmgmt_replacements_total",
			"Replacement replicas started by the Resource Manager.", nil, m.replacements.Load)
		reg.CounterFunc("eternalgw_ftmgmt_upgrades_total",
			"Live upgrades completed by the Evolution Manager.", nil, m.upgrades.Load)
	}
	m.coord.Instrument(reg, log)
}

// registerGroupGauge publishes the live replica count of one managed
// group. Callers hold mu.
func (m *Manager) registerGroupGauge(id replication.GroupID) {
	if m.reg == nil || len(m.hosts) == 0 {
		return
	}
	rm := m.hosts[0].RM
	m.reg.GaugeFunc("eternalgw_ftmgmt_group_replicas",
		"Live replicas of a managed object group.",
		obs.Labels{"group": fmt.Sprintf("%d", id)},
		func() float64 { return float64(len(rm.Members(id))) })
}

// AddHost makes a processor available for placement.
func (m *Manager) AddHost(h Host) {
	m.mu.Lock()
	for _, existing := range m.hosts {
		if existing.ID == h.ID {
			m.mu.Unlock()
			return
		}
	}
	m.hosts = append(m.hosts, h)
	m.mu.Unlock()
	m.coord.AddHost(reconfig.Host(h))
}

// RemoveHost withdraws a processor from placement decisions (it does not
// stop replicas already running there) and immediately runs a Resource
// Manager pass: a host is usually withdrawn because it failed, and any
// group that lost a replica with it must be repaired now, not at the
// next Monitor tick.
func (m *Manager) RemoveHost(id memnet.NodeID) {
	m.mu.Lock()
	kept := m.hosts[:0]
	for _, h := range m.hosts {
		if h.ID != id {
			kept = append(kept, h)
		}
	}
	m.hosts = kept
	m.mu.Unlock()
	m.coord.RemoveHost(id)
	m.reconcile()
}

// anyRM returns some host's mechanisms for domain-wide queries.
func (m *Manager) anyRM() (*replication.Mechanisms, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.hosts) == 0 {
		return nil, ErrNoHosts
	}
	return m.hosts[0].RM, nil
}

// CreateReplicatedObject is the Replication Manager's entry point: it
// creates the object group and places the initial replicas on the least
// loaded processors, waiting for each to synchronize.
func (m *Manager) CreateReplicatedObject(id replication.GroupID, props Properties, factory Factory) error {
	if props.InitialReplicas <= 0 || props.MinReplicas < 0 || props.MinReplicas > props.InitialReplicas {
		return fmt.Errorf("%w: initial=%d min=%d", ErrBadProps, props.InitialReplicas, props.MinReplicas)
	}
	rm, err := m.anyRM()
	if err != nil {
		return err
	}
	if err := rm.CreateGroup(id, props.Style, props.ObjectKey); err != nil {
		return err
	}
	m.mu.Lock()
	m.groups[id] = &managedGroup{id: id, props: props, factory: factory}
	m.registerGroupGauge(id)
	hostCount := len(m.hosts)
	m.mu.Unlock()
	m.log.Infof("group %d: %s, initial=%d min=%d", id, props.Style, props.InitialReplicas, props.MinReplicas)
	if props.InitialReplicas > hostCount {
		return fmt.Errorf("%w: need %d hosts, have %d", ErrNoHosts, props.InitialReplicas, hostCount)
	}
	if err := rm.WaitForGroup(id, m.syncTimeout); err != nil {
		return err
	}
	for i := 0; i < props.InitialReplicas; i++ {
		if err := m.placeOne(id, factory); err != nil {
			return err
		}
	}
	return nil
}

// placeOne starts one replica of the group on the least loaded host that
// does not already have one, waiting until it has caught up by state
// transfer.
func (m *Manager) placeOne(id replication.GroupID, factory Factory) error {
	_, err := m.coord.AddReplica(id, reconfig.Factory(factory))
	if errors.Is(err, reconfig.ErrNoHosts) {
		return ErrNoHosts
	}
	return err
}

// Monitor starts the Resource Manager loop: every interval it compares
// each managed group's live membership with its minimum and starts
// replacement replicas as needed. Stop it with Close.
func (m *Manager) Monitor(interval time.Duration) {
	m.stopOnce = sync.Once{}
	m.stop = make(chan struct{})
	m.done = make(chan struct{})
	go func() {
		defer close(m.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-m.stop:
				return
			case <-ticker.C:
				m.reconcile()
			}
		}
	}()
}

// reconcile performs one Resource Manager pass.
func (m *Manager) reconcile() {
	m.mu.Lock()
	groups := make([]*managedGroup, 0, len(m.groups))
	for _, g := range m.groups {
		groups = append(groups, g)
	}
	m.mu.Unlock()
	rm, err := m.anyRM()
	if err != nil {
		return
	}
	for _, g := range groups {
		for len(rm.Members(g.id)) < g.props.MinReplicas {
			if err := m.placeOne(g.id, g.factory); err != nil {
				m.log.Warnf("group %d: replacement failed: %v", g.id, err)
				break // no host available now; retry next tick
			}
			m.replacements.Add(1)
			m.log.Infof("group %d: replacement replica started (%d/%d live)",
				g.id, len(rm.Members(g.id)), g.props.MinReplicas)
		}
	}
}

// managed returns the managed-group record for id.
func (m *Manager) managed(id replication.GroupID) (*managedGroup, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.groups[id]
	if !ok {
		return nil, fmt.Errorf("group %d: %w", id, ErrUnknownGroup)
	}
	return g, nil
}

// Grow adds one replica of the managed group, built from its current
// factory, on the least loaded spare host.
func (m *Manager) Grow(id replication.GroupID) (replication.View, error) {
	g, err := m.managed(id)
	if err != nil {
		return replication.View{}, err
	}
	return m.coord.Grow(id, reconfig.Factory(g.factory))
}

// Shrink evicts the group's newest replica, refusing to go below the
// group's minimum replica count (the Resource Manager would immediately
// undo such a shrink anyway).
func (m *Manager) Shrink(id replication.GroupID) (replication.View, error) {
	g, err := m.managed(id)
	if err != nil {
		return replication.View{}, err
	}
	rm, err := m.anyRM()
	if err != nil {
		return replication.View{}, err
	}
	if live := len(rm.Members(id)); live <= g.props.MinReplicas {
		return replication.View{}, fmt.Errorf("group %d: %d live, minimum %d: %w",
			id, live, g.props.MinReplicas, ErrMinReplicas)
	}
	return m.coord.Shrink(id)
}

// Replace swaps one replica of the managed group for a fresh instance
// from its current factory, carrying state over by checkpoint + log
// replay.
func (m *Manager) Replace(id replication.GroupID, old memnet.NodeID) (replication.View, error) {
	g, err := m.managed(id)
	if err != nil {
		return replication.View{}, err
	}
	return m.coord.Replace(id, old, reconfig.Factory(g.factory))
}

// RollingUpgrade is the Evolution Manager's entry point: it replaces
// every replica of the group with instances from the new factory, one at
// a time, exploiting checkpoint + log-replay state transfer so the
// object stays available and its state carries over — including on a
// fully packed domain, where each old replica is retired first and its
// host reused. The new application must accept the old application's
// state encoding.
func (m *Manager) RollingUpgrade(id replication.GroupID, factory Factory) (replication.View, error) {
	g, err := m.managed(id)
	if err != nil {
		return replication.View{}, err
	}
	m.mu.Lock()
	g.factory = factory
	m.mu.Unlock()
	v, err := m.coord.RollingUpgrade(id, reconfig.Factory(factory))
	if err != nil {
		return v, fmt.Errorf("ftmgmt: upgrade group %d: %w", id, err)
	}
	m.upgrades.Add(1)
	m.log.Infof("group %d: live upgrade complete, %d replicas (view %d)", id, len(v.Members), v.Number)
	return v, nil
}

// Upgrade is the historical name of RollingUpgrade, kept for callers of
// the original Evolution Manager interface.
func (m *Manager) Upgrade(id replication.GroupID, factory Factory) error {
	_, err := m.RollingUpgrade(id, factory)
	return err
}

// Properties returns the managed properties of a group.
func (m *Manager) Properties(id replication.GroupID) (Properties, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	g, ok := m.groups[id]
	if !ok {
		return Properties{}, false
	}
	return g.props, true
}

// Close stops the Resource Manager loop.
func (m *Manager) Close() {
	m.stopOnce.Do(func() { close(m.stop) })
	<-m.done
}
