package ftmgmt_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/domain"
	"eternalgw/internal/ftmgmt"
	"eternalgw/internal/giop"
	"eternalgw/internal/memnet"
	"eternalgw/internal/replication"
	"eternalgw/internal/totem"
)

const (
	grpObj replication.GroupID = 300
	keyObj                     = "app/obj"
)

func fastDomain(t *testing.T, nodes int) *domain.Domain {
	t.Helper()
	d, err := domain.New(domain.Config{
		Name:  "mgmt",
		Nodes: nodes,
		Totem: totem.Config{
			IdleHold:        100 * time.Microsecond,
			TokenRetransmit: 10 * time.Millisecond,
			FailTimeout:     80 * time.Millisecond,
			GatherTimeout:   20 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// versionedApp reports a version and counts invocations; used to observe
// upgrades.
type versionedApp struct {
	version int64

	mu  sync.Mutex
	ops int64
}

func (a *versionedApp) Invoke(op string, args *cdr.Reader, reply *cdr.Writer) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch op {
	case "bump":
		a.ops++
		reply.WriteLongLong(a.ops)
		return nil
	case "version":
		reply.WriteLongLong(a.version)
		return nil
	default:
		return fmt.Errorf("versionedApp: unknown op %q", op)
	}
}

func (a *versionedApp) State() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteLongLong(a.ops)
	return w.Bytes(), nil
}

func (a *versionedApp) SetState(state []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := cdr.NewReader(state, cdr.BigEndian)
	a.ops = r.ReadLongLong()
	return r.Err()
}

func factoryV(version int64, track *[]*versionedApp, mu *sync.Mutex) ftmgmt.Factory {
	return func() (replication.Application, error) {
		app := &versionedApp{version: version}
		if track != nil {
			mu.Lock()
			*track = append(*track, app)
			mu.Unlock()
		}
		return app, nil
	}
}

func props(style replication.Style, initial, minR int) ftmgmt.Properties {
	return ftmgmt.Properties{
		Style:           style,
		InitialReplicas: initial,
		MinReplicas:     minR,
		ObjectKey:       []byte(keyObj),
		TypeID:          "IDL:eternalgw/Versioned:1.0",
	}
}

// invoke drives one invocation from a client-only member of the gateway
// group on node i.
func invoke(t *testing.T, d *domain.Domain, i int, reqID uint32, op string) (*cdr.Reader, error) {
	t.Helper()
	rm := d.Node(i).RM
	if err := rm.JoinGroup(domain.DefaultGatewayGroup, nil); err != nil && !errors.Is(err, replication.ErrAlreadyMember) {
		t.Fatal(err)
	}
	if err := rm.WaitSynced(domain.DefaultGatewayGroup, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	rep, err := rm.Invoke(domain.DefaultGatewayGroup, 1, grpObj,
		replication.OperationID{ChildSeq: reqID},
		giop.Request{RequestID: reqID, ResponseExpected: true, ObjectKey: []byte(keyObj), Operation: op},
		5*time.Second)
	if err != nil {
		return nil, err
	}
	return cdr.NewReader(rep.Result, rep.ResultOrder), nil
}

func TestCreateReplicatedObjectPlacesInitialReplicas(t *testing.T) {
	d := fastDomain(t, 4)
	var (
		mu   sync.Mutex
		apps []*versionedApp
	)
	if err := d.Manager().CreateReplicatedObject(grpObj, props(replication.Active, 3, 2), factoryV(1, &apps, &mu)); err != nil {
		t.Fatal(err)
	}
	members := d.Node(0).RM.Members(grpObj)
	if len(members) != 3 {
		t.Fatalf("members = %v", members)
	}
	seen := make(map[string]bool)
	for _, m := range members {
		if seen[string(m)] {
			t.Fatalf("replica placed twice on %s", m)
		}
		seen[string(m)] = true
	}
	if len(apps) != 3 {
		t.Fatalf("factory invoked %d times", len(apps))
	}
}

func TestCreateRejectsBadProperties(t *testing.T) {
	d := fastDomain(t, 2)
	err := d.Manager().CreateReplicatedObject(grpObj, props(replication.Active, 0, 0), factoryV(1, nil, nil))
	if !errors.Is(err, ftmgmt.ErrBadProps) {
		t.Fatalf("err = %v, want ErrBadProps", err)
	}
	err = d.Manager().CreateReplicatedObject(grpObj, props(replication.Active, 1, 2), factoryV(1, nil, nil))
	if !errors.Is(err, ftmgmt.ErrBadProps) {
		t.Fatalf("err = %v, want ErrBadProps", err)
	}
}

func TestCreateFailsWithTooFewHosts(t *testing.T) {
	d := fastDomain(t, 2)
	err := d.Manager().CreateReplicatedObject(grpObj, props(replication.Active, 3, 1), factoryV(1, nil, nil))
	if !errors.Is(err, ftmgmt.ErrNoHosts) {
		t.Fatalf("err = %v, want ErrNoHosts", err)
	}
}

func TestResourceManagerRestoresMinimum(t *testing.T) {
	// Paper section 2: the Resource Manager maintains the initial and
	// minimum number of replicas.
	d := fastDomain(t, 4)
	var (
		mu   sync.Mutex
		apps []*versionedApp
	)
	if err := d.Manager().CreateReplicatedObject(grpObj, props(replication.Active, 2, 2), factoryV(1, &apps, &mu)); err != nil {
		t.Fatal(err)
	}
	d.Manager().Monitor(15 * time.Millisecond)

	// Run some load so the replacement has state to pick up.
	if _, err := invoke(t, d, 3, 1, "bump"); err != nil {
		t.Fatal(err)
	}

	members := d.Node(3).RM.Members(grpObj)
	crashed := members[0]
	for i := 0; i < d.Nodes(); i++ {
		if d.Node(i).ID == crashed {
			d.CrashNode(i)
			break
		}
	}
	// The monitor must detect the loss and place a replacement.
	deadline := time.Now().Add(5 * time.Second)
	for {
		alive := d.Node(3).RM.Members(grpObj)
		if len(alive) >= 2 && !contains(alive, crashed) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("membership never restored: %v", alive)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The replacement carries the state (ops executed so far).
	r, err := invoke(t, d, 3, 2, "bump")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReadLongLong(); got != 2 {
		t.Fatalf("ops after replacement = %d, want 2", got)
	}
}

func TestEvolutionManagerUpgradesLive(t *testing.T) {
	// Paper section 2: the Evolution Manager exploits replication to
	// upgrade objects; state carries over and the object stays
	// available.
	d := fastDomain(t, 4)
	var (
		mu   sync.Mutex
		apps []*versionedApp
	)
	if err := d.Manager().CreateReplicatedObject(grpObj, props(replication.Active, 2, 1), factoryV(1, &apps, &mu)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := invoke(t, d, 3, uint32(i), "bump"); err != nil {
			t.Fatal(err)
		}
	}
	r, err := invoke(t, d, 3, 4, "version")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReadLongLong(); got != 1 {
		t.Fatalf("version = %d, want 1", got)
	}

	if err := d.Manager().Upgrade(grpObj, factoryV(2, &apps, &mu)); err != nil {
		t.Fatal(err)
	}
	// Wait until the old replicas retired.
	deadline := time.Now().Add(5 * time.Second)
	for len(d.Node(3).RM.Members(grpObj)) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("members after upgrade = %v", d.Node(3).RM.Members(grpObj))
		}
		time.Sleep(5 * time.Millisecond)
	}
	r, err = invoke(t, d, 3, 5, "version")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReadLongLong(); got != 2 {
		t.Fatalf("version after upgrade = %d, want 2", got)
	}
	// State survived the upgrade: 3 bumps before + 1 now = 4.
	r, err = invoke(t, d, 3, 6, "bump")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReadLongLong(); got != 4 {
		t.Fatalf("ops after upgrade = %d, want 4", got)
	}
}

func TestPropertiesLookup(t *testing.T) {
	d := fastDomain(t, 2)
	if err := d.Manager().CreateReplicatedObject(grpObj, props(replication.WarmPassive, 2, 1), factoryV(1, nil, nil)); err != nil {
		t.Fatal(err)
	}
	p, ok := d.Manager().Properties(grpObj)
	if !ok || p.Style != replication.WarmPassive || p.InitialReplicas != 2 {
		t.Fatalf("properties = %+v, %v", p, ok)
	}
	if _, ok := d.Manager().Properties(999); ok {
		t.Fatal("unknown group reported properties")
	}
}

func TestUpgradeUnknownGroup(t *testing.T) {
	d := fastDomain(t, 2)
	if err := d.Manager().Upgrade(12345, factoryV(2, nil, nil)); !errors.Is(err, ftmgmt.ErrUnknownGroup) {
		t.Fatalf("err = %v, want ErrUnknownGroup", err)
	}
}

func contains(list []memnet.NodeID, v memnet.NodeID) bool {
	for _, m := range list {
		if m == v {
			return true
		}
	}
	return false
}

func TestRemoveHostRepairsImmediately(t *testing.T) {
	// A withdrawn host usually means a failed host: RemoveHost must run
	// a Resource Manager pass itself instead of leaving the group
	// under-replicated until the next Monitor tick (the monitor is
	// deliberately not started here).
	d := fastDomain(t, 4)
	if err := d.Manager().CreateReplicatedObject(grpObj, props(replication.Active, 2, 2), factoryV(1, nil, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := invoke(t, d, 3, 1, "bump"); err != nil {
		t.Fatal(err)
	}

	crashed := d.Node(3).RM.Members(grpObj)[0]
	for i := 0; i < d.Nodes(); i++ {
		if d.Node(i).ID == crashed {
			d.CrashNode(i)
			break
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for contains(d.Node(3).RM.Members(grpObj), crashed) {
		if time.Now().After(deadline) {
			t.Fatalf("failure never detected: %v", d.Node(3).RM.Members(grpObj))
		}
		time.Sleep(5 * time.Millisecond)
	}

	d.Manager().RemoveHost(crashed)
	// No polling: the repair happened inside RemoveHost.
	alive := d.Node(3).RM.Members(grpObj)
	if len(alive) < 2 || contains(alive, crashed) {
		t.Fatalf("members after RemoveHost = %v, want 2 live without %s", alive, crashed)
	}
	r, err := invoke(t, d, 3, 2, "bump")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReadLongLong(); got != 2 {
		t.Fatalf("ops after repair = %d, want 2", got)
	}
}

func TestElasticGrowShrink(t *testing.T) {
	d := fastDomain(t, 3)
	if err := d.Manager().CreateReplicatedObject(grpObj, props(replication.Active, 2, 2), factoryV(1, nil, nil)); err != nil {
		t.Fatal(err)
	}
	v, err := d.Manager().Grow(grpObj)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Members) != 3 {
		t.Fatalf("members after grow = %v, want 3", v.Members)
	}
	v, err = d.Manager().Shrink(grpObj)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Members) != 2 {
		t.Fatalf("members after shrink = %v, want 2", v.Members)
	}
	if _, err := d.Manager().Shrink(grpObj); !errors.Is(err, ftmgmt.ErrMinReplicas) {
		t.Fatalf("shrink below minimum: err = %v, want ErrMinReplicas", err)
	}
	if _, err := d.Manager().Grow(54321); !errors.Is(err, ftmgmt.ErrUnknownGroup) {
		t.Fatalf("grow unknown group: err = %v, want ErrUnknownGroup", err)
	}
}

func TestReplaceCarriesState(t *testing.T) {
	d := fastDomain(t, 3)
	if err := d.Manager().CreateReplicatedObject(grpObj, props(replication.Active, 2, 1), factoryV(1, nil, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := invoke(t, d, 2, 1, "bump"); err != nil {
		t.Fatal(err)
	}
	old := d.Node(2).RM.Members(grpObj)[0]
	v, err := d.Manager().Replace(grpObj, old)
	if err != nil {
		t.Fatal(err)
	}
	if len(v.Members) != 2 || contains(v.Members, old) {
		t.Fatalf("members after replace = %v, want 2 without %s", v.Members, old)
	}
	r, err := invoke(t, d, 2, 2, "bump")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReadLongLong(); got != 2 {
		t.Fatalf("ops after replace = %d, want 2", got)
	}
}

func TestUpgradePackedDomainCarriesState(t *testing.T) {
	// Every host already runs a replica: the upgrade must retire each
	// old replica first and reuse its host, with the survivor donating
	// state by checkpoint + log replay.
	d := fastDomain(t, 2)
	if err := d.Manager().CreateReplicatedObject(grpObj, props(replication.Active, 2, 1), factoryV(1, nil, nil)); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if _, err := invoke(t, d, 0, uint32(i), "bump"); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Manager().Upgrade(grpObj, factoryV(2, nil, nil)); err != nil {
		t.Fatal(err)
	}
	if members := d.Node(0).RM.Members(grpObj); len(members) != 2 {
		t.Fatalf("members after packed upgrade = %v, want 2", members)
	}
	r, err := invoke(t, d, 0, 4, "version")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReadLongLong(); got != 2 {
		t.Fatalf("version after packed upgrade = %d, want 2", got)
	}
	r, err = invoke(t, d, 0, 5, "bump")
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReadLongLong(); got != 4 {
		t.Fatalf("ops after packed upgrade = %d, want 4", got)
	}
}
