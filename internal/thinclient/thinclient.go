// Package thinclient implements the thin client-side interception layer
// of paper section 3.5: the support an enhanced client-side ORB would
// provide so that unreplicated CORBA clients benefit from redundant
// gateways.
//
// The layer connects the client to the first gateway listed in a
// multi-profile IOR, inserts a unique client identifier into the service
// context of every outgoing IIOP request, and — when the connected
// gateway fails — transparently traverses to the next profile, reconnects
// and reissues the pending invocations with their original request
// identifiers. The identifiers let the gateways detect the reissues, so
// operations are neither lost nor executed twice.
package thinclient

import (
	"crypto/rand"
	"errors"
	"fmt"
	"sync"
	"time"

	"eternalgw/internal/cdr"
	"eternalgw/internal/giop"
	"eternalgw/internal/ior"
	"eternalgw/internal/orb"
)

// Errors reported by the layer.
var (
	// ErrAllGatewaysDown reports that every profile in the IOR was tried
	// and none produced a response.
	ErrAllGatewaysDown = errors.New("thinclient: all gateways unreachable")
)

// Config parameterizes a Client.
type Config struct {
	// CallTimeout bounds one attempt against one gateway; on expiry the
	// layer fails over to the next profile. Zero means 5s.
	CallTimeout time.Duration
	// DialTimeout bounds one connection attempt. Zero means 2s.
	DialTimeout time.Duration
	// MaxRounds is how many times the full profile list is traversed
	// before giving up. Zero means 2.
	MaxRounds int
	// UniqueID overrides the randomly generated client identifier.
	// Replicated bridge clients (gateways of one domain calling into
	// another, figure 1) use a deterministic identifier so that every
	// bridge replica's requests deduplicate to one operation at the
	// target domain.
	UniqueID []byte
	// ShedBackoff is how long the layer waits before retrying an
	// invocation a gateway shed with a TRANSIENT system exception
	// (admission control, overload, drain). The wait doubles per
	// consecutive shed of the same invocation. Zero means 5ms.
	ShedBackoff time.Duration
	// ShedFailover is how many consecutive TRANSIENT sheds of one
	// invocation the layer tolerates from a gateway before failing over
	// to the next profile (a draining or breaker-tripped gateway sheds
	// everything; a redundant gateway may have capacity). Zero means 2.
	ShedFailover int
}

func (c *Config) applyDefaults() {
	if c.CallTimeout == 0 {
		c.CallTimeout = 5 * time.Second
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 2
	}
	if c.ShedBackoff == 0 {
		c.ShedBackoff = 5 * time.Millisecond
	}
	if c.ShedFailover == 0 {
		c.ShedFailover = 2
	}
}

// Stats snapshots the layer's counters.
type Stats struct {
	Calls     uint64
	Failovers uint64 // profile switches performed
	Reissues  uint64 // invocations reissued after a failover
	Sheds     uint64 // TRANSIENT sheds received and retried
}

// Client is an enhanced unreplicated client bound to one replicated
// object through a multi-profile IOR. It is safe for concurrent use.
type Client struct {
	cfg      Config
	profiles []ior.IIOPProfile
	uniqueID []byte

	mu      sync.Mutex
	conn    *orb.Conn
	gen     int // connection generation; bumped on every reconnect
	profile int // index of the profile the current connection uses
	nextID  uint32
	closed  bool

	calls     uint64
	failovers uint64
	reissues  uint64
	sheds     uint64
}

// Dial builds a client from a (possibly multi-profile) IOR and connects
// to the first reachable gateway.
func Dial(ref ior.Ref, cfg Config) (*Client, error) {
	cfg.applyDefaults()
	profiles, err := ref.IIOPProfiles()
	if err != nil {
		return nil, err
	}
	id := cfg.UniqueID
	if len(id) == 0 {
		id = make([]byte, 16)
		if _, err := rand.Read(id); err != nil {
			return nil, fmt.Errorf("thinclient: generating client id: %w", err)
		}
	}
	c := &Client{cfg: cfg, profiles: profiles, uniqueID: id, nextID: 1, profile: -1}
	if _, _, err := c.ensureConn(-1); err != nil {
		return nil, err
	}
	return c, nil
}

// UniqueID returns the client identifier inserted into every request's
// service context.
func (c *Client) UniqueID() []byte { return append([]byte(nil), c.uniqueID...) }

// Gateway returns the address of the currently connected gateway.
func (c *Client) Gateway() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.profile < 0 {
		return ""
	}
	return c.profiles[c.profile].Addr()
}

// Stats snapshots the counters.
func (c *Client) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{Calls: c.calls, Failovers: c.failovers, Reissues: c.reissues, Sheds: c.sheds}
}

// Close severs the connection.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn != nil {
		err := c.conn.Close()
		c.conn = nil
		return err
	}
	return nil
}

// RefreshProfiles rebinds the client to a republished reference, e.g.
// after the domain added or removed gateways (the OnIORUpdate hook of
// the domain package). If the currently connected gateway's address
// survives in the new profile list the connection is kept; otherwise it
// is closed, so the next invocation fails over to a published gateway
// and reissues with its original request identifier.
func (c *Client) RefreshProfiles(ref ior.Ref) error {
	profiles, err := ref.IIOPProfiles()
	if err != nil {
		return err
	}
	if len(profiles) == 0 {
		return errors.New("thinclient: reference has no IIOP profiles")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	current := ""
	if c.conn != nil && c.profile >= 0 && c.profile < len(c.profiles) {
		current = c.profiles[c.profile].Addr()
	}
	c.profiles = profiles
	c.profile = -1
	for i, p := range profiles {
		if current != "" && p.Addr() == current {
			c.profile = i
			break
		}
	}
	if c.conn != nil && c.profile < 0 {
		// The connected gateway was withdrawn: drop the connection now so
		// the next invocation traverses the new profile list instead of
		// waiting for the retired gateway to sever it.
		_ = c.conn.Close()
		c.conn = nil
		c.gen++
	}
	return nil
}

// ensureConn returns a live connection. If badGen names the caller's
// last-seen generation, the connection is assumed broken and the layer
// fails over to the next profile; pass -1 to accept the current one.
func (c *Client) ensureConn(badGen int) (*orb.Conn, int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, 0, orb.ErrClosed
	}
	if c.conn != nil && c.gen != badGen {
		return c.conn, c.gen, nil
	}
	// The current connection (if any) is broken: skip to the next
	// profile, as the enhanced ORB of section 3.5 would.
	if c.conn != nil {
		_ = c.conn.Close()
		c.conn = nil
	}
	start := c.profile
	attempts := len(c.profiles) * c.cfg.MaxRounds
	for i := 1; i <= attempts; i++ {
		idx := (start + i) % len(c.profiles)
		if idx < 0 {
			idx += len(c.profiles)
		}
		conn, err := orb.DialTimeout(c.profiles[idx].Addr(), c.cfg.DialTimeout)
		if err != nil {
			continue
		}
		if start >= 0 && idx != start {
			c.failovers++
		}
		c.conn = conn
		c.profile = idx
		c.gen++
		return c.conn, c.gen, nil
	}
	return nil, 0, ErrAllGatewaysDown
}

// Call invokes op on the referenced object, transparently failing over
// between gateways. The returned reader is positioned at the reply body.
func (c *Client) Call(op string, args []byte) (*cdr.Reader, error) {
	rep, err := c.Invoke(op, args)
	if err != nil {
		return nil, err
	}
	return orb.ReplyReader(rep)
}

// Invoke performs the request/reply exchange and returns the raw reply.
func (c *Client) Invoke(op string, args []byte) (giop.Reply, error) {
	c.mu.Lock()
	reqID := c.nextID
	c.nextID++
	c.calls++
	c.mu.Unlock()

	sc := []giop.ServiceContext{{ID: giop.FTClientContextID, Data: c.uniqueID}}
	badGen := -1
	var lastErr error
	sheds := 0 // consecutive TRANSIENT sheds on the current gateway
	// One attempt per profile per round; the request id never changes,
	// so a gateway that already saw the operation (directly or through
	// the gateway group's record) recognizes the reissue.
	for attempt := 0; attempt < len(c.profiles)*c.cfg.MaxRounds+1; attempt++ {
		conn, gen, err := c.ensureConn(badGen)
		if err != nil {
			return giop.Reply{}, err
		}
		c.mu.Lock()
		objectKey := c.profiles[c.profile].ObjectKey
		if attempt > 0 {
			c.reissues++
		}
		c.mu.Unlock()

		rep, err := conn.Invoke(objectKey, op, args, orb.InvokeOptions{
			ServiceContexts: sc,
			RequestID:       reqID,
			Timeout:         c.cfg.CallTimeout,
		})
		if err == nil {
			if c.shedVerdict(rep) {
				// The gateway shed this invocation with TRANSIENT
				// (completed NO — it never entered the total order, so
				// retrying is always safe). Back off and retry; after
				// ShedFailover consecutive sheds the gateway is treated
				// as unavailable and the layer moves to the next profile.
				c.mu.Lock()
				c.sheds++
				c.mu.Unlock()
				sheds++
				lastErr = fmt.Errorf("thinclient: gateway shed request %d", reqID)
				backoff := c.cfg.ShedBackoff << uint(min(sheds-1, 4))
				if sheds >= c.cfg.ShedFailover {
					sheds = 0
					badGen = gen
				} else {
					badGen = -1
				}
				time.Sleep(backoff)
				continue
			}
			return rep, nil
		}
		sheds = 0
		lastErr = err
		badGen = gen
	}
	return giop.Reply{}, fmt.Errorf("%w (last error: %v)", ErrAllGatewaysDown, lastErr)
}

// shedVerdict reports whether a reply is a gateway admission shed: a
// TRANSIENT system exception, the retry-me signal of the shed-reply
// contract (docs/OPERATIONS.md).
func (c *Client) shedVerdict(rep giop.Reply) bool {
	if rep.Status != giop.ReplySystemException {
		return false
	}
	repoID, _, _, err := giop.DecodeSystemException(rep.Result, rep.ResultOrder)
	return err == nil && repoID == orb.RepoTransient
}
