package thinclient_test

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"eternalgw/internal/admission"
	"eternalgw/internal/cdr"
	"eternalgw/internal/domain"
	"eternalgw/internal/ftmgmt"
	"eternalgw/internal/ior"
	"eternalgw/internal/replication"
	"eternalgw/internal/thinclient"
	"eternalgw/internal/totem"
)

const (
	grpCounter replication.GroupID = 200
	keyCounter                     = "app/counter"
)

func fastDomain(t *testing.T, nodes int) *domain.Domain {
	t.Helper()
	d, err := domain.New(domain.Config{
		Name:  "ft",
		Nodes: nodes,
		Totem: totem.Config{
			IdleHold:        100 * time.Microsecond,
			TokenRetransmit: 10 * time.Millisecond,
			FailTimeout:     80 * time.Millisecond,
			GatherTimeout:   20 * time.Millisecond,
		},
		GatewayInvokeTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	return d
}

// counterApp is a deterministic counter.
type counterApp struct {
	mu    sync.Mutex
	total int64
}

func (a *counterApp) Invoke(op string, args *cdr.Reader, reply *cdr.Writer) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch op {
	case "add":
		a.total += args.ReadLongLong()
		reply.WriteLongLong(a.total)
		return args.Err()
	case "get":
		reply.WriteLongLong(a.total)
		return nil
	default:
		return fmt.Errorf("counterApp: unknown op %q", op)
	}
}

func (a *counterApp) State() ([]byte, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteLongLong(a.total)
	return w.Bytes(), nil
}

func (a *counterApp) SetState(state []byte) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	r := cdr.NewReader(state, cdr.BigEndian)
	a.total = r.ReadLongLong()
	return r.Err()
}

func (a *counterApp) value() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.total
}

func deploy(t *testing.T, d *domain.Domain, replicas, gateways int) ([]*counterApp, ior.Ref) {
	t.Helper()
	var (
		mu   sync.Mutex
		apps []*counterApp
	)
	err := d.Manager().CreateReplicatedObject(grpCounter, ftmgmt.Properties{
		Style:           replication.Active,
		InitialReplicas: replicas,
		MinReplicas:     replicas,
		ObjectKey:       []byte(keyCounter),
	}, func() (replication.Application, error) {
		mu.Lock()
		defer mu.Unlock()
		app := &counterApp{}
		apps = append(apps, app)
		return app, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < gateways; i++ {
		if _, err := d.AddGateway(d.Nodes()-1-i, ""); err != nil {
			t.Fatal(err)
		}
	}
	ref, err := d.PublishIOR("IDL:eternalgw/Counter:1.0", []byte(keyCounter))
	if err != nil {
		t.Fatal(err)
	}
	return apps, ref
}

func addArgs(v int64) []byte {
	w := cdr.NewWriter(cdr.BigEndian)
	w.WriteLongLong(v)
	return w.Bytes()
}

func TestCallThroughFirstProfile(t *testing.T) {
	d := fastDomain(t, 4)
	_, ref := deploy(t, d, 2, 2)
	c, err := thinclient.Dial(ref, thinclient.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	r, err := c.Call("add", addArgs(5))
	if err != nil {
		t.Fatal(err)
	}
	if got := r.ReadLongLong(); got != 5 || r.Err() != nil {
		t.Fatalf("add = %d, err %v", got, r.Err())
	}
	if c.Gateway() != d.Gateways()[0].Addr() {
		t.Fatalf("connected to %s, first profile is %s", c.Gateway(), d.Gateways()[0].Addr())
	}
	if st := c.Stats(); st.Calls != 1 || st.Failovers != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFailoverToNextGateway(t *testing.T) {
	// Paper section 3.5: the gateway dies; the interception layer skips
	// to the next profile, reconnects and reissues pending invocations.
	// No operation is lost and none executes twice.
	d := fastDomain(t, 4)
	apps, ref := deploy(t, d, 2, 3)
	c, err := thinclient.Dial(ref, thinclient.Config{CallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	const calls = 30
	gws := d.Gateways()
	for i := 1; i <= calls; i++ {
		if i == 10 {
			_ = gws[0].Close()
		}
		if i == 20 {
			_ = gws[1].Close()
		}
		r, err := c.Call("add", addArgs(1))
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got := r.ReadLongLong(); got != int64(i) {
			t.Fatalf("call %d returned %d: operation lost or duplicated", i, got)
		}
	}
	st := c.Stats()
	if st.Failovers < 2 {
		t.Fatalf("failovers = %d, want >= 2", st.Failovers)
	}
	// Exactly-once: every replica executed exactly `calls` operations.
	for i, app := range apps {
		if got := app.value(); got != calls {
			t.Fatalf("replica %d total = %d, want %d", i, got, calls)
		}
	}
	if c.Gateway() != gws[2].Addr() {
		t.Fatalf("final gateway = %s, want %s", c.Gateway(), gws[2].Addr())
	}
}

func TestConcurrentCallersDuringFailover(t *testing.T) {
	d := fastDomain(t, 4)
	apps, ref := deploy(t, d, 2, 2)
	c, err := thinclient.Dial(ref, thinclient.Config{CallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()

	const workers, per = 4, 10
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	kill := make(chan struct{})
	go func() {
		<-kill
		_ = d.Gateways()[0].Close()
	}()
	var once sync.Once
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if i == per/2 {
					once.Do(func() { close(kill) })
				}
				if _, err := c.Call("add", addArgs(1)); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i, app := range apps {
		if got := app.value(); got != workers*per {
			t.Fatalf("replica %d total = %d, want %d", i, got, workers*per)
		}
	}
}

func TestAllGatewaysDown(t *testing.T) {
	d := fastDomain(t, 3)
	_, ref := deploy(t, d, 1, 2)
	c, err := thinclient.Dial(ref, thinclient.Config{
		CallTimeout: 300 * time.Millisecond,
		DialTimeout: 300 * time.Millisecond,
		MaxRounds:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	for _, gw := range d.Gateways() {
		_ = gw.Close()
	}
	_, err = c.Call("get", nil)
	if !errors.Is(err, thinclient.ErrAllGatewaysDown) {
		t.Fatalf("err = %v, want ErrAllGatewaysDown", err)
	}
}

func TestDialFailsWithNoProfiles(t *testing.T) {
	if _, err := thinclient.Dial(ior.Ref{TypeID: "IDL:X:1.0"}, thinclient.Config{}); err == nil {
		t.Fatal("expected error for IOR without IIOP profiles")
	}
}

func TestUniqueIDsDiffer(t *testing.T) {
	d := fastDomain(t, 3)
	_, ref := deploy(t, d, 1, 1)
	c1, err := thinclient.Dial(ref, thinclient.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c1.Close() }()
	c2, err := thinclient.Dial(ref, thinclient.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c2.Close() }()
	if bytes.Equal(c1.UniqueID(), c2.UniqueID()) {
		t.Fatal("two clients generated the same unique id")
	}
}

func TestConfiguredUniqueID(t *testing.T) {
	d := fastDomain(t, 3)
	_, ref := deploy(t, d, 1, 1)
	c, err := thinclient.Dial(ref, thinclient.Config{UniqueID: []byte("bridge-7")})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	if string(c.UniqueID()) != "bridge-7" {
		t.Fatalf("unique id = %q", c.UniqueID())
	}
}

func TestShedRetryAndFailover(t *testing.T) {
	// The first gateway's admission control sheds with TRANSIENT; the
	// layer backs off, retries, and after consecutive sheds fails over to
	// the redundant gateway. No operation is lost or duplicated.
	d := fastDomain(t, 4)
	if _, err := d.AddGatewayAdmission(3, "", &admission.Config{Rate: 0.001, Burst: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.AddGateway(2, ""); err != nil {
		t.Fatal(err)
	}
	apps, ref := deploy(t, d, 2, 0)
	c, err := thinclient.Dial(ref, thinclient.Config{ShedBackoff: time.Millisecond, ShedFailover: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	// The burst admits the first call; the second is shed twice on the
	// rate-limited gateway and then completes on the redundant one.
	for i := 1; i <= 2; i++ {
		r, err := c.Call("add", addArgs(1))
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got := r.ReadLongLong(); got != int64(i) {
			t.Fatalf("call %d returned %d: operation lost or duplicated", i, got)
		}
	}
	st := c.Stats()
	if st.Sheds < 2 || st.Failovers < 1 {
		t.Fatalf("stats = %+v, want >= 2 sheds and a failover", st)
	}
	if c.Gateway() != d.Gateways()[1].Addr() {
		t.Fatalf("connected to %s, want the redundant gateway %s", c.Gateway(), d.Gateways()[1].Addr())
	}
	for i, app := range apps {
		if got := app.value(); got != 2 {
			t.Fatalf("replica %d total = %d, want 2", i, got)
		}
	}
}

func TestDrainHandsClientsToRedundantGateway(t *testing.T) {
	// Graceful drain: the connected gateway stops admitting and closes;
	// the layer's reissue lands on the redundant gateway and the
	// section 3.5 identifiers keep the operations exactly-once.
	d := fastDomain(t, 4)
	apps, ref := deploy(t, d, 2, 2)
	c, err := thinclient.Dial(ref, thinclient.Config{CallTimeout: 2 * time.Second, ShedBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	const calls = 20
	gws := d.Gateways()
	for i := 1; i <= calls; i++ {
		if i == 10 {
			go func() { _ = gws[0].Drain(2 * time.Second) }()
		}
		r, err := c.Call("add", addArgs(1))
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got := r.ReadLongLong(); got != int64(i) {
			t.Fatalf("call %d returned %d: operation lost or duplicated", i, got)
		}
	}
	if st := c.Stats(); st.Failovers < 1 {
		t.Fatalf("stats = %+v, want a failover off the drained gateway", st)
	}
	for i, app := range apps {
		if got := app.value(); got != calls {
			t.Fatalf("replica %d total = %d, want %d", i, got, calls)
		}
	}
}

func TestGatewayChurnWithProfileRefresh(t *testing.T) {
	// Online gateway reconfiguration (paper section 3.5): gateways are
	// added to and removed from the domain's edge under live calls. The
	// domain republishes the multi-profile IOR on every change and the
	// interception layer rebinds, so no operation is lost or duplicated
	// even when the client's connected gateway is withdrawn.
	var (
		clientMu sync.Mutex
		client   *thinclient.Client
	)
	d, err := domain.New(domain.Config{
		Name:  "churn",
		Nodes: 4,
		Totem: totem.Config{
			IdleHold:        100 * time.Microsecond,
			TokenRetransmit: 10 * time.Millisecond,
			FailTimeout:     80 * time.Millisecond,
			GatherTimeout:   20 * time.Millisecond,
		},
		GatewayInvokeTimeout: 5 * time.Second,
		OnIORUpdate: func(objectKey []byte, ref ior.Ref) {
			clientMu.Lock()
			c := client
			clientMu.Unlock()
			if c != nil {
				if err := c.RefreshProfiles(ref); err != nil {
					t.Errorf("refresh profiles: %v", err)
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(d.Close)
	apps, ref := deploy(t, d, 2, 2)

	c, err := thinclient.Dial(ref, thinclient.Config{CallTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = c.Close() }()
	clientMu.Lock()
	client = c
	clientMu.Unlock()

	call := func(i int) {
		t.Helper()
		r, err := c.Call("add", addArgs(1))
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if got := r.ReadLongLong(); got != int64(i) {
			t.Fatalf("call %d returned %d: operation lost or duplicated", i, got)
		}
	}

	i := 0
	for ; i < 10; i++ {
		call(i + 1)
	}
	// Withdraw the gateway the client is connected to; the republished
	// reference tells the layer to rebind before the socket dies.
	gws := d.Gateways()
	if err := d.RemoveGateway(gws[0], time.Second); err != nil {
		t.Fatal(err)
	}
	for ; i < 20; i++ {
		call(i + 1)
	}
	// Add a fresh gateway, then withdraw the last original one: the
	// client can only continue if it learned the new profile.
	if _, err := d.AddGateway(0, ""); err != nil {
		t.Fatal(err)
	}
	if err := d.RemoveGateway(gws[1], time.Second); err != nil {
		t.Fatal(err)
	}
	for ; i < 30; i++ {
		call(i + 1)
	}

	for idx, app := range apps {
		if got := app.value(); got != 30 {
			t.Fatalf("replica %d total = %d, want 30: operations lost or duplicated", idx, got)
		}
	}
	if got := len(d.Gateways()); got != 1 {
		t.Fatalf("gateways after churn = %d, want 1", got)
	}
}
