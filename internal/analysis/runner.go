package analysis

import (
	"fmt"
	"go/token"
	"io"
	"os"
)

// GlobalCheck is a whole-module pass run by the module-mode driver after
// every package-local pass: cross-package invariants (a metric registered
// twice in different packages, documentation drift against the full
// registration set) live here. Unit (vettool) mode cannot run these — it
// sees one package at a time — which is why `make lint` runs both modes.
type GlobalCheck func(l *Loader, pkgs []*Package) []Diagnostic

// RunModule is the standalone `gwlint ./...` entry point: load the
// module rooted at dir, run every analyzer on every package, then the
// global checks, print findings and return the process exit code.
func RunModule(w io.Writer, dir string, patterns []string, analyzers []*Analyzer, globals []GlobalCheck) int {
	return RunModuleWith(w, dir, patterns, analyzers, globals, PrintDiagnostics)
}

// RunModuleWith is RunModule with a caller-chosen renderer
// (PrintDiagnostics for the vet-style text form, PrintJSON for CI).
func RunModuleWith(w io.Writer, dir string, patterns []string, analyzers []*Analyzer, globals []GlobalCheck, print func(io.Writer, *token.FileSet, []Diagnostic)) int {
	l, pkgs, err := LoadModule(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gwlint:", err)
		return 1
	}
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ds, err := RunAnalyzers(l.Fset, pkg.Files, pkg.Types, pkg.Info, l.ModuleDir, analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "gwlint:", err)
			return 1
		}
		diags = append(diags, ds...)
	}
	for _, g := range globals {
		diags = append(diags, g(l, pkgs)...)
	}
	print(w, l.Fset, diags)
	if len(diags) == 0 {
		return 0
	}
	return 2
}
