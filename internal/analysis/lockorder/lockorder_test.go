package lockorder_test

import (
	"strings"
	"testing"

	"eternalgw/internal/analysis"
	"eternalgw/internal/analysis/analysistest"
	"eternalgw/internal/analysis/lockorder"
)

func TestLockOrder(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "locks")
}

// TestLockOrderPerPackageSilentOnCrossPackage asserts the per-package
// pass does not guess about cross-package callees: globallock holds a
// lock across a call into obs, and only the global check may judge it.
func TestLockOrderPerPackageSilentOnCrossPackage(t *testing.T) {
	analysistest.Run(t, lockorder.Analyzer, "globallock")
}

// TestLockOrderGlobalStitchesStoredCallbacks runs the module-mode check
// over the real obs package plus the globallock corpus: obs's
// WritePrometheus transitively invokes stored metric callbacks, and
// globallock calls it under a lock, so the stitched summaries must
// produce the callback-under-lock hazard the per-package passes cannot
// see.
func TestLockOrderGlobalStitchesStoredCallbacks(t *testing.T) {
	l := analysistest.Loader(t)
	obsPkg := analysistest.ModulePackage(t, "eternalgw/internal/obs")
	corpus := analysistest.Check(t, "globallock")

	diags := lockorder.Global(l, []*analysis.Package{obsPkg, corpus})
	var hit bool
	for _, d := range diags {
		if strings.Contains(d.Message, "WritePrometheus invokes a stored callback") &&
			strings.Contains(d.Message, "exporter.mu is held") {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("global check: want a stored-callback hazard for scrapeLocked → WritePrometheus, got %v", diags)
	}
}

// TestLockOrderMutation flips the acquisition order in one of two
// consistently ordered functions and proves the cycle fires on exactly
// that change.
func TestLockOrderMutation(t *testing.T) {
	const good = `package m

import "sync"

type s struct {
	a sync.Mutex
	b sync.Mutex
}

func f(x *s) {
	x.a.Lock()
	defer x.a.Unlock()
	x.b.Lock()
	defer x.b.Unlock()
}

func g(x *s) {
	x.a.Lock()
	defer x.a.Unlock()
	x.b.Lock()
	defer x.b.Unlock()
}
`
	if ds := analysistest.Diagnostics(t, lockorder.Analyzer, "lockorder_good", good); len(ds) != 0 {
		t.Fatalf("good snippet: unexpected diagnostics %v", ds)
	}

	mutant := strings.Replace(good, `func g(x *s) {
	x.a.Lock()
	defer x.a.Unlock()
	x.b.Lock()
	defer x.b.Unlock()
}`, `func g(x *s) {
	x.b.Lock()
	defer x.b.Unlock()
	x.a.Lock()
	defer x.a.Unlock()
}`, 1)
	ds := analysistest.Diagnostics(t, lockorder.Analyzer, "lockorder_mutant", mutant)
	var cycles int
	for _, d := range ds {
		if strings.Contains(d.Message, "lock order cycle") {
			cycles++
		}
	}
	if cycles == 0 {
		t.Fatalf("mutant (reversed order): want a lock order cycle diagnostic, got %v", ds)
	}
}
