// Package globallock exercises the module-mode half of the lockorder
// analyzer: scrapeLocked calls a real cross-package function
// (obs.Registry.WritePrometheus) while holding its own mutex. That
// callee transitively dispatches stored callbacks (CounterFunc/GaugeFunc
// series render by invoking registered func values), which only the
// global check — stitching per-package summaries together — can see.
// The per-package pass over this file must stay silent.
package globallock

import (
	"io"
	"sync"

	"eternalgw/internal/obs"
)

type exporter struct {
	mu  sync.Mutex
	reg *obs.Registry
}

func (e *exporter) scrapeLocked(w io.Writer) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.reg.WritePrometheus(w)
}
