// Package locks exercises the lockorder analyzer: acquisition cycles,
// recursive locking, cross-shard acquisition of a sharded class, and
// stored callbacks invoked under a held lock — plus the shapes that must
// stay silent (consistent ordering, read-read nesting, the
// snapshot-then-invoke idiom, parameter and local-literal exemptions).
package locks

import "sync"

type pair struct {
	a sync.Mutex
	b sync.Mutex
}

// abba and baab acquire the two classes in opposite orders: the classic
// deadlock cycle, reported once per pair at the lexicographically first
// edge with the counter-witness position inline.
func abba(p *pair) {
	p.a.Lock()
	defer p.a.Unlock()
	p.b.Lock() // want `lock order cycle: .*pair\.b acquired while .*pair\.a is held here, but .*pair\.a is acquired while .*pair\.b is held at`
	defer p.b.Unlock()
}

func baab(p *pair) {
	p.b.Lock()
	defer p.b.Unlock()
	p.a.Lock()
	defer p.a.Unlock()
}

type ordered struct {
	first  sync.Mutex
	second sync.Mutex
}

// Consistent ordering across every path is the discipline; no report.
func lockBoth(o *ordered) {
	o.first.Lock()
	defer o.first.Unlock()
	o.second.Lock()
	defer o.second.Unlock()
}

func lockBothAgain(o *ordered) {
	o.first.Lock()
	defer o.first.Unlock()
	o.second.Lock()
	defer o.second.Unlock()
}

type rec struct {
	mu sync.Mutex
	n  int
}

// outer re-acquires mu through inner: sync mutexes are not reentrant.
func (r *rec) outer() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.inner() // want `rec\.mu acquired while already held .*; sync mutexes are not reentrant`
}

func (r *rec) inner() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.n++
}

type readers struct {
	x sync.RWMutex
	y sync.RWMutex
}

// Consistently ordered read locks nest freely. (Opposite orders would
// still be a cycle: Go's RWMutex blocks new readers once a writer
// waits, so read-read cycles deadlock through a pending writer.)
func readBoth(r *readers) {
	r.x.RLock()
	defer r.x.RUnlock()
	r.y.RLock()
	defer r.y.RUnlock()
}

func readBothAgain(r *readers) {
	r.x.RLock()
	defer r.x.RUnlock()
	r.y.RLock()
	defer r.y.RUnlock()
}

type table struct {
	shards [4]shard
}

type shard struct {
	mu sync.Mutex
	m  map[string]int
}

// move acquires a second shard of the same class while one is held:
// with src and dst free to cross, the pairwise order is whatever the
// workload makes it.
func (t *table) move(src, dst int, k string) {
	t.shards[src].mu.Lock()
	defer t.shards[src].mu.Unlock()
	t.shards[dst].mu.Lock() // want `acquisition of sharded lock class .*shard\.mu while another lock of the same class is held`
	defer t.shards[dst].mu.Unlock()
	t.shards[dst].m[k] = t.shards[src].m[k]
	delete(t.shards[src].m, k)
}

// get touches one shard per call: the sharded design working as
// intended.
func (t *table) get(i int, k string) int {
	t.shards[i].mu.Lock()
	defer t.shards[i].mu.Unlock()
	return t.shards[i].m[k]
}

type notifier struct {
	mu   sync.Mutex
	hook func(string)
	last string
}

// badNotify dispatches the stored hook while mu is held: whatever the
// hook acquires is invisible here, which is exactly how module-wide
// cycles are laundered past static analysis.
func (n *notifier) badNotify(ev string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.last = ev
	n.hook(ev) // want `stored callback invoked while .*notifier\.mu is held`
}

// fire carries the dynamic dispatch; badVia extends the held section
// into it.
func (n *notifier) fire(ev string) {
	n.hook(ev)
}

func (n *notifier) badVia(ev string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.fire(ev) // want `call to fire invokes a stored callback \(at .*\) while .*notifier\.mu is held`
}

// goodNotify is the sanctioned idiom: snapshot the callback under the
// lock, invoke it after release.
func (n *notifier) goodNotify(ev string) {
	n.mu.Lock()
	n.last = ev
	hook := n.hook
	n.mu.Unlock()
	if hook != nil {
		hook(ev)
	}
}

// audited keeps the dispatch under the lock deliberately; the allow
// carries the argument.
func (n *notifier) audited(ev string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	//lint:allow lockorder the hook is documented lock-free and set only at construction
	n.hook(ev)
}

type waiter struct {
	mu sync.Mutex
}

// await evaluates an explicitly passed condition under the lock: a
// parameter is part of the function's contract, not a stored callback.
func (w *waiter) await(cond func() bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for !cond() {
	}
}

// validateThenSet calls a local only ever assigned function literals:
// its body is right there and is simulated as its own root.
func (n *notifier) validateThenSet(ev string) {
	validate := func(s string) bool { return s != "" }
	n.mu.Lock()
	defer n.mu.Unlock()
	if validate(ev) {
		n.last = ev
	}
}
