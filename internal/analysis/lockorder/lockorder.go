// Package lockorder builds a mutex-acquisition graph and reports
// ordering hazards: cycles (two lock classes acquired in opposite
// orders on different paths), recursive acquisition of a non-reentrant
// class, and acquisition of a sharded class while another lock of the
// same sharded class is held — the cross-shard case where the second
// acquisition may target a different shard index, so the pairwise order
// is whatever the workload makes it.
//
// Locks are grouped into classes, not instances: a mutex field is keyed
// by its owning named type ("pkg.Type.field"), a package-level mutex by
// its variable ("pkg.var"). All the shards of a sharded table therefore
// share one class, which is exactly the granularity the deadlock
// argument needs — the ordering discipline "pending shard before
// directory" is a statement about the types, and two shards of the same
// class have no defined order at all. A class is sharded when its
// owning type appears as the element of a slice, array or map field in
// the package, or when an index expression feeds the receiver at an
// acquisition site.
//
// Within a function the analyzer simulates acquisition order
// statement-by-statement: Lock/RLock pushes the class, Unlock/RUnlock
// pops it, a deferred unlock holds to function end, and branches are
// explored with a copy of the held set. A call made while holding adds
// edges to everything the callee transitively acquires — within the
// package via the shared call graph (internal/analysis/callgraph), and
// across packages via the module-mode global check, which stitches the
// per-package summaries together and reports only the cycles a single
// package cannot see. RLock-only self-edges are tolerated (concurrent
// readers are the point of an RWMutex); everything else in a cycle is
// reported with the counter-witness position inline.
//
// The analyzer also reports a stored callback invoked while a lock is
// held: a func value read from a field, map or slice dispatches to code
// registered by another package, whose acquisitions are exactly what
// the static edge collector cannot see — every module-wide cycle this
// analyzer could miss would be laundered through that shape. The
// sanctioned idiom is to snapshot the callback under the lock and
// invoke it after release (obs.Registry's scrape and
// domain.republishAll both do this). Function parameters are exempt —
// a closure the lock's owner passes explicitly is part of the
// function's contract (replication's waitCondition evaluates its
// condition under mu by design) — and so are locals only ever assigned
// function literals, whose bodies are visible.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"eternalgw/internal/analysis"
	"eternalgw/internal/analysis/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc:  "reports mutex acquisition cycles, recursive locking, cross-shard acquisitions, and stored callbacks invoked under a held lock",
	Run:  run,
}

// lockMethods classifies the sync primitives.
var lockMethods = map[string]struct{ acquire, rlock bool }{
	"sync.Mutex.Lock":      {true, false},
	"sync.RWMutex.Lock":    {true, false},
	"sync.RWMutex.RLock":   {true, true},
	"sync.Mutex.Unlock":    {false, false},
	"sync.RWMutex.Unlock":  {false, false},
	"sync.RWMutex.RUnlock": {false, true},
}

// Acq is one lock-class acquisition.
type Acq struct {
	Class string
	RLock bool
	Pos   token.Pos
}

// Edge records "To was acquired at Pos while From was held".
type Edge struct {
	From, To           string
	FromRLock, ToRLock bool
	Pos                token.Pos // the acquisition of To
	HeldAt             token.Pos // where From was taken
	Global             bool      // derived from a cross-package call
}

// HeldCall records a call to a function outside the package made while
// holding a lock; the global check expands it against the callee's
// module-wide acquisition set.
type HeldCall struct {
	Held      string
	HeldRLock bool
	HeldAt    token.Pos
	Callee    string // analysis.FuncKey
	Pos       token.Pos
}

// DynInfo records that a function (transitively) invokes a stored
// callback: a func value read from a field, map or slice, whose body no
// static analysis can see.
type DynInfo struct {
	Pos token.Pos // the dynamic call site
	Via string    // same-package function carrying it, "" when direct
}

// CallbackHazard is a stored callback dispatched while a lock is held.
type CallbackHazard struct {
	Pos       token.Pos // the call made under the lock
	Held      string
	HeldRLock bool
	HeldAt    token.Pos
	Dyn       DynInfo
}

// FuncInfo is the per-function summary the global check consumes.
type FuncInfo struct {
	Acquires  []Acq      // transitive within the package
	Callees   []string   // cross-package static callees, transitively
	HeldCalls []HeldCall //
	Dyn       *DynInfo   // invokes a stored callback, transitively
}

// Summary is everything lockorder knows about one package.
type Summary struct {
	PkgPath   string
	Edges     []Edge
	Sharded   map[string]bool
	Funcs     map[string]*FuncInfo
	Callbacks []CallbackHazard
}

func run(pass *analysis.Pass) error {
	s := Collect(pass.Pkg, pass.Files, pass.TypesInfo)
	for _, h := range hazards(s.Edges, s.Sharded, pass.Fset, false) {
		pass.Reportf(h.pos, "%s", h.msg)
	}
	for _, cb := range s.Callbacks {
		pass.Reportf(cb.Pos, "%s", callbackMsg(cb, pass.Fset))
	}
	return nil
}

// callbackMsg renders a callback-under-lock hazard.
func callbackMsg(cb CallbackHazard, fset *token.FileSet) string {
	at := func(p token.Pos) string { return fset.Position(p).String() }
	if cb.Dyn.Via == "" {
		return fmt.Sprintf(
			"stored callback invoked while %s is held (since %s); its acquisitions are invisible to lock-order analysis — snapshot the callback under the lock and invoke it after release",
			cb.Held, at(cb.HeldAt))
	}
	return fmt.Sprintf(
		"call to %s invokes a stored callback (at %s) while %s is held (since %s); its acquisitions are invisible to lock-order analysis — snapshot the callback under the lock and invoke it after release",
		cb.Dyn.Via, at(cb.Dyn.Pos), cb.Held, at(cb.HeldAt))
}

// Global is the module-mode check: it merges every package's summary,
// expands calls-while-holding against the callees' module-wide
// acquisition sets, and reports the cycles that only exist across
// package boundaries.
func Global(l *analysis.Loader, pkgs []*analysis.Package) []analysis.Diagnostic {
	var edges []Edge
	sharded := make(map[string]bool)
	funcs := make(map[string]*FuncInfo)
	for _, pkg := range pkgs {
		s := Collect(pkg.Types, pkg.Files, pkg.Info)
		edges = append(edges, s.Edges...)
		for c, ok := range s.Sharded {
			if ok {
				sharded[c] = true
			}
		}
		for k, fi := range s.Funcs {
			funcs[k] = fi
		}
	}

	// Module-wide acquisition sets: iterate to fixpoint over the
	// cross-package call edges (intra-package closure is already done).
	acq := make(map[string]map[string]Acq)
	for k, fi := range funcs {
		m := make(map[string]Acq)
		for _, a := range fi.Acquires {
			m[a.Class] = a
		}
		acq[k] = m
	}
	for changed := true; changed; {
		changed = false
		for k, fi := range funcs {
			for _, callee := range fi.Callees {
				for c, a := range acq[callee] {
					if _, ok := acq[k][c]; !ok {
						acq[k][c] = a
						changed = true
					}
				}
			}
		}
	}

	var callbacks []CallbackHazard
	cbSeen := make(map[string]bool)
	for _, fi := range funcs {
		for _, hc := range fi.HeldCalls {
			for _, a := range acq[hc.Callee] {
				edges = append(edges, Edge{
					From: hc.Held, To: a.Class,
					FromRLock: hc.HeldRLock, ToRLock: a.RLock,
					Pos: hc.Pos, HeldAt: hc.HeldAt, Global: true,
				})
			}
			// A cross-package callee that dispatches a stored callback
			// extends the held section into invisible code just like an
			// intra-package one; the per-package pass cannot see it.
			if cf := funcs[hc.Callee]; cf != nil && cf.Dyn != nil {
				key := fmt.Sprintf("%s|%d", hc.Held, hc.Pos)
				if !cbSeen[key] {
					cbSeen[key] = true
					callbacks = append(callbacks, CallbackHazard{
						Pos: hc.Pos, Held: hc.Held, HeldRLock: hc.HeldRLock,
						HeldAt: hc.HeldAt,
						Dyn:    DynInfo{Pos: cf.Dyn.Pos, Via: hc.Callee},
					})
				}
			}
		}
	}

	var diags []analysis.Diagnostic
	for _, h := range hazards(edges, sharded, l.Fset, true) {
		diags = append(diags, analysis.Diagnostic{
			Pos:      h.pos,
			Analyzer: Analyzer.Name,
			Message:  h.msg,
		})
	}
	for _, cb := range callbacks {
		diags = append(diags, analysis.Diagnostic{
			Pos:      cb.Pos,
			Analyzer: Analyzer.Name,
			Message:  callbackMsg(cb, l.Fset),
		})
	}
	return diags
}

// Collect extracts the lock-order summary of one package.
func Collect(pkg *types.Package, files []*ast.File, info *types.Info) *Summary {
	g := callgraph.New(files, info)
	c := &collector{
		g:    g,
		info: info,
		pkg:  pkg,
		s: &Summary{
			PkgPath: pkg.Path(),
			Sharded: make(map[string]bool),
			Funcs:   make(map[string]*FuncInfo),
		},
		edgeSeen: make(map[string]bool),
	}
	c.findShardedTypes(files)

	// Per-function direct facts, then the intra-package transitive
	// closure of acquires and cross-package callees.
	direct := make(map[*types.Func]*funcFacts)
	for _, fn := range g.Funcs() {
		fd := g.Decl(fn)
		c.setCurrent(fn, fd)
		direct[fn] = c.directFacts(fd)
	}
	c.trans = closeOver(direct, g)

	for _, fn := range g.Funcs() {
		fd := g.Decl(fn)
		c.setCurrent(fn, fd)
		c.simFunc(fd.Body)
		// Function literals run with their own (empty) held set: a
		// goroutine or stored callback does not inherit the spawn
		// site's locks.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				c.simFunc(lit.Body)
			}
			return true
		})

		t := c.trans[fn]
		fi := &FuncInfo{}
		for _, cl := range sortedKeys(t.acquires) {
			fi.Acquires = append(fi.Acquires, t.acquires[cl])
		}
		fi.Callees = sortedStrings(t.crossCallees)
		fi.HeldCalls = c.heldCalls[fn]
		fi.Dyn = t.dyn
		c.s.Funcs[analysis.FuncKey(fn)] = fi
	}
	return c.s
}

// setCurrent points the collector at one declaration: its function, and
// the parameter objects of the declaration and every function literal
// inside it (parameters are exempt from the stored-callback rule).
func (c *collector) setCurrent(fn *types.Func, fd *ast.FuncDecl) {
	c.current = fn
	c.curDecl = fd
	c.curParams = make(map[types.Object]bool)
	ast.Inspect(fd, func(n ast.Node) bool {
		ft, ok := n.(*ast.FuncType)
		if !ok || ft.Params == nil {
			return true
		}
		for _, f := range ft.Params.List {
			for _, name := range f.Names {
				if o := c.info.Defs[name]; o != nil {
					c.curParams[o] = true
				}
			}
		}
		return true
	})
}

type funcFacts struct {
	acquires     map[string]Acq
	crossCallees map[string]bool
	dyn          *DynInfo // contains (or reaches) a stored-callback call
}

type collector struct {
	g         *callgraph.Graph
	info      *types.Info
	pkg       *types.Package
	s         *Summary
	trans     map[*types.Func]*funcFacts
	edgeSeen  map[string]bool
	cbSeen    map[string]bool
	heldCalls map[*types.Func][]HeldCall
	current   *types.Func
	curDecl   *ast.FuncDecl
	curParams map[types.Object]bool
}

// findShardedTypes marks every named struct type that appears as the
// element of a slice, array or map field declared in the package:
// mutexes owned by such a type form a sharded class.
func (c *collector) findShardedTypes(files []*ast.File) {
	markElem := func(t ast.Expr) {
		key := analysis.TypeKey(c.info.TypeOf(t))
		if key != "" && strings.HasPrefix(key, c.pkg.Path()+".") {
			c.s.Sharded[key] = true
		}
	}
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				switch ft := field.Type.(type) {
				case *ast.ArrayType:
					markElem(ft.Elt)
				case *ast.MapType:
					markElem(ft.Value)
				}
			}
			return true
		})
	}
	// The marks are type keys; acquisition sites translate them to
	// class keys (type + field) lazily via shardedOwner.
}

// shardedOwner reports whether the class key belongs to a sharded type.
func (c *collector) shardedOwner(class string) bool {
	i := strings.LastIndex(class, ".")
	return i > 0 && c.s.Sharded[class[:i]]
}

// classOf resolves the lock class of a mutex receiver expression.
func (c *collector) classOf(recv ast.Expr) (class string, sharded, ok bool) {
	recv = ast.Unparen(recv)
	switch e := recv.(type) {
	case *ast.SelectorExpr:
		owner := analysis.TypeKey(c.info.TypeOf(e.X))
		if owner == "" {
			return "", false, false
		}
		class = owner + "." + e.Sel.Name
		return class, c.shardedOwner(class) || hasIndex(e.X), true
	case *ast.Ident:
		if v, ok := c.info.Uses[e].(*types.Var); ok && v.Pkg() != nil && !v.IsField() &&
			v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name(), false, true
		}
	}
	return "", false, false
}

// hasIndex reports whether an index expression feeds the receiver chain
// (s.shards[i].mu — a shard picked by index).
func hasIndex(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.IndexExpr:
		return true
	case *ast.SelectorExpr:
		return hasIndex(e.X)
	case *ast.StarExpr:
		return hasIndex(e.X)
	case *ast.CallExpr:
		return false
	}
	return false
}

// lockCall classifies a call as a lock-class operation.
func (c *collector) lockCall(call *ast.CallExpr) (class string, acquire, rlock, sharded, ok bool) {
	callee := analysis.Callee(c.info, call)
	m, isLock := lockMethods[analysis.FuncKey(callee)]
	if !isLock {
		return "", false, false, false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false, false, false
	}
	class, sharded, ok = c.classOf(sel.X)
	return class, m.acquire, m.rlock, sharded, ok
}

// directFacts scans a declaration for lock acquisitions and
// cross-package static callees, excluding function literals and spawned
// bodies (they run with their own held set).
func (c *collector) directFacts(fd *ast.FuncDecl) *funcFacts {
	ff := &funcFacts{acquires: make(map[string]Acq), crossCallees: make(map[string]bool)}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if class, acquire, rlock, sharded, ok := c.lockCall(n); ok {
				if acquire {
					if old, seen := ff.acquires[class]; !seen || (old.RLock && !rlock) {
						ff.acquires[class] = Acq{Class: class, RLock: rlock, Pos: n.Pos()}
					}
					if sharded {
						c.s.Sharded[class] = true
					}
				}
				return true
			}
			callee := analysis.Callee(c.info, n)
			if callee == nil {
				if ff.dyn == nil && c.isDynamicCall(n) {
					ff.dyn = &DynInfo{Pos: n.Pos()}
				}
				return true
			}
			if callee.Pkg() == nil {
				return true
			}
			if c.g.Decl(callee) == nil && callee.Pkg() != c.pkg && callee.Pkg().Path() != "sync" {
				ff.crossCallees[analysis.FuncKey(callee)] = true
			}
		}
		return true
	})
	return ff
}

// isDynamicCall reports whether call invokes a stored callback: a func
// value whose body static analysis cannot see. Conversions, builtins,
// resolvable functions and methods (including interface methods) are
// not; neither are function parameters of the enclosing declaration
// (an explicitly passed closure is part of the function's contract) or
// locals only ever assigned function literals (their bodies are right
// there, and are simulated as separate roots).
func (c *collector) isDynamicCall(call *ast.CallExpr) bool {
	if tv, ok := c.info.Types[call.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return false
	}
	t := c.info.TypeOf(call.Fun)
	if t == nil {
		return false
	}
	if _, ok := t.Underlying().(*types.Signature); !ok {
		return false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		obj := c.info.Uses[id]
		if obj == nil || c.curParams[obj] {
			return false
		}
		if v, ok := obj.(*types.Var); ok && !v.IsField() && c.funcLitOnly(obj) {
			return false
		}
	}
	return true
}

// funcLitOnly reports whether every assignment to obj inside the current
// declaration is a function literal (and there is at least one).
func (c *collector) funcLitOnly(obj types.Object) bool {
	if c.curDecl == nil {
		return false
	}
	found, all := false, true
	ast.Inspect(c.curDecl, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				o := c.info.Defs[id]
				if o == nil {
					o = c.info.Uses[id]
				}
				if o != obj {
					continue
				}
				found = true
				if len(n.Rhs) == len(n.Lhs) {
					if _, isLit := ast.Unparen(n.Rhs[i]).(*ast.FuncLit); isLit {
						continue
					}
				}
				all = false
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if c.info.Defs[name] != obj {
					continue
				}
				found = true
				if i < len(n.Values) {
					if _, isLit := ast.Unparen(n.Values[i]).(*ast.FuncLit); isLit {
						continue
					}
				}
				all = false
			}
		}
		return true
	})
	return found && all
}

// closeOver computes the intra-package transitive closure of acquires
// and cross-package callees over the static call graph.
func closeOver(direct map[*types.Func]*funcFacts, g *callgraph.Graph) map[*types.Func]*funcFacts {
	callees := make(map[*types.Func][]*types.Func)
	for _, fn := range g.Funcs() {
		fd := g.Decl(fn)
		seen := make(map[*types.Func]bool)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			// Spawned and deferred-literal code runs with its own held
			// set; its acquisitions must not leak into the caller's, so
			// skip the same subtrees directFacts does.
			switch n.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok {
				if callee, cfd := g.Callee(call); cfd != nil && !seen[callee] {
					seen[callee] = true
					callees[fn] = append(callees[fn], callee)
				}
			}
			return true
		})
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range g.Funcs() {
			ff := direct[fn]
			for _, callee := range callees[fn] {
				cf := direct[callee]
				for class, a := range cf.acquires {
					if _, ok := ff.acquires[class]; !ok {
						ff.acquires[class] = a
						changed = true
					}
				}
				for key := range cf.crossCallees {
					if !ff.crossCallees[key] {
						ff.crossCallees[key] = true
						changed = true
					}
				}
				if ff.dyn == nil && cf.dyn != nil {
					ff.dyn = cf.dyn
					changed = true
				}
			}
		}
	}
	return direct
}

// --- intra-function simulation ---

type held struct {
	class   string
	rlock   bool
	sharded bool
	pos     token.Pos
}

// simFunc simulates one body with an empty held set.
func (c *collector) simFunc(body *ast.BlockStmt) {
	if c.heldCalls == nil {
		c.heldCalls = make(map[*types.Func][]HeldCall)
	}
	c.simBlock(body.List, nil)
}

func (c *collector) simBlock(stmts []ast.Stmt, h []held) []held {
	for _, st := range stmts {
		h = c.simStmt(st, h)
	}
	return h
}

func cloneHeld(h []held) []held { return append([]held(nil), h...) }

func (c *collector) simStmt(st ast.Stmt, h []held) []held {
	switch st := st.(type) {
	case nil:
		return h
	case *ast.BlockStmt:
		return c.simBlock(st.List, h)
	case *ast.LabeledStmt:
		return c.simStmt(st.Stmt, h)
	case *ast.DeferStmt:
		// A deferred unlock runs at return: the lock stays held for the
		// rest of the simulation, which is exactly the ordering truth.
		if _, _, _, _, ok := c.lockCall(st.Call); ok {
			return h
		}
		for _, a := range st.Call.Args {
			h = c.simExpr(a, h)
		}
		return h
	case *ast.GoStmt:
		for _, a := range st.Call.Args {
			h = c.simExpr(a, h)
		}
		return h
	case *ast.IfStmt:
		h = c.simStmt(st.Init, h)
		h = c.simExpr(st.Cond, h)
		c.simBlock(st.Body.List, cloneHeld(h))
		if st.Else != nil {
			c.simStmt(st.Else, cloneHeld(h))
		}
		return h
	case *ast.ForStmt:
		h = c.simStmt(st.Init, h)
		if st.Cond != nil {
			h = c.simExpr(st.Cond, h)
		}
		inner := c.simBlock(st.Body.List, cloneHeld(h))
		c.simStmt(st.Post, inner)
		return h
	case *ast.RangeStmt:
		h = c.simExpr(st.X, h)
		c.simBlock(st.Body.List, cloneHeld(h))
		return h
	case *ast.SwitchStmt:
		h = c.simStmt(st.Init, h)
		if st.Tag != nil {
			h = c.simExpr(st.Tag, h)
		}
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.simBlock(cc.Body, cloneHeld(h))
			}
		}
		return h
	case *ast.TypeSwitchStmt:
		h = c.simStmt(st.Init, h)
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.simBlock(cc.Body, cloneHeld(h))
			}
		}
		return h
	case *ast.SelectStmt:
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CommClause); ok {
				inner := cloneHeld(h)
				if cc.Comm != nil {
					inner = c.simStmt(cc.Comm, inner)
				}
				c.simBlock(cc.Body, inner)
			}
		}
		return h
	default:
		return c.simExpr(st, h)
	}
}

// simExpr scans a node for calls in source order, updating the held set
// and recording edges. Function literals are skipped — they are
// simulated as separate roots.
func (c *collector) simExpr(n ast.Node, h []held) []held {
	if n == nil {
		return h
	}
	var calls []*ast.CallExpr
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			calls = append(calls, n)
		}
		return true
	})
	for _, call := range calls {
		h = c.simCall(call, h)
	}
	return h
}

func (c *collector) simCall(call *ast.CallExpr, h []held) []held {
	if class, acquire, rlock, sharded, ok := c.lockCall(call); ok {
		if !acquire {
			for i := len(h) - 1; i >= 0; i-- {
				if h[i].class == class {
					return append(append([]held(nil), h[:i]...), h[i+1:]...)
				}
			}
			return h
		}
		for _, hl := range h {
			c.addEdge(Edge{
				From: hl.class, To: class,
				FromRLock: hl.rlock, ToRLock: rlock,
				Pos: call.Pos(), HeldAt: hl.pos,
			})
		}
		if sharded {
			c.s.Sharded[class] = true
		}
		return append(h, held{class: class, rlock: rlock, sharded: sharded, pos: call.Pos()})
	}

	callee := analysis.Callee(c.info, call)
	if callee == nil {
		if len(h) > 0 && c.isDynamicCall(call) {
			c.addCallback(CallbackHazard{
				Pos: call.Pos(), Held: h[len(h)-1].class,
				HeldRLock: h[len(h)-1].rlock, HeldAt: h[len(h)-1].pos,
				Dyn: DynInfo{Pos: call.Pos()},
			})
		}
		return h
	}
	if len(h) == 0 {
		return h
	}
	if fd := c.g.Decl(callee); fd != nil {
		// Same-package callee: edge to everything it transitively takes.
		if t := c.trans[callee]; t != nil {
			for _, class := range sortedKeys(t.acquires) {
				a := t.acquires[class]
				for _, hl := range h {
					c.addEdge(Edge{
						From: hl.class, To: a.Class,
						FromRLock: hl.rlock, ToRLock: a.RLock,
						Pos: call.Pos(), HeldAt: hl.pos,
					})
				}
			}
			if t.dyn != nil {
				c.addCallback(CallbackHazard{
					Pos: call.Pos(), Held: h[len(h)-1].class,
					HeldRLock: h[len(h)-1].rlock, HeldAt: h[len(h)-1].pos,
					Dyn: DynInfo{Pos: t.dyn.Pos, Via: callee.Name()},
				})
			}
		}
		return h
	}
	if callee.Pkg() != nil && callee.Pkg() != c.pkg && callee.Pkg().Path() != "sync" {
		for _, hl := range h {
			c.heldCalls[c.current] = append(c.heldCalls[c.current], HeldCall{
				Held: hl.class, HeldRLock: hl.rlock, HeldAt: hl.pos,
				Callee: analysis.FuncKey(callee), Pos: call.Pos(),
			})
		}
	}
	return h
}

func (c *collector) addEdge(e Edge) {
	key := fmt.Sprintf("%s|%s|%v|%v", e.From, e.To, e.FromRLock, e.ToRLock)
	if c.edgeSeen[key] {
		return
	}
	c.edgeSeen[key] = true
	c.s.Edges = append(c.s.Edges, e)
}

func (c *collector) addCallback(cb CallbackHazard) {
	if c.cbSeen == nil {
		c.cbSeen = make(map[string]bool)
	}
	key := fmt.Sprintf("%s|%d", cb.Held, cb.Pos)
	if c.cbSeen[key] {
		return
	}
	c.cbSeen[key] = true
	c.s.Callbacks = append(c.s.Callbacks, cb)
}

// --- hazard detection ---

type hazard struct {
	pos token.Pos
	msg string
}

// hazards finds self-edges and cycles. In global mode only hazards that
// involve at least one cross-package edge are reported (the per-package
// pass already covered the rest).
func hazards(edges []Edge, sharded map[string]bool, fset *token.FileSet, globalOnly bool) []hazard {
	var out []hazard
	at := func(p token.Pos) string { return fset.Position(p).String() }

	for _, e := range edges {
		if e.From != e.To {
			continue
		}
		if globalOnly != e.Global {
			continue
		}
		if e.FromRLock && e.ToRLock {
			continue // concurrent readers are fine
		}
		if sharded[e.From] {
			out = append(out, hazard{e.Pos, fmt.Sprintf(
				"acquisition of sharded lock class %s while another lock of the same class is held (since %s); cross-shard order is undefined — release the first shard or impose an index order",
				e.From, at(e.HeldAt))})
		} else {
			out = append(out, hazard{e.Pos, fmt.Sprintf(
				"%s acquired while already held (since %s); sync mutexes are not reentrant",
				e.From, at(e.HeldAt))})
		}
	}

	// Cycles between distinct classes: adjacency without self-edges,
	// report once per ordered pair at the lexicographically first edge.
	adj := make(map[string][]Edge)
	for _, e := range edges {
		if e.From != e.To {
			adj[e.From] = append(adj[e.From], e)
		}
	}
	reported := make(map[string]bool)
	for _, e := range edges {
		if e.From == e.To || e.From > e.To {
			continue
		}
		path, hasGlobal := findPath(adj, e.To, e.From)
		if path == nil {
			continue
		}
		if globalOnly && !e.Global && !hasGlobal {
			continue
		}
		pairKey := e.From + "|" + e.To
		if reported[pairKey] {
			continue
		}
		reported[pairKey] = true
		back := path[len(path)-1] // the edge that re-acquires e.From
		out = append(out, hazard{e.Pos, fmt.Sprintf(
			"lock order cycle: %s acquired while %s is held here, but %s is acquired while %s is held at %s",
			e.To, e.From, e.From, back.From, at(back.Pos))})
	}

	sort.Slice(out, func(i, j int) bool { return out[i].pos < out[j].pos })
	return out
}

// findPath finds an edge path from -> ... -> to, returning the edges and
// whether any of them is cross-package.
func findPath(adj map[string][]Edge, from, to string) ([]Edge, bool) {
	type state struct {
		node string
		path []Edge
	}
	visited := map[string]bool{from: true}
	queue := []state{{from, nil}}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		for _, e := range adj[s.node] {
			p := append(append([]Edge(nil), s.path...), e)
			if e.To == to {
				hasGlobal := false
				for _, pe := range p {
					if pe.Global {
						hasGlobal = true
					}
				}
				return p, hasGlobal
			}
			if !visited[e.To] {
				visited[e.To] = true
				queue = append(queue, state{e.To, p})
			}
		}
	}
	return nil, false
}

func sortedKeys(m map[string]Acq) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedStrings(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
