// Package callgraph builds the static call graph of a type-checked
// package and drives reachability walks over it. It is the shared
// substrate of every gwlint analyzer that reasons about "code reachable
// from X": looplock (blocking calls reachable from the replication
// event loop), simdet (nondeterminism reachable from the simulation
// harness), gospawn (lifecycle proofs reachable from a spawned body)
// and lockorder (lock acquisitions reachable through calls).
//
// The graph is deliberately modest — it resolves only static callees
// (package functions and methods named directly at the call site) and
// trusts dynamic calls (interface methods, function values), exactly as
// the original walk inside looplock did. The analyzers' blocking and
// nondeterminism sets are made of leaf operations precisely so the
// interesting cases need no callee bodies; a dynamic call that matters
// can always be rooted explicitly with a gwlint directive.
package callgraph

import (
	"go/ast"
	"go/types"

	"eternalgw/internal/analysis"
)

// Graph is the static call graph of one type-checked package.
type Graph struct {
	Files []*ast.File
	Info  *types.Info

	decls map[*types.Func]*ast.FuncDecl
	order []*types.Func // declaration order, for deterministic iteration
}

// New collects every function declaration with a body.
func New(files []*ast.File, info *types.Info) *Graph {
	g := &Graph{Files: files, Info: info, decls: make(map[*types.Func]*ast.FuncDecl)}
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
					g.decls[fn] = fd
					g.order = append(g.order, fn)
				}
			}
		}
	}
	return g
}

// Decl returns the declaration of fn, or nil when fn is not declared
// (with a body) in this package.
func (g *Graph) Decl(fn *types.Func) *ast.FuncDecl { return g.decls[fn] }

// Funcs returns every declared function in declaration order.
func (g *Graph) Funcs() []*types.Func { return g.order }

// FuncsByKey returns the declared functions whose analysis.FuncKey is in
// keys, in declaration order.
func (g *Graph) FuncsByKey(keys map[string]bool) []*types.Func {
	var out []*types.Func
	for _, fn := range g.order {
		if keys[analysis.FuncKey(fn)] {
			out = append(out, fn)
		}
	}
	return out
}

// DirectiveRoots returns the declared functions whose doc comment
// carries the given "gwlint:<directive>".
func (g *Graph) DirectiveRoots(directive string) []*types.Func {
	var out []*types.Func
	byObj := analysis.FuncDirectives(g.Files, g.Info)
	for _, fn := range g.order {
		if analysis.HasDirective(byObj[types.Object(fn)], directive) {
			out = append(out, fn)
		}
	}
	return out
}

// RegisteredArgs returns every declared function passed as an argument
// to a call of the function named by registrarKey (an analysis.FuncKey).
// This resolves registration points whose function argument later runs
// in a constrained context — (*Mechanisms).SetObserver's observers run
// on the replication event loop, for example.
func (g *Graph) RegisteredArgs(registrarKey string) []*types.Func {
	var out []*types.Func
	seen := map[*types.Func]bool{}
	for _, f := range g.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if analysis.FuncKey(analysis.Callee(g.Info, call)) != registrarKey {
				return true
			}
			for _, arg := range call.Args {
				var id *ast.Ident
				switch a := ast.Unparen(arg).(type) {
				case *ast.Ident:
					id = a
				case *ast.SelectorExpr:
					id = a.Sel
				}
				if id == nil {
					continue
				}
				if fn, ok := g.Info.Uses[id].(*types.Func); ok && !seen[fn] && g.decls[fn] != nil {
					seen[fn] = true
					out = append(out, fn)
				}
			}
			return true
		})
	}
	return out
}

// Callee resolves the static callee of a call, when it is declared in
// this package with a body.
func (g *Graph) Callee(call *ast.CallExpr) (*types.Func, *ast.FuncDecl) {
	fn := analysis.Callee(g.Info, call)
	if fn == nil {
		return nil, nil
	}
	return fn, g.decls[fn]
}

// SpawnedBody resolves the body a go statement runs: the function
// literal's own body, or the declaration of a directly named
// same-package callee. Nil when the spawned function is dynamic or
// declared elsewhere.
func (g *Graph) SpawnedBody(gs *ast.GoStmt) *ast.BlockStmt {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	if _, fd := g.Callee(gs.Call); fd != nil {
		return fd.Body
	}
	return nil
}

// Walk configures a reachability traversal (see Graph.Walk).
type Walk struct {
	// FollowGoBodies controls go statements. When false the spawned
	// code is skipped — it runs on another goroutine — but the spawn's
	// argument expressions are still visited (they are evaluated on the
	// spawning goroutine). When true the traversal descends into the
	// spawned body and follows a directly spawned same-package callee.
	FollowGoBodies bool
	// Node is invoked for every node visited, with the call path that
	// reached the enclosing function ("root → f → g"). Returning false
	// prunes the subtree: children are not visited and calls inside it
	// are not followed.
	Node func(n ast.Node, path string) bool
}

// Walk traverses every function reachable from roots through static
// same-package calls, visiting each declared function at most once (the
// first path wins). The zero Walk simply marks reachability.
func (g *Graph) Walk(roots []*types.Func, w *Walk) map[*types.Func]bool {
	visited := make(map[*types.Func]bool)
	var scan func(fn *types.Func, path string)
	var inspect func(n ast.Node, path string)

	inspect = func(n ast.Node, path string) {
		ast.Inspect(n, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			if w.Node != nil && !w.Node(n, path) {
				return false
			}
			switch n := n.(type) {
			case *ast.GoStmt:
				if !w.FollowGoBodies {
					for _, a := range n.Call.Args {
						inspect(a, path)
					}
					return false
				}
				if fn, fd := g.Callee(n.Call); fd != nil && !visited[fn] {
					visited[fn] = true
					inspect(fd.Body, path+" → "+fn.Name())
				}
				return true
			case *ast.CallExpr:
				if fn, fd := g.Callee(n); fd != nil && !visited[fn] {
					visited[fn] = true
					inspect(fd.Body, path+" → "+fn.Name())
				}
				return true
			}
			return true
		})
	}
	scan = func(fn *types.Func, path string) {
		if visited[fn] {
			return
		}
		visited[fn] = true
		if fd := g.decls[fn]; fd != nil {
			inspect(fd.Body, path)
		}
	}
	for _, fn := range roots {
		scan(fn, fn.Name())
	}
	return visited
}
