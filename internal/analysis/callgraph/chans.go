package callgraph

import (
	"go/ast"
	"go/types"
	"strings"

	"eternalgw/internal/analysis"
)

// ChanFacts records, for every channel storage location assigned in the
// package, whether all of its make sites carry a constant capacity
// greater than zero. A send on such a channel cannot block its single
// producer; looplock uses that to admit buffered handoffs on the event
// loop, and gospawn to prove a result-channel send terminates.
type ChanFacts struct {
	info     *types.Info
	buffered map[chanKey]bool
	unknown  map[chanKey]bool // make with unknown/zero cap seen
}

// chanKey identifies where a channel lives: a variable object, or a
// named struct field.
type chanKey struct {
	obj   types.Object // variable, when field == ""
	owner string       // TypeKey of the struct, for fields
	field string
}

// Chans scans the package's make sites and returns the channel facts.
func (g *Graph) Chans() *ChanFacts {
	c := &ChanFacts{
		info:     g.Info,
		buffered: make(map[chanKey]bool),
		unknown:  make(map[chanKey]bool),
	}
	note := func(key chanKey, buffered bool) {
		if buffered && !c.unknown[key] {
			c.buffered[key] = true
		} else {
			c.unknown[key] = true
			delete(c.buffered, key)
		}
	}
	for _, f := range g.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i, rhs := range n.Rhs {
					if ok, buffered := c.makeChan(rhs); ok {
						if key, ok := c.keyFor(n.Lhs[i]); ok {
							note(key, buffered)
						}
					}
				}
			case *ast.CompositeLit:
				for _, el := range n.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					if ok, buffered := c.makeChan(kv.Value); ok {
						if id, ok := kv.Key.(*ast.Ident); ok {
							if owner := analysis.TypeKey(c.info.TypeOf(n)); owner != "" {
								note(chanKey{owner: owner, field: id.Name}, buffered)
							}
						}
					}
				}
			}
			return true
		})
	}
	return c
}

// ProvablyBuffered reports whether every make site seen for ch's storage
// location had a constant positive capacity.
func (c *ChanFacts) ProvablyBuffered(ch ast.Expr) bool {
	key, ok := c.keyFor(ch)
	if !ok {
		return false
	}
	return c.buffered[key] && !c.unknown[key]
}

// makeChan reports whether e is make(chan ...) and whether its capacity
// is a constant greater than zero.
func (c *ChanFacts) makeChan(e ast.Expr) (isMake, buffered bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false, false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false, false
	}
	if b, ok := c.info.Uses[id].(*types.Builtin); !ok || b.Name() != "make" {
		return false, false
	}
	if len(call.Args) == 0 {
		return false, false
	}
	if _, ok := c.info.TypeOf(call.Args[0]).Underlying().(*types.Chan); !ok {
		return false, false
	}
	if len(call.Args) < 2 {
		return true, false
	}
	tv, ok := c.info.Types[call.Args[1]]
	if !ok || tv.Value == nil {
		return true, false
	}
	return true, constIntPositive(tv.Value.String())
}

func constIntPositive(s string) bool {
	s = strings.TrimSpace(s)
	return s != "" && s != "0" && !strings.HasPrefix(s, "-")
}

// keyFor resolves a channel storage location for an lvalue or channel
// expression.
func (c *ChanFacts) keyFor(e ast.Expr) (chanKey, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := c.info.Defs[e]
		if obj == nil {
			obj = c.info.Uses[e]
		}
		if obj == nil {
			return chanKey{}, false
		}
		return chanKey{obj: obj}, true
	case *ast.SelectorExpr:
		owner := analysis.TypeKey(c.info.TypeOf(e.X))
		if owner == "" {
			return chanKey{}, false
		}
		return chanKey{owner: owner, field: e.Sel.Name}, true
	}
	return chanKey{}, false
}
