// Package completedno enforces the GIOP system-exception completion
// contract on shed and failure replies.
//
// Section 3.3's exactly-once argument only holds if a client that
// receives a system exception can tell whether its request may have
// executed. Every exception the gateway fabricates on a path where the
// request was never dispatched — admission sheds, decode failures,
// unknown objects — must therefore say COMPLETED_NO, so the client (or
// the thin client's retry loop) can reissue safely; and an exception
// raised where execution state is genuinely unknown must say
// COMPLETED_MAYBE, never NO. A bare integer in the completed argument
// slot is how PR 4 shipped a COMPLETED_YES shed reply without anyone
// noticing.
//
// The analyzer inspects every call to giop.SystemExceptionBody and
// requires:
//
//   - the completed argument is one of the named giop constants
//     (CompletedYes, CompletedNo, CompletedMaybe), not a literal;
//   - the minor argument is a named constant or an expression (a
//     documented minor-code table entry, or a value computed from one),
//     not a bare integer literal;
//   - when the repository ID is a compile-time string, its exception
//     name carries the completion status this codebase assigns it:
//     TRANSIENT, OBJECT_NOT_EXIST and MARSHAL arise only before
//     dispatch and must be COMPLETED_NO; NO_AGREEMENT means the replicas
//     split on an executed request and must be COMPLETED_MAYBE.
package completedno

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"

	"eternalgw/internal/analysis"
)

const sysExKey = "eternalgw/internal/giop.SystemExceptionBody"

// completionByException maps the exception name embedded in a repository
// ID to the completion status this codebase's paths imply for it.
var completionByException = map[string]int64{
	"TRANSIENT":        1, // CompletedNo: shed before dispatch
	"OBJECT_NOT_EXIST": 1, // CompletedNo: never dispatched
	"MARSHAL":          1, // CompletedNo: failed in decode
	"NO_AGREEMENT":     2, // CompletedMaybe: executed, outcome disputed
}

var completionName = map[int64]string{0: "COMPLETED_YES", 1: "COMPLETED_NO", 2: "COMPLETED_MAYBE"}

var Analyzer = &analysis.Analyzer{
	Name: "completedno",
	Doc:  "system exceptions on undispatched paths must carry COMPLETED_NO and a documented minor code",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if analysis.FuncKey(analysis.Callee(pass.TypesInfo, call)) != sysExKey || len(call.Args) != 4 {
				return true
			}
			check(pass, call)
			return true
		})
	}
	return nil
}

func check(pass *analysis.Pass, call *ast.CallExpr) {
	repoID, minor, completed := call.Args[1], call.Args[2], call.Args[3]

	if isBareLiteral(minor) {
		pass.Report(minor.Pos(),
			"bare literal minor code in SystemExceptionBody; use a named constant from the documented minor-code table")
	}

	completedConst, completedVal := namedIntConst(pass.TypesInfo, completed)
	if !completedConst {
		pass.Report(completed.Pos(),
			"completed status must be a named giop constant (CompletedYes/CompletedNo/CompletedMaybe), not a literal")
		// A literal still has a value; keep checking it against the
		// repository ID so a wrong bare status gets both findings.
		if v, ok := literalValue(pass.TypesInfo, completed); ok {
			completedVal = v
		} else {
			return
		}
	}

	repoVal, ok := stringValue(pass.TypesInfo, repoID)
	if !ok {
		return // dynamic repository ID: nothing more to prove statically
	}
	for name, want := range completionByException {
		if !strings.Contains(repoVal, name) {
			continue
		}
		if completedVal != want {
			pass.Reportf(completed.Pos(),
				"%s must be raised with %s (got %s): %s",
				name, completionName[want], completionName[completedVal], rationale(name))
		}
		return
	}
}

func rationale(name string) string {
	switch name {
	case "NO_AGREEMENT":
		return "the request executed but the replicas disagree, so the outcome is unknown"
	default:
		return "the request was never dispatched, so the client may retry safely"
	}
}

// isBareLiteral reports whether e is an (possibly parenthesized or
// converted) integer literal rather than a named constant or computed
// expression.
func isBareLiteral(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.BasicLit:
		return true
	case *ast.CallExpr: // uint32(7) is still a bare literal
		if len(e.Args) == 1 {
			return isBareLiteral(e.Args[0])
		}
	}
	return false
}

// namedIntConst reports whether e resolves to a declared constant, and
// its value.
func namedIntConst(info *types.Info, e ast.Expr) (bool, int64) {
	var id *ast.Ident
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return false, 0
	}
	c, ok := info.Uses[id].(*types.Const)
	if !ok {
		return false, 0
	}
	v, _ := constant.Int64Val(constant.ToInt(c.Val()))
	return true, v
}

func literalValue(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return 0, false
	}
	v, exact := constant.Int64Val(constant.ToInt(tv.Value))
	return v, exact
}

func stringValue(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}
