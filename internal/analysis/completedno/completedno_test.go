package completedno_test

import (
	"testing"

	"eternalgw/internal/analysis/analysistest"
	"eternalgw/internal/analysis/completedno"
)

func TestCompletedNo(t *testing.T) {
	analysistest.Run(t, completedno.Analyzer, "completed")
}
