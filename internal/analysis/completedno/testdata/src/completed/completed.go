// Package completed exercises the completedno analyzer against the real
// giop package: completion statuses must be the named constants, minor
// codes must come from a documented table, and the completion must match
// what the exception name implies on this codebase's paths.
package completed

import (
	"eternalgw/internal/cdr"
	"eternalgw/internal/giop"
)

// minorShed stands in for a documented minor-code table entry.
const minorShed uint32 = 7

func good(order cdr.ByteOrder) []byte {
	return giop.SystemExceptionBody(order, "IDL:omg.org/CORBA/TRANSIENT:1.0", minorShed, giop.CompletedNo)
}

func goodMaybe(order cdr.ByteOrder) []byte {
	return giop.SystemExceptionBody(order, "IDL:eternalgw/NO_AGREEMENT:1.0", minorShed, giop.CompletedMaybe)
}

func bareMinor(order cdr.ByteOrder) []byte {
	return giop.SystemExceptionBody(order, "IDL:omg.org/CORBA/TRANSIENT:1.0", 0, giop.CompletedNo) // want `bare literal minor code`
}

// A conversion does not launder a literal.
func convertedMinor(order cdr.ByteOrder) []byte {
	return giop.SystemExceptionBody(order, "IDL:omg.org/CORBA/TRANSIENT:1.0", uint32(3), giop.CompletedNo) // want `bare literal minor code`
}

func bareCompleted(order cdr.ByteOrder) []byte {
	return giop.SystemExceptionBody(order, "IDL:omg.org/CORBA/TRANSIENT:1.0", minorShed, 1) // want `completed status must be a named giop constant`
}

// A wrong bare status earns both findings: it is a literal, and its
// value contradicts the exception name.
func bareWrongCompleted(order cdr.ByteOrder) []byte {
	return giop.SystemExceptionBody(order, "IDL:omg.org/CORBA/TRANSIENT:1.0", minorShed, 0) // want `completed status must be a named giop constant` `TRANSIENT must be raised with COMPLETED_NO \(got COMPLETED_YES\)`
}

// The PR 4 shed-reply bug, reconstructed: a shed is never dispatched,
// so COMPLETED_YES lies to the client.
func shedYes(order cdr.ByteOrder) []byte {
	return giop.SystemExceptionBody(order, "IDL:omg.org/CORBA/OBJECT_NOT_EXIST:1.0", minorShed, giop.CompletedYes) // want `OBJECT_NOT_EXIST must be raised with COMPLETED_NO \(got COMPLETED_YES\)`
}

// NO_AGREEMENT means the request executed but the outcome is disputed:
// claiming COMPLETED_NO invites an unsafe retry.
func agreementNo(order cdr.ByteOrder) []byte {
	return giop.SystemExceptionBody(order, "IDL:eternalgw/NO_AGREEMENT:1.0", minorShed, giop.CompletedNo) // want `NO_AGREEMENT must be raised with COMPLETED_MAYBE \(got COMPLETED_NO\)`
}

// A dynamic repository ID proves nothing statically; only the literal
// rules apply.
func dynamic(order cdr.ByteOrder, repoID string, minor uint32) []byte {
	return giop.SystemExceptionBody(order, repoID, minor, giop.CompletedNo)
}

// The escape hatch documents a sanctioned exception to the rule.
func allowed(order cdr.ByteOrder) []byte {
	return giop.SystemExceptionBody(order, "IDL:eternalgw/NO_AGREEMENT:1.0", minorShed, giop.CompletedNo) //lint:allow completedno exercising the thin client's MAYBE handling requires a NO here
}
