// Package sim exercises the simdet analyzer: functions rooted with the
// gwlint:simroot directive (standing in for the deterministic
// simulation harness) must not consult the wall clock, the global
// math/rand source, spawn goroutines, or let map iteration order escape
// into observable output.
package sim

import (
	"math/rand"
	"sort"
	"time"
)

// gwlint:simroot
func step() time.Duration {
	start := time.Now() // want `time\.Now on a virtual-clock path \(reachable via step\)`
	helper()
	return time.Since(start) // want `time\.Since on a virtual-clock path \(reachable via step\)`
}

// helper is not a root itself; it is reached through step and the
// report spells out the path.
func helper() {
	time.Sleep(time.Millisecond) // want `time\.Sleep on a virtual-clock path \(reachable via step → helper\)`
}

// gwlint:simroot
func draws(seed int64) int {
	// Constructors are the sanctioned path: a seeded source is exactly
	// how determinism is achieved.
	r := rand.New(rand.NewSource(seed))
	n := r.Intn(10)
	n += rand.Intn(10) // want `global math/rand\.Intn on a virtual-clock path \(reachable via draws\)`
	return n
}

// gwlint:simroot
func spawns(ch chan int) {
	go func() { ch <- 1 }() // want `go statement on a virtual-clock path \(reachable via spawns\)`
}

// gwlint:simroot
func publishes(m map[string]int, out chan int, sink func(string)) {
	for k := range m {
		sink(k) // want `call inside map iteration on a virtual-clock path \(reachable via publishes\)`
	}
	for _, v := range m {
		out <- v // want `channel send inside map iteration on a virtual-clock path \(reachable via publishes\)`
	}
}

// gwlint:simroot
func sorted(m map[string]int) []string {
	// The sanctioned idiom: collect the keys, sort, then act. Only
	// side-effect-free builtins run inside the iteration.
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// gwlint:simroot
func snapshots(m map[string]int) map[string]int {
	// Map-to-map copies are commutative: order cannot escape.
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// offRoot is neither rooted nor reachable from a root: production code
// may read the wall clock freely.
func offRoot() time.Time { return time.Now() }

// gwlint:simroot
func sanctioned() {
	//lint:allow simdet the wall clock is the documented real-time default here
	time.Sleep(time.Millisecond)
}
