// Package simdet enforces the determinism discipline of the simulation
// harness: a seeded run's trace must be a pure function of its
// configuration, so nothing reachable from the virtual-clock event loop
// may consult the wall clock, the process-global random source, spawn
// goroutines, or let map iteration order escape into observable output.
// It is the static complement of the FNV trace-hash replay gate
// (docs/SIMULATION.md), and the precondition for running the production
// totem/replication/core stacks under the virtual clock: a package is
// opted in by rooting it here, and from then on the compiler-invisible
// nondeterminism sources LLFT-style replication must sanitize are
// machine-checked.
//
// Roots: every function declared in internal/sim and
// internal/faultinject, every function declared in internal/memnet (the
// deterministic network substrate — all of its delivery machinery runs
// as virtual-clock callbacks when a simulation injects its clock), and
// any function whose declaration carries a "gwlint:simroot" directive.
// From the roots the analyzer walks the package's static call graph
// (internal/analysis/callgraph) and reports:
//
//   - wall-clock calls: time.Now, Since, Until, Sleep, After, AfterFunc,
//     Tick, NewTimer, NewTicker. Durations and time arithmetic are fine;
//     reading or scheduling on the runtime clock is not.
//   - the process-global math/rand source: package-level rand.Intn,
//     rand.Float64 and friends. Methods on a seeded *rand.Rand are the
//     sanctioned replacement (derive the seed with faultinject.Split).
//   - go statements: simulated concurrency must be expressed as
//     virtual-clock events; a real goroutine races the event loop.
//   - map iteration whose order can escape: a range over a map whose
//     body performs calls (beyond side-effect-free builtins) or channel
//     sends. The sanctioned idioms — collect-keys-then-sort, map-to-map
//     copies, commutative aggregation — read and write only locals and
//     containers and survive the rule.
//
// The escape hatch is //lint:allow simdet <reason>; the only sanctioned
// use is the real-time default of an injectable clock (memnet's
// realClock), where the wall clock is the documented production
// behavior and every deterministic harness injects a virtual clock.
package simdet

import (
	"go/ast"
	"go/types"

	"eternalgw/internal/analysis"
	"eternalgw/internal/analysis/callgraph"
)

var Analyzer = &analysis.Analyzer{
	Name: "simdet",
	Doc:  "forbids wall-clock, global rand, goroutine spawns and order-leaking map iteration on virtual-clock-reachable paths",
	Run:  run,
}

// rootedPackages are analyzed whole: every declared function is a root.
var rootedPackages = map[string]bool{
	"eternalgw/internal/sim":         true,
	"eternalgw/internal/faultinject": true,
	"eternalgw/internal/memnet":      true,
}

// wallClock names the time package functions that read or schedule on
// the runtime clock.
var wallClock = map[string]bool{
	"time.Now":       true,
	"time.Since":     true,
	"time.Until":     true,
	"time.Sleep":     true,
	"time.After":     true,
	"time.AfterFunc": true,
	"time.Tick":      true,
	"time.NewTimer":  true,
	"time.NewTicker": true,
}

func run(pass *analysis.Pass) error {
	g := callgraph.New(pass.Files, pass.TypesInfo)

	var roots []*types.Func
	if rootedPackages[pass.Pkg.Path()] {
		roots = g.Funcs()
	}
	roots = append(roots, g.DirectiveRoots("simroot")...)
	if len(roots) == 0 {
		return nil
	}

	g.Walk(roots, &callgraph.Walk{
		// Spawned goroutines are themselves findings; their bodies are
		// still nondeterminism carried by the root, so follow them.
		FollowGoBodies: true,
		Node: func(n ast.Node, path string) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(),
					"go statement on a virtual-clock path (reachable via %s); express concurrency as clock events", path)
				return true
			case *ast.RangeStmt:
				checkMapRange(pass, n, path)
				return true
			case *ast.CallExpr:
				callee := analysis.Callee(pass.TypesInfo, n)
				if callee == nil {
					return true
				}
				key := analysis.FuncKey(callee)
				if wallClock[key] {
					pass.Reportf(n.Pos(),
						"%s on a virtual-clock path (reachable via %s); use the injected clock", key, path)
					return true
				}
				if isGlobalRand(callee) {
					pass.Reportf(n.Pos(),
						"global math/rand.%s on a virtual-clock path (reachable via %s); use a *rand.Rand seeded via faultinject.Split", callee.Name(), path)
				}
				return true
			}
			return true
		},
	})
	return nil
}

// isGlobalRand reports whether fn is a package-level math/rand function
// that draws from the process-global source. Methods on *rand.Rand are
// allowed, and so are the constructors (New, NewSource, NewZipf) — they
// are exactly how a seeded source is built.
func isGlobalRand(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != "math/rand" {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() != nil {
		return false
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf":
		return false
	}
	return true
}

// checkMapRange reports a range over a map whose body could publish the
// iteration order: any call beyond the side-effect-free builtins, or a
// channel send. Pure data movement (appends into a slice that is sorted
// later, map-to-map copies, counters, existence checks) is allowed.
func checkMapRange(pass *analysis.Pass, rng *ast.RangeStmt, path string) {
	t := pass.TypesInfo.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"channel send inside map iteration on a virtual-clock path (reachable via %s); iteration order escapes — sort the keys first", path)
			return true
		case *ast.CallExpr:
			if orderSafeCall(pass.TypesInfo, n) {
				return true
			}
			pass.Reportf(n.Pos(),
				"call inside map iteration on a virtual-clock path (reachable via %s); iteration order escapes — sort the keys first", path)
			return true
		}
		return true
	})
}

// orderSafeCall reports whether call cannot observe the order it is
// invoked in: the side-effect-free builtins plus conversions.
func orderSafeCall(info *types.Info, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Builtin:
			switch obj.Name() {
			case "append", "cap", "copy", "delete", "len", "make", "max", "min", "new":
				return true
			}
			return false
		case *types.TypeName:
			return true // conversion
		}
	case *ast.SelectorExpr:
		if _, ok := info.Uses[fun.Sel].(*types.TypeName); ok {
			return true // qualified conversion
		}
	case *ast.ArrayType, *ast.MapType, *ast.ChanType, *ast.FuncType:
		return true // conversion via type literal
	}
	return false
}
