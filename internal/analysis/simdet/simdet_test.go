package simdet_test

import (
	"strings"
	"testing"

	"eternalgw/internal/analysis/analysistest"
	"eternalgw/internal/analysis/simdet"
)

func TestSimdet(t *testing.T) {
	analysistest.Run(t, simdet.Analyzer, "sim")
}

// TestSimdetMutation breaks the determinism invariant in a known-good
// snippet — an injected clock replaced by the wall clock — and proves
// the analyzer fires on exactly that change.
func TestSimdetMutation(t *testing.T) {
	const good = `package m

import "time"

type clock interface {
	Now() time.Time
}

// gwlint:simroot
func step(c clock) time.Time {
	return c.Now()
}
`
	if ds := analysistest.Diagnostics(t, simdet.Analyzer, "simdet_good", good); len(ds) != 0 {
		t.Fatalf("good snippet: unexpected diagnostics %v", ds)
	}

	mutant := strings.Replace(good, "return c.Now()", "return time.Now()", 1)
	ds := analysistest.Diagnostics(t, simdet.Analyzer, "simdet_mutant", mutant)
	if len(ds) != 1 || !strings.Contains(ds[0].Message, "time.Now") {
		t.Fatalf("mutant (wall clock): want one time.Now diagnostic, got %v", ds)
	}
}
