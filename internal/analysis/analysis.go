// Package analysis is a self-contained miniature of the
// golang.org/x/tools/go/analysis vocabulary, built only on the standard
// library so the repository's domain linters (cmd/gwlint) carry no
// external dependencies. An Analyzer inspects one type-checked package
// through a Pass and reports Diagnostics; drivers (the vettool unit mode
// and the whole-module mode in this package) handle loading, the
// //lint:allow escape hatch, rendering and exit codes.
//
// The suite encodes invariants the compiler cannot see: delivery-arena
// aliasing (arenaalias), the non-blocking replication event loop
// (looplock), the COMPLETED_NO shed-reply contract (completedno), the
// eternalgw_* metric conventions (metricname), and sharded-table
// copy/alignment hygiene (syncextra). docs/STATIC_ANALYSIS.md documents
// each invariant and its escape hatch.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one static check: a name (used in diagnostics and in
// //lint:allow directives), one-line documentation, and the per-package
// Run function.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one type-checked package through an Analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File // non-test files only
	Pkg       *types.Package
	TypesInfo *types.Info
	// ModuleDir is the enclosing module root ("" when unknown, e.g. a
	// package outside any module). metricname resolves the metric
	// documentation file against it.
	ModuleDir string
	// Sizes32 models a 32-bit gc target (GOARCH=386); syncextra uses it
	// to prove 64-bit alignment of atomically accessed fields.
	Sizes32 types.Sizes

	diags *[]Diagnostic
}

// Diagnostic is one finding, attributed to the analyzer that produced it.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, msg string) {
	*p.diags = append(*p.diags, Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: msg})
}

// Reportf records a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, fmt.Sprintf(format, args...))
}

// RunAnalyzers applies every analyzer to one package and returns the
// findings that survive the //lint:allow directives found in files,
// together with diagnostics about malformed directives themselves.
func RunAnalyzers(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, moduleDir string, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			ModuleDir: moduleDir,
			Sizes32:   types.SizesFor("gc", "386"),
			diags:     &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path(), err)
		}
	}
	allows, malformed := collectAllows(fset, files, analyzers)
	kept := diags[:0]
	for _, d := range diags {
		if !allows.suppresses(fset, d) {
			kept = append(kept, d)
		}
	}
	return append(kept, malformed...), nil
}
