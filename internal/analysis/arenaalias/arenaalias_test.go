package arenaalias_test

import (
	"testing"

	"eternalgw/internal/analysis/analysistest"
	"eternalgw/internal/analysis/arenaalias"
)

func TestArenaAlias(t *testing.T) {
	analysistest.Run(t, arenaalias.Analyzer, "arena")
}

// TestReceivePathRegressions replays the PR 3 zero-copy receive-path
// footguns against the real replication and totem types.
func TestReceivePathRegressions(t *testing.T) {
	analysistest.Run(t, arenaalias.Analyzer, "arenaregress")
}
