// Package arena exercises the arenaalias analyzer on self-contained
// types brought into the arena/carrier sets with gwlint directives,
// plus the //lint:allow escape hatch.
package arena

// view values alias the delivery arena wherever they appear, like
// replication.HeaderView.
//
// gwlint:arena
type view struct {
	buf []byte
	id  uint64
}

// parcel may carry borrowed memory across a channel hop, like
// replication.task; its consumer must copy or decode promptly.
//
// gwlint:arena-carrier
type parcel struct {
	raw []byte
}

type keeper struct {
	held []byte
}

var sink []byte

func use([]byte) {}

// Locals and call arguments are fine: the borrow stays inside the
// callback, and callees are analyzed on their own.
func ok(v view) {
	b := v.buf
	use(b)
	use(v.buf)
}

// The sanctioned copy idiom comes out clean without special-casing:
// append copies the bytes.
func okCopy(v view) []byte {
	return append([]byte(nil), v.buf...)
}

// Scalar fields are plain copies, not borrows.
func okScalar(v view) uint64 {
	return v.id
}

func storePackageVar(v view) {
	sink = v.buf // want `stored in a package variable`
}

func storeField(v view, k *keeper) {
	k.held = v.buf // want `stored in a struct field`
}

func storeElem(v view, m map[string][]byte) {
	m["k"] = v.buf // want `stored in a map or slice element`
}

func storeDeref(v view, p *[]byte) {
	*p = v.buf // want `stored in a dereferenced pointer`
}

func send(v view, ch chan []byte) {
	ch <- v.buf // want `sent on a channel`
}

// Sending a declared carrier is the sanctioned handoff.
func sendCarrier(v view, ch chan parcel) {
	ch <- parcel{raw: v.buf}
}

// The consumer of a carrier holds the borrow again: a received parcel
// is tainted by provenance, and with no declared field set every
// reference-carrying field borrows.
func receive(ch chan parcel) {
	p := <-ch
	sink = p.raw // want `stored in a package variable`
}

// A carrier rebuilt from copies is clean — the detach idiom.
func detach(p parcel) parcel {
	return parcel{raw: append([]byte(nil), p.raw...)}
}

func spawnArg(v view) {
	go use(v.buf) // want `passed to a spawned goroutine`
}

func spawnCapture(v view) {
	b := v.buf
	go func() {
		use(b) // want `goroutine captures delivery-arena memory`
	}()
}

func leak(v view) []byte {
	return v.buf // want `returning delivery-arena memory as a plain value`
}

// Returning the arena type itself is explicit: the caller sees the
// borrow in the signature.
func handoff(v view) view {
	return v
}

// The escape hatch: a justified allow suppresses the finding on its own
// line...
func pinned(v view) {
	sink = v.buf //lint:allow arenaalias the test pins one payload deliberately
}

// ...and a directive standing alone covers the line below.
func pinnedBelow(v view) {
	//lint:allow arenaalias standalone directive covers the next line
	sink = v.buf
}
