// Package arenaregress replays the PR 3 receive-path aliasing footguns
// against the real replication and totem types — including the holdback
// retention this PR fixed in replication/replica.go — reconstructed
// outside those packages so the corpus keeps failing if the default
// arena set regresses.
package arenaregress

import (
	"eternalgw/internal/replication"
	"eternalgw/internal/totem"
)

// holdback replays the holdback-queue bug: appending the HeaderView's
// borrowed payload into a long-lived slice pins the packed datagram's
// arena for as long as the gap before it stays open.
type holdback struct {
	payloads [][]byte
}

func (h *holdback) retain(hv replication.HeaderView) {
	h.payloads = append(h.payloads, hv.Payload) // want `stored in a struct field`
}

// requeue replays the same bug one level up: a Message materialized
// from a view still aliases the delivery buffer.
type requeue struct {
	pending []replication.Message
}

func (q *requeue) push(hv replication.HeaderView) {
	q.pending = append(q.pending, hv.Message()) // want `stored in a struct field`
}

var lastDelivery []byte

func retainDelivery(d totem.Delivery) {
	lastDelivery = d.Payload // want `stored in a package variable`
}

func forward(ev totem.Event, out chan []byte) {
	out <- ev.Delivery.Payload // want `sent on a channel`
}

// The sanctioned shapes: copy before the callback returns, or hand the
// borrow on in an arena type so the caller knows what it holds.
func snapshot(d totem.Delivery) []byte {
	return append([]byte(nil), d.Payload...)
}

func peek(d totem.Delivery) (replication.HeaderView, error) {
	return replication.DecodeHeader(d.Payload)
}
